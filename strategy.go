package tolerance

import (
	"context"
	"fmt"
	"math/rand"

	"tolerance/internal/baselines"
	"tolerance/internal/nodemodel"
	"tolerance/internal/strategies"
)

// NodeState is the per-node information available to a recovery decision at
// one time step (the node controller's view, eq. 4 and eq. 6b).
type NodeState struct {
	// Belief is the node's current compromise belief b_t.
	Belief float64
	// Obs is the latest priority-weighted alert count o_t.
	Obs int
	// WindowPos is the node's position in its BTR calendar window
	// (1..DeltaR-1); the forced position 0 is applied by the emulation.
	WindowPos int
	// DeltaR is the BTR bound (InfiniteDeltaR when unconstrained).
	DeltaR int
}

// SystemState is the global information available to the replication
// decision at one time step (the system controller's view, eq. 8).
type SystemState struct {
	// HealthyEstimate is s_t = floor(sum_i (1 - b_i)).
	HealthyEstimate int
	// AliveNodes is the current replication factor N_t.
	AliveNodes int
	// Observations are the latest alert counts of alive nodes.
	Observations []int
	// MeanObs is the historical mean alert count E[O_t].
	MeanObs float64
	// Rng drives randomized decisions; it is the scenario's deterministic
	// stream, so randomized policies stay reproducible.
	Rng *rand.Rand
}

// Policy is the decision rule of a two-level control strategy: a per-node
// recovery decision plus a global replication decision, evaluated by the
// emulation once per node and step.
type Policy interface {
	// Name identifies the policy in tables and reports.
	Name() string
	// UsesBTR reports whether the emulation should apply the forced
	// calendar recoveries of eq. (6b).
	UsesBTR() bool
	// Recover decides whether one node recovers this step.
	Recover(NodeState) bool
	// AddNode decides whether the system grows this step.
	AddNode(SystemState) bool
}

// ScenarioSpec is the concrete scenario configuration a Strategy builds its
// Policy for: the node model, the system shape, and the deterministic
// training seed for learned strategies.
type ScenarioSpec struct {
	// Model holds the node-model parameters of eq. (2)-(5).
	Model NodeModel
	// N1 is the initial system size, SMax the replication cap, F the
	// tolerance threshold, K the parallel-recovery allowance.
	N1, SMax, F, K int
	// DeltaR is the BTR bound (InfiniteDeltaR = none).
	DeltaR int
	// EpsilonA is the availability bound of the replication CMDP.
	EpsilonA float64
	// Seed drives training randomness; fleet engines derive it from the
	// suite seed and the strategy fingerprint, so it is identical across
	// workers, shards and resumes.
	Seed int64
}

// Strategy is a named control-strategy family: given a concrete scenario
// configuration it constructs the decision rule the emulation executes.
// Registered strategies are valid policy kinds in fleet suites and JSON
// suite files, next to the built-ins (TOLERANCE, the §VIII-B baselines, and
// the learned:* kinds). Implementations must be safe for concurrent use,
// and the policies they build must be safe for concurrent use across
// scenarios.
type Strategy interface {
	// Name is the registry key — the policy kind in suite definitions.
	Name() string
	// Describe is a one-line summary for listings.
	Describe() string
	// Fingerprint canonicalizes the construction inputs so caches build
	// one policy per distinct spec. Two specs with equal fingerprints must
	// construct interchangeable policies.
	Fingerprint(spec ScenarioSpec) string
	// Policy constructs the decision rule for the spec; ctx cancels
	// long-running construction.
	Policy(ctx context.Context, spec ScenarioSpec) (Policy, error)
}

// RegisterStrategy adds a custom strategy to the registry, making its name
// a valid policy kind in every suite and grid. Registration fails with
// ErrBadInput for a nil strategy, an empty name, or a name already taken
// (all built-in names are taken).
func RegisterStrategy(s Strategy) error {
	if s == nil {
		return fmt.Errorf("%w: nil strategy", ErrBadInput)
	}
	if err := strategies.Register(&strategyAdapter{s}); err != nil {
		return fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return nil
}

// StrategyInfo describes one registered strategy.
type StrategyInfo struct {
	// Name is the registry key (the policy kind).
	Name string
	// Description is the strategy's one-line summary.
	Description string
}

// Strategies lists every registered strategy — built-in and custom — in
// sorted name order.
func Strategies() []StrategyInfo {
	names := strategies.Names()
	infos := make([]StrategyInfo, 0, len(names))
	for _, name := range names {
		s, ok := strategies.Lookup(name)
		if !ok {
			continue
		}
		infos = append(infos, StrategyInfo{Name: name, Description: s.Describe()})
	}
	return infos
}

// strategyAdapter lifts a facade Strategy into the internal registry
// interface the fleet engine resolves policy kinds against.
type strategyAdapter struct {
	s Strategy
}

func (a *strategyAdapter) Name() string     { return a.s.Name() }
func (a *strategyAdapter) Describe() string { return a.s.Describe() }

func (a *strategyAdapter) Fingerprint(spec strategies.Spec) string {
	return a.s.Fingerprint(publicSpec(spec))
}

func (a *strategyAdapter) Policy(ctx context.Context, spec strategies.Spec, _ strategies.Solvers) (baselines.Policy, error) {
	p, err := a.s.Policy(ctx, publicSpec(spec))
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("%w: strategy %q built a nil policy", ErrBadInput, a.s.Name())
	}
	return policyAdapter{p}, nil
}

// publicSpec converts the internal spec to the facade representation.
func publicSpec(spec strategies.Spec) ScenarioSpec {
	return ScenarioSpec{
		Model: NodeModel{
			PA:  spec.Params.PA,
			PC1: spec.Params.PC1,
			PC2: spec.Params.PC2,
			PU:  spec.Params.PU,
			Eta: spec.Params.Eta,
		},
		N1:       spec.N1,
		SMax:     spec.SMax,
		F:        spec.F,
		K:        spec.K,
		DeltaR:   spec.DeltaR,
		EpsilonA: spec.EpsilonA,
		Seed:     spec.Seed,
	}
}

// policyAdapter lifts a facade Policy into the emulation's internal policy
// interface.
type policyAdapter struct {
	p Policy
}

func (a policyAdapter) Name() string  { return a.p.Name() }
func (a policyAdapter) UsesBTR() bool { return a.p.UsesBTR() }

func (a policyAdapter) NodeAction(ctx baselines.NodeContext) nodemodel.Action {
	if a.p.Recover(NodeState{
		Belief:    ctx.Belief,
		Obs:       ctx.Obs,
		WindowPos: ctx.WindowPos,
		DeltaR:    ctx.DeltaR,
	}) {
		return nodemodel.Recover
	}
	return nodemodel.Wait
}

func (a policyAdapter) AddNode(ctx baselines.SystemContext) bool {
	return a.p.AddNode(SystemState{
		HealthyEstimate: ctx.HealthyEstimate,
		AliveNodes:      ctx.AliveNodes,
		Observations:    ctx.Observations,
		MeanObs:         ctx.MeanObs,
		Rng:             ctx.Rng,
	})
}
