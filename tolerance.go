// Package tolerance is the public API of the TOLERANCE reproduction — the
// two-level feedback control architecture for intrusion-tolerant systems of
// Hammar & Stadler, "Intrusion Tolerance for Networked Systems through
// Two-Level Feedback Control" (DSN 2024).
//
// The package exposes the two control problems and the evaluation harness:
//
//   - SolveRecoveryStrategy / LearnRecoveryStrategy solve Problem 1
//     (optimal intrusion recovery) exactly by dynamic programming or with
//     Algorithm 1's parametric optimizers (CEM, DE, BO, SPSA).
//   - SolveReplicationStrategy solves Problem 2 (optimal replication
//     factor) with Algorithm 2's occupancy-measure linear program.
//   - Compare runs the §VIII evaluation: TOLERANCE against the
//     NO-RECOVERY, PERIODIC and PERIODIC-ADAPTIVE baselines on the
//     emulated testbed, reporting T(A), T(R) and F(R).
//   - MTTF and Reliability compute the Fig 6 failure-time analytics.
//   - RunFleetSuite executes a built-in scenario fleet: a declarative grid
//     over attack intensity, crash rates, workload shapes, system sizes,
//     BTR bounds and strategies, expanded to hundreds of scenarios and run
//     on a bounded worker pool. Seeding is deterministic (suite seed +
//     scenario index), a strategy cache solves each distinct control
//     problem once, and per-cell metrics stream through Welford
//     accumulators — the same grid is byte-identical at any worker count.
//     RunFleetSuiteFile runs user-authored JSON suite definitions
//     (FleetSuiteJSON exports the built-ins as editable starting points).
//     The cmd/tolerance-fleet CLI wraps the engine with suite selection,
//     worker count and JSON/CSV output, and scales out: -shard i/n runs a
//     deterministic slice of the grid, -merge folds shard result files
//     into the exact aggregate a single machine would produce, and
//     -checkpoint/-resume survive kills mid-grid.
//
// Lower-level building blocks (the MinBFT and Raft implementations, the
// POMDP solvers, the emulation, the fleet engine) live under internal/ and
// are exercised by the examples and the benchmark harness.
package tolerance

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"tolerance/internal/baselines"
	"tolerance/internal/cmdp"
	"tolerance/internal/dist"
	"tolerance/internal/emulation"
	"tolerance/internal/fleet"
	"tolerance/internal/nodemodel"
	"tolerance/internal/opt"
	"tolerance/internal/recovery"
)

// InfiniteDeltaR disables the bounded-time-to-recovery constraint.
const InfiniteDeltaR = recovery.InfiniteDeltaR

// ErrBadInput is returned for invalid API inputs.
var ErrBadInput = errors.New("tolerance: bad input")

// NodeModel holds the per-node model parameters of eq. (2)-(5).
type NodeModel struct {
	// PA is the per-step compromise probability.
	PA float64
	// PC1 and PC2 are the crash probabilities in the healthy and
	// compromised states.
	PC1, PC2 float64
	// PU is the per-step software-update probability.
	PU float64
	// Eta is the cost weight (eq. 5).
	Eta float64
}

// DefaultNodeModel returns the paper's Table 8 evaluation parameters.
func DefaultNodeModel() NodeModel {
	return NodeModel{PA: 0.1, PC1: 1e-5, PC2: 1e-3, PU: 0.02, Eta: 2}
}

// toParams converts to the internal representation with the Table 8
// Beta-Binomial observation model.
func (m NodeModel) toParams() nodemodel.Params {
	p := nodemodel.DefaultParams()
	p.PA, p.PC1, p.PC2, p.PU, p.Eta = m.PA, m.PC1, m.PC2, m.PU, m.Eta
	return p
}

// RecoveryStrategy is a threshold recovery strategy (Theorem 1): recover
// when the compromise belief reaches the threshold of the current BTR
// window position.
type RecoveryStrategy struct {
	// Thresholds are alpha*_k per window position (a single entry when
	// DeltaR is infinite).
	Thresholds []float64
	// DeltaR is the BTR bound the strategy was computed for.
	DeltaR int
	// ExpectedCost is the estimated long-run average cost J (eq. 5).
	ExpectedCost float64

	inner *recovery.ThresholdStrategy
}

// ShouldRecover applies the strategy.
func (s *RecoveryStrategy) ShouldRecover(belief float64, windowPos int) bool {
	return s.inner.Action(belief, windowPos) == nodemodel.Recover
}

// SolveRecoveryStrategy solves Problem 1 exactly by dynamic programming
// (the renewal decomposition of eq. 16) and returns the optimal thresholds.
func SolveRecoveryStrategy(m NodeModel, deltaR int) (*RecoveryStrategy, error) {
	p := m.toParams()
	sol, err := recovery.SolveDP(p, recovery.DPConfig{DeltaR: deltaR})
	if err != nil {
		return nil, err
	}
	inner := sol.Strategy(deltaR)
	return &RecoveryStrategy{
		Thresholds:   append([]float64(nil), inner.Thresholds...),
		DeltaR:       deltaR,
		ExpectedCost: sol.AvgCost,
		inner:        inner,
	}, nil
}

// Optimizers available to LearnRecoveryStrategy (Table 2).
const (
	OptimizerCEM    = "cem"
	OptimizerDE     = "de"
	OptimizerBO     = "bo"
	OptimizerSPSA   = "spsa"
	OptimizerRandom = "random"
)

// LearnRecoveryStrategy runs Algorithm 1 with the named parametric
// optimizer and Monte-Carlo budget.
func LearnRecoveryStrategy(m NodeModel, deltaR int, optimizer string, budget int, seed int64) (*RecoveryStrategy, error) {
	var po opt.Optimizer
	switch optimizer {
	case OptimizerCEM:
		po = opt.CEM{}
	case OptimizerDE:
		po = opt.DE{}
	case OptimizerBO:
		po = opt.BO{}
	case OptimizerSPSA:
		po = opt.SPSA{}
	case OptimizerRandom:
		po = opt.RandomSearch{}
	default:
		return nil, fmt.Errorf("%w: unknown optimizer %q", ErrBadInput, optimizer)
	}
	res, err := recovery.Algorithm1(m.toParams(), recovery.Algorithm1Config{
		DeltaR:    deltaR,
		Optimizer: po,
		Budget:    budget,
		Episodes:  50, // Table 8: M = 50
		Horizon:   200,
		Seed:      seed,
	})
	if err != nil {
		return nil, err
	}
	return &RecoveryStrategy{
		Thresholds:   append([]float64(nil), res.Strategy.Thresholds...),
		DeltaR:       deltaR,
		ExpectedCost: res.Cost,
		inner:        res.Strategy,
	}, nil
}

// ReplicationStrategy is the Problem 2 solution: the probability of adding
// a node per healthy-node-count state (Fig 13a).
type ReplicationStrategy struct {
	// AddProbability is pi*(a=1 | s) for s = 0..SMax.
	AddProbability []float64
	// ExpectedNodes is the stationary objective value J (eq. 9).
	ExpectedNodes float64
	// Availability is the achieved stationary availability (eq. 10b).
	Availability float64

	inner *cmdp.Solution
}

// ShouldAdd samples the randomized strategy for state s.
func (r *ReplicationStrategy) ShouldAdd(rng *rand.Rand, s int) bool {
	return r.inner.Sample(rng, s) == 1
}

// SolveReplicationStrategy solves Problem 2 with Algorithm 2. smax bounds
// the system size, f is the tolerance threshold, epsilonA the availability
// lower bound (eq. 10b), and q the per-step probability that a healthy node
// remains healthy (estimate it with cmdp.EstimateHealthyProb or from domain
// knowledge; §V-A cites Google/Meta/IBM procedures).
func SolveReplicationStrategy(smax, f int, epsilonA, q float64) (*ReplicationStrategy, error) {
	model, err := cmdp.NewBinomialModel(smax, f, epsilonA, q, 0)
	if err != nil {
		return nil, err
	}
	sol, err := cmdp.Solve(model)
	if err != nil {
		return nil, err
	}
	return &ReplicationStrategy{
		AddProbability: append([]float64(nil), sol.Policy...),
		ExpectedNodes:  sol.AvgNodes,
		Availability:   sol.Availability,
		inner:          sol,
	}, nil
}

// MTTF returns the mean time to failure of a system with n1 initial nodes,
// tolerance threshold f, recovery allowance k, and per-step node survival
// probability q, with no recoveries (Fig 6a).
func MTTF(n1, f, k int, q float64) (float64, error) {
	return cmdp.MTTF(n1, f, k, q)
}

// Reliability returns R(t) for t = 0..horizon (Fig 6b).
func Reliability(n1, f, k, horizon int, q float64) ([]float64, error) {
	return cmdp.Reliability(n1, f, k, horizon, q)
}

// StrategyMetrics reports one strategy's evaluation metrics with 95%
// confidence half-widths (Table 7 cell).
type StrategyMetrics struct {
	Strategy          string
	Availability      float64
	AvailabilityCI    float64
	TimeToRecovery    float64
	TimeToRecoveryCI  float64
	RecoveryFrequency float64
	RecoveryFreqCI    float64
	AvgNodes          float64
}

// CompareConfig configures a Table 7 comparison.
type CompareConfig struct {
	// N1 is the initial node count (paper: 3, 6, 9).
	N1 int
	// DeltaR is the BTR bound (paper: 15, 25, infinity).
	DeltaR int
	// Steps per run (paper: 60-second steps).
	Steps int
	// Seeds are the evaluation seeds (paper: 20).
	Seeds []int64
	// Model overrides the node model; zero value uses DefaultNodeModel.
	Model NodeModel
	// EpsilonA is the availability bound for the replication strategy.
	EpsilonA float64
}

// Compare evaluates TOLERANCE and the three §VIII-B baselines under one
// configuration and returns a row group of Table 7.
func Compare(cfg CompareConfig) ([]StrategyMetrics, error) {
	if cfg.N1 < 1 {
		return nil, fmt.Errorf("%w: N1 = %d", ErrBadInput, cfg.N1)
	}
	if cfg.Steps == 0 {
		cfg.Steps = 1000
	}
	if len(cfg.Seeds) == 0 {
		for i := int64(0); i < 20; i++ {
			cfg.Seeds = append(cfg.Seeds, i+1)
		}
	}
	if cfg.Model == (NodeModel{}) {
		cfg.Model = DefaultNodeModel()
	}
	if cfg.EpsilonA == 0 {
		cfg.EpsilonA = 0.9
	}
	params := cfg.Model.toParams()

	// TOLERANCE strategies: exact DP recovery thresholds + LP replication.
	dp, err := recovery.SolveDP(params, recovery.DPConfig{DeltaR: cfg.DeltaR, GridSize: 300})
	if err != nil {
		return nil, err
	}
	f := emulation.DefaultThreshold(cfg.N1)
	rng := rand.New(rand.NewSource(17))
	q, err := cmdp.EstimateHealthyProb(rng, params, dp.Strategy(cfg.DeltaR),
		cmdp.DefaultEstimateEpisodes, cmdp.DefaultEstimateHorizon, cfg.DeltaR)
	if err != nil {
		return nil, err
	}
	smax := 13
	repModel, err := cmdp.NewBinomialModel(smax, f, cfg.EpsilonA, q, 0)
	if err != nil {
		return nil, err
	}
	repSol, err := cmdp.Solve(repModel)
	if err != nil {
		return nil, err
	}
	tolerancePolicy, err := baselines.NewTolerance(dp.Strategy(cfg.DeltaR), repSol)
	if err != nil {
		return nil, err
	}

	policies := []baselines.Policy{
		tolerancePolicy,
		baselines.NoRecovery{},
		baselines.Periodic{},
		baselines.PeriodicAdaptive{TargetN: cfg.N1},
	}
	out := make([]StrategyMetrics, 0, len(policies))
	for _, pol := range policies {
		agg, err := emulation.RunSeeds(emulation.Scenario{
			N1:     cfg.N1,
			SMax:   smax,
			K:      1,
			F:      f,
			DeltaR: cfg.DeltaR,
			Steps:  cfg.Steps,
			Params: params,
			Policy: pol,
		}, cfg.Seeds)
		if err != nil {
			return nil, fmt.Errorf("tolerance: evaluate %s: %w", pol.Name(), err)
		}
		out = append(out, StrategyMetrics{
			Strategy:          pol.Name(),
			Availability:      agg.Availability.Mean,
			AvailabilityCI:    agg.Availability.CI,
			TimeToRecovery:    agg.TimeToRecovery.Mean,
			TimeToRecoveryCI:  agg.TimeToRecovery.CI,
			RecoveryFrequency: agg.RecoveryFrequency.Mean,
			RecoveryFreqCI:    agg.RecoveryFrequency.CI,
			AvgNodes:          agg.AvgNodes.Mean,
		})
	}
	return out, nil
}

// FleetOptions tunes a fleet-suite execution. The zero value keeps every
// suite default.
type FleetOptions struct {
	// Workers bounds the worker pool (default min(GOMAXPROCS, 8)).
	Workers int
	// Seed overrides the suite's master seed when non-zero.
	Seed int64
	// Steps overrides the per-scenario step count when non-zero.
	Steps int
	// SeedsPerCell overrides the evaluation seeds per grid cell when
	// non-zero.
	SeedsPerCell int
	// Progress, when set, receives (done, total) after each folded
	// scenario.
	Progress func(done, total int)
}

// FleetCellMetrics is one grid cell of a fleet report: a concrete
// model/workload/size/policy configuration with its evaluation metrics
// (means with 95% confidence half-widths) streamed over the cell's seeds.
type FleetCellMetrics struct {
	Strategy              string
	PA, PC1, PC2, PU, Eta float64
	WorkloadLambda        float64
	WorkloadService       float64
	N1, SMax, DeltaR, F   int
	Runs                  int

	Availability, AvailabilityCI      float64
	QuorumAvailability, QuorumCI      float64
	TimeToRecovery, TimeToRecoveryCI  float64
	RecoveryFrequency, RecoveryFreqCI float64
	AvgNodes, AvgNodesCI              float64
	AvgCost, AvgCostCI                float64
}

// FleetReport is the result of one fleet-suite execution.
type FleetReport struct {
	// Suite is the executed suite's name; Seed its master seed.
	Suite string
	Seed  int64
	// Scenarios is the number of emulation runs executed.
	Scenarios int
	// Cells holds one aggregated entry per grid cell, in expansion order.
	Cells []FleetCellMetrics
	// RecoverySolves and ReplicationSolves count the distinct control
	// problems actually solved; CacheHits counts requests the strategy
	// cache answered without solving.
	RecoverySolves    int
	ReplicationSolves int
	CacheHits         int
}

// FleetSuiteNames lists the built-in scenario suites.
func FleetSuiteNames() []string {
	suites := fleet.Builtin()
	names := make([]string, len(suites))
	for i, s := range suites {
		names[i] = s.Name
	}
	return names
}

// RunFleetSuite executes a built-in scenario suite on a bounded worker
// pool. Results are deterministic for a given (suite, seed) regardless of
// worker count.
func RunFleetSuite(name string, opts FleetOptions) (*FleetReport, error) {
	suite, err := fleet.Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return runFleet(suite, opts)
}

// RunFleetSuiteFile executes a user-authored JSON suite definition (the
// schema that `tolerance-fleet -dump-suite` exports), so new grids run
// without recompiling.
func RunFleetSuiteFile(path string, opts FleetOptions) (*FleetReport, error) {
	suite, err := fleet.LoadSuiteFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return runFleet(suite, opts)
}

// FleetSuiteJSON exports a built-in suite as a versioned JSON document
// with every default made explicit — a complete, editable starting point
// for user-authored grids.
func FleetSuiteJSON(name string) ([]byte, error) {
	suite, err := fleet.Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return fleet.DumpSuite(suite)
}

func runFleet(suite fleet.Suite, opts FleetOptions) (*FleetReport, error) {
	if opts.Seed != 0 {
		suite.Seed = opts.Seed
	}
	if opts.Steps != 0 {
		suite.Steps = opts.Steps
	}
	if opts.SeedsPerCell != 0 {
		suite.SeedsPerCell = opts.SeedsPerCell
	}
	cache := fleet.NewStrategyCache()
	res, err := fleet.Run(context.Background(), suite, fleet.Config{
		Workers:  opts.Workers,
		Cache:    cache,
		Progress: opts.Progress,
	})
	if err != nil {
		return nil, err
	}
	stats := cache.Stats()
	report := &FleetReport{
		Suite:             res.Suite,
		Seed:              res.Seed,
		Scenarios:         res.Scenarios,
		Cells:             make([]FleetCellMetrics, len(res.Cells)),
		RecoverySolves:    int(stats.RecoverySolves),
		ReplicationSolves: int(stats.ReplicationSolves),
		CacheHits:         int(stats.RecoveryHits + stats.ReplicationHits),
	}
	for i, c := range res.Cells {
		a := c.Aggregate
		report.Cells[i] = FleetCellMetrics{
			Strategy:           string(c.Cell.Policy),
			PA:                 c.Cell.PA,
			PC1:                c.Cell.PC1,
			PC2:                c.Cell.PC2,
			PU:                 c.Cell.PU,
			Eta:                c.Cell.Eta,
			WorkloadLambda:     c.Cell.Workload.Lambda,
			WorkloadService:    c.Cell.Workload.MeanServiceSteps,
			N1:                 c.Cell.N1,
			SMax:               c.Cell.SMax,
			DeltaR:             c.Cell.DeltaR,
			F:                  c.Cell.F,
			Runs:               int(c.Runs),
			Availability:       a.Availability.Mean,
			AvailabilityCI:     a.Availability.CI,
			QuorumAvailability: a.QuorumAvailability.Mean,
			QuorumCI:           a.QuorumAvailability.CI,
			TimeToRecovery:     a.TimeToRecovery.Mean,
			TimeToRecoveryCI:   a.TimeToRecovery.CI,
			RecoveryFrequency:  a.RecoveryFrequency.Mean,
			RecoveryFreqCI:     a.RecoveryFrequency.CI,
			AvgNodes:           a.AvgNodes.Mean,
			AvgNodesCI:         a.AvgNodes.CI,
			AvgCost:            a.Cost.Mean,
			AvgCostCI:          a.Cost.CI,
		}
	}
	return report, nil
}

// DetectorSensitivity evaluates J* as a function of detector quality
// (Fig 14): it scales the separation between Z(.|H) and Z(.|C) and solves
// Problem 1 for each setting, returning (divergence, optimal cost) pairs.
func DetectorSensitivity(m NodeModel, separations []float64) ([][2]float64, error) {
	out := make([][2]float64, 0, len(separations))
	for _, sep := range separations {
		if sep <= 0 {
			return nil, fmt.Errorf("%w: separation %v", ErrBadInput, sep)
		}
		p := m.toParams()
		// Interpolate the compromised shape toward the healthy one as the
		// separation shrinks: alphaC = 0.7 + sep*(1 - 0.7) etc.
		alphaC := 0.7 + sep*(1.0-0.7)
		betaC := 3 + sep*(0.7-3)
		zc, err := dist.NewBetaBinomial(10, alphaC, betaC)
		if err != nil {
			return nil, err
		}
		p.ZCompromised = zc.Categorical()
		sol, err := recovery.SolveDP(p, recovery.DPConfig{DeltaR: InfiniteDeltaR, GridSize: 200})
		if err != nil {
			return nil, err
		}
		div := dist.KLSmoothed(p.ZHealthy, p.ZCompromised, 1e-9)
		out = append(out, [2]float64{div, sol.AvgCost})
	}
	return out, nil
}
