// Package tolerance is the public API of the TOLERANCE reproduction — the
// two-level feedback control architecture for intrusion-tolerant systems of
// Hammar & Stadler, "Intrusion Tolerance for Networked Systems through
// Two-Level Feedback Control" (DSN 2024).
//
// # The v2 API
//
// The package is organized around three ideas:
//
//   - Strategy: every controller the paper evaluates — the exact Theorem 1
//     thresholds, the Algorithm 1 learned policies (CEM, DE, BO, SPSA),
//     PPO, Algorithm 2 replication, and the §VIII-B baselines — is a
//     registered implementation of one Strategy interface. Strategies()
//     lists the registry; RegisterStrategy adds custom strategies, whose
//     names become valid policy kinds in every suite and grid.
//   - Solve(ctx, Problem, ...Option): one context-aware entry point for
//     both control problems. RecoveryProblem selects Problem 1 (exact DP
//     by default, learned methods via WithMethod); ReplicationProblem
//     selects Problem 2's occupancy-measure LP.
//   - RunSuite(ctx, SuiteRef, ...Option): the scenario-fleet harness. A
//     suite — built-in (SuiteByName), a JSON file (SuiteFromFile), or an
//     in-memory document (SuiteFromJSON) — expands to a grid of emulation
//     scenarios executed on a worker pool with deterministic seeding.
//     Per-scenario records stream to WithRecordHandler consumers (or
//     through the StreamSuite iterator) in index order while the run is in
//     flight; cancelling ctx stops the pool promptly, leaving any
//     checkpoint written from the stream valid for resumption.
//
// Evaluation helpers round out the facade: Compare reproduces the §VIII
// Table 7 comparison, MTTF and Reliability the Fig 6 analytics, and
// DetectorSensitivity the Fig 14 detector-quality sweep. All facade
// validation failures wrap ErrBadInput.
//
// # Migrating from the v1 facade
//
// The original entry points remain as thin deprecated wrappers:
//
//	SolveRecoveryStrategy(m, dr)            -> Solve(ctx, RecoveryProblem{Model: m, DeltaR: dr})
//	LearnRecoveryStrategy(m, dr, opt, b, s) -> Solve(ctx, RecoveryProblem{Model: m, DeltaR: dr},
//	                                                 WithMethod(opt), WithBudget(b), WithSeed(s))
//	SolveReplicationStrategy(smax, f, e, q) -> Solve(ctx, ReplicationProblem{SMax: smax, F: f,
//	                                                 EpsilonA: e, Q: q})
//	RunFleetSuite(name, opts)               -> RunSuite(ctx, SuiteByName(name), ...)
//	RunFleetSuiteFile(path, opts)           -> RunSuite(ctx, SuiteFromFile(path), ...)
//	FleetSuiteJSON(name)                    -> SuiteJSON(SuiteByName(name))
//	FleetSuiteNames()                       -> SuiteNames()
//
// Lower-level building blocks (the MinBFT and Raft implementations, the
// POMDP solvers, the emulation, the fleet engine) live under internal/ and
// are exercised by the examples and the benchmark harness.
package tolerance

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"tolerance/internal/baselines"
	"tolerance/internal/cmdp"
	"tolerance/internal/dist"
	"tolerance/internal/emulation"
	"tolerance/internal/nodemodel"
	"tolerance/internal/recovery"
)

// InfiniteDeltaR disables the bounded-time-to-recovery constraint.
const InfiniteDeltaR = recovery.InfiniteDeltaR

// ErrBadInput is returned (wrapped) for every invalid API input; test with
// errors.Is.
var ErrBadInput = errors.New("tolerance: bad input")

// NodeModel holds the per-node model parameters of eq. (2)-(5).
type NodeModel struct {
	// PA is the per-step compromise probability.
	PA float64
	// PC1 and PC2 are the crash probabilities in the healthy and
	// compromised states.
	PC1, PC2 float64
	// PU is the per-step software-update probability.
	PU float64
	// Eta is the cost weight (eq. 5).
	Eta float64
}

// DefaultNodeModel returns the paper's Table 8 evaluation parameters.
func DefaultNodeModel() NodeModel {
	return NodeModel{PA: 0.1, PC1: 1e-5, PC2: 1e-3, PU: 0.02, Eta: 2}
}

// toParams converts to the internal representation with the Table 8
// Beta-Binomial observation model.
func (m NodeModel) toParams() nodemodel.Params {
	p := nodemodel.DefaultParams()
	p.PA, p.PC1, p.PC2, p.PU, p.Eta = m.PA, m.PC1, m.PC2, m.PU, m.Eta
	return p
}

// SolveRecoveryStrategy solves Problem 1 exactly by dynamic programming
// (the renewal decomposition of eq. 16) and returns the optimal thresholds.
//
// Deprecated: use Solve with a RecoveryProblem.
func SolveRecoveryStrategy(m NodeModel, deltaR int) (*RecoveryStrategy, error) {
	sol, err := Solve(context.Background(), RecoveryProblem{Model: m, DeltaR: deltaR})
	if err != nil {
		return nil, err
	}
	return sol.Recovery, nil
}

// LearnRecoveryStrategy runs Algorithm 1 with the named parametric
// optimizer and Monte-Carlo budget.
//
// Deprecated: use Solve with a RecoveryProblem and WithMethod.
func LearnRecoveryStrategy(m NodeModel, deltaR int, optimizer string, budget int, seed int64) (*RecoveryStrategy, error) {
	switch optimizer {
	case OptimizerCEM, OptimizerDE, OptimizerBO, OptimizerSPSA, OptimizerRandom:
	default:
		return nil, fmt.Errorf("%w: unknown optimizer %q", ErrBadInput, optimizer)
	}
	sol, err := Solve(context.Background(), RecoveryProblem{Model: m, DeltaR: deltaR},
		WithMethod(optimizer), WithBudget(budget), WithSeed(seed))
	if err != nil {
		return nil, err
	}
	return sol.Recovery, nil
}

// SolveReplicationStrategy solves Problem 2 with Algorithm 2. smax bounds
// the system size, f is the tolerance threshold, epsilonA the availability
// lower bound (eq. 10b), and q the per-step probability that a healthy node
// remains healthy.
//
// Deprecated: use Solve with a ReplicationProblem.
func SolveReplicationStrategy(smax, f int, epsilonA, q float64) (*ReplicationStrategy, error) {
	sol, err := Solve(context.Background(), ReplicationProblem{SMax: smax, F: f, EpsilonA: epsilonA, Q: q})
	if err != nil {
		return nil, err
	}
	return sol.Replication, nil
}

// MTTF returns the mean time to failure of a system with n1 initial nodes,
// tolerance threshold f, recovery allowance k, and per-step node survival
// probability q, with no recoveries (Fig 6a).
func MTTF(n1, f, k int, q float64) (float64, error) {
	if n1 < 1 || f < 0 || k < 0 || q <= 0 || q > 1 {
		return 0, fmt.Errorf("%w: MTTF(n1=%d, f=%d, k=%d, q=%v)", ErrBadInput, n1, f, k, q)
	}
	return cmdp.MTTF(n1, f, k, q)
}

// Reliability returns R(t) for t = 0..horizon (Fig 6b).
func Reliability(n1, f, k, horizon int, q float64) ([]float64, error) {
	if n1 < 1 || f < 0 || k < 0 || horizon < 0 || q <= 0 || q > 1 {
		return nil, fmt.Errorf("%w: Reliability(n1=%d, f=%d, k=%d, horizon=%d, q=%v)",
			ErrBadInput, n1, f, k, horizon, q)
	}
	return cmdp.Reliability(n1, f, k, horizon, q)
}

// StrategyMetrics reports one strategy's evaluation metrics with 95%
// confidence half-widths (Table 7 cell).
type StrategyMetrics struct {
	Strategy          string
	Availability      float64
	AvailabilityCI    float64
	TimeToRecovery    float64
	TimeToRecoveryCI  float64
	RecoveryFrequency float64
	RecoveryFreqCI    float64
	AvgNodes          float64
}

// CompareConfig configures a Table 7 comparison.
type CompareConfig struct {
	// N1 is the initial node count (paper: 3, 6, 9).
	N1 int
	// DeltaR is the BTR bound (paper: 15, 25, infinity).
	DeltaR int
	// Steps per run (paper: 60-second steps).
	Steps int
	// Seeds are the evaluation seeds (paper: 20).
	Seeds []int64
	// Model overrides the node model; zero value uses DefaultNodeModel.
	Model NodeModel
	// EpsilonA is the availability bound for the replication strategy.
	EpsilonA float64
}

// Compare evaluates TOLERANCE and the three §VIII-B baselines under one
// configuration and returns a row group of Table 7.
func Compare(cfg CompareConfig) ([]StrategyMetrics, error) {
	if cfg.N1 < 1 {
		return nil, fmt.Errorf("%w: N1 = %d", ErrBadInput, cfg.N1)
	}
	if cfg.DeltaR < 0 {
		return nil, fmt.Errorf("%w: DeltaR = %d", ErrBadInput, cfg.DeltaR)
	}
	if cfg.Steps == 0 {
		cfg.Steps = 1000
	}
	if len(cfg.Seeds) == 0 {
		for i := int64(0); i < 20; i++ {
			cfg.Seeds = append(cfg.Seeds, i+1)
		}
	}
	if cfg.Model == (NodeModel{}) {
		cfg.Model = DefaultNodeModel()
	}
	if cfg.EpsilonA == 0 {
		cfg.EpsilonA = 0.9
	}
	params := cfg.Model.toParams()

	// TOLERANCE strategies: exact DP recovery thresholds + LP replication.
	dp, err := recovery.SolveDP(params, recovery.DPConfig{DeltaR: cfg.DeltaR, GridSize: 300})
	if err != nil {
		return nil, err
	}
	f := emulation.DefaultThreshold(cfg.N1)
	rng := rand.New(rand.NewSource(17))
	q, err := cmdp.EstimateHealthyProb(rng, params, dp.Strategy(cfg.DeltaR),
		cmdp.DefaultEstimateEpisodes, cmdp.DefaultEstimateHorizon, cfg.DeltaR)
	if err != nil {
		return nil, err
	}
	smax := 13
	repModel, err := cmdp.NewBinomialModel(smax, f, cfg.EpsilonA, q, 0)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	repSol, err := cmdp.Solve(repModel)
	if err != nil {
		return nil, err
	}
	tolerancePolicy, err := baselines.NewTolerance(dp.Strategy(cfg.DeltaR), repSol)
	if err != nil {
		return nil, err
	}

	policies := []baselines.Policy{
		tolerancePolicy,
		baselines.NoRecovery{},
		baselines.Periodic{},
		baselines.PeriodicAdaptive{TargetN: cfg.N1},
	}
	out := make([]StrategyMetrics, 0, len(policies))
	for _, pol := range policies {
		agg, err := emulation.RunSeeds(emulation.Scenario{
			N1:     cfg.N1,
			SMax:   smax,
			K:      1,
			F:      f,
			DeltaR: cfg.DeltaR,
			Steps:  cfg.Steps,
			Params: params,
			Policy: pol,
		}, cfg.Seeds)
		if err != nil {
			return nil, fmt.Errorf("tolerance: evaluate %s: %w", pol.Name(), err)
		}
		out = append(out, StrategyMetrics{
			Strategy:          pol.Name(),
			Availability:      agg.Availability.Mean,
			AvailabilityCI:    agg.Availability.CI,
			TimeToRecovery:    agg.TimeToRecovery.Mean,
			TimeToRecoveryCI:  agg.TimeToRecovery.CI,
			RecoveryFrequency: agg.RecoveryFrequency.Mean,
			RecoveryFreqCI:    agg.RecoveryFrequency.CI,
			AvgNodes:          agg.AvgNodes.Mean,
		})
	}
	return out, nil
}

// FleetOptions tunes a fleet-suite execution through the deprecated v1
// wrappers. The zero value keeps every suite default.
//
// Deprecated: use RunSuite with Option values.
type FleetOptions struct {
	// Workers bounds the worker pool (default min(GOMAXPROCS, 8)).
	Workers int
	// Seed overrides the suite's master seed when non-zero.
	Seed int64
	// Steps overrides the per-scenario step count when non-zero.
	Steps int
	// SeedsPerCell overrides the evaluation seeds per grid cell when
	// non-zero.
	SeedsPerCell int
	// Progress, when set, receives (done, total) after each folded
	// scenario.
	Progress func(done, total int)
}

// toOptions converts to v2 options.
func (o FleetOptions) toOptions() []Option {
	var opts []Option
	if o.Workers != 0 {
		opts = append(opts, WithWorkers(o.Workers))
	}
	if o.Seed != 0 {
		opts = append(opts, WithSeed(o.Seed))
	}
	if o.Steps != 0 {
		opts = append(opts, WithSteps(o.Steps))
	}
	if o.SeedsPerCell != 0 {
		opts = append(opts, WithSeedsPerCell(o.SeedsPerCell))
	}
	if o.Progress != nil {
		opts = append(opts, WithProgress(o.Progress))
	}
	return opts
}

// FleetSuiteNames lists the built-in scenario suites.
//
// Deprecated: use SuiteNames.
func FleetSuiteNames() []string { return SuiteNames() }

// RunFleetSuite executes a built-in scenario suite on a bounded worker
// pool.
//
// Deprecated: use RunSuite with SuiteByName.
func RunFleetSuite(name string, opts FleetOptions) (*FleetReport, error) {
	return RunSuite(context.Background(), SuiteByName(name), opts.toOptions()...)
}

// RunFleetSuiteFile executes a user-authored JSON suite definition.
//
// Deprecated: use RunSuite with SuiteFromFile.
func RunFleetSuiteFile(path string, opts FleetOptions) (*FleetReport, error) {
	return RunSuite(context.Background(), SuiteFromFile(path), opts.toOptions()...)
}

// FleetSuiteJSON exports a built-in suite as a versioned JSON document.
//
// Deprecated: use SuiteJSON with SuiteByName.
func FleetSuiteJSON(name string) ([]byte, error) {
	return SuiteJSON(SuiteByName(name))
}

// DetectorSensitivity evaluates J* as a function of detector quality
// (Fig 14): it scales the separation between Z(.|H) and Z(.|C) and solves
// Problem 1 for each setting, returning (divergence, optimal cost) pairs.
func DetectorSensitivity(m NodeModel, separations []float64) ([][2]float64, error) {
	out := make([][2]float64, 0, len(separations))
	for _, sep := range separations {
		if sep <= 0 {
			return nil, fmt.Errorf("%w: separation %v", ErrBadInput, sep)
		}
		p := m.toParams()
		// Interpolate the compromised shape toward the healthy one as the
		// separation shrinks: alphaC = 0.7 + sep*(1 - 0.7) etc.
		alphaC := 0.7 + sep*(1.0-0.7)
		betaC := 3 + sep*(0.7-3)
		zc, err := dist.NewBetaBinomial(10, alphaC, betaC)
		if err != nil {
			return nil, err
		}
		p.ZCompromised = zc.Categorical()
		sol, err := recovery.SolveDP(p, recovery.DPConfig{DeltaR: InfiniteDeltaR, GridSize: 200})
		if err != nil {
			return nil, err
		}
		div := dist.KLSmoothed(p.ZHealthy, p.ZCompromised, 1e-9)
		out = append(out, [2]float64{div, sol.AvgCost})
	}
	return out, nil
}
