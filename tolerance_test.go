package tolerance

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestSolveRecoveryStrategyFacade(t *testing.T) {
	s, err := SolveRecoveryStrategy(DefaultNodeModel(), InfiniteDeltaR)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Thresholds) != 1 {
		t.Fatalf("thresholds = %v", s.Thresholds)
	}
	if s.ExpectedCost <= 0 || s.ExpectedCost >= 1 {
		t.Errorf("J* = %v", s.ExpectedCost)
	}
	th := s.Thresholds[0]
	if s.ShouldRecover(th-0.01, 1) {
		t.Error("recovered below threshold")
	}
	if !s.ShouldRecover(th+0.01, 1) {
		t.Error("did not recover above threshold")
	}
}

func TestLearnRecoveryStrategyFacade(t *testing.T) {
	s, err := LearnRecoveryStrategy(DefaultNodeModel(), InfiniteDeltaR, OptimizerCEM, 120, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Thresholds) != 1 {
		t.Fatalf("thresholds = %v", s.Thresholds)
	}
	if _, err := LearnRecoveryStrategy(DefaultNodeModel(), InfiniteDeltaR, "nope", 100, 1); err == nil {
		t.Error("unknown optimizer should fail")
	}
}

func TestSolveReplicationStrategyFacade(t *testing.T) {
	r, err := SolveReplicationStrategy(13, 1, 0.9, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.AddProbability) != 14 {
		t.Fatalf("policy length %d", len(r.AddProbability))
	}
	if r.Availability < 0.9-1e-6 {
		t.Errorf("availability = %v", r.Availability)
	}
	rng := rand.New(rand.NewSource(1))
	// s = 0 should essentially always add under a tight constraint.
	adds := 0
	for i := 0; i < 50; i++ {
		if r.ShouldAdd(rng, 0) {
			adds++
		}
	}
	if adds == 0 {
		t.Error("never adds at s=0")
	}
}

func TestRunFleetSuiteFacade(t *testing.T) {
	names := FleetSuiteNames()
	if len(names) < 3 {
		t.Fatalf("built-in suites: %v", names)
	}
	report, err := RunFleetSuite("smoke", FleetOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if report.Suite != "smoke" || report.Scenarios != 4 || len(report.Cells) != 2 {
		t.Fatalf("report shape: %+v", report)
	}
	if report.RecoverySolves != 1 || report.ReplicationSolves != 1 {
		t.Errorf("solves = %d/%d, want 1/1 (strategy cache)",
			report.RecoverySolves, report.ReplicationSolves)
	}
	for _, c := range report.Cells {
		if c.Runs != 2 {
			t.Errorf("cell %s folded %d runs", c.Strategy, c.Runs)
		}
		if c.Availability < 0 || c.Availability > 1 {
			t.Errorf("cell %s availability %v", c.Strategy, c.Availability)
		}
	}
	if _, err := RunFleetSuite("no-such-suite", FleetOptions{}); err == nil {
		t.Error("unknown suite should fail")
	}
}

func TestRunFleetSuiteFileFacade(t *testing.T) {
	data, err := FleetSuiteJSON("smoke")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "smoke.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile, err := RunFleetSuiteFile(path, FleetOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	builtin, err := RunFleetSuite("smoke", FleetOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromFile, builtin) {
		t.Errorf("suite-file run differs from built-in run:\n%+v\n%+v", fromFile, builtin)
	}
	if _, err := FleetSuiteJSON("no-such-suite"); err == nil {
		t.Error("unknown suite should fail")
	}
	if _, err := RunFleetSuiteFile(filepath.Join(t.TempDir(), "missing.json"), FleetOptions{}); err == nil {
		t.Error("missing suite file should fail")
	}
}

func TestMTTFAndReliabilityFacade(t *testing.T) {
	m1, err := MTTF(20, 3, 1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := MTTF(40, 3, 1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if m2 <= m1 {
		t.Errorf("MTTF not increasing: %v vs %v", m1, m2)
	}
	r, err := Reliability(25, 3, 1, 50, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if r[0] != 1 || r[50] >= r[0] {
		t.Errorf("reliability curve wrong: R(0)=%v R(50)=%v", r[0], r[50])
	}
}

func TestCompareTable7Shape(t *testing.T) {
	rows, err := Compare(CompareConfig{
		N1:     6,
		DeltaR: 15,
		Steps:  400,
		Seeds:  []int64{1, 2, 3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]StrategyMetrics{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	tol := byName["TOLERANCE"]
	noRec := byName["NO-RECOVERY"]
	per := byName["PERIODIC"]
	// The paper's headline shape (Table 7, Fig 12). Absolute levels differ
	// from the paper (our emulated intrusion rate pA = 0.1 per node-step
	// with k = 1 queues recoveries; see EXPERIMENTS.md), but the ordering
	// and the order-of-magnitude T(R) gap must hold.
	if tol.Availability < 0.75 {
		t.Errorf("TOLERANCE T(A) = %v, want > 0.75", tol.Availability)
	}
	if tol.Availability < per.Availability-0.1 {
		t.Errorf("TOLERANCE T(A) = %v clearly below PERIODIC %v",
			tol.Availability, per.Availability)
	}
	if noRec.Availability > 0.5 {
		t.Errorf("NO-RECOVERY T(A) = %v, want low", noRec.Availability)
	}
	if tol.TimeToRecovery >= per.TimeToRecovery {
		t.Errorf("TOLERANCE T(R) = %v not below PERIODIC %v",
			tol.TimeToRecovery, per.TimeToRecovery)
	}
	if noRec.TimeToRecovery < 500 {
		t.Errorf("NO-RECOVERY T(R) = %v, want ~1000", noRec.TimeToRecovery)
	}
	if _, err := Compare(CompareConfig{N1: 0}); err == nil {
		t.Error("N1 = 0 should fail")
	}
}

func TestDetectorSensitivityFacade(t *testing.T) {
	pts, err := DetectorSensitivity(DefaultNodeModel(), []float64{0.3, 0.6, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	// Fig 14: better detectors (higher divergence) yield lower cost.
	if !(pts[0][0] < pts[2][0]) {
		t.Errorf("divergence not increasing in separation: %v", pts)
	}
	if !(pts[0][1] > pts[2][1]) {
		t.Errorf("J* not decreasing in detector quality: %v", pts)
	}
	if _, err := DetectorSensitivity(DefaultNodeModel(), []float64{0}); err == nil {
		t.Error("zero separation should fail")
	}
}
