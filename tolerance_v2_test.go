package tolerance

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
)

// TestErrBadInputContract is the facade error contract: every validation
// failure, across every entry point (v2 and deprecated wrappers), wraps
// ErrBadInput.
func TestErrBadInputContract(t *testing.T) {
	ctx := context.Background()
	missing := filepath.Join(t.TempDir(), "missing.json")
	cases := []struct {
		name string
		call func() error
	}{
		{"Solve nil problem", func() error {
			_, err := Solve(ctx, nil)
			return err
		}},
		{"Solve negative deltaR", func() error {
			_, err := Solve(ctx, RecoveryProblem{Model: DefaultNodeModel(), DeltaR: -1})
			return err
		}},
		{"Solve invalid model", func() error {
			_, err := Solve(ctx, RecoveryProblem{Model: NodeModel{PA: -1, PC1: 0.1, PC2: 0.1, PU: 0.1, Eta: 2}})
			return err
		}},
		{"Solve unknown method", func() error {
			_, err := Solve(ctx, RecoveryProblem{Model: DefaultNodeModel()}, WithMethod("nope"))
			return err
		}},
		{"Solve negative budget", func() error {
			_, err := Solve(ctx, RecoveryProblem{Model: DefaultNodeModel()}, WithBudget(-1))
			return err
		}},
		{"Solve Algorithm 1 budget too small", func() error {
			_, err := Solve(ctx, RecoveryProblem{Model: DefaultNodeModel()},
				WithMethod(OptimizerCEM), WithBudget(1))
			return err
		}},
		{"Solve replication bad shape", func() error {
			_, err := Solve(ctx, ReplicationProblem{SMax: 0, F: 1, EpsilonA: 0.9, Q: 0.9})
			return err
		}},
		{"Solve replication with learned method", func() error {
			_, err := Solve(ctx, ReplicationProblem{SMax: 13, F: 1, EpsilonA: 0.9, Q: 0.9},
				WithMethod(OptimizerCEM))
			return err
		}},
		{"RunSuite unknown name", func() error {
			_, err := RunSuite(ctx, SuiteByName("no-such-suite"))
			return err
		}},
		{"RunSuite missing file", func() error {
			_, err := RunSuite(ctx, SuiteFromFile(missing))
			return err
		}},
		{"RunSuite malformed JSON", func() error {
			_, err := RunSuite(ctx, SuiteFromJSON([]byte("{")))
			return err
		}},
		{"RunSuite empty reference", func() error {
			_, err := RunSuite(ctx, SuiteRef{})
			return err
		}},
		{"RunSuite bad shard", func() error {
			_, err := RunSuite(ctx, SuiteByName("smoke"), WithShard(5, 2))
			return err
		}},
		{"RunSuite negative workers", func() error {
			_, err := RunSuite(ctx, SuiteByName("smoke"), WithWorkers(-1))
			return err
		}},
		{"SuiteJSON unknown name", func() error {
			_, err := SuiteJSON(SuiteByName("no-such-suite"))
			return err
		}},
		{"RegisterStrategy nil", func() error {
			return RegisterStrategy(nil)
		}},
		{"RegisterStrategy duplicate name", func() error {
			return RegisterStrategy(dupStrategy{})
		}},
		{"LearnRecoveryStrategy unknown optimizer", func() error {
			_, err := LearnRecoveryStrategy(DefaultNodeModel(), 0, "nope", 100, 1)
			return err
		}},
		{"RunFleetSuite unknown name", func() error {
			_, err := RunFleetSuite("no-such-suite", FleetOptions{})
			return err
		}},
		{"RunFleetSuiteFile missing file", func() error {
			_, err := RunFleetSuiteFile(missing, FleetOptions{})
			return err
		}},
		{"FleetSuiteJSON unknown name", func() error {
			_, err := FleetSuiteJSON("no-such-suite")
			return err
		}},
		{"Compare bad N1", func() error {
			_, err := Compare(CompareConfig{N1: 0})
			return err
		}},
		{"Compare negative DeltaR", func() error {
			_, err := Compare(CompareConfig{N1: 3, DeltaR: -1})
			return err
		}},
		{"DetectorSensitivity zero separation", func() error {
			_, err := DetectorSensitivity(DefaultNodeModel(), []float64{0})
			return err
		}},
		{"MTTF bad n1", func() error {
			_, err := MTTF(0, 1, 1, 0.9)
			return err
		}},
		{"MTTF bad q", func() error {
			_, err := MTTF(3, 1, 1, 0)
			return err
		}},
		{"Reliability negative horizon", func() error {
			_, err := Reliability(3, 1, 1, -1, 0.9)
			return err
		}},
	}
	for _, tc := range cases {
		err := tc.call()
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !errors.Is(err, ErrBadInput) {
			t.Errorf("%s: err = %v, does not wrap ErrBadInput", tc.name, err)
		}
	}
}

// dupStrategy collides with the built-in TOLERANCE registration.
type dupStrategy struct{}

func (dupStrategy) Name() string                    { return "TOLERANCE" }
func (dupStrategy) Describe() string                { return "dup" }
func (dupStrategy) Fingerprint(ScenarioSpec) string { return "dup" }
func (dupStrategy) Policy(context.Context, ScenarioSpec) (Policy, error) {
	return nil, errors.New("never built")
}

// TestSolveRecoveryMethods exercises the unified entry point across solver
// families: exact DP, a learned Algorithm 1 optimizer, and PPO (which has
// no thresholds but still decides through ShouldRecover).
func TestSolveRecoveryMethods(t *testing.T) {
	ctx := context.Background()
	dp, err := Solve(ctx, RecoveryProblem{Model: DefaultNodeModel(), DeltaR: InfiniteDeltaR})
	if err != nil {
		t.Fatal(err)
	}
	if dp.Method != MethodDP || dp.Replication != nil {
		t.Fatalf("dp solution shape: %+v", dp)
	}
	if len(dp.Recovery.Thresholds) != 1 || dp.Recovery.ExpectedCost <= 0 || dp.Recovery.ExpectedCost >= 1 {
		t.Fatalf("dp recovery: %+v", dp.Recovery)
	}
	th := dp.Recovery.Thresholds[0]
	if dp.Recovery.ShouldRecover(th-0.01, 1) || !dp.Recovery.ShouldRecover(th+0.01, 1) {
		t.Error("dp ShouldRecover does not match the threshold")
	}

	cem, err := Solve(ctx, RecoveryProblem{Model: DefaultNodeModel(), DeltaR: InfiniteDeltaR},
		WithMethod(OptimizerCEM), WithBudget(60), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if cem.Method != OptimizerCEM || len(cem.Recovery.Thresholds) != 1 {
		t.Fatalf("cem solution shape: %+v", cem)
	}

	ppoSol, err := Solve(ctx, RecoveryProblem{Model: DefaultNodeModel(), DeltaR: 15},
		WithMethod(MethodPPO), WithBudget(2), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ppoSol.Recovery.Thresholds) != 0 {
		t.Errorf("ppo thresholds = %v, want none", ppoSol.Recovery.Thresholds)
	}
	// The decision rule is still callable.
	_ = ppoSol.Recovery.ShouldRecover(0.9, 1)

	// A cancelled context short-circuits.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := Solve(cancelled, RecoveryProblem{Model: DefaultNodeModel()}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Solve: err = %v", err)
	}
}

// TestRunSuiteMatchesDeprecatedWrapper guards the compatibility contract:
// the deprecated wrappers are thin shims over the v2 entry points, so both
// paths produce identical reports.
func TestRunSuiteMatchesDeprecatedWrapper(t *testing.T) {
	v2, err := RunSuite(context.Background(), SuiteByName("smoke"), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	v1, err := RunFleetSuite("smoke", FleetOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Errorf("wrapper and v2 reports differ:\n%+v\n%+v", v1, v2)
	}
}

// TestRunSuiteStreamsRecords: the record stream delivers every scenario in
// strict index order, with cell-consistent strategy names, while the run is
// in flight.
func TestRunSuiteStreamsRecords(t *testing.T) {
	var records []ScenarioRecord
	report, err := RunSuite(context.Background(), SuiteByName("smoke"),
		WithWorkers(4),
		WithRecordHandler(func(rec ScenarioRecord) error {
			records = append(records, rec)
			return nil
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != report.Scenarios {
		t.Fatalf("streamed %d records, report says %d scenarios", len(records), report.Scenarios)
	}
	for i, rec := range records {
		if rec.Index != i {
			t.Errorf("record %d has index %d (stream must be index-ordered)", i, rec.Index)
		}
		if want := report.Cells[rec.Cell].Strategy; rec.Strategy != want {
			t.Errorf("record %d strategy %q, cell says %q", i, rec.Strategy, want)
		}
		if rec.Metrics.Availability < 0 || rec.Metrics.Availability > 1 {
			t.Errorf("record %d availability %v", i, rec.Metrics.Availability)
		}
	}

	// A handler error aborts the run.
	boom := errors.New("boom")
	if _, err := RunSuite(context.Background(), SuiteByName("smoke"),
		WithRecordHandler(func(ScenarioRecord) error { return boom }),
	); !errors.Is(err, boom) {
		t.Errorf("handler error not propagated: %v", err)
	}
}

// TestStreamSuite: the iterator form yields the same records and supports
// early exit; failures surface as a final yielded error.
func TestStreamSuite(t *testing.T) {
	ctx := context.Background()
	var indices []int
	for rec, err := range StreamSuite(ctx, SuiteByName("smoke"), WithWorkers(2)) {
		if err != nil {
			t.Fatal(err)
		}
		indices = append(indices, rec.Index)
	}
	if len(indices) != 4 {
		t.Fatalf("streamed %d records, want 4", len(indices))
	}

	// Breaking out of the loop stops the run cleanly.
	count := 0
	for _, err := range StreamSuite(ctx, SuiteByName("smoke")) {
		if err != nil {
			t.Fatal(err)
		}
		count++
		break
	}
	if count != 1 {
		t.Fatalf("early exit consumed %d records", count)
	}

	// Errors arrive as the final yield.
	sawErr := false
	for _, err := range StreamSuite(ctx, SuiteByName("no-such-suite")) {
		if err != nil {
			sawErr = true
			if !errors.Is(err, ErrBadInput) {
				t.Errorf("stream error = %v, want ErrBadInput", err)
			}
		}
	}
	if !sawErr {
		t.Error("unknown suite streamed no error")
	}
}

// TestRunSuiteCancellation: cancelling mid-run returns the context error
// promptly, after an index-ordered prefix of records has streamed.
func TestRunSuiteCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var got []int
	_, err := RunSuite(ctx, SuiteByName("smoke"),
		WithWorkers(2),
		WithRecordHandler(func(rec ScenarioRecord) error {
			got = append(got, rec.Index)
			if len(got) == 2 {
				cancel()
			}
			return nil
		}),
	)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(got) < 2 {
		t.Fatalf("streamed %d records before cancel, want >= 2", len(got))
	}
	for i, idx := range got {
		if idx != i {
			t.Errorf("record %d has index %d: cancelled stream must still be an ordered prefix", i, idx)
		}
	}
}

// TestCompareDefaults exercises the defaulting paths (model, epsilon, seed
// list) and the full row shape.
func TestCompareDefaults(t *testing.T) {
	rows, err := Compare(CompareConfig{N1: 3, DeltaR: 15, Steps: 120, Seeds: []int64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	want := map[string]bool{
		"TOLERANCE": false, "NO-RECOVERY": false, "PERIODIC": false, "PERIODIC-ADAPTIVE": false,
	}
	for _, r := range rows {
		if _, ok := want[r.Strategy]; !ok {
			t.Errorf("unexpected strategy %q", r.Strategy)
			continue
		}
		want[r.Strategy] = true
		if r.Availability < 0 || r.Availability > 1 {
			t.Errorf("%s availability %v", r.Strategy, r.Availability)
		}
		if r.AvailabilityCI < 0 || r.TimeToRecoveryCI < 0 || r.RecoveryFreqCI < 0 {
			t.Errorf("%s has a negative confidence half-width", r.Strategy)
		}
		if r.AvgNodes <= 0 {
			t.Errorf("%s avg nodes %v", r.Strategy, r.AvgNodes)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("missing strategy %q", name)
		}
	}
}

// TestDetectorSensitivityShape covers the Fig 14 sweep beyond the examples:
// point count, finite values, and input validation.
func TestDetectorSensitivityShape(t *testing.T) {
	seps := []float64{0.4, 0.7, 1.0}
	pts, err := DetectorSensitivity(DefaultNodeModel(), seps)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(seps) {
		t.Fatalf("%d points, want %d", len(pts), len(seps))
	}
	for i, p := range pts {
		if p[0] <= 0 {
			t.Errorf("point %d divergence %v, want > 0", i, p[0])
		}
		if p[1] <= 0 || p[1] >= 1 {
			t.Errorf("point %d J* %v, want in (0, 1)", i, p[1])
		}
	}
	if _, err := DetectorSensitivity(DefaultNodeModel(), []float64{-0.5}); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative separation: err = %v", err)
	}
	if pts2, err := DetectorSensitivity(DefaultNodeModel(), nil); err != nil || len(pts2) != 0 {
		t.Errorf("empty separations: pts = %v, err = %v", pts2, err)
	}
}

// TestRunSuiteLearnedKind: the acceptance path — a JSON suite definition
// with a learned policy kind runs end to end through the public facade.
func TestRunSuiteLearnedKind(t *testing.T) {
	data := []byte(fmt.Sprintf(`{
		"version": 1,
		"name": "learned-facade",
		"seed": 9,
		"seedsPerCell": 1,
		"steps": 60,
		"fitSamples": 200,
		"attackRates": [0.1],
		"n1s": [3],
		"deltaRs": [15],
		"policies": ["learned:%s", "TOLERANCE"],
		"learned": {"budget": 20, "episodes": 4, "horizon": 50}
	}`, "cem"))
	report, err := RunSuite(context.Background(), SuiteFromJSON(data), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Cells) != 2 || report.Scenarios != 2 {
		t.Fatalf("report shape: %+v", report)
	}
	if report.Cells[0].Strategy != "learned:cem" {
		t.Errorf("cell 0 strategy = %q", report.Cells[0].Strategy)
	}
}
