package tolerance

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §2 for the experiment index and EXPERIMENTS.md
// for measured results). Each benchmark regenerates the corresponding
// artifact with a budget sized for `go test -bench`; cmd/tolerance-bench
// prints the full rows/series and supports larger budgets.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tolerance/internal/cmdp"
	"tolerance/internal/dist"
	"tolerance/internal/emulation"
	"tolerance/internal/fleet"
	"tolerance/internal/ids"
	"tolerance/internal/minbft"
	"tolerance/internal/nodemodel"
	"tolerance/internal/opt"
	"tolerance/internal/pomdp"
	"tolerance/internal/ppo"
	"tolerance/internal/recovery"
	"tolerance/internal/replica"
	"tolerance/internal/transport"
	"tolerance/internal/usig"
)

// BenchmarkFig04ValueFunction computes the optimal value function of the
// node POMDP with exact incremental pruning (the alpha vectors of Fig 4).
func BenchmarkFig04ValueFunction(b *testing.B) {
	params := nodemodel.DefaultParams()
	params.PA = 0.01 // Fig 4 configuration (App. E)
	model, err := params.POMDP()
	if err != nil {
		b.Fatal(err)
	}
	ip := &pomdp.IncrementalPruning{MaxVectors: 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stages, err := ip.SolveFiniteHorizon(model, 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(stages[4]) == 0 {
			b.Fatal("no alpha vectors")
		}
	}
}

// BenchmarkFig05CompromiseProb evaluates P[compromised or crashed by t]
// without recoveries for the four pA values of Fig 5.
func BenchmarkFig05CompromiseProb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, pa := range []float64{0.1, 0.05, 0.025, 0.01} {
			p := nodemodel.DefaultParams()
			p.PA = pa
			p.PU = 0
			curve := p.FailureProbByTime(100)
			if curve[100] <= curve[1] {
				b.Fatal("curve not increasing")
			}
		}
	}
}

// BenchmarkFig06aMTTF computes the mean-time-to-failure sweep of Fig 6a.
func BenchmarkFig06aMTTF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, pa := range []float64{0.1, 0.025, 0.01} {
			q := (1 - pa) * (1 - 1e-5)
			for _, n1 := range []int{10, 20, 40, 80} {
				if _, err := cmdp.MTTF(n1, 3, 1, q); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkFig06bReliability computes the reliability curves of Fig 6b.
func BenchmarkFig06bReliability(b *testing.B) {
	q := (1 - 0.05) * (1 - 1e-5)
	for i := 0; i < b.N; i++ {
		for _, n1 := range []int{25, 50, 100} {
			if _, err := cmdp.Reliability(n1, 3, 1, 100, q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable2Solvers runs Algorithm 1 with each parametric optimizer on
// Problem 1 (reduced budget; Table 2 / Figs 7-8 shape: CEM/DE/BO near the
// DP optimum).
func BenchmarkTable2Solvers(b *testing.B) {
	params := nodemodel.DefaultParams()
	optimizers := []opt.Optimizer{opt.CEM{Population: 30}, opt.DE{}, opt.BO{InitialSamples: 10}, opt.SPSA{}}
	for _, po := range optimizers {
		po := po
		b.Run(po.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := recovery.Algorithm1(context.Background(), params, recovery.Algorithm1Config{
					DeltaR:    recovery.InfiniteDeltaR,
					Optimizer: po,
					Budget:    120,
					Episodes:  20,
					Horizon:   120,
					Seed:      int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("ppo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := ppo.Train(context.Background(), params, ppo.Config{
				DeltaR:            recovery.InfiniteDeltaR,
				Iterations:        5,
				StepsPerIteration: 256,
				Horizon:           120,
				Hidden:            16,
				Layers:            2,
				Seed:              int64(i),
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ip", func(b *testing.B) {
		model, err := params.POMDP()
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			ip := &pomdp.IncrementalPruning{MaxVectors: 16, TimeBudget: 5 * time.Second}
			if _, _, err := ip.SolveInfinite(model, 1e-3, 6); err != nil && err != pomdp.ErrNotConverged {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig08DPHorizon measures how the exact solve time grows with
// Delta_R (the Fig 8 trend: IP/DP cost increases with the horizon).
func BenchmarkFig08DPHorizon(b *testing.B) {
	params := nodemodel.DefaultParams()
	for _, deltaR := range []int{5, 15, 25} {
		deltaR := deltaR
		b.Run(fmt.Sprintf("deltaR=%d", deltaR), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := recovery.SolveDP(params, recovery.DPConfig{DeltaR: deltaR, GridSize: 300}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveStationary measures the Delta_R = infinity solve: bisection
// on the average cost around a double-buffered optimal-stopping value
// iteration (the companion to BenchmarkFig08DPHorizon's windowed solves).
func BenchmarkSolveStationary(b *testing.B) {
	params := nodemodel.DefaultParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sol, err := recovery.SolveDP(params, recovery.DPConfig{
			DeltaR: recovery.InfiniteDeltaR, GridSize: 300})
		if err != nil {
			b.Fatal(err)
		}
		if len(sol.Thresholds) != 1 {
			b.Fatal("stationary solve should yield one threshold")
		}
	}
}

// BenchmarkFig09LPSolveTime solves Problem 2's LP for growing state spaces
// (Fig 9 sweeps smax to 2048; the default bench covers the polynomial
// growth region, cmd/tolerance-bench -full goes further).
func BenchmarkFig09LPSolveTime(b *testing.B) {
	for _, smax := range []int{4, 8, 16, 32, 64, 128} {
		smax := smax
		b.Run(fmt.Sprintf("smax=%d", smax), func(b *testing.B) {
			model, err := cmdp.NewBinomialModel(smax, 3, 0.9, 0.95, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cmdp.Solve(model); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig10MinBFTThroughput measures request throughput of the MinBFT
// implementation for growing replica groups (Fig 10).
func BenchmarkFig10MinBFTThroughput(b *testing.B) {
	key := []byte("bench-minbft-key-32-bytes-long!!")
	for _, n := range []int{3, 5, 7, 10} {
		n := n
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			net, err := transport.NewSimNetwork(transport.Conditions{}, 1)
			if err != nil {
				b.Fatal(err)
			}
			defer net.Close()
			verifier, _ := usig.NewHMACVerifier(key)
			registry := replica.NewRegistry()
			members := make([]string, n)
			for i := range members {
				members[i] = fmt.Sprintf("r%d", i)
			}
			var replicas []*minbft.Replica
			for _, id := range members {
				ep, _ := net.Endpoint(id)
				u, _ := usig.NewHMAC(id, key)
				r, err := minbft.NewReplica(minbft.Config{
					ID: id, Members: members, Endpoint: ep, USIG: u,
					Verifier: verifier, Registry: registry,
					Store:          replica.NewKVStore(),
					RequestTimeout: 2 * time.Second,
					TickInterval:   2 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				replicas = append(replicas, r)
			}
			defer func() {
				for _, r := range replicas {
					r.Stop()
				}
			}()
			signer, _ := replica.NewSigner("bench-client")
			_ = registry.Register("bench-client", signer.PublicKey())
			ep, _ := net.Endpoint("bench-client")
			f := (n - 1) / 2
			client, err := minbft.NewClient(signer, ep, members, f)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Submit(replica.Op{
					Type: replica.OpWrite, Key: "k", Value: "v",
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

// BenchmarkFig11EmpiricalZ fits the observation models of all ten
// containers with the paper's M = 25,000 samples (Fig 11).
func BenchmarkFig11EmpiricalZ(b *testing.B) {
	catalog, err := emulation.Catalog()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range catalog {
			if _, err := ids.Fit(rng, c.Profile, 25000); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable7Evaluation runs one Table 7 cell (N1 = 6, Delta_R = 15)
// per strategy on the emulated testbed.
func BenchmarkTable7Evaluation(b *testing.B) {
	cfg := CompareConfig{N1: 6, DeltaR: 15, Steps: 300, Seeds: []int64{1, 2, 3}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := Compare(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("%d strategies", len(rows))
		}
	}
}

// BenchmarkFig13Strategies computes the two strategy illustrations of
// Fig 13: the replication rule pi(a=1|s) and the recovery threshold.
func BenchmarkFig13Strategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := SolveReplicationStrategy(13, 1, 0.9, 0.97)
		if err != nil {
			b.Fatal(err)
		}
		rec, err := SolveRecoveryStrategy(DefaultNodeModel(), InfiniteDeltaR)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.AddProbability) != 14 || len(rec.Thresholds) != 1 {
			b.Fatal("unexpected strategy shapes")
		}
	}
}

// BenchmarkFig14DetectionSensitivity sweeps detector quality and resolves
// Problem 1 (Fig 14 left panel).
func BenchmarkFig14DetectionSensitivity(b *testing.B) {
	seps := []float64{0.3, 0.5, 0.7, 1.0}
	for i := 0; i < b.N; i++ {
		pts, err := DetectorSensitivity(DefaultNodeModel(), seps)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != len(seps) {
			b.Fatal("missing points")
		}
	}
}

// BenchmarkFig15Thresholds computes the within-window threshold curve
// alpha*_t for Delta_R = 100 (Fig 15b).
func BenchmarkFig15Thresholds(b *testing.B) {
	params := nodemodel.DefaultParams()
	for i := 0; i < b.N; i++ {
		sol, err := recovery.SolveDP(params, recovery.DPConfig{DeltaR: 100, GridSize: 200})
		if err != nil {
			b.Fatal(err)
		}
		if len(sol.Thresholds) != 99 {
			b.Fatal("wrong threshold count")
		}
	}
}

// BenchmarkFig16TransitionFn tabulates fS rows (Fig 16).
func BenchmarkFig16TransitionFn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		model, err := cmdp.NewBinomialModel(25, 3, 0.9, 0.9, 0)
		if err != nil {
			b.Fatal(err)
		}
		_ = model.FS[0][10]
	}
}

// BenchmarkFig18MetricDivergence ranks the candidate detection metrics by
// empirical KL divergence (Fig 18 / App. H).
func BenchmarkFig18MetricDivergence(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	profiles := ids.DefaultMetricProfiles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranks, err := ids.RankMetrics(rng, profiles, 25000)
		if err != nil {
			b.Fatal(err)
		}
		if ranks[0].Metric != ids.MetricAlerts {
			b.Fatal("alerts not top-ranked")
		}
	}
}

// BenchmarkFleet measures the scenario-fleet engine's throughput
// (scenarios/sec) at growing worker counts — the parallel-speedup tracking
// metric for grid evaluations. The strategy cache is shared across
// iterations so the numbers reflect steady-state scenario execution, not
// one-time control-problem solves.
func BenchmarkFleet(b *testing.B) {
	suite := fleet.Suite{
		Name:         "bench",
		Seed:         1,
		SeedsPerCell: 1,
		Steps:        100,
		FitSamples:   500,
		AttackRates:  []float64{0.05, 0.1},
		N1s:          []int{3, 6},
		DeltaRs:      []int{15, 25},
		Policies: []fleet.PolicyKind{
			fleet.PolicyTolerance, fleet.PolicyNoRecovery,
			fleet.PolicyPeriodic, fleet.PolicyPeriodicAdaptive,
		},
	}
	scenarios := suite.NumScenarios()
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cache := fleet.NewStrategyCache()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := fleet.Run(context.Background(), suite, fleet.Config{
					Workers: workers,
					Cache:   cache,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Scenarios != scenarios {
					b.Fatalf("ran %d scenarios, want %d", res.Scenarios, scenarios)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*scenarios)/b.Elapsed().Seconds(), "scenarios/s")
		})
	}
}

// BenchmarkLearnedTraining measures learned-strategy training throughput
// at growing evaluation-worker counts — the Fig 7 convergence-suite
// tracking metric. Training is bit-identical at any worker count (enforced
// by TestAlgorithm1WorkersBitIdentical / TestTrainWorkersBitIdentical), so
// the sweep is pure wall-clock: near-linear in workers on multi-core
// hosts, flat on a 1-core CI host.
func BenchmarkLearnedTraining(b *testing.B) {
	params := nodemodel.DefaultParams()
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("cem/workers=%d", workers), func(b *testing.B) {
			const budget = 200
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := recovery.Algorithm1(context.Background(), params, recovery.Algorithm1Config{
					DeltaR:    15,
					Optimizer: opt.CEM{},
					Budget:    budget,
					Episodes:  20,
					Horizon:   100,
					Seed:      1,
					Workers:   workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(budget*b.N)/b.Elapsed().Seconds(), "evals/s")
		})
		b.Run(fmt.Sprintf("ppo/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ppo.Train(context.Background(), params, ppo.Config{
					DeltaR:            15,
					Iterations:        3,
					StepsPerIteration: 512,
					Horizon:           100,
					Hidden:            16,
					Layers:            2,
					Seed:              1,
					Workers:           workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBeliefUpdate measures the cost of one Appendix A belief update,
// the hot operation of every node controller.
func BenchmarkBeliefUpdate(b *testing.B) {
	p := nodemodel.DefaultParams()
	belief := 0.3
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		belief = p.UpdateBelief(belief, nodemodel.Wait, i%11)
	}
	_ = belief
}

// BenchmarkKLDivergence measures the Fig 18 divergence computation.
func BenchmarkKLDivergence(b *testing.B) {
	h := dist.MustBetaBinomial(31, 0.7, 3).Categorical()
	c := dist.MustBetaBinomial(31, 2.2, 1.2).Categorical()
	for i := 0; i < b.N; i++ {
		_ = dist.KLSmoothed(h, c, 1e-9)
	}
}
