package ppo

import (
	"context"
	"math/rand"
	"testing"

	"tolerance/internal/nodemodel"
	"tolerance/internal/recovery"
)

func TestTrainValidation(t *testing.T) {
	p := nodemodel.DefaultParams()
	if _, err := Train(context.Background(), p, Config{DeltaR: -1}); err == nil {
		t.Error("negative deltaR should fail")
	}
	bad := p
	bad.Eta = 0
	if _, err := Train(context.Background(), bad, Config{}); err == nil {
		t.Error("bad params should fail")
	}
}

func TestTrainImprovesOverUntrained(t *testing.T) {
	p := nodemodel.DefaultParams()
	res, err := Train(context.Background(), p, Config{
		DeltaR:            recovery.InfiniteDeltaR,
		Iterations:        15,
		StepsPerIteration: 512,
		Horizon:           120,
		Hidden:            16,
		Layers:            2,
		LearningRate:      3e-3,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy == nil {
		t.Fatal("nil policy")
	}
	if len(res.Trace) == 0 {
		t.Fatal("empty trace")
	}
	// The trained policy should clearly beat never-recover (cost -> eta)
	// and not be much worse than always-recover (cost 1).
	rng := rand.New(rand.NewSource(50))
	m, err := recovery.Evaluate(rng, p, res.Policy, recovery.SimConfig{
		Episodes: 100, Horizon: 200, DeltaR: recovery.InfiniteDeltaR,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.AvgCost > 1.2 {
		t.Errorf("PPO policy cost = %v, want < 1.2 (eta = %v)", m.AvgCost, p.Eta)
	}
}

func TestPolicyActionConsistentWithProbabilities(t *testing.T) {
	p := nodemodel.DefaultParams()
	res, err := Train(context.Background(), p, Config{
		DeltaR:            recovery.InfiniteDeltaR,
		Iterations:        2,
		StepsPerIteration: 128,
		Horizon:           60,
		Hidden:            8,
		Layers:            1,
		Seed:              2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []float64{0, 0.25, 0.5, 0.75, 1} {
		probs := res.Policy.Probabilities(b, 1)
		action := res.Policy.Action(b, 1)
		wantRecover := probs[1] >= 0.5
		gotRecover := action == nodemodel.Recover
		if wantRecover != gotRecover {
			t.Errorf("belief %v: action %v inconsistent with probs %v", b, action, probs)
		}
	}
}

func TestPolicyFeaturesWindowFraction(t *testing.T) {
	p := nodemodel.DefaultParams()
	res, err := Train(context.Background(), p, Config{
		DeltaR:            10,
		Iterations:        2,
		StepsPerIteration: 128,
		Horizon:           60,
		Hidden:            8,
		Layers:            1,
		Seed:              3,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Policy.features(0.5, 7)
	if f[1] != 0.7 {
		t.Errorf("window fraction = %v, want 0.7", f[1])
	}
	// Infinite deltaR uses zero fraction.
	res.Policy.deltaR = recovery.InfiniteDeltaR
	if res.Policy.features(0.5, 7)[1] != 0 {
		t.Error("infinite deltaR should use zero window fraction")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.ClipEpsilon != 0.2 || c.GAELambda != 0.95 || c.Gamma != 0.99 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if c.Hidden != 64 || c.Epochs != 4 {
		t.Errorf("defaults wrong: %+v", c)
	}
}

// TestTrainWorkersBitIdentical is the parallel-rollout determinism
// contract: PPO trains exactly the same policy for any Workers value,
// because episodes play on per-episode rng streams derived from (seed,
// iteration, episode index) and fold into the batch in episode order.
func TestTrainWorkersBitIdentical(t *testing.T) {
	params := nodemodel.DefaultParams()
	run := func(workers int) *Result {
		res, err := Train(context.Background(), params, Config{
			DeltaR:            15,
			Iterations:        3,
			StepsPerIteration: 128,
			Horizon:           60,
			Hidden:            8,
			Layers:            2,
			Seed:              6,
			Workers:           workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	probePoints := []struct {
		belief float64
		pos    int
	}{{0.05, 1}, {0.3, 5}, {0.7, 10}, {0.95, 14}}
	for _, workers := range []int{2, 8} {
		res := run(workers)
		if res.Cost != base.Cost {
			t.Errorf("workers=%d: cost %v != sequential %v", workers, res.Cost, base.Cost)
		}
		for _, pt := range probePoints {
			got := res.Policy.Probabilities(pt.belief, pt.pos)
			want := base.Policy.Probabilities(pt.belief, pt.pos)
			if got[0] != want[0] || got[1] != want[1] {
				t.Errorf("workers=%d: probabilities(%v, %d) = %v != %v",
					workers, pt.belief, pt.pos, got, want)
			}
		}
	}
}
