// Package ppo implements Proximal Policy Optimization (the paper's [73]
// baseline in Table 2) for Problem 1: a stochastic recovery policy over the
// belief state trained with the clipped surrogate objective, GAE(lambda)
// advantages, and the Table 8 hyperparameters (4 layers, 64 ReLU units,
// clip 0.2, GAE lambda 0.95, entropy coefficient 1e-4).
package ppo

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"tolerance/internal/dist"
	"tolerance/internal/nn"
	"tolerance/internal/nodemodel"
	"tolerance/internal/opt"
	"tolerance/internal/recovery"
	"tolerance/internal/telemetry"
)

// ErrBadConfig is returned for invalid training configurations.
var ErrBadConfig = errors.New("ppo: bad config")

// Config holds PPO training hyperparameters.
type Config struct {
	// DeltaR is the BTR bound of the environment.
	DeltaR int
	// Iterations is the number of rollout/update cycles.
	Iterations int
	// StepsPerIteration is the rollout length per cycle.
	StepsPerIteration int
	// Horizon of each episode.
	Horizon int
	// Epochs per update (default 4).
	Epochs int
	// ClipEpsilon is the PPO clip range (Table 8: 0.2).
	ClipEpsilon float64
	// Gamma is the discount used as an average-cost proxy (default 0.99).
	Gamma float64
	// GAELambda is the advantage-estimation decay (Table 8: 0.95).
	GAELambda float64
	// EntropyCoef weighs the entropy bonus (Table 8: 1e-4).
	EntropyCoef float64
	// LearningRate for both networks (default 3e-4; Table 8 lists 1e-5,
	// which needs far more iterations than the test budget).
	LearningRate float64
	// Hidden is the hidden width (Table 8: 64) and Layers the number of
	// hidden layers (Table 8: 4).
	Hidden, Layers int
	// Seed drives all randomness.
	Seed int64
	// Workers bounds how many rollout episodes of one iteration are played
	// concurrently (0 defaults to GOMAXPROCS, 1 is fully sequential). Each
	// episode draws from its own rng stream derived from (Seed, iteration,
	// episode index) and episodes are folded into the batch in episode
	// order, so training is bit-identical for any workers value.
	Workers int
	// Telemetry, when set, receives one observation per rollout/update
	// cycle (iteration count + the evaluation cost). It is a pure observer
	// attached outside the rng path: the trained policy is bit-identical
	// with or without it.
	Telemetry *telemetry.Training
}

func (c Config) withDefaults() Config {
	if c.Iterations <= 0 {
		c.Iterations = 30
	}
	if c.StepsPerIteration <= 0 {
		c.StepsPerIteration = 1024
	}
	if c.Horizon <= 0 {
		c.Horizon = 200
	}
	if c.Epochs <= 0 {
		c.Epochs = 4
	}
	if c.ClipEpsilon <= 0 {
		c.ClipEpsilon = 0.2
	}
	if c.Gamma <= 0 {
		c.Gamma = 0.99
	}
	if c.GAELambda <= 0 {
		c.GAELambda = 0.95
	}
	if c.EntropyCoef < 0 {
		c.EntropyCoef = 1e-4
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 3e-4
	}
	if c.Hidden <= 0 {
		c.Hidden = 64
	}
	if c.Layers <= 0 {
		c.Layers = 2
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Stream tags for splitStream: rollout episodes and policy evaluations
// draw from disjoint derived streams, so neither can shift the other.
const (
	episodeStreamTag = 0x9e70
	evalStreamTag    = 0xe7a1
)

// splitStream derives a decorrelated rng seed from the training seed, a
// stream tag and a sequence index with the shared SplitMix64 finalizer
// (the same mix the fleet engine uses for per-scenario seeds). Episode
// streams depend only on (seed, iteration, episode index) — never on
// scheduling — which is what makes parallel rollout collection
// deterministic.
func splitStream(seed int64, tag, k uint64) int64 {
	return int64(dist.SplitMix64(uint64(seed)*dist.GoldenGamma + tag*0xbf58476d1ce4e5b9 + k + 1))
}

// episodeRng returns the dedicated rng stream of one rollout episode.
func episodeRng(seed int64, iter, episode int) *rand.Rand {
	return rand.New(rand.NewSource(splitStream(seed, episodeStreamTag,
		uint64(iter)<<32|uint64(uint32(episode)))))
}

// evalRng returns the dedicated rng stream of one policy evaluation.
func evalRng(seed int64, iter int) *rand.Rand {
	return rand.New(rand.NewSource(splitStream(seed, evalStreamTag, uint64(iter))))
}

// Policy is a trained PPO policy; it implements recovery.Strategy with a
// deterministic (mode) action rule.
type Policy struct {
	net    *nn.MLP
	deltaR int
}

var _ recovery.Strategy = (*Policy)(nil)

// features maps (belief, window position) to the network input.
func (p *Policy) features(belief float64, windowPos int) []float64 {
	frac := 0.0
	if p.deltaR != recovery.InfiniteDeltaR {
		frac = float64(windowPos%p.deltaR) / float64(p.deltaR)
	}
	return []float64{belief, frac}
}

// Probabilities returns the action distribution (P[Wait], P[Recover]).
func (p *Policy) Probabilities(belief float64, windowPos int) []float64 {
	return nn.Softmax(p.net.Forward(p.features(belief, windowPos)))
}

// Action implements recovery.Strategy: recover when it is the mode action.
func (p *Policy) Action(belief float64, windowPos int) nodemodel.Action {
	probs := p.Probabilities(belief, windowPos)
	if probs[1] >= 0.5 {
		return nodemodel.Recover
	}
	return nodemodel.Wait
}

// Result reports the trained policy and the learning trace.
type Result struct {
	// Policy is the trained strategy.
	Policy *Policy
	// Cost is the final Monte-Carlo estimate of J_i under the policy.
	Cost float64
	// Trace records the evaluation cost after each iteration, in the same
	// format as the parametric optimizers for Fig 7.
	Trace []opt.TracePoint
	// Elapsed is the wall-clock training time.
	Elapsed time.Duration
}

// Train runs PPO on the node-recovery environment and returns the policy.
// Cancelling ctx aborts training between rollout/update cycles and returns
// the context's error.
//
// Randomness is stream-split: the base seed initializes the networks, every
// rollout episode draws from its own stream derived from (seed, iteration,
// episode index), and every policy evaluation from a per-iteration
// evaluation stream. Config.Workers therefore parallelizes rollout
// collection without changing a single output bit.
func Train(ctx context.Context, params nodemodel.Params, cfg Config) (*Result, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.DeltaR < 0 {
		return nil, fmt.Errorf("%w: deltaR = %d", ErrBadConfig, cfg.DeltaR)
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	sizes := []int{2}
	for l := 0; l < cfg.Layers; l++ {
		sizes = append(sizes, cfg.Hidden)
	}
	policySizes := append(append([]int(nil), sizes...), 2)
	valueSizes := append(append([]int(nil), sizes...), 1)
	policyNet, err := nn.NewMLP(rng, nn.ReLU, policySizes...)
	if err != nil {
		return nil, err
	}
	valueNet, err := nn.NewMLP(rng, nn.ReLU, valueSizes...)
	if err != nil {
		return nil, err
	}
	policy := &Policy{net: policyNet, deltaR: cfg.DeltaR}
	policyOpt := &nn.Adam{LR: cfg.LearningRate}
	valueOpt := &nn.Adam{LR: cfg.LearningRate}

	start := time.Now()
	res := &Result{Policy: policy}
	best := math.Inf(1)
	evals := 0
	for iter := 0; iter < cfg.Iterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		batch := collectRollout(params, policy, cfg, iter)
		if err := update(policyNet, valueNet, policyOpt, valueOpt, batch, cfg); err != nil {
			return nil, err
		}
		evals += len(batch.obs)
		cost := evaluatePolicy(evalRng(cfg.Seed, iter), params, policy, cfg)
		cfg.Telemetry.ObserveIteration(cost)
		if cost < best {
			best = cost
			res.Trace = append(res.Trace, opt.TracePoint{
				Evaluations: evals,
				Elapsed:     time.Since(start),
				Best:        cost,
			})
		}
	}
	res.Cost = evaluatePolicy(evalRng(cfg.Seed, cfg.Iterations), params, policy, cfg)
	res.Elapsed = time.Since(start)
	return res, nil
}

// rollout holds one batch of on-policy experience.
type rollout struct {
	obs        [][]float64
	actions    []int
	logProbs   []float64
	rewards    []float64
	values     []float64
	terminal   []bool
	advantages []float64
	returns    []float64
}

// absorb appends another rollout's decision steps, preserving episode
// boundaries (the terminal flags).
func (b *rollout) absorb(ep *rollout) {
	b.obs = append(b.obs, ep.obs...)
	b.actions = append(b.actions, ep.actions...)
	b.logProbs = append(b.logProbs, ep.logProbs...)
	b.rewards = append(b.rewards, ep.rewards...)
	b.values = append(b.values, ep.values...)
	b.terminal = append(b.terminal, ep.terminal...)
}

// collectRollout gathers at least StepsPerIteration decision steps from
// fresh episodes of the node environment (same dynamics as
// recovery.Evaluate). Episodes are independent — each plays on its own rng
// stream — and are folded into the batch strictly in episode-index order
// until the step quota is met, so the batch is the same whether episodes
// were played sequentially or speculatively on cfg.Workers goroutines
// (surplus speculative episodes are discarded).
func collectRollout(params nodemodel.Params, policy *Policy, cfg Config, iter int) *rollout {
	b := &rollout{}
	next := 0
	if cfg.Workers <= 1 {
		for len(b.obs) < cfg.StepsPerIteration {
			runPPOEpisode(episodeRng(cfg.Seed, iter, next), params, policy, cfg, b)
			next++
		}
		return b
	}
	waveBuf := make([]*rollout, cfg.Workers)
	for len(b.obs) < cfg.StepsPerIteration {
		// Every episode contributes at least one decision step, so at most
		// `need` more episodes can be used — don't speculate beyond that.
		// The wave size depends only on the (deterministic) batch length,
		// and the folded episodes are always the index prefix that meets
		// the quota, so the batch stays bit-identical for any Workers.
		wave := waveBuf
		if need := cfg.StepsPerIteration - len(b.obs); need < len(wave) {
			wave = wave[:need]
		}
		var wg sync.WaitGroup
		for w := range wave {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ep := &rollout{}
				runPPOEpisode(episodeRng(cfg.Seed, iter, next+w), params, policy, cfg, ep)
				wave[w] = ep
			}(w)
		}
		wg.Wait()
		next += len(wave)
		for _, ep := range wave {
			if len(b.obs) >= cfg.StepsPerIteration {
				break
			}
			b.absorb(ep)
		}
	}
	return b
}

// runPPOEpisode plays one episode, appending decision steps to the batch.
// Rewards are negative costs (eq. 5).
func runPPOEpisode(rng *rand.Rand, params nodemodel.Params, policy *Policy, cfg Config, b *rollout) {
	state := nodemodel.Healthy
	if rng.Float64() < params.PA {
		state = nodemodel.Compromised
	}
	belief := params.PA
	obs := params.SampleObservation(rng, state)
	belief = posterior(params, belief, obs)

	for t := 1; t <= cfg.Horizon; t++ {
		windowPos := t
		forced := false
		if cfg.DeltaR != recovery.InfiniteDeltaR {
			windowPos = t % cfg.DeltaR
			forced = windowPos == 0
		}
		var action nodemodel.Action
		if forced {
			action = nodemodel.Recover
		} else {
			features := policy.features(belief, windowPos)
			probs := nn.Softmax(policy.net.Forward(features))
			a := 0
			if rng.Float64() < probs[1] {
				a = 1
			}
			action = nodemodel.Action(a)
			b.obs = append(b.obs, features)
			b.actions = append(b.actions, a)
			b.logProbs = append(b.logProbs, math.Log(probs[a]+1e-12))
			b.values = append(b.values, 0) // refreshed by computeGAE
			b.rewards = append(b.rewards, -params.Cost(state, action))
			b.terminal = append(b.terminal, false)
		}

		state = params.SampleTransition(rng, state, action)
		if state == nodemodel.Crashed {
			if n := len(b.terminal); n > 0 {
				b.terminal[n-1] = true
			}
			return
		}
		o := params.SampleObservation(rng, state)
		belief = params.UpdateBelief(belief, action, o)
	}
	if n := len(b.terminal); n > 0 {
		b.terminal[n-1] = true
	}
}

// posterior applies the observation update only (first step of an episode).
func posterior(p nodemodel.Params, prior float64, obs int) float64 {
	zc := p.ZCompromised.Prob(obs)
	zh := p.ZHealthy.Prob(obs)
	num := zc * prior
	den := num + zh*(1-prior)
	if den <= 0 {
		return prior
	}
	return num / den
}

// computeGAE fills advantages and returns using the critic.
func computeGAE(valueNet *nn.MLP, b *rollout, cfg Config) {
	n := len(b.obs)
	for i := 0; i < n; i++ {
		b.values[i] = valueNet.Forward(b.obs[i])[0]
	}
	b.advantages = make([]float64, n)
	b.returns = make([]float64, n)
	gae := 0.0
	for i := n - 1; i >= 0; i-- {
		var nextValue float64
		if !b.terminal[i] && i+1 < n {
			nextValue = b.values[i+1]
		}
		delta := b.rewards[i] + cfg.Gamma*nextValue - b.values[i]
		if b.terminal[i] {
			gae = delta
		} else {
			gae = delta + cfg.Gamma*cfg.GAELambda*gae
		}
		b.advantages[i] = gae
		b.returns[i] = gae + b.values[i]
	}
	// Normalize advantages.
	mean, std := 0.0, 0.0
	for _, a := range b.advantages {
		mean += a
	}
	mean /= float64(n)
	for _, a := range b.advantages {
		d := a - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(n))
	if std < 1e-8 {
		std = 1
	}
	for i := range b.advantages {
		b.advantages[i] = (b.advantages[i] - mean) / std
	}
}

// update performs the clipped-surrogate PPO update.
func update(policyNet, valueNet *nn.MLP, policyOpt, valueOpt *nn.Adam, b *rollout, cfg Config) error {
	computeGAE(valueNet, b, cfg)
	n := len(b.obs)
	pGrads := policyNet.NewGrads()
	vGrads := valueNet.NewGrads()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		pGrads.Zero()
		vGrads.Zero()
		for i := 0; i < n; i++ {
			// Policy gradient.
			c := policyNet.ForwardCache(b.obs[i])
			logits := c.Output()
			probs := nn.Softmax(logits)
			a := b.actions[i]
			logProb := math.Log(probs[a] + 1e-12)
			ratio := math.Exp(logProb - b.logProbs[i])
			adv := b.advantages[i]
			clipped := ratio
			if clipped > 1+cfg.ClipEpsilon {
				clipped = 1 + cfg.ClipEpsilon
			} else if clipped < 1-cfg.ClipEpsilon {
				clipped = 1 - cfg.ClipEpsilon
			}
			// Loss = -min(ratio*adv, clipped*adv); gradient flows through
			// ratio only when it is the active (unclipped) branch.
			useRatio := ratio*adv <= clipped*adv
			dLogits := make([]float64, 2)
			if useRatio {
				// d(-ratio*adv)/dlogits = -adv*ratio * dlogpi/dlogits.
				for k := 0; k < 2; k++ {
					ind := 0.0
					if k == a {
						ind = 1
					}
					dLogits[k] = -adv * ratio * (ind - probs[k])
				}
			}
			// Entropy bonus: maximize H => subtract coef * dH/dlogits.
			if cfg.EntropyCoef > 0 {
				for k := 0; k < 2; k++ {
					// dH/dlogit_k = -p_k*(log p_k + H).
					h := 0.0
					for j := 0; j < 2; j++ {
						h -= probs[j] * math.Log(probs[j]+1e-12)
					}
					dLogits[k] -= cfg.EntropyCoef * (-probs[k] * (math.Log(probs[k]+1e-12) + h))
				}
			}
			policyNet.Backward(c, dLogits, pGrads)

			// Value regression toward returns.
			vc := valueNet.ForwardCache(b.obs[i])
			v := vc.Output()[0]
			dv := []float64{v - b.returns[i]}
			valueNet.Backward(vc, dv, vGrads)
		}
		if err := policyOpt.Step(policyNet, pGrads, float64(n)); err != nil {
			return err
		}
		if err := valueOpt.Step(valueNet, vGrads, float64(n)); err != nil {
			return err
		}
	}
	return nil
}

// evaluatePolicy estimates J_i of the current deterministic policy.
func evaluatePolicy(rng *rand.Rand, params nodemodel.Params, policy *Policy, cfg Config) float64 {
	m, err := recovery.Evaluate(rng, params, policy, recovery.SimConfig{
		Episodes: 20,
		Horizon:  cfg.Horizon,
		DeltaR:   cfg.DeltaR,
	})
	if err != nil {
		return math.Inf(1)
	}
	return m.AvgCost
}
