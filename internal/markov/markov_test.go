package markov

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewChainValidation(t *testing.T) {
	tests := []struct {
		name    string
		p       [][]float64
		wantErr bool
	}{
		{"valid 2-state", [][]float64{{0.9, 0.1}, {0.3, 0.7}}, false},
		{"identity", [][]float64{{1, 0}, {0, 1}}, false},
		{"empty", nil, true},
		{"not square", [][]float64{{0.5, 0.5}, {1}}, true},
		{"negative entry", [][]float64{{1.1, -0.1}, {0, 1}}, true},
		{"row not stochastic", [][]float64{{0.5, 0.4}, {0, 1}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewChain(tt.p)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewChain err = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestStepPreservesMass(t *testing.T) {
	c, err := NewChain([][]float64{{0.5, 0.5, 0}, {0.1, 0.8, 0.1}, {0, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	mu := []float64{1, 0, 0}
	for i := 0; i < 50; i++ {
		mu = c.Step(mu)
	}
	sum := 0.0
	for _, v := range mu {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("mass after 50 steps = %v, want 1", sum)
	}
	// State 2 is absorbing; eventually all mass lands there.
	if mu[2] < 0.9 {
		t.Errorf("absorbing state mass = %v, want > 0.9", mu[2])
	}
}

func TestHittingTimeGeometricClosedForm(t *testing.T) {
	// Two-state chain: from state 1 fall into absorbing state 0 with
	// probability p per step. Expected hitting time is 1/p.
	for _, p := range []float64{0.5, 0.1, 0.01} {
		c, err := NewChain([][]float64{{1, 0}, {p, 1 - p}})
		if err != nil {
			t.Fatal(err)
		}
		mttf, err := c.MTTF(1, map[int]bool{0: true})
		if err != nil {
			t.Fatal(err)
		}
		if want := 1 / p; math.Abs(mttf-want) > 1e-6*want {
			t.Errorf("p=%v: MTTF = %v, want %v", p, mttf, want)
		}
	}
}

func TestHittingTimeBirthDeath(t *testing.T) {
	// Pure-death chain on {0,1,2,3}: from s > 0 go down one with prob q,
	// stay with 1-q. Hitting time of {0} from s is s/q.
	q := 0.25
	p := [][]float64{
		{1, 0, 0, 0},
		{q, 1 - q, 0, 0},
		{0, q, 1 - q, 0},
		{0, 0, q, 1 - q},
	}
	c, err := NewChain(p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.HittingTimes(map[int]bool{0: true})
	if err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= 3; s++ {
		want := float64(s) / q
		if math.Abs(h[s]-want) > 1e-6 {
			t.Errorf("h[%d] = %v, want %v", s, h[s], want)
		}
	}
	if h[0] != 0 {
		t.Errorf("h[0] = %v, want 0", h[0])
	}
}

func TestHittingTimeUnreachableIsInf(t *testing.T) {
	// State 1 is absorbing and never reaches state 0.
	c, err := NewChain([][]float64{{1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.HittingTimes(map[int]bool{0: true})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(h[1], 1) {
		t.Errorf("h[1] = %v, want +Inf", h[1])
	}
}

func TestReliabilityMatchesGeometric(t *testing.T) {
	// R(t) for the 2-state chain is (1-p)^t.
	p := 0.2
	c, err := NewChain([][]float64{{1, 0}, {p, 1 - p}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Reliability(1, map[int]bool{0: true}, 20)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt <= 20; tt++ {
		want := math.Pow(1-p, float64(tt))
		if math.Abs(r[tt]-want) > 1e-9 {
			t.Errorf("R(%d) = %v, want %v", tt, r[tt], want)
		}
	}
}

func TestReliabilityMonotoneAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Random 5-state chain with failure set {0}.
	n := 5
	p := make([][]float64, n)
	for i := 0; i < n; i++ {
		p[i] = make([]float64, n)
		sum := 0.0
		for j := 0; j < n; j++ {
			p[i][j] = rng.Float64()
			sum += p[i][j]
		}
		for j := 0; j < n; j++ {
			p[i][j] /= sum
		}
		// Renormalize exactly.
		total := 0.0
		for j := 0; j < n-1; j++ {
			total += p[i][j]
		}
		p[i][n-1] = 1 - total
	}
	c, err := NewChain(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Reliability(4, map[int]bool{0: true}, 30)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 1; tt < len(r); tt++ {
		if r[tt] > r[tt-1]+1e-12 {
			t.Fatalf("R increased at t=%d: %v > %v", tt, r[tt], r[tt-1])
		}
		if r[tt] < -1e-12 || r[tt] > 1+1e-12 {
			t.Fatalf("R(%d) = %v out of [0,1]", tt, r[tt])
		}
	}
}

func TestReliabilityInputValidation(t *testing.T) {
	c, err := NewChain([][]float64{{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reliability(5, nil, 10); err == nil {
		t.Error("out-of-range initial state should fail")
	}
	if _, err := c.Reliability(0, nil, -1); err == nil {
		t.Error("negative horizon should fail")
	}
	if _, err := c.MTTF(-1, nil); err == nil {
		t.Error("out-of-range MTTF initial state should fail")
	}
}

func TestStationaryDistribution(t *testing.T) {
	// Classic 2-state chain; stationary distribution is (b, a)/(a+b) for
	// P = [[1-a, a], [b, 1-b]].
	a, b := 0.3, 0.1
	c, err := NewChain([][]float64{{1 - a, a}, {b, 1 - b}})
	if err != nil {
		t.Fatal(err)
	}
	mu, err := c.StationaryDistribution(10000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	want0 := b / (a + b)
	if math.Abs(mu[0]-want0) > 1e-9 {
		t.Errorf("stationary[0] = %v, want %v", mu[0], want0)
	}
}

func TestAbsorptionProbability(t *testing.T) {
	// Gambler's ruin on {0,1,2,3} with fair steps; absorption at 3 from s
	// has probability s/3 when state 0 is also absorbing.
	p := [][]float64{
		{1, 0, 0, 0},
		{0.5, 0, 0.5, 0},
		{0, 0.5, 0, 0.5},
		{0, 0, 0, 1},
	}
	c, err := NewChain(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := c.AbsorptionProbability(map[int]bool{3: true})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s <= 3; s++ {
		want := float64(s) / 3
		if math.Abs(q[s]-want) > 1e-9 {
			t.Errorf("q[%d] = %v, want %v", s, q[s], want)
		}
	}
}

func TestSampleFollowsTransitionProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c, err := NewChain([][]float64{{0.2, 0.8}, {0.6, 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		if c.Sample(rng, 0) == 1 {
			count++
		}
	}
	if got := float64(count) / n; math.Abs(got-0.8) > 0.01 {
		t.Errorf("empirical P(0->1) = %v, want ~0.8", got)
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := SolveLinear(a, b); err == nil {
		t.Error("singular system should fail")
	}
}

func TestSolveLinearDimensionMismatch(t *testing.T) {
	if _, err := SolveLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("non-square system should fail")
	}
	if _, err := SolveLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("rhs length mismatch should fail")
	}
}

// Property: SolveLinear(a, a*x) recovers x for random well-conditioned
// (diagonally dominant) systems.
func TestSolveLinearRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := make([][]float64, n)
		x := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = make([]float64, n)
			rowSum := 0.0
			for j := 0; j < n; j++ {
				a[i][j] = r.Float64()*2 - 1
				rowSum += math.Abs(a[i][j])
			}
			a[i][i] += rowSum + 1 // diagonal dominance
			x[i] = r.Float64()*10 - 5
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += a[i][j] * x[j]
			}
		}
		got, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if math.Abs(got[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: hitting times computed analytically agree with Monte-Carlo
// simulation on small random absorbing chains.
func TestHittingTimeMatchesSimulationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// 4-state chain: state 0 absorbing target; others have positive
		// probability of moving toward 0.
		p := [][]float64{{1, 0, 0, 0}, nil, nil, nil}
		for i := 1; i < 4; i++ {
			w := make([]float64, 4)
			sum := 0.0
			for j := 0; j < 4; j++ {
				w[j] = r.Float64() + 0.05
				sum += w[j]
			}
			for j := 0; j < 4; j++ {
				w[j] /= sum
			}
			total := 0.0
			for j := 0; j < 3; j++ {
				total += w[j]
			}
			w[3] = 1 - total
			p[i] = w
		}
		c, err := NewChain(p)
		if err != nil {
			return false
		}
		h, err := c.HittingTimes(map[int]bool{0: true})
		if err != nil {
			return false
		}
		// Simulate from state 3.
		const episodes = 4000
		total := 0.0
		for e := 0; e < episodes; e++ {
			s := 3
			steps := 0
			for s != 0 && steps < 100000 {
				s = c.Sample(r, s)
				steps++
			}
			total += float64(steps)
		}
		sim := total / episodes
		// Loose bound: Monte-Carlo with 4000 episodes.
		return math.Abs(sim-h[3]) < 0.25*h[3]+0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
