// Package markov provides finite Markov-chain analytics used by the paper's
// reliability analysis (Appendix F): mean time to failure as a hitting time
// of the failure set (solved by Gaussian elimination) and the reliability
// function R(t) = P[T(f) > t] via the Chapman-Kolmogorov equation.
package markov

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrInvalidChain is returned when a transition matrix is not row-stochastic.
var ErrInvalidChain = errors.New("markov: invalid transition matrix")

// rowSumTolerance is the allowed deviation of each row sum from 1.
const rowSumTolerance = 1e-9

// Chain is a finite discrete-time Markov chain with states {0, ..., n-1}.
type Chain struct {
	p [][]float64
}

// NewChain validates p as a row-stochastic matrix and returns the chain. The
// matrix is copied.
func NewChain(p [][]float64) (*Chain, error) {
	n := len(p)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty matrix", ErrInvalidChain)
	}
	cp := make([][]float64, n)
	for i, row := range p {
		if len(row) != n {
			return nil, fmt.Errorf("%w: row %d has length %d, want %d", ErrInvalidChain, i, len(row), n)
		}
		sum := 0.0
		for j, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("%w: p[%d][%d] = %v", ErrInvalidChain, i, j, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > rowSumTolerance {
			return nil, fmt.Errorf("%w: row %d sums to %v", ErrInvalidChain, i, sum)
		}
		cp[i] = make([]float64, n)
		copy(cp[i], row)
	}
	return &Chain{p: cp}, nil
}

// Len returns the number of states.
func (c *Chain) Len() int { return len(c.p) }

// Prob returns P[S_{t+1} = to | S_t = from].
func (c *Chain) Prob(from, to int) float64 { return c.p[from][to] }

// Row returns a copy of the transition row for the given state.
func (c *Chain) Row(from int) []float64 {
	out := make([]float64, len(c.p[from]))
	copy(out, c.p[from])
	return out
}

// Step propagates a distribution one step: out = mu * P.
func (c *Chain) Step(mu []float64) []float64 {
	n := len(c.p)
	out := make([]float64, n)
	for i, m := range mu {
		if m == 0 {
			continue
		}
		row := c.p[i]
		for j, pij := range row {
			out[j] += m * pij
		}
	}
	return out
}

// Sample draws the next state given the current state.
func (c *Chain) Sample(rng *rand.Rand, from int) int {
	u := rng.Float64()
	acc := 0.0
	row := c.p[from]
	for j, pij := range row {
		acc += pij
		if u < acc {
			return j
		}
	}
	return len(row) - 1
}

// HittingTimes returns the expected number of steps to reach the target set
// from each state (Appendix F): for states in the target set the value is 0;
// otherwise it solves the linear system
//
//	h(s) = 1 + sum_{s' not in target} P(s, s') h(s')
//
// by Gaussian elimination. States that cannot reach the target have h = +Inf.
func (c *Chain) HittingTimes(target map[int]bool) ([]float64, error) {
	n := len(c.p)
	// Index the transient (non-target) states.
	idx := make([]int, 0, n)
	pos := make(map[int]int, n)
	for s := 0; s < n; s++ {
		if !target[s] {
			pos[s] = len(idx)
			idx = append(idx, s)
		}
	}
	m := len(idx)
	h := make([]float64, n)
	if m == 0 {
		return h, nil
	}
	// (I - Q) h = 1, where Q is P restricted to transient states.
	a := make([][]float64, m)
	b := make([]float64, m)
	for r, s := range idx {
		a[r] = make([]float64, m)
		for cidx, s2 := range idx {
			a[r][cidx] = -c.p[s][s2]
		}
		a[r][r] += 1
		b[r] = 1
	}
	x, err := SolveLinear(a, b)
	if err != nil {
		// A singular system means some transient states never reach the
		// target; report them as infinite rather than failing.
		for _, s := range idx {
			h[s] = math.Inf(1)
		}
		return h, nil
	}
	for r, s := range idx {
		if x[r] < 0 || math.IsNaN(x[r]) {
			h[s] = math.Inf(1)
		} else {
			h[s] = x[r]
		}
	}
	return h, nil
}

// MTTF is the mean time to failure from the initial state: the expected
// hitting time of the failure set F = {0, ..., f} when the chain tracks the
// number of healthy nodes (Appendix F).
func (c *Chain) MTTF(initial int, failureSet map[int]bool) (float64, error) {
	if initial < 0 || initial >= len(c.p) {
		return 0, fmt.Errorf("markov: initial state %d out of range [0, %d)", initial, len(c.p))
	}
	h, err := c.HittingTimes(failureSet)
	if err != nil {
		return 0, err
	}
	return h[initial], nil
}

// Reliability returns R(t) = P[T(f) > t] for t = 0..horizon given the initial
// state, where T(f) is the first time the chain enters the failure set. It
// evaluates eq. (18): R(t) = sum_{s not in F} (e_s1^T P^t)_s, on the chain
// with the failure set made absorbing.
func (c *Chain) Reliability(initial int, failureSet map[int]bool, horizon int) ([]float64, error) {
	n := len(c.p)
	if initial < 0 || initial >= n {
		return nil, fmt.Errorf("markov: initial state %d out of range [0, %d)", initial, n)
	}
	if horizon < 0 {
		return nil, fmt.Errorf("markov: negative horizon %d", horizon)
	}
	// Build the absorbing version of the chain.
	abs := make([][]float64, n)
	for s := 0; s < n; s++ {
		abs[s] = make([]float64, n)
		if failureSet[s] {
			abs[s][s] = 1
		} else {
			copy(abs[s], c.p[s])
		}
	}
	ac := &Chain{p: abs}

	mu := make([]float64, n)
	mu[initial] = 1
	out := make([]float64, horizon+1)
	for t := 0; t <= horizon; t++ {
		surv := 0.0
		for s := 0; s < n; s++ {
			if !failureSet[s] {
				surv += mu[s]
			}
		}
		out[t] = surv
		if t < horizon {
			mu = ac.Step(mu)
		}
	}
	return out, nil
}

// StationaryDistribution computes the stationary distribution by power
// iteration from the uniform distribution. It returns an error if the
// iteration has not converged within maxIter steps to the given tolerance.
func (c *Chain) StationaryDistribution(maxIter int, tol float64) ([]float64, error) {
	n := len(c.p)
	mu := make([]float64, n)
	for i := range mu {
		mu[i] = 1 / float64(n)
	}
	for it := 0; it < maxIter; it++ {
		next := c.Step(mu)
		diff := 0.0
		for i := range next {
			diff += math.Abs(next[i] - mu[i])
		}
		mu = next
		if diff < tol {
			return mu, nil
		}
	}
	return nil, fmt.Errorf("markov: stationary distribution did not converge in %d iterations", maxIter)
}

// AbsorptionProbability returns, for each state, the probability of ever
// reaching the target set (1 for target states). It solves
// q = P_{transient,target} 1 + Q q by Gaussian elimination.
func (c *Chain) AbsorptionProbability(target map[int]bool) ([]float64, error) {
	n := len(c.p)
	// States from which the target is unreachable have probability zero;
	// excluding them keeps the linear system non-singular.
	reach := c.canReach(target)
	idx := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if !target[s] && reach[s] {
			idx = append(idx, s)
		}
	}
	m := len(idx)
	q := make([]float64, n)
	for s := 0; s < n; s++ {
		if target[s] {
			q[s] = 1
		}
	}
	if m == 0 {
		return q, nil
	}
	a := make([][]float64, m)
	b := make([]float64, m)
	for r, s := range idx {
		a[r] = make([]float64, m)
		direct := 0.0
		for s2 := 0; s2 < n; s2++ {
			if target[s2] {
				direct += c.p[s][s2]
			}
		}
		for cidx, s2 := range idx {
			a[r][cidx] = -c.p[s][s2]
		}
		a[r][r] += 1
		b[r] = direct
	}
	x, err := SolveLinear(a, b)
	if err != nil {
		return nil, fmt.Errorf("markov: absorption probabilities: %w", err)
	}
	for r, s := range idx {
		q[s] = math.Min(1, math.Max(0, x[r]))
	}
	return q, nil
}

// canReach returns, for each state, whether the target set is reachable via
// transitions with positive probability.
func (c *Chain) canReach(target map[int]bool) []bool {
	n := len(c.p)
	reach := make([]bool, n)
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if target[s] {
			reach[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for from := 0; from < n; from++ {
			if !reach[from] && c.p[from][s] > 0 {
				reach[from] = true
				queue = append(queue, from)
			}
		}
	}
	return reach
}
