package markov

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned by SolveLinear when the system has no unique
// solution.
var ErrSingular = errors.New("markov: singular linear system")

// SolveLinear solves the dense linear system a x = b by Gaussian elimination
// with partial pivoting. The inputs are not modified.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("markov: system dimensions %dx? vs rhs %d", n, len(b))
	}
	// Copy into an augmented matrix.
	m := make([][]float64, n)
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("markov: row %d has length %d, want %d", i, len(a[i]), n)
		}
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r][col]); v > best {
				best = v
				pivot = r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		pv := m[col][col]
		for r := col + 1; r < n; r++ {
			factor := m[r][col] / pv
			if factor == 0 {
				continue
			}
			row := m[r]
			prow := m[col]
			for c := col; c <= n; c++ {
				row[c] -= factor * prow[c]
			}
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		v := m[i][n]
		for j := i + 1; j < n; j++ {
			v -= m[i][j] * x[j]
		}
		x[i] = v / m[i][i]
	}
	return x, nil
}
