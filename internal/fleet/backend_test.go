package fleet

import (
	"context"
	"math"
	"strings"
	"testing"

	"tolerance/internal/emulation"
)

// fakeBackend is a registry test double: it never touches an emulator or a
// cluster, it just returns metrics derived from the scenario seed so engine
// dispatch is observable in the folded aggregates.
type fakeBackend struct{}

func (fakeBackend) Name() string        { return "test-fake" }
func (fakeBackend) Describe() string    { return "test double" }
func (fakeBackend) Deterministic() bool { return true }

func (fakeBackend) Run(ctx context.Context, sc emulation.Scenario, opts BackendOptions) (emulation.Metrics, error) {
	if err := ctx.Err(); err != nil {
		return emulation.Metrics{}, err
	}
	return emulation.Metrics{
		Availability:     0.25,
		ServiceLatencyMS: 7,
	}, nil
}

func TestBackendRegistry(t *testing.T) {
	for _, name := range []string{BackendEmulation, BackendCluster} {
		b, ok := LookupBackend(name)
		if !ok {
			t.Fatalf("built-in backend %q not registered", name)
		}
		if b.Name() != name {
			t.Errorf("backend %q reports name %q", name, b.Name())
		}
		if b.Describe() == "" {
			t.Errorf("backend %q has no description", name)
		}
	}
	if _, ok := LookupBackend("no-such-backend"); ok {
		t.Error("unknown backend resolved")
	}
	if be, _ := LookupBackend(BackendEmulation); !be.Deterministic() {
		t.Error("emulation backend must be deterministic")
	}
	if be, _ := LookupBackend(BackendCluster); be.Deterministic() {
		t.Error("cluster backend must not claim byte-determinism")
	}
}

// TestBackendAxisExpansion pins the grid contract: the backend axis is
// outermost, "emulation" normalizes to the canonical empty Backend, and a
// suite without the axis expands exactly as before the axis existed.
func TestBackendAxisExpansion(t *testing.T) {
	base := Suite{Name: "x", AttackRates: []float64{0.1}, N1s: []int{3},
		Policies: []PolicyKind{PolicyTolerance, PolicyPeriodic}}

	plain := base.Cells()
	explicit := base
	explicit.Backends = []string{BackendEmulation}
	for i, c := range explicit.Cells() {
		if c != plain[i] {
			t.Fatalf("explicit emulation cell %d differs from default: %+v vs %+v", i, c, plain[i])
		}
	}

	multi := base
	multi.Backends = []string{BackendEmulation, BackendCluster}
	cells := multi.Cells()
	if got, want := len(cells), 2*len(plain); got != want {
		t.Fatalf("multi-backend grid has %d cells, want %d", got, want)
	}
	if got, want := multi.NumCells(), len(cells); got != want {
		t.Fatalf("NumCells %d != len(Cells) %d", got, want)
	}
	for i, c := range cells {
		wantBackend := ""
		if i >= len(plain) {
			wantBackend = BackendCluster
		}
		if c.Backend != wantBackend {
			t.Errorf("cell %d backend %q, want %q", i, c.Backend, wantBackend)
		}
		if c.Index != i {
			t.Errorf("cell %d carries index %d", i, c.Index)
		}
	}
}

func TestSuiteValidateBackends(t *testing.T) {
	ok := Suite{Name: "x", Backends: []string{BackendCluster}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("cluster backend rejected: %v", err)
	}
	bad := Suite{Name: "x", Backends: []string{"warp-drive"}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "warp-drive") {
		t.Errorf("unknown backend error = %v", err)
	}
	dup := Suite{Name: "x", Backends: []string{BackendCluster, BackendCluster}}
	if err := dup.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate backend error = %v", err)
	}
}

// TestEngineBackendDispatch runs a two-backend suite through the full
// engine and checks that emulation cells took the runner path while
// test-fake cells folded the double's constant metrics — including the
// latency lane only that backend feeds.
func TestEngineBackendDispatch(t *testing.T) {
	RegisterBackend(fakeBackend{})
	suite := Suite{
		Name:         "dispatch",
		Seed:         1,
		SeedsPerCell: 2,
		Steps:        60,
		FitSamples:   200,
		AttackRates:  []float64{0.1},
		N1s:          []int{3},
		Policies:     []PolicyKind{PolicyPeriodic},
		Backends:     []string{BackendEmulation, "test-fake"},
	}
	res, err := Run(context.Background(), suite, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(res.Cells))
	}
	emu, fake := res.Cells[0], res.Cells[1]
	if emu.Cell.Backend != "" || fake.Cell.Backend != "test-fake" {
		t.Fatalf("cell backends = %q, %q", emu.Cell.Backend, fake.Cell.Backend)
	}
	if emu.Aggregate.Latency != nil {
		t.Errorf("emulation cell grew a latency summary: %+v", *emu.Aggregate.Latency)
	}
	if math.Abs(fake.Aggregate.Availability.Mean-0.25) > 1e-12 {
		t.Errorf("fake availability mean = %v, want 0.25", fake.Aggregate.Availability.Mean)
	}
	if fake.Aggregate.Latency == nil || math.Abs(fake.Aggregate.Latency.Mean-7) > 1e-12 {
		t.Errorf("fake latency summary = %+v, want mean 7", fake.Aggregate.Latency)
	}
	if fake.Runs != int64(suite.SeedsPerCell) {
		t.Errorf("fake cell folded %d runs, want %d", fake.Runs, suite.SeedsPerCell)
	}
}
