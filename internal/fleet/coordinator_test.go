package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"tolerance/internal/fleet/proto"
	"tolerance/internal/telemetry"
	"tolerance/internal/transport"
)

// coordTestTiming keeps the fault-tolerance tests fast: leases expire after
// 4 missed 50ms heartbeats instead of the production 5x1s.
const (
	coordTestHeartbeat = 50 * time.Millisecond
	coordTestTimeout   = 200 * time.Millisecond
)

// listenLoopback binds a fresh loopback endpoint and registers its cleanup.
func listenLoopback(t *testing.T) *transport.TCPEndpoint {
	t.Helper()
	ep, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	return ep
}

// referenceRun executes the suite single-machine and returns its serialized
// result — the byte-identity baseline every distributed test compares to.
func referenceRun(t *testing.T, suite Suite) []byte {
	t.Helper()
	res, err := Run(context.Background(), suite, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCoordinateLoopbackDeterminism is the distributed reproducibility
// contract: a coordinator with two real TCP workers racing for leases must
// produce a result byte-identical to a single-machine run of the same suite.
func TestCoordinateLoopbackDeterminism(t *testing.T) {
	suite := testSuite()
	want := referenceRun(t, suite)

	coordEP := listenLoopback(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for i := range workerErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = ConnectWorker(ctx, WorkerConfig{
				Endpoint:    listenLoopback(t),
				Coordinator: coordEP.Addr(),
				Workers:     2,
				DialTimeout: 30 * time.Second,
			})
		}(i)
	}

	res, err := Coordinate(ctx, suite, CoordinatorConfig{
		Endpoint:       coordEP,
		LeaseScenarios: 3,
		Heartbeat:      coordTestHeartbeat,
		LeaseTimeout:   coordTestTimeout,
	})
	if err != nil {
		t.Fatalf("Coordinate: %v", err)
	}
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil && !errors.Is(werr, ErrDrained) {
			t.Errorf("worker %d: %v", i, werr)
		}
	}

	got, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("coordinator result differs from single-machine run:\n%s\n%s", got, want)
	}
}

// TestCoordinateWorkerKillReLease is the fault-tolerance contract: a worker
// that dies mid-range without a Goodbye (simulated SIGKILL) must have its
// lease expire after the timeout and the missing scenarios re-leased to a
// surviving worker, with the final result still byte-identical — the
// replayed prefix the dead worker shipped is deduped, not double-counted.
func TestCoordinateWorkerKillReLease(t *testing.T) {
	suite := testSuite()
	want := referenceRun(t, suite)

	coordEP := listenLoopback(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	col := telemetry.New()

	// Victim: ships records one at a time, dies hard after the third.
	victimDone := make(chan error, 1)
	go func() {
		victimDone <- ConnectWorker(ctx, WorkerConfig{
			Endpoint:             listenLoopback(t),
			Coordinator:          coordEP.Addr(),
			Workers:              1,
			testFailAfterRecords: 3,
			testBatchRecords:     1,
		})
	}()

	// Survivor: joins after the victim so the victim holds the first lease.
	survivorDone := make(chan error, 1)
	go func() {
		time.Sleep(2 * coordTestHeartbeat)
		survivorDone <- ConnectWorker(ctx, WorkerConfig{
			Endpoint:    listenLoopback(t),
			Coordinator: coordEP.Addr(),
			Workers:     2,
		})
	}()

	res, err := Coordinate(ctx, suite, CoordinatorConfig{
		Endpoint:       coordEP,
		LeaseScenarios: 6,
		Heartbeat:      coordTestHeartbeat,
		LeaseTimeout:   coordTestTimeout,
		Telemetry:      col,
	})
	if err != nil {
		t.Fatalf("Coordinate: %v", err)
	}
	if verr := <-victimDone; !errors.Is(verr, errWorkerKilled) {
		t.Errorf("victim worker: got %v, want simulated kill", verr)
	}
	if serr := <-survivorDone; serr != nil && !errors.Is(serr, ErrDrained) {
		t.Errorf("survivor worker: %v", serr)
	}

	got, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("result after worker kill differs from single-machine run:\n%s\n%s", got, want)
	}
	s := col.Snapshot()
	if s.Counter(MetricCoordLeasesExpired) < 1 {
		t.Errorf("coord.leases_expired = %d, want >= 1 (victim's lease must expire)",
			s.Counter(MetricCoordLeasesExpired))
	}
	if folded := s.Counter(MetricScenariosFolded); folded != int64(suite.NumScenarios()) {
		t.Errorf("fleet.scenarios_folded = %d, want %d", folded, suite.NumScenarios())
	}
}

// TestCoordinateDuplicateRecordsDeduped drives the wire protocol directly:
// a hand-rolled worker ships every leased record batch twice. First write
// wins — the duplicates count as coord.records_replayed and the merged
// result stays byte-identical to the single-machine run.
func TestCoordinateDuplicateRecordsDeduped(t *testing.T) {
	suite := testSuite()
	want := referenceRun(t, suite)

	// Pre-compute genuine record bytes per index with a local engine run.
	recordBytes := make(map[int]json.RawMessage)
	_, err := Run(context.Background(), suite, Config{
		Workers: 4,
		OnRecord: func(rec RunRecord) error {
			data, merr := json.Marshal(rec)
			if merr != nil {
				return merr
			}
			recordBytes[rec.Index] = data
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	coordEP := listenLoopback(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	col := telemetry.New()

	fakeDone := make(chan error, 1)
	duplicated := 0
	go func() {
		fakeDone <- runDoubleShippingWorker(ctx, coordEP.Addr(), listenLoopback(t), suite.NumScenarios(), recordBytes, &duplicated)
	}()

	res, err := Coordinate(ctx, suite, CoordinatorConfig{
		Endpoint:       coordEP,
		LeaseScenarios: 4,
		Heartbeat:      coordTestHeartbeat,
		LeaseTimeout:   coordTestTimeout,
		Telemetry:      col,
	})
	if err != nil {
		t.Fatalf("Coordinate: %v", err)
	}
	if ferr := <-fakeDone; ferr != nil {
		t.Fatalf("fake worker: %v", ferr)
	}

	got, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("result with duplicated batches differs from single-machine run")
	}
	s := col.Snapshot()
	total := int64(suite.NumScenarios())
	if duplicated == 0 {
		t.Fatal("fake worker duplicated no batches; test exercised nothing")
	}
	if got := s.Counter(MetricCoordRecordsReplayed); got != int64(duplicated) {
		t.Errorf("coord.records_replayed = %d, want %d (one per duplicated record)", got, duplicated)
	}
	if s.Counter(MetricCoordRecordsReceived) != total {
		t.Errorf("coord.records_received = %d, want %d", s.Counter(MetricCoordRecordsReceived), total)
	}
}

// runDoubleShippingWorker speaks the lease protocol by hand: handshake,
// lease, then ship the pre-computed records for the range twice before
// asking for the next lease. The batch that completes the suite is shipped
// once — the coordinator returns the moment the last record lands, so a
// duplicate of that batch would never be acknowledged. *duplicated reports
// how many records went over the wire twice.
func runDoubleShippingWorker(ctx context.Context, coord string, ep transport.Endpoint, total int, records map[int]json.RawMessage, duplicated *int) error {
	send := func(kind proto.Kind, payload any) error {
		data, err := proto.Encode(kind, payload)
		if err != nil {
			return err
		}
		return ep.Send(coord, data)
	}
	recv := func(want proto.Kind) (json.RawMessage, error) {
		for {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case msg, ok := <-ep.Receive():
				if !ok {
					return nil, errors.New("endpoint closed")
				}
				k, raw, err := proto.Decode(msg.Payload)
				if err != nil {
					continue
				}
				if k == want {
					return raw, nil
				}
				if k == proto.KindWait {
					var w proto.Wait
					if proto.Unmarshal(raw, &w) == nil && w.Drain {
						return nil, nil // drained sentinel
					}
				}
			}
		}
	}

	if err := send(proto.KindHello, proto.Hello{Version: proto.Version}); err != nil {
		return err
	}
	if _, err := recv(proto.KindWelcome); err != nil {
		return err
	}
	seq := 0
	for {
		if err := send(proto.KindLeaseRequest, proto.LeaseRequest{}); err != nil {
			return err
		}
		raw, err := recv(proto.KindLease)
		if err != nil {
			return err
		}
		if raw == nil {
			return nil // drained
		}
		var lease proto.Lease
		if err := proto.Unmarshal(raw, &lease); err != nil {
			return err
		}
		batch := make([]json.RawMessage, 0, lease.End-lease.Start)
		for i := lease.Start; i < lease.End; i++ {
			batch = append(batch, records[i])
		}
		ships := 2
		if lease.End >= total {
			ships = 1 // final batch: the coordinator exits on its first copy
		}
		for ship := 0; ship < ships; ship++ {
			if err := send(proto.KindRecords, proto.Records{LeaseID: lease.ID, Seq: seq, Records: batch}); err != nil {
				return err
			}
			if raw, err := recv(proto.KindRecordsAck); err != nil {
				return err
			} else if raw == nil {
				return nil // drained mid-ack: coordinator finished
			}
			if ship == 1 {
				*duplicated += len(batch)
			}
			seq++
		}
	}
}

// TestRunIndicesDeterminism checks the engine's lease execution path: a
// suite split into two explicit index ranges and merged must match the
// whole-suite run byte for byte.
func TestRunIndicesDeterminism(t *testing.T) {
	suite := testSuite()
	want := referenceRun(t, suite)
	total := suite.NumScenarios()

	records := make(map[int]RunRecord, total)
	for _, idxs := range [][]int{rangeInts(0, total/2), rangeInts(total/2, total)} {
		_, err := Run(context.Background(), suite, Config{
			Workers: 3,
			Indices: idxs,
			OnRecord: func(rec RunRecord) error {
				records[rec.Index] = rec
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := MergeRecords(suite, records)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("split-indices merged result differs from whole-suite run")
	}
}

// TestRunIndicesValidation rejects schedules the lease path must never
// produce: descending, duplicate, and out-of-range indices.
func TestRunIndicesValidation(t *testing.T) {
	suite := testSuite()
	for _, bad := range [][]int{{1, 0}, {0, 0}, {-1}, {suite.NumScenarios()}} {
		_, err := Run(context.Background(), suite, Config{Indices: bad})
		if err == nil {
			t.Errorf("Indices %v accepted, want error", bad)
		}
	}
}

// rangeInts returns [start, end) as a slice.
func rangeInts(start, end int) []int {
	out := make([]int, 0, end-start)
	for i := start; i < end; i++ {
		out = append(out, i)
	}
	return out
}
