package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"tolerance/internal/fleet/proto"
	"tolerance/internal/telemetry"
	"tolerance/internal/transport"
)

// Lease-protocol defaults. The coordinator advertises its heartbeat
// interval and lease timeout in the Welcome message, so workers and
// coordinator always agree on the cadence.
const (
	// DefaultHeartbeat is how often a worker heartbeats a held lease.
	DefaultHeartbeat = 1 * time.Second
	// defaultLeaseTimeoutBeats is the missed-heartbeat budget: a lease
	// silent for this many heartbeat intervals is expired and re-leased.
	defaultLeaseTimeoutBeats = 5
	// maxLeaseScenarios caps the automatic lease size.
	maxLeaseScenarios = 256
)

// CoordinatorConfig tunes one coordinator run (Coordinate).
type CoordinatorConfig struct {
	// Endpoint is the coordinator's listening transport endpoint. The
	// caller owns it; Coordinate does not close it.
	Endpoint transport.Endpoint
	// LeaseScenarios is the number of scenarios per lease. Zero picks
	// total/16 clamped to [1, 256] — small enough that a dead worker's
	// lost work is bounded, large enough that lease traffic is negligible.
	LeaseScenarios int
	// Heartbeat is the keep-alive cadence advertised to workers (zero =
	// DefaultHeartbeat).
	Heartbeat time.Duration
	// LeaseTimeout expires a lease with no heartbeat or record traffic for
	// this long (zero = 5x Heartbeat). Its incomplete indices are
	// re-leased to the next requesting worker.
	LeaseTimeout time.Duration
	// Completed holds records from an earlier (killed) coordinator run's
	// checkpoint, keyed by scenario index; they fold as replays instead of
	// being leased out again.
	Completed map[int]RunRecord
	// OnRecord, when set, receives every freshly ingested record in strict
	// scenario-index order — the checkpoint write hook, identical in
	// contract to Config.OnRecord. An error aborts the run.
	OnRecord func(RunRecord) error
	// Progress, when set, is called with (folded, total) as the ordered
	// ingest frontier advances.
	Progress func(done, total int)
	// Telemetry, when set, receives the coord.* counters and gauges plus
	// the fleet.scenarios_folded/replayed counters the summary and
	// manifest read. Side-channel only: the merged Result is byte-identical
	// with or without it.
	Telemetry *telemetry.Collector
	// Logf, when set, receives operational one-liners (worker joins,
	// lease expiries, drains) — the coordinator's stderr narrative. It
	// must not write to stdout, which carries only the deterministic
	// result.
	Logf func(format string, args ...any)
}

// span is a half-open scenario-index range [start, end).
type span struct{ start, end int }

// coordLease is one outstanding lease in the coordinator's table.
type coordLease struct {
	id         uint64
	worker     string
	start, end int
	last       time.Time
}

// coordinator is the in-flight state of one Coordinate run.
type coordinator struct {
	cfg      CoordinatorConfig
	suite    Suite
	suiteDoc []byte
	fp       string
	total    int

	leaseSize int
	hb        time.Duration
	timeout   time.Duration

	records map[int]RunRecord
	next    int // ordered-ingest frontier: records [0, next) are folded
	queue   []span
	leases  map[uint64]*coordLease
	nextID  uint64
	workers map[string]time.Time

	// degraded marks the parked state: work remains but no worker has been
	// heard from for at least a lease timeout — the whole fleet partitioned
	// away or dead. The coordinator keeps ticking (leases already expired
	// back into the queue) and logs the transition once per episode instead
	// of spamming. started anchors the grace period before the first worker.
	degraded bool
	started  time.Time

	tm *coordMetrics
}

// coordMetrics bundles the coordinator's telemetry handles (nil = off).
type coordMetrics struct {
	col       *telemetry.Collector
	folded    *telemetry.Counter
	replayed  *telemetry.Counter
	granted   *telemetry.Counter
	expired   *telemetry.Counter
	received  *telemetry.Counter
	dupes     *telemetry.Counter
	rejected  *telemetry.Counter
	beats     *telemetry.Counter
	workers   *telemetry.Gauge
	pending   *telemetry.Gauge
	leasesOut *telemetry.Gauge
	degraded  *telemetry.Gauge
}

func newCoordMetrics(col *telemetry.Collector) *coordMetrics {
	if col == nil {
		return nil
	}
	return &coordMetrics{
		col:       col,
		folded:    col.Counter(MetricScenariosFolded),
		replayed:  col.Counter(MetricScenariosReplayed),
		granted:   col.Counter(MetricCoordLeasesGranted),
		expired:   col.Counter(MetricCoordLeasesExpired),
		received:  col.Counter(MetricCoordRecordsReceived),
		dupes:     col.Counter(MetricCoordRecordsReplayed),
		rejected:  col.Counter(MetricCoordRecordsRejected),
		beats:     col.Counter(MetricCoordHeartbeats),
		workers:   col.Gauge(MetricCoordWorkers),
		pending:   col.Gauge(MetricCoordScenariosPending),
		leasesOut: col.Gauge(MetricCoordLeasesOutstanding),
		degraded:  col.Gauge(MetricCoordDegraded),
	}
}

// Coordinate runs the distributed control plane for a suite: it listens on
// cfg.Endpoint, leases index-contiguous scenario ranges to connecting
// workers (ConnectWorker / tolerance-fleet -connect), ingests their record
// streams with first-write-wins dedupe, expires and re-leases ranges from
// workers that stop heartbeating, and — once every scenario index has a
// record — folds the records in strict index order into the same Result a
// single-machine Run of the suite produces, byte for byte.
//
// Fresh records reach cfg.OnRecord in index order exactly as Config.
// OnRecord would deliver them, so the existing checkpoint machinery (and
// -resume, via cfg.Completed) works unchanged. Cancelling ctx drains: a
// best-effort shutdown notice is broadcast to connected workers and the
// context error returned; an attached checkpoint then holds the folded
// prefix for a -resume restart.
func Coordinate(ctx context.Context, suite Suite, cfg CoordinatorConfig) (*Result, error) {
	suite = suite.withDefaults()
	if err := suite.Validate(); err != nil {
		return nil, err
	}
	if cfg.Endpoint == nil {
		return nil, fmt.Errorf("%w: coordinator needs a transport endpoint", ErrBadSuite)
	}
	total := suite.NumScenarios()
	if total == 0 {
		return nil, fmt.Errorf("%w: empty grid", ErrBadSuite)
	}
	doc, err := DumpSuite(suite)
	if err != nil {
		return nil, err
	}

	c := &coordinator{
		cfg:      cfg,
		suite:    suite,
		suiteDoc: doc,
		fp:       suite.Fingerprint(),
		total:    total,
		records:  make(map[int]RunRecord, total),
		leases:   make(map[uint64]*coordLease),
		workers:  make(map[string]time.Time),
		tm:       newCoordMetrics(cfg.Telemetry),
	}
	c.hb = cfg.Heartbeat
	if c.hb <= 0 {
		c.hb = DefaultHeartbeat
	}
	c.timeout = cfg.LeaseTimeout
	if c.timeout <= 0 {
		c.timeout = defaultLeaseTimeoutBeats * c.hb
	}
	c.leaseSize = cfg.LeaseScenarios
	if c.leaseSize <= 0 {
		c.leaseSize = min(max(total/16, 1), maxLeaseScenarios)
	}

	for idx, rec := range cfg.Completed {
		if idx < 0 || idx >= total {
			return nil, fmt.Errorf("%w: completed scenario %d is outside the suite (%d scenarios)",
				ErrBadSuite, idx, total)
		}
		if want := idx / suite.SeedsPerCell; rec.Cell != want {
			return nil, fmt.Errorf("%w: completed scenario %d records cell %d, want %d",
				ErrBadSuite, idx, rec.Cell, want)
		}
		c.records[idx] = rec
	}
	// Fold the resumed prefix before serving, so Progress and the pending
	// gauge reflect the checkpoint from the first tick. Replays never reach
	// OnRecord — the checkpoint already holds them.
	if err := c.sweep(); err != nil {
		return nil, err
	}
	c.queue = c.missingSpans(0, total)
	c.updateGauges()
	c.logf("coordinator: suite %s (%s): %d scenarios, %d already complete, lease size %d, heartbeat %s, lease timeout %s",
		suite.Name, c.fp, total, len(cfg.Completed), c.leaseSize, c.hb, c.timeout)

	if c.next == c.total {
		// Everything was already in the checkpoint; nothing to serve.
		return MergeRecords(c.suite, c.records)
	}

	if c.tm != nil {
		c.cfg.Telemetry.Gauge(MetricScenariosTotal).Set(float64(total))
		endRun := c.cfg.Telemetry.Phase("fleet.run")
		defer endRun()
	}

	c.started = time.Now()
	ticker := time.NewTicker(c.hb)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			c.broadcastDrain()
			return nil, ctx.Err()
		case msg, ok := <-c.cfg.Endpoint.Receive():
			if !ok {
				return nil, fmt.Errorf("fleet: coordinator endpoint closed")
			}
			if err := c.handle(msg); err != nil {
				c.broadcastDrain()
				return nil, err
			}
			if c.next == c.total {
				c.broadcastDrain()
				c.logf("coordinator: all %d scenarios ingested; draining workers", c.total)
				return MergeRecords(c.suite, c.records)
			}
		case <-ticker.C:
			c.expireLeases(time.Now())
		}
	}
}

// handle dispatches one inbound protocol message.
func (c *coordinator) handle(msg transport.Message) error {
	kind, payload, err := proto.Decode(msg.Payload)
	if err != nil {
		c.reject()
		return nil // garbage from the network is dropped, not fatal
	}
	now := time.Now()
	switch kind {
	case proto.KindHello:
		var h proto.Hello
		if err := proto.Unmarshal(payload, &h); err != nil || h.Version != proto.Version {
			c.reject()
			return nil
		}
		if _, known := c.workers[msg.From]; !known {
			c.logf("coordinator: worker %s connected", msg.From)
		}
		c.alive(msg.From, now)
		c.updateGauges()
		c.send(msg.From, proto.KindWelcome, proto.Welcome{
			Version:            proto.Version,
			Suite:              c.suiteDoc,
			Fingerprint:        c.fp,
			Scenarios:          c.total,
			HeartbeatMillis:    int(c.hb / time.Millisecond),
			LeaseTimeoutMillis: int(c.timeout / time.Millisecond),
		})
	case proto.KindLeaseRequest:
		c.alive(msg.From, now)
		if lease, ok := c.grant(msg.From, now); ok {
			c.send(msg.From, proto.KindLease, lease)
		} else if c.next == c.total {
			c.send(msg.From, proto.KindWait, proto.Wait{Drain: true})
		} else {
			// Outstanding leases cover the remaining work; the worker backs
			// off and asks again (it inherits expired ranges that way).
			c.send(msg.From, proto.KindWait, proto.Wait{
				BackoffMillis: c.waitBackoffMillis(),
			})
		}
	case proto.KindRecords:
		var batch proto.Records
		if err := proto.Unmarshal(payload, &batch); err != nil {
			c.reject()
			return nil
		}
		c.alive(msg.From, now)
		if l, ok := c.leases[batch.LeaseID]; ok {
			l.last = now
		}
		for _, raw := range batch.Records {
			if err := c.ingest(raw); err != nil {
				return err
			}
		}
		c.send(msg.From, proto.KindRecordsAck, proto.RecordsAck{
			LeaseID: batch.LeaseID, Seq: batch.Seq,
		})
		c.completeLease(batch.LeaseID)
	case proto.KindHeartbeat:
		var hb proto.Heartbeat
		if err := proto.Unmarshal(payload, &hb); err != nil {
			c.reject()
			return nil
		}
		c.alive(msg.From, now)
		if l, ok := c.leases[hb.LeaseID]; ok {
			l.last = now
		}
		if c.tm != nil {
			c.tm.beats.Inc(0)
		}
	case proto.KindGoodbye:
		c.releaseWorker(msg.From)
	default:
		c.reject()
	}
	return nil
}

// waitBackoffMillis is the adaptive backoff hint sent with a workless
// Wait: one heartbeat interval when little is outstanding (the next lease
// frees up soon), scaling with outstanding-lease pressure — many live
// leases mean the idle worker will be told "no" for a while, so polling on
// every heartbeat is pure load on a coordinator that is already busy
// ingesting — and clamped to the lease timeout so an expired range never
// waits long for a taker. Workers clamp the hint again on their side;
// neither end trusts the other's arithmetic.
func (c *coordinator) waitBackoffMillis() int {
	d := c.hb * time.Duration(1+min(len(c.leases), 4))
	return int(min(d, c.timeout) / time.Millisecond)
}

// ingest validates and dedupes one wire record, folding it through the
// ordered frontier. First write wins: a duplicate index — a retransmitted
// batch, or a re-leased range both the dead and the replacement worker
// executed — counts as a replay and is dropped, which is sound because
// record bytes are a pure function of (suite, index).
func (c *coordinator) ingest(raw json.RawMessage) error {
	var rec RunRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		c.reject()
		return nil
	}
	if rec.Index < 0 || rec.Index >= c.total || rec.Cell != rec.Index/c.suite.SeedsPerCell {
		c.reject()
		return nil
	}
	if _, dup := c.records[rec.Index]; dup {
		if c.tm != nil {
			c.tm.dupes.Inc(0)
		}
		return nil
	}
	c.records[rec.Index] = rec
	if c.tm != nil {
		c.tm.received.Inc(0)
	}
	if err := c.sweep(); err != nil {
		return err
	}
	c.updateGauges()
	return nil
}

// sweep advances the ordered-ingest frontier: every contiguous record from
// next upward folds out — fresh ones through OnRecord (the checkpoint
// hook), resumed ones as replays — so the checkpoint stays an index-ordered
// prefix exactly as a single-machine run writes it.
func (c *coordinator) sweep() error {
	for {
		rec, ok := c.records[c.next]
		if !ok {
			return nil
		}
		_, resumed := c.cfg.Completed[c.next]
		if c.tm != nil {
			c.tm.folded.Inc(0)
			if resumed {
				c.tm.replayed.Inc(0)
			}
		}
		if !resumed && c.cfg.OnRecord != nil {
			if err := c.cfg.OnRecord(rec); err != nil {
				return fmt.Errorf("fleet: record scenario %d: %w", rec.Index, err)
			}
		}
		c.next++
		if c.cfg.Progress != nil {
			c.cfg.Progress(c.next, c.total)
		}
	}
}

// grant pops the next lease-sized chunk off the pending queue.
func (c *coordinator) grant(worker string, now time.Time) (proto.Lease, bool) {
	for len(c.queue) > 0 {
		s := c.queue[0]
		if s.start >= s.end {
			c.queue = c.queue[1:]
			continue
		}
		end := min(s.start+c.leaseSize, s.end)
		lease := proto.Lease{ID: c.nextID, Start: s.start, End: end}
		c.nextID++
		if end == s.end {
			c.queue = c.queue[1:]
		} else {
			c.queue[0].start = end
		}
		c.leases[lease.ID] = &coordLease{
			id: lease.ID, worker: worker, start: lease.Start, end: lease.End, last: now,
		}
		if c.tm != nil {
			c.tm.granted.Inc(0)
		}
		c.updateGauges()
		return lease, true
	}
	return proto.Lease{}, false
}

// completeLease retires a lease once every index of its range has a
// record. A finished range needs no more heartbeats — without this, the
// worker moves on to its next lease and the finished one would sit in the
// table until it "expired", polluting coord.leases_expired (which must
// count only genuinely dead leases) and the outstanding-leases gauge.
func (c *coordinator) completeLease(id uint64) {
	l, ok := c.leases[id]
	if !ok {
		return
	}
	for i := l.start; i < l.end; i++ {
		if _, ok := c.records[i]; !ok {
			return
		}
	}
	delete(c.leases, id)
	c.updateGauges()
}

// expireLeases revokes leases that have been silent past the timeout and
// returns their incomplete indices to the front of the queue, so the
// replacement worker continues where the dead one stopped.
func (c *coordinator) expireLeases(now time.Time) {
	for id, l := range c.leases {
		if now.Sub(l.last) <= c.timeout {
			continue
		}
		delete(c.leases, id)
		missing := c.requeue(l.start, l.end)
		if c.tm != nil {
			c.tm.expired.Inc(0)
		}
		c.logf("coordinator: lease %d [%d,%d) on %s expired after %s silence; %d scenarios re-leased",
			id, l.start, l.end, l.worker, c.timeout, missing)
	}
	// A worker silent far past the lease timeout is gone; drop it so the
	// connected-workers gauge and the drain broadcast stay honest.
	for addr, last := range c.workers {
		if now.Sub(last) > 4*c.timeout {
			delete(c.workers, addr)
			c.logf("coordinator: worker %s presumed dead", addr)
		}
	}
	// Graceful degradation: work remains but every worker is gone —
	// partitioned away, crashed, or never arrived. The expiries above
	// already parked their leases back in the queue; nothing is served
	// until a worker reappears, so flag the episode once and keep waiting
	// instead of spinning through grant attempts against an empty room.
	if !c.degraded && len(c.workers) == 0 && c.next < c.total && now.Sub(c.started) > c.timeout {
		c.degraded = true
		if c.tm != nil {
			c.tm.degraded.Set(1)
		}
		c.logf("coordinator: degraded — %d scenarios pending, no reachable workers; leases parked until the fleet returns",
			c.total-len(c.records))
	}
	c.updateGauges()
}

// alive records a sign of life from a worker, ending any degraded episode.
func (c *coordinator) alive(addr string, now time.Time) {
	c.workers[addr] = now
	if c.degraded {
		c.degraded = false
		if c.tm != nil {
			c.tm.degraded.Set(0)
		}
		c.logf("coordinator: recovered — worker %s reachable, resuming lease service", addr)
	}
}

// releaseWorker handles a voluntary departure: every lease the worker
// holds is requeued immediately, skipping the expiry timeout.
func (c *coordinator) releaseWorker(addr string) {
	released := 0
	for id, l := range c.leases {
		if l.worker != addr {
			continue
		}
		delete(c.leases, id)
		c.requeue(l.start, l.end)
		released++
	}
	if _, known := c.workers[addr]; known {
		delete(c.workers, addr)
		c.logf("coordinator: worker %s left (%d leases released)", addr, released)
	}
	c.updateGauges()
}

// requeue prepends the still-missing indices of [start, end) to the
// pending queue and reports how many there were.
func (c *coordinator) requeue(start, end int) int {
	spans := c.missingSpans(start, end)
	missing := 0
	for _, s := range spans {
		missing += s.end - s.start
	}
	if missing > 0 {
		c.queue = append(spans, c.queue...)
	}
	return missing
}

// missingSpans lists the maximal ranges of [start, end) with no record yet.
func (c *coordinator) missingSpans(start, end int) []span {
	var spans []span
	for i := start; i < end; i++ {
		if _, ok := c.records[i]; ok {
			continue
		}
		if n := len(spans); n > 0 && spans[n-1].end == i {
			spans[n-1].end = i + 1
		} else {
			spans = append(spans, span{i, i + 1})
		}
	}
	return spans
}

// broadcastDrain tells every known worker the run is over (best effort —
// a missed drain only costs the worker its handshake retries).
func (c *coordinator) broadcastDrain() {
	for addr := range c.workers {
		c.send(addr, proto.KindWait, proto.Wait{Drain: true})
	}
}

// send encodes and transmits one message, best effort: a dead peer's lease
// expiry — not the send path — is what guarantees progress.
func (c *coordinator) send(to string, kind proto.Kind, payload any) {
	data, err := proto.Encode(kind, payload)
	if err != nil {
		return
	}
	_ = c.cfg.Endpoint.Send(to, data)
}

func (c *coordinator) reject() {
	if c.tm != nil {
		c.tm.rejected.Inc(0)
	}
}

func (c *coordinator) updateGauges() {
	if c.tm == nil {
		return
	}
	c.tm.workers.Set(float64(len(c.workers)))
	c.tm.pending.Set(float64(c.total - len(c.records)))
	c.tm.leasesOut.Set(float64(len(c.leases)))
}

func (c *coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}
