package fleet

import (
	"context"
	"encoding/json"
	"path/filepath"
	"runtime"
	"testing"
)

// runWithCheckpoint executes the suite writing every record to path and
// returns the serialized result.
func runWithCheckpoint(t *testing.T, suite Suite, path string, completed map[int]RunRecord) []byte {
	t.Helper()
	var w *CheckpointWriter
	var err error
	if completed != nil {
		ck, rerr := ReadCheckpoint(path)
		if rerr != nil {
			t.Fatal(rerr)
		}
		w, err = AppendCheckpoint(path, ck)
	} else {
		w, err = CreateCheckpoint(path, suite, Shard{})
	}
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), suite, Config{
		Workers:   2,
		Cache:     NewStrategyCache(),
		Completed: completed,
		OnRecord:  w.Append,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGzipCheckpointRoundTrip writes a full run through a .gz checkpoint
// and checks the compressed file reads back into exactly the records a
// plain checkpoint of the same run holds.
func TestGzipCheckpointRoundTrip(t *testing.T) {
	suite := testSuite()
	dir := t.TempDir()
	plainPath := filepath.Join(dir, "run.jsonl")
	gzPath := filepath.Join(dir, "run.jsonl.gz")

	plainJSON := runWithCheckpoint(t, suite, plainPath, nil)
	gzJSON := runWithCheckpoint(t, suite, gzPath, nil)
	if string(plainJSON) != string(gzJSON) {
		t.Error("gzip-checkpointed run result differs from plain run")
	}

	plain, err := ReadCheckpoint(plainPath)
	if err != nil {
		t.Fatal(err)
	}
	gz, err := ReadCheckpoint(gzPath)
	if err != nil {
		t.Fatal(err)
	}
	if !gz.gz || plain.gz {
		t.Errorf("gz flags: plain %v, gzip %v", plain.gz, gz.gz)
	}
	if gz.Suite.Fingerprint() != plain.Suite.Fingerprint() {
		t.Error("suite fingerprint differs between plain and gzip checkpoints")
	}
	if len(gz.Records) != len(plain.Records) {
		t.Fatalf("gzip checkpoint has %d records, plain %d", len(gz.Records), len(plain.Records))
	}
	for idx, rec := range plain.Records {
		if gz.Records[idx] != rec {
			t.Errorf("record %d differs between plain and gzip checkpoints", idx)
		}
	}

	// MergeRecords accepts the gzip file's records like any other shard
	// set (the -merge path reads through the same ReadCheckpoint).
	suiteFromFile, combined, err := ReadShardSet([]string{gzPath})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeRecords(suiteFromFile, combined)
	if err != nil {
		t.Fatal(err)
	}
	mergedJSON, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	if string(mergedJSON) != string(plainJSON) {
		t.Error("merge of the gzip checkpoint differs from the direct run")
	}
}

// TestGzipCheckpointKilledRunResumes simulates a kill mid-write: the gzip
// stream never gets its trailer, yet the synced prefix reads back and a
// resume completes with output byte-identical to an uninterrupted run.
func TestGzipCheckpointKilledRunResumes(t *testing.T) {
	suite := testSuite()
	dir := t.TempDir()
	path := filepath.Join(dir, "killed.jsonl.gz")

	whole, recs := collectRecords(t, suite, Shard{}, nil)
	wholeJSON, err := json.Marshal(whole)
	if err != nil {
		t.Fatal(err)
	}

	// Write half the records, force a compressed-block flush, then abandon
	// the writer without Close — no gzip trailer, like a SIGKILL.
	w, err := CreateCheckpoint(path, suite, Shard{})
	if err != nil {
		t.Fatal(err)
	}
	half := recs[:len(recs)/2]
	for _, rec := range half {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.f.Close(); err != nil {
		t.Fatal(err)
	}

	ck, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatalf("killed gzip checkpoint unreadable: %v", err)
	}
	if len(ck.Records) != len(half) {
		t.Fatalf("recovered %d records from killed gzip checkpoint, want %d", len(ck.Records), len(half))
	}

	resumedJSON := runWithCheckpoint(t, suite, path, ck.Records)
	if string(resumedJSON) != string(wholeJSON) {
		t.Error("gzip resume differs from uninterrupted run")
	}

	// The rewritten file now holds every record and a proper trailer.
	final, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Records) != len(recs) {
		t.Errorf("resumed gzip checkpoint has %d records, want %d", len(final.Records), len(recs))
	}
}

// TestConfigDefaultWorkersUncapped documents the lifted cap: the default
// worker count is GOMAXPROCS (no ceiling of 8), and explicit values pass
// through untouched however large.
func TestConfigDefaultWorkersUncapped(t *testing.T) {
	if got := (Config{}).withDefaults().Workers; got != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := (Config{Workers: 64}).withDefaults().Workers; got != 64 {
		t.Errorf("explicit workers = %d, want 64 (never capped)", got)
	}
	if got := (Config{Workers: 1}).withDefaults().Workers; got != 1 {
		t.Errorf("explicit workers = %d, want 1", got)
	}
}
