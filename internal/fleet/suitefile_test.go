package fleet

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestSuiteJSONRoundTrip is the suite-file contract: dumping any built-in
// suite and loading it back must expand to the identical scenario list
// (cells, indices, seeds — everything the engine consumes).
func TestSuiteJSONRoundTrip(t *testing.T) {
	for _, orig := range Builtin() {
		data, err := DumpSuite(orig)
		if err != nil {
			t.Fatalf("%s: dump: %v", orig.Name, err)
		}
		loaded, err := ParseSuite(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", orig.Name, err)
		}
		if !reflect.DeepEqual(loaded, orig.withDefaults()) {
			t.Errorf("%s: round-trip suite differs:\ngot  %+v\nwant %+v",
				orig.Name, loaded, orig.withDefaults())
		}
		if !reflect.DeepEqual(loaded.Cells(), orig.Cells()) {
			t.Errorf("%s: round-trip cell expansion differs", orig.Name)
		}
		if loaded.Fingerprint() != orig.Fingerprint() {
			t.Errorf("%s: round-trip fingerprint %s != %s",
				orig.Name, loaded.Fingerprint(), orig.Fingerprint())
		}
		// A second dump is byte-identical (defaults are idempotent).
		again, err := DumpSuite(loaded)
		if err != nil {
			t.Fatalf("%s: re-dump: %v", orig.Name, err)
		}
		if string(again) != string(data) {
			t.Errorf("%s: re-dump differs from dump", orig.Name)
		}
	}
}

func TestLoadSuiteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "suite.json")
	data, err := DumpSuite(Builtin()[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSuiteFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != Builtin()[0].Name {
		t.Errorf("loaded suite %q", s.Name)
	}
	if _, err := LoadSuiteFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestParseSuiteRejections(t *testing.T) {
	cases := map[string]string{
		"not json":        `{"version": 1, "name": "x"`,
		"missing version": `{"name": "x"}`,
		"future version":  `{"version": 99, "name": "x"}`,
		"missing name":    `{"version": 1}`,
		"unknown field":   `{"version": 1, "name": "x", "atackRates": [0.1]}`,
		"invalid axis":    `{"version": 1, "name": "x", "attackRates": [1.5]}`,
		"bad policy":      `{"version": 1, "name": "x", "policies": ["NOPE"]}`,
	}
	for label, src := range cases {
		if _, err := ParseSuite([]byte(src)); err == nil {
			t.Errorf("%s: expected error", label)
		}
	}
	// The minimal valid file: version + name; everything else defaults.
	s, err := ParseSuite([]byte(`{"version": 1, "name": "minimal"}`))
	if err != nil {
		t.Fatalf("minimal suite: %v", err)
	}
	if got, want := s.withDefaults().NumScenarios(), (Suite{}).withDefaults().NumScenarios(); got != want {
		t.Errorf("minimal suite expands to %d scenarios, want default %d", got, want)
	}
}

// TestSuiteFingerprint: equal grids agree, any axis or override change
// disagrees — the property resume and merge rely on to refuse mixing
// records across grids.
func TestSuiteFingerprint(t *testing.T) {
	a := Builtin()[0]
	if a.Fingerprint() != Builtin()[0].Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	// Defaulting must not change the fingerprint (the CLI fingerprints the
	// overridden-but-not-yet-defaulted suite).
	if a.Fingerprint() != a.withDefaults().Fingerprint() {
		t.Error("defaulting changed the fingerprint")
	}
	mutations := []func(*Suite){
		func(s *Suite) { s.Seed++ },
		func(s *Suite) { s.Steps++ },
		func(s *Suite) { s.SeedsPerCell++ },
		func(s *Suite) { s.AttackRates = append(s.AttackRates, 0.2) },
		func(s *Suite) { s.Policies = []PolicyKind{PolicyPeriodic} },
	}
	for i, mutate := range mutations {
		m := a
		// Deep-enough copy for the slices the mutations touch.
		m.AttackRates = append([]float64(nil), a.AttackRates...)
		mutate(&m)
		if m.Fingerprint() == a.Fingerprint() {
			t.Errorf("mutation %d did not change the fingerprint", i)
		}
	}
}

func TestDumpSuiteInvalid(t *testing.T) {
	bad := Suite{Name: "bad", AttackRates: []float64{2}}
	if _, err := DumpSuite(bad); err == nil || !strings.Contains(err.Error(), "attack rate") {
		t.Errorf("dump of invalid suite: %v", err)
	}
}
