package fleet

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestSuiteJSONRoundTrip is the suite-file contract: dumping any built-in
// suite and loading it back must expand to the identical scenario list
// (cells, indices, seeds — everything the engine consumes).
func TestSuiteJSONRoundTrip(t *testing.T) {
	for _, orig := range Builtin() {
		data, err := DumpSuite(orig)
		if err != nil {
			t.Fatalf("%s: dump: %v", orig.Name, err)
		}
		loaded, err := ParseSuite(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", orig.Name, err)
		}
		if !reflect.DeepEqual(loaded, orig.withDefaults()) {
			t.Errorf("%s: round-trip suite differs:\ngot  %+v\nwant %+v",
				orig.Name, loaded, orig.withDefaults())
		}
		if !reflect.DeepEqual(loaded.Cells(), orig.Cells()) {
			t.Errorf("%s: round-trip cell expansion differs", orig.Name)
		}
		if loaded.Fingerprint() != orig.Fingerprint() {
			t.Errorf("%s: round-trip fingerprint %s != %s",
				orig.Name, loaded.Fingerprint(), orig.Fingerprint())
		}
		// A second dump is byte-identical (defaults are idempotent).
		again, err := DumpSuite(loaded)
		if err != nil {
			t.Fatalf("%s: re-dump: %v", orig.Name, err)
		}
		if string(again) != string(data) {
			t.Errorf("%s: re-dump differs from dump", orig.Name)
		}
	}
}

func TestLoadSuiteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "suite.json")
	data, err := DumpSuite(Builtin()[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSuiteFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != Builtin()[0].Name {
		t.Errorf("loaded suite %q", s.Name)
	}
	if _, err := LoadSuiteFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestParseSuiteRejections(t *testing.T) {
	cases := map[string]string{
		"not json":        `{"version": 1, "name": "x"`,
		"missing version": `{"name": "x"}`,
		"future version":  `{"version": 99, "name": "x"}`,
		"missing name":    `{"version": 1}`,
		"unknown field":   `{"version": 1, "name": "x", "atackRates": [0.1]}`,
		"invalid axis":    `{"version": 1, "name": "x", "attackRates": [1.5]}`,
		"bad policy":      `{"version": 1, "name": "x", "policies": ["NOPE"]}`,
		"v1 w/ backends":  `{"version": 1, "name": "x", "backends": ["cluster"]}`,
		"bad backend":     `{"version": 2, "name": "x", "backends": ["NOPE"]}`,
	}
	for label, src := range cases {
		if _, err := ParseSuite([]byte(src)); err == nil {
			t.Errorf("%s: expected error", label)
		}
	}
	// The minimal valid file: version + name; everything else defaults.
	s, err := ParseSuite([]byte(`{"version": 1, "name": "minimal"}`))
	if err != nil {
		t.Fatalf("minimal suite: %v", err)
	}
	if got, want := s.withDefaults().NumScenarios(), (Suite{}).withDefaults().NumScenarios(); got != want {
		t.Errorf("minimal suite expands to %d scenarios, want default %d", got, want)
	}
}

// TestSuiteFileVersioning pins the two-version scheme: version-1 files
// (implicitly emulation) parse under both stamps, the backends axis
// requires version 2, and DumpSuite stamps the oldest version able to
// express the suite so pre-backend dumps are byte-identical across the
// schema bump.
func TestSuiteFileVersioning(t *testing.T) {
	// A version-2 stamp on a backend-free suite is accepted: version 2 is
	// a superset of version 1.
	if _, err := ParseSuite([]byte(`{"version": 2, "name": "x"}`)); err != nil {
		t.Errorf("backend-free version-2 file rejected: %v", err)
	}
	s, err := ParseSuite([]byte(`{"version": 2, "name": "x", "backends": ["cluster"]}`))
	if err != nil {
		t.Fatalf("version-2 backends file rejected: %v", err)
	}
	if len(s.Backends) != 1 || s.Backends[0] != BackendCluster {
		t.Errorf("parsed backends = %v", s.Backends)
	}

	v1, err := DumpSuite(Suite{Name: "legacy"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(v1), `"version": 1`) {
		t.Errorf("backend-free dump not stamped version 1:\n%s", v1)
	}
	v2, err := DumpSuite(Suite{Name: "live", Backends: []string{BackendCluster}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(v2), `"version": 2`) || !strings.Contains(string(v2), `"backends"`) {
		t.Errorf("backends dump not stamped version 2:\n%s", v2)
	}
}

// TestSuiteFingerprint: equal grids agree, any axis or override change
// disagrees — the property resume and merge rely on to refuse mixing
// records across grids.
func TestSuiteFingerprint(t *testing.T) {
	a := Builtin()[0]
	if a.Fingerprint() != Builtin()[0].Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	// Defaulting must not change the fingerprint (the CLI fingerprints the
	// overridden-but-not-yet-defaulted suite).
	if a.Fingerprint() != a.withDefaults().Fingerprint() {
		t.Error("defaulting changed the fingerprint")
	}
	mutations := []func(*Suite){
		func(s *Suite) { s.Seed++ },
		func(s *Suite) { s.Steps++ },
		func(s *Suite) { s.SeedsPerCell++ },
		func(s *Suite) { s.AttackRates = append(s.AttackRates, 0.2) },
		func(s *Suite) { s.Policies = []PolicyKind{PolicyPeriodic} },
		func(s *Suite) { s.Backends = []string{BackendCluster} },
	}
	// An axis that only spells out the default backend is the same grid:
	// its fingerprint canonicalizes to the axis-free one, so pre-backend
	// checkpoints keep resuming against explicitly-emulation suites.
	explicit := a
	explicit.Backends = []string{BackendEmulation}
	if explicit.Fingerprint() != a.Fingerprint() {
		t.Error("explicit emulation backend changed the fingerprint")
	}
	for i, mutate := range mutations {
		m := a
		// Deep-enough copy for the slices the mutations touch.
		m.AttackRates = append([]float64(nil), a.AttackRates...)
		mutate(&m)
		if m.Fingerprint() == a.Fingerprint() {
			t.Errorf("mutation %d did not change the fingerprint", i)
		}
	}
}

func TestDumpSuiteInvalid(t *testing.T) {
	bad := Suite{Name: "bad", AttackRates: []float64{2}}
	if _, err := DumpSuite(bad); err == nil || !strings.Contains(err.Error(), "attack rate") {
		t.Errorf("dump of invalid suite: %v", err)
	}
}
