package fleet

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseShard(t *testing.T) {
	good := map[string]Shard{
		"0/1": {Index: 0, Count: 1},
		"0/4": {Index: 0, Count: 4},
		"3/4": {Index: 3, Count: 4},
	}
	for in, want := range good {
		got, err := ParseShard(in)
		if err != nil || got != want {
			t.Errorf("ParseShard(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "1", "1/", "/2", "a/2", "1/b", "2/2", "-1/2", "1/-2", "1/2/3"} {
		if _, err := ParseShard(in); err == nil {
			t.Errorf("ParseShard(%q) should fail", in)
		}
	}
}

// TestShardPartition: every shard split of an index set is a disjoint,
// complete partition, and the whole shard contains everything.
func TestShardPartition(t *testing.T) {
	const total = 97
	for n := 1; n <= 5; n++ {
		seen := make([]int, total)
		for i := 0; i < n; i++ {
			sh := Shard{Index: i, Count: n}
			for _, idx := range sh.Indices(total) {
				if !sh.Contains(idx) {
					t.Fatalf("shard %s Indices/Contains disagree at %d", sh, idx)
				}
				seen[idx]++
			}
		}
		for idx, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, idx, c)
			}
		}
	}
	if (Shard{}).String() != "0/1" || !(Shard{}).IsWhole() {
		t.Error("zero shard is not the whole run")
	}
}

// collectRecords runs the suite (optionally one shard of it) and returns
// the result plus every record emitted through OnRecord.
func collectRecords(t *testing.T, suite Suite, shard Shard, completed map[int]RunRecord) (*Result, []RunRecord) {
	t.Helper()
	var recs []RunRecord
	res, err := Run(context.Background(), suite, Config{
		Workers:   4,
		Shard:     shard,
		Completed: completed,
		OnRecord:  func(r RunRecord) error { recs = append(recs, r); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, recs
}

// TestShardMergeByteIdentical is the scale-out contract: running a suite
// as n shards and merging the records produces a Result that serializes
// byte-identically to the unsharded run, for several n.
func TestShardMergeByteIdentical(t *testing.T) {
	suite := testSuite()
	whole, wholeRecs := collectRecords(t, suite, Shard{}, nil)
	wholeJSON, err := json.Marshal(whole)
	if err != nil {
		t.Fatal(err)
	}
	if len(wholeRecs) != suite.NumScenarios() {
		t.Fatalf("whole run emitted %d records, want %d", len(wholeRecs), suite.NumScenarios())
	}
	for _, n := range []int{2, 3} {
		records := make(map[int]RunRecord)
		for i := 0; i < n; i++ {
			shard := Shard{Index: i, Count: n}
			res, recs := collectRecords(t, suite, shard, nil)
			if res.Scenarios != len(shard.Indices(suite.NumScenarios())) {
				t.Fatalf("shard %s ran %d scenarios", shard, res.Scenarios)
			}
			// Records arrive in index order (the checkpoint-prefix property).
			for j := 1; j < len(recs); j++ {
				if recs[j].Index <= recs[j-1].Index {
					t.Fatalf("shard %s records out of order at %d", shard, j)
				}
			}
			for _, r := range recs {
				if !shard.Contains(r.Index) {
					t.Fatalf("shard %s emitted out-of-shard record %d", shard, r.Index)
				}
				records[r.Index] = r
			}
		}
		merged, err := MergeRecords(suite, records)
		if err != nil {
			t.Fatal(err)
		}
		mergedJSON, err := json.Marshal(merged)
		if err != nil {
			t.Fatal(err)
		}
		if string(mergedJSON) != string(wholeJSON) {
			t.Errorf("n=%d: merged result differs from unsharded run:\n%s\n%s",
				n, mergedJSON, wholeJSON)
		}
	}
}

// TestMergeRecordsValidation: incomplete or inconsistent record sets are
// rejected rather than silently producing a partial aggregate.
func TestMergeRecordsValidation(t *testing.T) {
	suite := testSuite()
	_, recs := collectRecords(t, suite, Shard{}, nil)
	records := make(map[int]RunRecord, len(recs))
	for _, r := range recs {
		records[r.Index] = r
	}

	missing := make(map[int]RunRecord)
	for k, v := range records {
		missing[k] = v
	}
	delete(missing, 3)
	if _, err := MergeRecords(suite, missing); err == nil {
		t.Error("missing scenario should fail merge")
	}

	wrongCell := make(map[int]RunRecord)
	for k, v := range records {
		wrongCell[k] = v
	}
	r := wrongCell[0]
	r.Cell++
	wrongCell[0] = r
	if _, err := MergeRecords(suite, wrongCell); err == nil {
		t.Error("inconsistent cell should fail merge")
	}
}

// TestResumeByteIdentical is the crash-recovery contract: a run killed
// after completing a prefix of its scenarios, restarted with those records
// as Completed, produces byte-identical output while re-executing only the
// remainder.
func TestResumeByteIdentical(t *testing.T) {
	suite := testSuite()
	whole, recs := collectRecords(t, suite, Shard{}, nil)
	wholeJSON, err := json.Marshal(whole)
	if err != nil {
		t.Fatal(err)
	}
	completed := make(map[int]RunRecord)
	for _, r := range recs[:len(recs)/2] {
		completed[r.Index] = r
	}
	resumed, fresh := collectRecords(t, suite, Shard{}, completed)
	resumedJSON, err := json.Marshal(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if string(resumedJSON) != string(wholeJSON) {
		t.Errorf("resumed result differs from uninterrupted run:\n%s\n%s", resumedJSON, wholeJSON)
	}
	if want := len(recs) - len(completed); len(fresh) != want {
		t.Errorf("resume re-executed %d scenarios, want %d", len(fresh), want)
	}
	for _, r := range fresh {
		if _, done := completed[r.Index]; done {
			t.Errorf("resume re-executed completed scenario %d", r.Index)
		}
	}

	// Completed records outside the shard are a configuration error.
	if _, err := Run(context.Background(), suite, Config{
		Shard:     Shard{Index: 0, Count: 2},
		Completed: map[int]RunRecord{1: {Index: 1}},
	}); err == nil {
		t.Error("out-of-shard completed record should fail")
	}
}

// TestCheckpointFileRoundTrip drives the durable path end to end: run a
// shard with a CheckpointWriter, read the file back, and check it replays
// into the same records; then corrupt the tail and confirm the reader
// degrades to the intact prefix.
func TestCheckpointFileRoundTrip(t *testing.T) {
	suite := testSuite()
	shard := Shard{Index: 1, Count: 2}
	dir := t.TempDir()
	path := filepath.Join(dir, "shard.jsonl")

	w, err := CreateCheckpoint(path, suite, shard)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), suite, Config{
		Workers:  4,
		Shard:    shard,
		Cache:    NewStrategyCache(),
		OnRecord: w.Append,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	ck, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Shard != shard {
		t.Errorf("checkpoint shard %v, want %v", ck.Shard, shard)
	}
	if ck.Suite.Fingerprint() != suite.Fingerprint() {
		t.Error("checkpoint suite fingerprint mismatch")
	}
	if len(ck.Records) != res.Scenarios {
		t.Fatalf("checkpoint has %d records, run folded %d", len(ck.Records), res.Scenarios)
	}

	// Resuming from a complete checkpoint executes nothing new and still
	// reproduces the shard result exactly.
	resumed, fresh := collectRecords(t, suite, shard, ck.Records)
	if len(fresh) != 0 {
		t.Errorf("complete checkpoint re-executed %d scenarios", len(fresh))
	}
	a, _ := json.Marshal(res)
	b, _ := json.Marshal(resumed)
	if string(a) != string(b) {
		t.Error("checkpoint replay differs from original shard run")
	}

	// A torn final line (killed mid-write) must not poison the file.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append([]byte(nil), data...)
	torn = append(torn, []byte(`{"index":999,"cell":`)...) // no newline: torn write
	tornPath := filepath.Join(dir, "torn.jsonl")
	if err := os.WriteFile(tornPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	ck2, err := ReadCheckpoint(tornPath)
	if err != nil {
		t.Fatalf("torn checkpoint should load: %v", err)
	}
	if len(ck2.Records) != len(ck.Records) {
		t.Errorf("torn checkpoint has %d records, want %d", len(ck2.Records), len(ck.Records))
	}

	// Appending after a torn tail must truncate the fragment first; the
	// file must stay readable and gain exactly the appended record.
	aw, err := AppendCheckpoint(tornPath, ck2)
	if err != nil {
		t.Fatal(err)
	}
	extra := RunRecord{Index: 999, Cell: 999 / suite.withDefaults().SeedsPerCell}
	if err := aw.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	// 999 is outside this test suite's grid, so read it back leniently:
	// the file must parse line by line with no glued fragment.
	raw, err := os.ReadFile(tornPath)
	if err != nil {
		t.Fatal(err)
	}
	gotLines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if want := 1 + len(ck.Records) + 1; len(gotLines) != want {
		t.Fatalf("appended torn file has %d lines, want %d", len(gotLines), want)
	}
	var last RunRecord
	if err := json.Unmarshal([]byte(gotLines[len(gotLines)-1]), &last); err != nil {
		t.Fatalf("appended record corrupted by torn tail: %v", err)
	}
	if last.Index != extra.Index {
		t.Errorf("appended record index %d, want %d", last.Index, extra.Index)
	}

	// A kill can also land exactly between a record's closing brace and
	// its newline: the last line is complete JSON but not durable. It must
	// count as torn — otherwise validBytes would overshoot the file and
	// the truncate-then-append resume would corrupt it.
	noNL := []byte(strings.TrimRight(string(data), "\n"))
	noNLPath := filepath.Join(dir, "no-newline.jsonl")
	if err := os.WriteFile(noNLPath, noNL, 0o644); err != nil {
		t.Fatal(err)
	}
	ck3, err := ReadCheckpoint(noNLPath)
	if err != nil {
		t.Fatalf("newline-less checkpoint should load: %v", err)
	}
	if len(ck3.Records) != len(ck.Records)-1 {
		t.Errorf("newline-less checkpoint has %d records, want %d (tail not durable)",
			len(ck3.Records), len(ck.Records)-1)
	}
	var dropped RunRecord
	for idx, rec := range ck.Records {
		if _, ok := ck3.Records[idx]; !ok {
			dropped = rec
		}
	}
	aw2, err := AppendCheckpoint(noNLPath, ck3)
	if err != nil {
		t.Fatal(err)
	}
	if err := aw2.Append(dropped); err != nil {
		t.Fatal(err)
	}
	if err := aw2.Close(); err != nil {
		t.Fatal(err)
	}
	ck4, err := ReadCheckpoint(noNLPath)
	if err != nil {
		t.Fatalf("checkpoint unreadable after torn-tail append: %v", err)
	}
	if len(ck4.Records) != len(ck3.Records)+1 {
		t.Errorf("after append: %d records, want %d", len(ck4.Records), len(ck3.Records)+1)
	}

	// Corruption before the tail is detected, skipped and counted — not a
	// fatal load error (that would strand every good record in the file)
	// and not silent acceptance (the skipped scenario is re-run on resume).
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) > 3 {
		// An unparseable line: the classic glued torn write.
		bad := append([]string(nil), lines...)
		bad[2] = "garbage"
		badBytes := []byte(strings.Join(bad, "\n") + "\n")
		badPath := filepath.Join(dir, "bad.jsonl")
		if err := os.WriteFile(badPath, badBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		ck5, err := ReadCheckpoint(badPath)
		if err != nil {
			t.Fatalf("mid-file corruption should skip, not fail: %v", err)
		}
		if ck5.Corrupted != 1 {
			t.Errorf("Corrupted = %d, want 1", ck5.Corrupted)
		}
		if len(ck5.Records) != len(ck.Records)-1 {
			t.Errorf("corrupt checkpoint kept %d records, want %d (one skipped)",
				len(ck5.Records), len(ck.Records)-1)
		}
		// validBytes must span the whole intact file (the damage is durable;
		// truncating it away would discard the good records after it), so a
		// resume append lands after the final record, not over line 3.
		if ck5.validBytes != int64(len(badBytes)) {
			t.Errorf("validBytes = %d, want %d", ck5.validBytes, len(badBytes))
		}

		// A flipped byte that still parses as JSON — wrong value, intact
		// syntax — is exactly what the per-record CRC exists to catch.
		// Flip a digit of the record's cell field: 0x02 keeps most digits
		// digits ('0'→'2', '1'→'3'), so the line stays parseable with a
		// wrong value.
		flip := append([]string(nil), lines...)
		flipped := []byte(flip[2])
		at := strings.Index(flip[2], `"cell":`) + len(`"cell":`)
		flipped[at] ^= 0x02
		flip[2] = string(flipped)
		flipPath := filepath.Join(dir, "flip.jsonl")
		if err := os.WriteFile(flipPath, []byte(strings.Join(flip, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		ck6, err := ReadCheckpoint(flipPath)
		if err != nil {
			t.Fatalf("bit-rot checkpoint should load: %v", err)
		}
		if ck6.Corrupted != 1 {
			t.Errorf("bit rot: Corrupted = %d, want 1", ck6.Corrupted)
		}
		if len(ck6.Records) != len(ck.Records)-1 {
			t.Errorf("bit rot kept %d records, want %d", len(ck6.Records), len(ck.Records)-1)
		}
	}

	// Legacy record lines without a crc field are accepted unverified —
	// checkpoints written before the CRC era must keep resuming.
	legacy := append([]string(nil), lines...)
	for i := 1; i < len(legacy); i++ {
		var rec RunRecord
		if err := json.Unmarshal([]byte(legacy[i]), &rec); err != nil {
			t.Fatal(err)
		}
		stripped, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		legacy[i] = string(stripped)
	}
	legacyPath := filepath.Join(dir, "legacy.jsonl")
	if err := os.WriteFile(legacyPath, []byte(strings.Join(legacy, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ck7, err := ReadCheckpoint(legacyPath)
	if err != nil {
		t.Fatalf("legacy (pre-CRC) checkpoint should load: %v", err)
	}
	if len(ck7.Records) != len(ck.Records) || ck7.Corrupted != 0 {
		t.Errorf("legacy checkpoint: %d records (want %d), Corrupted %d (want 0)",
			len(ck7.Records), len(ck.Records), ck7.Corrupted)
	}

	// ReadShardSet cross-validation: duplicate coverage is rejected.
	if _, _, err := ReadShardSet([]string{path, path}); err == nil {
		t.Error("duplicate shard files should fail")
	}
	if _, _, err := ReadShardSet(nil); err == nil {
		t.Error("empty shard set should fail")
	}
}

// TestShardFilesMergeEndToEnd is the CLI -merge path at the library level:
// two checkpoint files written by shard runs merge into the unsharded
// result byte-for-byte.
func TestShardFilesMergeEndToEnd(t *testing.T) {
	suite := testSuite()
	dir := t.TempDir()
	paths := []string{filepath.Join(dir, "s0.jsonl"), filepath.Join(dir, "s1.jsonl")}
	for i, path := range paths {
		shard := Shard{Index: i, Count: 2}
		w, err := CreateCheckpoint(path, suite, shard)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(context.Background(), suite, Config{
			Workers:  4,
			Shard:    shard,
			Cache:    NewStrategyCache(),
			OnRecord: w.Append,
		}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	mergedSuite, records, err := ReadShardSet(paths)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeRecords(mergedSuite, records)
	if err != nil {
		t.Fatal(err)
	}
	whole, _ := collectRecords(t, suite, Shard{}, nil)
	a, _ := json.Marshal(merged)
	b, _ := json.Marshal(whole)
	if string(a) != string(b) {
		t.Errorf("merged shard files differ from unsharded run:\n%s\n%s", a, b)
	}
}
