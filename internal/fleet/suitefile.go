package fleet

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
)

// SuiteFileVersion is the current JSON suite-definition schema version.
// Readers reject files with a different version so that schema changes
// surface as clear errors instead of silently misread grids.
const SuiteFileVersion = 1

// suiteFile is the on-disk envelope: a version stamp around the Suite
// schema. The Suite fields are promoted, so a file reads naturally:
//
//	{
//	  "version": 1,
//	  "name": "my-grid",
//	  "seed": 1,
//	  "attackRates": [0.05, 0.1],
//	  "policies": ["TOLERANCE", "NO-RECOVERY"]
//	}
type suiteFile struct {
	Version int `json:"version"`
	Suite
}

// ParseSuite decodes a versioned JSON suite definition. Decoding is strict
// (unknown fields are errors, catching typos like "atackRates"), the
// version must match SuiteFileVersion, and the suite must validate.
func ParseSuite(data []byte) (Suite, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sf suiteFile
	if err := dec.Decode(&sf); err != nil {
		return Suite{}, fmt.Errorf("%w: parse suite: %v", ErrBadSuite, err)
	}
	if sf.Version != SuiteFileVersion {
		return Suite{}, fmt.Errorf("%w: suite file version %d, want %d",
			ErrBadSuite, sf.Version, SuiteFileVersion)
	}
	if sf.Name == "" {
		return Suite{}, fmt.Errorf("%w: suite file has no name", ErrBadSuite)
	}
	if err := sf.Suite.Validate(); err != nil {
		return Suite{}, err
	}
	return sf.Suite, nil
}

// LoadSuiteFile reads a JSON suite definition from disk.
func LoadSuiteFile(path string) (Suite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Suite{}, fmt.Errorf("fleet: load suite: %w", err)
	}
	s, err := ParseSuite(data)
	if err != nil {
		return Suite{}, fmt.Errorf("%w (%s)", err, path)
	}
	return s, nil
}

// DumpSuite serializes the suite as an indented versioned JSON document
// with every default made explicit, so a dumped built-in grid is a
// complete, editable starting point for user-authored suites.
func DumpSuite(s Suite) ([]byte, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(suiteFile{Version: SuiteFileVersion, Suite: s}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Fingerprint canonicalizes the defaulted suite into a short hash. Shard
// result files and checkpoints carry it so that merge and resume refuse to
// combine records produced by different grids (or by the same grid with
// different overrides).
func (s Suite) Fingerprint() string {
	s = s.withDefaults()
	// Learned.Workers is a throughput knob with bit-identical output for
	// any value, not part of the grid's identity: canonicalize it away so
	// checkpoints written at one training worker count resume and merge
	// with runs at another. A learned block that only carried Workers
	// collapses to the nil block it is equivalent to.
	if lc := s.Learned; lc != nil && lc.Workers != 0 {
		canon := *lc
		canon.Workers = 0
		if canon == (LearnedConfig{}) {
			s.Learned = nil
		} else {
			s.Learned = &canon
		}
	}
	data, err := json.Marshal(s)
	if err != nil {
		// Suite is a plain data struct; Marshal cannot fail on it.
		panic(fmt.Sprintf("fleet: fingerprint suite: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}
