package fleet

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
)

// SuiteFileVersion is the newest JSON suite-definition schema version this
// build writes and reads. Version 2 added the "backends" axis; version 1
// files (implicitly emulation-backend) parse unchanged. Readers reject any
// other version — and version-1 files that smuggle in version-2 fields —
// so schema changes surface as clear errors instead of silently misread
// grids.
const SuiteFileVersion = 2

// suiteFileMinVersion is the oldest schema version still accepted.
const suiteFileMinVersion = 1

// suiteFile is the on-disk envelope: a version stamp around the Suite
// schema. The Suite fields are promoted, so a file reads naturally:
//
//	{
//	  "version": 1,
//	  "name": "my-grid",
//	  "seed": 1,
//	  "attackRates": [0.05, 0.1],
//	  "policies": ["TOLERANCE", "NO-RECOVERY"]
//	}
type suiteFile struct {
	Version int `json:"version"`
	Suite
}

// minVersionFor returns the oldest schema version able to express the
// suite: 2 once the backends axis is used, 1 otherwise. DumpSuite stamps
// it so pre-backend suites keep emitting byte-identical version-1 files.
func minVersionFor(s Suite) int {
	if len(s.Backends) > 0 {
		return 2
	}
	return 1
}

// ParseSuite decodes a versioned JSON suite definition. Decoding is strict
// (unknown fields are errors, catching typos like "atackRates"), the
// version must be a supported schema version that covers every field the
// file uses, and the suite must validate.
func ParseSuite(data []byte) (Suite, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sf suiteFile
	if err := dec.Decode(&sf); err != nil {
		return Suite{}, fmt.Errorf("%w: parse suite: %v", ErrBadSuite, err)
	}
	if sf.Version < suiteFileMinVersion || sf.Version > SuiteFileVersion {
		return Suite{}, fmt.Errorf("%w: suite file version %d, want %d..%d",
			ErrBadSuite, sf.Version, suiteFileMinVersion, SuiteFileVersion)
	}
	if min := minVersionFor(sf.Suite); sf.Version < min {
		return Suite{}, fmt.Errorf("%w: suite file version %d cannot carry \"backends\" (requires version %d)",
			ErrBadSuite, sf.Version, min)
	}
	if sf.Name == "" {
		return Suite{}, fmt.Errorf("%w: suite file has no name", ErrBadSuite)
	}
	if err := sf.Suite.Validate(); err != nil {
		return Suite{}, err
	}
	return sf.Suite, nil
}

// LoadSuiteFile reads a JSON suite definition from disk.
func LoadSuiteFile(path string) (Suite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Suite{}, fmt.Errorf("fleet: load suite: %w", err)
	}
	s, err := ParseSuite(data)
	if err != nil {
		return Suite{}, fmt.Errorf("%w (%s)", err, path)
	}
	return s, nil
}

// DumpSuite serializes the suite as an indented versioned JSON document
// with every default made explicit, so a dumped built-in grid is a
// complete, editable starting point for user-authored suites. The stamped
// version is the oldest schema able to express the suite (minVersionFor),
// so dumps of pre-backend suites stay byte-identical across the version-2
// schema bump.
func DumpSuite(s Suite) ([]byte, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(suiteFile{Version: minVersionFor(s), Suite: s}, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Fingerprint canonicalizes the defaulted suite into a short hash. Shard
// result files and checkpoints carry it so that merge and resume refuse to
// combine records produced by different grids (or by the same grid with
// different overrides).
func (s Suite) Fingerprint() string {
	s = s.withDefaults()
	// Learned.Workers is a throughput knob with bit-identical output for
	// any value, not part of the grid's identity: canonicalize it away so
	// checkpoints written at one training worker count resume and merge
	// with runs at another. A learned block that only carried Workers
	// collapses to the nil block it is equivalent to.
	if lc := s.Learned; lc != nil && lc.Workers != 0 {
		canon := *lc
		canon.Workers = 0
		if canon == (LearnedConfig{}) {
			s.Learned = nil
		} else {
			s.Learned = &canon
		}
	}
	// A backends axis that only spells out the default is the same grid as
	// no axis at all (Cells normalizes "emulation" to the canonical empty
	// Backend), so it canonicalizes away: records from before the axis
	// existed keep resuming and merging with explicitly-emulation suites.
	if len(s.Backends) == 1 && s.Backends[0] == BackendEmulation {
		s.Backends = nil
	}
	data, err := json.Marshal(s)
	if err != nil {
		// Suite is a plain data struct; Marshal cannot fail on it.
		panic(fmt.Sprintf("fleet: fingerprint suite: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}
