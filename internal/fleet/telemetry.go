package fleet

import (
	"tolerance/internal/telemetry"
)

// Fleet metric names. Counters are recorded per worker shard from the
// worker pool (scenario starts, batch claims, busy time) or from the
// single aggregator goroutine (folds, replays); histograms observe each
// executed scenario's wall-clock and step count.
const (
	// MetricScenariosStarted counts scenario executions begun by workers.
	MetricScenariosStarted = "fleet.scenarios_started"
	// MetricScenariosFolded counts scenarios folded by the aggregator — the
	// reconciliation anchor: at the end of a successful run it equals the
	// scheduled total.
	MetricScenariosFolded = "fleet.scenarios_folded"
	// MetricScenariosReplayed counts folds served from checkpoint records
	// instead of fresh execution (resume runs).
	MetricScenariosReplayed = "fleet.scenarios_replayed"
	// MetricBatchesClaimed counts work batches claimed by workers.
	MetricBatchesClaimed = "fleet.batches_claimed"
	// MetricFoldMerges counts per-cell partial merges performed by the
	// aggregator — one per (batch, cell) run of outcomes. The count is a
	// pure function of the schedule (fixed foldSpan-wide batches), so it is
	// identical across worker counts; a drift between runs of the same
	// suite and shard indicates a scheduling bug.
	MetricFoldMerges = "fleet.fold_merges"
	// MetricWorkerBusyNS accumulates nanoseconds workers spent executing
	// scenarios; busy/(workers×wall) is the pool utilization.
	MetricWorkerBusyNS = "fleet.worker_busy_ns"
	// MetricCheckpointSyncs counts checkpoint fsync batches.
	MetricCheckpointSyncs = "fleet.checkpoint_syncs"
	// MetricScenarioDurationNS is the per-scenario wall-clock histogram.
	MetricScenarioDurationNS = "fleet.scenario_duration_ns"
	// MetricScenarioSteps is the per-scenario simulated-step histogram.
	MetricScenarioSteps = "fleet.scenario_steps"
	// MetricScenariosTotal (gauge) is the scheduled scenario count.
	MetricScenariosTotal = "fleet.scenarios_total"
	// MetricWorkers (gauge) is the worker-pool size of the run.
	MetricWorkers = "fleet.workers"
)

// Coordinator metric names (Coordinate; see docs/OPERATIONS.md for how to
// read them during an incident). All are recorded from the coordinator's
// single event-loop goroutine. The fleet.scenarios_folded/replayed
// counters above are shared: the coordinator's ordered ingest increments
// them exactly as a local run's aggregator would, so the post-run summary
// and the manifest reconcile the same way on both paths.
const (
	// MetricCoordWorkers (gauge) is the number of currently connected
	// workers.
	MetricCoordWorkers = "coord.workers_connected"
	// MetricCoordLeasesGranted counts leases handed to workers, including
	// re-leases of expired ranges.
	MetricCoordLeasesGranted = "coord.leases_granted"
	// MetricCoordLeasesExpired counts leases revoked after missed
	// heartbeats — the fault-tolerance path firing.
	MetricCoordLeasesExpired = "coord.leases_expired"
	// MetricCoordLeasesOutstanding (gauge) is the number of live leases.
	MetricCoordLeasesOutstanding = "coord.leases_outstanding"
	// MetricCoordRecordsReceived counts fresh records ingested off the
	// wire (first write for their index).
	MetricCoordRecordsReceived = "coord.records_received"
	// MetricCoordRecordsReplayed counts duplicate records dropped by the
	// first-write-wins dedupe (retransmits, re-leased overlap).
	MetricCoordRecordsReplayed = "coord.records_replayed"
	// MetricCoordRecordsRejected counts undecodable or out-of-suite
	// messages dropped by validation.
	MetricCoordRecordsRejected = "coord.records_rejected"
	// MetricCoordHeartbeats counts worker keep-alives.
	MetricCoordHeartbeats = "coord.heartbeats"
	// MetricCoordDegraded (gauge) is 1 while the coordinator has unleased
	// work but zero reachable workers — every worker partitioned away,
	// crashed, or never arrived. It parks and waits instead of spinning;
	// the gauge (and a single log line per episode) is the operator's cue.
	MetricCoordDegraded = "coord.degraded"
	// MetricCoordScenariosPending (gauge) is the number of scenario
	// indices still lacking a record.
	MetricCoordScenariosPending = "coord.scenarios_pending"
	// MetricFramesQuarantined counts malformed or oversized wire frames the
	// TCP endpoint discarded while keeping the connection alive (see
	// transport.TCPEndpoint.QuarantinedFrames). Nonzero under chaos is
	// expected; nonzero without chaos means a misbehaving peer.
	MetricFramesQuarantined = "transport.frames_quarantined"
)

// stepBuckets covers the suite step-count range (smoke suites run tens of
// steps, the paper grid a thousand, stress configurations more).
var stepBuckets = []int64{50, 100, 200, 500, 1000, 2000, 5000, 10000}

// fleetMetrics bundles the engine's per-run metric handles. A nil
// *fleetMetrics is the disabled state: every record site nil-checks it, so
// an uninstrumented run touches no telemetry code beyond that check.
type fleetMetrics struct {
	started    *telemetry.Counter
	folded     *telemetry.Counter
	replayed   *telemetry.Counter
	batches    *telemetry.Counter
	foldMerges *telemetry.Counter
	busyNS     *telemetry.Counter
	durNS      *telemetry.Histogram
	steps      *telemetry.Histogram
}

// newFleetMetrics registers the engine metrics, returning nil for a nil
// collector (telemetry disabled).
func newFleetMetrics(col *telemetry.Collector) *fleetMetrics {
	if col == nil {
		return nil
	}
	return &fleetMetrics{
		started:    col.Counter(MetricScenariosStarted),
		folded:     col.Counter(MetricScenariosFolded),
		replayed:   col.Counter(MetricScenariosReplayed),
		batches:    col.Counter(MetricBatchesClaimed),
		foldMerges: col.Counter(MetricFoldMerges),
		busyNS:     col.Counter(MetricWorkerBusyNS),
		durNS:      col.Histogram(MetricScenarioDurationNS, telemetry.DurationBuckets()),
		steps:      col.Histogram(MetricScenarioSteps, stepBuckets),
	}
}
