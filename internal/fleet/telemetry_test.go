package fleet

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"tolerance/internal/baselines"
	"tolerance/internal/emulation"
	"tolerance/internal/nodemodel"
	"tolerance/internal/telemetry"
)

// TestTelemetryOutputInvariant is the package-wide telemetry contract:
// attaching a collector (and instrumenting the cache) must not change a
// single byte of the serialized Result.
func TestTelemetryOutputInvariant(t *testing.T) {
	suite := testSuite()
	plain, err := Run(context.Background(), suite, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.New()
	cache := NewStrategyCache()
	cache.Instrument(col)
	instrumented, err := Run(context.Background(), suite, Config{
		Workers: 4, Cache: cache, Telemetry: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	bPlain, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	bInstr, err := json.Marshal(instrumented)
	if err != nil {
		t.Fatal(err)
	}
	if string(bPlain) != string(bInstr) {
		t.Errorf("telemetry changed the result:\nplain: %s\ninstr: %s", bPlain, bInstr)
	}
}

// TestTelemetrySnapshotReconciles checks the manifest reconciliation
// contract: after a run, the folded counter equals the scheduled total, the
// started counter covers every fresh execution, the per-scenario histograms
// saw every run, and the coarse phases were recorded.
func TestTelemetrySnapshotReconciles(t *testing.T) {
	suite := testSuite()
	col := telemetry.New()
	cache := NewStrategyCache()
	cache.Instrument(col)
	res, err := Run(context.Background(), suite, Config{
		Workers: 4, Cache: cache, Telemetry: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := col.Snapshot()
	total := int64(res.Scenarios)
	if got := s.Counter(MetricScenariosFolded); got != total {
		t.Errorf("%s = %d, want %d", MetricScenariosFolded, got, total)
	}
	if got := s.Counter(MetricScenariosStarted); got != total {
		t.Errorf("%s = %d, want %d (no replays)", MetricScenariosStarted, got, total)
	}
	if got := s.Counter(MetricScenariosReplayed); got != 0 {
		t.Errorf("%s = %d, want 0", MetricScenariosReplayed, got)
	}
	if got := s.Counter(MetricBatchesClaimed); got < 1 {
		t.Errorf("%s = %d, want >= 1", MetricBatchesClaimed, got)
	}
	if got := s.Counter(MetricWorkerBusyNS); got <= 0 {
		t.Errorf("%s = %d, want > 0", MetricWorkerBusyNS, got)
	}
	for _, name := range []string{MetricScenarioDurationNS, MetricScenarioSteps} {
		if got := s.Histograms[name].Count; got != total {
			t.Errorf("histogram %s count = %d, want %d", name, got, total)
		}
	}
	if got := s.Histograms[MetricScenarioSteps].Mean(); got != float64(suite.Steps) {
		t.Errorf("mean steps = %v, want %v", got, suite.Steps)
	}
	if got := s.Gauges[MetricScenariosTotal]; got != float64(total) {
		t.Errorf("gauge %s = %v, want %v", MetricScenariosTotal, got, total)
	}
	phases := map[string]bool{}
	for _, p := range s.Phases {
		phases[p.Name] = true
	}
	for _, want := range []string{"fleet.fit", "fleet.run"} {
		if !phases[want] {
			t.Errorf("phase %q missing from snapshot (have %v)", want, s.Phases)
		}
	}
	// The instrumented cache joins the same snapshot.
	if got := s.Counter("cache.policy_builds"); got < 1 {
		t.Errorf("cache.policy_builds = %d, want >= 1", got)
	}
	if got := s.Counter("cache.fit_solves"); got != 1 {
		t.Errorf("cache.fit_solves = %d, want 1 (one suite-wide fit)", got)
	}
}

// TestTelemetryCountsReplays: scenarios folded from checkpoint records
// count as folded and replayed, never as started — a resumed run's manifest
// still reconciles (folded == total).
func TestTelemetryCountsReplays(t *testing.T) {
	suite := testSuite()
	var records []RunRecord
	if _, err := Run(context.Background(), suite, Config{
		Workers: 2,
		OnRecord: func(rec RunRecord) error {
			records = append(records, rec)
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	completed := make(map[int]RunRecord)
	for _, rec := range records[:len(records)/2] {
		completed[rec.Index] = rec
	}

	col := telemetry.New()
	res, err := Run(context.Background(), suite, Config{
		Workers: 2, Completed: completed, Telemetry: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := col.Snapshot()
	total := int64(res.Scenarios)
	replayed := int64(len(completed))
	if got := s.Counter(MetricScenariosFolded); got != total {
		t.Errorf("folded = %d, want %d", got, total)
	}
	if got := s.Counter(MetricScenariosReplayed); got != replayed {
		t.Errorf("replayed = %d, want %d", got, replayed)
	}
	if got := s.Counter(MetricScenariosStarted); got != total-replayed {
		t.Errorf("started = %d, want %d", got, total-replayed)
	}
}

// TestCheckpointSyncsCounted: an instrumented checkpoint writer counts its
// fsyncs (one per checkpointSyncEvery records, plus the closing sync).
func TestCheckpointSyncsCounted(t *testing.T) {
	col := telemetry.New()
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	w, err := CreateCheckpoint(path, testSuite(), Shard{})
	if err != nil {
		t.Fatal(err)
	}
	w.Instrument(col)
	n := checkpointSyncEvery*2 + 3
	for i := 0; i < n; i++ {
		if err := w.Append(RunRecord{Index: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := col.Snapshot().Counter(MetricCheckpointSyncs); got != 3 {
		t.Errorf("%s = %d, want 3 (two periodic + one closing)", MetricCheckpointSyncs, got)
	}
}

// TestTelemetryHotPathZeroAllocs pins the instrumented worker loop at zero
// allocations per scenario: the exact per-scenario sequence the engine runs
// with telemetry attached — start counter, timed RunInto with the step-count
// hook installed, busy-time add, duration observation, fold counter — on a
// warm runner.
func TestTelemetryHotPathZeroAllocs(t *testing.T) {
	col := telemetry.New()
	tm := newFleetMetrics(col)
	fits, err := emulation.NewFitSet(300, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := emulation.Scenario{
		N1:      6,
		DeltaR:  15,
		Steps:   200,
		Seed:    11,
		Params:  nodemodel.DefaultParams(),
		Policy:  baselines.Periodic{},
		Fits:    fits,
		FitSeed: 5,
	}
	const wid = 3
	r := emulation.NewRunner()
	r.OnRun(func(steps int) { tm.steps.Observe(wid, int64(steps)) })
	if _, err := r.RunInto(s); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		tm.batches.Inc(wid)
		tm.started.Inc(wid)
		t0 := time.Now()
		if _, err := r.RunInto(s); err != nil {
			t.Fatal(err)
		}
		d := int64(time.Since(t0))
		tm.busyNS.Add(wid, d)
		tm.durNS.Observe(wid, d)
		tm.folded.Inc(0)
	})
	if allocs != 0 {
		t.Errorf("instrumented steady-state scenario allocates %v times, want 0", allocs)
	}
}

// TestCacheWaitCounterRegistered drives the deterministic single-flight
// path: a hit on a completed entry records a hit (and a build-duration
// observation for the miss) but never a wait — waits only happen when two
// goroutines race for the same in-flight entry.
func TestCacheWaitCounterRegistered(t *testing.T) {
	col := telemetry.New()
	cache := NewStrategyCache()
	cache.Instrument(col)
	if _, err := cache.Fits(200, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Fits(200, 3); err != nil { // completed-entry hit: no wait
		t.Fatal(err)
	}
	s := col.Snapshot()
	if got := s.Counter("cache.singleflight_waits"); got != 0 {
		t.Errorf("singleflight_waits = %d, want 0 for sequential hits", got)
	}
	if got := s.Counter("cache.fit_hits"); got != 1 {
		t.Errorf("fit_hits = %d, want 1", got)
	}
	if got := s.Histograms["cache.fit_build_ns"].Count; got != 1 {
		t.Errorf("fit_build_ns count = %d, want 1", got)
	}
}
