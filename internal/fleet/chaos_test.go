package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tolerance/internal/chaos"
	"tolerance/internal/fleet/proto"
	"tolerance/internal/telemetry"
	"tolerance/internal/transport"
)

// TestCoordinateUnderChaosIsByteIdentical is the PR's acceptance bar: a
// coordinator and two workers whose endpoints all run through a seeded
// drop/duplicate/delay/reorder/partition plan must still produce a result
// byte-identical to a fault-free single-machine run. The protocol absorbs
// every injected fault — resend-until-ack, first-write-wins dedupe, lease
// expiry — so chaos costs time, never correctness.
func TestCoordinateUnderChaosIsByteIdentical(t *testing.T) {
	suite := testSuite()
	want := referenceRun(t, suite)

	plan, err := chaos.NewPlanByName("lossy-partition", 7)
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.New()
	plan.Instrument(col)

	coordEP := listenLoopback(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	// Workers get their own context as a drain backstop: chaos can drop the
	// drain notice itself, and with the coordinator gone nobody would ever
	// resend it.
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()

	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for i := range workerErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = ConnectWorker(wctx, WorkerConfig{
				Endpoint:    plan.WrapEndpoint(listenLoopback(t)),
				Coordinator: coordEP.Addr(),
				Workers:     2,
				DialTimeout: 60 * time.Second,
			})
		}(i)
	}

	res, err := Coordinate(ctx, suite, CoordinatorConfig{
		Endpoint:       plan.WrapEndpoint(coordEP),
		LeaseScenarios: 3,
		Heartbeat:      coordTestHeartbeat,
		LeaseTimeout:   coordTestTimeout,
		Telemetry:      col,
	})
	if err != nil {
		t.Fatalf("Coordinate under chaos: %v", err)
	}
	wcancel()
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil && !errors.Is(werr, ErrDrained) && !errors.Is(werr, context.Canceled) {
			t.Errorf("worker %d: %v", i, werr)
		}
	}

	got, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("chaos run differs from fault-free single-machine run:\n%s\n%s", got, want)
	}

	// The chaos plane must have actually fired, and its frame counters must
	// obey the reconciliation identity even after a full concurrent run.
	s := col.Snapshot()
	frames := s.Counter(chaos.MetricFrames)
	if frames == 0 {
		t.Fatal("chaos.frames = 0; the plan never saw the wire")
	}
	terminal := s.Counter(chaos.MetricFramesPassed) + s.Counter(chaos.MetricFramesDropped) +
		s.Counter(chaos.MetricFramesDelayed) + s.Counter(chaos.MetricFramesReorder) +
		s.Counter(chaos.MetricFramesPart) + s.Counter(chaos.MetricFramesStalled) +
		s.Counter(chaos.MetricResets)
	if frames != terminal {
		t.Errorf("reconciliation identity broken: chaos.frames = %d, terminal buckets sum to %d", frames, terminal)
	}
	if faults := frames - s.Counter(chaos.MetricFramesPassed); faults == 0 {
		t.Error("chaos injected no faults at all; the profile is not exercising the protocol")
	}
	if g := s.Gauges[chaos.MetricPlanDigest]; g != float64(plan.Digest32()) {
		t.Errorf("chaos.plan_digest gauge = %v, want %v", g, float64(plan.Digest32()))
	}
}

// recordsMuteEndpoint silences a worker's outbound frames — heartbeats,
// records, everything — for one burst that starts at its trigger-th
// Records frame. Keying the burst to a Records frame (not wall clock)
// guarantees the silence lands while a lease is outstanding: Records only
// flow under a lease, and the triggering frame itself is swallowed, so the
// ack cannot arrive and close the lease before the storm hits. The receive
// side stays open — the worker keeps hearing the coordinator while the
// coordinator hears nothing back.
type recordsMuteEndpoint struct {
	transport.Endpoint
	trigger int64         // mute begins at this Records frame (1-based)
	mute    time.Duration // burst length; must outlast the lease timeout

	seen    atomic.Int64
	until   atomic.Int64 // unix-nano end of the burst (0 = not tripped yet)
	dropped atomic.Int64
}

func (e *recordsMuteEndpoint) Send(to string, payload []byte) error {
	if until := e.until.Load(); until != 0 && time.Now().UnixNano() < until {
		e.dropped.Add(1)
		return nil
	}
	if k, _, err := proto.Decode(payload); err == nil && k == proto.KindRecords && e.until.Load() == 0 {
		if e.seen.Add(1) == e.trigger {
			e.until.Store(time.Now().Add(e.mute).UnixNano())
			e.dropped.Add(1)
			return nil // the triggering frame is the burst's first casualty
		}
	}
	return e.Endpoint.Send(to, payload)
}

func (e *recordsMuteEndpoint) tripped() bool { return e.until.Load() != 0 }

// TestLeaseExpiryStormReconciles soaks the re-lease machinery: each of
// three workers goes dark — heartbeats and records both — for a burst
// longer than the lease timeout, triggered mid-lease, so their leases
// expire and the spans get re-leased while the muted workers keep
// computing and later reship. The coordinator must dedupe every replay,
// ingest each scenario exactly once, and still match the fault-free run
// byte for byte.
func TestLeaseExpiryStormReconciles(t *testing.T) {
	suite := testSuite()
	want := referenceRun(t, suite)
	total := int64(suite.NumScenarios())

	coordEP := listenLoopback(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	col := telemetry.New()

	var wg sync.WaitGroup
	const numWorkers = 3
	mutes := make([]*recordsMuteEndpoint, numWorkers)
	workerErrs := make([]error, numWorkers)
	for i := range workerErrs {
		mutes[i] = &recordsMuteEndpoint{
			Endpoint: listenLoopback(t),
			trigger:  int64(i + 1), // staggered: the bursts roll, not sync
			mute:     500 * time.Millisecond,
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = ConnectWorker(wctx, WorkerConfig{
				Endpoint:         mutes[i],
				Coordinator:      coordEP.Addr(),
				Workers:          1,
				DialTimeout:      60 * time.Second,
				testBatchRecords: 1, // ship per record: more wire traffic into the storm
			})
		}(i)
	}

	res, err := Coordinate(ctx, suite, CoordinatorConfig{
		Endpoint:       coordEP,
		LeaseScenarios: 2,
		Heartbeat:      coordTestHeartbeat,
		LeaseTimeout:   coordTestTimeout,
		Telemetry:      col,
	})
	if err != nil {
		t.Fatalf("Coordinate through the storm: %v", err)
	}
	wcancel()
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil && !errors.Is(werr, ErrDrained) && !errors.Is(werr, context.Canceled) {
			t.Errorf("worker %d: %v", i, werr)
		}
	}

	got, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("storm result differs from fault-free single-machine run:\n%s\n%s", got, want)
	}

	var muted, trips int64
	for _, m := range mutes {
		muted += m.dropped.Load()
		if m.tripped() {
			trips++
		}
	}
	if trips == 0 {
		t.Fatal("no worker's burst ever tripped; the storm exercised nothing")
	}
	s := col.Snapshot()
	if muted == 0 {
		t.Fatal("the storm muted no frames; the test exercised nothing")
	}
	// Every tripped burst silenced a worker holding a lease for longer than
	// the lease timeout, so each one must show up as an expiry.
	if s.Counter(MetricCoordLeasesExpired) < trips {
		t.Errorf("coord.leases_expired = %d, want >= %d (one per tripped silence burst)",
			s.Counter(MetricCoordLeasesExpired), trips)
	}
	// Exactly one fresh ingest per scenario, however many replays the
	// expiry/reship churn produced on top.
	if s.Counter(MetricCoordRecordsReceived) != total {
		t.Errorf("coord.records_received = %d, want %d", s.Counter(MetricCoordRecordsReceived), total)
	}
	if s.Counter(MetricScenariosFolded) != total {
		t.Errorf("fleet.scenarios_folded = %d, want %d", s.Counter(MetricScenariosFolded), total)
	}
}

// TestCoordinatorDegradedModeRecovers checks graceful degradation: a
// coordinator whose every worker is gone (here: none ever arrived) must
// park, raise the coord.degraded gauge, and resume transparently — gauge
// back to zero, result intact — the moment a worker appears.
func TestCoordinatorDegradedModeRecovers(t *testing.T) {
	suite := testSuite()
	want := referenceRun(t, suite)

	coordEP := listenLoopback(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	col := telemetry.New()

	type coordResult struct {
		res *Result
		err error
	}
	coordDone := make(chan coordResult, 1)
	go func() {
		res, err := Coordinate(ctx, suite, CoordinatorConfig{
			Endpoint:       coordEP,
			LeaseScenarios: 4,
			Heartbeat:      coordTestHeartbeat,
			LeaseTimeout:   coordTestTimeout,
			Telemetry:      col,
		})
		coordDone <- coordResult{res, err}
	}()

	// With no worker in sight the degraded gauge must rise once the grace
	// period (one lease timeout) passes.
	deadline := time.Now().Add(5 * time.Second)
	for col.Snapshot().Gauges[MetricCoordDegraded] != 1 {
		if time.Now().After(deadline) {
			t.Fatal("coord.degraded never rose while the coordinator sat workerless")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A worker arrives; the coordinator must recover and finish the run.
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- ConnectWorker(ctx, WorkerConfig{
			Endpoint:    listenLoopback(t),
			Coordinator: coordEP.Addr(),
			Workers:     2,
		})
	}()

	cres := <-coordDone
	if cres.err != nil {
		t.Fatalf("Coordinate: %v", cres.err)
	}
	if werr := <-workerDone; werr != nil && !errors.Is(werr, ErrDrained) {
		t.Errorf("worker: %v", werr)
	}

	got, err := json.Marshal(cres.res)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("post-degradation result differs from single-machine run:\n%s\n%s", got, want)
	}
	if g := col.Snapshot().Gauges[MetricCoordDegraded]; g != 0 {
		t.Errorf("coord.degraded = %v after recovery, want 0", g)
	}
}
