package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"

	"tolerance/internal/emulation"
)

// testSuite is a small grid that still exercises multiple cells, policies
// and out-of-order completion under parallelism.
func testSuite() Suite {
	return Suite{
		Name:         "test",
		Seed:         7,
		SeedsPerCell: 2,
		Steps:        80,
		FitSamples:   300,
		AttackRates:  []float64{0.1},
		N1s:          []int{3, 6},
		DeltaRs:      []int{15},
		Policies: []PolicyKind{
			PolicyTolerance, PolicyNoRecovery, PolicyPeriodic, PolicyPeriodicAdaptive,
		},
	}
}

// TestRunDeterministicAcrossWorkers is the reproducibility contract: one
// worker and eight workers must produce byte-identical serialized results.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	suite := testSuite()
	r1, err := Run(context.Background(), suite, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(context.Background(), suite, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := json.Marshal(r1)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := json.Marshal(r8)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b8) {
		t.Errorf("1-worker and 8-worker results differ:\n%s\n%s", b1, b8)
	}
	if r1.Scenarios != suite.NumScenarios() {
		t.Errorf("ran %d scenarios, want %d", r1.Scenarios, suite.NumScenarios())
	}
}

// TestStrategyCacheSolvesEachProblemOnce checks the memoization contract:
// a grid whose TOLERANCE cells share model parameters and DeltaR triggers
// exactly one DP solve and one LP solve; adding a second DeltaR doubles the
// solve count but nothing else does (seeds, workloads, N1 with equal f).
func TestStrategyCacheSolvesEachProblemOnce(t *testing.T) {
	suite := Suite{
		Name:         "cache-test",
		Seed:         3,
		SeedsPerCell: 3,
		Steps:        60,
		FitSamples:   200,
		AttackRates:  []float64{0.1},
		// Two workloads and two system sizes with identical f = min((N1-1)/2, 2):
		// neither changes the control problems.
		Workloads: []emulation.BackgroundWorkload{
			{Lambda: 20, MeanServiceSteps: 4},
			{Lambda: 5, MeanServiceSteps: 10},
		},
		N1s:      []int{5, 6},
		DeltaRs:  []int{15},
		Policies: []PolicyKind{PolicyTolerance},
	}
	cache := NewStrategyCache()
	if _, err := Run(context.Background(), suite, Config{Workers: 4, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	stats := cache.Stats()
	if stats.RecoverySolves != 1 {
		t.Errorf("RecoverySolves = %d, want 1 (one distinct (params, DeltaR))", stats.RecoverySolves)
	}
	if stats.ReplicationSolves != 1 {
		t.Errorf("ReplicationSolves = %d, want 1", stats.ReplicationSolves)
	}
	// 2 workloads x 2 N1s = 4 TOLERANCE cells; the engine resolves each
	// cell's policy once per run (scenarios of a cell share the per-run
	// template), and the cache solved each control problem exactly once.
	wantRequests := int64(suite.NumCells())
	if got := stats.PolicyHits + stats.PolicyBuilds; got != wantRequests {
		t.Errorf("policy requests = %d, want %d", got, wantRequests)
	}
	if stats.PolicyBuilds != 1 {
		t.Errorf("PolicyBuilds = %d, want 1 (one distinct TOLERANCE fingerprint)", stats.PolicyBuilds)
	}

	// A second DeltaR is a second distinct control problem per solver.
	suite.DeltaRs = []int{15, 25}
	cache = NewStrategyCache()
	if _, err := Run(context.Background(), suite, Config{Workers: 4, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	stats = cache.Stats()
	if stats.RecoverySolves != 2 {
		t.Errorf("RecoverySolves = %d, want 2 (two DeltaRs)", stats.RecoverySolves)
	}
	if stats.ReplicationSolves != 2 {
		t.Errorf("ReplicationSolves = %d, want 2", stats.ReplicationSolves)
	}
	if stats.PolicyBuilds != 2 {
		t.Errorf("PolicyBuilds = %d, want 2 (two DeltaRs)", stats.PolicyBuilds)
	}
}

// TestFitCacheEquivalence is the fit-sharing contract: a run with the
// suite-level fit cache and a run that refits Ẑ inside every scenario
// produce byte-identical serialized results (both derive the same fit
// stream from the suite seed), and the cached run fits exactly once.
func TestFitCacheEquivalence(t *testing.T) {
	suite := testSuite()
	cache := NewStrategyCache()
	cached, err := Run(context.Background(), suite, Config{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := Run(context.Background(), suite, Config{Workers: 4, NoFitCache: true})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := json.Marshal(cached)
	if err != nil {
		t.Fatal(err)
	}
	bu, err := json.Marshal(uncached)
	if err != nil {
		t.Fatal(err)
	}
	if string(bc) != string(bu) {
		t.Errorf("fit-cached and fit-uncached results differ:\n%s\n%s", bc, bu)
	}
	stats := cache.Stats()
	if stats.FitSolves != 1 {
		t.Errorf("FitSolves = %d, want 1 (one fit per suite)", stats.FitSolves)
	}
	// The engine resolves the suite fit once per run, not once per
	// scenario, so a fresh cache sees exactly one request.
	if stats.FitSolves+stats.FitHits != 1 {
		t.Errorf("fit requests = %d, want 1", stats.FitSolves+stats.FitHits)
	}
}

func TestRunResultShape(t *testing.T) {
	suite := testSuite()
	res, err := Run(context.Background(), suite, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != suite.NumCells() {
		t.Fatalf("got %d cells, want %d", len(res.Cells), suite.NumCells())
	}
	for i, c := range res.Cells {
		if c.Cell.Index != i {
			t.Errorf("cell %d has index %d", i, c.Cell.Index)
		}
		if c.Runs != int64(suite.SeedsPerCell) {
			t.Errorf("cell %d folded %d runs, want %d", i, c.Runs, suite.SeedsPerCell)
		}
		a := c.Aggregate
		if a.Availability.Mean < 0 || a.Availability.Mean > 1 {
			t.Errorf("cell %d availability %v", i, a.Availability.Mean)
		}
		if a.Cost.Mean < 0 {
			t.Errorf("cell %d cost %v", i, a.Cost.Mean)
		}
	}
	// The evaluation ordering of Table 7 must survive the fleet path:
	// within one configuration, TOLERANCE is at least as available as
	// NO-RECOVERY.
	byPolicy := map[PolicyKind]float64{}
	for _, c := range res.Cells {
		if c.Cell.N1 == 6 {
			byPolicy[c.Cell.Policy] = c.Aggregate.Availability.Mean
		}
	}
	if byPolicy[PolicyTolerance] < byPolicy[PolicyNoRecovery] {
		t.Errorf("TOLERANCE availability %v below NO-RECOVERY %v",
			byPolicy[PolicyTolerance], byPolicy[PolicyNoRecovery])
	}
}

func TestRunProgressAndCancellation(t *testing.T) {
	suite := testSuite()
	var calls int
	var last int
	_, err := Run(context.Background(), suite, Config{
		Workers: 2,
		Progress: func(done, total int) {
			calls++
			last = done
			if total != suite.NumScenarios() {
				t.Errorf("progress total = %d, want %d", total, suite.NumScenarios())
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != suite.NumScenarios() || last != suite.NumScenarios() {
		t.Errorf("progress calls = %d, last = %d, want %d", calls, last, suite.NumScenarios())
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, suite, Config{Workers: 2}); err == nil {
		t.Error("cancelled context should fail")
	}
}

func TestSuiteValidation(t *testing.T) {
	bad := []Suite{
		{AttackRates: []float64{0}},
		{AttackRates: []float64{1.5}},
		{CrashProfiles: []CrashProfile{{PC1: 0, PC2: 0.1}}},
		{UpdateRates: []float64{-0.1}},
		{Etas: []float64{0.5}},
		{N1s: []int{0}},
		{N1s: []int{99}},
		{DeltaRs: []int{-1}},
		{Policies: []PolicyKind{"NOPE"}},
		{EpsilonA: 2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("suite %d should fail validation", i)
		}
	}
	if err := (Suite{}).Validate(); err != nil {
		t.Errorf("default suite invalid: %v", err)
	}
}

func TestCellExpansionOrder(t *testing.T) {
	s := Suite{
		AttackRates: []float64{0.05, 0.1},
		DeltaRs:     []int{15, 25},
		Policies:    []PolicyKind{PolicyTolerance, PolicyPeriodic},
	}
	cells := s.Cells()
	if len(cells) != 8 {
		t.Fatalf("got %d cells", len(cells))
	}
	// Policy is the innermost axis, then DeltaR, then the model axes.
	if cells[0].Policy != PolicyTolerance || cells[1].Policy != PolicyPeriodic {
		t.Error("policy not innermost")
	}
	if cells[0].DeltaR != 15 || cells[2].DeltaR != 25 {
		t.Error("deltaR not second-innermost")
	}
	if cells[0].PA != 0.05 || cells[4].PA != 0.1 {
		t.Error("attack rate not outermost")
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
	}
	// f follows the paper's rule (shared with emulation.applyDefaults).
	if f := emulation.DefaultThreshold(3); f != 1 {
		t.Errorf("f(3) = %d", f)
	}
	if f := emulation.DefaultThreshold(9); f != 2 {
		t.Errorf("f(9) = %d", f)
	}
	if f := emulation.DefaultThreshold(1); f != 1 {
		t.Errorf("f(1) = %d", f)
	}
}

func TestBuiltinSuites(t *testing.T) {
	suites := Builtin()
	if len(suites) < 3 {
		t.Fatalf("%d built-in suites", len(suites))
	}
	seen := map[string]bool{}
	for _, s := range suites {
		if seen[s.Name] {
			t.Errorf("duplicate suite %q", s.Name)
		}
		seen[s.Name] = true
		if err := s.Validate(); err != nil {
			t.Errorf("suite %q invalid: %v", s.Name, err)
		}
		if _, err := Lookup(s.Name); err != nil {
			t.Errorf("Lookup(%q): %v", s.Name, err)
		}
	}
	// The flagship suites are genuinely fleet-scale (>= 100 scenarios) and
	// use all four strategies.
	for _, name := range []string{"paper-grid", "scada-sweep"} {
		s, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if n := s.NumScenarios(); n < 100 {
			t.Errorf("suite %q has %d scenarios, want >= 100", name, n)
		}
		if len(s.withDefaults().Policies) != 4 {
			t.Errorf("suite %q does not cover the four strategies", name)
		}
	}
	if _, err := Lookup("no-such-suite"); err == nil {
		t.Error("unknown suite should fail")
	}
}

func TestScenarioSeedDecorrelated(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := scenarioSeed(1, i)
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
	if scenarioSeed(1, 0) == scenarioSeed(2, 0) {
		t.Error("suite seeds not separated")
	}
	if scenarioSeed(1, 5) != scenarioSeed(1, 5) {
		t.Error("seed not deterministic")
	}
}

// TestLearnedPolicyKind runs a learned:* policy kind end to end: the kind
// validates in a suite definition, survives the JSON round trip, executes
// under the engine with byte-identical output at any worker count, and the
// training run is memoized (one build per cell fingerprint, not per seed).
func TestLearnedPolicyKind(t *testing.T) {
	suite := Suite{
		Name:         "learned-test",
		Seed:         5,
		SeedsPerCell: 2,
		Steps:        80,
		FitSamples:   200,
		AttackRates:  []float64{0.1},
		N1s:          []int{3},
		DeltaRs:      []int{15},
		Policies:     []PolicyKind{"learned:cem", PolicyTolerance},
		Learned:      &LearnedConfig{Budget: 20, Episodes: 4, Horizon: 50},
	}
	data, err := DumpSuite(suite)
	if err != nil {
		t.Fatalf("learned kind rejected by DumpSuite: %v", err)
	}
	parsed, err := ParseSuite(data)
	if err != nil {
		t.Fatalf("learned kind rejected by ParseSuite: %v", err)
	}
	if parsed.Learned == nil || parsed.Learned.Budget != 20 {
		t.Fatalf("learned config lost in round trip: %+v", parsed.Learned)
	}

	cache := NewStrategyCache()
	r1, err := Run(context.Background(), parsed, Config{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	stats := cache.Stats()
	if stats.PolicyBuilds != 2 {
		t.Errorf("PolicyBuilds = %d, want 2 (one per cell, shared across seeds)", stats.PolicyBuilds)
	}
	r8, err := Run(context.Background(), parsed, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(r1)
	b8, _ := json.Marshal(r8)
	if string(b1) != string(b8) {
		t.Errorf("learned suite differs across worker counts:\n%s\n%s", b1, b8)
	}
	if got := string(r1.Cells[0].Cell.Policy); got != "learned:cem" {
		t.Errorf("cell 0 policy = %q", got)
	}
}

// TestUnknownPolicyKindRejected: names outside the registry fail suite
// validation with ErrBadSuite before any scenario runs.
func TestUnknownPolicyKindRejected(t *testing.T) {
	suite := testSuite()
	suite.Policies = []PolicyKind{"learned:nope"}
	if err := suite.Validate(); !errors.Is(err, ErrBadSuite) {
		t.Errorf("Validate = %v, want ErrBadSuite", err)
	}
	if _, err := Run(context.Background(), suite, Config{}); !errors.Is(err, ErrBadSuite) {
		t.Errorf("Run = %v, want ErrBadSuite", err)
	}
}

// TestRunCancellationLeavesValidCheckpoint is the cancellation contract:
// cancelling the context mid-run returns promptly with the context error,
// and a checkpoint written from the record stream holds a valid
// index-ordered prefix that a resumed run completes byte-identically from.
func TestRunCancellationLeavesValidCheckpoint(t *testing.T) {
	suite := testSuite()
	whole, err := Run(context.Background(), suite, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "cancelled.jsonl")
	w, err := CreateCheckpoint(path, suite, Shard{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	recorded := 0
	_, err = Run(ctx, suite, Config{
		Workers: 2,
		OnRecord: func(rec RunRecord) error {
			if err := w.Append(rec); err != nil {
				return err
			}
			if recorded++; recorded == 3 {
				cancel()
			}
			return nil
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: err = %v, want context.Canceled", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	ck, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatalf("cancelled checkpoint unreadable: %v", err)
	}
	if len(ck.Records) < 3 {
		t.Fatalf("checkpoint holds %d records, want >= 3", len(ck.Records))
	}
	w2, err := AppendCheckpoint(path, ck)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Run(context.Background(), suite, Config{
		Completed: ck.Records,
		OnRecord:  w2.Append,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	bw, _ := json.Marshal(whole)
	br, _ := json.Marshal(resumed)
	if string(bw) != string(br) {
		t.Errorf("resumed-after-cancel result differs from whole run")
	}
}

// TestPolicyCacheNotPoisonedByCancellation: a construction aborted by a
// cancelled context must not leave the context error memoized in a shared
// strategy cache — the slot is evicted so a later run with a live context
// rebuilds the policy.
func TestPolicyCacheNotPoisonedByCancellation(t *testing.T) {
	suite := Suite{
		Name:        "poison-test",
		Seed:        3,
		AttackRates: []float64{0.1},
		N1s:         []int{3},
		DeltaRs:     []int{15},
		Policies:    []PolicyKind{"learned:cem"},
		Learned:     &LearnedConfig{Budget: 10, Episodes: 2, Horizon: 30},
	}.withDefaults()
	cell := suite.Cells()[0]
	cache := NewStrategyCache()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cache.PolicyFor(cancelled, cell, suite); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled PolicyFor: err = %v, want context.Canceled", err)
	}
	pol, err := cache.PolicyFor(context.Background(), cell, suite)
	if err != nil {
		t.Fatalf("shared cache poisoned by cancellation: %v", err)
	}
	if pol.Name() != "learned:cem" {
		t.Errorf("rebuilt policy named %q", pol.Name())
	}
}

// TestLearnedWorkersByteIdentical is the new training-determinism contract
// at the suite level: a learned grid trained with any Learned.Workers value
// produces byte-identical output, and the worker count does not enter the
// suite fingerprint — so checkpoints and shards taken at different training
// parallelism interoperate.
func TestLearnedWorkersByteIdentical(t *testing.T) {
	suite := Suite{
		Name:         "learned-workers",
		Seed:         5,
		SeedsPerCell: 1,
		Steps:        60,
		FitSamples:   200,
		AttackRates:  []float64{0.1},
		N1s:          []int{3},
		DeltaRs:      []int{15},
		Policies:     []PolicyKind{PolicyKind("learned:cem"), PolicyKind("learned:ppo")},
		Learned:      &LearnedConfig{Budget: 30, Episodes: 4, Horizon: 40, Iterations: 2, Workers: 1},
	}
	sequential, err := Run(context.Background(), suite, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	seqJSON, err := json.Marshal(sequential)
	if err != nil {
		t.Fatal(err)
	}
	seqFP := suite.Fingerprint()
	for _, workers := range []int{2, 8} {
		suite.Learned.Workers = workers
		if got := suite.Fingerprint(); got != seqFP {
			t.Errorf("learned workers %d changed the suite fingerprint (%s != %s)", workers, got, seqFP)
		}
		parallel, err := Run(context.Background(), suite, Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		parJSON, err := json.Marshal(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if string(parJSON) != string(seqJSON) {
			t.Errorf("learned workers %d output differs from sequential training", workers)
		}
	}
}
