package fleet

import (
	"context"
	"encoding/json"
	"testing"

	"tolerance/internal/emulation"
)

// testSuite is a small grid that still exercises multiple cells, policies
// and out-of-order completion under parallelism.
func testSuite() Suite {
	return Suite{
		Name:         "test",
		Seed:         7,
		SeedsPerCell: 2,
		Steps:        80,
		FitSamples:   300,
		AttackRates:  []float64{0.1},
		N1s:          []int{3, 6},
		DeltaRs:      []int{15},
		Policies: []PolicyKind{
			PolicyTolerance, PolicyNoRecovery, PolicyPeriodic, PolicyPeriodicAdaptive,
		},
	}
}

// TestRunDeterministicAcrossWorkers is the reproducibility contract: one
// worker and eight workers must produce byte-identical serialized results.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	suite := testSuite()
	r1, err := Run(context.Background(), suite, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(context.Background(), suite, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := json.Marshal(r1)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := json.Marshal(r8)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b8) {
		t.Errorf("1-worker and 8-worker results differ:\n%s\n%s", b1, b8)
	}
	if r1.Scenarios != suite.NumScenarios() {
		t.Errorf("ran %d scenarios, want %d", r1.Scenarios, suite.NumScenarios())
	}
}

// TestStrategyCacheSolvesEachProblemOnce checks the memoization contract:
// a grid whose TOLERANCE cells share model parameters and DeltaR triggers
// exactly one DP solve and one LP solve; adding a second DeltaR doubles the
// solve count but nothing else does (seeds, workloads, N1 with equal f).
func TestStrategyCacheSolvesEachProblemOnce(t *testing.T) {
	suite := Suite{
		Name:         "cache-test",
		Seed:         3,
		SeedsPerCell: 3,
		Steps:        60,
		FitSamples:   200,
		AttackRates:  []float64{0.1},
		// Two workloads and two system sizes with identical f = min((N1-1)/2, 2):
		// neither changes the control problems.
		Workloads: []emulation.BackgroundWorkload{
			{Lambda: 20, MeanServiceSteps: 4},
			{Lambda: 5, MeanServiceSteps: 10},
		},
		N1s:      []int{5, 6},
		DeltaRs:  []int{15},
		Policies: []PolicyKind{PolicyTolerance},
	}
	cache := NewStrategyCache()
	if _, err := Run(context.Background(), suite, Config{Workers: 4, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	stats := cache.Stats()
	if stats.RecoverySolves != 1 {
		t.Errorf("RecoverySolves = %d, want 1 (one distinct (params, DeltaR))", stats.RecoverySolves)
	}
	if stats.ReplicationSolves != 1 {
		t.Errorf("ReplicationSolves = %d, want 1", stats.ReplicationSolves)
	}
	// 2 workloads x 2 N1s x 3 seeds = 12 TOLERANCE scenarios; all but the
	// first request per problem must hit the cache.
	wantRequests := int64(suite.NumScenarios())
	if got := stats.RecoveryHits + stats.RecoverySolves; got != wantRequests {
		t.Errorf("recovery requests = %d, want %d", got, wantRequests)
	}

	// A second DeltaR is a second distinct control problem per solver.
	suite.DeltaRs = []int{15, 25}
	cache = NewStrategyCache()
	if _, err := Run(context.Background(), suite, Config{Workers: 4, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	stats = cache.Stats()
	if stats.RecoverySolves != 2 {
		t.Errorf("RecoverySolves = %d, want 2 (two DeltaRs)", stats.RecoverySolves)
	}
	if stats.ReplicationSolves != 2 {
		t.Errorf("ReplicationSolves = %d, want 2", stats.ReplicationSolves)
	}
}

// TestFitCacheEquivalence is the fit-sharing contract: a run with the
// suite-level fit cache and a run that refits Ẑ inside every scenario
// produce byte-identical serialized results (both derive the same fit
// stream from the suite seed), and the cached run fits exactly once.
func TestFitCacheEquivalence(t *testing.T) {
	suite := testSuite()
	cache := NewStrategyCache()
	cached, err := Run(context.Background(), suite, Config{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := Run(context.Background(), suite, Config{Workers: 4, NoFitCache: true})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := json.Marshal(cached)
	if err != nil {
		t.Fatal(err)
	}
	bu, err := json.Marshal(uncached)
	if err != nil {
		t.Fatal(err)
	}
	if string(bc) != string(bu) {
		t.Errorf("fit-cached and fit-uncached results differ:\n%s\n%s", bc, bu)
	}
	stats := cache.Stats()
	if stats.FitSolves != 1 {
		t.Errorf("FitSolves = %d, want 1 (one fit per suite)", stats.FitSolves)
	}
	if want := int64(suite.NumScenarios()); stats.FitSolves+stats.FitHits != want {
		t.Errorf("fit requests = %d, want %d", stats.FitSolves+stats.FitHits, want)
	}
}

func TestRunResultShape(t *testing.T) {
	suite := testSuite()
	res, err := Run(context.Background(), suite, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != suite.NumCells() {
		t.Fatalf("got %d cells, want %d", len(res.Cells), suite.NumCells())
	}
	for i, c := range res.Cells {
		if c.Cell.Index != i {
			t.Errorf("cell %d has index %d", i, c.Cell.Index)
		}
		if c.Runs != int64(suite.SeedsPerCell) {
			t.Errorf("cell %d folded %d runs, want %d", i, c.Runs, suite.SeedsPerCell)
		}
		a := c.Aggregate
		if a.Availability.Mean < 0 || a.Availability.Mean > 1 {
			t.Errorf("cell %d availability %v", i, a.Availability.Mean)
		}
		if a.Cost.Mean < 0 {
			t.Errorf("cell %d cost %v", i, a.Cost.Mean)
		}
	}
	// The evaluation ordering of Table 7 must survive the fleet path:
	// within one configuration, TOLERANCE is at least as available as
	// NO-RECOVERY.
	byPolicy := map[PolicyKind]float64{}
	for _, c := range res.Cells {
		if c.Cell.N1 == 6 {
			byPolicy[c.Cell.Policy] = c.Aggregate.Availability.Mean
		}
	}
	if byPolicy[PolicyTolerance] < byPolicy[PolicyNoRecovery] {
		t.Errorf("TOLERANCE availability %v below NO-RECOVERY %v",
			byPolicy[PolicyTolerance], byPolicy[PolicyNoRecovery])
	}
}

func TestRunProgressAndCancellation(t *testing.T) {
	suite := testSuite()
	var calls int
	var last int
	_, err := Run(context.Background(), suite, Config{
		Workers: 2,
		Progress: func(done, total int) {
			calls++
			last = done
			if total != suite.NumScenarios() {
				t.Errorf("progress total = %d, want %d", total, suite.NumScenarios())
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != suite.NumScenarios() || last != suite.NumScenarios() {
		t.Errorf("progress calls = %d, last = %d, want %d", calls, last, suite.NumScenarios())
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, suite, Config{Workers: 2}); err == nil {
		t.Error("cancelled context should fail")
	}
}

func TestSuiteValidation(t *testing.T) {
	bad := []Suite{
		{AttackRates: []float64{0}},
		{AttackRates: []float64{1.5}},
		{CrashProfiles: []CrashProfile{{PC1: 0, PC2: 0.1}}},
		{UpdateRates: []float64{-0.1}},
		{Etas: []float64{0.5}},
		{N1s: []int{0}},
		{N1s: []int{99}},
		{DeltaRs: []int{-1}},
		{Policies: []PolicyKind{"NOPE"}},
		{EpsilonA: 2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("suite %d should fail validation", i)
		}
	}
	if err := (Suite{}).Validate(); err != nil {
		t.Errorf("default suite invalid: %v", err)
	}
}

func TestCellExpansionOrder(t *testing.T) {
	s := Suite{
		AttackRates: []float64{0.05, 0.1},
		DeltaRs:     []int{15, 25},
		Policies:    []PolicyKind{PolicyTolerance, PolicyPeriodic},
	}
	cells := s.Cells()
	if len(cells) != 8 {
		t.Fatalf("got %d cells", len(cells))
	}
	// Policy is the innermost axis, then DeltaR, then the model axes.
	if cells[0].Policy != PolicyTolerance || cells[1].Policy != PolicyPeriodic {
		t.Error("policy not innermost")
	}
	if cells[0].DeltaR != 15 || cells[2].DeltaR != 25 {
		t.Error("deltaR not second-innermost")
	}
	if cells[0].PA != 0.05 || cells[4].PA != 0.1 {
		t.Error("attack rate not outermost")
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
	}
	// f follows the paper's rule (shared with emulation.applyDefaults).
	if f := emulation.DefaultThreshold(3); f != 1 {
		t.Errorf("f(3) = %d", f)
	}
	if f := emulation.DefaultThreshold(9); f != 2 {
		t.Errorf("f(9) = %d", f)
	}
	if f := emulation.DefaultThreshold(1); f != 1 {
		t.Errorf("f(1) = %d", f)
	}
}

func TestBuiltinSuites(t *testing.T) {
	suites := Builtin()
	if len(suites) < 3 {
		t.Fatalf("%d built-in suites", len(suites))
	}
	seen := map[string]bool{}
	for _, s := range suites {
		if seen[s.Name] {
			t.Errorf("duplicate suite %q", s.Name)
		}
		seen[s.Name] = true
		if err := s.Validate(); err != nil {
			t.Errorf("suite %q invalid: %v", s.Name, err)
		}
		if _, err := Lookup(s.Name); err != nil {
			t.Errorf("Lookup(%q): %v", s.Name, err)
		}
	}
	// The flagship suites are genuinely fleet-scale (>= 100 scenarios) and
	// use all four strategies.
	for _, name := range []string{"paper-grid", "scada-sweep"} {
		s, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if n := s.NumScenarios(); n < 100 {
			t.Errorf("suite %q has %d scenarios, want >= 100", name, n)
		}
		if len(s.withDefaults().Policies) != 4 {
			t.Errorf("suite %q does not cover the four strategies", name)
		}
	}
	if _, err := Lookup("no-such-suite"); err == nil {
		t.Error("unknown suite should fail")
	}
}

func TestScenarioSeedDecorrelated(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := scenarioSeed(1, i)
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
	if scenarioSeed(1, 0) == scenarioSeed(2, 0) {
		t.Error("suite seeds not separated")
	}
	if scenarioSeed(1, 5) != scenarioSeed(1, 5) {
		t.Error("seed not deterministic")
	}
}
