package fleet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tolerance/internal/baselines"
	"tolerance/internal/cmdp"
	"tolerance/internal/dist"
	"tolerance/internal/emulation"
	"tolerance/internal/nodemodel"
	"tolerance/internal/recovery"
	"tolerance/internal/strategies"
	"tolerance/internal/telemetry"
)

// CacheStats counts solves (cache misses that ran a solver) and hits
// (requests served from a cached or in-flight computation). The counts are
// deterministic for a given workload: solves equals the number of distinct
// control problems, independent of worker count.
type CacheStats struct {
	// RecoverySolves counts distinct Problem 1 DP solves.
	RecoverySolves int64 `json:"recoverySolves"`
	// RecoveryHits counts recovery requests answered from cache.
	RecoveryHits int64 `json:"recoveryHits"`
	// ReplicationSolves counts distinct Problem 2 occupancy-measure LPs.
	ReplicationSolves int64 `json:"replicationSolves"`
	// ReplicationHits counts replication requests answered from cache.
	ReplicationHits int64 `json:"replicationHits"`
	// FitSolves counts distinct offline Ẑ fits (emulation.NewFitSet runs).
	FitSolves int64 `json:"fitSolves"`
	// FitHits counts fit requests answered from cache.
	FitHits int64 `json:"fitHits"`
	// PolicyBuilds counts distinct policy constructions through the
	// strategy registry (for learned strategies, training runs).
	PolicyBuilds int64 `json:"policyBuilds"`
	// PolicyHits counts policy requests answered from cache.
	PolicyHits int64 `json:"policyHits"`
}

// cacheEntry is a single-flight memoization slot: the first goroutine to
// claim the key computes, later ones wait on the sync.Once and share the
// result.
type cacheEntry[T any] struct {
	once sync.Once
	done atomic.Bool
	val  T
	err  error
}

func (e *cacheEntry[T]) compute(f func() (T, error)) (T, error) {
	e.once.Do(func() {
		e.val, e.err = f()
		e.done.Store(true)
	})
	return e.val, e.err
}

// get returns the memoized value without synchronizing on the sync.Once —
// the allocation-free fast path for keys that are known to be resolved. The
// third result reports whether a computation has completed (successfully or
// not); callers fall back on compute otherwise.
func (e *cacheEntry[T]) get() (T, error, bool) {
	if e.done.Load() {
		return e.val, e.err, true
	}
	var zero T
	return zero, nil, false
}

// StrategyCache memoizes the two control-problem solvers keyed by
// canonicalized model parameters (nodemodel.Params.Fingerprint,
// recovery.DPConfig.Normalized, cmdp.Model.Fingerprint). It is safe for
// concurrent use; duplicate concurrent requests for one key run the solver
// once.
type StrategyCache struct {
	mu          sync.Mutex
	recovery    map[string]*cacheEntry[*recovery.DPSolution]
	replication map[string]*cacheEntry[*cmdp.Solution]
	lp          map[string]*cacheEntry[*cmdp.Solution]
	fits        map[string]*cacheEntry[*emulation.FitSet]
	policies    map[string]*cacheEntry[baselines.Policy]
	scenarios   map[string]*cacheEntry[emulation.Scenario]

	// arenas pools the DP solver's scratch arenas across Recovery solves:
	// one suite's cells solve through a shared slab set instead of
	// re-allocating per cell. Arenas are scratch only — DPSolution buffers
	// are never arena-backed — so pooling cannot alias cached solutions.
	arenas sync.Pool

	recoverySolves    atomic.Int64
	recoveryHits      atomic.Int64
	replicationSolves atomic.Int64
	replicationHits   atomic.Int64
	fitSolves         atomic.Int64
	fitHits           atomic.Int64
	policyBuilds      atomic.Int64
	policyHits        atomic.Int64
	// arenaReuses counts DP solves that ran on a pooled arena instead of a
	// fresh one. It is a memory-reuse gauge, not cache activity: a reuse
	// does not imply any solution was shared.
	arenaReuses atomic.Int64

	// tel is the attached telemetry bundle (nil until Instrument). It is an
	// atomic pointer so attaching never contends with the lock-free hot
	// paths, and a cache shared across runs can be re-instrumented.
	tel atomic.Pointer[cacheTelemetry]
}

// cacheTelemetry holds the cache's registered telemetry handles.
type cacheTelemetry struct {
	// training is injected into Spec.Telemetry so learned-strategy builds
	// report optimizer/PPO progress.
	training *telemetry.Training
	// waits counts single-flight waits: requests that found another
	// goroutine's computation in flight and blocked for its result.
	waits *telemetry.Counter
	// fitNS, solveNS and buildNS time the offline Ẑ fits, the control-
	// problem solves (DP + LP) and the policy constructions (including
	// learned training runs).
	fitNS, solveNS, buildNS *telemetry.Histogram
}

// Instrument attaches the cache to a collector: the existing hit/solve
// counters join snapshots as counter funcs (one source of truth — the
// counters are not double-tracked), and single-flight waits plus per-build
// solve/fit/train durations are recorded under cache.*. Telemetry is a pure
// observer: cache contents, keys and results are identical with or without
// it. Instrumenting an already instrumented cache rebinds it to the new
// collector.
func (c *StrategyCache) Instrument(col *telemetry.Collector) {
	if col == nil {
		return
	}
	col.CounterFunc("cache.recovery_solves", c.recoverySolves.Load)
	col.CounterFunc("cache.recovery_hits", c.recoveryHits.Load)
	col.CounterFunc("cache.replication_solves", c.replicationSolves.Load)
	col.CounterFunc("cache.replication_hits", c.replicationHits.Load)
	col.CounterFunc("cache.fit_solves", c.fitSolves.Load)
	col.CounterFunc("cache.fit_hits", c.fitHits.Load)
	col.CounterFunc("cache.policy_builds", c.policyBuilds.Load)
	col.CounterFunc("cache.policy_hits", c.policyHits.Load)
	col.CounterFunc("cache.arena_reuses", c.arenaReuses.Load)
	c.tel.Store(&cacheTelemetry{
		training: telemetry.NewTraining(col),
		waits:    col.Counter("cache.singleflight_waits"),
		fitNS:    col.Histogram("cache.fit_build_ns", telemetry.DurationBuckets()),
		solveNS:  col.Histogram("cache.solve_ns", telemetry.DurationBuckets()),
		buildNS:  col.Histogram("cache.policy_build_ns", telemetry.DurationBuckets()),
	})
}

// noteWait counts a single-flight wait when the entry a hit landed on is
// still being computed by another goroutine.
func (c *StrategyCache) noteWait(inFlight bool) {
	if !inFlight {
		return
	}
	if t := c.tel.Load(); t != nil {
		t.waits.Inc(0)
	}
}

// StrategyCache implements the solver interface strategies build on.
var _ strategies.Solvers = (*StrategyCache)(nil)

// NewStrategyCache returns an empty cache.
func NewStrategyCache() *StrategyCache {
	return &StrategyCache{
		recovery:    make(map[string]*cacheEntry[*recovery.DPSolution]),
		replication: make(map[string]*cacheEntry[*cmdp.Solution]),
		lp:          make(map[string]*cacheEntry[*cmdp.Solution]),
		fits:        make(map[string]*cacheEntry[*emulation.FitSet]),
		policies:    make(map[string]*cacheEntry[baselines.Policy]),
		scenarios:   make(map[string]*cacheEntry[emulation.Scenario]),
	}
}

// Stats snapshots the hit/solve counters.
func (c *StrategyCache) Stats() CacheStats {
	return CacheStats{
		RecoverySolves:    c.recoverySolves.Load(),
		RecoveryHits:      c.recoveryHits.Load(),
		ReplicationSolves: c.replicationSolves.Load(),
		ReplicationHits:   c.replicationHits.Load(),
		FitSolves:         c.fitSolves.Load(),
		FitHits:           c.fitHits.Load(),
		PolicyBuilds:      c.policyBuilds.Load(),
		PolicyHits:        c.policyHits.Load(),
	}
}

// Fits returns the offline-fitted observation models for the process
// catalog at (samples, fitSeed), fitting at most once per distinct key.
// The key includes the catalog's profile fingerprint, so a cache shared
// across suites never conflates fits of different observation models.
func (c *StrategyCache) Fits(samples int, fitSeed int64) (*emulation.FitSet, error) {
	fp, err := emulation.CatalogFingerprint()
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s|m=%d|fs=%d", fp, samples, fitSeed)

	c.mu.Lock()
	entry, ok := c.fits[key]
	if !ok {
		entry = &cacheEntry[*emulation.FitSet]{}
		c.fits[key] = entry
	}
	c.mu.Unlock()

	if ok {
		c.fitHits.Add(1)
		c.noteWait(!entry.done.Load())
	}
	return entry.compute(func() (*emulation.FitSet, error) {
		c.fitSolves.Add(1)
		start := time.Now()
		fs, err := emulation.NewFitSet(samples, fitSeed)
		if t := c.tel.Load(); t != nil {
			t.fitNS.Observe(0, int64(time.Since(start)))
		}
		return fs, err
	})
}

// Recovery returns the Problem 1 DP solution for the model and config,
// solving at most once per distinct (params, config) pair.
func (c *StrategyCache) Recovery(p nodemodel.Params, cfg recovery.DPConfig) (*recovery.DPSolution, error) {
	n := cfg.Normalized()
	key := fmt.Sprintf("%s|dr=%d|g=%d|b=%d|v=%d",
		p.Fingerprint(), n.DeltaR, n.GridSize, n.BisectIterations, n.MaxValueIterations)

	c.mu.Lock()
	entry, ok := c.recovery[key]
	if !ok {
		entry = &cacheEntry[*recovery.DPSolution]{}
		c.recovery[key] = entry
	}
	c.mu.Unlock()

	if ok {
		c.recoveryHits.Add(1)
		c.noteWait(!entry.done.Load())
	}
	return entry.compute(func() (*recovery.DPSolution, error) {
		c.recoverySolves.Add(1)
		start := time.Now()
		arena, pooled := c.arenas.Get().(*recovery.Arena)
		if pooled {
			c.arenaReuses.Add(1)
		} else {
			arena = recovery.NewArena()
		}
		sol, err := recovery.SolveDPWith(p, cfg, arena)
		c.arenas.Put(arena)
		if t := c.tel.Load(); t != nil {
			t.solveNS.Observe(0, int64(time.Since(start)))
		}
		return sol, err
	})
}

// Replication returns the Problem 2 solution for the node model under the
// given threshold recovery strategy and system shape.
func (c *StrategyCache) Replication(p nodemodel.Params, rec *recovery.ThresholdStrategy, smax, f int, epsilonA float64, deltaR int) (*cmdp.Solution, error) {
	// The recovery strategy shapes q, so its thresholds are part of the
	// key: two callers with equal node params but different strategies
	// (e.g. DP solutions at different grid sizes) must not share a slot.
	return c.ReplicationFor(p, rec, strategyFingerprint(rec), smax, f, epsilonA, deltaR)
}

// ReplicationFor is the general form of Replication: it accepts any
// recovery decision rule (learned thresholds, a PPO policy) with recFP as
// its canonical fingerprint. The healthy-node probability q is estimated by
// simulating Problem 1 with an rng seeded from the cache key, so the result
// is deterministic; the occupancy-measure LP is further deduplicated across
// input keys by the assembled model's fingerprint.
func (c *StrategyCache) ReplicationFor(p nodemodel.Params, rec recovery.Strategy, recFP string, smax, f int, epsilonA float64, deltaR int) (*cmdp.Solution, error) {
	key := fmt.Sprintf("%s|rec=%s|dr=%d|smax=%d|f=%d|eps=%x",
		p.Fingerprint(), recFP, deltaR, smax, f, epsilonA)

	c.mu.Lock()
	entry, ok := c.replication[key]
	if !ok {
		entry = &cacheEntry[*cmdp.Solution]{}
		c.replication[key] = entry
	}
	c.mu.Unlock()

	if ok {
		c.replicationHits.Add(1)
		c.noteWait(!entry.done.Load())
	}
	return entry.compute(func() (*cmdp.Solution, error) {
		rng := rand.New(rand.NewSource(seedFromKey(key)))
		q, err := cmdp.EstimateHealthyProb(rng, p, rec,
			cmdp.DefaultEstimateEpisodes, cmdp.DefaultEstimateHorizon, deltaR)
		if err != nil {
			return nil, err
		}
		model, err := cmdp.NewBinomialModel(smax, f, epsilonA, q, 0)
		if err != nil {
			return nil, err
		}
		return c.solveLP(model)
	})
}

// solveLP memoizes cmdp.Solve by the model fingerprint.
func (c *StrategyCache) solveLP(model *cmdp.Model) (*cmdp.Solution, error) {
	key := model.Fingerprint()

	c.mu.Lock()
	entry, ok := c.lp[key]
	if !ok {
		entry = &cacheEntry[*cmdp.Solution]{}
		c.lp[key] = entry
	}
	c.mu.Unlock()

	// The counter increments inside the once-guarded closure: exactly one
	// caller's closure runs, so the count is one per distinct LP no matter
	// which goroutine wins the race into compute.
	return entry.compute(func() (*cmdp.Solution, error) {
		c.replicationSolves.Add(1)
		start := time.Now()
		sol, err := cmdp.Solve(model)
		if t := c.tel.Load(); t != nil {
			t.solveNS.Observe(0, int64(time.Since(start)))
		}
		return sol, err
	})
}

// PolicyFor resolves the cell's policy kind through the strategy registry
// and memoizes the built policy by its construction fingerprint, so a grid
// cell's policy — including an expensive learned-strategy training run — is
// built exactly once per cache no matter how many scenarios share it. ctx
// cancels in-flight construction.
func (c *StrategyCache) PolicyFor(ctx context.Context, cell Cell, suite Suite) (baselines.Policy, error) {
	strat, ok := strategies.Lookup(string(cell.Policy))
	if !ok {
		return nil, fmt.Errorf("%w: unknown policy %q (known: %v)",
			ErrBadSuite, cell.Policy, strategies.Names())
	}
	spec := cell.spec(suite)
	// The training seed derives from the suite seed and the seed-less
	// fingerprint — never from the scenario index or scheduling — so a
	// learned policy is identical across worker counts, shards and
	// resumes, while distinct suites (or seeds) train distinct policies.
	spec.Seed = seedFromKey(fmt.Sprintf("train|%d|%s|%s",
		suite.Seed, cell.Policy, strat.Fingerprint(spec)))
	key := string(cell.Policy) + "|" + strat.Fingerprint(spec)

	c.mu.Lock()
	entry, cached := c.policies[key]
	if !cached {
		entry = &cacheEntry[baselines.Policy]{}
		c.policies[key] = entry
	}
	c.mu.Unlock()

	if cached {
		c.policyHits.Add(1)
		c.noteWait(!entry.done.Load())
	}
	pol, err := entry.compute(func() (baselines.Policy, error) {
		c.policyBuilds.Add(1)
		t := c.tel.Load()
		if t != nil {
			// Learned strategies report optimizer/PPO progress through the
			// injected training sink. The sink is excluded from fingerprints
			// (like Workers) and observes training strictly from outside the
			// rng path, so the built policy is identical with or without it.
			spec.Telemetry = t.training
		}
		start := time.Now()
		pol, err := strat.Policy(ctx, spec, c)
		if t != nil {
			t.buildNS.Observe(0, int64(time.Since(start)))
		}
		return pol, err
	})
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		// A cancelled construction must not poison a shared cache: evict
		// the slot so a later run with a live context rebuilds the policy.
		c.mu.Lock()
		if c.policies[key] == entry {
			delete(c.policies, key)
		}
		c.mu.Unlock()
	}
	return pol, err
}

// scenarioFor resolves the cell's policy and assembles the scenario
// template every seed of the cell copies (Seed, FitSeed and Fits are set
// per scenario by the engine). The template is memoized under the cheap
// (suite fingerprint, cell index) key, so the steady-state fleet hot path —
// a cell whose policy was already built by an earlier run of the same suite
// — skips the canonical construction-fingerprint computation and its
// allocations entirely; the first resolution per key still routes through
// PolicyFor, which deduplicates the actual build (including learned
// training) across suites by construction fingerprint.
func (c *StrategyCache) scenarioFor(ctx context.Context, suiteFP string, cell *Cell, suite Suite) (emulation.Scenario, error) {
	var kb [48]byte
	key := append(kb[:0], suiteFP...)
	key = append(key, '|')
	key = strconv.AppendInt(key, int64(cell.Index), 10)

	c.mu.Lock()
	entry, ok := c.scenarios[string(key)]
	if !ok {
		entry = &cacheEntry[emulation.Scenario]{}
		c.scenarios[string(key)] = entry
	}
	c.mu.Unlock()

	if ok {
		if sc, err, done := entry.get(); done && err == nil {
			c.policyHits.Add(1)
			return sc, nil
		}
		c.policyHits.Add(1)
		c.noteWait(!entry.done.Load())
	}
	sc, err := entry.compute(func() (emulation.Scenario, error) {
		policy, err := c.PolicyFor(ctx, *cell, suite)
		if err != nil {
			return emulation.Scenario{}, err
		}
		s := suite.withDefaults()
		return cell.scenario(policy, 0, s.Steps, s.FitSamples), nil
	})
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		// Mirror PolicyFor's eviction: a cancelled build must not poison
		// the shared cache for later runs with a live context.
		c.mu.Lock()
		if c.scenarios[string(key)] == entry {
			delete(c.scenarios, string(key))
		}
		c.mu.Unlock()
	}
	return sc, err
}

// seedFromKey hashes a cache key into a deterministic rng seed.
func seedFromKey(key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int64(h.Sum64())
}

// strategyFingerprint canonicalizes a threshold strategy for cache keys.
func strategyFingerprint(rec *recovery.ThresholdStrategy) string {
	if rec == nil {
		return "nil"
	}
	values := append([]float64{float64(rec.DeltaR)}, rec.Thresholds...)
	return dist.Fingerprint(values...)
}
