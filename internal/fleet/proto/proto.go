// Package proto defines the wire protocol spoken between the fleet
// coordinator (tolerance-fleet -serve) and its remote workers
// (tolerance-fleet -connect) over the internal/transport message layer.
// Every message is a JSON Envelope — a kind tag plus a kind-specific
// payload — small enough to fit one transport frame.
//
// # Roles and state machine
//
// The coordinator owns a suite: the authoritative scenario index set
// [0, Scenarios), the durable record sink, and the lease table. Workers own
// nothing durable; they execute leased index ranges and stream the
// resulting run records back. The conversation, from the worker's side:
//
//	Hello        -> Welcome      handshake: version check; the coordinator
//	                             returns the suite document, its
//	                             fingerprint and the lease timings
//	LeaseRequest -> Lease        an index-contiguous scenario range
//	                             [Start, End) to execute, or
//	             -> Wait         no range available right now (Drain=false:
//	                             back off and ask again; Drain=true: the
//	                             run is over, disconnect)
//	Records      -> RecordsAck   a batch of completed run records under a
//	                             lease; resent until acknowledged
//	Heartbeat    -> (nothing)    keep-alive while executing a lease
//	Goodbye      -> (nothing)    voluntary departure; the coordinator
//	                             releases the worker's leases immediately
//
// A lease is live while heartbeats (or record batches, which refresh it
// too) keep arriving; a lease that misses heartbeats for the advertised
// LeaseTimeout is expired and its incomplete indices are re-leased to the
// next requester. Workers never coordinate with each other.
//
// # Replay dedupe
//
// The transport may drop messages and lease expiry may race a slow
// worker's deliveries, so the same scenario record can legitimately arrive
// more than once (from a retransmitted batch, or from two workers that
// both executed a re-leased index). Scenario execution is deterministic —
// a record's bytes depend only on (suite, index) — so the rule is simply
// first write wins: the coordinator folds the first record it sees for an
// index and counts every later arrival as a replay. This is the same
// dedupe contract the checkpoint -resume path relies on.
//
// # Versioning
//
// Hello and Welcome carry Version; either side refuses a peer speaking a
// different protocol version. The suite itself travels as the versioned
// JSON suite document (fleet.DumpSuite / fleet.ParseSuite), so the suite
// schema is versioned independently of the wire protocol.
package proto

import (
	"encoding/json"
	"fmt"
)

// Version is the coordinator/worker wire-protocol version. Both sides
// refuse peers with a different version.
const Version = 1

// Kind discriminates Envelope payloads.
type Kind string

// The message kinds. See the package documentation for the state machine.
const (
	// KindHello opens a worker's session (worker -> coordinator).
	KindHello Kind = "hello"
	// KindWelcome answers a Hello with the suite and lease timings
	// (coordinator -> worker).
	KindWelcome Kind = "welcome"
	// KindLeaseRequest asks for a scenario range (worker -> coordinator).
	KindLeaseRequest Kind = "lease-request"
	// KindLease grants a scenario range (coordinator -> worker).
	KindLease Kind = "lease"
	// KindWait defers or ends a lease request (coordinator -> worker).
	KindWait Kind = "wait"
	// KindRecords delivers completed run records (worker -> coordinator).
	KindRecords Kind = "records"
	// KindRecordsAck acknowledges a Records batch (coordinator -> worker).
	KindRecordsAck Kind = "records-ack"
	// KindHeartbeat keeps a lease alive (worker -> coordinator).
	KindHeartbeat Kind = "heartbeat"
	// KindGoodbye announces a voluntary departure (worker -> coordinator).
	KindGoodbye Kind = "goodbye"
)

// Envelope frames every message: a kind tag and the kind's payload.
type Envelope struct {
	// Kind tags the payload type.
	Kind Kind `json:"kind"`
	// Payload is the kind-specific message body.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Hello opens a worker session.
type Hello struct {
	// Version is the worker's protocol version.
	Version int `json:"version"`
}

// Welcome answers a Hello.
type Welcome struct {
	// Version is the coordinator's protocol version.
	Version int `json:"version"`
	// Suite is the versioned JSON suite document (fleet.DumpSuite) the
	// worker must execute leases from.
	Suite []byte `json:"suite"`
	// Fingerprint is the suite's fingerprint; the worker verifies its
	// parsed copy against it before executing anything.
	Fingerprint string `json:"fingerprint"`
	// Scenarios is the suite's total scenario count.
	Scenarios int `json:"scenarios"`
	// HeartbeatMillis is how often the worker must heartbeat a held lease.
	HeartbeatMillis int `json:"heartbeatMillis"`
	// LeaseTimeoutMillis is how long a silent lease survives before the
	// coordinator re-leases its incomplete range.
	LeaseTimeoutMillis int `json:"leaseTimeoutMillis"`
}

// LeaseRequest asks for the next scenario range. It is also the worker's
// poll after a Wait.
type LeaseRequest struct{}

// Lease grants the scenario index range [Start, End) under lease ID.
type Lease struct {
	// ID identifies the lease in Records, Heartbeat and RecordsAck.
	ID uint64 `json:"id"`
	// Start is the first scenario index of the range.
	Start int `json:"start"`
	// End is one past the last scenario index of the range.
	End int `json:"end"`
}

// Wait tells a requesting worker there is no range to grant.
type Wait struct {
	// Drain, when true, means the run is over (complete or shutting down):
	// the worker should disconnect instead of asking again.
	Drain bool `json:"drain"`
	// BackoffMillis is how long to wait before the next LeaseRequest when
	// Drain is false.
	BackoffMillis int `json:"backoffMillis"`
}

// Records delivers a batch of completed scenario records executed under a
// lease. Each element is the JSON encoding of a fleet.RunRecord — the same
// bytes a checkpoint line holds. The worker resends the batch until it
// receives the matching RecordsAck.
type Records struct {
	// LeaseID is the lease the records were executed under.
	LeaseID uint64 `json:"leaseId"`
	// Seq numbers the batch within the lease, for ack matching.
	Seq int `json:"seq"`
	// Records holds the JSON-encoded run records.
	Records []json.RawMessage `json:"records"`
}

// RecordsAck acknowledges the Records batch (LeaseID, Seq).
type RecordsAck struct {
	// LeaseID echoes the acknowledged batch's lease.
	LeaseID uint64 `json:"leaseId"`
	// Seq echoes the acknowledged batch's sequence number.
	Seq int `json:"seq"`
}

// Heartbeat keeps a held lease alive while its range executes.
type Heartbeat struct {
	// LeaseID is the lease being kept alive.
	LeaseID uint64 `json:"leaseId"`
	// Done is the number of scenarios of the lease completed so far
	// (informational).
	Done int `json:"done"`
}

// Goodbye announces a voluntary departure (Ctrl-C on the worker); the
// coordinator releases the worker's leases without waiting for the
// timeout.
type Goodbye struct{}

// Encode frames a payload of the given kind into wire bytes.
func Encode(kind Kind, payload any) ([]byte, error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("proto: encode %s: %w", kind, err)
	}
	data, err := json.Marshal(Envelope{Kind: kind, Payload: body})
	if err != nil {
		return nil, fmt.Errorf("proto: encode %s: %w", kind, err)
	}
	return data, nil
}

// Decode parses wire bytes into the message kind and its raw payload; pass
// the payload to Unmarshal with the kind's struct.
func Decode(data []byte) (Kind, json.RawMessage, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return "", nil, fmt.Errorf("proto: decode: %w", err)
	}
	if env.Kind == "" {
		return "", nil, fmt.Errorf("proto: decode: missing kind")
	}
	return env.Kind, env.Payload, nil
}

// Unmarshal decodes a payload produced by Decode into the kind's struct.
func Unmarshal(payload json.RawMessage, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("proto: payload: %w", err)
	}
	return nil
}
