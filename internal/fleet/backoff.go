package fleet

import (
	"hash/fnv"
	"time"

	"tolerance/internal/dist"
)

// Server-supplied backoff hints (Wait.BackoffMillis) are clamped to this
// window before use: a coordinator bug — or a chaos-corrupted frame that
// still parses — must not be able to park a worker for an hour or spin it
// at full rate.
const (
	minServerBackoff = 10 * time.Millisecond
	maxServerBackoff = 30 * time.Second
)

// clampServerBackoff sanitizes a Wait.BackoffMillis hint; non-positive
// values (older coordinators send zero) fall back to fallback, everything
// is clamped to [minServerBackoff, maxServerBackoff].
func clampServerBackoff(millis int, fallback time.Duration) time.Duration {
	d := time.Duration(millis) * time.Millisecond
	if d <= 0 {
		d = fallback
	}
	return min(max(d, minServerBackoff), maxServerBackoff)
}

// expBackoff is a capped exponential backoff with deterministic jitter:
// successive delays double from base to cap, each jittered into [d/2, d)
// by a SplitMix64 stream seeded from the owner's identity. Determinism
// matters here for the same reason it does everywhere else in the fleet —
// a retry storm must be reproducible from the seed, not from goroutine
// scheduling — while the per-worker seed still staggers a herd of workers
// that all lost the same coordinator at the same instant.
//
// Not safe for concurrent use; each retry loop owns its own instance.
type expBackoff struct {
	base time.Duration
	cap  time.Duration
	cur  time.Duration
	rng  uint64
}

// newBackoff seeds a backoff stream from a stable identity string
// (typically the endpoint address, so two workers on one host diverge).
func newBackoff(base, cap time.Duration, identity string) *expBackoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if cap < base {
		cap = base
	}
	h := fnv.New64a()
	h.Write([]byte(identity))
	return &expBackoff{base: base, cap: cap, rng: dist.SplitMix64(h.Sum64() ^ dist.GoldenGamma)}
}

// next returns the jittered delay and advances the schedule.
func (b *expBackoff) next() time.Duration {
	if b.cur <= 0 {
		b.cur = b.base
	}
	d := b.cur
	b.cur = min(2*b.cur, b.cap)
	b.rng = dist.SplitMix64(b.rng)
	// Jitter into [d/2, d): full magnitude spread without ever collapsing
	// to zero (a zero sleep would turn loss recovery into a hot loop).
	frac := float64(b.rng>>11) / (1 << 53)
	return d/2 + time.Duration(frac*float64(d/2))
}

// reset snaps the schedule back to base — called on success so one rough
// patch does not tax the next hundred healthy retries.
func (b *expBackoff) reset() { b.cur = 0 }
