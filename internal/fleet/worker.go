package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"tolerance/internal/chaos"
	"tolerance/internal/fleet/proto"
	"tolerance/internal/telemetry"
	"tolerance/internal/transport"
)

// workerBatchRecords is how many completed records a worker accumulates
// before shipping a Records batch (well under the transport frame cap).
const workerBatchRecords = 64

// DefaultDialTimeout bounds how long a worker keeps retrying the initial
// handshake — long enough to start the worker before its coordinator.
const DefaultDialTimeout = 30 * time.Second

// ErrDrained is returned by ConnectWorker when the coordinator drains the
// worker before granting it any lease — the run was already complete (or
// shutting down) when the worker arrived. It is informational, not a
// failure.
var ErrDrained = errors.New("fleet: coordinator drained the worker")

// WorkerConfig tunes one worker session (ConnectWorker).
type WorkerConfig struct {
	// Endpoint is the worker's transport endpoint. Its advertised address
	// must be dialable from the coordinator (see
	// transport.ListenTCPAdvertise). The caller owns it; ConnectWorker
	// does not close it.
	Endpoint transport.Endpoint
	// Coordinator is the coordinator's host:port address.
	Coordinator string
	// Workers bounds the local execution pool inside each lease, exactly
	// like Config.Workers (zero = GOMAXPROCS).
	Workers int
	// Cache supplies the strategy cache shared across the session's
	// leases, so policies solve and the suite Ẑ fits once per worker
	// process; nil creates a fresh one.
	Cache *StrategyCache
	// DialTimeout bounds the handshake retry loop (zero =
	// DefaultDialTimeout), letting workers start before their coordinator.
	DialTimeout time.Duration
	// Telemetry, when set, instruments the local engine runs (the usual
	// fleet.* metrics) — side-channel only, like everywhere else.
	Telemetry *telemetry.Collector
	// Chaos is the armed fault-injection plan (nil = off), threaded into
	// each lease's engine Config so non-emulation backends inject faults
	// too. The worker's wire endpoint is wrapped separately by the caller.
	Chaos *chaos.Plan
	// Logf, when set, receives operational one-liners (handshake, leases,
	// drain). It must not write to stdout.
	Logf func(format string, args ...any)

	// testFailAfterRecords, when positive, makes the session fail hard
	// after sending that many records — the lease-expiry tests' simulated
	// mid-range kill (no Goodbye is sent, exactly like SIGKILL).
	testFailAfterRecords int
	// testBatchRecords overrides workerBatchRecords in tests.
	testBatchRecords int
}

// errWorkerKilled is the test hook's simulated hard kill.
var errWorkerKilled = errors.New("fleet: worker test kill")

// errSessionDrained unwinds a call that can never complete because the
// coordinator declared the run over (a drain notice arrived while waiting
// for a different reply — typically an ack for records another worker's
// re-lease already delivered). The lease loop turns it into a clean exit.
var errSessionDrained = errors.New("fleet: session drained")

// workerSession is the in-flight state of one ConnectWorker call.
type workerSession struct {
	cfg     WorkerConfig
	suite   Suite
	total   int
	hb      time.Duration
	leaseTO time.Duration
	drained bool
	sent    int

	// waitBO paces the lease-wait loop (exponential, capped near the
	// advertised lease timeout so an expired range is inherited promptly);
	// sendBO paces send-failure retries inside call. Both jitter from a
	// seed derived from the endpoint address, so a worker's retry cadence
	// is reproducible yet staggered against its siblings'.
	waitBO *expBackoff
	sendBO *expBackoff
}

// ConnectWorker joins a coordinator (Coordinate / tolerance-fleet -serve)
// as a remote fleet worker: it performs the Hello/Welcome handshake,
// receives the suite definition over the wire, then loops — lease a
// scenario range, execute it on the local engine with the usual
// deterministic per-index seeding, stream the records back in batches
// (resent until acknowledged), heartbeat while running — until the
// coordinator drains it. Returns nil after a drain that followed at least
// one lease; ErrDrained if the worker never got work.
//
// Cancelling ctx is the graceful exit: the in-flight lease's engine drains,
// its completed record prefix is already shipped, and a best-effort
// Goodbye lets the coordinator re-lease the remainder immediately instead
// of waiting out the lease timeout. A worker killed without Goodbye loses
// nothing either — its lease simply expires.
func ConnectWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Endpoint == nil {
		return fmt.Errorf("%w: worker needs a transport endpoint", ErrBadSuite)
	}
	if cfg.Coordinator == "" {
		return fmt.Errorf("%w: worker needs a coordinator address", ErrBadSuite)
	}
	if cfg.Cache == nil {
		cfg.Cache = NewStrategyCache()
	}
	if cfg.testBatchRecords <= 0 {
		cfg.testBatchRecords = workerBatchRecords
	}
	s := &workerSession{cfg: cfg}
	s.sendBO = newBackoff(50*time.Millisecond, time.Second, cfg.Endpoint.Addr()+"/send")
	if err := s.handshake(ctx); err != nil {
		return err
	}
	leases := 0
	for {
		if err := ctx.Err(); err != nil {
			s.goodbye()
			return err
		}
		lease, drained, err := s.requestLease(ctx)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				s.goodbye()
			}
			return err
		}
		if drained {
			s.logf("worker: drained after %d leases", leases)
			if leases == 0 {
				return ErrDrained
			}
			return nil
		}
		if err := s.runLease(ctx, lease); err != nil {
			if errors.Is(err, context.Canceled) {
				s.goodbye()
				return err
			}
			if errors.Is(err, errSessionDrained) {
				// The run finished without this lease's remainder; the next
				// requestLease observes s.drained and exits cleanly.
				leases++
				continue
			}
			return err
		}
		leases++
	}
}

// handshake performs Hello → Welcome with retries, so workers can start
// before the coordinator is listening.
func (s *workerSession) handshake(ctx context.Context) error {
	timeout := s.cfg.DialTimeout
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	deadline := time.Now().Add(timeout)
	attempt := time.Second
	// Redial pacing: exponential from a quick first retry up to a couple
	// of seconds, jittered per endpoint so a worker herd restarted together
	// does not hammer a recovering coordinator in lockstep.
	dialBO := newBackoff(100*time.Millisecond, 2*time.Second, s.cfg.Endpoint.Addr()+"/dial")
	var lastErr error
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		_, raw, err := s.call(ctx, proto.KindHello, proto.Hello{Version: proto.Version}, attempt,
			func(k proto.Kind, _ json.RawMessage) bool { return k == proto.KindWelcome })
		if err != nil {
			if errors.Is(err, errSessionDrained) {
				// The run ended while we were still saying hello.
				return ErrDrained
			}
			lastErr = err
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(dialBO.next()):
			}
			continue
		}
		var w proto.Welcome
		if err := proto.Unmarshal(raw, &w); err != nil {
			return err
		}
		if w.Version != proto.Version {
			return fmt.Errorf("fleet: coordinator speaks protocol v%d, this worker v%d", w.Version, proto.Version)
		}
		suite, err := ParseSuite(w.Suite)
		if err != nil {
			return fmt.Errorf("fleet: coordinator sent a bad suite: %w", err)
		}
		if got := suite.Fingerprint(); got != w.Fingerprint {
			return fmt.Errorf("fleet: suite fingerprint mismatch: coordinator says %s, parsed %s", w.Fingerprint, got)
		}
		if got := suite.NumScenarios(); got != w.Scenarios {
			return fmt.Errorf("fleet: scenario count mismatch: coordinator says %d, suite expands to %d", w.Scenarios, got)
		}
		s.suite, s.total = suite, w.Scenarios
		s.hb = time.Duration(w.HeartbeatMillis) * time.Millisecond
		if s.hb <= 0 {
			s.hb = DefaultHeartbeat
		}
		s.leaseTO = time.Duration(w.LeaseTimeoutMillis) * time.Millisecond
		if s.leaseTO <= 0 {
			s.leaseTO = defaultLeaseTimeoutBeats * s.hb
		}
		// Lease-wait pacing: start at the heartbeat, never sleep past the
		// lease timeout — an expired range must find a taker within one
		// timeout, or the re-lease itself would stall the run.
		s.waitBO = newBackoff(s.hb, s.leaseTO, s.cfg.Endpoint.Addr()+"/wait")
		s.logf("worker: joined %s — suite %s (%s), %d scenarios, heartbeat %s",
			s.cfg.Coordinator, suite.Name, w.Fingerprint, w.Scenarios, s.hb)
		return nil
	}
	return fmt.Errorf("fleet: no coordinator at %s within %s: %w", s.cfg.Coordinator, timeout, lastErr)
}

// requestLease asks for the next range until the coordinator grants one or
// drains the session.
func (s *workerSession) requestLease(ctx context.Context) (proto.Lease, bool, error) {
	for {
		if s.drained {
			return proto.Lease{}, true, nil
		}
		kind, raw, err := s.call(ctx, proto.KindLeaseRequest, proto.LeaseRequest{}, max(s.hb, time.Second),
			func(k proto.Kind, _ json.RawMessage) bool { return k == proto.KindLease || k == proto.KindWait })
		if err != nil {
			return proto.Lease{}, false, err
		}
		if kind == proto.KindLease {
			var lease proto.Lease
			if uerr := proto.Unmarshal(raw, &lease); uerr == nil && lease.End > lease.Start {
				s.waitBO.reset()
				return lease, false, nil
			}
			continue
		}
		var wait proto.Wait
		if uerr := proto.Unmarshal(raw, &wait); uerr == nil {
			if wait.Drain {
				return proto.Lease{}, true, nil
			}
			// The server's hint is advice, not an order: clamp it to sane
			// bounds (a corrupted-but-parseable frame must not park us for
			// an hour), grow our own exponential schedule underneath it,
			// and never sleep past the lease timeout — an expired range
			// needs a taker within one timeout.
			backoff := max(clampServerBackoff(wait.BackoffMillis, s.hb), s.waitBO.next())
			backoff = min(backoff, max(s.leaseTO, s.hb))
			select {
			case <-ctx.Done():
				return proto.Lease{}, false, ctx.Err()
			case <-time.After(backoff):
			}
		}
	}
}

// runLease executes the leased range on the local engine, heartbeating in
// the background and streaming record batches (resent until acked).
func (s *workerSession) runLease(ctx context.Context, lease proto.Lease) error {
	s.logf("worker: lease %d — scenarios [%d,%d)", lease.ID, lease.Start, lease.End)
	indices := make([]int, 0, lease.End-lease.Start)
	for i := lease.Start; i < lease.End; i++ {
		indices = append(indices, i)
	}

	var done atomic.Int64
	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go func() {
		ticker := time.NewTicker(s.hb)
		defer ticker.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-ticker.C:
				s.send(proto.KindHeartbeat, proto.Heartbeat{LeaseID: lease.ID, Done: int(done.Load())})
			}
		}
	}()

	batch := make([]json.RawMessage, 0, s.cfg.testBatchRecords)
	seq := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := s.shipRecords(ctx, lease.ID, seq, batch)
		seq++
		batch = batch[:0]
		return err
	}
	_, err := Run(ctx, s.suite, Config{
		Workers:   s.cfg.Workers,
		Cache:     s.cfg.Cache,
		Indices:   indices,
		Telemetry: s.cfg.Telemetry,
		Chaos:     s.cfg.Chaos,
		OnRecord: func(rec RunRecord) error {
			data, merr := json.Marshal(rec)
			if merr != nil {
				return merr
			}
			batch = append(batch, json.RawMessage(data))
			done.Add(1)
			s.sent++
			if s.cfg.testFailAfterRecords > 0 && s.sent >= s.cfg.testFailAfterRecords {
				if ferr := flush(); ferr != nil {
					return ferr
				}
				return errWorkerKilled
			}
			if len(batch) >= s.cfg.testBatchRecords {
				return flush()
			}
			return nil
		},
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			// Graceful drain: the engine already delivered the completed
			// index-ordered prefix to OnRecord; ship what we have so the
			// coordinator keeps it, then let the caller send Goodbye.
			_ = flush()
		}
		return err
	}
	return flush()
}

// shipRecords sends one Records batch and waits for its ack, resending on
// timeout. The coordinator dedupes, so resending an already-ingested batch
// is harmless (first write wins).
func (s *workerSession) shipRecords(ctx context.Context, leaseID uint64, seq int, batch []json.RawMessage) error {
	msg := proto.Records{LeaseID: leaseID, Seq: seq, Records: batch}
	_, _, err := s.call(ctx, proto.KindRecords, msg, max(s.hb, time.Second),
		func(k proto.Kind, raw json.RawMessage) bool {
			if k != proto.KindRecordsAck {
				return false
			}
			var ack proto.RecordsAck
			return proto.Unmarshal(raw, &ack) == nil && ack.LeaseID == leaseID && ack.Seq == seq
		})
	return err
}

// call sends a message and waits for a reply matching match, retrying the
// send on timeout (the transport may drop either direction). Stray
// messages that arrive while waiting are handled on the side: a drain
// notice sets s.drained, everything else is ignored.
func (s *workerSession) call(ctx context.Context, kind proto.Kind, payload any,
	attemptTimeout time.Duration, match func(proto.Kind, json.RawMessage) bool) (proto.Kind, json.RawMessage, error) {

	const attempts = 10
	var lastErr error
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			return "", nil, err
		}
		// Consume everything already queued before (re)sending: the reply
		// to an earlier attempt, or — if the coordinator finished the run
		// and exited — a drain notice that is the only message we will
		// ever get, while every send below fails with connection refused.
	queued:
		for {
			select {
			case msg, ok := <-s.cfg.Endpoint.Receive():
				if !ok {
					return "", nil, fmt.Errorf("fleet: worker endpoint closed")
				}
				k, raw, derr := proto.Decode(msg.Payload)
				if derr != nil {
					continue
				}
				if match(k, raw) {
					s.sendBO.reset()
					return k, raw, nil
				}
				s.stray(k, raw)
				if s.drained {
					return "", nil, errSessionDrained
				}
			default:
				break queued
			}
		}
		if err := s.send(kind, payload); err != nil {
			lastErr = err
			// Exponential, jittered, capped: an injected connection reset
			// or redial race backs off instead of machine-gunning the
			// coordinator on a fixed 200ms cadence.
			select {
			case <-ctx.Done():
				return "", nil, ctx.Err()
			case <-time.After(s.sendBO.next()):
			}
			continue
		}
		timer := time.NewTimer(attemptTimeout)
	recv:
		for {
			select {
			case <-ctx.Done():
				timer.Stop()
				return "", nil, ctx.Err()
			case <-timer.C:
				lastErr = fmt.Errorf("fleet: no %s reply from %s", kind, s.cfg.Coordinator)
				break recv
			case msg, ok := <-s.cfg.Endpoint.Receive():
				if !ok {
					timer.Stop()
					return "", nil, fmt.Errorf("fleet: worker endpoint closed")
				}
				k, raw, derr := proto.Decode(msg.Payload)
				if derr != nil {
					continue
				}
				if match(k, raw) {
					timer.Stop()
					s.sendBO.reset()
					return k, raw, nil
				}
				s.stray(k, raw)
				if s.drained {
					timer.Stop()
					return "", nil, errSessionDrained
				}
			}
		}
	}
	return "", nil, fmt.Errorf("fleet: coordinator %s unreachable: %w", s.cfg.Coordinator, lastErr)
}

// stray handles messages that arrive outside their expected window.
func (s *workerSession) stray(k proto.Kind, raw json.RawMessage) {
	if k != proto.KindWait {
		return
	}
	var w proto.Wait
	if proto.Unmarshal(raw, &w) == nil && w.Drain {
		s.drained = true
	}
}

// send encodes and transmits one message to the coordinator.
func (s *workerSession) send(kind proto.Kind, payload any) error {
	data, err := proto.Encode(kind, payload)
	if err != nil {
		return err
	}
	return s.cfg.Endpoint.Send(s.cfg.Coordinator, data)
}

// goodbye announces the departure, best effort.
func (s *workerSession) goodbye() {
	_ = s.send(proto.KindGoodbye, proto.Goodbye{})
}

func (s *workerSession) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
