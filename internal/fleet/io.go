package fleet

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"strings"

	"tolerance/internal/emulation"
	"tolerance/internal/telemetry"
)

// RunRecord is one completed scenario: its global index in the suite's
// expansion, the grid cell it belongs to, and the run's metrics. Records
// are the unit of durability — checkpoint files and shard result files are
// streams of them — and replaying records in index order reproduces a
// run's aggregates byte-for-byte (emulation.Metrics is flat float64/int
// data, which Go's JSON encoding round-trips exactly).
type RunRecord struct {
	Index   int               `json:"index"`
	Cell    int               `json:"cell"`
	Metrics emulation.Metrics `json:"metrics"`
}

// checkpointLine is the on-disk shape of one record line: the RunRecord
// fields flattened (the embedding keeps the JSON identical to PR-era files
// plus one trailing field) and a CRC32 (IEEE) of the record's canonical
// JSON encoding. The checksum turns silent corruption — a flipped byte
// that still parses as valid JSON — into a detected, skippable record
// instead of a poisoned resume. CRC is a pointer so legacy lines without
// one read back as nil and are accepted unverified.
type checkpointLine struct {
	RunRecord
	CRC *uint32 `json:"crc,omitempty"`
}

// recordCRC is the per-record checksum: CRC32 (IEEE) over the record's
// canonical JSON bytes. emulation.Metrics is flat float64/int data that
// Go's JSON encoding round-trips exactly, so a reader can re-marshal the
// parsed record and get the writer's bytes back — no need to checksum the
// raw line (whose crc field would self-reference).
func recordCRC(rec RunRecord) (uint32, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE(body), nil
}

// checkpointHeader is the first line of a checkpoint / shard result file.
// It embeds the full defaulted suite (so -merge needs no side channel) and
// its fingerprint (so resume and merge refuse records from a different
// grid).
type checkpointHeader struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	Shard       string `json:"shard"`
	Scenarios   int    `json:"scenarios"`
	Suite       Suite  `json:"suite"`
}

// CheckpointVersion is the current checkpoint/shard-file format version.
const CheckpointVersion = 1

// checkpointSyncEvery bounds the records between fsyncs; a crash loses at
// most this many completed scenarios.
const checkpointSyncEvery = 16

// gzipCheckpoint reports whether a checkpoint path selects the gzip
// framing: very large grids name their files *.gz and every consumer
// (-checkpoint, -resume, -merge) handles them transparently. The JSONL
// payload inside is identical to a plain file's.
func gzipCheckpoint(path string) bool { return strings.HasSuffix(path, ".gz") }

// Checkpoint is the parsed content of a checkpoint or shard result file.
type Checkpoint struct {
	// Suite is the defaulted suite the records were produced from.
	Suite Suite
	// Shard is the slice of the scenario index set the writer was assigned.
	Shard Shard
	// Records maps scenario index to its completed record.
	Records map[int]RunRecord
	// Corrupted counts record lines that were detected as damaged — a
	// parse failure before the final line, or a CRC mismatch — and skipped.
	// Their scenarios are simply missing from Records, so a resume re-runs
	// them; nothing about the rest of the file is distrusted.
	Corrupted int
	// validBytes is the extent of the intact newline-terminated prefix (of
	// the decompressed payload for gzip files); AppendCheckpoint truncates
	// plain files to it so a torn tail is never glued onto fresh records.
	validBytes int64
	// gz records that the file was gzip-framed; resume rewrites such files
	// instead of truncate-and-append.
	gz bool
}

// readCheckpointBytes loads a checkpoint file's JSONL payload. For gzip
// files it decompresses as far as the stream allows: a run killed
// mid-write leaves a truncated gzip tail, which surfaces as an unexpected
// EOF after some decompressed prefix — exactly the torn-tail shape the
// JSONL parser already tolerates (the writer's periodic Flush guarantees
// every synced record is in a decompressible block), so a crashed gzip
// checkpoint is always loadable.
func readCheckpointBytes(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: read checkpoint: %w", err)
	}
	if !gzipCheckpoint(path) {
		return data, nil
	}
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%w: checkpoint %s: %v", ErrBadSuite, path, err)
	}
	out, err := io.ReadAll(zr)
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) {
		return nil, fmt.Errorf("%w: checkpoint %s: %v", ErrBadSuite, path, err)
	}
	// Close verifies the trailer checksum, which a truncated member cannot
	// pass; the decompressed prefix is still a valid torn-tail payload.
	_ = zr.Close()
	return out, nil
}

// ReadCheckpoint parses a checkpoint file (gzip-framed when the path ends
// in .gz). The format is JSONL: a header line followed by one record per
// line, each carrying a CRC32 of its record (absent in legacy files, which
// still read fine). A torn final line — the signature of a run killed
// mid-write — is ignored, so a crashed run's file is always loadable.
// A damaged line anywhere else (unparseable, or parseable with a CRC
// mismatch — a flipped byte can leave valid JSON with a wrong value) is
// skipped and counted in Checkpoint.Corrupted rather than failing the
// load or silently truncating the resume prefix: the affected scenarios
// are re-run on resume, every record after them is kept.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	data, err := readCheckpointBytes(path)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: checkpoint %s is empty", ErrBadSuite, path)
	}
	lines := strings.Split(string(data), "\n")
	// Drop trailing empty lines (the file ends with a newline when intact).
	for len(lines) > 0 && strings.TrimSpace(lines[len(lines)-1]) == "" {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("%w: checkpoint %s is empty", ErrBadSuite, path)
	}
	// A line is only durable once its newline is on disk. A file that does
	// not end in '\n' was killed mid-write: its final line is torn even if
	// the cut happened to land after complete JSON — counting it would make
	// validBytes overshoot the file and corrupt the truncate-then-append
	// resume path.
	torn := data[len(data)-1] != '\n'
	if torn && len(lines) == 1 {
		return nil, fmt.Errorf("%w: checkpoint %s has a torn header", ErrBadSuite, path)
	}
	body := lines[1:]
	if torn {
		body = body[:len(body)-1]
	}
	var hdr checkpointHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		return nil, fmt.Errorf("%w: checkpoint %s header: %v", ErrBadSuite, path, err)
	}
	if hdr.Version != CheckpointVersion {
		return nil, fmt.Errorf("%w: checkpoint %s version %d, want %d",
			ErrBadSuite, path, hdr.Version, CheckpointVersion)
	}
	if got := hdr.Suite.Fingerprint(); got != hdr.Fingerprint {
		return nil, fmt.Errorf("%w: checkpoint %s fingerprint %s does not match its suite (%s)",
			ErrBadSuite, path, hdr.Fingerprint, got)
	}
	shard, err := ParseShard(hdr.Shard)
	if err != nil {
		return nil, fmt.Errorf("%w: checkpoint %s: %v", ErrBadSuite, path, err)
	}
	ck := &Checkpoint{
		Suite:      hdr.Suite,
		Shard:      shard,
		Records:    make(map[int]RunRecord, len(body)),
		validBytes: int64(len(lines[0]) + 1),
		gz:         gzipCheckpoint(path),
	}
	for i, line := range body {
		var rec checkpointLine
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			if i == len(body)-1 {
				break // torn tail from a killed run; the record is simply redone
			}
			// A torn or corrupted line mid-file (a chaos tear glues a half
			// line onto its successor). validBytes still advances: the
			// damage is already durable, and truncating it away would also
			// discard every good record that follows.
			ck.Corrupted++
			ck.validBytes += int64(len(line) + 1)
			continue
		}
		if rec.CRC != nil {
			if sum, err := recordCRC(rec.RunRecord); err != nil || sum != *rec.CRC {
				ck.Corrupted++
				ck.validBytes += int64(len(line) + 1)
				continue
			}
		}
		if rec.Index < 0 || rec.Index >= hdr.Scenarios || !shard.Contains(rec.Index) {
			return nil, fmt.Errorf("%w: checkpoint %s has out-of-shard scenario %d",
				ErrBadSuite, path, rec.Index)
		}
		ck.Records[rec.Index] = rec.RunRecord
		ck.validBytes += int64(len(line) + 1)
	}
	return ck, nil
}

// CheckpointWriter appends run records to a checkpoint file as they
// complete, fsyncing every checkpointSyncEvery records so a killed run can
// be resumed with bounded rework. A path ending in .gz writes the same
// JSONL stream gzip-compressed (for very large grids); each sync flushes a
// compressed block, so the synced prefix of a killed gzip run is always
// decompressible. Records encode through one persistent json.Encoder bound
// to the output pipeline; each line carries a CRC32 of the record (see
// checkpointLine) so readers can detect corruption instead of trusting
// whatever parses.
type CheckpointWriter struct {
	f        *os.File
	bw       *bufio.Writer
	zw       *gzip.Writer // nil for plain files
	enc      *json.Encoder
	unsynced int
	syncs    *telemetry.Counter // nil until Instrument
}

// Instrument counts the writer's fsync batches on the collector
// (fleet.checkpoint_syncs). Pure observer: the file contents and sync
// cadence are identical with or without it.
func (c *CheckpointWriter) Instrument(col *telemetry.Collector) {
	if col != nil {
		c.syncs = col.Counter(MetricCheckpointSyncs)
	}
}

// newCheckpointWriter assembles the encode→(gzip)→buffer→file pipeline.
func newCheckpointWriter(path string, f *os.File) *CheckpointWriter {
	w := &CheckpointWriter{f: f, bw: bufio.NewWriter(f)}
	var sink io.Writer = w.bw
	if gzipCheckpoint(path) {
		w.zw = gzip.NewWriter(w.bw)
		sink = w.zw
	}
	w.enc = json.NewEncoder(sink)
	return w
}

// CreateCheckpoint creates (truncating) a checkpoint file for the suite
// and shard and writes the header.
func CreateCheckpoint(path string, suite Suite, shard Shard) (*CheckpointWriter, error) {
	suite = suite.withDefaults()
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: create checkpoint: %w", err)
	}
	w := newCheckpointWriter(path, f)
	hdr := checkpointHeader{
		Version:     CheckpointVersion,
		Fingerprint: suite.Fingerprint(),
		Shard:       shard.String(),
		Scenarios:   suite.NumScenarios(),
		Suite:       suite,
	}
	if err := w.writeLine(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := w.sync(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// AppendCheckpoint reopens the checkpoint file ck was read from to append
// fresh records after a resume. A plain file is truncated to ck's intact
// prefix, discarding any torn final line a kill left behind — otherwise
// the first appended record would be glued onto the fragment, corrupting
// the file for -merge and later resumes. A gzip file cannot be truncated
// to a record boundary in place, so it is rewritten from the parsed
// records (in index order — the fold order the original writer used)
// before appending continues.
func AppendCheckpoint(path string, ck *Checkpoint) (*CheckpointWriter, error) {
	if ck.gz {
		// Rewrite to a sibling temp file and rename over the original only
		// once every parsed record is durable, so a second kill during the
		// rewrite cannot lose the records the first run already synced.
		// (The .gz suffix on the temp name keeps the gzip framing.)
		tmp := strings.TrimSuffix(path, ".gz") + ".rewrite.gz"
		w, err := CreateCheckpoint(tmp, ck.Suite, ck.Shard)
		if err != nil {
			return nil, err
		}
		abort := func(err error) (*CheckpointWriter, error) {
			w.f.Close()
			os.Remove(tmp)
			return nil, err
		}
		idxs := make([]int, 0, len(ck.Records))
		for idx := range ck.Records {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			if err := w.Append(ck.Records[idx]); err != nil {
				return abort(err)
			}
		}
		if err := w.sync(); err != nil {
			return abort(err)
		}
		if err := os.Rename(tmp, path); err != nil {
			return abort(fmt.Errorf("fleet: append checkpoint: %w", err))
		}
		return w, nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: append checkpoint: %w", err)
	}
	if err := f.Truncate(ck.validBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: append checkpoint: %w", err)
	}
	if _, err := f.Seek(ck.validBytes, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: append checkpoint: %w", err)
	}
	return newCheckpointWriter(path, f), nil
}

// InterposeSink rebuilds the record encoder over wrap(sink) — the chaos
// plane's hook for injecting torn and corrupted writes under the JSONL
// stream. Call it right after CreateCheckpoint or AppendCheckpoint: the
// header (already written) stays intact, and every subsequent record line
// reaches the file through the wrapper as exactly one Write. A nil wrap is
// a no-op.
func (c *CheckpointWriter) InterposeSink(wrap func(io.Writer) io.Writer) {
	if wrap == nil {
		return
	}
	var sink io.Writer = c.bw
	if c.zw != nil {
		sink = c.zw
	}
	c.enc = json.NewEncoder(wrap(sink))
}

// Append writes one completed scenario record, stamped with its CRC32 so
// a reader can tell bit rot from truth.
func (c *CheckpointWriter) Append(rec RunRecord) error {
	sum, err := recordCRC(rec)
	if err != nil {
		return fmt.Errorf("fleet: checkpoint: %w", err)
	}
	if err := c.writeLine(checkpointLine{RunRecord: rec, CRC: &sum}); err != nil {
		return err
	}
	c.unsynced++
	if c.unsynced >= checkpointSyncEvery {
		return c.sync()
	}
	return nil
}

// Close flushes, syncs and closes the file. For gzip files it also writes
// the stream trailer, so only a Closed gzip checkpoint reads back without
// the torn-tail path.
func (c *CheckpointWriter) Close() error {
	err := c.sync()
	if c.zw != nil {
		if zerr := c.zw.Close(); err == nil && zerr != nil {
			err = fmt.Errorf("fleet: checkpoint: %w", zerr)
		}
		if ferr := c.bw.Flush(); err == nil && ferr != nil {
			err = fmt.Errorf("fleet: checkpoint: %w", ferr)
		}
		if serr := c.f.Sync(); err == nil && serr != nil {
			err = fmt.Errorf("fleet: checkpoint: %w", serr)
		}
	}
	if cerr := c.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeLine encodes one JSONL line through the persistent encoder (Encode
// appends the newline itself).
func (c *CheckpointWriter) writeLine(v any) error {
	if err := c.enc.Encode(v); err != nil {
		return fmt.Errorf("fleet: checkpoint: %w", err)
	}
	return nil
}

func (c *CheckpointWriter) sync() error {
	c.unsynced = 0
	if c.syncs != nil {
		c.syncs.Inc(0)
	}
	if c.zw != nil {
		if err := c.zw.Flush(); err != nil {
			return fmt.Errorf("fleet: checkpoint: %w", err)
		}
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("fleet: checkpoint: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("fleet: checkpoint: %w", err)
	}
	return nil
}

// ReadShardSet reads and cross-validates a set of checkpoint / shard
// result files for merging: every file must describe the same suite
// (by fingerprint), and no scenario may appear in two files. It returns
// the common suite and the combined record map, ready for MergeRecords.
func ReadShardSet(paths []string) (Suite, map[int]RunRecord, error) {
	if len(paths) == 0 {
		return Suite{}, nil, fmt.Errorf("%w: no shard files", ErrBadSuite)
	}
	var suite Suite
	var fingerprint string
	combined := make(map[int]RunRecord)
	for _, path := range paths {
		ck, err := ReadCheckpoint(path)
		if err != nil {
			return Suite{}, nil, err
		}
		if fingerprint == "" {
			suite, fingerprint = ck.Suite, ck.Suite.Fingerprint()
		} else if got := ck.Suite.Fingerprint(); got != fingerprint {
			return Suite{}, nil, fmt.Errorf("%w: %s was produced by a different suite (fingerprint %s, want %s)",
				ErrBadSuite, path, got, fingerprint)
		}
		for idx, rec := range ck.Records {
			if _, dup := combined[idx]; dup {
				return Suite{}, nil, fmt.Errorf("%w: scenario %d appears in more than one shard file (%s)",
					ErrBadSuite, idx, path)
			}
			combined[idx] = rec
		}
	}
	return suite, combined, nil
}
