package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"tolerance/internal/chaos"
	"tolerance/internal/clusterbackend"
	"tolerance/internal/emulation"
	"tolerance/internal/telemetry"
)

// The built-in scenario backends. BackendEmulation is the default when a
// suite names no backends: the in-process discrete-time emulation the whole
// determinism contract is built on. BackendCluster executes the same
// scenario schedule against a live MinBFT replica group over loopback TCP
// (internal/clusterbackend).
const (
	BackendEmulation = "emulation"
	BackendCluster   = "cluster"
)

// BackendOptions carries per-run context from the engine into a backend.
type BackendOptions struct {
	// Telemetry receives the backend's live metrics (e.g. the cluster.*
	// family); nil disables collection.
	Telemetry *telemetry.Collector
	// Shard is the telemetry shard (the engine passes the worker id), so
	// concurrent scenarios on one collector do not contend.
	Shard int
	// Chaos is the armed fault-injection plan (nil = off). Backends that
	// open real network links wrap them with Chaos.WrapEndpoint; the
	// emulation backend has nothing to wrap.
	Chaos *chaos.Plan
}

// ScenarioBackend executes one fully-resolved emulation scenario — seed,
// fits and policy already bound by the engine — and returns its metrics for
// the standard Welford fold. Implementations must be safe for concurrent
// Run calls from multiple fleet workers.
type ScenarioBackend interface {
	// Name is the registry key, valid in a suite's "backends" axis.
	Name() string
	// Describe is a one-line summary for CLI listings.
	Describe() string
	// Deterministic reports whether two runs of the same scenario produce
	// byte-identical metrics. The emulation backend is deterministic; the
	// cluster backend is statistically reproducible (its seeded event
	// schedule is identical across runs) but measures wall-clock
	// quantities, so it is exempt from the byte-stability contract and the
	// engine's suite results are only byte-stable for suites whose cells
	// all use deterministic backends.
	Deterministic() bool
	Run(ctx context.Context, sc emulation.Scenario, opts BackendOptions) (emulation.Metrics, error)
}

var (
	backendMu       sync.RWMutex
	backendRegistry = map[string]ScenarioBackend{}
)

// RegisterBackend adds a backend to the registry, replacing any previous
// entry with the same name. Registration normally happens in init funcs,
// before suites are validated.
func RegisterBackend(b ScenarioBackend) {
	backendMu.Lock()
	defer backendMu.Unlock()
	backendRegistry[b.Name()] = b
}

// LookupBackend resolves a registered backend by name.
func LookupBackend(name string) (ScenarioBackend, bool) {
	backendMu.RLock()
	defer backendMu.RUnlock()
	b, ok := backendRegistry[name]
	return b, ok
}

// BackendNames lists the registered backend names in sorted order — the
// valid values for Suite.Backends and suite-file "backends" entries.
func BackendNames() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	names := make([]string, 0, len(backendRegistry))
	for n := range backendRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterBackend(emulationBackend{})
	RegisterBackend(clusterBackend{})
}

// emulationBackend adapts emulation.Run to the registry interface. The
// engine's hot path never goes through it — cells on the default backend
// run on the worker-resident emulation.Runner — but it is registered so
// "emulation" is a valid explicit axis value and so listings can describe
// it.
type emulationBackend struct{}

func (emulationBackend) Name() string        { return BackendEmulation }
func (emulationBackend) Deterministic() bool { return true }
func (emulationBackend) Describe() string {
	return "in-process discrete-time emulation (deterministic, byte-stable)"
}

func (emulationBackend) Run(ctx context.Context, sc emulation.Scenario, opts BackendOptions) (emulation.Metrics, error) {
	if err := ctx.Err(); err != nil {
		return emulation.Metrics{}, err
	}
	return emulation.NewRunner().RunInto(sc)
}

// clusterBackend adapts clusterbackend.Run: the scenario drives a live
// MinBFT replica group over loopback TCP, with real process restarts and
// membership changes on the seeded emulation schedule.
type clusterBackend struct{}

func (clusterBackend) Name() string        { return BackendCluster }
func (clusterBackend) Deterministic() bool { return false }
func (clusterBackend) Describe() string {
	return "live MinBFT replica group over loopback TCP (seeded schedule, wall-clock measurements)"
}

func (clusterBackend) Run(ctx context.Context, sc emulation.Scenario, opts BackendOptions) (emulation.Metrics, error) {
	res, err := clusterbackend.Run(ctx, sc, clusterbackend.Options{
		Telemetry: opts.Telemetry,
		Shard:     opts.Shard,
		Chaos:     opts.Chaos,
	})
	if err != nil {
		return emulation.Metrics{}, fmt.Errorf("cluster backend: %w", err)
	}
	return res.Metrics, nil
}
