// Package fleet is the parallel scenario-fleet engine: it expands a
// declarative Suite — grids over attacker campaign intensity, node-model
// parameters, workload shapes, system sizes, BTR bounds and control policies
// — into hundreds of concrete emulation scenarios and executes them on a
// bounded worker pool.
//
// Policy kinds are open-ended: a cell's PolicyKind resolves through the
// strategy registry (internal/strategies), so the exact DP strategies, the
// Algorithm 1 learned kinds ("learned:cem" etc.), PPO, the §VIII-B
// baselines, and facade-registered custom strategies all run under the same
// engine and suite schema.
//
// Scale comes from three mechanisms:
//
//   - Deterministic seeding: every scenario's seed is a hash of the suite
//     seed and the scenario index, so results are bit-identical regardless
//     of worker count or scheduling; learned-strategy training seeds derive
//     from the suite seed and the strategy fingerprint, never from
//     scheduling.
//   - A strategy cache (StrategyCache) that memoizes the solved recovery
//     strategies (recovery.SolveDP), replication LPs (cmdp occupancy
//     measures) and built policies (including training runs) keyed by
//     canonicalized construction inputs, so a grid with hundreds of
//     scenarios solves each distinct control problem once.
//   - Streaming aggregation: per-run metrics fold into per-cell Welford
//     summaries (emulation.Accumulator) in scenario-index order, without
//     retaining traces.
//
// Beyond one machine, the same records flow through three scale-out
// layers, each byte-identical to a local run: static sharding
// (Shard/ReadShardSet), durable checkpoints (CreateCheckpoint /
// ReadCheckpoint, with -resume dedupe), and the distributed coordinator
// (Coordinate/ConnectWorker over internal/fleet/proto), which leases
// index-contiguous scenario ranges to remote workers and re-leases them
// from dead ones. docs/ARCHITECTURE.md maps these layers to the paper and
// states the determinism contract they rely on; docs/OPERATIONS.md is the
// coordinator runbook.
package fleet

import (
	"errors"
	"fmt"

	"tolerance/internal/baselines"
	"tolerance/internal/emulation"
	"tolerance/internal/nodemodel"
	"tolerance/internal/strategies"
)

// ErrBadSuite is returned for invalid suite definitions.
var ErrBadSuite = errors.New("fleet: bad suite")

// PolicyKind names a registered control strategy for a grid cell. Any name
// in the strategy registry (internal/strategies) is a valid kind: the four
// §VIII-B strategies of Table 7, the Algorithm 1 learned kinds
// ("learned:cem", "learned:de", "learned:bo", "learned:spsa",
// "learned:random"), "learned:ppo", and any strategy registered through the
// public facade.
type PolicyKind string

// The four strategies of Table 7.
const (
	PolicyTolerance        PolicyKind = "TOLERANCE"
	PolicyNoRecovery       PolicyKind = "NO-RECOVERY"
	PolicyPeriodic         PolicyKind = "PERIODIC"
	PolicyPeriodicAdaptive PolicyKind = "PERIODIC-ADAPTIVE"
)

// Valid reports whether the kind is a registered strategy.
func (k PolicyKind) Valid() bool {
	_, ok := strategies.Lookup(string(k))
	return ok
}

// PolicyKinds lists every registered strategy name in sorted order — the
// valid values for Suite.Policies and suite-file "policies" entries.
func PolicyKinds() []PolicyKind {
	names := strategies.Names()
	kinds := make([]PolicyKind, len(names))
	for i, n := range names {
		kinds[i] = PolicyKind(n)
	}
	return kinds
}

// LearnedConfig tunes the training budget of the learned:* policy kinds in
// a suite (zero fields select the strategy defaults). It is part of the
// suite schema so learned grids are reproducible from the JSON alone.
type LearnedConfig struct {
	// Budget is the Algorithm 1 objective-evaluation budget.
	Budget int `json:"budget,omitempty"`
	// Episodes is M, the Monte-Carlo episodes per objective evaluation.
	Episodes int `json:"episodes,omitempty"`
	// Horizon is the simulated episode length.
	Horizon int `json:"horizon,omitempty"`
	// Iterations is the PPO rollout/update cycle count.
	Iterations int `json:"iterations,omitempty"`
	// Workers bounds the concurrent candidate/rollout evaluations inside
	// one learned training run (0 defaults to GOMAXPROCS). Training is
	// bit-identical for any value, so Workers — unlike the budget fields —
	// is a throughput knob, not part of the grid's identity: it is excluded
	// from Suite.Fingerprint, and checkpoints written at one value resume
	// and merge with runs at another.
	Workers int `json:"workers,omitempty"`
}

// CrashProfile pairs the two crash probabilities of eq. (2): pC1 in the
// healthy state, pC2 in the compromised state.
type CrashProfile struct {
	PC1 float64 `json:"pc1"`
	PC2 float64 `json:"pc2"`
}

// Suite is a declarative scenario grid. Every axis slice is a grid
// dimension; leaving one empty selects a single default value, so the
// expanded scenario count is the product of the non-empty axis lengths
// times len(Policies) times SeedsPerCell.
type Suite struct {
	// Name identifies the suite in CLI output and reports.
	Name string `json:"name"`
	// Description is a one-line summary for suite listings.
	Description string `json:"description,omitempty"`
	// Seed is the master seed; every scenario seed derives from it and the
	// scenario index.
	Seed int64 `json:"seed"`
	// SeedsPerCell is the number of evaluation seeds per grid cell
	// (default 3; the paper's Table 7 uses 20).
	SeedsPerCell int `json:"seedsPerCell"`
	// Steps per scenario run (default 500).
	Steps int `json:"steps"`
	// FitSamples is M for the Ẑ estimation (default 2000 — reduced from
	// the paper's 25,000 to keep wide grids fast; override per suite).
	FitSamples int `json:"fitSamples"`
	// EpsilonA is the availability bound for TOLERANCE's replication LP
	// (default 0.9).
	EpsilonA float64 `json:"epsilonA"`
	// SMax caps the replication factor (default 13, Table 3).
	SMax int `json:"smax"`
	// K is the number of parallel recoveries allowed (default 1).
	K int `json:"k"`

	// AttackRates grids the attacker campaign intensity pA (default {0.1}).
	AttackRates []float64 `json:"attackRates,omitempty"`
	// CrashProfiles grids (pC1, pC2) (default Table 8: {1e-5, 1e-3}).
	CrashProfiles []CrashProfile `json:"crashProfiles,omitempty"`
	// UpdateRates grids pU (default {0.02}).
	UpdateRates []float64 `json:"updateRates,omitempty"`
	// Etas grids the eq. (5) cost weight (default {2}).
	Etas []float64 `json:"etas,omitempty"`
	// Workloads grids the background client population (default Table 8:
	// Poisson(20) arrivals, mean service 4 steps).
	Workloads []emulation.BackgroundWorkload `json:"workloads,omitempty"`
	// N1s grids the initial system size (default {6}).
	N1s []int `json:"n1s,omitempty"`
	// DeltaRs grids the BTR bound (default {15}; use
	// recovery.InfiniteDeltaR for the unconstrained problem).
	DeltaRs []int `json:"deltaRs,omitempty"`
	// Policies grids the control strategy (default: all four of Table 7).
	// Any registered strategy name is valid, including the learned kinds.
	Policies []PolicyKind `json:"policies,omitempty"`

	// Backends grids the scenario execution substrate (registered
	// ScenarioBackend names). Empty selects the default "emulation"
	// backend, exactly as every suite before the axis existed — the field
	// is deliberately NOT filled by withDefaults, so legacy suites and
	// their dumps, fingerprints and scenario indices are untouched. Suites
	// that name any backend require suite-file version 2.
	Backends []string `json:"backends,omitempty"`

	// Learned tunes the training budget for learned:* policy kinds; nil
	// keeps the strategy defaults.
	Learned *LearnedConfig `json:"learned,omitempty"`
}

// withDefaults fills every empty axis and scalar.
func (s Suite) withDefaults() Suite {
	if s.SeedsPerCell <= 0 {
		s.SeedsPerCell = 3
	}
	if s.Steps <= 0 {
		s.Steps = 500
	}
	if s.FitSamples <= 0 {
		s.FitSamples = 2000
	}
	if s.EpsilonA <= 0 {
		s.EpsilonA = 0.9
	}
	if s.SMax <= 0 {
		s.SMax = 13
	}
	if s.K <= 0 {
		s.K = 1
	}
	if len(s.AttackRates) == 0 {
		s.AttackRates = []float64{0.1}
	}
	if len(s.CrashProfiles) == 0 {
		s.CrashProfiles = []CrashProfile{{PC1: 1e-5, PC2: 1e-3}}
	}
	if len(s.UpdateRates) == 0 {
		s.UpdateRates = []float64{0.02}
	}
	if len(s.Etas) == 0 {
		s.Etas = []float64{2}
	}
	if len(s.Workloads) == 0 {
		s.Workloads = []emulation.BackgroundWorkload{emulation.DefaultBackgroundWorkload()}
	}
	if len(s.N1s) == 0 {
		s.N1s = []int{6}
	}
	if len(s.DeltaRs) == 0 {
		s.DeltaRs = []int{15}
	}
	if len(s.Policies) == 0 {
		s.Policies = []PolicyKind{
			PolicyTolerance, PolicyNoRecovery, PolicyPeriodic, PolicyPeriodicAdaptive,
		}
	}
	return s
}

// Validate checks the (defaulted) suite.
func (s Suite) Validate() error {
	s = s.withDefaults()
	for _, pa := range s.AttackRates {
		if pa <= 0 || pa >= 1 {
			return fmt.Errorf("%w: attack rate %v", ErrBadSuite, pa)
		}
	}
	for _, cp := range s.CrashProfiles {
		if cp.PC1 <= 0 || cp.PC1 >= 1 || cp.PC2 <= 0 || cp.PC2 >= 1 {
			return fmt.Errorf("%w: crash profile %+v", ErrBadSuite, cp)
		}
	}
	for _, pu := range s.UpdateRates {
		if pu <= 0 || pu >= 1 {
			return fmt.Errorf("%w: update rate %v", ErrBadSuite, pu)
		}
	}
	for _, eta := range s.Etas {
		if eta < 1 {
			return fmt.Errorf("%w: eta %v", ErrBadSuite, eta)
		}
	}
	for _, n1 := range s.N1s {
		if n1 < 1 || n1 > s.SMax {
			return fmt.Errorf("%w: N1 %d with smax %d", ErrBadSuite, n1, s.SMax)
		}
	}
	for _, dr := range s.DeltaRs {
		if dr < 0 {
			return fmt.Errorf("%w: deltaR %d", ErrBadSuite, dr)
		}
	}
	for _, p := range s.Policies {
		if !p.Valid() {
			return fmt.Errorf("%w: unknown policy %q (known: %v)",
				ErrBadSuite, p, strategies.Names())
		}
	}
	seenBackends := make(map[string]bool, len(s.Backends))
	for _, b := range s.Backends {
		if _, ok := LookupBackend(b); !ok {
			return fmt.Errorf("%w: unknown backend %q (known: %v)",
				ErrBadSuite, b, BackendNames())
		}
		if seenBackends[b] {
			return fmt.Errorf("%w: duplicate backend %q", ErrBadSuite, b)
		}
		seenBackends[b] = true
	}
	if lc := s.Learned; lc != nil {
		if lc.Budget < 0 || lc.Episodes < 0 || lc.Horizon < 0 || lc.Iterations < 0 || lc.Workers < 0 {
			return fmt.Errorf("%w: negative learned config %+v", ErrBadSuite, *lc)
		}
	}
	if s.EpsilonA >= 1 {
		return fmt.Errorf("%w: epsilonA %v", ErrBadSuite, s.EpsilonA)
	}
	return nil
}

// Cell is one concrete grid point: a full model/workload/size/policy
// configuration evaluated across SeedsPerCell seeds.
type Cell struct {
	// Index is the cell's position in expansion order.
	Index int `json:"index"`
	// Policy is the control strategy under evaluation.
	Policy PolicyKind `json:"policy"`
	// PA, PC1, PC2, PU, Eta are the node-model parameters of eq. (2)-(5).
	PA  float64 `json:"pa"`
	PC1 float64 `json:"pc1"`
	PC2 float64 `json:"pc2"`
	PU  float64 `json:"pu"`
	Eta float64 `json:"eta"`
	// Workload is the background client population.
	Workload emulation.BackgroundWorkload `json:"workload"`
	// N1, SMax, K and DeltaR shape the system-level scenario.
	N1     int `json:"n1"`
	SMax   int `json:"smax"`
	K      int `json:"k"`
	DeltaR int `json:"deltaR"`
	// F is the tolerance threshold (the paper's rule min((N1-1)/2, 2)).
	F int `json:"f"`
	// Backend names the scenario backend executing this cell. The
	// canonical value for the default emulation backend is the empty
	// string ("emulation" in a suite normalizes to it during expansion),
	// so legacy cells — and their JSON — are byte-identical to the
	// pre-backend schema.
	Backend string `json:"backend,omitempty"`
}

// Cells expands the suite grid in a fixed documented order: backend
// outermost (suites without the axis expand exactly as before it existed),
// then attack rate, crash profile, update rate, eta, workload, N1, DeltaR,
// and policy innermost. The order is part of the reproducibility contract —
// scenario indices (and therefore seeds) follow it.
func (s Suite) Cells() []Cell {
	s = s.withDefaults()
	backends := s.Backends
	if len(backends) == 0 {
		backends = []string{BackendEmulation}
	}
	var cells []Cell
	for _, be := range backends {
		backend := be
		if backend == BackendEmulation {
			// Canonical spelling of the default backend is "", keeping
			// legacy cells and their serialization unchanged.
			backend = ""
		}
		for _, pa := range s.AttackRates {
			for _, cp := range s.CrashProfiles {
				for _, pu := range s.UpdateRates {
					for _, eta := range s.Etas {
						for _, wl := range s.Workloads {
							for _, n1 := range s.N1s {
								for _, dr := range s.DeltaRs {
									for _, pol := range s.Policies {
										cells = append(cells, Cell{
											Index:    len(cells),
											Policy:   pol,
											PA:       pa,
											PC1:      cp.PC1,
											PC2:      cp.PC2,
											PU:       pu,
											Eta:      eta,
											Workload: wl,
											N1:       n1,
											SMax:     s.SMax,
											K:        s.K,
											DeltaR:   dr,
											F:        emulation.DefaultThreshold(n1),
											Backend:  backend,
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return cells
}

// NumCells returns the grid size.
func (s Suite) NumCells() int {
	s = s.withDefaults()
	return max(1, len(s.Backends)) * len(s.AttackRates) * len(s.CrashProfiles) *
		len(s.UpdateRates) * len(s.Etas) * len(s.Workloads) * len(s.N1s) *
		len(s.DeltaRs) * len(s.Policies)
}

// NumScenarios returns the total number of emulation runs the suite expands
// to.
func (s Suite) NumScenarios() int {
	s = s.withDefaults()
	return s.NumCells() * s.SeedsPerCell
}

// params assembles the cell's node model on the Table 8 observation
// distributions.
func (c Cell) params() nodemodel.Params {
	p := nodemodel.DefaultParams()
	p.PA, p.PC1, p.PC2, p.PU, p.Eta = c.PA, c.PC1, c.PC2, c.PU, c.Eta
	return p
}

// spec assembles the strategy-construction spec for the cell under the
// (defaulted) suite: the cell's model and shape plus the suite's
// availability bound and learned-training budget.
func (c Cell) spec(s Suite) strategies.Spec {
	sp := strategies.Spec{
		Params:   c.params(),
		N1:       c.N1,
		SMax:     c.SMax,
		F:        c.F,
		K:        c.K,
		DeltaR:   c.DeltaR,
		EpsilonA: s.EpsilonA,
	}
	if lc := s.Learned; lc != nil {
		sp.Budget, sp.Episodes, sp.Horizon, sp.Iterations =
			lc.Budget, lc.Episodes, lc.Horizon, lc.Iterations
		sp.Workers = lc.Workers
	}
	return sp
}

// scenario builds the emulation scenario for one seed of the cell.
func (c Cell) scenario(policy baselines.Policy, seed int64, steps, fitSamples int) emulation.Scenario {
	return emulation.Scenario{
		N1:         c.N1,
		SMax:       c.SMax,
		K:          c.K,
		F:          c.F,
		DeltaR:     c.DeltaR,
		Steps:      steps,
		Seed:       seed,
		Params:     c.params(),
		Policy:     policy,
		FitSamples: fitSamples,
		Workload:   c.Workload,
	}
}

// Builtin returns the built-in suites:
//
//   - paper-grid: the §VIII evaluation region — attack rates, BTR bounds
//     and system sizes around Table 7, all four strategies (192 scenarios).
//   - scada-sweep: the SCADA configuration of examples/scada (crash-heavy
//     power-grid substations) swept over crash severity, workload and
//     system size (192 scenarios).
//   - smoke: a four-scenario suite for CI and quick checks.
//   - learned-smoke: Algorithm 1 (CEM) vs the exact DP strategy on a tiny
//     grid — the learned policy kinds exercised end to end.
//   - cluster-smoke: a two-scenario suite on the "cluster" backend — every
//     scenario drives a live MinBFT replica group over loopback TCP with
//     real process restarts (statistically reproducible, not byte-stable).
func Builtin() []Suite {
	return []Suite{
		{
			Name:         "paper-grid",
			Description:  "Table 7 region: pA x DeltaR x N1 x all four strategies",
			Seed:         1,
			SeedsPerCell: 4,
			Steps:        500,
			AttackRates:  []float64{0.05, 0.1},
			N1s:          []int{3, 6, 9},
			DeltaRs:      []int{15, 25},
			Policies: []PolicyKind{
				PolicyTolerance, PolicyNoRecovery, PolicyPeriodic, PolicyPeriodicAdaptive,
			},
		},
		{
			Name:         "scada-sweep",
			Description:  "examples/scada regime: crash-heavy grid control, swept over crash severity and workload",
			Seed:         1,
			SeedsPerCell: 2,
			Steps:        400,
			EpsilonA:     0.9,
			// examples/scada: pA = 0.08, pC1 = 5e-3, pC2 = 2e-2; the sweep
			// scales crash severity x1, x2, x4 (field-deployment spread).
			AttackRates: []float64{0.08},
			CrashProfiles: []CrashProfile{
				{PC1: 5e-3, PC2: 2e-2},
				{PC1: 1e-2, PC2: 4e-2},
				{PC1: 2e-2, PC2: 8e-2},
			},
			Workloads: []emulation.BackgroundWorkload{
				{Lambda: 20, MeanServiceSteps: 4}, // Table 8 web workload
				{Lambda: 4, MeanServiceSteps: 25}, // SCADA: few long-lived operator sessions
			},
			N1s:     []int{6, 9},
			DeltaRs: []int{25, 50},
			Policies: []PolicyKind{
				PolicyTolerance, PolicyNoRecovery, PolicyPeriodic, PolicyPeriodicAdaptive,
			},
		},
		{
			Name:         "smoke",
			Description:  "four-scenario sanity suite for CI",
			Seed:         1,
			SeedsPerCell: 2,
			Steps:        120,
			FitSamples:   500,
			AttackRates:  []float64{0.1},
			N1s:          []int{3},
			DeltaRs:      []int{15},
			Policies:     []PolicyKind{PolicyTolerance, PolicyPeriodic},
		},
		{
			Name:         "learned-smoke",
			Description:  "learned:cem vs the exact DP strategy on a tiny grid",
			Seed:         1,
			SeedsPerCell: 2,
			Steps:        120,
			FitSamples:   500,
			AttackRates:  []float64{0.1},
			N1s:          []int{3},
			DeltaRs:      []int{15},
			Policies:     []PolicyKind{PolicyTolerance, PolicyKind("learned:cem")},
			Learned:      &LearnedConfig{Budget: 40, Episodes: 8, Horizon: 80},
		},
		{
			Name:         "cluster-smoke",
			Description:  "live MinBFT replica group over loopback TCP (backend: cluster)",
			Seed:         1,
			SeedsPerCell: 1,
			Steps:        40,
			FitSamples:   500,
			SMax:         6,
			// Hot enough that the 40-step budget reliably sees intrusions
			// and crashes on a 4-replica group, but cool enough that the
			// group holds quorum for most of the run.
			AttackRates:   []float64{0.12},
			CrashProfiles: []CrashProfile{{PC1: 2e-2, PC2: 4e-2}},
			N1s:           []int{4},
			DeltaRs:       []int{8},
			Policies:      []PolicyKind{PolicyTolerance, PolicyPeriodic},
			Backends:      []string{BackendCluster},
		},
	}
}

// Lookup resolves a built-in suite by name.
func Lookup(name string) (Suite, error) {
	for _, s := range Builtin() {
		if s.Name == name {
			return s, nil
		}
	}
	return Suite{}, fmt.Errorf("%w: unknown suite %q", ErrBadSuite, name)
}
