package fleet

import (
	"testing"
	"time"
)

func TestExpBackoffGrowsJitteredAndCapped(t *testing.T) {
	bo := newBackoff(100*time.Millisecond, time.Second, "w1:7001/wait")
	prev := time.Duration(0)
	for i := 0; i < 12; i++ {
		d := bo.next()
		if d <= 0 {
			t.Fatalf("step %d: non-positive delay %v", i, d)
		}
		if d >= time.Second {
			t.Fatalf("step %d: delay %v at or above the cap", i, d)
		}
		// Jitter lands in [sched/2, sched) where sched doubles to the cap,
		// so every delay is below the cap and the early ones stay small.
		if i == 0 && d >= 100*time.Millisecond {
			t.Fatalf("first delay %v should be jittered below base", d)
		}
		if i >= 6 && d < 250*time.Millisecond {
			t.Fatalf("step %d: delay %v has not grown toward the cap", i, d)
		}
		prev = d
	}
	_ = prev

	bo.reset()
	if d := bo.next(); d >= 100*time.Millisecond {
		t.Fatalf("after reset, delay %v should be back at jittered base", d)
	}
}

func TestExpBackoffIsDeterministicPerIdentity(t *testing.T) {
	seq := func(id string) []time.Duration {
		bo := newBackoff(50*time.Millisecond, time.Second, id)
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = bo.next()
		}
		return out
	}
	a, b := seq("w1:7001/dial"), seq("w1:7001/dial")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same identity diverged at step %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := seq("w2:7002/dial")
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different identities produced the identical jitter schedule — no stagger")
	}
}

func TestClampServerBackoff(t *testing.T) {
	hb := 200 * time.Millisecond
	cases := []struct {
		millis int
		want   time.Duration
	}{
		{0, hb},                       // legacy zero falls back to the heartbeat
		{-5, hb},                      // nonsense falls back too
		{1, minServerBackoff},         // too eager: floored
		{3_600_000, maxServerBackoff}, // an hour: ceilinged
		{500, 500 * time.Millisecond}, // sane hints pass through
	}
	for _, tc := range cases {
		if got := clampServerBackoff(tc.millis, hb); got != tc.want {
			t.Errorf("clampServerBackoff(%d) = %v, want %v", tc.millis, got, tc.want)
		}
	}
}
