package fleet

import (
	"fmt"
	"strconv"
	"strings"

	"tolerance/internal/emulation"
)

// Shard selects a deterministic slice of a suite's expanded scenario index
// set: shard i of n runs exactly the indices with index mod n == i.
// Round-robin assignment interleaves the seeds of every grid cell across
// shards, so expensive cells spread evenly and n machines finish together.
// The zero value (Count 0) means "the whole suite".
type Shard struct {
	// Index identifies this shard, 0 <= Index < Count.
	Index int `json:"index"`
	// Count is the total number of shards; 0 or 1 disables sharding.
	Count int `json:"count"`
}

// ParseShard parses the CLI form "i/n" (e.g. "0/4").
func ParseShard(s string) (Shard, error) {
	idx, cnt, ok := strings.Cut(s, "/")
	i, err1 := strconv.Atoi(idx)
	n, err2 := strconv.Atoi(cnt)
	if !ok || err1 != nil || err2 != nil {
		return Shard{}, fmt.Errorf("%w: shard %q, want i/n", ErrBadSuite, s)
	}
	sh := Shard{Index: i, Count: n}
	if err := sh.Validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

// Validate checks the shard bounds.
func (s Shard) Validate() error {
	if s.Count < 0 || s.Index < 0 || (s.Count > 0 && s.Index >= s.Count) {
		return fmt.Errorf("%w: shard %d/%d", ErrBadSuite, s.Index, s.Count)
	}
	return nil
}

// IsWhole reports whether the shard covers every scenario.
func (s Shard) IsWhole() bool { return s.Count <= 1 }

// Contains reports whether the scenario index belongs to this shard.
func (s Shard) Contains(index int) bool {
	return s.IsWhole() || index%s.Count == s.Index
}

// Indices enumerates the shard's scenario indices in ascending order, out
// of a suite with the given total scenario count.
func (s Shard) Indices(total int) []int {
	n := max(s.Count, 1)
	out := make([]int, 0, (total+n-1)/n)
	for i := 0; i < total; i++ {
		if s.Contains(i) {
			out = append(out, i)
		}
	}
	return out
}

// String formats the shard as "i/n" ("0/1" for a whole run).
func (s Shard) String() string {
	if s.IsWhole() {
		return "0/1"
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// MergeRecords folds per-scenario run records — the union of one or more
// shard result files — back into the aggregate Result a single-machine run
// of the suite would produce. The records must cover the suite's scenario
// index set exactly; folding replays the engine's fixed fold topology — a
// per-cell Welford partial per run of consecutive records inside each
// foldSpan-wide batch, partials merged in batch order — so every
// floating-point operation happens in the same order with the same
// operands as in an unsharded run and the merged Result serializes
// byte-identically.
func MergeRecords(suite Suite, records map[int]RunRecord) (*Result, error) {
	suite = suite.withDefaults()
	if err := suite.Validate(); err != nil {
		return nil, err
	}
	cells := suite.Cells()
	total := len(cells) * suite.SeedsPerCell
	if len(records) != total {
		return nil, fmt.Errorf("%w: merge has %d records, suite expands to %d scenarios",
			ErrBadSuite, len(records), total)
	}
	accs := make([]emulation.Accumulator, len(cells))
	var part emulation.Accumulator
	partCell := -1
	for i := 0; i < total; i++ {
		rec, ok := records[i]
		if !ok {
			return nil, fmt.Errorf("%w: merge is missing scenario %d", ErrBadSuite, i)
		}
		if want := i / suite.SeedsPerCell; rec.Cell != want {
			return nil, fmt.Errorf("%w: scenario %d records cell %d, want %d",
				ErrBadSuite, i, rec.Cell, want)
		}
		// A whole run schedules index i at position i, so a new partial
		// starts at every batch boundary and every cell change — exactly the
		// engine's worker-side pre-fold spans.
		if i%foldSpan == 0 || rec.Cell != partCell {
			if partCell >= 0 {
				accs[partCell].Merge(&part)
			}
			part, partCell = emulation.Accumulator{}, rec.Cell
		}
		m := rec.Metrics
		part.Add(&m)
	}
	if partCell >= 0 {
		accs[partCell].Merge(&part)
	}
	return resultFromAccs(suite, cells, accs, total), nil
}
