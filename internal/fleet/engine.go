package fleet

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"tolerance/internal/baselines"
	"tolerance/internal/emulation"
	"tolerance/internal/recovery"
)

// dpConfigFor is the fleet's Problem 1 solver configuration (the GridSize
// 300 of the Compare harness — accurate thresholds at grid-sweep speed).
func dpConfigFor(deltaR int) recovery.DPConfig {
	return recovery.DPConfig{DeltaR: deltaR, GridSize: 300}
}

// Config tunes one fleet execution.
type Config struct {
	// Workers bounds the worker pool (default min(GOMAXPROCS, 8)).
	Workers int
	// Cache supplies a shared strategy cache; nil creates a fresh one.
	// Sharing a cache across suite runs with overlapping grids avoids
	// re-solving common control problems.
	Cache *StrategyCache
	// Progress, when set, is called after every folded scenario with the
	// number folded so far and the total (from the aggregator goroutine).
	Progress func(done, total int)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	if c.Cache == nil {
		c.Cache = NewStrategyCache()
	}
	return c
}

// CellResult is one grid cell's streamed aggregate over its seeds.
type CellResult struct {
	Cell Cell `json:"cell"`
	// Runs is the number of scenario runs folded into the aggregate.
	Runs int64 `json:"runs"`
	// Aggregate holds the Welford summaries: T(A), T(A,quorum), T(R),
	// F(R), average nodes and average eq. (5) cost, each with a 95% CI.
	Aggregate emulation.Aggregate `json:"aggregate"`
}

// Result is a full fleet execution report. It contains only deterministic
// quantities: running the same suite with any worker count produces a
// byte-identical serialization.
type Result struct {
	Suite     string       `json:"suite"`
	Seed      int64        `json:"seed"`
	Scenarios int          `json:"scenarios"`
	Cells     []CellResult `json:"cells"`
	Cache     CacheStats   `json:"cache"`
}

// scenarioSeed derives a scenario's rng seed from the suite seed and the
// scenario index with a splitmix64-style mix, so neighbouring indices get
// decorrelated streams and results never depend on worker scheduling.
func scenarioSeed(suiteSeed int64, index int) int64 {
	x := uint64(suiteSeed)*0x9e3779b97f4a7c15 + uint64(index) + 1
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// Run expands the suite and executes every scenario on a bounded worker
// pool. Per-run metrics stream into per-cell Welford accumulators in strict
// scenario-index order, so the aggregates are bit-identical for any worker
// count; with the strategy cache each distinct control problem is solved
// exactly once.
func Run(ctx context.Context, suite Suite, cfg Config) (*Result, error) {
	suite = suite.withDefaults()
	if err := suite.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	cells := suite.Cells()
	total := len(cells) * suite.SeedsPerCell
	if total == 0 {
		return nil, fmt.Errorf("%w: empty grid", ErrBadSuite)
	}

	type job struct {
		index int
		cell  *Cell
	}
	type outcome struct {
		index   int
		cell    int
		metrics *emulation.Metrics
		err     error
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan job)
	outcomes := make(chan outcome, cfg.Workers)

	// Dispatcher: scenarios in index order (cell-major, seeds within).
	go func() {
		defer close(jobs)
		for i := range cells {
			for s := 0; s < suite.SeedsPerCell; s++ {
				select {
				case jobs <- job{index: i*suite.SeedsPerCell + s, cell: &cells[i]}:
				case <-ctx.Done():
					return
				}
			}
		}
	}()

	// Workers: construct the cell's policy through the cache, then run.
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				policy, err := cfg.Cache.policyFor(*j.cell, suite.EpsilonA)
				var m *emulation.Metrics
				if err == nil {
					sc := j.cell.scenario(policy,
						scenarioSeed(suite.Seed, j.index), suite.Steps, suite.FitSamples)
					m, err = emulation.Run(sc)
				}
				select {
				case outcomes <- outcome{index: j.index, cell: j.cell.Index, metrics: m, err: err}:
				case <-ctx.Done():
					return
				}
				if err != nil {
					cancel() // fail fast; the aggregator reports the error
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(outcomes)
	}()

	// Aggregator: fold in strict scenario-index order. Out-of-order
	// completions park in a small reorder buffer (bounded in practice by
	// the worker count) so the Welford folds — and therefore every floating
	// point result — are independent of scheduling.
	accs := make([]emulation.Accumulator, len(cells))
	pending := make(map[int]outcome)
	next := 0
	var firstErr error
	for oc := range outcomes {
		if oc.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("fleet: scenario %d (cell %d): %w", oc.index, oc.cell, oc.err)
			}
			continue
		}
		pending[oc.index] = oc
		for {
			got, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			accs[got.cell].Add(got.metrics)
			next++
			if cfg.Progress != nil {
				cfg.Progress(next, total)
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if next != total {
		return nil, fmt.Errorf("fleet: folded %d of %d scenarios", next, total)
	}

	out := &Result{
		Suite:     suite.Name,
		Seed:      suite.Seed,
		Scenarios: total,
		Cells:     make([]CellResult, len(cells)),
		Cache:     cfg.Cache.Stats(),
	}
	for i := range cells {
		out.Cells[i] = CellResult{
			Cell:      cells[i],
			Runs:      accs[i].Runs(),
			Aggregate: *accs[i].Aggregate(),
		}
	}
	return out, nil
}

// policyFor constructs the cell's control policy, routing the two control
// problems through the cache for TOLERANCE cells.
func (c *StrategyCache) policyFor(cell Cell, epsilonA float64) (baselines.Policy, error) {
	switch cell.Policy {
	case PolicyNoRecovery:
		return baselines.NoRecovery{}, nil
	case PolicyPeriodic:
		return baselines.Periodic{}, nil
	case PolicyPeriodicAdaptive:
		return baselines.PeriodicAdaptive{TargetN: cell.N1}, nil
	case PolicyTolerance:
		dp, err := c.Recovery(cell.params(), dpConfigFor(cell.DeltaR))
		if err != nil {
			return nil, err
		}
		rec := dp.Strategy(cell.DeltaR)
		rep, err := c.Replication(cell.params(), rec, cell.SMax, cell.F, epsilonA, cell.DeltaR)
		if err != nil {
			return nil, err
		}
		return baselines.NewTolerance(rec, rep)
	default:
		return nil, fmt.Errorf("%w: policy %q", ErrBadSuite, cell.Policy)
	}
}
