package fleet

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"tolerance/internal/baselines"
	"tolerance/internal/emulation"
)

// Config tunes one fleet execution.
type Config struct {
	// Workers bounds the worker pool (default min(GOMAXPROCS, 8)).
	Workers int
	// Cache supplies a shared strategy cache; nil creates a fresh one.
	// Sharing a cache across suite runs with overlapping grids avoids
	// re-solving common control problems and re-fitting observation
	// models.
	Cache *StrategyCache
	// NoFitCache disables the shared offline Ẑ fit: every scenario
	// refits its observation models inline. The fit seed is the same
	// either way (one per suite, derived from the suite master seed), so
	// output is byte-identical with or without the cache — this switch
	// exists for diagnostics and for the equivalence test, not for
	// production runs.
	NoFitCache bool
	// Progress, when set, is called after every folded scenario with the
	// number folded so far and the number scheduled (from the aggregator
	// goroutine).
	Progress func(done, total int)
	// Shard restricts the run to a deterministic slice of the scenario
	// index set (the zero value runs everything). Per-index seeding makes
	// a sharded run execute exactly the scenarios — with exactly the rng
	// streams — that a whole run would.
	Shard Shard
	// Completed holds records of scenarios already finished by an earlier
	// (killed) run of the same suite and shard, keyed by scenario index.
	// They are folded from the stored metrics instead of re-executed, so
	// a resumed run completes with byte-identical output.
	Completed map[int]RunRecord
	// OnRecord, when set, receives every freshly executed scenario in
	// fold (index) order — the checkpoint write hook. An error aborts the
	// run.
	OnRecord func(RunRecord) error
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers > 8 {
			c.Workers = 8
		}
	}
	if c.Cache == nil {
		c.Cache = NewStrategyCache()
	}
	return c
}

// CellResult is one grid cell's streamed aggregate over its seeds.
type CellResult struct {
	Cell Cell `json:"cell"`
	// Runs is the number of scenario runs folded into the aggregate.
	Runs int64 `json:"runs"`
	// Aggregate holds the Welford summaries: T(A), T(A,quorum), T(R),
	// F(R), average nodes and average eq. (5) cost, each with a 95% CI.
	Aggregate emulation.Aggregate `json:"aggregate"`
}

// Result is a fleet execution report. It contains only deterministic
// quantities: running the same suite with any worker count — or as shards
// merged with MergeRecords — produces a byte-identical serialization.
// (Strategy-cache statistics are deliberately not part of it; they depend
// on how the run was partitioned. Read them from Config.Cache.)
type Result struct {
	Suite     string       `json:"suite"`
	Seed      int64        `json:"seed"`
	Scenarios int          `json:"scenarios"`
	Cells     []CellResult `json:"cells"`
}

// resultFromAccs assembles the Result shared by Run and MergeRecords, so
// both paths serialize identically by construction.
func resultFromAccs(suite Suite, cells []Cell, accs []emulation.Accumulator, scenarios int) *Result {
	out := &Result{
		Suite:     suite.Name,
		Seed:      suite.Seed,
		Scenarios: scenarios,
		Cells:     make([]CellResult, len(cells)),
	}
	for i := range cells {
		out.Cells[i] = CellResult{
			Cell:      cells[i],
			Runs:      accs[i].Runs(),
			Aggregate: *accs[i].Aggregate(),
		}
	}
	return out
}

// scenarioSeed derives a scenario's rng seed from the suite seed and the
// scenario index with a splitmix64-style mix, so neighbouring indices get
// decorrelated streams and results never depend on worker scheduling.
func scenarioSeed(suiteSeed int64, index int) int64 {
	x := uint64(suiteSeed)*0x9e3779b97f4a7c15 + uint64(index) + 1
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// Run expands the suite and executes every scheduled scenario — the whole
// grid, or the Config.Shard slice of it — on a bounded worker pool.
// Scenarios already present in Config.Completed fold from their stored
// metrics instead of re-running. Per-run metrics stream into per-cell
// Welford accumulators in strict scenario-index order, so the aggregates
// are bit-identical for any worker count; with the strategy cache each
// distinct control problem is solved exactly once.
func Run(ctx context.Context, suite Suite, cfg Config) (*Result, error) {
	suite = suite.withDefaults()
	if err := suite.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Shard.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	cells := suite.Cells()
	gridTotal := len(cells) * suite.SeedsPerCell
	if gridTotal == 0 {
		return nil, fmt.Errorf("%w: empty grid", ErrBadSuite)
	}
	sched := cfg.Shard.Indices(gridTotal)
	total := len(sched)
	if total == 0 {
		return nil, fmt.Errorf("%w: shard %s selects no scenarios of %d",
			ErrBadSuite, cfg.Shard, gridTotal)
	}
	for idx := range cfg.Completed {
		if idx < 0 || idx >= gridTotal || !cfg.Shard.Contains(idx) {
			return nil, fmt.Errorf("%w: completed scenario %d is outside shard %s",
				ErrBadSuite, idx, cfg.Shard)
		}
	}

	type job struct {
		pos   int // position in sched — the fold order
		index int // global scenario index — the seed and record identity
		cell  *Cell
	}
	type outcome struct {
		pos     int
		index   int
		cell    int
		fresh   bool
		metrics *emulation.Metrics
		err     error
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan job)
	outcomes := make(chan outcome, cfg.Workers)

	// Dispatcher: scheduled scenarios in index order (cell-major, seeds
	// within).
	go func() {
		defer close(jobs)
		for p, idx := range sched {
			select {
			case jobs <- job{pos: p, index: idx, cell: &cells[idx/suite.SeedsPerCell]}:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Workers: replay completed scenarios from their records; otherwise
	// construct the cell's policy and offline fit through the cache and
	// run. Every scenario of the suite shares one fit seed derived from
	// the master seed, so the Ẑ estimation happens once per suite instead
	// of once per scenario (the paper's offline training phase).
	fitSeed := emulation.FitStreamSeed(suite.Seed)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				var m *emulation.Metrics
				var err error
				fresh := true
				if rec, ok := cfg.Completed[j.index]; ok {
					stored := rec.Metrics
					m, fresh = &stored, false
				} else {
					var policy baselines.Policy
					policy, err = cfg.Cache.PolicyFor(ctx, *j.cell, suite)
					if err == nil {
						sc := j.cell.scenario(policy,
							scenarioSeed(suite.Seed, j.index), suite.Steps, suite.FitSamples)
						sc.FitSeed = fitSeed
						if !cfg.NoFitCache {
							sc.Fits, err = cfg.Cache.Fits(suite.FitSamples, fitSeed)
						}
						if err == nil {
							m, err = emulation.Run(sc)
						}
					}
				}
				select {
				case outcomes <- outcome{pos: j.pos, index: j.index, cell: j.cell.Index, fresh: fresh, metrics: m, err: err}:
				case <-ctx.Done():
					return
				}
				if err != nil {
					cancel() // fail fast; the aggregator reports the error
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(outcomes)
	}()

	// Aggregator: fold in strict scenario-index order. Out-of-order
	// completions park in a small reorder buffer (bounded in practice by
	// the worker count) so the Welford folds — and therefore every floating
	// point result — are independent of scheduling. Checkpoint records are
	// emitted from the same ordered drain, so a checkpoint file is always
	// an index-ordered prefix of the shard's work.
	accs := make([]emulation.Accumulator, len(cells))
	pending := make(map[int]outcome)
	next := 0
	var firstErr error
	for oc := range outcomes {
		if oc.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("fleet: scenario %d (cell %d): %w", oc.index, oc.cell, oc.err)
			}
			continue
		}
		pending[oc.pos] = oc
		for firstErr == nil {
			got, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			accs[got.cell].Add(got.metrics)
			next++
			if got.fresh && cfg.OnRecord != nil {
				if err := cfg.OnRecord(RunRecord{Index: got.index, Cell: got.cell, Metrics: *got.metrics}); err != nil {
					firstErr = fmt.Errorf("fleet: record scenario %d: %w", got.index, err)
					cancel()
				}
			}
			if cfg.Progress != nil {
				cfg.Progress(next, total)
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if next != total {
		return nil, fmt.Errorf("fleet: folded %d of %d scenarios", next, total)
	}

	return resultFromAccs(suite, cells, accs, total), nil
}
