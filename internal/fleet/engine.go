package fleet

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tolerance/internal/chaos"
	"tolerance/internal/dist"
	"tolerance/internal/emulation"
	"tolerance/internal/telemetry"
)

// Config tunes one fleet execution.
type Config struct {
	// Workers bounds the worker pool. Zero (or negative) defaults to
	// GOMAXPROCS; an explicit value is never capped or clamped, so runs may
	// pin a single worker or oversubscribe a host regardless of its core
	// count. (Earlier releases capped the default at 8 — that cap is gone,
	// and it never applied to explicit values.) Output is byte-identical
	// for every value.
	Workers int
	// Cache supplies a shared strategy cache; nil creates a fresh one.
	// Sharing a cache across suite runs with overlapping grids avoids
	// re-solving common control problems and re-fitting observation
	// models.
	Cache *StrategyCache
	// NoFitCache disables the shared offline Ẑ fit: every scenario
	// refits its observation models inline. The fit seed is the same
	// either way (one per suite, derived from the suite master seed), so
	// output is byte-identical with or without the cache — this switch
	// exists for diagnostics and for the equivalence test, not for
	// production runs.
	NoFitCache bool
	// Progress, when set, is called after every folded scenario with the
	// number folded so far and the number scheduled (from the aggregator
	// goroutine).
	Progress func(done, total int)
	// Shard restricts the run to a deterministic slice of the scenario
	// index set (the zero value runs everything). Per-index seeding makes
	// a sharded run execute exactly the scenarios — with exactly the rng
	// streams — that a whole run would.
	Shard Shard
	// Indices, when non-nil, schedules exactly this ascending list of
	// scenario indices instead of the Shard slice — the coordinator's
	// lease path, where workers execute index-contiguous ranges of the
	// suite (ConnectWorker). Per-index seeding keeps the executed records
	// identical to the ones a whole run would produce, which is what lets
	// the coordinator merge leases from many machines byte-identically.
	// Mutually exclusive with a non-whole Shard.
	Indices []int
	// Completed holds records of scenarios already finished by an earlier
	// (killed) run of the same suite and shard, keyed by scenario index.
	// They are folded from the stored metrics instead of re-executed, so
	// a resumed run completes with byte-identical output.
	Completed map[int]RunRecord
	// OnRecord, when set, receives every freshly executed scenario in
	// fold (index) order — the checkpoint write hook. An error aborts the
	// run.
	OnRecord func(RunRecord) error
	// Telemetry, when set, receives the run's live metrics (fleet.* —
	// scenario starts/folds, batch claims, duration and step histograms,
	// worker busy time — plus the fleet.fit/fleet.run phase timings).
	// Telemetry is recorded strictly outside the rng and fold paths and is
	// allocation-free in steady state, so the Result — and the per-scenario
	// zero-allocation property — is byte-identical with or without it. To
	// include the strategy-cache statistics in the same snapshot, also call
	// Cache.Instrument with this collector.
	Telemetry *telemetry.Collector
	// Chaos, when set, is the armed fault-injection plan threaded to
	// non-emulation backends (the cluster backend wraps its replica links
	// with it). The in-process emulation path never touches the network or
	// disk, so the plan cannot perturb it — records stay a pure function of
	// (suite, index) and the byte-stability contract holds under chaos by
	// construction. nil disables injection.
	Chaos *chaos.Plan
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Cache == nil {
		c.Cache = NewStrategyCache()
	}
	return c
}

// CellResult is one grid cell's streamed aggregate over its seeds.
type CellResult struct {
	Cell Cell `json:"cell"`
	// Runs is the number of scenario runs folded into the aggregate.
	Runs int64 `json:"runs"`
	// Aggregate holds the Welford summaries: T(A), T(A,quorum), T(R),
	// F(R), average nodes and average eq. (5) cost, each with a 95% CI.
	Aggregate emulation.Aggregate `json:"aggregate"`
}

// Result is a fleet execution report. It contains only deterministic
// quantities: running the same suite with any worker count — or as shards
// merged with MergeRecords — produces a byte-identical serialization.
// (Strategy-cache statistics are deliberately not part of it; they depend
// on how the run was partitioned. Read them from Config.Cache.)
type Result struct {
	Suite     string       `json:"suite"`
	Seed      int64        `json:"seed"`
	Scenarios int          `json:"scenarios"`
	Cells     []CellResult `json:"cells"`
}

// resultFromAccs assembles the Result shared by Run and MergeRecords, so
// both paths serialize identically by construction.
func resultFromAccs(suite Suite, cells []Cell, accs []emulation.Accumulator, scenarios int) *Result {
	out := &Result{
		Suite:     suite.Name,
		Seed:      suite.Seed,
		Scenarios: scenarios,
		Cells:     make([]CellResult, len(cells)),
	}
	for i := range cells {
		out.Cells[i] = CellResult{
			Cell:      cells[i],
			Runs:      accs[i].Runs(),
			Aggregate: accs[i].AggregateValue(),
		}
	}
	return out
}

// scenarioSeed derives a scenario's rng seed from the suite seed and the
// scenario index with the shared SplitMix64 finalizer, so neighbouring
// indices get decorrelated streams and results never depend on worker
// scheduling.
func scenarioSeed(suiteSeed int64, index int) int64 {
	return int64(dist.SplitMix64(uint64(suiteSeed)*dist.GoldenGamma + uint64(index) + 1))
}

// outcome is one executed (or replayed) scenario's result. Metrics travel
// by value inside pooled batch buffers, so the steady-state path moves no
// per-scenario allocation across the worker/aggregator boundary.
type outcome struct {
	index   int // global scenario index — the seed and record identity
	cell    int
	fresh   bool
	metrics emulation.Metrics
	err     error
}

// foldSpan is the fixed width, in scheduled positions, of one dispatch
// batch and one fold partial. It is a constant — a pure function of the
// schedule, never of the worker count or core count — because the partial
// boundaries are part of the determinism contract: the aggregator merges
// one partial per (batch, cell) run in batch order, so the floating-point
// fold tree is identical for every Workers value and GOMAXPROCS setting.
// MergeRecords replicates the same spans, which keeps whole runs,
// shard-merges, resumes and coordinator merges byte-identical to each
// other.
const foldSpan = 8

// cellPartial is one batch's pre-folded accumulator for a run of
// consecutive outcomes sharing a cell. Workers fold their own outcomes
// into partials so the aggregator does per-batch Merge calls instead of
// per-scenario Add calls — the folding work scales across cores while the
// merge tree stays fixed.
type cellPartial struct {
	cell int
	acc  emulation.Accumulator
}

// batchResult carries the outcomes of one contiguous slice of scheduled
// positions, [start, start+len(outs)), plus the worker's pre-folded
// per-cell partials over those outcomes. Buffers cycle through batchPool:
// workers take one per batch, the aggregator returns it after merging.
type batchResult struct {
	start int
	outs  []outcome
	parts []cellPartial
}

var batchPool = sync.Pool{New: func() any { return new(batchResult) }}

// cellState lazily resolves one grid cell's scenario template, at most once
// per Run, with an allocation-free double-checked fast path once resolved.
type cellState struct {
	done atomic.Bool
	mu   sync.Mutex
	sc   emulation.Scenario
	err  error
}

// Run expands the suite and executes every scheduled scenario — the whole
// grid, or the Config.Shard slice of it — on a bounded worker pool.
// Scenarios already present in Config.Completed fold from their stored
// metrics instead of re-running. Workers pre-fold each batch's metrics
// into per-cell Welford partials, and the aggregator merges the partials
// in strict batch order over fixed foldSpan-wide batches — the fold tree
// is a pure function of the schedule, so the aggregates are bit-identical
// for any worker count; with the strategy cache each distinct control
// problem is solved exactly once.
func Run(ctx context.Context, suite Suite, cfg Config) (*Result, error) {
	suite = suite.withDefaults()
	if err := suite.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Shard.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	cells := suite.Cells()
	gridTotal := len(cells) * suite.SeedsPerCell
	if gridTotal == 0 {
		return nil, fmt.Errorf("%w: empty grid", ErrBadSuite)
	}
	sched := cfg.Shard.Indices(gridTotal)
	scheduled := func(idx int) bool { return cfg.Shard.Contains(idx) }
	if cfg.Indices != nil {
		if !cfg.Shard.IsWhole() {
			return nil, fmt.Errorf("%w: Indices and a non-whole shard are mutually exclusive", ErrBadSuite)
		}
		prev := -1
		inSet := make(map[int]bool, len(cfg.Indices))
		for _, idx := range cfg.Indices {
			if idx <= prev || idx >= gridTotal {
				return nil, fmt.Errorf("%w: scheduled indices must be ascending, unique and in [0,%d)",
					ErrBadSuite, gridTotal)
			}
			prev = idx
			inSet[idx] = true
		}
		sched = cfg.Indices
		scheduled = func(idx int) bool { return inSet[idx] }
	}
	total := len(sched)
	if total == 0 {
		return nil, fmt.Errorf("%w: shard %s selects no scenarios of %d",
			ErrBadSuite, cfg.Shard, gridTotal)
	}
	for idx := range cfg.Completed {
		if idx < 0 || idx >= gridTotal || !scheduled(idx) {
			return nil, fmt.Errorf("%w: completed scenario %d is outside the scheduled set (shard %s)",
				ErrBadSuite, idx, cfg.Shard)
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Suite-wide offline fit, resolved once per run instead of once per
	// scenario: every scenario shares one fit seed derived from the master
	// seed, so the Ẑ estimation happens once per suite (the paper's offline
	// training phase). A run whose scheduled work is entirely replayed from
	// records never fits at all. With NoFitCache every scenario refits
	// inline from the same seed (diagnostic; byte-identical output).
	tm := newFleetMetrics(cfg.Telemetry)
	if tm != nil {
		cfg.Telemetry.Gauge(MetricScenariosTotal).Set(float64(total))
		cfg.Telemetry.Gauge(MetricWorkers).Set(float64(cfg.Workers))
	}

	fitSeed := emulation.FitStreamSeed(suite.Seed)
	var fits *emulation.FitSet
	if !cfg.NoFitCache && len(cfg.Completed) < total {
		var endFit func()
		if tm != nil {
			endFit = cfg.Telemetry.Phase("fleet.fit")
		}
		var err error
		if fits, err = cfg.Cache.Fits(suite.FitSamples, fitSeed); err != nil {
			return nil, err
		}
		if endFit != nil {
			endFit()
		}
	}
	if tm != nil {
		endRun := cfg.Telemetry.Phase("fleet.run")
		defer endRun()
	}

	// Per-run cell execution state: each scheduled cell resolves its policy
	// and scenario template at most once per run (replayed cells not at
	// all), with an allocation-free fast path after the first resolution.
	suiteFP := suite.Fingerprint()
	states := make([]cellState, len(cells))

	// Workers claim index-contiguous batches of scheduled positions through
	// one atomic counter — one channel round-trip per batch instead of two
	// per scenario — and execute them on a worker-resident emulation runner
	// whose node pool, rng streams and scratch survive from scenario to
	// scenario. The batch width is the fixed foldSpan, so the fold partials
	// each batch pre-computes are a pure function of the schedule. Outcome
	// buffers cycle through a pool, so the steady-state per-scenario path
	// allocates nothing.
	numBatches := (total + foldSpan - 1) / foldSpan

	outcomes := make(chan *batchResult, cfg.Workers)
	var nextBatch atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			runner := emulation.NewRunner()
			if tm != nil {
				runner.OnRun(func(steps int) { tm.steps.Observe(wid, int64(steps)) })
			}
			for ctx.Err() == nil {
				bi := int(nextBatch.Add(1)) - 1
				if bi >= numBatches {
					return
				}
				if tm != nil {
					tm.batches.Inc(wid)
				}
				start := bi * foldSpan
				end := min(start+foldSpan, total)
				br, _ := batchPool.Get().(*batchResult)
				br.start = start
				br.outs = br.outs[:0]
				br.parts = br.parts[:0]
				failed := false
				for pos := start; pos < end && !failed; pos++ {
					if ctx.Err() != nil {
						break // cancelled mid-batch: deliver the executed prefix
					}
					idx := sched[pos]
					cell := &cells[idx/suite.SeedsPerCell]
					oc := outcome{index: idx, cell: cell.Index, fresh: true}
					if rec, ok := cfg.Completed[idx]; ok {
						oc.metrics, oc.fresh = rec.Metrics, false
					} else {
						st := &states[cell.Index]
						if !st.done.Load() {
							st.mu.Lock()
							if !st.done.Load() {
								st.sc, st.err = cfg.Cache.scenarioFor(ctx, suiteFP, cell, suite)
								st.done.Store(true)
							}
							st.mu.Unlock()
						}
						if st.err != nil {
							oc.err = st.err
						} else {
							sc := st.sc
							sc.Seed = scenarioSeed(suite.Seed, idx)
							sc.FitSeed = fitSeed
							sc.Fits = fits
							// Cells on a non-default backend dispatch through
							// the registry; the default (emulation) path stays
							// on the worker-resident zero-allocation runner.
							var run func() (emulation.Metrics, error)
							if cell.Backend == "" {
								run = func() (emulation.Metrics, error) { return runner.RunInto(sc) }
							} else if be, ok := LookupBackend(cell.Backend); ok {
								run = func() (emulation.Metrics, error) {
									return be.Run(ctx, sc, BackendOptions{Telemetry: cfg.Telemetry, Shard: wid, Chaos: cfg.Chaos})
								}
							} else {
								// Unreachable after Validate — defensive.
								oc.err = fmt.Errorf("%w: unknown backend %q", ErrBadSuite, cell.Backend)
							}
							if oc.err != nil {
								// fall through to the shared error handling
							} else if tm == nil {
								oc.metrics, oc.err = run()
							} else {
								// Timing wraps the run from outside: the
								// scenario's rng streams are seeded purely
								// from (suite seed, index) above, so the
								// clock reads cannot perturb results.
								tm.started.Inc(wid)
								t0 := time.Now()
								oc.metrics, oc.err = run()
								d := int64(time.Since(t0))
								tm.busyNS.Add(wid, d)
								tm.durNS.Observe(wid, d)
							}
						}
					}
					br.outs = append(br.outs, oc)
					if oc.err == nil {
						// Pre-fold into the batch's cell partials. Scheduled
						// indices ascend within a batch, so cells are
						// non-decreasing and each cell is one contiguous run:
						// a new partial starts exactly at each cell change.
						if n := len(br.parts); n == 0 || br.parts[n-1].cell != oc.cell {
							br.parts = append(br.parts, cellPartial{cell: oc.cell})
						}
						br.parts[len(br.parts)-1].acc.Add(&oc.metrics)
					}
					failed = oc.err != nil
				}
				// The send is unconditional: the aggregator drains the
				// channel until every worker has exited, so delivery cannot
				// block — and must not be skipped, or a dropped batch ahead
				// of a failure in fold order would mask the real scenario
				// error behind the cancellation it triggered.
				outcomes <- br
				if failed {
					cancel() // fail fast; the aggregator reports the error
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(outcomes)
	}()

	// Aggregator: merge pre-folded batch partials in strict batch order.
	// Out-of-order batch completions park in a small reorder buffer
	// (bounded in practice by the worker count), and the partial spans are
	// fixed by foldSpan — so the Welford merge tree, and therefore every
	// floating-point result, is independent of scheduling and worker count.
	// Checkpoint records are emitted from the same ordered drain, so a
	// checkpoint file is always an index-ordered prefix of the shard's
	// work.
	accs := make([]emulation.Accumulator, len(cells))
	pending := make(map[int]*batchResult)
	next := 0
	var firstErr error
	for br := range outcomes {
		// Scenario errors are captured on receipt, not in fold order: a
		// cancelled sibling worker may have delivered only a prefix of an
		// earlier batch, so the ordered fold might never reach the batch
		// that carries the real failure.
		if firstErr == nil {
			for i := range br.outs {
				if err := br.outs[i].err; err != nil {
					firstErr = fmt.Errorf("fleet: scenario %d (cell %d): %w",
						br.outs[i].index, br.outs[i].cell, err)
					break
				}
			}
		}
		pending[br.start] = br
		for firstErr == nil {
			b, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			for pi := range b.parts {
				p := &b.parts[pi]
				accs[p.cell].Merge(&p.acc)
				if tm != nil {
					// The aggregator is a single goroutine; shard 0 is its
					// dedicated cell.
					tm.foldMerges.Inc(0)
				}
			}
			for i := range b.outs {
				oc := &b.outs[i]
				next++
				if tm != nil {
					tm.folded.Inc(0)
					if !oc.fresh {
						tm.replayed.Inc(0)
					}
				}
				if oc.fresh && cfg.OnRecord != nil {
					if err := cfg.OnRecord(RunRecord{Index: oc.index, Cell: oc.cell, Metrics: oc.metrics}); err != nil {
						firstErr = fmt.Errorf("fleet: record scenario %d: %w", oc.index, err)
						cancel()
						break
					}
				}
				if cfg.Progress != nil {
					cfg.Progress(next, total)
				}
			}
			batchPool.Put(b)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if next != total {
		return nil, fmt.Errorf("fleet: folded %d of %d scenarios", next, total)
	}

	return resultFromAccs(suite, cells, accs, total), nil
}
