package ids

import (
	"math/rand"
	"testing"
)

func TestNewBetaBinomialProfile(t *testing.T) {
	p, err := NewBetaBinomialProfile("ssh-brute-force", 0.8, 5, 3, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The intrusion distribution must be louder on average.
	if p.Intrusion.Mean() <= p.NoIntrusion.Mean() {
		t.Error("intrusion profile not louder than baseline")
	}
	if p.Divergence() <= 0 {
		t.Error("zero divergence profile")
	}
}

func TestProfileValidation(t *testing.T) {
	if err := (Profile{}).Validate(); err == nil {
		t.Error("empty profile should fail")
	}
	if _, err := NewBetaBinomialProfile("x", 0, 1, 1, 1); err == nil {
		t.Error("bad shape should fail")
	}
}

func TestProfileSampleStates(t *testing.T) {
	p, err := NewBetaBinomialProfile("x", 0.7, 6, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	sumH, sumC := 0, 0
	for i := 0; i < n; i++ {
		sumH += p.Sample(rng, false)
		sumC += p.Sample(rng, true)
	}
	if sumC <= sumH {
		t.Error("compromised samples not louder on average")
	}
}

func TestFitConvergesToTruth(t *testing.T) {
	p, err := NewBetaBinomialProfile("x", 0.8, 5, 3, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	fit, err := Fit(rng, p, 25000) // the paper's M
	if err != nil {
		t.Fatal(err)
	}
	if fit.Samples != 25000 {
		t.Errorf("samples = %d", fit.Samples)
	}
	// The model mismatch (Fig 14 right panel x-axis) should be small at
	// M = 25k.
	if mm := ModelMismatch(p, fit); mm > 0.02 {
		t.Errorf("model mismatch = %v, want < 0.02 at M=25k", mm)
	}
	// A tiny sample gives a worse fit.
	rng = rand.New(rand.NewSource(2))
	small, err := Fit(rng, p, 30)
	if err != nil {
		t.Fatal(err)
	}
	if ModelMismatch(p, small) <= ModelMismatch(p, fit) {
		t.Error("30-sample fit should be worse than 25k-sample fit")
	}
}

func TestFitValidation(t *testing.T) {
	p, _ := NewBetaBinomialProfile("x", 0.8, 5, 3, 1.2)
	rng := rand.New(rand.NewSource(1))
	if _, err := Fit(rng, p, 0); err == nil {
		t.Error("m = 0 should fail")
	}
	if _, err := Fit(rng, Profile{}, 100); err == nil {
		t.Error("invalid profile should fail")
	}
}

func TestMetricRankingMatchesFig18(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ranks, err := RankMetrics(rng, DefaultMetricProfiles(), 25000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 6 {
		t.Fatalf("got %d metrics", len(ranks))
	}
	// Fig 18 / App. H: the alert metric provides the most information.
	if ranks[0].Metric != MetricAlerts {
		t.Errorf("top metric = %q, want alerts (Fig 18)", ranks[0].Metric)
	}
	div := map[Metric]float64{}
	for _, r := range ranks {
		div[r.Metric] = r.Divergence
	}
	// Ordering constraints from Fig 18: alerts >> blocks written >= failed
	// logins > processes/tcp/read which are all near zero.
	if div[MetricAlerts] < 5*div[MetricBlocksWrite] {
		t.Errorf("alerts divergence %v not dominant over blocks written %v",
			div[MetricAlerts], div[MetricBlocksWrite])
	}
	for _, weak := range []Metric{MetricProcesses, MetricTCP, MetricBlocksRead} {
		if div[weak] > 0.05 {
			t.Errorf("%s divergence = %v, want near zero", weak, div[weak])
		}
	}
	if div[MetricBlocksRead] > div[MetricAlerts] {
		t.Error("blocks read should be the least informative")
	}
}
