package ids

import (
	"math/rand"
	"sort"

	"tolerance/internal/dist"
)

// Metric identifies one of the infrastructure signals the testbed collects
// every time step (Appendix H, Fig 18).
type Metric string

// The metrics of Fig 18.
const (
	MetricAlerts       Metric = "alerts weighted by priority"
	MetricFailedLogins Metric = "new failed login attempts"
	MetricProcesses    Metric = "new processes"
	MetricTCP          Metric = "new tcp connections"
	MetricBlocksWrite  Metric = "blocks written to disk"
	MetricBlocksRead   Metric = "blocks read from disk"
)

// MetricProfile is a signal's distribution with and without an intrusion.
type MetricProfile struct {
	Metric  Metric
	Healthy *dist.Categorical
	Intrude *dist.Categorical
}

// Divergence returns D_KL(Ẑ_{O|H} || Ẑ_{O|C}) for the metric.
func (m MetricProfile) Divergence() float64 {
	return dist.KLSmoothed(m.Healthy, m.Intrude, 1e-9)
}

// DefaultMetricProfiles returns signal models calibrated so the KL ranking
// matches Fig 18: IDS alerts carry by far the most information (paper:
// 0.49), blocks written and failed logins a little (0.12, 0.07), while
// process counts, TCP connections and blocks read are nearly uninformative
// (0.01, 0.01, 0.0).
func DefaultMetricProfiles() []MetricProfile {
	bb := func(alphaH, betaH, alphaC, betaC float64) (*dist.Categorical, *dist.Categorical) {
		h := dist.MustBetaBinomial(AlertSupport-1, alphaH, betaH).Categorical()
		c := dist.MustBetaBinomial(AlertSupport-1, alphaC, betaC).Categorical()
		return h, c
	}
	alertsH, alertsC := bb(0.7, 5, 2.2, 1.2)
	loginsH, loginsC := bb(1, 8, 1.45, 8)
	procH, procC := bb(2, 4, 2.12, 4)
	tcpH, tcpC := bb(3, 5, 3.14, 5)
	writeH, writeC := bb(1.5, 6, 2.2, 6)
	readH, readC := bb(2, 6, 2, 6)
	return []MetricProfile{
		{MetricAlerts, alertsH, alertsC},
		{MetricFailedLogins, loginsH, loginsC},
		{MetricProcesses, procH, procC},
		{MetricTCP, tcpH, tcpC},
		{MetricBlocksWrite, writeH, writeC},
		{MetricBlocksRead, readH, readC},
	}
}

// MetricRank pairs a metric with its measured divergence.
type MetricRank struct {
	Metric     Metric
	Divergence float64
}

// RankMetrics estimates each metric's empirical distributions from m
// samples per state and returns them sorted by descending KL divergence —
// the App. H procedure for selecting the detection signal.
func RankMetrics(rng *rand.Rand, profiles []MetricProfile, m int) ([]MetricRank, error) {
	out := make([]MetricRank, 0, len(profiles))
	for _, p := range profiles {
		h, err := dist.FitEmpirical(rng, p.Healthy, AlertSupport, m)
		if err != nil {
			return nil, err
		}
		c, err := dist.FitEmpirical(rng, p.Intrude, AlertSupport, m)
		if err != nil {
			return nil, err
		}
		out = append(out, MetricRank{
			Metric:     p.Metric,
			Divergence: dist.KLSmoothed(h.Distribution(), c.Distribution(), 1e-9),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Divergence > out[j].Divergence })
	return out, nil
}
