// Package ids simulates the intrusion-detection layer of the TOLERANCE
// testbed (§VII-A runs Snort with ruleset v2.9.17.1 on every node). Each
// container type from Table 4 has a per-state alert profile; controllers
// never see the true distribution — they estimate Ẑ by maximum likelihood
// from M samples exactly as the paper does (§VIII-A, Fig 11), and the
// Kullback-Leibler ranking of candidate metrics reproduces Fig 18 / App. H.
//
// Alert counts are "weighted by priority" in the paper with supports up to
// ~20000; we keep the same distributional shapes on a compact support
// (0..AlertSupport-1), which preserves every quantity the controllers
// consume (likelihood ratios, KL divergences, beliefs).
package ids

import (
	"errors"
	"fmt"
	"math/rand"

	"tolerance/internal/dist"
)

// AlertSupport is the size of the discretized alert space.
const AlertSupport = 32

// ErrBadProfile is returned for malformed profiles.
var ErrBadProfile = errors.New("ids: bad profile")

// Profile is a container's true alert model: the distribution of priority-
// weighted alert counts with and without an ongoing intrusion (the red and
// blue histograms of Fig 11).
type Profile struct {
	// Name identifies the vulnerability/container (Table 4).
	Name string
	// NoIntrusion is Z(. | H).
	NoIntrusion *dist.Categorical
	// Intrusion is Z(. | C).
	Intrusion *dist.Categorical
}

// Validate checks the profile.
func (p Profile) Validate() error {
	if p.Name == "" || p.NoIntrusion == nil || p.Intrusion == nil {
		return fmt.Errorf("%w: incomplete profile %q", ErrBadProfile, p.Name)
	}
	if p.NoIntrusion.Len() != AlertSupport || p.Intrusion.Len() != AlertSupport {
		return fmt.Errorf("%w: support %d/%d, want %d", ErrBadProfile,
			p.NoIntrusion.Len(), p.Intrusion.Len(), AlertSupport)
	}
	return nil
}

// Sample draws an alert count for the given compromise state.
func (p Profile) Sample(rng *rand.Rand, compromised bool) int {
	if compromised {
		return p.Intrusion.Sample(rng)
	}
	return p.NoIntrusion.Sample(rng)
}

// Divergence returns D_KL(Z_H || Z_C), the detectability of intrusions on
// this container (Fig 14's x-axis).
func (p Profile) Divergence() float64 {
	return dist.KLSmoothed(p.NoIntrusion, p.Intrusion, 1e-9)
}

// NewBetaBinomialProfile builds a profile from two Beta-Binomial shapes on
// the alert support (the same family the paper uses for its numerical
// evaluation, Table 8).
func NewBetaBinomialProfile(name string, alphaH, betaH, alphaC, betaC float64) (Profile, error) {
	h, err := dist.NewBetaBinomial(AlertSupport-1, alphaH, betaH)
	if err != nil {
		return Profile{}, err
	}
	c, err := dist.NewBetaBinomial(AlertSupport-1, alphaC, betaC)
	if err != nil {
		return Profile{}, err
	}
	p := Profile{Name: name, NoIntrusion: h.Categorical(), Intrusion: c.Categorical()}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// FittedZ is the estimated observation model a node controller uses: the
// paper computes Ẑ with M = 25,000 samples (Glivenko-Cantelli guarantees
// almost-sure convergence).
type FittedZ struct {
	// Healthy is Ẑ(. | H).
	Healthy *dist.Categorical
	// Compromised is Ẑ(. | C).
	Compromised *dist.Categorical
	// Samples is the number of MLE samples per state.
	Samples int
}

// Fit estimates the observation model from m samples per state.
func Fit(rng *rand.Rand, p Profile, m int) (*FittedZ, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if m < 1 {
		return nil, fmt.Errorf("%w: m = %d", ErrBadProfile, m)
	}
	h, err := dist.FitEmpirical(rng, p.NoIntrusion, AlertSupport, m)
	if err != nil {
		return nil, err
	}
	c, err := dist.FitEmpirical(rng, p.Intrusion, AlertSupport, m)
	if err != nil {
		return nil, err
	}
	return &FittedZ{
		Healthy:     h.Distribution(),
		Compromised: c.Distribution(),
		Samples:     m,
	}, nil
}

// ModelMismatch returns D_KL(Z(.|C) || Ẑ(.|C)) — the x-axis of the right
// panel of Fig 14 (sensitivity of the controllers to estimation error).
func ModelMismatch(p Profile, fit *FittedZ) float64 {
	return dist.KLSmoothed(p.Intrusion, fit.Compromised, 1e-9)
}
