package minbft

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"tolerance/internal/replica"
	"tolerance/internal/transport"
)

// ErrTimeout is returned when a request does not reach a reply quorum in
// time.
var ErrTimeout = errors.New("minbft: request timed out")

// Client submits signed requests to the replica group and waits for f+1
// identical replies (§VII-B: a quorum is necessary because the client does
// not know which replicas are compromised).
type Client struct {
	signer   *replica.Signer
	endpoint transport.Endpoint

	mu      sync.Mutex
	members []string
	f       int

	// RetransmitInterval is how often unanswered requests are resent.
	RetransmitInterval time.Duration
	// Timeout bounds one Submit call.
	Timeout time.Duration
}

// NewClient creates a client for the given membership and tolerance
// threshold f.
func NewClient(signer *replica.Signer, endpoint transport.Endpoint, members []string, f int) (*Client, error) {
	if signer == nil || endpoint == nil {
		return nil, errors.New("minbft: nil client dependency")
	}
	if len(members) == 0 {
		return nil, errors.New("minbft: empty membership")
	}
	if f < 0 {
		return nil, fmt.Errorf("minbft: negative f = %d", f)
	}
	return &Client{
		signer:             signer,
		endpoint:           endpoint,
		members:            append([]string(nil), members...),
		f:                  f,
		RetransmitInterval: 300 * time.Millisecond,
		Timeout:            10 * time.Second,
	}, nil
}

// UpdateMembership replaces the replica set and tolerance threshold after a
// reconfiguration.
func (c *Client) UpdateMembership(members []string, f int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.members = append([]string(nil), members...)
	c.f = f
}

// Submit signs the operation, broadcasts it to all replicas, and blocks
// until f+1 identical replies arrive or the timeout elapses.
func (c *Client) Submit(op replica.Op) (string, error) {
	req := c.signer.Sign(op)
	payload, err := encode(typeRequest, req)
	if err != nil {
		return "", err
	}
	c.mu.Lock()
	members := append([]string(nil), c.members...)
	f := c.f
	c.mu.Unlock()

	collector, err := replica.NewQuorumCollector(req.ID(), f)
	if err != nil {
		return "", err
	}
	send := func() {
		for _, m := range members {
			_ = c.endpoint.Send(m, payload)
		}
	}
	send()

	deadline := time.After(c.Timeout)
	retransmit := time.NewTicker(c.RetransmitInterval)
	defer retransmit.Stop()
	for {
		select {
		case msg, ok := <-c.endpoint.Receive():
			if !ok {
				return "", transport.ErrClosed
			}
			var env envelope
			if err := json.Unmarshal(msg.Payload, &env); err != nil || env.Type != typeReply {
				continue
			}
			var rep replica.Reply
			if err := json.Unmarshal(env.Data, &rep); err != nil {
				continue
			}
			// Replies must come from current members; a byzantine outsider
			// cannot vote.
			if !contains(members, msg.From) || rep.ReplicaID != msg.From {
				continue
			}
			if result, done := collector.Add(rep); done {
				return result, nil
			}
		case <-retransmit.C:
			send()
		case <-deadline:
			return "", fmt.Errorf("%w: %s", ErrTimeout, req.ID())
		}
	}
}

func contains(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}
