package minbft

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"tolerance/internal/replica"
	"tolerance/internal/transport"
	"tolerance/internal/usig"
)

// Errors returned by the replica.
var (
	ErrBadConfig = errors.New("minbft: bad config")
	ErrStopped   = errors.New("minbft: replica stopped")
)

// ByzantineMode selects the adversarial behaviour of a compromised replica
// (§VIII-A: after compromising a replica the attacker chooses between
// participating, not participating, and participating with random messages).
type ByzantineMode int

// Byzantine behaviours.
const (
	// Honest follows the protocol.
	Honest ByzantineMode = iota
	// Silent drops all protocol activity (crash-like byzantine behaviour).
	Silent
	// Garbage participates with corrupted message contents.
	Garbage
)

// Config configures one MinBFT replica.
type Config struct {
	// ID is this replica's identity (must be a member).
	ID string
	// Members is the initial membership; order is canonicalized internally.
	Members []string
	// K is the number of simultaneous recoveries tolerated on top of f
	// (Prop. 1: N >= 2f + 1 + k). It lowers the tolerance threshold:
	// f = (N-1-K)/2.
	K int
	// Endpoint is this replica's transport attachment.
	Endpoint transport.Endpoint
	// USIG is this node's trusted counter.
	USIG *usig.USIG
	// Verifier validates peer UIs.
	Verifier *usig.Verifier
	// Registry validates client request signatures.
	Registry *replica.Registry
	// Store is the deterministic service state machine.
	Store *replica.KVStore
	// RequestTimeout is how long a replica waits for a pending request to
	// execute before suspecting the leader (default 500ms).
	RequestTimeout time.Duration
	// CheckpointInterval is cp of Table 8 (default 100).
	CheckpointInterval uint64
	// TickInterval drives the internal timer loop (default 10ms).
	TickInterval time.Duration
	// Logger receives protocol traces; nil disables logging.
	Logger *log.Logger
}

func (c *Config) validate() error {
	if c.ID == "" {
		return fmt.Errorf("%w: empty id", ErrBadConfig)
	}
	if len(c.Members) < 2 {
		return fmt.Errorf("%w: need >= 2 members, got %d", ErrBadConfig, len(c.Members))
	}
	found := false
	for _, m := range c.Members {
		if m == c.ID {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("%w: id %q not in members", ErrBadConfig, c.ID)
	}
	if c.Endpoint == nil || c.USIG == nil || c.Verifier == nil || c.Registry == nil || c.Store == nil {
		return fmt.Errorf("%w: missing dependency", ErrBadConfig)
	}
	if c.K < 0 {
		return fmt.Errorf("%w: k = %d", ErrBadConfig, c.K)
	}
	return nil
}

// pendingEntry tracks one consensus slot.
type pendingEntry struct {
	prepare *prepareMsg
	digest  [32]byte
	commits map[string]bool // replicas that committed (leader implicit)
}

// Replica is one MinBFT replica. Create with NewReplica, stop with Stop.
type Replica struct {
	cfg Config

	mu       sync.Mutex
	view     uint64
	members  []string
	lastExec uint64
	// entries maps seq -> slot state for the current view.
	entries map[uint64]*pendingEntry
	// nextPrepareSeq is the leader's next sequence to assign.
	nextPrepareSeq uint64
	// expectedSeq is a follower's next prepare sequence from the leader.
	expectedSeq uint64
	// peerCounters tracks the highest verified UI counter per sender for
	// FIFO processing (the MinBFT anti-equivocation rule).
	peerCounters map[string]uint64
	// pendingByPeer buffers out-of-order messages per sender.
	pendingByPeer map[string]map[uint64]*inboundMsg
	// pendingRequests holds verified client requests awaiting execution,
	// keyed by request ID, with arrival time for timeout tracking.
	pendingRequests map[string]*trackedRequest
	executedReqs    map[string]string // request ID -> result (dedup + re-reply)
	// view change state
	viewChangeVotes map[uint64]map[string]*viewChangeMsg
	inViewChange    bool
	// checkpoints per seq: replica -> digest
	checkpointVotes map[uint64]map[string][32]byte
	stableSeq       uint64
	// stateResponses collects snapshot candidates during state transfer.
	stateResponses map[stateVoteKey]map[string]*stateResponseMsg
	// byzantine behaviour (driven by the emulation/attacker)
	byzantine ByzantineMode

	stop chan struct{}
	done chan struct{}
}

type trackedRequest struct {
	req      *replica.Request
	deadline time.Time
	client   string
}

type inboundMsg struct {
	envType msgType
	raw     json.RawMessage
}

// NewReplica starts a replica's event loop.
func NewReplica(cfg Config) (*Replica, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 500 * time.Millisecond
	}
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = 100
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = 10 * time.Millisecond
	}
	members := append([]string(nil), cfg.Members...)
	sort.Strings(members)
	r := &Replica{
		cfg:             cfg,
		members:         members,
		entries:         make(map[uint64]*pendingEntry),
		nextPrepareSeq:  1,
		expectedSeq:     1,
		peerCounters:    make(map[string]uint64),
		pendingByPeer:   make(map[string]map[uint64]*inboundMsg),
		pendingRequests: make(map[string]*trackedRequest),
		executedReqs:    make(map[string]string),
		viewChangeVotes: make(map[uint64]map[string]*viewChangeMsg),
		checkpointVotes: make(map[uint64]map[string][32]byte),
		stop:            make(chan struct{}),
		done:            make(chan struct{}),
	}
	go r.run()
	return r, nil
}

// Stop terminates the replica's event loop and waits for it to exit.
func (r *Replica) Stop() {
	select {
	case <-r.stop:
		return // already stopped
	default:
	}
	close(r.stop)
	<-r.done
}

// ID returns the replica's identity.
func (r *Replica) ID() string { return r.cfg.ID }

// View returns the current view number.
func (r *Replica) View() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.view
}

// Members returns the current membership.
func (r *Replica) Members() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.members...)
}

// LastExecuted returns the highest executed consensus sequence.
func (r *Replica) LastExecuted() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastExec
}

// SetByzantine switches the replica's behaviour (used by the attacker
// emulation; a real attacker controls the application domain directly).
func (r *Replica) SetByzantine(mode ByzantineMode) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byzantine = mode
}

// Tolerance returns the current tolerance threshold f = (N-1-k)/2.
func (r *Replica) Tolerance() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.toleranceLocked()
}

func (r *Replica) toleranceLocked() int {
	f := (len(r.members) - 1 - r.cfg.K) / 2
	if f < 0 {
		f = 0
	}
	return f
}

// leaderLocked returns the current view's leader.
func (r *Replica) leaderLocked() string {
	return r.members[int(r.view)%len(r.members)]
}

// Leader returns the current leader's ID.
func (r *Replica) Leader() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leaderLocked()
}

// run is the replica's event loop.
func (r *Replica) run() {
	defer close(r.done)
	ticker := time.NewTicker(r.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case msg, ok := <-r.cfg.Endpoint.Receive():
			if !ok {
				return
			}
			r.handleRaw(msg)
		case <-ticker.C:
			r.onTick()
		}
	}
}

func (r *Replica) logf(format string, args ...any) {
	if r.cfg.Logger != nil {
		r.cfg.Logger.Printf("[%s v%d] "+format, append([]any{r.cfg.ID, r.View()}, args...)...)
	}
}

// handleRaw decodes an envelope and dispatches it.
func (r *Replica) handleRaw(msg transport.Message) {
	r.mu.Lock()
	if r.byzantine == Silent {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()

	var env envelope
	if err := json.Unmarshal(msg.Payload, &env); err != nil {
		return // garbage from the network or a byzantine peer
	}
	r.dispatch(env.Type, env.Data)
}

// dispatch routes one decoded message. UI-carrying messages go through the
// per-sender FIFO gate first.
func (r *Replica) dispatch(t msgType, data json.RawMessage) {
	switch t {
	case typeRequest:
		var req replica.Request
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		r.onRequest(&req)
	case typePrepare:
		var p prepareMsg
		if err := json.Unmarshal(data, &p); err != nil {
			return
		}
		r.fifoGate(p.UI, t, data, func() { r.onPrepare(&p) })
	case typeCommit:
		var c commitMsg
		if err := json.Unmarshal(data, &c); err != nil {
			return
		}
		r.fifoGate(c.UI, t, data, func() { r.onCommit(&c) })
	case typeCheckpoint:
		var c checkpointMsg
		if err := json.Unmarshal(data, &c); err != nil {
			return
		}
		r.fifoGate(c.UI, t, data, func() { r.onCheckpoint(&c) })
	case typeViewChange:
		var v viewChangeMsg
		if err := json.Unmarshal(data, &v); err != nil {
			return
		}
		r.fifoGate(v.UI, t, data, func() { r.onViewChange(&v) })
	case typeNewView:
		var n newViewMsg
		if err := json.Unmarshal(data, &n); err != nil {
			return
		}
		r.fifoGate(n.UI, t, data, func() { r.onNewView(&n) })
	case typeStateRequest:
		var s stateRequestMsg
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		r.onStateRequest(&s)
	case typeStateResponse:
		var s stateResponseMsg
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		r.onStateResponse(&s)
	}
}

// fifoGate verifies a message's UI and enforces per-sender FIFO counter
// order (the MinBFT rule that prevents equivocation and message reordering
// by byzantine senders). Messages arriving early are buffered; handle runs
// for the message and any buffered successors.
func (r *Replica) fifoGate(ui usig.UI, t msgType, raw json.RawMessage, handle func()) {
	payload, ok := signedPayloadFor(t, raw)
	if !ok {
		return
	}
	if err := r.cfg.Verifier.VerifyUI(payload, ui); err != nil {
		r.logf("drop %s from %s: %v", t, ui.ReplicaID, err)
		return
	}
	r.mu.Lock()
	last := r.peerCounters[ui.ReplicaID]
	switch {
	case ui.Counter <= last:
		r.mu.Unlock()
		return // replayed or superseded
	case ui.Counter == last+1:
		r.peerCounters[ui.ReplicaID] = ui.Counter
		r.mu.Unlock()
		handle()
		r.drainPending(ui.ReplicaID)
	default:
		// Buffer until the gap fills.
		if r.pendingByPeer[ui.ReplicaID] == nil {
			r.pendingByPeer[ui.ReplicaID] = make(map[uint64]*inboundMsg)
		}
		if len(r.pendingByPeer[ui.ReplicaID]) < 1024 {
			r.pendingByPeer[ui.ReplicaID][ui.Counter] = &inboundMsg{envType: t, raw: raw}
		}
		r.mu.Unlock()
	}
}

// drainPending processes buffered messages that became in-order.
func (r *Replica) drainPending(peer string) {
	for {
		r.mu.Lock()
		next := r.peerCounters[peer] + 1
		buf := r.pendingByPeer[peer]
		msg, ok := buf[next]
		if !ok {
			r.mu.Unlock()
			return
		}
		delete(buf, next)
		r.peerCounters[peer] = next
		r.mu.Unlock()
		r.redispatch(msg)
	}
}

// redispatch handles a buffered message whose counter gate already passed.
func (r *Replica) redispatch(msg *inboundMsg) {
	switch msg.envType {
	case typePrepare:
		var p prepareMsg
		if json.Unmarshal(msg.raw, &p) == nil {
			r.onPrepare(&p)
		}
	case typeCommit:
		var c commitMsg
		if json.Unmarshal(msg.raw, &c) == nil {
			r.onCommit(&c)
		}
	case typeCheckpoint:
		var c checkpointMsg
		if json.Unmarshal(msg.raw, &c) == nil {
			r.onCheckpoint(&c)
		}
	case typeViewChange:
		var v viewChangeMsg
		if json.Unmarshal(msg.raw, &v) == nil {
			r.onViewChange(&v)
		}
	case typeNewView:
		var n newViewMsg
		if json.Unmarshal(msg.raw, &n) == nil {
			r.onNewView(&n)
		}
	}
}

// signedPayloadFor recomputes the UI-certified payload from raw contents.
func signedPayloadFor(t msgType, raw json.RawMessage) ([]byte, bool) {
	switch t {
	case typePrepare:
		var p prepareMsg
		if json.Unmarshal(raw, &p) != nil || p.Request == nil {
			return nil, false
		}
		return p.signedPayload(), true
	case typeCommit:
		var c commitMsg
		if json.Unmarshal(raw, &c) != nil {
			return nil, false
		}
		return c.signedPayload(), true
	case typeCheckpoint:
		var c checkpointMsg
		if json.Unmarshal(raw, &c) != nil {
			return nil, false
		}
		return c.signedPayload(), true
	case typeViewChange:
		var v viewChangeMsg
		if json.Unmarshal(raw, &v) != nil {
			return nil, false
		}
		return v.signedPayload(), true
	case typeNewView:
		var n newViewMsg
		if json.Unmarshal(raw, &n) != nil {
			return nil, false
		}
		return n.signedPayload(), true
	default:
		return nil, false
	}
}

// broadcast sends a message to all current members except self.
func (r *Replica) broadcast(t msgType, msg any) {
	data, err := encode(t, msg)
	if err != nil {
		r.logf("encode %s: %v", t, err)
		return
	}
	r.mu.Lock()
	members := append([]string(nil), r.members...)
	mode := r.byzantine
	r.mu.Unlock()
	if mode == Silent {
		return
	}
	if mode == Garbage {
		// A compromised replica ships corrupted bytes; honest receivers
		// reject them at the UI check.
		data = append([]byte("garbage:"), data...)
	}
	for _, m := range members {
		if m == r.cfg.ID {
			continue
		}
		_ = r.cfg.Endpoint.Send(m, data)
	}
}

// sendTo sends a message to one peer.
func (r *Replica) sendTo(peer string, t msgType, msg any) {
	data, err := encode(t, msg)
	if err != nil {
		return
	}
	r.mu.Lock()
	mode := r.byzantine
	r.mu.Unlock()
	if mode == Silent {
		return
	}
	if mode == Garbage {
		data = append([]byte("garbage:"), data...)
	}
	_ = r.cfg.Endpoint.Send(peer, data)
}

// onRequest handles a signed client request (Fig 17a, REQUEST).
func (r *Replica) onRequest(req *replica.Request) {
	if err := r.cfg.Registry.Verify(req); err != nil {
		r.logf("reject request %s: %v", req.ID(), err)
		return
	}
	id := req.ID()
	r.mu.Lock()
	if result, done := r.executedReqs[id]; done {
		// Re-reply for retransmitted requests.
		r.mu.Unlock()
		r.sendTo(req.ClientID, typeReply, replica.Reply{
			ReplicaID: r.cfg.ID,
			RequestID: id,
			Result:    result,
		})
		return
	}
	if _, pending := r.pendingRequests[id]; pending {
		r.mu.Unlock()
		return
	}
	r.pendingRequests[id] = &trackedRequest{
		req:      req,
		deadline: time.Now().Add(r.cfg.RequestTimeout),
		client:   req.ClientID,
	}
	isLeader := r.leaderLocked() == r.cfg.ID && !r.inViewChange
	r.mu.Unlock()

	if isLeader {
		r.propose(req)
	}
}

// propose assigns the next sequence number under the leader's UI and
// broadcasts the PREPARE.
func (r *Replica) propose(req *replica.Request) {
	r.mu.Lock()
	if r.leaderLocked() != r.cfg.ID || r.inViewChange {
		r.mu.Unlock()
		return
	}
	seq := r.nextPrepareSeq
	r.nextPrepareSeq++
	view := r.view
	r.mu.Unlock()

	p := &prepareMsg{View: view, Seq: seq, Request: req}
	ui, err := r.cfg.USIG.CreateUI(p.signedPayload())
	if err != nil {
		r.logf("usig: %v", err)
		return
	}
	p.UI = ui

	// The leader accepts its own prepare immediately.
	r.acceptPrepare(p, true)
	r.broadcast(typePrepare, p)
}

// onPrepare handles the leader's PREPARE at a follower.
func (r *Replica) onPrepare(p *prepareMsg) {
	if p.Request == nil {
		return
	}
	if err := r.cfg.Registry.Verify(p.Request); err != nil {
		r.logf("prepare carries bad request: %v", err)
		return
	}
	r.mu.Lock()
	if p.View != r.view || r.inViewChange {
		r.mu.Unlock()
		return
	}
	if p.UI.ReplicaID != r.leaderLocked() {
		r.mu.Unlock()
		return // prepares must come from the current leader
	}
	if p.Seq != r.expectedSeq {
		// A correct leader assigns contiguous sequence numbers; anything
		// else is stale or byzantine.
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()

	r.acceptPrepare(p, false)

	// Send COMMIT (Fig 17a).
	c := &commitMsg{
		View:          p.View,
		Seq:           p.Seq,
		ReplicaID:     r.cfg.ID,
		PrepareDigest: prepareDigest(p),
	}
	ui, err := r.cfg.USIG.CreateUI(c.signedPayload())
	if err != nil {
		return
	}
	c.UI = ui
	r.recordCommit(c.Seq, c.PrepareDigest, r.cfg.ID)
	r.broadcast(typeCommit, c)
	r.tryExecute()
}

// acceptPrepare installs the slot entry.
func (r *Replica) acceptPrepare(p *prepareMsg, leader bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[p.Seq]
	if e == nil {
		e = &pendingEntry{commits: make(map[string]bool)}
		r.entries[p.Seq] = e
	}
	if e.prepare != nil {
		return
	}
	e.prepare = p
	e.digest = prepareDigest(p)
	// The leader's prepare counts as its commit.
	e.commits[p.UI.ReplicaID] = true
	if !leader && p.Seq == r.expectedSeq {
		r.expectedSeq++
	}
	// Track the request for timeout purposes if we hadn't seen it.
	id := p.Request.ID()
	if _, done := r.executedReqs[id]; !done {
		if _, pending := r.pendingRequests[id]; !pending {
			r.pendingRequests[id] = &trackedRequest{
				req:      p.Request,
				deadline: time.Now().Add(r.cfg.RequestTimeout),
				client:   p.Request.ClientID,
			}
		}
	}
}

// onCommit handles a COMMIT vote.
func (r *Replica) onCommit(c *commitMsg) {
	r.mu.Lock()
	if c.View != r.view || r.inViewChange {
		r.mu.Unlock()
		return
	}
	if c.UI.ReplicaID != c.ReplicaID {
		r.mu.Unlock()
		return // commit must be certified by its claimed sender
	}
	r.mu.Unlock()
	r.recordCommit(c.Seq, c.PrepareDigest, c.ReplicaID)
	r.tryExecute()
}

// recordCommit registers a commit vote for a slot.
func (r *Replica) recordCommit(seq uint64, digest [32]byte, from string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entries[seq]
	if e == nil {
		e = &pendingEntry{commits: make(map[string]bool)}
		r.entries[seq] = e
	}
	if e.prepare != nil && e.digest != digest {
		return // commit for a different prepare; ignore
	}
	e.commits[from] = true
}

// tryExecute executes committed slots in sequence order (Safety).
func (r *Replica) tryExecute() {
	for {
		r.mu.Lock()
		next := r.lastExec + 1
		e := r.entries[next]
		quorum := r.toleranceLocked() + 1
		if e == nil || e.prepare == nil || len(e.commits) < quorum {
			r.mu.Unlock()
			return
		}
		req := e.prepare.Request
		delete(r.entries, next)
		r.lastExec = next
		r.mu.Unlock()

		r.execute(next, req)
	}
}

// execute applies a request to the state machine, processes reconfiguration
// side effects, replies to the client, and emits checkpoints.
func (r *Replica) execute(seq uint64, req *replica.Request) {
	id := req.ID()
	result, err := r.cfg.Store.Apply(req)
	if err != nil {
		result = "error: " + err.Error()
	}

	r.mu.Lock()
	r.executedReqs[id] = result
	delete(r.pendingRequests, id)
	r.mu.Unlock()

	if req.Op.Key == ConfigKey && req.Op.Type == replica.OpWrite {
		r.applyConfigOp(req.Op.Value)
	}

	r.sendTo(req.ClientID, typeReply, replica.Reply{
		ReplicaID: r.cfg.ID,
		RequestID: id,
		Result:    result,
	})

	if seq%r.cfg.CheckpointInterval == 0 {
		r.emitCheckpoint(seq)
	}
}

// onTick drives timeouts: request deadlines trigger view changes, and the
// leader re-proposes requests it has not ordered yet.
func (r *Replica) onTick() {
	now := time.Now()
	r.mu.Lock()
	if r.byzantine == Silent {
		r.mu.Unlock()
		return
	}
	isLeader := r.leaderLocked() == r.cfg.ID && !r.inViewChange
	var expired bool
	var toPropose []*replica.Request
	proposed := make(map[uint64]bool)
	for _, e := range r.entries {
		if e.prepare != nil {
			proposed[e.prepare.Seq] = true
		}
	}
	for id, tr := range r.pendingRequests {
		if isLeader {
			// A leader that took over mid-stream proposes anything pending
			// that is not yet in flight.
			inFlight := false
			for _, e := range r.entries {
				if e.prepare != nil && e.prepare.Request.ID() == id {
					inFlight = true
					break
				}
			}
			if !inFlight {
				toPropose = append(toPropose, tr.req)
				tr.deadline = now.Add(r.cfg.RequestTimeout)
			}
			continue
		}
		if now.After(tr.deadline) {
			expired = true
			tr.deadline = now.Add(r.cfg.RequestTimeout) // back off
		}
	}
	r.mu.Unlock()

	for _, req := range toPropose {
		r.propose(req)
	}
	if expired {
		r.startViewChange()
	}
}
