package minbft

import (
	"fmt"
	"testing"
	"time"

	"tolerance/internal/replica"
	"tolerance/internal/transport"
	"tolerance/internal/usig"
)

var clusterKey = []byte("minbft-test-shared-key-32-bytes!")

// cluster bundles a test deployment.
type cluster struct {
	t        *testing.T
	net      *transport.SimNetwork
	replicas map[string]*Replica
	stores   map[string]*replica.KVStore
	registry *replica.Registry
	verifier *usig.Verifier
	members  []string
	k        int
}

// newCluster starts n replicas named r0..r(n-1) over a simulated network.
func newCluster(t *testing.T, n, k int, cond transport.Conditions) *cluster {
	t.Helper()
	net, err := transport.NewSimNetwork(cond, 1)
	if err != nil {
		t.Fatal(err)
	}
	verifier, err := usig.NewHMACVerifier(clusterKey)
	if err != nil {
		t.Fatal(err)
	}
	registry := replica.NewRegistry()
	members := make([]string, n)
	for i := 0; i < n; i++ {
		members[i] = fmt.Sprintf("r%d", i)
	}
	c := &cluster{
		t:        t,
		net:      net,
		replicas: make(map[string]*Replica),
		stores:   make(map[string]*replica.KVStore),
		registry: registry,
		verifier: verifier,
		members:  members,
		k:        k,
	}
	for _, id := range members {
		c.startReplica(id)
	}
	t.Cleanup(c.close)
	return c
}

func (c *cluster) startReplica(id string) *Replica {
	c.t.Helper()
	ep, err := c.net.Endpoint(id)
	if err != nil {
		c.t.Fatal(err)
	}
	u, err := usig.NewHMAC(id, clusterKey)
	if err != nil {
		c.t.Fatal(err)
	}
	store := replica.NewKVStore()
	r, err := NewReplica(Config{
		ID:                 id,
		Members:            c.members,
		K:                  c.k,
		Endpoint:           ep,
		USIG:               u,
		Verifier:           c.verifier,
		Registry:           c.registry,
		Store:              store,
		RequestTimeout:     250 * time.Millisecond,
		CheckpointInterval: 5,
		TickInterval:       5 * time.Millisecond,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	c.replicas[id] = r
	c.stores[id] = store
	return r
}

func (c *cluster) close() {
	for _, r := range c.replicas {
		r.Stop()
	}
	c.net.Close()
}

// client creates a signed client attached to the network.
func (c *cluster) client(id string) *Client {
	c.t.Helper()
	signer, err := replica.NewSigner(id)
	if err != nil {
		c.t.Fatal(err)
	}
	if err := c.registry.Register(id, signer.PublicKey()); err != nil {
		c.t.Fatal(err)
	}
	ep, err := c.net.Endpoint(id)
	if err != nil {
		c.t.Fatal(err)
	}
	f := (len(c.members) - 1 - c.k) / 2
	cl, err := NewClient(signer, ep, c.members, f)
	if err != nil {
		c.t.Fatal(err)
	}
	cl.Timeout = 8 * time.Second
	cl.RetransmitInterval = 200 * time.Millisecond
	return cl
}

// waitForAgreement blocks until the given replicas have executed at least
// seq operations or the deadline passes.
func (c *cluster) waitForAgreement(ids []string, seq uint64, timeout time.Duration) {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		all := true
		for _, id := range ids {
			if c.replicas[id].LastExecuted() < seq {
				all = false
				break
			}
		}
		if all {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, id := range ids {
		c.t.Logf("%s lastExec=%d view=%d", id, c.replicas[id].LastExecuted(), c.replicas[id].View())
	}
	c.t.Fatalf("replicas did not reach seq %d in %v", seq, timeout)
}

func TestNormalCaseWriteAndRead(t *testing.T) {
	c := newCluster(t, 3, 0, transport.Conditions{})
	cl := c.client("alice")

	result, err := cl.Submit(replica.Op{Type: replica.OpWrite, Key: "x", Value: "1"})
	if err != nil {
		t.Fatal(err)
	}
	if result != "1" {
		t.Errorf("write result = %q, want %q", result, "1")
	}
	got, err := cl.Submit(replica.Op{Type: replica.OpRead, Key: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if got != "1" {
		t.Errorf("read = %q, want %q", got, "1")
	}
}

func TestSafetyAllHonestReplicasAgree(t *testing.T) {
	c := newCluster(t, 5, 0, transport.Conditions{})
	cl := c.client("alice")
	const ops = 20
	for i := 0; i < ops; i++ {
		if _, err := cl.Submit(replica.Op{
			Type: replica.OpWrite, Key: fmt.Sprintf("k%d", i%4), Value: fmt.Sprintf("v%d", i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.waitForAgreement(c.members, ops, 5*time.Second)
	// Safety: every replica executed the same sequence => identical state.
	ref := c.stores["r0"].Digest()
	for _, id := range c.members[1:] {
		if d := c.stores[id].Digest(); d != ref {
			t.Errorf("replica %s diverged", id)
		}
	}
}

func TestValidityRejectsUnsignedRequests(t *testing.T) {
	c := newCluster(t, 3, 0, transport.Conditions{})
	// Send a forged request directly (no registered key / bad signature).
	ep, err := c.net.Endpoint("mallory")
	if err != nil {
		t.Fatal(err)
	}
	forged := &replica.Request{ClientID: "mallory", Seq: 1,
		Op: replica.Op{Type: replica.OpWrite, Key: "x", Value: "evil"}}
	payload, err := encode(typeRequest, forged)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range c.members {
		_ = ep.Send(m, payload)
	}
	time.Sleep(300 * time.Millisecond)
	for _, id := range c.members {
		if c.replicas[id].LastExecuted() != 0 {
			t.Fatalf("replica %s executed a forged request", id)
		}
	}
}

func TestToleratesByzantineFollower(t *testing.T) {
	// N=3, k=0 => f=1: one byzantine follower must not break the service.
	c := newCluster(t, 3, 0, transport.Conditions{})
	// Make a non-leader byzantine.
	leader := c.replicas["r0"].Leader()
	var victim string
	for _, id := range c.members {
		if id != leader {
			victim = id
			break
		}
	}
	c.replicas[victim].SetByzantine(Garbage)

	cl := c.client("alice")
	for i := 0; i < 5; i++ {
		if _, err := cl.Submit(replica.Op{
			Type: replica.OpWrite, Key: "k", Value: fmt.Sprintf("v%d", i),
		}); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	// The two honest replicas agree.
	honest := []string{}
	for _, id := range c.members {
		if id != victim {
			honest = append(honest, id)
		}
	}
	c.waitForAgreement(honest, 5, 5*time.Second)
	if c.stores[honest[0]].Digest() != c.stores[honest[1]].Digest() {
		t.Error("honest replicas diverged")
	}
}

func TestToleratesSilentFollower(t *testing.T) {
	c := newCluster(t, 3, 0, transport.Conditions{})
	leader := c.replicas["r0"].Leader()
	var victim string
	for _, id := range c.members {
		if id != leader {
			victim = id
			break
		}
	}
	c.replicas[victim].SetByzantine(Silent)
	cl := c.client("alice")
	if _, err := cl.Submit(replica.Op{Type: replica.OpWrite, Key: "a", Value: "b"}); err != nil {
		t.Fatal(err)
	}
}

func TestViewChangeOnLeaderCrash(t *testing.T) {
	c := newCluster(t, 3, 0, transport.Conditions{})
	leader := c.replicas["r0"].Leader()
	// Crash the leader outright.
	c.replicas[leader].Stop()
	c.net.Isolate(leader)

	cl := c.client("alice")
	start := time.Now()
	if _, err := cl.Submit(replica.Op{Type: replica.OpWrite, Key: "x", Value: "after-crash"}); err != nil {
		t.Fatalf("request after leader crash: %v", err)
	}
	t.Logf("recovered via view change in %v", time.Since(start))
	// The survivors installed a new view with a different leader.
	for _, id := range c.members {
		if id == leader {
			continue
		}
		if c.replicas[id].View() == 0 {
			t.Errorf("replica %s still in view 0", id)
		}
		if c.replicas[id].Leader() == leader {
			t.Errorf("replica %s still believes %s leads", id, leader)
		}
	}
}

func TestViewChangeOnSilentByzantineLeader(t *testing.T) {
	c := newCluster(t, 5, 0, transport.Conditions{})
	leader := c.replicas["r0"].Leader()
	c.replicas[leader].SetByzantine(Silent)

	cl := c.client("alice")
	if _, err := cl.Submit(replica.Op{Type: replica.OpWrite, Key: "x", Value: "1"}); err != nil {
		t.Fatalf("request under silent leader: %v", err)
	}
}

func TestCheckpointsBecomeStable(t *testing.T) {
	c := newCluster(t, 3, 0, transport.Conditions{})
	cl := c.client("alice")
	// CheckpointInterval is 5; run 12 ops to cross two checkpoints.
	for i := 0; i < 12; i++ {
		if _, err := cl.Submit(replica.Op{
			Type: replica.OpWrite, Key: "k", Value: fmt.Sprintf("%d", i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if c.replicas["r0"].StableCheckpoint() >= 10 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("stable checkpoint = %d, want >= 10", c.replicas["r0"].StableCheckpoint())
}

func TestStateTransferForLaggingReplica(t *testing.T) {
	c := newCluster(t, 3, 0, transport.Conditions{})
	// Isolate r2, run traffic, then heal and let it catch up.
	c.net.Isolate("r2")
	cl := c.client("alice")
	for i := 0; i < 8; i++ {
		if _, err := cl.Submit(replica.Op{
			Type: replica.OpWrite, Key: fmt.Sprintf("k%d", i), Value: "v",
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.net.Heal()
	// Ask for a sync explicitly (a recovered node does this on restart).
	c.replicas["r2"].RequestStateSync(1)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.stores["r2"].Digest() == c.stores["r0"].Digest() &&
			c.replicas["r2"].LastExecuted() >= 8 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("r2 did not catch up: lastExec=%d", c.replicas["r2"].LastExecuted())
}

func TestReconfigurationJoin(t *testing.T) {
	c := newCluster(t, 3, 0, transport.Conditions{})
	cl := c.client("admin")

	// Start the new replica first so it can receive protocol traffic.
	c.members = append(c.members, "r3")
	newR := c.startReplica("r3")
	_ = newR

	op, err := EncodeConfigOp("join", "r3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Submit(op); err != nil {
		t.Fatal(err)
	}
	// All original replicas now list r3.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for _, id := range []string{"r0", "r1", "r2"} {
			if len(c.replicas[id].Members()) != 4 {
				ok = false
			}
		}
		if ok {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, id := range []string{"r0", "r1", "r2"} {
		if got := len(c.replicas[id].Members()); got != 4 {
			t.Fatalf("%s has %d members, want 4", id, got)
		}
	}
	// The joiner syncs state and can participate.
	c.replicas["r3"].RequestStateSync(1)
	cl.UpdateMembership(c.replicas["r0"].Members(), c.replicas["r0"].Tolerance())
	if _, err := cl.Submit(replica.Op{Type: replica.OpWrite, Key: "post-join", Value: "yes"}); err != nil {
		t.Fatal(err)
	}
}

func TestReconfigurationEvictNonLeader(t *testing.T) {
	c := newCluster(t, 5, 0, transport.Conditions{})
	cl := c.client("admin")
	leader := c.replicas["r0"].Leader()
	var victim string
	for _, id := range c.members {
		if id != leader {
			victim = id
			break
		}
	}
	op, err := EncodeConfigOp("evict", victim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Submit(op); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(c.replicas[leader].Members()) == 4 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := len(c.replicas[leader].Members()); got != 4 {
		t.Fatalf("leader has %d members after evict, want 4", got)
	}
	// Service continues with the smaller group.
	cl.UpdateMembership(c.replicas[leader].Members(), c.replicas[leader].Tolerance())
	if _, err := cl.Submit(replica.Op{Type: replica.OpWrite, Key: "post-evict", Value: "yes"}); err != nil {
		t.Fatal(err)
	}
}

func TestReconfigurationEvictLeaderTriggersViewChange(t *testing.T) {
	c := newCluster(t, 5, 0, transport.Conditions{})
	cl := c.client("admin")
	leader := c.replicas["r0"].Leader()
	op, err := EncodeConfigOp("evict", leader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Submit(op); err != nil {
		t.Fatal(err)
	}
	c.net.Isolate(leader) // the evicted node is gone
	var survivor string
	for _, id := range c.members {
		if id != leader {
			survivor = id
			break
		}
	}
	cl.UpdateMembership(c.replicas[survivor].Members(), c.replicas[survivor].Tolerance())
	if _, err := cl.Submit(replica.Op{Type: replica.OpWrite, Key: "after", Value: "evict-leader"}); err != nil {
		t.Fatalf("service did not survive leader eviction: %v", err)
	}
	if c.replicas[survivor].Leader() == leader {
		t.Error("survivor still believes the evicted node leads")
	}
}

func TestLossyNetworkStillCommits(t *testing.T) {
	// The paper's emulation uses 0.05%-0.1% loss; we stress with 5%.
	c := newCluster(t, 3, 0, transport.Conditions{Loss: 0.05})
	cl := c.client("alice")
	for i := 0; i < 5; i++ {
		if _, err := cl.Submit(replica.Op{
			Type: replica.OpWrite, Key: "k", Value: fmt.Sprintf("%d", i),
		}); err != nil {
			t.Fatalf("op %d under loss: %v", i, err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	net, _ := transport.NewSimNetwork(transport.Conditions{}, 1)
	defer net.Close()
	ep, _ := net.Endpoint("x")
	u, _ := usig.NewHMAC("x", clusterKey)
	v, _ := usig.NewHMACVerifier(clusterKey)
	reg := replica.NewRegistry()
	store := replica.NewKVStore()

	base := Config{ID: "x", Members: []string{"x", "y"}, Endpoint: ep,
		USIG: u, Verifier: v, Registry: reg, Store: store}
	if _, err := NewReplica(Config{}); err == nil {
		t.Error("empty config should fail")
	}
	bad := base
	bad.Members = []string{"a", "b"}
	if _, err := NewReplica(bad); err == nil {
		t.Error("id not in members should fail")
	}
	bad = base
	bad.Members = []string{"x"}
	if _, err := NewReplica(bad); err == nil {
		t.Error("single member should fail")
	}
	bad = base
	bad.K = -1
	if _, err := NewReplica(bad); err == nil {
		t.Error("negative k should fail")
	}
	r, err := NewReplica(base)
	if err != nil {
		t.Fatal(err)
	}
	r.Stop()
	r.Stop() // idempotent
}

func TestEncodeConfigOpValidation(t *testing.T) {
	if _, err := EncodeConfigOp("reboot", "r1"); err == nil {
		t.Error("unknown action should fail")
	}
	if _, err := EncodeConfigOp("join", ""); err == nil {
		t.Error("empty node should fail")
	}
	op, err := EncodeConfigOp("join", "r9")
	if err != nil {
		t.Fatal(err)
	}
	if op.Key != ConfigKey {
		t.Errorf("key = %q", op.Key)
	}
}

func TestToleranceThreshold(t *testing.T) {
	// f = (N-1-k)/2 per Prop. 1.
	c := newCluster(t, 5, 0, transport.Conditions{})
	if f := c.replicas["r0"].Tolerance(); f != 2 {
		t.Errorf("f = %d, want 2 for N=5, k=0", f)
	}
	c2 := newCluster(t, 4, 1, transport.Conditions{})
	if f := c2.replicas["r0"].Tolerance(); f != 1 {
		t.Errorf("f = %d, want 1 for N=4, k=1", f)
	}
}
