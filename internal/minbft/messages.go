// Package minbft implements the reconfigurable MinBFT consensus protocol
// used by TOLERANCE (§VII-B, Appendix G, [43 §4.2]): a BFT state-machine
// replication protocol for the hybrid failure model that tolerates
// f = (N-1-k)/2 byzantine replicas by relying on a trusted USIG component
// at every node to prevent equivocation. The implementation covers the
// normal-case PREPARE/COMMIT flow, checkpoints, view changes, state
// transfer, and the join/evict reconfiguration of Fig 17.
package minbft

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"tolerance/internal/replica"
	"tolerance/internal/usig"
)

// msgType tags protocol messages on the wire.
type msgType string

// Protocol message types (Fig 17).
const (
	typeRequest       msgType = "request"
	typePrepare       msgType = "prepare"
	typeCommit        msgType = "commit"
	typeReply         msgType = "reply"
	typeCheckpoint    msgType = "checkpoint"
	typeViewChange    msgType = "view-change"
	typeNewView       msgType = "new-view"
	typeStateRequest  msgType = "state-request"
	typeStateResponse msgType = "state-response"
)

// envelope wraps every message with its type.
type envelope struct {
	Type msgType         `json:"type"`
	Data json.RawMessage `json:"data"`
}

// encode wraps and marshals a message.
func encode(t msgType, msg any) ([]byte, error) {
	data, err := json.Marshal(msg)
	if err != nil {
		return nil, fmt.Errorf("minbft: marshal %s: %w", t, err)
	}
	return json.Marshal(envelope{Type: t, Data: data})
}

// prepareMsg is the leader's ordering message: it binds a consensus
// sequence number to a client request under the leader's UI.
type prepareMsg struct {
	View    uint64           `json:"view"`
	Seq     uint64           `json:"seq"`
	Request *replica.Request `json:"request"`
	UI      usig.UI          `json:"ui"`
}

// signedPayload returns the bytes certified by the leader's UI.
func (p *prepareMsg) signedPayload() []byte {
	d := p.Request.Digest()
	return []byte(fmt.Sprintf("prepare:%d:%d:%x", p.View, p.Seq, d))
}

// commitMsg is a follower's agreement with a prepare.
type commitMsg struct {
	View      uint64 `json:"view"`
	Seq       uint64 `json:"seq"`
	ReplicaID string `json:"replicaId"`
	// PrepareDigest binds the commit to the exact prepare contents.
	PrepareDigest [32]byte `json:"prepareDigest"`
	UI            usig.UI  `json:"ui"`
}

func (c *commitMsg) signedPayload() []byte {
	return []byte(fmt.Sprintf("commit:%d:%d:%x", c.View, c.Seq, c.PrepareDigest))
}

// prepareDigest identifies the prepared entry for commits.
func prepareDigest(p *prepareMsg) [32]byte {
	d := p.Request.Digest()
	return sha256.Sum256([]byte(fmt.Sprintf("%d:%d:%x:%s:%d", p.View, p.Seq, d, p.UI.ReplicaID, p.UI.Counter)))
}

// checkpointMsg advertises a stable state digest every cp executions.
type checkpointMsg struct {
	ReplicaID string   `json:"replicaId"`
	Seq       uint64   `json:"seq"`
	Digest    [32]byte `json:"digest"`
	UI        usig.UI  `json:"ui"`
}

func (c *checkpointMsg) signedPayload() []byte {
	return []byte(fmt.Sprintf("checkpoint:%d:%x", c.Seq, c.Digest))
}

// viewChangeMsg votes to replace the current leader.
type viewChangeMsg struct {
	ReplicaID string  `json:"replicaId"`
	NewView   uint64  `json:"newView"`
	LastExec  uint64  `json:"lastExec"`
	UI        usig.UI `json:"ui"`
}

func (v *viewChangeMsg) signedPayload() []byte {
	return []byte(fmt.Sprintf("view-change:%d:%d", v.NewView, v.LastExec))
}

// newViewMsg installs a new view. Proof carries the f+1 view-change votes.
type newViewMsg struct {
	View     uint64          `json:"view"`
	LeaderID string          `json:"leaderId"`
	MaxExec  uint64          `json:"maxExec"`
	Proof    []viewChangeMsg `json:"proof"`
	UI       usig.UI         `json:"ui"`
}

func (n *newViewMsg) signedPayload() []byte {
	return []byte(fmt.Sprintf("new-view:%d:%d", n.View, n.MaxExec))
}

// stateRequestMsg asks a peer for a state snapshot (Fig 17d).
type stateRequestMsg struct {
	ReplicaID string `json:"replicaId"`
	// MinSeq is the lowest acceptable snapshot sequence.
	MinSeq uint64 `json:"minSeq"`
}

// stateResponseMsg carries a snapshot with its membership and view.
type stateResponseMsg struct {
	ReplicaID string   `json:"replicaId"`
	Seq       uint64   `json:"seq"`
	View      uint64   `json:"view"`
	Digest    [32]byte `json:"digest"`
	Snapshot  []byte   `json:"snapshot"`
	Members   []string `json:"members"`
}

// configOp is the payload of reconfiguration requests (join/evict, Fig 17
// e-f), carried as a write to the reserved ConfigKey.
type configOp struct {
	// Action is "join" or "evict".
	Action string `json:"action"`
	// NodeID is the replica being added or removed.
	NodeID string `json:"nodeId"`
}

// ConfigKey is the reserved service key through which reconfiguration
// operations are ordered by consensus.
const ConfigKey = "__minbft_config"

// EncodeConfigOp builds the service operation for a reconfiguration.
func EncodeConfigOp(action, nodeID string) (replica.Op, error) {
	if action != "join" && action != "evict" {
		return replica.Op{}, fmt.Errorf("minbft: unknown config action %q", action)
	}
	if nodeID == "" {
		return replica.Op{}, fmt.Errorf("minbft: empty node id")
	}
	payload, err := json.Marshal(configOp{Action: action, NodeID: nodeID})
	if err != nil {
		return replica.Op{}, err
	}
	return replica.Op{Type: replica.OpWrite, Key: ConfigKey, Value: string(payload)}, nil
}
