package minbft

import (
	"bytes"
	"encoding/json"
	"sort"

	"tolerance/internal/replica"
)

// startViewChange suspects the current leader and votes for view+1
// (Fig 17b).
func (r *Replica) startViewChange() {
	r.mu.Lock()
	if r.inViewChange {
		r.mu.Unlock()
		return
	}
	r.inViewChange = true
	target := r.view + 1
	lastExec := r.lastExec
	r.mu.Unlock()

	r.logf("view change -> %d", target)
	v := &viewChangeMsg{ReplicaID: r.cfg.ID, NewView: target, LastExec: lastExec}
	ui, err := r.cfg.USIG.CreateUI(v.signedPayload())
	if err != nil {
		return
	}
	v.UI = ui
	r.recordViewChange(v)
	r.broadcast(typeViewChange, v)
	r.maybeInstallView(target)
}

// onViewChange handles a peer's VIEW-CHANGE vote.
func (r *Replica) onViewChange(v *viewChangeMsg) {
	r.mu.Lock()
	if v.NewView <= r.view {
		r.mu.Unlock()
		return
	}
	if v.UI.ReplicaID != v.ReplicaID {
		r.mu.Unlock()
		return
	}
	quorum := r.toleranceLocked() + 1
	r.mu.Unlock()

	r.recordViewChange(v)

	// Join the view change once f+1 distinct replicas vote for it — this
	// replica cannot be left behind even if its own timer never fired.
	r.mu.Lock()
	votes := len(r.viewChangeVotes[v.NewView])
	joined := r.inViewChange
	r.mu.Unlock()
	if votes >= quorum && !joined {
		r.mu.Lock()
		r.inViewChange = true
		lastExec := r.lastExec
		r.mu.Unlock()
		own := &viewChangeMsg{ReplicaID: r.cfg.ID, NewView: v.NewView, LastExec: lastExec}
		if ui, err := r.cfg.USIG.CreateUI(own.signedPayload()); err == nil {
			own.UI = ui
			r.recordViewChange(own)
			r.broadcast(typeViewChange, own)
		}
	}
	r.maybeInstallView(v.NewView)
}

// recordViewChange stores a vote.
func (r *Replica) recordViewChange(v *viewChangeMsg) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.viewChangeVotes[v.NewView] == nil {
		r.viewChangeVotes[v.NewView] = make(map[string]*viewChangeMsg)
	}
	r.viewChangeVotes[v.NewView][v.ReplicaID] = v
}

// maybeInstallView lets the new view's leader broadcast NEW-VIEW once it
// holds f+1 votes (including its own).
func (r *Replica) maybeInstallView(target uint64) {
	r.mu.Lock()
	if target <= r.view {
		r.mu.Unlock()
		return
	}
	newLeader := r.members[int(target)%len(r.members)]
	if newLeader != r.cfg.ID {
		r.mu.Unlock()
		return
	}
	votes := r.viewChangeVotes[target]
	quorum := r.toleranceLocked() + 1
	if len(votes) < quorum {
		r.mu.Unlock()
		return
	}
	maxExec := uint64(0)
	proof := make([]viewChangeMsg, 0, len(votes))
	for _, v := range votes {
		proof = append(proof, *v)
		if v.LastExec > maxExec {
			maxExec = v.LastExec
		}
	}
	sort.Slice(proof, func(i, j int) bool { return proof[i].ReplicaID < proof[j].ReplicaID })
	if r.lastExec > maxExec {
		maxExec = r.lastExec
	}
	r.mu.Unlock()

	n := &newViewMsg{View: target, LeaderID: r.cfg.ID, MaxExec: maxExec, Proof: proof}
	ui, err := r.cfg.USIG.CreateUI(n.signedPayload())
	if err != nil {
		return
	}
	n.UI = ui
	r.logf("installing view %d (maxExec %d)", target, maxExec)
	r.adoptView(n)
	r.broadcast(typeNewView, n)
}

// onNewView handles the NEW-VIEW installation message.
func (r *Replica) onNewView(n *newViewMsg) {
	r.mu.Lock()
	if n.View <= r.view {
		r.mu.Unlock()
		return
	}
	expectedLeader := r.members[int(n.View)%len(r.members)]
	if n.UI.ReplicaID != expectedLeader || n.LeaderID != expectedLeader {
		r.mu.Unlock()
		return
	}
	quorum := r.toleranceLocked() + 1
	r.mu.Unlock()

	// Verify the proof: f+1 distinct valid view-change votes for this view.
	valid := make(map[string]bool)
	for i := range n.Proof {
		v := n.Proof[i]
		if v.NewView != n.View || v.UI.ReplicaID != v.ReplicaID {
			continue
		}
		if err := r.cfg.Verifier.VerifyUI(v.signedPayload(), v.UI); err != nil {
			continue
		}
		valid[v.ReplicaID] = true
	}
	if len(valid) < quorum {
		r.logf("reject new-view %d: only %d valid votes", n.View, len(valid))
		return
	}
	r.adoptView(n)
}

// adoptView switches to the new view and re-tracks pending requests.
func (r *Replica) adoptView(n *newViewMsg) {
	r.mu.Lock()
	if n.View <= r.view {
		r.mu.Unlock()
		return
	}
	r.view = n.View
	r.inViewChange = false
	r.entries = make(map[uint64]*pendingEntry)
	start := n.MaxExec
	if r.lastExec > start {
		start = r.lastExec
	}
	r.nextPrepareSeq = start + 1
	r.expectedSeq = start + 1
	for view := range r.viewChangeVotes {
		if view <= n.View {
			delete(r.viewChangeVotes, view)
		}
	}
	behind := r.lastExec < n.MaxExec
	r.mu.Unlock()

	if behind {
		r.requestStateSyncLocked(n.MaxExec)
	}
}

// emitCheckpoint broadcasts this replica's state digest (Fig 17c).
func (r *Replica) emitCheckpoint(seq uint64) {
	c := &checkpointMsg{ReplicaID: r.cfg.ID, Seq: seq, Digest: r.cfg.Store.Digest()}
	ui, err := r.cfg.USIG.CreateUI(c.signedPayload())
	if err != nil {
		return
	}
	c.UI = ui
	r.recordCheckpoint(c)
	r.broadcast(typeCheckpoint, c)
}

// onCheckpoint handles a peer's checkpoint.
func (r *Replica) onCheckpoint(c *checkpointMsg) {
	if c.UI.ReplicaID != c.ReplicaID {
		return
	}
	r.recordCheckpoint(c)
	// A replica that observes a stable checkpoint far ahead of its own
	// execution is missing state (e.g. it joined or recovered); catch up.
	r.mu.Lock()
	behind := c.Seq > r.lastExec && r.stableSeq >= c.Seq
	target := c.Seq
	r.mu.Unlock()
	if behind {
		r.requestStateSyncLocked(target)
	}
}

// recordCheckpoint stores a checkpoint vote and advances the stable
// checkpoint on f+1 matching digests.
func (r *Replica) recordCheckpoint(c *checkpointMsg) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c.Seq <= r.stableSeq {
		return
	}
	if r.checkpointVotes[c.Seq] == nil {
		r.checkpointVotes[c.Seq] = make(map[string][32]byte)
	}
	r.checkpointVotes[c.Seq][c.ReplicaID] = c.Digest
	// Count agreement on the most common digest.
	counts := make(map[[32]byte]int)
	for _, d := range r.checkpointVotes[c.Seq] {
		counts[d]++
	}
	quorum := r.toleranceLocked() + 1
	for _, n := range counts {
		if n >= quorum {
			r.stableSeq = c.Seq
			// Garbage-collect old votes.
			for seq := range r.checkpointVotes {
				if seq <= r.stableSeq {
					delete(r.checkpointVotes, seq)
				}
			}
			break
		}
	}
}

// StableCheckpoint returns the highest sequence with f+1 matching digests.
func (r *Replica) StableCheckpoint() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stableSeq
}

// RequestStateSync asks peers for a snapshot at or beyond minSeq (used by
// joining and recovered replicas, Fig 17d-e).
func (r *Replica) RequestStateSync(minSeq uint64) {
	r.requestStateSyncLocked(minSeq)
}

func (r *Replica) requestStateSyncLocked(minSeq uint64) {
	req := &stateRequestMsg{ReplicaID: r.cfg.ID, MinSeq: minSeq}
	r.broadcast(typeStateRequest, req)
}

// onStateRequest serves a snapshot (STATE, Fig 17d).
func (r *Replica) onStateRequest(s *stateRequestMsg) {
	r.mu.Lock()
	lastExec := r.lastExec
	view := r.view
	members := append([]string(nil), r.members...)
	r.mu.Unlock()
	if lastExec < s.MinSeq {
		return // cannot help
	}
	snapshot, err := r.cfg.Store.Snapshot()
	if err != nil {
		return
	}
	resp := &stateResponseMsg{
		ReplicaID: r.cfg.ID,
		Seq:       lastExec,
		View:      view,
		Digest:    r.cfg.Store.Digest(),
		Snapshot:  snapshot,
		Members:   members,
	}
	r.sendTo(s.ReplicaID, typeStateResponse, resp)
}

// stateVoteKey identifies a snapshot candidate.
type stateVoteKey struct {
	seq    uint64
	digest [32]byte
}

// newProbeStore builds a scratch store for snapshot digest verification.
func newProbeStore() *replica.KVStore { return replica.NewKVStore() }

// onStateResponse collects snapshots and installs one once f+1 replicas
// agree on (seq, digest). The f+1 rule mirrors §VII-C: a recovered replica
// initializes its state from f+1 identical copies.
func (r *Replica) onStateResponse(s *stateResponseMsg) {
	r.mu.Lock()
	if s.Seq <= r.lastExec {
		r.mu.Unlock()
		return
	}
	if r.stateResponses == nil {
		r.stateResponses = make(map[stateVoteKey]map[string]*stateResponseMsg)
	}
	key := stateVoteKey{seq: s.Seq, digest: s.Digest}
	if r.stateResponses[key] == nil {
		r.stateResponses[key] = make(map[string]*stateResponseMsg)
	}
	r.stateResponses[key][s.ReplicaID] = s
	quorum := r.toleranceLocked() + 1
	votes := len(r.stateResponses[key])
	r.mu.Unlock()

	if votes < quorum {
		return
	}
	// Verify the snapshot digest matches before installing.
	probe := replicaStoreDigest(s.Snapshot)
	if probe == nil || !bytes.Equal(probe, s.Digest[:]) {
		r.logf("state response digest mismatch from %s", s.ReplicaID)
		return
	}
	if err := r.cfg.Store.Restore(s.Snapshot); err != nil {
		r.logf("restore: %v", err)
		return
	}
	r.mu.Lock()
	r.lastExec = s.Seq
	if s.View > r.view {
		r.view = s.View
		r.inViewChange = false
	}
	if len(s.Members) >= 2 {
		members := append([]string(nil), s.Members...)
		sort.Strings(members)
		r.members = members
	}
	r.entries = make(map[uint64]*pendingEntry)
	r.nextPrepareSeq = s.Seq + 1
	r.expectedSeq = s.Seq + 1
	r.stateResponses = nil
	r.mu.Unlock()
	r.logf("state transfer complete at seq %d", s.Seq)
}

// replicaStoreDigest computes the digest a fresh store would have after
// restoring the snapshot.
func replicaStoreDigest(snapshot []byte) []byte {
	probe := newProbeStore()
	if err := probe.Restore(snapshot); err != nil {
		return nil
	}
	d := probe.Digest()
	return d[:]
}

// applyConfigOp executes a reconfiguration op that was ordered through
// consensus (Fig 17 e-f). All honest replicas apply it at the same sequence
// number, so membership changes deterministically.
func (r *Replica) applyConfigOp(value string) {
	var op configOp
	if err := json.Unmarshal([]byte(value), &op); err != nil {
		r.logf("bad config op: %v", err)
		return
	}
	r.mu.Lock()
	oldLeader := r.leaderLocked()
	switch op.Action {
	case "join":
		present := false
		for _, m := range r.members {
			if m == op.NodeID {
				present = true
			}
		}
		if !present {
			r.members = append(r.members, op.NodeID)
			sort.Strings(r.members)
		}
	case "evict":
		out := r.members[:0]
		for _, m := range r.members {
			if m != op.NodeID {
				out = append(out, m)
			}
		}
		r.members = out
	}
	leaderEvicted := op.Action == "evict" && op.NodeID == oldLeader
	r.mu.Unlock()
	r.logf("config %s %s -> members %v", op.Action, op.NodeID, r.Members())

	if leaderEvicted {
		// The evicted node can no longer lead; move to the next view
		// (Fig 17f: EVICT triggers NEW-VIEW).
		r.startViewChange()
	}
}
