package minbft

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"tolerance/internal/replica"
	"tolerance/internal/transport"
	"tolerance/internal/usig"
)

// TestMinBFTOverTCP runs a 3-replica group over real TCP sockets — the
// cross-process deployment path of the transport layer.
func TestMinBFTOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp integration test")
	}
	verifier, err := usig.NewHMACVerifier(clusterKey)
	if err != nil {
		t.Fatal(err)
	}
	registry := replica.NewRegistry()

	// Endpoints first: member addresses are the TCP listen addresses.
	var endpoints []*transport.TCPEndpoint
	var members []string
	for i := 0; i < 3; i++ {
		ep, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		endpoints = append(endpoints, ep)
		members = append(members, ep.Addr())
	}
	var replicas []*Replica
	for i, ep := range endpoints {
		u, err := usig.NewHMAC(members[i], clusterKey)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewReplica(Config{
			ID:             members[i],
			Members:        members,
			Endpoint:       ep,
			USIG:           u,
			Verifier:       verifier,
			Registry:       registry,
			Store:          replica.NewKVStore(),
			RequestTimeout: time.Second,
			TickInterval:   5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		replicas = append(replicas, r)
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
		for _, ep := range endpoints {
			_ = ep.Close()
		}
	}()

	signer, err := replica.NewSigner("tcp-client")
	if err != nil {
		t.Fatal(err)
	}
	if err := registry.Register("tcp-client", signer.PublicKey()); err != nil {
		t.Fatal(err)
	}
	clientEP, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer clientEP.Close()
	// The client's "address" for replies is its TCP listen address, but
	// requests carry ClientID = signer ID; replicas reply to the request's
	// ClientID, so the client must be addressable by it. Use the listen
	// address as the client ID instead.
	signer2, err := replica.NewSigner(clientEP.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := registry.Register(clientEP.Addr(), signer2.PublicKey()); err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(signer2, clientEP, members, 1)
	if err != nil {
		t.Fatal(err)
	}
	client.Timeout = 8 * time.Second

	for i := 0; i < 3; i++ {
		result, err := client.Submit(replica.Op{
			Type: replica.OpWrite, Key: "tcp", Value: fmt.Sprintf("v%d", i),
		})
		if err != nil {
			t.Fatalf("op %d over tcp: %v", i, err)
		}
		if result != fmt.Sprintf("v%d", i) {
			t.Fatalf("result = %q", result)
		}
	}
}

// TestMessageEncodingRoundTrips checks that every protocol message survives
// the wire format and that the UI-certified payload is stable across
// marshal/unmarshal (a mismatch would break verification between peers).
func TestMessageEncodingRoundTrips(t *testing.T) {
	u, err := usig.NewHMAC("r1", clusterKey)
	if err != nil {
		t.Fatal(err)
	}
	signer, err := replica.NewSigner("c1")
	if err != nil {
		t.Fatal(err)
	}
	req := signer.Sign(replica.Op{Type: replica.OpWrite, Key: "k", Value: "v"})

	p := &prepareMsg{View: 3, Seq: 9, Request: req}
	ui, err := u.CreateUI(p.signedPayload())
	if err != nil {
		t.Fatal(err)
	}
	p.UI = ui
	raw, err := encode(typePrepare, p)
	if err != nil {
		t.Fatal(err)
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if env.Type != typePrepare {
		t.Fatalf("type = %s", env.Type)
	}
	var decoded prepareMsg
	if err := json.Unmarshal(env.Data, &decoded); err != nil {
		t.Fatal(err)
	}
	if string(decoded.signedPayload()) != string(p.signedPayload()) {
		t.Error("signed payload changed across the wire")
	}
	v, err := usig.NewHMACVerifier(clusterKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.VerifyUI(decoded.signedPayload(), decoded.UI); err != nil {
		t.Errorf("UI does not verify after round trip: %v", err)
	}

	// Commit round trip.
	c := &commitMsg{View: 3, Seq: 9, ReplicaID: "r1", PrepareDigest: prepareDigest(p)}
	cui, err := u.CreateUI(c.signedPayload())
	if err != nil {
		t.Fatal(err)
	}
	c.UI = cui
	rawC, err := encode(typeCommit, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rawC, &env); err != nil {
		t.Fatal(err)
	}
	var decodedC commitMsg
	if err := json.Unmarshal(env.Data, &decodedC); err != nil {
		t.Fatal(err)
	}
	if decodedC.PrepareDigest != c.PrepareDigest {
		t.Error("prepare digest corrupted")
	}
	if err := v.VerifyUI(decodedC.signedPayload(), decodedC.UI); err != nil {
		t.Errorf("commit UI does not verify: %v", err)
	}
}

// TestFIFOGateBuffersOutOfOrder exercises the anti-equivocation FIFO rule:
// a message with counter n+2 must wait for counter n+1.
func TestFIFOGateBuffersOutOfOrder(t *testing.T) {
	c := newCluster(t, 3, 0, transport.Conditions{})
	// Heavy pipelining: issue many requests quickly; FIFO processing must
	// still deliver a consistent sequence everywhere.
	type result struct {
		idx int
		err error
	}
	results := make(chan result, 10)
	for i := 0; i < 10; i++ {
		go func(i int) {
			cli := c.client(fmt.Sprintf("client-%d", i))
			_, err := cli.Submit(replica.Op{
				Type: replica.OpWrite, Key: fmt.Sprintf("k%d", i), Value: "v",
			})
			results <- result{i, err}
		}(i)
	}
	for i := 0; i < 10; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("concurrent request %d: %v", r.idx, r.err)
		}
	}
	c.waitForAgreement(c.members, 10, 5*time.Second)
	ref := c.stores["r0"].Digest()
	for _, id := range c.members[1:] {
		if c.stores[id].Digest() != ref {
			t.Errorf("replica %s diverged under pipelining", id)
		}
	}
}
