// Package baselines implements the control strategies TOLERANCE is compared
// against in §VIII-B:
//
//   - NO-RECOVERY: never recovers or adds nodes (RAMPART, SECURE-RING).
//   - PERIODIC: recovers each node every Delta_R steps, never adds nodes
//     (PBFT, VM-FIT, WORM-IT, PRRW, ... — the most common scheme).
//   - PERIODIC-ADAPTIVE: periodic recovery plus a heuristic add rule —
//     add a node when an observation reaches twice its mean (SITAR, ITSI,
//     ITUA approximation).
//   - TOLERANCE: the paper's feedback strategies (threshold recovery from
//     Problem 1 + the CMDP replication strategy from Problem 2).
package baselines

import (
	"errors"
	"math/rand"

	"tolerance/internal/cmdp"
	"tolerance/internal/nodemodel"
	"tolerance/internal/recovery"
)

// NodeContext is the per-node information available to a control policy at
// one time step.
type NodeContext struct {
	// Belief is the node controller's current compromise belief (eq. 4).
	Belief float64
	// Obs is the latest priority-weighted alert count.
	Obs int
	// WindowPos is the node's position in its BTR calendar window
	// (1..DeltaR-1); the forced position 0 is handled by the emulation.
	WindowPos int
	// DeltaR is the BTR bound (recovery.InfiniteDeltaR when unconstrained).
	DeltaR int
}

// SystemContext is the global information available to the replication
// policy at one time step.
type SystemContext struct {
	// HealthyEstimate is s_t = floor(sum_i (1 - b_i)) (eq. 8).
	HealthyEstimate int
	// AliveNodes is the current replication factor N_t.
	AliveNodes int
	// Observations are the latest alert counts of alive nodes.
	Observations []int
	// MeanObs is the historical mean alert count E[O_t].
	MeanObs float64
	// Rng drives randomized policies.
	Rng *rand.Rand
}

// Policy is a two-level control strategy: per-node recovery plus global
// replication.
type Policy interface {
	// Name identifies the strategy in tables and figures.
	Name() string
	// UsesBTR reports whether the emulation should apply the forced
	// calendar recoveries of eq. (6b).
	UsesBTR() bool
	// NodeAction decides recovery for one node.
	NodeAction(ctx NodeContext) nodemodel.Action
	// AddNode decides whether to grow the system this step.
	AddNode(ctx SystemContext) bool
}

// NoRecovery is the NO-RECOVERY baseline.
type NoRecovery struct{}

// Name implements Policy.
func (NoRecovery) Name() string { return "NO-RECOVERY" }

// UsesBTR implements Policy.
func (NoRecovery) UsesBTR() bool { return false }

// NodeAction implements Policy.
func (NoRecovery) NodeAction(NodeContext) nodemodel.Action { return nodemodel.Wait }

// AddNode implements Policy.
func (NoRecovery) AddNode(SystemContext) bool { return false }

// Periodic is the PERIODIC baseline: recovery comes only from the forced
// calendar (every Delta_R steps); no replication control.
type Periodic struct{}

// Name implements Policy.
func (Periodic) Name() string { return "PERIODIC" }

// UsesBTR implements Policy.
func (Periodic) UsesBTR() bool { return true }

// NodeAction implements Policy.
func (Periodic) NodeAction(NodeContext) nodemodel.Action { return nodemodel.Wait }

// AddNode implements Policy.
func (Periodic) AddNode(SystemContext) bool { return false }

// PeriodicAdaptive is the PERIODIC-ADAPTIVE baseline: periodic recovery
// plus "add a node when o_{i,t} >= 2 E[O_t]" (§VIII-B). Like the rule-based
// systems it approximates (SITAR, ITSI, ITUA), it replaces lost capacity up
// to a target size rather than growing without bound.
type PeriodicAdaptive struct {
	// TargetN caps additions: nodes are only added while fewer than
	// TargetN are alive. Zero disables the cap.
	TargetN int
}

// Name implements Policy.
func (PeriodicAdaptive) Name() string { return "PERIODIC-ADAPTIVE" }

// UsesBTR implements Policy.
func (PeriodicAdaptive) UsesBTR() bool { return true }

// NodeAction implements Policy.
func (PeriodicAdaptive) NodeAction(NodeContext) nodemodel.Action { return nodemodel.Wait }

// AddNode implements Policy.
func (p PeriodicAdaptive) AddNode(ctx SystemContext) bool {
	if p.TargetN > 0 && ctx.AliveNodes >= p.TargetN {
		return false
	}
	threshold := 2 * ctx.MeanObs
	if threshold <= 0 {
		return false
	}
	for _, o := range ctx.Observations {
		if float64(o) >= threshold {
			return true
		}
	}
	return false
}

// Tolerance is the paper's feedback strategy pair.
type Tolerance struct {
	// Recovery is the Problem 1 threshold strategy.
	Recovery *recovery.ThresholdStrategy
	// Replication is the Problem 2 solution; nil disables adding nodes.
	Replication *cmdp.Solution
}

// NewTolerance validates and builds the TOLERANCE policy.
func NewTolerance(rec *recovery.ThresholdStrategy, rep *cmdp.Solution) (*Tolerance, error) {
	if rec == nil {
		return nil, errors.New("baselines: nil recovery strategy")
	}
	return &Tolerance{Recovery: rec, Replication: rep}, nil
}

// Name implements Policy.
func (*Tolerance) Name() string { return "TOLERANCE" }

// UsesBTR implements Policy.
func (*Tolerance) UsesBTR() bool { return true }

// NodeAction implements Policy.
func (t *Tolerance) NodeAction(ctx NodeContext) nodemodel.Action {
	return t.Recovery.Action(ctx.Belief, ctx.WindowPos)
}

// AddNode implements Policy.
func (t *Tolerance) AddNode(ctx SystemContext) bool {
	if t.Replication == nil {
		return false
	}
	return t.Replication.Sample(ctx.Rng, ctx.HealthyEstimate) == 1
}
