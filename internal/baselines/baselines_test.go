package baselines

import (
	"math/rand"
	"testing"

	"tolerance/internal/cmdp"
	"tolerance/internal/nodemodel"
	"tolerance/internal/recovery"
)

func TestPolicyNames(t *testing.T) {
	tol, err := NewTolerance(&recovery.ThresholdStrategy{Thresholds: []float64{0.5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		p    Policy
		name string
		btr  bool
	}{
		{NoRecovery{}, "NO-RECOVERY", false},
		{Periodic{}, "PERIODIC", true},
		{PeriodicAdaptive{}, "PERIODIC-ADAPTIVE", true},
		{tol, "TOLERANCE", true},
	} {
		if tc.p.Name() != tc.name {
			t.Errorf("name = %q, want %q", tc.p.Name(), tc.name)
		}
		if tc.p.UsesBTR() != tc.btr {
			t.Errorf("%s UsesBTR = %v, want %v", tc.name, tc.p.UsesBTR(), tc.btr)
		}
	}
}

func TestNewToleranceValidation(t *testing.T) {
	if _, err := NewTolerance(nil, nil); err == nil {
		t.Error("nil recovery strategy should fail")
	}
}

func TestNoRecoveryAndPeriodicNeverAct(t *testing.T) {
	ctx := NodeContext{Belief: 0.99, Obs: 30}
	if (NoRecovery{}).NodeAction(ctx) != nodemodel.Wait {
		t.Error("NO-RECOVERY recovered")
	}
	if (Periodic{}).NodeAction(ctx) != nodemodel.Wait {
		t.Error("PERIODIC recovered outside the calendar")
	}
	sctx := SystemContext{HealthyEstimate: 0, Rng: rand.New(rand.NewSource(1))}
	if (NoRecovery{}).AddNode(sctx) || (Periodic{}).AddNode(sctx) {
		t.Error("static baselines added nodes")
	}
}

func TestPeriodicAdaptiveAddRule(t *testing.T) {
	p := PeriodicAdaptive{}
	// o >= 2 E[O] triggers an addition (§VIII-B).
	ctx := SystemContext{Observations: []int{3, 21}, MeanObs: 10}
	if !p.AddNode(ctx) {
		t.Error("should add when an observation doubles the mean")
	}
	ctx = SystemContext{Observations: []int{3, 19}, MeanObs: 10}
	if p.AddNode(ctx) {
		t.Error("should not add below the threshold")
	}
	if p.AddNode(SystemContext{Observations: []int{5}}) {
		t.Error("zero mean must not trigger")
	}
}

func TestToleranceDelegates(t *testing.T) {
	rec := &recovery.ThresholdStrategy{Thresholds: []float64{0.6}, DeltaR: recovery.InfiniteDeltaR}
	model, err := cmdp.NewBinomialModel(10, 1, 0.9, 0.95, 0)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := cmdp.Solve(model)
	if err != nil {
		t.Fatal(err)
	}
	tol, err := NewTolerance(rec, sol)
	if err != nil {
		t.Fatal(err)
	}
	if tol.NodeAction(NodeContext{Belief: 0.7, WindowPos: 1}) != nodemodel.Recover {
		t.Error("belief above threshold should recover")
	}
	if tol.NodeAction(NodeContext{Belief: 0.5, WindowPos: 1}) != nodemodel.Wait {
		t.Error("belief below threshold should wait")
	}
	rng := rand.New(rand.NewSource(2))
	// At s=0 the replication strategy must add.
	added := false
	for i := 0; i < 20; i++ {
		if tol.AddNode(SystemContext{HealthyEstimate: 0, Rng: rng}) {
			added = true
		}
	}
	if !added {
		t.Error("TOLERANCE never added at s=0")
	}
	// Without a replication solution it never adds.
	tolNoRep, _ := NewTolerance(rec, nil)
	if tolNoRep.AddNode(SystemContext{HealthyEstimate: 0, Rng: rng}) {
		t.Error("nil replication policy added a node")
	}
}
