// Package recovery implements Problem 1 of the paper (optimal intrusion
// recovery): threshold recovery strategies (Theorem 1), the bounded-time-to-
// recovery (BTR) constraint (eq. 6b), Algorithm 1 (parametric optimization of
// threshold strategies), an exact average-cost dynamic-programming solver
// used as the optimal reference, and the Monte-Carlo evaluator that measures
// J_i (eq. 5), T(R) and F(R).
package recovery

import (
	"errors"
	"fmt"

	"tolerance/internal/nodemodel"
)

// InfiniteDeltaR encodes Delta_R = infinity (no BTR constraint).
const InfiniteDeltaR = 0

// ErrBadStrategy is returned for malformed strategy parameters.
var ErrBadStrategy = errors.New("recovery: bad strategy")

// Strategy decides the recovery action from the current belief and the BTR
// window position (eq. 6b forces recovery at the fixed calendar times
// k*Delta_R; windowPos is t mod Delta_R, or t itself when Delta_R = inf).
type Strategy interface {
	// Action returns Wait or Recover for window position windowPos >= 1;
	// the forced recoveries at windowPos = 0 are applied by the caller.
	Action(belief float64, windowPos int) nodemodel.Action
}

// ThresholdStrategy is the parametric strategy of Algorithm 1 (line 6):
// recover iff b_t >= theta_k with k = min(windowPos, d), one threshold per
// window position, collapsing to a single stationary threshold when
// Delta_R = infinity (Corollary 1).
type ThresholdStrategy struct {
	// Thresholds holds theta_1..theta_d in [0, 1].
	Thresholds []float64
	// DeltaR is the BTR bound; InfiniteDeltaR means unconstrained. The
	// forced calendar recoveries are applied by the simulator and
	// controllers, not by the strategy itself.
	DeltaR int
}

// NewThresholdStrategy validates and builds a threshold strategy. For a
// finite deltaR the parameter dimension is deltaR-1 (one threshold per
// window position before the forced recovery); for InfiniteDeltaR it is 1.
func NewThresholdStrategy(thresholds []float64, deltaR int) (*ThresholdStrategy, error) {
	if len(thresholds) == 0 {
		return nil, fmt.Errorf("%w: no thresholds", ErrBadStrategy)
	}
	for i, th := range thresholds {
		if th < 0 || th > 1 {
			return nil, fmt.Errorf("%w: threshold[%d] = %v", ErrBadStrategy, i, th)
		}
	}
	if deltaR < 0 {
		return nil, fmt.Errorf("%w: deltaR = %d", ErrBadStrategy, deltaR)
	}
	if deltaR != InfiniteDeltaR && len(thresholds) != ThresholdDim(deltaR) {
		return nil, fmt.Errorf("%w: %d thresholds for deltaR %d, want %d",
			ErrBadStrategy, len(thresholds), deltaR, ThresholdDim(deltaR))
	}
	cp := make([]float64, len(thresholds))
	copy(cp, thresholds)
	return &ThresholdStrategy{Thresholds: cp, DeltaR: deltaR}, nil
}

// ThresholdDim returns the parameter dimension d of Algorithm 1 (line 4):
// deltaR-1 for finite deltaR, else 1.
func ThresholdDim(deltaR int) int {
	if deltaR == InfiniteDeltaR {
		return 1
	}
	if deltaR < 2 {
		return 1
	}
	return deltaR - 1
}

// Action implements Strategy.
func (s *ThresholdStrategy) Action(belief float64, windowPos int) nodemodel.Action {
	if belief >= s.Threshold(windowPos) {
		return nodemodel.Recover
	}
	return nodemodel.Wait
}

// Threshold returns the threshold used at the given window position.
func (s *ThresholdStrategy) Threshold(windowPos int) float64 {
	k := windowPos
	if k < 1 {
		k = 1
	}
	if k > len(s.Thresholds) {
		k = len(s.Thresholds)
	}
	return s.Thresholds[k-1]
}

// NeverRecover is the NO-RECOVERY baseline as a Strategy.
type NeverRecover struct{}

// Action implements Strategy.
func (NeverRecover) Action(float64, int) nodemodel.Action { return nodemodel.Wait }

// AlwaysRecover recovers every step; useful as a cost upper bound in tests.
type AlwaysRecover struct{}

// Action implements Strategy.
func (AlwaysRecover) Action(float64, int) nodemodel.Action { return nodemodel.Recover }

// PeriodicStrategy recovers at fixed calendar times (every Period steps)
// regardless of the belief — the PERIODIC baseline of §VIII-B restricted to
// a single node.
type PeriodicStrategy struct {
	// Period between recoveries; <= 0 never recovers.
	Period int
}

// Action implements Strategy.
func (s PeriodicStrategy) Action(_ float64, windowPos int) nodemodel.Action {
	if s.Period > 0 && windowPos%s.Period == 0 {
		return nodemodel.Recover
	}
	return nodemodel.Wait
}
