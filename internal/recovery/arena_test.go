package recovery

import (
	"testing"

	"tolerance/internal/nodemodel"
)

// TestDPArenaReuseBitIdentical is the arena's correctness contract: a
// sweep of distinct (DeltaR, params) problems solved through one shared
// arena — each solve inheriting the previous solve's slabs — must produce
// solutions bit-identical to fresh-scratch SolveDP. Exact equality on
// every output field, because cached DP solutions feed the fleet's
// byte-stability guarantees.
func TestDPArenaReuseBitIdentical(t *testing.T) {
	arena := NewArena()
	// pa starts at 0.1: the stationary value iteration does not converge
	// below ~0.1 regardless of scratch source (a solver property, equally
	// visible through SolveDP), and the sweep's point is arena-vs-fresh
	// equality, not convergence range.
	for _, deltaR := range []int{1, 2, 5, 25, InfiniteDeltaR} {
		for _, pa := range []float64{0.1, 0.2, 0.3} {
			p := nodemodel.DefaultParams()
			p.PA = pa
			cfg := DPConfig{DeltaR: deltaR, GridSize: 200}

			shared, err := SolveDPWith(p, cfg, arena)
			if err != nil {
				t.Fatalf("deltaR=%d pa=%v: shared-arena solve: %v", deltaR, pa, err)
			}
			fresh, err := SolveDP(p, cfg)
			if err != nil {
				t.Fatalf("deltaR=%d pa=%v: fresh solve: %v", deltaR, pa, err)
			}

			if shared.AvgCost != fresh.AvgCost {
				t.Errorf("deltaR=%d pa=%v: AvgCost %v != %v", deltaR, pa, shared.AvgCost, fresh.AvgCost)
			}
			if len(shared.Thresholds) != len(fresh.Thresholds) {
				t.Fatalf("deltaR=%d pa=%v: %d thresholds, want %d",
					deltaR, pa, len(shared.Thresholds), len(fresh.Thresholds))
			}
			for i := range shared.Thresholds {
				if shared.Thresholds[i] != fresh.Thresholds[i] {
					t.Errorf("deltaR=%d pa=%v: threshold %d: %v != %v",
						deltaR, pa, i, shared.Thresholds[i], fresh.Thresholds[i])
				}
			}
			if len(shared.Value) != len(fresh.Value) {
				t.Fatalf("deltaR=%d pa=%v: %d value stages, want %d",
					deltaR, pa, len(shared.Value), len(fresh.Value))
			}
			for k := range shared.Value {
				for i := range shared.Value[k] {
					if shared.Value[k][i] != fresh.Value[k][i] {
						t.Fatalf("deltaR=%d pa=%v: value[%d][%d]: %v != %v",
							deltaR, pa, k, i, shared.Value[k][i], fresh.Value[k][i])
					}
				}
			}
		}
	}
}

// TestDPSolutionNotArenaBacked pins the aliasing contract SolveDPWith
// documents: a later solve on the same arena must not mutate an earlier
// solve's outputs (solutions escape into long-lived caches).
func TestDPSolutionNotArenaBacked(t *testing.T) {
	arena := NewArena()
	p := nodemodel.DefaultParams()
	cfg := DPConfig{DeltaR: 10, GridSize: 150}
	first, err := SolveDPWith(p, cfg, arena)
	if err != nil {
		t.Fatal(err)
	}
	avg, th0, v00 := first.AvgCost, first.Thresholds[0], first.Value[0][0]

	p2 := nodemodel.DefaultParams()
	p2.PA = 0.42
	if _, err := SolveDPWith(p2, DPConfig{DeltaR: InfiniteDeltaR, GridSize: 150}, arena); err != nil {
		t.Fatal(err)
	}
	if first.AvgCost != avg || first.Thresholds[0] != th0 || first.Value[0][0] != v00 {
		t.Fatal("second solve on the shared arena mutated the first solution")
	}
}

// TestDPArenaResolveZeroAlloc guards the re-solve hot path the fleet's
// pooled arenas exist for: once an arena has been sized by a first solve,
// re-running the stencil preparation and the window induction into
// caller-held output storage allocates nothing.
func TestDPArenaResolveZeroAlloc(t *testing.T) {
	p := nodemodel.DefaultParams()
	cfg := DPConfig{DeltaR: 8, GridSize: 200}.withDefaults()
	grid := make([]float64, cfg.GridSize+1)
	for i := range grid {
		grid[i] = float64(i) / float64(cfg.GridSize)
	}
	solver := &dpSolver{p: p, cfg: cfg, grid: grid, ar: NewArena()}
	solver.prepare() // size the arena

	g := len(grid)
	backing := make([]float64, cfg.DeltaR*g)
	stages := make([][]float64, cfg.DeltaR)
	for k := range stages {
		stages[k] = backing[k*g : (k+1)*g : (k+1)*g]
	}
	thresholds := make([]float64, cfg.DeltaR-1)

	if avg := testing.AllocsPerRun(20, func() {
		solver.prepare()
		solver.inductWindow(stages, thresholds)
	}); avg != 0 {
		t.Fatalf("arena-backed re-solve allocates %v per run, want 0", avg)
	}
}
