package recovery

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"tolerance/internal/nodemodel"
)

// NoRecoveryPenalty is the time-to-recovery reported when an intrusion is
// never recovered, following the paper's Table 7 convention (10^3).
const NoRecoveryPenalty = 1000

// ErrBadSimConfig is returned for invalid simulation configurations.
var ErrBadSimConfig = errors.New("recovery: bad simulation config")

// SimConfig configures the Monte-Carlo evaluation of a recovery strategy.
type SimConfig struct {
	// Episodes is the number of independent episodes (the paper evaluates
	// with M = 50 samples, Table 8).
	Episodes int
	// Horizon is the number of time steps per episode.
	Horizon int
	// DeltaR is the BTR bound enforced by the simulator; InfiniteDeltaR
	// disables forced recoveries.
	DeltaR int
}

func (c SimConfig) validate() error {
	if c.Episodes < 1 {
		return fmt.Errorf("%w: episodes = %d", ErrBadSimConfig, c.Episodes)
	}
	if c.Horizon < 1 {
		return fmt.Errorf("%w: horizon = %d", ErrBadSimConfig, c.Horizon)
	}
	if c.DeltaR < 0 {
		return fmt.Errorf("%w: deltaR = %d", ErrBadSimConfig, c.DeltaR)
	}
	return nil
}

// Metrics aggregates the evaluation quantities of §III-C over episodes.
type Metrics struct {
	// AvgCost is J_i (eq. 5): total cost divided by alive steps.
	AvgCost float64
	// TimeToRecovery is T(R): mean steps from compromise until the next
	// recovery starts, with NoRecoveryPenalty for unrecovered intrusions.
	TimeToRecovery float64
	// RecoveryFrequency is F(R): fraction of steps where recovery occurs.
	RecoveryFrequency float64
	// CompromisedFraction is the fraction of alive steps spent compromised.
	CompromisedFraction float64
	// CrashFraction is the fraction of episodes ending in a crash.
	CrashFraction float64
	// Intrusions is the total number of compromise events observed.
	Intrusions int
}

// Evaluate runs Monte-Carlo episodes of the node model under the strategy
// with the BTR constraint enforced and returns aggregate metrics.
func Evaluate(rng *rand.Rand, p nodemodel.Params, s Strategy, cfg SimConfig) (*Metrics, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, fmt.Errorf("%w: nil strategy", ErrBadSimConfig)
	}

	var (
		totalCost      float64
		aliveSteps     int
		recoveries     int
		crashes        int
		recoveryTimes  []float64
		intrusionCount int
	)

	for e := 0; e < cfg.Episodes; e++ {
		ep := runEpisode(rng, p, s, cfg)
		totalCost += ep.cost
		aliveSteps += ep.aliveSteps
		recoveries += ep.recoveries
		intrusionCount += ep.intrusions
		recoveryTimes = append(recoveryTimes, ep.recoveryTimes...)
		if ep.crashed {
			crashes++
		}
	}

	m := &Metrics{
		CrashFraction: float64(crashes) / float64(cfg.Episodes),
		Intrusions:    intrusionCount,
	}
	if aliveSteps > 0 {
		m.AvgCost = totalCost / float64(aliveSteps)
		m.RecoveryFrequency = float64(recoveries) / float64(aliveSteps)
	}
	if len(recoveryTimes) > 0 {
		sum := 0.0
		for _, t := range recoveryTimes {
			sum += t
		}
		m.TimeToRecovery = sum / float64(len(recoveryTimes))
	}
	comp := 0.0
	if aliveSteps > 0 {
		comp = totalCostToCompromised(totalCost, recoveries, p.Eta)
		m.CompromisedFraction = comp / float64(aliveSteps)
	}
	return m, nil
}

// totalCostToCompromised inverts eq. (5): total cost = eta * compromisedWait
// + recoveries, so compromisedWait = (cost - recoveries) / eta.
func totalCostToCompromised(totalCost float64, recoveries int, eta float64) float64 {
	w := (totalCost - float64(recoveries)) / eta
	return math.Max(0, w)
}

type episodeResult struct {
	cost          float64
	aliveSteps    int
	recoveries    int
	intrusions    int
	crashed       bool
	recoveryTimes []float64
}

// runEpisode simulates one episode of Problem 1: the node starts with
// initial compromise probability pA (b_{i,1} = p_{A,i}, eq. 6a), the
// controller observes alerts, updates the belief (App. A) and acts; the BTR
// constraint forces recovery when the window position reaches deltaR.
func runEpisode(rng *rand.Rand, p nodemodel.Params, s Strategy, cfg SimConfig) episodeResult {
	var res episodeResult

	state := nodemodel.Healthy
	if rng.Float64() < p.PA {
		state = nodemodel.Compromised
		res.intrusions++
	}
	// Initial belief and observation.
	belief := p.PA
	obs := p.SampleObservation(rng, state)
	belief = bayesObservation(p, belief, obs)

	compromisedAt := -1
	if state == nodemodel.Compromised {
		compromisedAt = 0
	}

	for t := 1; t <= cfg.Horizon; t++ {
		// The BTR constraint (6b) forces recovery at the fixed calendar
		// times k*DeltaR; between them the strategy is indexed by the
		// window position t mod DeltaR (Cor. 1, Alg. 1 line 6).
		windowPos := t
		forced := false
		if cfg.DeltaR != InfiniteDeltaR {
			windowPos = t % cfg.DeltaR
			forced = windowPos == 0
		}
		var action nodemodel.Action
		if forced {
			action = nodemodel.Recover
		} else {
			action = s.Action(belief, windowPos)
		}
		res.cost += p.Cost(state, action)
		res.aliveSteps++
		if action == nodemodel.Recover {
			res.recoveries++
			if compromisedAt >= 0 {
				res.recoveryTimes = append(res.recoveryTimes, float64(t-compromisedAt))
				compromisedAt = -1
			}
		}

		prevState := state
		state = p.SampleTransition(rng, prevState, action)
		if state == nodemodel.Crashed {
			res.crashed = true
			if compromisedAt >= 0 {
				res.recoveryTimes = append(res.recoveryTimes, NoRecoveryPenalty)
			}
			return res
		}
		if state == nodemodel.Compromised && (prevState == nodemodel.Healthy || action == nodemodel.Recover) {
			res.intrusions++
			if compromisedAt < 0 {
				compromisedAt = t
			}
		}
		if state == nodemodel.Healthy && prevState == nodemodel.Compromised &&
			action == nodemodel.Wait && compromisedAt >= 0 {
			// A software update silently cleaned the node (eq. 2g). This is
			// not a controller recovery, so it does not enter T(R); the
			// intrusion simply ends (Table 7 reports T(R) = 10^3 exactly for
			// NO-RECOVERY even though pU > 0).
			compromisedAt = -1
		}

		obs = p.SampleObservation(rng, state)
		belief = p.UpdateBelief(belief, action, obs)
	}
	if compromisedAt >= 0 {
		res.recoveryTimes = append(res.recoveryTimes, NoRecoveryPenalty)
	}
	return res
}

// bayesObservation applies only the observation part of the belief update
// (used for the very first observation where no action preceded).
func bayesObservation(p nodemodel.Params, prior float64, obs int) float64 {
	zc := p.ZCompromised.Prob(obs)
	zh := p.ZHealthy.Prob(obs)
	num := zc * prior
	den := num + zh*(1-prior)
	if den <= 0 {
		return prior
	}
	return num / den
}
