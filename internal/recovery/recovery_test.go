package recovery

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tolerance/internal/nodemodel"
	"tolerance/internal/opt"
)

func TestThresholdDim(t *testing.T) {
	tests := []struct {
		deltaR, want int
	}{
		{InfiniteDeltaR, 1},
		{1, 1},
		{2, 1},
		{5, 4},
		{15, 14},
		{25, 24},
	}
	for _, tt := range tests {
		if got := ThresholdDim(tt.deltaR); got != tt.want {
			t.Errorf("ThresholdDim(%d) = %d, want %d", tt.deltaR, got, tt.want)
		}
	}
}

func TestNewThresholdStrategyValidation(t *testing.T) {
	if _, err := NewThresholdStrategy(nil, 5); err == nil {
		t.Error("empty thresholds should fail")
	}
	if _, err := NewThresholdStrategy([]float64{1.5}, InfiniteDeltaR); err == nil {
		t.Error("out-of-range threshold should fail")
	}
	if _, err := NewThresholdStrategy([]float64{0.5, 0.5}, 5); err == nil {
		t.Error("wrong dimension for deltaR=5 should fail")
	}
	if _, err := NewThresholdStrategy([]float64{0.5}, -1); err == nil {
		t.Error("negative deltaR should fail")
	}
	s, err := NewThresholdStrategy([]float64{0.1, 0.2, 0.3, 0.4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Threshold(2) != 0.2 {
		t.Errorf("Threshold(2) = %v", s.Threshold(2))
	}
	// Clamping.
	if s.Threshold(0) != 0.1 || s.Threshold(99) != 0.4 {
		t.Error("threshold clamping broken")
	}
}

func TestThresholdStrategyAction(t *testing.T) {
	s := &ThresholdStrategy{Thresholds: []float64{0.7}, DeltaR: InfiniteDeltaR}
	if s.Action(0.69, 1) != nodemodel.Wait {
		t.Error("below threshold should wait")
	}
	if s.Action(0.7, 1) != nodemodel.Recover {
		t.Error("at threshold should recover (eq. 7)")
	}
}

func TestEvaluateNoRecoveryHighCost(t *testing.T) {
	p := nodemodel.DefaultParams()
	rng := rand.New(rand.NewSource(1))
	m, err := Evaluate(rng, p, NeverRecover{}, SimConfig{Episodes: 40, Horizon: 200, DeltaR: InfiniteDeltaR})
	if err != nil {
		t.Fatal(err)
	}
	// Without recovery the node drifts into the compromised state and pays
	// eta per step: the average cost approaches eta.
	if m.AvgCost < 1 {
		t.Errorf("no-recovery cost = %v, want > 1", m.AvgCost)
	}
	if m.RecoveryFrequency != 0 {
		t.Errorf("recovery frequency = %v, want 0", m.RecoveryFrequency)
	}
	if m.TimeToRecovery < NoRecoveryPenalty/2 {
		t.Errorf("T(R) = %v, want near penalty %d", m.TimeToRecovery, NoRecoveryPenalty)
	}
}

func TestEvaluateAlwaysRecoverCostOne(t *testing.T) {
	p := nodemodel.DefaultParams()
	rng := rand.New(rand.NewSource(2))
	m, err := Evaluate(rng, p, AlwaysRecover{}, SimConfig{Episodes: 20, Horizon: 200, DeltaR: InfiniteDeltaR})
	if err != nil {
		t.Fatal(err)
	}
	// Recovering every step costs exactly 1 per step.
	if math.Abs(m.AvgCost-1) > 1e-9 {
		t.Errorf("always-recover cost = %v, want 1", m.AvgCost)
	}
	if math.Abs(m.RecoveryFrequency-1) > 1e-9 {
		t.Errorf("recovery frequency = %v, want 1", m.RecoveryFrequency)
	}
}

func TestEvaluateThresholdBeatsExtremes(t *testing.T) {
	p := nodemodel.DefaultParams()
	s := &ThresholdStrategy{Thresholds: []float64{0.7}, DeltaR: InfiniteDeltaR}
	cfg := SimConfig{Episodes: 60, Horizon: 200, DeltaR: InfiniteDeltaR}

	rng := rand.New(rand.NewSource(3))
	mT, err := Evaluate(rng, p, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng = rand.New(rand.NewSource(3))
	mNever, err := Evaluate(rng, p, NeverRecover{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng = rand.New(rand.NewSource(3))
	mAlways, err := Evaluate(rng, p, AlwaysRecover{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mT.AvgCost >= mNever.AvgCost {
		t.Errorf("threshold cost %v not better than never %v", mT.AvgCost, mNever.AvgCost)
	}
	if mT.AvgCost >= mAlways.AvgCost {
		t.Errorf("threshold cost %v not better than always %v", mT.AvgCost, mAlways.AvgCost)
	}
	// Feedback control reacts within a few steps (paper: T(R) ~ 1.4).
	if mT.TimeToRecovery > 20 {
		t.Errorf("threshold T(R) = %v, want small", mT.TimeToRecovery)
	}
}

func TestEvaluateBTRForcesRecoveries(t *testing.T) {
	p := nodemodel.DefaultParams()
	cfg := SimConfig{Episodes: 20, Horizon: 200, DeltaR: 10}
	rng := rand.New(rand.NewSource(4))
	m, err := Evaluate(rng, p, NeverRecover{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Calendar recoveries every 10 steps: frequency ~0.1 even though the
	// strategy itself never recovers.
	if m.RecoveryFrequency < 0.05 {
		t.Errorf("F(R) = %v, want ~0.1 under BTR", m.RecoveryFrequency)
	}
	// And T(R) is bounded by ~DeltaR.
	if m.TimeToRecovery > 3*10 {
		t.Errorf("T(R) = %v, want <= ~DeltaR", m.TimeToRecovery)
	}
}

func TestEvaluateValidation(t *testing.T) {
	p := nodemodel.DefaultParams()
	rng := rand.New(rand.NewSource(5))
	if _, err := Evaluate(rng, p, nil, SimConfig{Episodes: 1, Horizon: 1}); err == nil {
		t.Error("nil strategy should fail")
	}
	if _, err := Evaluate(rng, p, NeverRecover{}, SimConfig{Episodes: 0, Horizon: 1}); err == nil {
		t.Error("zero episodes should fail")
	}
	if _, err := Evaluate(rng, p, NeverRecover{}, SimConfig{Episodes: 1, Horizon: 0}); err == nil {
		t.Error("zero horizon should fail")
	}
	bad := p
	bad.Eta = 0
	if _, err := Evaluate(rng, bad, NeverRecover{}, SimConfig{Episodes: 1, Horizon: 1}); err == nil {
		t.Error("bad params should fail")
	}
}

func TestSolveDPStationary(t *testing.T) {
	p := nodemodel.DefaultParams()
	sol, err := SolveDP(p, DPConfig{DeltaR: InfiniteDeltaR, GridSize: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Thresholds) != 1 {
		t.Fatalf("stationary solution has %d thresholds", len(sol.Thresholds))
	}
	al := sol.Thresholds[0]
	// The threshold must be interior: never-recover and always-recover are
	// both suboptimal under the Table 8 parameters. (Fig 13's alpha* = 0.76
	// is obtained with the emulation's fitted Ẑ, which is far more
	// informative than the Table 8 BetaBin model used here; with BetaBin
	// observations the verified optimum is ~0.28.)
	if al < 0.05 || al > 0.95 {
		t.Errorf("stationary threshold = %v, want interior value", al)
	}
	// Cross-check optimality against a fixed-threshold sweep: no swept
	// threshold may beat the DP cost by more than Monte-Carlo noise.
	cfg := SimConfig{Episodes: 150, Horizon: 200, DeltaR: InfiniteDeltaR}
	for _, th := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		rng := rand.New(rand.NewSource(21))
		s := &ThresholdStrategy{Thresholds: []float64{th}, DeltaR: InfiniteDeltaR}
		m, err := Evaluate(rng, p, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if m.AvgCost < sol.AvgCost-0.05 {
			t.Errorf("threshold %v beats DP optimum: %v < %v", th, m.AvgCost, sol.AvgCost)
		}
	}
	// The optimal average cost is bounded by the trivial policies:
	// J(always recover) = 1 and J is at least the cost of the occasional
	// recovery, which happens at rate <= pA-ish.
	if sol.AvgCost <= 0 || sol.AvgCost >= 1 {
		t.Errorf("J* = %v, want in (0, 1)", sol.AvgCost)
	}
}

func TestSolveDPMatchesSimulation(t *testing.T) {
	// The DP average cost must agree with a simulation of its own strategy.
	p := nodemodel.DefaultParams()
	sol, err := SolveDP(p, DPConfig{DeltaR: InfiniteDeltaR, GridSize: 300})
	if err != nil {
		t.Fatal(err)
	}
	s := sol.Strategy(InfiniteDeltaR)
	rng := rand.New(rand.NewSource(6))
	m, err := Evaluate(rng, p, s, SimConfig{Episodes: 300, Horizon: 300, DeltaR: InfiniteDeltaR})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.AvgCost-sol.AvgCost) > 0.05 {
		t.Errorf("simulated cost %v vs DP %v", m.AvgCost, sol.AvgCost)
	}
}

func TestSolveDPWindowThresholdsMonotone(t *testing.T) {
	// Corollary 1 / Fig 15: thresholds increase toward the scheduled
	// recovery within a window.
	p := nodemodel.DefaultParams()
	sol, err := SolveDP(p, DPConfig{DeltaR: 20, GridSize: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Thresholds) != 19 {
		t.Fatalf("window solution has %d thresholds, want 19", len(sol.Thresholds))
	}
	for k := 1; k < len(sol.Thresholds); k++ {
		if sol.Thresholds[k] < sol.Thresholds[k-1]-0.02 {
			t.Errorf("threshold decreased at position %d: %v -> %v (Cor 1 violated)",
				k, sol.Thresholds[k-1], sol.Thresholds[k])
		}
	}
	// The last positions before the forced recovery should be nearly 1.
	if sol.Thresholds[len(sol.Thresholds)-1] < 0.5 {
		t.Errorf("final threshold = %v, want high", sol.Thresholds[len(sol.Thresholds)-1])
	}
}

func TestSolveDPDeltaR1(t *testing.T) {
	p := nodemodel.DefaultParams()
	sol, err := SolveDP(p, DPConfig{DeltaR: 1, GridSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if sol.AvgCost != 1 {
		t.Errorf("J(deltaR=1) = %v, want 1 (recover every step)", sol.AvgCost)
	}
}

func TestSolveDPAvgCostMonotoneInDeltaR(t *testing.T) {
	// Looser BTR constraints cannot hurt the optimal cost: J*(5) >= J*(15)
	// >= J*(inf). (The paper's Table 2 orders differently within noise; the
	// exact optima must be monotone since the strategy spaces are nested.)
	p := nodemodel.DefaultParams()
	var prev = math.Inf(1)
	for _, deltaR := range []int{5, 15, 25} {
		sol, err := SolveDP(p, DPConfig{DeltaR: deltaR, GridSize: 200})
		if err != nil {
			t.Fatal(err)
		}
		if sol.AvgCost > prev+1e-6 {
			t.Errorf("J*(%d) = %v exceeds J* of tighter constraint %v", deltaR, sol.AvgCost, prev)
		}
		prev = sol.AvgCost
	}
	inf, err := SolveDP(p, DPConfig{DeltaR: InfiniteDeltaR, GridSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	if inf.AvgCost > prev+1e-6 {
		t.Errorf("J*(inf) = %v exceeds J*(25) = %v", inf.AvgCost, prev)
	}
}

func TestAlgorithm1FindsNearOptimalStrategy(t *testing.T) {
	p := nodemodel.DefaultParams()
	dp, err := SolveDP(p, DPConfig{DeltaR: InfiniteDeltaR, GridSize: 300})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Algorithm1(context.Background(), p, Algorithm1Config{
		DeltaR:    InfiniteDeltaR,
		Optimizer: opt.CEM{Population: 20},
		Budget:    200,
		Episodes:  30,
		Horizon:   150,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Re-evaluate the learned strategy with fresh randomness.
	rng := rand.New(rand.NewSource(99))
	m, err := Evaluate(rng, p, res.Strategy, SimConfig{Episodes: 200, Horizon: 200, DeltaR: InfiniteDeltaR})
	if err != nil {
		t.Fatal(err)
	}
	if m.AvgCost > dp.AvgCost*1.5+0.05 {
		t.Errorf("Alg 1 cost %v far from optimal %v", m.AvgCost, dp.AvgCost)
	}
}

func TestAlgorithm1Validation(t *testing.T) {
	p := nodemodel.DefaultParams()
	if _, err := Algorithm1(context.Background(), p, Algorithm1Config{}); err == nil {
		t.Error("missing optimizer should fail")
	}
	if _, err := Algorithm1(context.Background(), p, Algorithm1Config{Optimizer: opt.RandomSearch{}, Budget: 1, Episodes: 1, Horizon: 1}); err == nil {
		t.Error("budget 1 should fail")
	}
	if _, err := Algorithm1(context.Background(), p, Algorithm1Config{Optimizer: opt.RandomSearch{}, Budget: 10, Episodes: 0, Horizon: 1}); err == nil {
		t.Error("episodes 0 should fail")
	}
}

func TestPeriodicStrategyCalendar(t *testing.T) {
	s := PeriodicStrategy{Period: 5}
	recoveries := 0
	for pos := 1; pos <= 20; pos++ {
		if s.Action(0, pos) == nodemodel.Recover {
			recoveries++
		}
	}
	if recoveries != 4 {
		t.Errorf("periodic recoveries in 20 steps = %d, want 4", recoveries)
	}
	if (PeriodicStrategy{}).Action(1, 100) != nodemodel.Wait {
		t.Error("period 0 should never recover")
	}
}

// Property: the evaluator's cost decomposition is consistent:
// J = eta * compromisedFraction + recoveryFrequency (eq. 5).
func TestCostDecompositionProperty(t *testing.T) {
	p := nodemodel.DefaultParams()
	f := func(seed int64, thRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		th := float64(thRaw) / 255
		s := &ThresholdStrategy{Thresholds: []float64{th}, DeltaR: InfiniteDeltaR}
		m, err := Evaluate(rng, p, s, SimConfig{Episodes: 10, Horizon: 100, DeltaR: InfiniteDeltaR})
		if err != nil {
			return false
		}
		lhs := m.AvgCost
		rhs := p.Eta*m.CompromisedFraction + m.RecoveryFrequency
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: lowering the threshold never decreases recovery frequency
// (with common random numbers).
func TestThresholdMonotoneRecoveryFrequency(t *testing.T) {
	p := nodemodel.DefaultParams()
	cfg := SimConfig{Episodes: 30, Horizon: 150, DeltaR: InfiniteDeltaR}
	freqs := make([]float64, 0, 3)
	for _, th := range []float64{0.2, 0.6, 0.95} {
		rng := rand.New(rand.NewSource(11))
		s := &ThresholdStrategy{Thresholds: []float64{th}, DeltaR: InfiniteDeltaR}
		m, err := Evaluate(rng, p, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		freqs = append(freqs, m.RecoveryFrequency)
	}
	if !(freqs[0] >= freqs[1] && freqs[1] >= freqs[2]) {
		t.Errorf("recovery frequency not monotone in threshold: %v", freqs)
	}
}

// TestSolveStationaryFixedPoint pins the warm-start contract: the
// bisection's stopping-value iteration now starts each rho from the
// previous rho's fixed point, which must not change what it converges to.
// The returned stationary value has to satisfy the optimality equation
// W(b) = min(1 - rho, eta*b - rho + E_o W(b')) at every grid belief, and
// the cycle-start value E_o W(b_1(o)) has to be (approximately) zero — the
// defining property of the optimal average cost.
func TestSolveStationaryFixedPoint(t *testing.T) {
	p := nodemodel.DefaultParams()
	cfg := DPConfig{DeltaR: InfiniteDeltaR}
	sol, err := SolveDP(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	solver := &dpSolver{p: p, cfg: cfg.withDefaults(), grid: sol.Grid, ar: NewArena()}
	solver.prepare()
	w := sol.Value[0]
	solver.expectWaitAll(w, solver.accBuf)
	recoverVal := 1 - sol.AvgCost
	for i, b := range sol.Grid {
		v := math.Min(recoverVal, p.Eta*b-sol.AvgCost+solver.accBuf[i])
		if math.Abs(v-w[i]) > 1e-8 {
			t.Fatalf("Bellman residual %g at b = %v", v-w[i], b)
		}
	}
	if reset := solver.expectReset(w); math.Abs(reset) > 1e-6 {
		t.Errorf("cycle-start value = %g, want ~0 at the optimal rho", reset)
	}

	// Determinism: a second solve (its own warm-start sequence) is
	// bit-identical.
	sol2, err := SolveDP(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sol2.AvgCost != sol.AvgCost || sol2.Thresholds[0] != sol.Thresholds[0] {
		t.Errorf("repeat solve differs: rho %v vs %v, threshold %v vs %v",
			sol2.AvgCost, sol.AvgCost, sol2.Thresholds[0], sol.Thresholds[0])
	}
}

// TestAlgorithm1WorkersBitIdentical is the parallel-training determinism
// contract: Algorithm 1 learns exactly the same strategy — thresholds,
// cost, evaluation count — for any Workers value, because candidates
// evaluate on per-candidate rng streams derived from the training seed and
// fold in candidate order.
func TestAlgorithm1WorkersBitIdentical(t *testing.T) {
	p := nodemodel.DefaultParams()
	for _, po := range []opt.Optimizer{opt.CEM{Population: 20}, opt.DE{}, opt.SPSA{}} {
		po := po
		t.Run(po.Name(), func(t *testing.T) {
			run := func(workers int) *Algorithm1Result {
				res, err := Algorithm1(context.Background(), p, Algorithm1Config{
					DeltaR:    15,
					Optimizer: po,
					Budget:    60,
					Episodes:  5,
					Horizon:   40,
					Seed:      4,
					Workers:   workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			base := run(1)
			for _, workers := range []int{2, 8} {
				res := run(workers)
				if res.Cost != base.Cost {
					t.Errorf("workers=%d: cost %v != sequential %v", workers, res.Cost, base.Cost)
				}
				if res.Search.Evaluations != base.Search.Evaluations {
					t.Errorf("workers=%d: evaluations %d != %d", workers,
						res.Search.Evaluations, base.Search.Evaluations)
				}
				if len(res.Strategy.Thresholds) != len(base.Strategy.Thresholds) {
					t.Fatalf("workers=%d: threshold dim %d != %d", workers,
						len(res.Strategy.Thresholds), len(base.Strategy.Thresholds))
				}
				for i := range res.Strategy.Thresholds {
					if res.Strategy.Thresholds[i] != base.Strategy.Thresholds[i] {
						t.Errorf("workers=%d: threshold[%d] = %v != %v", workers, i,
							res.Strategy.Thresholds[i], base.Strategy.Thresholds[i])
					}
				}
			}
		})
	}
}
