package recovery

import (
	"errors"
	"fmt"
	"math"

	"tolerance/internal/nodemodel"
)

// ErrDPNotConverged is returned when the stationary value iteration for
// Delta_R = infinity fails to converge.
var ErrDPNotConverged = errors.New("recovery: dp value iteration did not converge")

// DPConfig configures the exact dynamic-programming solver.
type DPConfig struct {
	// DeltaR is the BTR bound; InfiniteDeltaR solves the stationary problem.
	DeltaR int
	// GridSize is the number of belief-grid intervals (default 500).
	GridSize int
	// BisectIterations bounds the bisection on the average cost for the
	// stationary problem (default 40).
	BisectIterations int
	// MaxValueIterations bounds the stationary value iteration (default 5000).
	MaxValueIterations int
}

func (c DPConfig) withDefaults() DPConfig {
	if c.GridSize <= 0 {
		c.GridSize = 500
	}
	if c.BisectIterations <= 0 {
		c.BisectIterations = 40
	}
	if c.MaxValueIterations <= 0 {
		c.MaxValueIterations = 5000
	}
	return c
}

// Normalized returns the configuration with all defaults applied, so two
// configurations that select the same solve (for example GridSize 0 and the
// default 500) compare equal — strategy caches key on the normalized form.
func (c DPConfig) Normalized() DPConfig { return c.withDefaults() }

// DPSolution is the exact solution of Problem 1.
//
// For finite Delta_R the BTR constraint (eq. 6b) forces recovery at the
// fixed calendar times k*Delta_R, so the process renews every Delta_R steps
// (eq. 16) and the optimal strategy follows from backward induction over one
// window. For Delta_R = infinity the process renews at (threshold-triggered)
// recoveries instead, and the average cost rho solves g(rho) = 0 where g is
// the optimal expected (cost - rho * time) per recovery cycle; rho is found
// by bisection. Crash absorption (probability <= pC2 per step) is ignored by
// the DP and handled by the simulator; the induced bias is O(pC2).
type DPSolution struct {
	// AvgCost is the optimal long-run average cost J* (eq. 5).
	AvgCost float64
	// Thresholds holds the optimal recovery thresholds alpha*_k per window
	// position k = 1..len(Thresholds) (Fig 15, Cor. 1); for
	// DeltaR = infinity it has a single stationary entry.
	Thresholds []float64
	// Grid is the belief grid used.
	Grid []float64
	// Value is the optimal cost-to-go at grid beliefs per window position
	// (finite Delta_R) or the stationary relative value (infinite).
	Value [][]float64
}

// Threshold returns alpha*_k clamped to the available window positions.
func (s *DPSolution) Threshold(windowPos int) float64 {
	k := windowPos
	if k < 1 {
		k = 1
	}
	if k > len(s.Thresholds) {
		k = len(s.Thresholds)
	}
	return s.Thresholds[k-1]
}

// Strategy converts the DP solution into a threshold strategy for deltaR.
func (s *DPSolution) Strategy(deltaR int) *ThresholdStrategy {
	dim := ThresholdDim(deltaR)
	th := make([]float64, dim)
	for k := 1; k <= dim; k++ {
		th[k-1] = s.Threshold(k)
	}
	return &ThresholdStrategy{Thresholds: th, DeltaR: deltaR}
}

// Arena is reusable scratch storage for dpSolver: the stencil tables,
// value-iteration buffers and prediction cache of a solve, kept as raw
// slabs that re-dimension (grow once, then slice) instead of reallocating
// per solve. Solutions computed through a shared arena are bit-identical to
// fresh-solver solutions for any (params, config) sequence — prepare fully
// re-derives every slab entry it reads (guarded by
// TestDPArenaReuseBitIdentical). Solver *output* (DPSolution's value
// arrays, grid and thresholds) is never arena-backed: solutions escape into
// long-lived caches, so they get their own allocations. An Arena is for one
// solve at a time; callers that solve in parallel hold one arena per
// worker (the fleet strategy cache pools them per-P).
type Arena struct {
	floats  []float64
	ints    []int32
	resetSt []stencilEntry
}

// NewArena returns an empty arena; the first solve sizes it.
func NewArena() *Arena { return &Arena{} }

// grabFloats returns a zero-filled float slab of the requested size,
// reusing the arena's backing array when it is large enough.
func (a *Arena) grabFloats(n int) []float64 {
	if cap(a.floats) < n {
		a.floats = make([]float64, n)
		return a.floats
	}
	s := a.floats[:n]
	clear(s)
	return s
}

// grabInts is grabFloats for the int32 stencil indices.
func (a *Arena) grabInts(n int) []int32 {
	if cap(a.ints) < n {
		a.ints = make([]int32, n)
		return a.ints
	}
	s := a.ints[:n]
	clear(s)
	return s
}

// SolveDP computes the optimal average cost and thresholds of Problem 1.
func SolveDP(p nodemodel.Params, cfg DPConfig) (*DPSolution, error) {
	return SolveDPWith(p, cfg, nil)
}

// SolveDPWith is SolveDP drawing solver scratch from a reusable arena (nil
// allocates fresh scratch, which is exactly SolveDP). The returned solution
// is bit-identical either way and never aliases the arena.
func SolveDPWith(p nodemodel.Params, cfg DPConfig, arena *Arena) (*DPSolution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.DeltaR < 0 {
		return nil, fmt.Errorf("%w: deltaR = %d", ErrBadStrategy, cfg.DeltaR)
	}
	if arena == nil {
		arena = NewArena()
	}

	grid := make([]float64, cfg.GridSize+1)
	for i := range grid {
		grid[i] = float64(i) / float64(cfg.GridSize)
	}
	solver := &dpSolver{p: p, cfg: cfg, grid: grid, ar: arena}
	solver.prepare()

	if cfg.DeltaR != InfiniteDeltaR {
		return solver.solveWindow()
	}
	return solver.solveStationary()
}

type dpSolver struct {
	p    nodemodel.Params
	cfg  DPConfig
	grid []float64
	ar   *Arena // scratch source; prepare re-derives every slab it reads

	// Interpolation stencils: for each grid belief b, waiting leads to the
	// predictive pb and, per observation o with probability po(o) > 0, to a
	// posterior that linearly interpolates two neighbouring grid values,
	// contributing po*(1-frac) to index idx and po*frac to idx+1. The
	// (index, weight) pairs are precomputed into flat parallel arrays
	// (structure-of-arrays), laid out column-major — observation-major,
	// grid-minor — so the Bellman sweep accumulates each observation's
	// contribution across the whole grid without a serial dependency chain
	// and without per-entry struct copies. Zero-probability entries carry
	// zero weights (exact-zero contributions) so every column stays dense.
	// Folding po into the weights changes only last-ulp rounding of the
	// value arrays; the extracted thresholds and strategies are unchanged
	// (they are grid points selected by comparisons far from the rounding
	// scale — SolveDP's pinned regression tests and the fleet determinism
	// suite hold bit-for-bit).
	stIdx        []int32 // len numObs*gridSize
	stWlo, stWhi []float64
	// Stencil from the post-recovery prior pA (used both for the recover
	// action's continuation and the window start), pruned of
	// zero-probability observations.
	resetSt []stencilEntry

	// Double buffers for the stationary value iteration and the shared
	// expectation accumulator. warm records that buf0 holds the converged
	// stopping value of the previous rho, so the next bisection step's
	// fixed-point iteration starts there instead of from zero — successive
	// rhos differ by a halving interval, so their fixed points are close
	// and the iteration converges in a fraction of the cold-start sweeps.
	buf0, buf1, accBuf []float64
	warm               bool
}

// stencilEntry is one observation's contribution to a Bellman expectation:
// probability po times the linear interpolation of the value function at
// the posterior, between grid indices idx and idx+1 with weights omfrac
// and frac (a clamped posterior at the grid top is encoded as idx = n-1,
// frac = 1).
type stencilEntry struct {
	idx          int32
	po           float64
	frac, omfrac float64
}

// stencilEntryFor builds the stencil entry for predictive belief pb and
// observation o with likelihoods zh, zc (po is zero when the observation
// cannot occur).
func (d *dpSolver) stencilEntryFor(pb, zh, zc float64) stencilEntry {
	n := len(d.grid) - 1
	po := pb*zc + (1-pb)*zh
	if po == 0 {
		return stencilEntry{}
	}
	post := pb * zc / po
	x := post * float64(n)
	i := int(x)
	var frac, omfrac float64
	if i >= n {
		i, frac, omfrac = n-1, 1, 0
	} else {
		frac = x - float64(i)
		omfrac = 1 - frac
	}
	return stencilEntry{idx: int32(i), po: po, frac: frac, omfrac: omfrac}
}

// prepare caches the belief-transition stencils. All float storage comes
// from one arena slab carved into the solver's views; the slabs are
// zero-filled on reuse (grabFloats/grabInts), because the stencil fill
// below skips zero-probability entries — an arena inherited from a
// different (params, config) solve must not leak stale weights through
// that skip path.
func (d *dpSolver) prepare() {
	numObs := d.p.NumObs()
	zH, zC := d.p.ZHealthy, d.p.ZCompromised
	g := len(d.grid)
	arena := d.ar.grabFloats(2*numObs*g + 4*g)
	cut := func(size int) []float64 {
		s := arena[:size:size]
		arena = arena[size:]
		return s
	}
	d.stWlo = cut(numObs * g)
	d.stWhi = cut(numObs * g)
	d.buf0 = cut(g)
	d.buf1 = cut(g)
	d.accBuf = cut(g)
	preds := cut(g)
	d.stIdx = d.ar.grabInts(numObs * g)
	for i, b := range d.grid {
		preds[i] = d.p.PredictBelief(b, nodemodel.Wait)
	}
	for o := 0; o < numObs; o++ {
		base := o * g
		zh, zc := zH.Prob(o), zC.Prob(o)
		for i, pb := range preds {
			st := d.stencilEntryFor(pb, zh, zc)
			if st.po == 0 {
				continue // zero weights: exact-zero contribution
			}
			d.stIdx[base+i] = st.idx
			d.stWlo[base+i] = st.po * st.omfrac
			d.stWhi[base+i] = st.po * st.frac
		}
	}
	d.resetSt = d.ar.resetSt[:0]
	for o := 0; o < numObs; o++ {
		if st := d.stencilEntryFor(d.p.PA, zH.Prob(o), zC.Prob(o)); st.po != 0 {
			d.resetSt = append(d.resetSt, st)
		}
	}
	d.ar.resetSt = d.resetSt
	d.warm = false
}

// expectWaitAll computes E_o[ W(b'(b,o)) ] under Wait for every grid
// belief at once into acc — the dense-slice-product form of the Bellman
// expectation. Each observation column is swept across the whole grid, so
// consecutive iterations touch independent accumulator cells
// (instruction-level parallelism instead of one serial add chain per grid
// point); the first column assigns instead of accumulating, which fuses
// the zeroing pass.
func (d *dpSolver) expectWaitAll(w, acc []float64) {
	g := len(d.grid)
	acc = acc[:g]
	numObs := len(d.stWlo) / g
	for o := 0; o < numObs; o++ {
		base := o * g
		wlo := d.stWlo[base : base+g : base+g]
		whi := d.stWhi[base : base+g : base+g]
		idx := d.stIdx[base : base+g : base+g]
		if len(whi) < len(wlo) || len(idx) < len(wlo) || len(acc) < len(wlo) {
			panic("recovery: stencil shape")
		}
		if o == 0 {
			for i, lo := range wlo {
				j := idx[i]
				acc[i] = w[j]*lo + w[j+1]*whi[i]
			}
			continue
		}
		for i, lo := range wlo {
			j := idx[i]
			acc[i] += w[j]*lo + w[j+1]*whi[i]
		}
	}
}

// expectReset computes E_o[ W(b'(o)) ] from the post-recovery prior pA.
func (d *dpSolver) expectReset(w []float64) float64 {
	e := 0.0
	for _, st := range d.resetSt {
		e += st.po * (w[st.idx]*st.omfrac + w[st.idx+1]*st.frac)
	}
	return e
}

// solveWindow performs backward induction over one calendar window of
// length DeltaR: position DeltaR carries the forced recovery (cost 1) and
// ends the window; earlier positions choose between waiting (cost eta*b)
// and recovering (cost 1, belief reset to pA).
func (d *dpSolver) solveWindow() (*DPSolution, error) {
	deltaR := d.cfg.DeltaR
	g := len(d.grid)
	// One backing array for all window stages: the per-stage values are
	// solver output (DPSolution.Value), so they are allocated per solve —
	// never from the arena — but one block keeps the backward induction off
	// the allocator.
	backing := make([]float64, deltaR*g)
	stages := make([][]float64, deltaR)
	for k := range stages {
		stages[k] = backing[k*g : (k+1)*g : (k+1)*g]
	}
	thresholds := make([]float64, max(deltaR-1, 1))
	avg := d.inductWindow(stages, thresholds)
	if deltaR == 1 {
		thresholds[0] = 0
	}
	return &DPSolution{
		AvgCost:    avg,
		Thresholds: thresholds,
		Grid:       d.grid,
		Value:      stages,
	}, nil
}

// inductWindow runs the backward induction into the caller's stage and
// threshold storage and returns the average window cost. It is the
// allocation-free core of solveWindow, split out so the arena-reuse guard
// test can re-solve without the output allocations. stages must hold
// DeltaR grid-length rows; thresholds holds max(DeltaR-1, 1) entries
// (position k's threshold at index k-1; untouched for DeltaR = 1).
func (d *dpSolver) inductWindow(stages [][]float64, thresholds []float64) float64 {
	p := d.p
	deltaR := d.cfg.DeltaR
	forced := stages[deltaR-1]
	for i := range forced {
		forced[i] = 1 // forced recovery cost; window ends here
	}

	for k := deltaR - 1; k >= 1; k-- {
		next := stages[k] // V(., k+1)
		recoverVal := 1 + d.expectReset(next)
		d.expectWaitAll(next, d.accBuf)
		cur := stages[k-1]
		threshold := 1.0
		set := false
		for i, b := range d.grid {
			waitVal := p.Eta*b + d.accBuf[i]
			if recoverVal <= waitVal {
				cur[i] = recoverVal
				if !set {
					threshold = b
					set = true
				}
			} else {
				cur[i] = waitVal
			}
		}
		thresholds[k-1] = threshold
	}

	if deltaR == 1 {
		return 1 // every step is a forced recovery
	}
	return d.expectReset(stages[0]) / float64(deltaR)
}

// solveStationary solves the unconstrained problem by bisection on rho over
// the renewal-at-recovery decomposition: for fixed rho the optimal stopping
// value W satisfies
//
//	W(b) = min( 1 - rho,  eta*b - rho + E_o W(b') ),
//
// and the optimal rho zeroes the cycle-start value E_o W(b_1(o)).
func (d *dpSolver) solveStationary() (*DPSolution, error) {
	p := d.p
	lo, hi := 0.0, p.Eta+1
	var w []float64
	var err error
	for it := 0; it < d.cfg.BisectIterations; it++ {
		rho := (lo + hi) / 2
		w, err = d.stoppingValue(rho)
		if err != nil {
			return nil, err
		}
		if d.expectReset(w) > 0 {
			lo = rho
		} else {
			hi = rho
		}
	}
	rho := (lo + hi) / 2
	w, err = d.stoppingValue(rho)
	if err != nil {
		return nil, err
	}

	// Extract the stationary threshold.
	threshold := 1.0
	recoverVal := 1 - rho
	d.expectWaitAll(w, d.accBuf)
	for i, b := range d.grid {
		waitVal := p.Eta*b - rho + d.accBuf[i]
		if recoverVal <= waitVal {
			threshold = b
			break
		}
	}
	return &DPSolution{
		AvgCost:    rho,
		Thresholds: []float64{threshold},
		Grid:       d.grid,
		Value:      [][]float64{append([]float64(nil), w...)},
	}, nil
}

// stoppingValue iterates the optimal-stopping fixed point for a given rho.
// The iteration ping-pongs between the solver's two value buffers instead
// of allocating a fresh array per sweep, and warm-starts from the previous
// rho's fixed point when one is available (the fixed point for each rho is
// unique and the iteration is a contraction, so the start point changes
// only the sweep count, not the limit — within the 1e-10 stopping
// tolerance). The returned slice aliases the solver's converged buffer: it
// is valid until the next stoppingValue call, and callers that keep it
// (solveStationary's final solution) copy it themselves. During bisection
// the value is only read through expectReset before the next call, so the
// aliasing saves one grid-sized allocation per bisection step.
func (d *dpSolver) stoppingValue(rho float64) ([]float64, error) {
	p := d.p
	recoverVal := 1 - rho
	w, next := d.buf0, d.buf1
	if !d.warm {
		for i := range w {
			w[i] = 0
		}
	}
	for it := 0; it < d.cfg.MaxValueIterations; it++ {
		diff := 0.0
		d.expectWaitAll(w, d.accBuf)
		for i, b := range d.grid {
			waitVal := p.Eta*b - rho + d.accBuf[i]
			v := math.Min(recoverVal, waitVal)
			next[i] = v
			if dd := math.Abs(v - w[i]); dd > diff {
				diff = dd
			}
		}
		w, next = next, w
		if diff < 1e-10 {
			// Leave the converged values in buf0 for the next rho.
			d.buf0, d.buf1, d.warm = w, next, true
			return w, nil
		}
	}
	return nil, fmt.Errorf("%w: rho = %v", ErrDPNotConverged, rho)
}
