package recovery

import (
	"errors"
	"fmt"
	"math"

	"tolerance/internal/nodemodel"
)

// ErrDPNotConverged is returned when the stationary value iteration for
// Delta_R = infinity fails to converge.
var ErrDPNotConverged = errors.New("recovery: dp value iteration did not converge")

// DPConfig configures the exact dynamic-programming solver.
type DPConfig struct {
	// DeltaR is the BTR bound; InfiniteDeltaR solves the stationary problem.
	DeltaR int
	// GridSize is the number of belief-grid intervals (default 500).
	GridSize int
	// BisectIterations bounds the bisection on the average cost for the
	// stationary problem (default 40).
	BisectIterations int
	// MaxValueIterations bounds the stationary value iteration (default 5000).
	MaxValueIterations int
}

func (c DPConfig) withDefaults() DPConfig {
	if c.GridSize <= 0 {
		c.GridSize = 500
	}
	if c.BisectIterations <= 0 {
		c.BisectIterations = 40
	}
	if c.MaxValueIterations <= 0 {
		c.MaxValueIterations = 5000
	}
	return c
}

// Normalized returns the configuration with all defaults applied, so two
// configurations that select the same solve (for example GridSize 0 and the
// default 500) compare equal — strategy caches key on the normalized form.
func (c DPConfig) Normalized() DPConfig { return c.withDefaults() }

// DPSolution is the exact solution of Problem 1.
//
// For finite Delta_R the BTR constraint (eq. 6b) forces recovery at the
// fixed calendar times k*Delta_R, so the process renews every Delta_R steps
// (eq. 16) and the optimal strategy follows from backward induction over one
// window. For Delta_R = infinity the process renews at (threshold-triggered)
// recoveries instead, and the average cost rho solves g(rho) = 0 where g is
// the optimal expected (cost - rho * time) per recovery cycle; rho is found
// by bisection. Crash absorption (probability <= pC2 per step) is ignored by
// the DP and handled by the simulator; the induced bias is O(pC2).
type DPSolution struct {
	// AvgCost is the optimal long-run average cost J* (eq. 5).
	AvgCost float64
	// Thresholds holds the optimal recovery thresholds alpha*_k per window
	// position k = 1..len(Thresholds) (Fig 15, Cor. 1); for
	// DeltaR = infinity it has a single stationary entry.
	Thresholds []float64
	// Grid is the belief grid used.
	Grid []float64
	// Value is the optimal cost-to-go at grid beliefs per window position
	// (finite Delta_R) or the stationary relative value (infinite).
	Value [][]float64
}

// Threshold returns alpha*_k clamped to the available window positions.
func (s *DPSolution) Threshold(windowPos int) float64 {
	k := windowPos
	if k < 1 {
		k = 1
	}
	if k > len(s.Thresholds) {
		k = len(s.Thresholds)
	}
	return s.Thresholds[k-1]
}

// Strategy converts the DP solution into a threshold strategy for deltaR.
func (s *DPSolution) Strategy(deltaR int) *ThresholdStrategy {
	dim := ThresholdDim(deltaR)
	th := make([]float64, dim)
	for k := 1; k <= dim; k++ {
		th[k-1] = s.Threshold(k)
	}
	return &ThresholdStrategy{Thresholds: th, DeltaR: deltaR}
}

// SolveDP computes the optimal average cost and thresholds of Problem 1.
func SolveDP(p nodemodel.Params, cfg DPConfig) (*DPSolution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.DeltaR < 0 {
		return nil, fmt.Errorf("%w: deltaR = %d", ErrBadStrategy, cfg.DeltaR)
	}

	grid := make([]float64, cfg.GridSize+1)
	for i := range grid {
		grid[i] = float64(i) / float64(cfg.GridSize)
	}
	solver := &dpSolver{p: p, cfg: cfg, grid: grid}
	solver.prepare()

	if cfg.DeltaR != InfiniteDeltaR {
		return solver.solveWindow()
	}
	return solver.solveStationary()
}

type dpSolver struct {
	p    nodemodel.Params
	cfg  DPConfig
	grid []float64

	// Cached posterior beliefs and observation probabilities: for each grid
	// belief b, waiting leads to predictive pb and posterior b'(o) with
	// probability po(o).
	postWait [][]float64 // [gridIdx][obs] posterior
	probWait [][]float64 // [gridIdx][obs] observation probability
	// Posterior/probabilities from the post-recovery prior pA (used both
	// for the recover action's continuation and the window start).
	postReset []float64
	probReset []float64
}

// prepare caches the belief transitions.
func (d *dpSolver) prepare() {
	p := d.p
	numObs := p.NumObs()
	d.postWait = make([][]float64, len(d.grid))
	d.probWait = make([][]float64, len(d.grid))
	for i, b := range d.grid {
		pb := p.PredictBelief(b, nodemodel.Wait)
		d.postWait[i] = make([]float64, numObs)
		d.probWait[i] = make([]float64, numObs)
		for o := 0; o < numObs; o++ {
			zc := p.ZCompromised.Prob(o)
			zh := p.ZHealthy.Prob(o)
			po := pb*zc + (1-pb)*zh
			d.probWait[i][o] = po
			if po > 0 {
				d.postWait[i][o] = pb * zc / po
			}
		}
	}
	d.postReset = make([]float64, numObs)
	d.probReset = make([]float64, numObs)
	pa := p.PA
	for o := 0; o < numObs; o++ {
		zc := p.ZCompromised.Prob(o)
		zh := p.ZHealthy.Prob(o)
		po := pa*zc + (1-pa)*zh
		d.probReset[o] = po
		if po > 0 {
			d.postReset[o] = pa * zc / po
		}
	}
}

// interpolate evaluates a grid function at belief b by linear interpolation.
func (d *dpSolver) interpolate(w []float64, b float64) float64 {
	n := len(d.grid) - 1
	x := b * float64(n)
	i := int(x)
	if i >= n {
		return w[n]
	}
	frac := x - float64(i)
	return w[i]*(1-frac) + w[i+1]*frac
}

// expectWait computes E_o[ W(b'(b,o)) ] for a grid belief index under Wait.
func (d *dpSolver) expectWait(w []float64, gridIdx int) float64 {
	e := 0.0
	for o, po := range d.probWait[gridIdx] {
		if po == 0 {
			continue
		}
		e += po * d.interpolate(w, d.postWait[gridIdx][o])
	}
	return e
}

// expectReset computes E_o[ W(b'(o)) ] from the post-recovery prior pA.
func (d *dpSolver) expectReset(w []float64) float64 {
	e := 0.0
	for o, po := range d.probReset {
		if po == 0 {
			continue
		}
		e += po * d.interpolate(w, d.postReset[o])
	}
	return e
}

// solveWindow performs backward induction over one calendar window of
// length DeltaR: position DeltaR carries the forced recovery (cost 1) and
// ends the window; earlier positions choose between waiting (cost eta*b)
// and recovering (cost 1, belief reset to pA).
func (d *dpSolver) solveWindow() (*DPSolution, error) {
	p := d.p
	deltaR := d.cfg.DeltaR
	stages := make([][]float64, deltaR)
	forced := make([]float64, len(d.grid))
	for i := range forced {
		forced[i] = 1 // forced recovery cost; window ends here
	}
	stages[deltaR-1] = forced
	thresholds := make([]float64, deltaR-1)

	for k := deltaR - 1; k >= 1; k-- {
		next := stages[k] // V(., k+1)
		recoverVal := 1 + d.expectReset(next)
		cur := make([]float64, len(d.grid))
		threshold := 1.0
		set := false
		for i, b := range d.grid {
			waitVal := p.Eta*b + d.expectWait(next, i)
			if recoverVal <= waitVal {
				cur[i] = recoverVal
				if !set {
					threshold = b
					set = true
				}
			} else {
				cur[i] = waitVal
			}
		}
		stages[k-1] = cur
		thresholds[k-1] = threshold
	}

	var avg float64
	if deltaR == 1 {
		avg = 1 // every step is a forced recovery
		thresholds = []float64{0}
	} else {
		avg = d.expectReset(stages[0]) / float64(deltaR)
	}
	return &DPSolution{
		AvgCost:    avg,
		Thresholds: thresholds,
		Grid:       d.grid,
		Value:      stages,
	}, nil
}

// solveStationary solves the unconstrained problem by bisection on rho over
// the renewal-at-recovery decomposition: for fixed rho the optimal stopping
// value W satisfies
//
//	W(b) = min( 1 - rho,  eta*b - rho + E_o W(b') ),
//
// and the optimal rho zeroes the cycle-start value E_o W(b_1(o)).
func (d *dpSolver) solveStationary() (*DPSolution, error) {
	p := d.p
	lo, hi := 0.0, p.Eta+1
	var w []float64
	var err error
	for it := 0; it < d.cfg.BisectIterations; it++ {
		rho := (lo + hi) / 2
		w, err = d.stoppingValue(rho)
		if err != nil {
			return nil, err
		}
		if d.expectReset(w) > 0 {
			lo = rho
		} else {
			hi = rho
		}
	}
	rho := (lo + hi) / 2
	w, err = d.stoppingValue(rho)
	if err != nil {
		return nil, err
	}

	// Extract the stationary threshold.
	threshold := 1.0
	recoverVal := 1 - rho
	for i, b := range d.grid {
		waitVal := p.Eta*b - rho + d.expectWait(w, i)
		if recoverVal <= waitVal {
			threshold = b
			_ = i
			break
		}
	}
	return &DPSolution{
		AvgCost:    rho,
		Thresholds: []float64{threshold},
		Grid:       d.grid,
		Value:      [][]float64{w},
	}, nil
}

// stoppingValue iterates the optimal-stopping fixed point for a given rho.
func (d *dpSolver) stoppingValue(rho float64) ([]float64, error) {
	p := d.p
	recoverVal := 1 - rho
	w := make([]float64, len(d.grid))
	for it := 0; it < d.cfg.MaxValueIterations; it++ {
		diff := 0.0
		next := make([]float64, len(d.grid))
		for i, b := range d.grid {
			waitVal := p.Eta*b - rho + d.expectWait(w, i)
			v := math.Min(recoverVal, waitVal)
			next[i] = v
			if dd := math.Abs(v - w[i]); dd > diff {
				diff = dd
			}
		}
		w = next
		if diff < 1e-10 {
			return w, nil
		}
	}
	return nil, fmt.Errorf("%w: rho = %v", ErrDPNotConverged, rho)
}
