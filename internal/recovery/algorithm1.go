package recovery

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"

	"tolerance/internal/nodemodel"
	"tolerance/internal/opt"
	"tolerance/internal/telemetry"
)

// ErrBadAlgorithm1Config is returned for invalid Algorithm 1 configurations.
var ErrBadAlgorithm1Config = errors.New("recovery: bad Algorithm 1 config")

// Algorithm1Config parameterizes Algorithm 1 of the paper: parametric
// optimization of threshold recovery strategies.
type Algorithm1Config struct {
	// DeltaR is the BTR bound (InfiniteDeltaR for no constraint). Following
	// line 4 of Algorithm 1, the threshold dimension is DeltaR-1 (or 1).
	DeltaR int
	// Optimizer is the parametric optimizer PO (SPSA, CEM, DE, BO, ...).
	Optimizer opt.Optimizer
	// Budget is the number of objective evaluations given to the optimizer.
	Budget int
	// Episodes per objective evaluation (Table 8: M = 50).
	Episodes int
	// Horizon of each simulated episode.
	Horizon int
	// Seed drives both the optimizer and the simulation noise.
	Seed int64
	// Workers bounds how many of a generation's candidate strategies
	// evaluate concurrently (0 defaults to GOMAXPROCS, 1 is fully
	// sequential). Every candidate's Monte-Carlo evaluation draws from its
	// own rng stream derived from the training seed and results fold in
	// candidate order, so the learned strategy is bit-identical for any
	// workers value.
	Workers int
	// Telemetry, when set, receives one observation per objective
	// evaluation (count + best-so-far). It is a pure observer attached
	// outside the rng/fold path: the learned strategy is bit-identical with
	// or without it.
	Telemetry *telemetry.Training
}

func (c Algorithm1Config) validate() error {
	if c.Optimizer == nil {
		return fmt.Errorf("%w: nil optimizer", ErrBadAlgorithm1Config)
	}
	if c.DeltaR < 0 {
		return fmt.Errorf("%w: deltaR = %d", ErrBadAlgorithm1Config, c.DeltaR)
	}
	if c.Budget < 2 {
		return fmt.Errorf("%w: budget = %d", ErrBadAlgorithm1Config, c.Budget)
	}
	if c.Episodes < 1 || c.Horizon < 1 {
		return fmt.Errorf("%w: episodes = %d, horizon = %d",
			ErrBadAlgorithm1Config, c.Episodes, c.Horizon)
	}
	if c.Workers < 0 {
		return fmt.Errorf("%w: workers = %d", ErrBadAlgorithm1Config, c.Workers)
	}
	return nil
}

// Algorithm1Result bundles the learned strategy with the optimizer trace.
type Algorithm1Result struct {
	// Strategy is the best threshold strategy found.
	Strategy *ThresholdStrategy
	// Cost is the Monte-Carlo estimate of J_i at Strategy.
	Cost float64
	// Search is the optimizer's result (trace, evaluations, elapsed time).
	Search *opt.Result
}

// Algorithm1 runs the paper's Algorithm 1: it parameterizes the strategy
// space with ThresholdDim(deltaR) thresholds (exploiting Theorem 1), defines
// the objective as the Monte-Carlo estimate of J_i (eq. 5) under the BTR
// constraint, and delegates the search to the given parametric optimizer.
// Cancelling ctx aborts the search within one objective evaluation and
// returns the context's error.
func Algorithm1(ctx context.Context, p nodemodel.Params, cfg Algorithm1Config) (*Algorithm1Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	dim := ThresholdDim(cfg.DeltaR)
	simCfg := SimConfig{Episodes: cfg.Episodes, Horizon: cfg.Horizon, DeltaR: cfg.DeltaR}

	// A fixed evaluation seed per theta (common random numbers) reduces the
	// variance of comparisons between candidate strategies. Every objective
	// call builds its own rng stream from that seed, which also makes the
	// objective safe for the optimizer's concurrent batch evaluation: no
	// candidate's draws can shift another's.
	evalSeed := cfg.Seed + 1
	objective := func(theta []float64) float64 {
		if ctx.Err() != nil {
			// Cancelled: short-circuit the remaining budget so the search
			// unwinds quickly; the result is discarded below.
			return 1e9
		}
		s := &ThresholdStrategy{Thresholds: theta, DeltaR: cfg.DeltaR}
		rng := rand.New(rand.NewSource(evalSeed))
		m, err := Evaluate(rng, p, s, simCfg)
		if err != nil {
			// Theta is always within [0,1]^d, so evaluation errors are
			// programming errors; surface them as a pessimal cost.
			return 1e9
		}
		return m.AvgCost
	}

	if cfg.Telemetry != nil {
		objective = opt.Instrument(objective, cfg.Telemetry.ObserveEval)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	searchRng := rand.New(rand.NewSource(cfg.Seed))
	res, err := cfg.Optimizer.Minimize(searchRng, dim, objective, cfg.Budget, workers)
	if err != nil {
		return nil, fmt.Errorf("recovery: algorithm 1 (%s): %w", cfg.Optimizer.Name(), err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	strategy, err := NewThresholdStrategy(res.Theta, cfg.DeltaR)
	if err != nil {
		return nil, err
	}
	return &Algorithm1Result{Strategy: strategy, Cost: res.Value, Search: res}, nil
}
