// Package cmdp implements Problem 2 of the paper (optimal replication
// factor): the constrained MDP over the expected number of healthy nodes
// (eq. 8-10), the occupancy-measure linear program of Algorithm 2 (eq. 14),
// the assumption checks of Theorem 2, and the failure-time analytics of
// Fig 6 (MTTF and reliability curves, Appendix F).
package cmdp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"tolerance/internal/dist"
	"tolerance/internal/markov"
	"tolerance/internal/nodemodel"
	"tolerance/internal/recovery"
)

// ErrInvalidModel is returned when a CMDP model fails validation.
var ErrInvalidModel = errors.New("cmdp: invalid model")

// ErrInfeasible is returned when the availability constraint cannot be met
// (assumption A of Theorem 2 violated).
var ErrInfeasible = errors.New("cmdp: availability constraint infeasible")

// NumActions is the size of the action space A_S = {0, 1} (add a node or
// not, eq. 8).
const NumActions = 2

// Model is the CMDP of Problem 2. States s in {0, ..., SMax} count healthy
// nodes; action 1 adds a node.
type Model struct {
	// SMax is the maximum number of nodes s_max.
	SMax int
	// F is the tolerance threshold: service is available iff s >= F+1
	// (eq. 9, Prop. 1).
	F int
	// EpsilonA is the availability lower bound (eq. 10b).
	EpsilonA float64
	// FS is the transition function indexed [action][s][s'] (eq. 8).
	FS [][][]float64
}

// Validate checks dimensions and stochasticity.
func (m *Model) Validate() error {
	if m.SMax < 1 {
		return fmt.Errorf("%w: smax = %d", ErrInvalidModel, m.SMax)
	}
	if m.F < 0 || m.F >= m.SMax {
		return fmt.Errorf("%w: f = %d with smax = %d", ErrInvalidModel, m.F, m.SMax)
	}
	if m.EpsilonA < 0 || m.EpsilonA > 1 {
		return fmt.Errorf("%w: epsilonA = %v", ErrInvalidModel, m.EpsilonA)
	}
	n := m.SMax + 1
	if len(m.FS) != NumActions {
		return fmt.Errorf("%w: FS has %d actions", ErrInvalidModel, len(m.FS))
	}
	for a := range m.FS {
		if len(m.FS[a]) != n {
			return fmt.Errorf("%w: FS[%d] has %d states", ErrInvalidModel, a, len(m.FS[a]))
		}
		for s := range m.FS[a] {
			if len(m.FS[a][s]) != n {
				return fmt.Errorf("%w: FS[%d][%d] has %d entries", ErrInvalidModel, a, s, len(m.FS[a][s]))
			}
			sum := 0.0
			for s2, p := range m.FS[a][s] {
				if p < 0 || math.IsNaN(p) {
					return fmt.Errorf("%w: FS[%d][%d][%d] = %v", ErrInvalidModel, a, s, s2, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				return fmt.Errorf("%w: FS[%d][%d] sums to %v", ErrInvalidModel, a, s, sum)
			}
		}
	}
	return nil
}

// Theorem2Report records which structural assumptions of Theorem 2 a model
// satisfies. Assumption A (feasibility) is checked by Solve; B is positivity
// of fS; C is first-order stochastic monotonicity in the conditioning state;
// D is tail-sum supermodularity. The paper notes (Remark after Alg. 2) that
// Algorithm 2 is correct even when B-D fail — they are only needed for the
// threshold-structure guarantee — and D in particular fails for binomial
// transition kernels.
type Theorem2Report struct {
	// B, C, D report whether each assumption holds.
	B, C, D bool
	// Detail describes the first violation found per assumption.
	Detail map[string]string
}

// AllHold reports whether every checked assumption holds.
func (r Theorem2Report) AllHold() bool { return r.B && r.C && r.D }

// CheckTheorem2Assumptions inspects assumptions B-D of Theorem 2.
func (m *Model) CheckTheorem2Assumptions() (Theorem2Report, error) {
	rep := Theorem2Report{B: true, C: true, D: true, Detail: map[string]string{}}
	if err := m.Validate(); err != nil {
		return rep, err
	}
	n := m.SMax + 1
	// B: fS(s'|s,a) > 0.
assumptionB:
	for a := 0; a < NumActions; a++ {
		for s := 0; s < n; s++ {
			for s2 := 0; s2 < n; s2++ {
				if m.FS[a][s][s2] <= 0 {
					rep.B = false
					rep.Detail["B"] = fmt.Sprintf("fS(%d|%d,%d) = 0", s2, s, a)
					break assumptionB
				}
			}
		}
	}
	// C: tail sums non-decreasing in the conditioning state.
assumptionC:
	for a := 0; a < NumActions; a++ {
		for sHat := 0; sHat+1 < n; sHat++ {
			for s := 0; s < n; s++ {
				if m.tailSum(a, sHat+1, s)+1e-9 < m.tailSum(a, sHat, s) {
					rep.C = false
					rep.Detail["C"] = fmt.Sprintf("tail sum decreases: s=%d, sHat=%d, a=%d", s, sHat, a)
					break assumptionC
				}
			}
		}
	}
	// D: tail-sum difference between the actions increasing in the cutoff.
assumptionD:
	for sHat := 0; sHat < n; sHat++ {
		prev := math.Inf(-1)
		for s := 0; s < n; s++ {
			diff := m.tailSum(1, sHat, s) - m.tailSum(0, sHat, s)
			if diff+1e-9 < prev {
				rep.D = false
				rep.Detail["D"] = fmt.Sprintf("difference not increasing: s=%d, sHat=%d", s, sHat)
				break assumptionD
			}
			prev = diff
		}
	}
	return rep, nil
}

// Fingerprint returns a canonical hash over everything that determines the
// occupancy-measure LP solution: the dimensions, the availability bound and
// the transition kernel bit-for-bit. Two models with equal fingerprints pose
// the same Algorithm 2 problem, which is what replication-strategy caches
// key on.
func (m *Model) Fingerprint() string {
	values := []float64{float64(m.SMax), float64(m.F), m.EpsilonA}
	for _, action := range m.FS {
		for _, row := range action {
			values = append(values, row...)
		}
	}
	return dist.Fingerprint(values...)
}

// tailSum returns sum_{s' >= s} fS(s' | sHat, a).
func (m *Model) tailSum(a, sHat, s int) float64 {
	t := 0.0
	for s2 := s; s2 <= m.SMax; s2++ {
		t += m.FS[a][sHat][s2]
	}
	return t
}

// NewBinomialModel builds the analytic transition model: each healthy node
// independently remains healthy with probability q per step, and action 1
// adds one healthy node:
//
//	fS(s' | s, a) = P[Binomial(s, q) = s' - a]
//
// clamped at the state-space boundary. A small smoothing mass eps keeps the
// chain irreducible (assumption B of Theorem 2); eps <= 0 selects 1e-9.
func NewBinomialModel(smax, f int, epsilonA, q, eps float64) (*Model, error) {
	if q < 0 || q > 1 {
		return nil, fmt.Errorf("%w: q = %v", ErrInvalidModel, q)
	}
	if eps <= 0 {
		eps = 1e-9
	}
	n := smax + 1
	m := &Model{SMax: smax, F: f, EpsilonA: epsilonA}
	m.FS = make([][][]float64, NumActions)
	for a := 0; a < NumActions; a++ {
		m.FS[a] = make([][]float64, n)
		for s := 0; s <= smax; s++ {
			row := make([]float64, n)
			for k := 0; k <= s; k++ {
				target := k + a
				if target > smax {
					target = smax
				}
				row[target] += dist.Binomial(s, q, k)
			}
			// Smooth and renormalize.
			total := 0.0
			for i := range row {
				row[i] += eps
				total += row[i]
			}
			for i := range row {
				row[i] /= total
			}
			m.FS[a][s] = row
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Default Monte-Carlo budget for EstimateHealthyProb — the Table 8
// evaluation setting shared by the Compare facade, the fleet strategy cache
// and cmd/tolerance-sim, so all paths estimate q under the same protocol.
const (
	DefaultEstimateEpisodes = 100
	DefaultEstimateHorizon  = 200
)

// EstimateHealthyProb estimates q — the per-step probability that a node is
// healthy at the next step given it is healthy now — by simulating
// Problem 1 under the given recovery strategy (the paper's Table 8 method:
// "fS estimated from simulations of Prob 1").
func EstimateHealthyProb(rng *rand.Rand, p nodemodel.Params, s recovery.Strategy, episodes, horizon, deltaR int) (float64, error) {
	m, err := recovery.Evaluate(rng, p, s, recovery.SimConfig{
		Episodes: episodes,
		Horizon:  horizon,
		DeltaR:   deltaR,
	})
	if err != nil {
		return 0, err
	}
	// A node counts as healthy when it is alive and not compromised; the
	// compromised fraction and the per-episode crash rate give the
	// complement.
	crashPerStep := m.CrashFraction / float64(horizon)
	q := (1 - m.CompromisedFraction) * (1 - crashPerStep)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return q, nil
}

// NoRecoveryChain builds the Markov chain over the healthy-node count when
// no recoveries or additions occur: each healthy node survives a step with
// probability q = (1-pA)(1-pC1) (Fig 6, Appendix F).
func NoRecoveryChain(n int, q float64) (*markov.Chain, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: n = %d", ErrInvalidModel, n)
	}
	if q < 0 || q > 1 {
		return nil, fmt.Errorf("%w: q = %v", ErrInvalidModel, q)
	}
	p := make([][]float64, n+1)
	for s := 0; s <= n; s++ {
		row := make([]float64, n+1)
		for k := 0; k <= s; k++ {
			row[k] = dist.Binomial(s, q, k)
		}
		// Renormalize against rounding drift.
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		for i := range row {
			row[i] /= sum
		}
		p[s] = row
	}
	return markov.NewChain(p)
}

// MTTF computes E[T(f)] of Fig 6a: the mean time until fewer than
// 2f+k+1 nodes remain, starting from n1 healthy nodes with per-step node
// survival probability q and no recoveries.
func MTTF(n1, f, k int, q float64) (float64, error) {
	chain, err := NoRecoveryChain(n1, q)
	if err != nil {
		return 0, err
	}
	failure := make(map[int]bool)
	for s := 0; s < 2*f+k+1 && s <= n1; s++ {
		failure[s] = true
	}
	return chain.MTTF(n1, failure)
}

// Reliability computes R(t) of Fig 6b for t = 0..horizon.
func Reliability(n1, f, k, horizon int, q float64) ([]float64, error) {
	chain, err := NoRecoveryChain(n1, q)
	if err != nil {
		return nil, err
	}
	failure := make(map[int]bool)
	for s := 0; s < 2*f+k+1 && s <= n1; s++ {
		failure[s] = true
	}
	return chain.Reliability(n1, failure, horizon)
}
