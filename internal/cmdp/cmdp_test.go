package cmdp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tolerance/internal/nodemodel"
	"tolerance/internal/recovery"
)

func mustBinomialModel(t *testing.T, smax, f int, epsA, q float64) *Model {
	t.Helper()
	m, err := NewBinomialModel(smax, f, epsA, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewBinomialModelValid(t *testing.T) {
	m := mustBinomialModel(t, 13, 1, 0.9, 0.95)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	rep, err := m.CheckTheorem2Assumptions()
	if err != nil {
		t.Fatal(err)
	}
	// B (positivity, via smoothing) and C (stochastic monotonicity) hold
	// for the binomial kernel; D (tail-sum supermodularity) is known not to
	// hold exactly for binomial kernels — the paper's remark after Alg. 2
	// covers this case (the LP remains correct without Thm 2).
	if !rep.B {
		t.Errorf("assumption B should hold: %v", rep.Detail["B"])
	}
	if !rep.C {
		t.Errorf("assumption C should hold: %v", rep.Detail["C"])
	}
	if rep.D {
		t.Log("assumption D unexpectedly holds (not required)")
	}
	if rep.AllHold() != (rep.B && rep.C && rep.D) {
		t.Error("AllHold inconsistent")
	}
}

func TestNewBinomialModelValidation(t *testing.T) {
	if _, err := NewBinomialModel(10, 1, 0.9, 1.5, 0); err == nil {
		t.Error("q > 1 should fail")
	}
	if _, err := NewBinomialModel(0, 0, 0.9, 0.9, 0); err == nil {
		t.Error("smax = 0 should fail")
	}
	if _, err := NewBinomialModel(10, 10, 0.9, 0.9, 0); err == nil {
		t.Error("f >= smax should fail")
	}
}

func TestModelValidateRejectsBadFS(t *testing.T) {
	m := mustBinomialModel(t, 5, 1, 0.9, 0.9)
	m.FS[0][2][3] += 0.5
	if err := m.Validate(); err == nil {
		t.Error("non-stochastic row should fail")
	}
}

func TestTransitionShapeFig16(t *testing.T) {
	// Fig 16: rows of fS are unimodal with mode at/below the current state
	// (nodes are lost at rate 1-q).
	m := mustBinomialModel(t, 25, 3, 0.9, 0.9)
	for _, s := range []int{10, 20} {
		row := m.FS[0][s]
		mode := 0
		for i, p := range row {
			if p > row[mode] {
				mode = i
			}
		}
		if mode > s {
			t.Errorf("mode of fS(.|%d,0) = %d, want <= %d", s, mode, s)
		}
		if mode < s-5 {
			t.Errorf("mode of fS(.|%d,0) = %d, too far below %d for q=0.9", s, mode, s)
		}
	}
	// Action 1 shifts the distribution up by one.
	s := 10
	m0 := expectedNext(m.FS[0][s])
	m1 := expectedNext(m.FS[1][s])
	if math.Abs((m1-m0)-1) > 0.05 {
		t.Errorf("adding a node shifts the mean by %v, want ~1", m1-m0)
	}
}

func expectedNext(row []float64) float64 {
	e := 0.0
	for s, p := range row {
		e += float64(s) * p
	}
	return e
}

func TestSolveSmallInstance(t *testing.T) {
	// Paper's Fig 9/13 scale: f = 3, epsA = 0.9.
	m := mustBinomialModel(t, 13, 3, 0.9, 0.95)
	sol, err := Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	// Availability constraint satisfied.
	if sol.Availability < m.EpsilonA-1e-6 {
		t.Errorf("availability = %v, want >= %v", sol.Availability, m.EpsilonA)
	}
	// The objective keeps the system as small as the constraint allows:
	// must exceed f+1 but stay well below smax.
	if sol.AvgNodes < float64(m.F) || sol.AvgNodes > float64(m.SMax) {
		t.Errorf("avg nodes = %v out of range", sol.AvgNodes)
	}
}

func TestSolveThresholdStructureTheorem2(t *testing.T) {
	// With a tight availability bound the system cannot lounge in
	// unavailable states, and the LP optimum exhibits the Theorem 2 shape:
	// a monotone mixture of at most two threshold strategies.
	m := mustBinomialModel(t, 13, 1, 0.995, 0.95)
	sol, err := Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	okStruct, lastAdd := sol.ThresholdStructure()
	if !okStruct {
		t.Errorf("policy is not a two-threshold mixture (Thm 2): %v", sol.Policy)
	}
	if lastAdd < 0 {
		t.Error("policy never adds nodes")
	}
	// Low states must add with certainty (they violate availability).
	if sol.ActionProb(0) < 0.99 {
		t.Errorf("pi(1|0) = %v, want ~1", sol.ActionProb(0))
	}
	// The top state should not add.
	if sol.ActionProb(m.SMax) > 0.5 {
		t.Errorf("pi(1|smax) = %v, want small", sol.ActionProb(m.SMax))
	}
}

func TestSolveRandomizesInAtMostOneState(t *testing.T) {
	// CMDP theory (one constraint): some optimal stationary strategy
	// randomizes in at most one state, and the LP's basic optimal solution
	// inherits this. With a loose availability bound the policy may not be
	// monotone (lounging in cheap unavailable states is optimal), but the
	// single-randomization and contiguous-add-region structure must hold.
	m := mustBinomialModel(t, 13, 1, 0.9, 0.95)
	sol, err := Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-6
	fractional := 0
	for _, p := range sol.Policy {
		if p > tol && p < 1-tol {
			fractional++
		}
	}
	if fractional > 1 {
		t.Errorf("policy randomizes in %d states, want <= 1: %v", fractional, sol.Policy)
	}
	// The add region (states with pi > 0) is a contiguous prefix-interval.
	inRegion := false
	ended := false
	for s, p := range sol.Policy {
		add := p > tol
		if add && ended {
			t.Errorf("add region not contiguous at s=%d: %v", s, sol.Policy)
			break
		}
		if inRegion && !add {
			ended = true
		}
		if add {
			inRegion = true
		}
	}
}

func TestSolveTighterAvailabilityCostsMore(t *testing.T) {
	q := 0.93
	m1 := mustBinomialModel(t, 15, 2, 0.8, q)
	m2 := mustBinomialModel(t, 15, 2, 0.99, q)
	s1, err := Solve(m1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Solve(m2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.AvgNodes < s1.AvgNodes-1e-6 {
		t.Errorf("tighter availability should need more nodes: %v vs %v",
			s2.AvgNodes, s1.AvgNodes)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// With q = 0.05 nodes die almost every step; 0.999 availability with
	// f = 8 of smax = 10 is unattainable.
	m := mustBinomialModel(t, 10, 8, 0.999, 0.05)
	_, err := Solve(m)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveValidatesModel(t *testing.T) {
	m := &Model{SMax: 0}
	if _, err := Solve(m); err == nil {
		t.Error("invalid model should fail")
	}
}

func TestSampleFollowsPolicy(t *testing.T) {
	m := mustBinomialModel(t, 10, 1, 0.9, 0.9)
	sol, err := Solve(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	count := 0
	for i := 0; i < n; i++ {
		count += sol.Sample(rng, 0)
	}
	got := float64(count) / n
	if math.Abs(got-sol.ActionProb(0)) > 0.02 {
		t.Errorf("empirical action prob %v, want %v", got, sol.ActionProb(0))
	}
	// Clamping.
	if sol.ActionProb(-5) != sol.ActionProb(0) || sol.ActionProb(99) != sol.ActionProb(10) {
		t.Error("ActionProb clamping broken")
	}
}

func TestMTTFIncreasingInN1(t *testing.T) {
	// Fig 6a: MTTF grows with the initial number of nodes and shrinks
	// with pA.
	q1 := (1 - 0.1) * (1 - 1e-5)
	q2 := (1 - 0.01) * (1 - 1e-5)
	var prev float64
	for i, n1 := range []int{10, 20, 40, 80} {
		mttf, err := MTTF(n1, 3, 1, q1)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && mttf <= prev {
			t.Errorf("MTTF(%d) = %v not increasing (prev %v)", n1, mttf, prev)
		}
		prev = mttf
	}
	mHigh, err := MTTF(40, 3, 1, q1)
	if err != nil {
		t.Fatal(err)
	}
	mLow, err := MTTF(40, 3, 1, q2)
	if err != nil {
		t.Fatal(err)
	}
	if mLow <= mHigh {
		t.Errorf("smaller pA should give larger MTTF: %v vs %v", mLow, mHigh)
	}
}

func TestReliabilityCurvesFig6b(t *testing.T) {
	q := (1 - 0.05) * (1 - 1e-5)
	r25, err := Reliability(25, 3, 1, 60, q)
	if err != nil {
		t.Fatal(err)
	}
	r100, err := Reliability(100, 3, 1, 60, q)
	if err != nil {
		t.Fatal(err)
	}
	if r25[0] != 1 || r100[0] != 1 {
		t.Error("R(0) must be 1")
	}
	for tt := 1; tt <= 60; tt++ {
		if r25[tt] > r25[tt-1]+1e-12 {
			t.Fatalf("R25 increased at %d", tt)
		}
	}
	// Larger systems are more reliable at every horizon (Fig 6b ordering).
	if r100[40] <= r25[40] {
		t.Errorf("R100(40) = %v should exceed R25(40) = %v", r100[40], r25[40])
	}
}

func TestEstimateHealthyProb(t *testing.T) {
	p := nodemodel.DefaultParams()
	rng := rand.New(rand.NewSource(3))
	s := &recovery.ThresholdStrategy{Thresholds: []float64{0.3}, DeltaR: recovery.InfiniteDeltaR}
	q, err := EstimateHealthyProb(rng, p, s, 50, 200, recovery.InfiniteDeltaR)
	if err != nil {
		t.Fatal(err)
	}
	if q < 0.5 || q > 1 {
		t.Errorf("q = %v, want high healthy probability under feedback recovery", q)
	}
	// Without recovery the healthy probability collapses.
	rng = rand.New(rand.NewSource(3))
	qNever, err := EstimateHealthyProb(rng, p, recovery.NeverRecover{}, 50, 200, recovery.InfiniteDeltaR)
	if err != nil {
		t.Fatal(err)
	}
	if qNever >= q {
		t.Errorf("no-recovery q = %v should be below feedback q = %v", qNever, q)
	}
}

// Property: the LP solution is a valid occupancy measure: non-negative,
// sums to one, and satisfies stationarity.
func TestOccupancyMeasureProperty(t *testing.T) {
	f := func(fRaw, qRaw uint8) bool {
		fTol := 1 + int(fRaw)%3
		q := 0.85 + float64(qRaw)/256*0.14
		m, err := NewBinomialModel(12, fTol, 0.85, q, 0)
		if err != nil {
			return false
		}
		sol, err := Solve(m)
		if err != nil {
			// Feasibility depends on q; infeasibility is acceptable.
			return errors.Is(err, ErrInfeasible)
		}
		total := 0.0
		for s := range sol.Occupancy {
			for _, v := range sol.Occupancy[s] {
				if v < -1e-9 {
					return false
				}
				total += v
			}
		}
		if math.Abs(total-1) > 1e-6 {
			return false
		}
		// Stationarity: inflow = outflow per state.
		n := m.SMax + 1
		for s := 0; s < n; s++ {
			out := sol.Occupancy[s][0] + sol.Occupancy[s][1]
			in := 0.0
			for s2 := 0; s2 < n; s2++ {
				for a := 0; a < NumActions; a++ {
					in += sol.Occupancy[s2][a] * m.FS[a][s2][s]
				}
			}
			if math.Abs(in-out) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
