package cmdp

import (
	"errors"
	"fmt"
	"math/rand"

	"tolerance/internal/lp"
)

// Solution is the optimal replication strategy computed by Algorithm 2.
type Solution struct {
	// Policy[s] is pi*(a = 1 | s), the probability of adding a node in
	// state s (eq. 13, Fig 13a).
	Policy []float64
	// Occupancy is the optimal occupancy measure rho*(s, a) indexed [s][a].
	Occupancy [][]float64
	// AvgNodes is the objective value J (eq. 9): the stationary expected
	// number of nodes.
	AvgNodes float64
	// Availability is the achieved stationary P[s >= f+1] (eq. 10b).
	Availability float64
}

// ActionProb returns pi*(a = 1 | s), clamping s to the state space.
func (sol *Solution) ActionProb(s int) float64 {
	if s < 0 {
		s = 0
	}
	if s >= len(sol.Policy) {
		s = len(sol.Policy) - 1
	}
	return sol.Policy[s]
}

// Sample draws an action (0 or 1) for the given state.
func (sol *Solution) Sample(rng *rand.Rand, s int) int {
	if rng.Float64() < sol.ActionProb(s) {
		return 1
	}
	return 0
}

// ThresholdStructure analyses the policy per Theorem 2: it returns whether
// pi*(1|s) is non-increasing in s with at most one fractional state (i.e. a
// randomized mixture of two threshold strategies), together with the largest
// state where a node is added with positive probability.
func (sol *Solution) ThresholdStructure() (isThresholdMixture bool, lastAddState int) {
	const tol = 1e-6
	lastAddState = -1
	fractional := 0
	prev := 1.0
	mono := true
	for s, p := range sol.Policy {
		if p > tol {
			lastAddState = s
		}
		if p > tol && p < 1-tol {
			fractional++
		}
		if p > prev+tol {
			mono = false
		}
		prev = p
	}
	return mono && fractional <= 1, lastAddState
}

// Solve runs Algorithm 2: it formulates the occupancy-measure LP (14) and
// extracts the optimal randomized strategy pi*(a|s) = rho*(s,a) / sum_a
// rho*(s,a). States never visited under rho* receive the conservative
// default "add iff s <= f" so the returned policy is total.
func Solve(m *Model) (*Solution, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.SMax + 1
	numVars := n * NumActions
	idx := func(s, a int) int { return s*NumActions + a }

	prob, err := lp.NewProblem(numVars)
	if err != nil {
		return nil, err
	}
	// (14a): minimize sum_s sum_a s * rho(s, a).
	obj := make([]float64, numVars)
	for s := 0; s < n; s++ {
		for a := 0; a < NumActions; a++ {
			obj[idx(s, a)] = float64(s)
		}
	}
	if err := prob.SetObjective(obj); err != nil {
		return nil, err
	}
	// (14c): normalization.
	one := make([]float64, numVars)
	for i := range one {
		one[i] = 1
	}
	if err := prob.AddEq(one, 1); err != nil {
		return nil, err
	}
	// (14d): stationarity. One row per state s (skip s = 0: the rows sum to
	// the normalization constraint, so one is redundant).
	for s := 1; s < n; s++ {
		row := make([]float64, numVars)
		for a := 0; a < NumActions; a++ {
			row[idx(s, a)] += 1
		}
		for s2 := 0; s2 < n; s2++ {
			for a := 0; a < NumActions; a++ {
				row[idx(s2, a)] -= m.FS[a][s2][s]
			}
		}
		if err := prob.AddEq(row, 0); err != nil {
			return nil, err
		}
	}
	// (14e): availability.
	avail := make([]float64, numVars)
	for s := m.F + 1; s < n; s++ {
		for a := 0; a < NumActions; a++ {
			avail[idx(s, a)] = 1
		}
	}
	if err := prob.AddGe(avail, m.EpsilonA); err != nil {
		return nil, err
	}

	sol, err := prob.Solve()
	if err != nil {
		if errors.Is(err, lp.ErrInfeasible) {
			return nil, fmt.Errorf("%w: epsilonA = %v with f = %d, smax = %d",
				ErrInfeasible, m.EpsilonA, m.F, m.SMax)
		}
		return nil, fmt.Errorf("cmdp: algorithm 2: %w", err)
	}

	out := &Solution{
		Policy:    make([]float64, n),
		Occupancy: make([][]float64, n),
	}
	availability := 0.0
	avgNodes := 0.0
	for s := 0; s < n; s++ {
		out.Occupancy[s] = []float64{sol.X[idx(s, 0)], sol.X[idx(s, 1)]}
		total := out.Occupancy[s][0] + out.Occupancy[s][1]
		// States with numerically negligible occupancy (only the smoothing
		// mass visits them) take the defensive default rather than a noise
		// ratio.
		if total > 1e-7 {
			out.Policy[s] = out.Occupancy[s][1] / total
		} else if s <= m.F {
			out.Policy[s] = 1 // unvisited low state: grow defensively
		} else {
			out.Policy[s] = 0
		}
		avgNodes += float64(s) * total
		if s >= m.F+1 {
			availability += total
		}
	}
	out.AvgNodes = avgNodes
	out.Availability = availability
	return out, nil
}
