package emulation

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"tolerance/internal/attacker"
	"tolerance/internal/baselines"
	"tolerance/internal/dist"
	"tolerance/internal/ids"
	"tolerance/internal/nodemodel"
	"tolerance/internal/recovery"
)

// ErrBadScenario is returned for invalid scenario configurations.
var ErrBadScenario = errors.New("emulation: bad scenario")

// Scenario configures one evaluation run (§VIII-A).
type Scenario struct {
	// N1 is the initial number of nodes.
	N1 int
	// SMax caps the replication factor (Table 3 has 13 physical nodes).
	SMax int
	// K is the number of parallel recoveries allowed (Prop. 1; Table 8: 1).
	K int
	// F is the tolerance threshold; 0 selects the paper's evaluation rule
	// f = min((N1-1)/2, 2) (Table 8).
	F int
	// DeltaR is the BTR bound (recovery.InfiniteDeltaR = none).
	DeltaR int
	// Steps is the number of 60-second time steps to simulate.
	Steps int
	// Seed drives all randomness of the run.
	Seed int64
	// Params is the node model (Table 8 §X values by default).
	Params nodemodel.Params
	// Policy is the two-level control strategy under evaluation.
	Policy baselines.Policy
	// FitSamples is M for the Ẑ estimation (paper: 25,000).
	FitSamples int
	// FitSeed seeds the dedicated Ẑ-fitting rng stream; zero derives it
	// from Seed via FitStreamSeed. Fleet engines set one fit seed per
	// suite so every scenario of a grid shares the same offline fit.
	FitSeed int64
	// Fits supplies a pre-fitted observation-model set (the offline
	// training artifact, typically from a fleet-level fit cache). Nil fits
	// one inside Run from (FitSamples, FitSeed); a run with a supplied set
	// built from the same samples and seed is byte-identical to one that
	// fits inline.
	Fits *FitSet
	// Workload is the background client population.
	Workload BackgroundWorkload
}

func (s *Scenario) applyDefaults() error {
	if s.Policy == nil {
		return fmt.Errorf("%w: nil policy", ErrBadScenario)
	}
	if s.N1 < 1 {
		return fmt.Errorf("%w: N1 = %d", ErrBadScenario, s.N1)
	}
	if s.SMax == 0 {
		s.SMax = 13
	}
	if s.N1 > s.SMax {
		return fmt.Errorf("%w: N1 = %d > smax = %d", ErrBadScenario, s.N1, s.SMax)
	}
	if s.K == 0 {
		s.K = 1
	}
	if s.F == 0 {
		s.F = DefaultThreshold(s.N1)
	}
	if s.DeltaR < 0 {
		return fmt.Errorf("%w: deltaR = %d", ErrBadScenario, s.DeltaR)
	}
	if s.Steps == 0 {
		s.Steps = 1000
	}
	if s.Params.ZHealthy == nil {
		p := nodemodel.DefaultParams()
		p.PA = 0.1 // §X evaluation value
		s.Params = p
	}
	if err := s.Params.Validate(); err != nil {
		return err
	}
	if s.FitSamples == 0 {
		s.FitSamples = 25000
	}
	if s.Workload.Lambda == 0 {
		s.Workload = DefaultBackgroundWorkload()
	}
	return nil
}

// DefaultThreshold is the paper's evaluation rule for the tolerance
// threshold: f = min((N1-1)/2, 2), at least 1 (Table 8). Scenario
// defaulting and the fleet grid expansion both use it.
func DefaultThreshold(n1 int) int {
	f := (n1 - 1) / 2
	if f > 2 {
		f = 2
	}
	if f < 1 {
		f = 1
	}
	return f
}

// Metrics aggregates one run's evaluation quantities (§III-C, Table 7).
type Metrics struct {
	// Availability is T(A): the fraction of steps where at most f nodes
	// were compromised or crashed (the paper's §III-C metric).
	Availability float64
	// QuorumAvailability additionally requires N_t >= 2f+1+k alive nodes
	// (the full Prop. 1 condition for correct service): it exposes
	// replication shortfalls that T(A) alone does not.
	QuorumAvailability float64
	// TimeToRecovery is T(R) in steps, penalty 10^3 for unrecovered
	// intrusions.
	TimeToRecovery float64
	// RecoveryFrequency is F(R): recoveries per node-step.
	RecoveryFrequency float64
	// AvgNodes is the mean replication factor over the run.
	AvgNodes float64
	// AvgCost is the eq. (5) control cost per node-step: eta per
	// compromised waiting node plus 1 per recovery.
	AvgCost float64
	// Intrusions counts completed compromises.
	Intrusions int
	// Recoveries counts controller recoveries.
	Recoveries int
	// Evictions and Additions count replication-factor changes.
	Evictions, Additions int
}

// simNode is one virtual node of the testbed. zh and zc are the node
// controller's dense likelihood tables Ẑ(.|H), Ẑ(.|C) for the node's
// current container (rows of the scenario's FitSet). The intrusion tracker
// is embedded by value (underAttack marks it live), so starting a campaign
// never allocates.
type simNode struct {
	id            int
	container     Container
	zh, zc        []float64
	state         nodemodel.State
	intrusion     attacker.Intrusion
	underAttack   bool
	behaviour     attacker.Behaviour
	belief        float64
	phase         int // BTR calendar offset
	lastAction    nodemodel.Action
	pendingBoost  int
	compromisedAt int
	lastObs       int
}

// runner holds one scenario run's state: the rng streams, the node set,
// running metric sums, and scratch buffers reused across steps so the
// steady-state step loop allocates nothing (guarded by
// TestStepZeroAllocations). A runner is additionally reusable across
// scenarios through reset: the node structs, rng streams, scratch buffers
// and metric state all carry over, so a worker that executes many scenarios
// (the fleet engine's worker-resident mode) reaches a steady state where a
// whole scenario run allocates nothing (guarded by
// TestRunIntoSteadyStateZeroAllocations).
type runner struct {
	s    Scenario
	rng  *rand.Rand // node/environment stream (seeded by Scenario.Seed)
	wrng *rand.Rand // background-workload stream (arrivals + departures)
	fits *FitSet

	nodes  []*simNode
	pool   []*simNode // recycled node structs (evictions + resets)
	nextID int

	m              Metrics
	recoveryTimes  []float64
	availableSteps int
	quorumSteps    int
	nodeSteps      int
	totalNodes     float64
	costSum        float64
	obsSum         float64
	obsCount       int
	sessions       int

	// Per-step scratch, reused across steps.
	observations []int
	recovering   []*simNode
	candidates   []*simNode
}

// reset validates the scenario, resolves the offline fit, recycles the
// previous run's node structs, reseeds the rng streams in place, and places
// the initial nodes. After reset the runner is in exactly the state a
// freshly constructed runner for the scenario would be in.
func (r *runner) reset(s Scenario) error {
	if err := s.applyDefaults(); err != nil {
		return err
	}
	fits := s.Fits
	if fits == nil {
		fitSeed := s.FitSeed
		if fitSeed == 0 {
			fitSeed = FitStreamSeed(s.Seed)
		}
		var err error
		fits, err = NewFitSet(s.FitSamples, fitSeed)
		if err != nil {
			return err
		}
	}
	r.s = s
	r.fits = fits
	if r.rng == nil {
		r.rng = newSplitMixRand(s.Seed)
		r.wrng = newSplitMixRand(workloadStreamSeed(s.Seed))
	} else {
		r.rng.Seed(s.Seed)
		r.wrng.Seed(workloadStreamSeed(s.Seed))
	}
	r.pool = append(r.pool, r.nodes...)
	r.nodes = r.nodes[:0]
	r.m = Metrics{}
	r.recoveryTimes = r.recoveryTimes[:0]
	r.availableSteps, r.quorumSteps, r.nodeSteps = 0, 0, 0
	r.totalNodes, r.costSum, r.obsSum = 0, 0, 0
	r.obsCount, r.sessions = 0, 0
	r.observations = r.observations[:0]
	r.recovering = r.recovering[:0]
	r.candidates = r.candidates[:0]
	for i := 0; i < s.N1; i++ {
		phase := 0
		if s.DeltaR != recovery.InfiniteDeltaR {
			phase = (i * s.DeltaR) / s.N1 // stagger forced recoveries
		}
		r.nodes = append(r.nodes, r.spawn(i, phase))
	}
	r.nextID = s.N1
	return nil
}

// newRunner validates the scenario, resolves the offline fit, and places
// the initial nodes.
func newRunner(s Scenario) (*runner, error) {
	r := &runner{}
	if err := r.reset(s); err != nil {
		return nil, err
	}
	return r, nil
}

// spawn returns a node running a uniformly drawn catalog image, recycling
// a previously evicted node struct when one is available.
func (r *runner) spawn(id, phase int) *simNode {
	var n *simNode
	if k := len(r.pool); k > 0 {
		n, r.pool = r.pool[k-1], r.pool[:k-1]
	} else {
		n = &simNode{}
	}
	ci := r.rng.Intn(r.fits.Len())
	*n = simNode{
		id:            id,
		container:     r.fits.Container(ci),
		zh:            r.fits.zh[ci],
		zc:            r.fits.zc[ci],
		state:         nodemodel.Healthy,
		belief:        r.s.Params.PA,
		phase:         phase,
		compromisedAt: -1,
	}
	return n
}

// Runner executes scenarios with state that is reused from one run to the
// next: the node structs, rng streams, metric accumulators and scratch
// buffers of a finished scenario become the next scenario's starting
// capital. A Runner is for a single goroutine; fleet workers hold one each
// and execute their whole batch stream through it, which removes the
// per-scenario construction cost (≈ the runner, its node set and both rng
// streams) from the grid hot path. Results are bit-identical to Run: reset
// reproduces exactly the state a fresh runner would start with.
type Runner struct {
	run   runner
	onRun func(steps int)
}

// NewRunner returns an empty reusable runner; the first RunInto sizes it.
func NewRunner() *Runner { return &Runner{} }

// OnRun installs a completion observer: after every successful RunInto the
// runner calls fn with the number of simulated steps (post-default, so the
// real count). The observer is for telemetry only — it runs after the
// scenario's randomness is fully consumed, receives no simulation state,
// and must not retain references; metrics are unchanged whether one is
// installed or not. The call itself is allocation-free, preserving the
// warm-runner zero-alloc guarantee.
func (r *Runner) OnRun(fn func(steps int)) { r.onRun = fn }

// RunInto executes the scenario on the reusable runner and returns the
// metrics by value (no per-run allocation).
func (r *Runner) RunInto(s Scenario) (Metrics, error) { return RunInto(r, s) }

// RunInto executes a scenario on a reusable runner: the runner's node pool,
// rng streams and scratch state are recycled, so a warm runner executes a
// whole scenario without allocating (guarded by
// TestRunIntoSteadyStateZeroAllocations). Output is bit-identical to Run.
func RunInto(r *Runner, s Scenario) (Metrics, error) {
	run := &r.run
	if err := run.reset(s); err != nil {
		return Metrics{}, err
	}
	for t := 1; t <= run.s.Steps; t++ {
		run.step(t)
	}
	if r.onRun != nil {
		r.onRun(run.s.Steps)
	}
	return *run.finish(), nil
}

// Run executes a scenario and returns its metrics. It is the allocate-fresh
// wrapper around RunInto; callers executing many scenarios should hold a
// Runner and use RunInto instead.
func Run(s Scenario) (*Metrics, error) {
	m, err := RunInto(NewRunner(), s)
	if err != nil {
		return nil, err
	}
	return &m, nil
}

// step advances the simulation by one 60-second time step.
func (r *runner) step(t int) {
	s := &r.s
	rng := r.rng

	// Background client population (Poisson arrivals, exponential service
	// approximated by geometric departures — a Binomial(sessions, 1/mu)
	// thinning per step); the load adds baseline alert noise. Both draws
	// come from the dedicated workload stream.
	r.sessions += dist.SamplePoisson(r.wrng, s.Workload.Lambda)
	r.sessions -= dist.SampleBinomial(r.wrng, r.sessions, 1/s.Workload.MeanServiceSteps)
	load := float64(r.sessions) / (s.Workload.Lambda * s.Workload.MeanServiceSteps)

	// 1. Observations and belief updates.
	observations := r.observations[:0]
	for _, n := range r.nodes {
		obs := n.container.Profile.Sample(rng, n.state == nodemodel.Compromised)
		obs += n.pendingBoost
		n.pendingBoost = 0
		if dist.SampleBernoulli(rng, 0.1*load) {
			obs++ // background-traffic false alert
		}
		if obs >= ids.AlertSupport {
			obs = ids.AlertSupport - 1
		}
		n.lastObs = obs
		observations = append(observations, obs)
		r.obsSum += float64(obs)
		r.obsCount++
		n.belief = updateBeliefFitted(s.Params, n.zh, n.zc, n.belief, n.lastAction, obs)
	}
	r.observations = observations

	// 2. Action selection: forced calendar recoveries first, then the
	// policy's threshold recoveries, capped at k parallel recoveries.
	recovering := r.recovering[:0]
	if s.Policy.UsesBTR() && s.DeltaR != recovery.InfiniteDeltaR {
		for _, n := range r.nodes {
			if (t+n.phase)%s.DeltaR == 0 && len(recovering) < s.K {
				recovering = append(recovering, n)
			}
		}
	}
	// Threshold recoveries in descending belief order.
	candidates := r.candidates[:0]
	for _, n := range r.nodes {
		if containsNode(recovering, n) {
			continue
		}
		windowPos := t + n.phase
		if s.DeltaR != recovery.InfiniteDeltaR {
			windowPos = (t + n.phase) % s.DeltaR
			if windowPos == 0 {
				continue
			}
		}
		action := s.Policy.NodeAction(baselines.NodeContext{
			Belief:    n.belief,
			Obs:       n.lastObs,
			WindowPos: windowPos,
			DeltaR:    s.DeltaR,
		})
		if action == nodemodel.Recover {
			candidates = append(candidates, n)
		}
	}
	sortByBelief(candidates)
	for _, n := range candidates {
		if len(recovering) >= s.K {
			break
		}
		recovering = append(recovering, n)
	}
	r.recovering, r.candidates = recovering, candidates

	// 3. Apply recoveries: the container is replaced with a random
	// image from Table 4 (§VIII-A) and the belief resets.
	for _, n := range r.nodes {
		n.lastAction = nodemodel.Wait
	}
	for _, n := range recovering {
		r.m.Recoveries++
		if n.compromisedAt >= 0 {
			r.recoveryTimes = append(r.recoveryTimes, float64(t-n.compromisedAt))
			n.compromisedAt = -1
		}
		ci := rng.Intn(r.fits.Len())
		n.container = r.fits.Container(ci)
		n.zh = r.fits.zh[ci]
		n.zc = r.fits.zc[ci]
		n.state = nodemodel.Healthy
		n.underAttack = false
		n.belief = s.Params.PA
		n.lastAction = nodemodel.Recover
	}

	// 4. System controller: evict crashed nodes (they failed to report
	// a belief, §V-B), then decide whether to add one.
	evictedNow := 0
	alive := r.nodes[:0]
	for _, n := range r.nodes {
		if n.state == nodemodel.Crashed {
			r.m.Evictions++
			evictedNow++
			r.pool = append(r.pool, n)
			continue
		}
		alive = append(alive, n)
	}
	r.nodes = alive
	healthyEstimate := 0.0
	for _, n := range r.nodes {
		healthyEstimate += 1 - n.belief
	}
	est := int(math.Floor(healthyEstimate))
	if est > s.SMax {
		est = s.SMax
	}
	meanObs := 0.0
	if r.obsCount > 0 {
		meanObs = r.obsSum / float64(r.obsCount)
	}
	if len(r.nodes) < s.SMax && s.Policy.AddNode(baselines.SystemContext{
		HealthyEstimate: est,
		AliveNodes:      len(r.nodes),
		Observations:    observations,
		MeanObs:         meanObs,
		Rng:             rng,
	}) {
		phase := 0
		if s.DeltaR != recovery.InfiniteDeltaR {
			phase = rng.Intn(s.DeltaR)
		}
		r.nodes = append(r.nodes, r.spawn(r.nextID, phase))
		r.nextID++
		r.m.Additions++
	}

	// 5. Metrics: T(A) counts the steps where at most f nodes are
	// compromised or crashed (§III-C; crashed nodes were evicted in
	// stage 4, so they are exactly this step's eviction count).
	compromised := 0
	for _, n := range r.nodes {
		switch {
		case n.lastAction == nodemodel.Recover:
			r.costSum++ // eq. (5): a recovery costs 1
		case n.state == nodemodel.Compromised:
			r.costSum += s.Params.Eta // eq. (5): waiting while compromised
		}
		if n.state == nodemodel.Compromised {
			compromised++
		}
	}
	if compromised+evictedNow <= s.F {
		r.availableSteps++
		if len(r.nodes) >= 2*s.F+1+s.K {
			r.quorumSteps++
		}
	}
	r.nodeSteps += len(r.nodes)
	r.totalNodes += float64(len(r.nodes))

	// 6. Environment transition: intrusions, crashes, updates.
	for _, n := range r.nodes {
		switch n.state {
		case nodemodel.Healthy:
			if dist.SampleBernoulli(rng, s.Params.PC1) {
				n.state = nodemodel.Crashed
				continue
			}
			if !n.underAttack && dist.SampleBernoulli(rng, s.Params.PA) {
				if err := n.intrusion.Begin(n.container.ID); err == nil {
					n.underAttack = true
				}
			}
			if n.underAttack {
				n.pendingBoost += n.intrusion.Advance(rng)
				if n.intrusion.Done() {
					n.state = nodemodel.Compromised
					n.behaviour = n.intrusion.Behaviour
					n.compromisedAt = t
					r.m.Intrusions++
				}
			}
		case nodemodel.Compromised:
			if dist.SampleBernoulli(rng, s.Params.PC2) {
				n.state = nodemodel.Crashed
				if n.compromisedAt >= 0 {
					r.recoveryTimes = append(r.recoveryTimes, recovery.NoRecoveryPenalty)
					n.compromisedAt = -1
				}
				continue
			}
			if dist.SampleBernoulli(rng, s.Params.PU) {
				// Software update silently cleans the node (eq. 2g);
				// not a controller recovery, so T(R) is not recorded.
				n.state = nodemodel.Healthy
				n.underAttack = false
				n.compromisedAt = -1
			}
		}
	}
}

// finish applies end-of-run penalties and assembles the metrics.
func (r *runner) finish() *Metrics {
	s := &r.s
	m := &r.m
	// Unrecovered intrusions at the end of the run take the penalty.
	for _, n := range r.nodes {
		if n.compromisedAt >= 0 {
			r.recoveryTimes = append(r.recoveryTimes, recovery.NoRecoveryPenalty)
		}
	}

	m.Availability = float64(r.availableSteps) / float64(s.Steps)
	m.QuorumAvailability = float64(r.quorumSteps) / float64(s.Steps)
	if r.nodeSteps > 0 {
		m.RecoveryFrequency = float64(m.Recoveries) / float64(r.nodeSteps)
		m.AvgCost = r.costSum / float64(r.nodeSteps)
	}
	if len(r.recoveryTimes) > 0 {
		sum := 0.0
		for _, v := range r.recoveryTimes {
			sum += v
		}
		m.TimeToRecovery = sum / float64(len(r.recoveryTimes))
	}
	m.AvgNodes = r.totalNodes / float64(s.Steps)
	return m
}

// updateBeliefFitted is the Appendix A belief recursion using the
// controller's estimated observation model Ẑ, supplied as dense likelihood
// tables (zh[o] = Ẑ(o|H), zc[o] = Ẑ(o|C)) so the hot path is two slice
// loads and a handful of multiplies.
func updateBeliefFitted(p nodemodel.Params, zh, zc []float64, belief float64, action nodemodel.Action, obs int) float64 {
	pred := p.PredictBelief(belief, action)
	num := zc[obs] * pred
	den := num + zh[obs]*(1-pred)
	if den <= 0 {
		return belief
	}
	b := num / den
	return math.Min(1, math.Max(0, b))
}

func containsNode(list []*simNode, n *simNode) bool {
	for _, x := range list {
		if x == n {
			return true
		}
	}
	return false
}

func sortByBelief(nodes []*simNode) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j].belief > nodes[j-1].belief; j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}

// Summary holds a mean and its 95% confidence half-width.
type Summary struct {
	Mean float64
	CI   float64
}

// Welford accumulates a running mean and variance in one pass (Welford's
// online algorithm), so multi-seed and fleet-scale evaluations can fold
// per-run metrics into summaries without retaining the samples. Folding the
// same values in the same order always produces bit-identical results.
type Welford struct {
	// Count is the number of folded samples.
	Count int64
	// Mean is the running sample mean.
	Mean float64
	// M2 is the running sum of squared deviations from the mean.
	M2 float64
}

// Add folds one sample.
func (w *Welford) Add(x float64) {
	w.Count++
	delta := x - w.Mean
	w.Mean += delta / float64(w.Count)
	w.M2 += delta * (x - w.Mean)
}

// Merge folds another accumulator's state into w, as if its samples had
// been appended to w's stream (Chan et al.'s parallel combination of the
// running moments). Merging the pieces of a split stream reproduces the
// single-stream mean and variance up to floating-point rounding; exact
// bit-identity with a sequential fold is not guaranteed, which is why the
// fleet's shard merge replays per-scenario records instead.
func (w *Welford) Merge(other Welford) {
	if other.Count == 0 {
		return
	}
	if w.Count == 0 {
		*w = other
		return
	}
	n := float64(w.Count + other.Count)
	delta := other.Mean - w.Mean
	w.Mean += delta * float64(other.Count) / n
	w.M2 += other.M2 + delta*delta*float64(w.Count)*float64(other.Count)/n
	w.Count += other.Count
}

// Variance returns the sample variance (zero below two samples).
func (w *Welford) Variance() float64 {
	if w.Count < 2 {
		return 0
	}
	return w.M2 / float64(w.Count-1)
}

// Summary returns the mean with its 95% Student-t confidence half-width.
func (w *Welford) Summary() Summary {
	if w.Count < 2 {
		return Summary{Mean: w.Mean}
	}
	se := math.Sqrt(w.Variance() / float64(w.Count))
	return Summary{Mean: w.Mean, CI: tCritical95(int(w.Count)-1) * se}
}

// Aggregate is the multi-seed result for one strategy/configuration cell of
// Table 7.
type Aggregate struct {
	Availability       Summary
	QuorumAvailability Summary
	TimeToRecovery     Summary
	RecoveryFrequency  Summary
	AvgNodes           Summary
	Cost               Summary
}

// Accumulator streams per-run Metrics into an Aggregate (one Welford
// accumulator per metric).
type Accumulator struct {
	Availability       Welford
	QuorumAvailability Welford
	TimeToRecovery     Welford
	RecoveryFrequency  Welford
	AvgNodes           Welford
	Cost               Welford
}

// Add folds one run's metrics.
func (a *Accumulator) Add(m *Metrics) {
	a.Availability.Add(m.Availability)
	a.QuorumAvailability.Add(m.QuorumAvailability)
	a.TimeToRecovery.Add(m.TimeToRecovery)
	a.RecoveryFrequency.Add(m.RecoveryFrequency)
	a.AvgNodes.Add(m.AvgNodes)
	a.Cost.Add(m.AvgCost)
}

// Merge folds another accumulator's summaries into a, as if the other's
// runs had been appended to a's stream. It lets shard-local aggregates from
// distributed fleet runs combine into one summary without the raw samples.
func (a *Accumulator) Merge(other *Accumulator) {
	a.Availability.Merge(other.Availability)
	a.QuorumAvailability.Merge(other.QuorumAvailability)
	a.TimeToRecovery.Merge(other.TimeToRecovery)
	a.RecoveryFrequency.Merge(other.RecoveryFrequency)
	a.AvgNodes.Merge(other.AvgNodes)
	a.Cost.Merge(other.Cost)
}

// Runs returns the number of folded runs.
func (a *Accumulator) Runs() int64 { return a.Availability.Count }

// Aggregate summarizes the folded runs.
func (a *Accumulator) Aggregate() *Aggregate {
	out := a.AggregateValue()
	return &out
}

// AggregateValue summarizes the folded runs without allocating — the form
// fleet result assembly uses once per grid cell.
func (a *Accumulator) AggregateValue() Aggregate {
	return Aggregate{
		Availability:       a.Availability.Summary(),
		QuorumAvailability: a.QuorumAvailability.Summary(),
		TimeToRecovery:     a.TimeToRecovery.Summary(),
		RecoveryFrequency:  a.RecoveryFrequency.Summary(),
		AvgNodes:           a.AvgNodes.Summary(),
		Cost:               a.Cost.Summary(),
	}
}

// RunSeeds evaluates a scenario across seeds (the paper uses 20) and
// summarizes each metric with a Student-t 95% confidence interval.
func RunSeeds(base Scenario, seeds []int64) (*Aggregate, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("%w: no seeds", ErrBadScenario)
	}
	var acc Accumulator
	for _, seed := range seeds {
		s := base
		s.Seed = seed
		m, err := Run(s)
		if err != nil {
			return nil, err
		}
		acc.Add(m)
	}
	return acc.Aggregate(), nil
}

// tCritical95 approximates the two-sided 95% Student-t critical value by
// table lookup with the nearest smaller degrees of freedom.
func tCritical95(df int) float64 {
	if df > 49 {
		return 1.96
	}
	keys := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 14, 19, 29, 49}
	values := []float64{12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
		2.306, 2.262, 2.228, 2.145, 2.093, 2.045, 2.010}
	out := values[0]
	for i, k := range keys {
		if df >= k {
			out = values[i]
		}
	}
	return out
}
