package emulation

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"tolerance/internal/attacker"
	"tolerance/internal/baselines"
	"tolerance/internal/dist"
	"tolerance/internal/ids"
	"tolerance/internal/nodemodel"
	"tolerance/internal/recovery"
)

// ErrBadScenario is returned for invalid scenario configurations.
var ErrBadScenario = errors.New("emulation: bad scenario")

// Scenario configures one evaluation run (§VIII-A).
type Scenario struct {
	// N1 is the initial number of nodes.
	N1 int
	// SMax caps the replication factor (Table 3 has 13 physical nodes).
	SMax int
	// K is the number of parallel recoveries allowed (Prop. 1; Table 8: 1).
	K int
	// F is the tolerance threshold; 0 selects the paper's evaluation rule
	// f = min((N1-1)/2, 2) (Table 8).
	F int
	// DeltaR is the BTR bound (recovery.InfiniteDeltaR = none).
	DeltaR int
	// Steps is the number of 60-second time steps to simulate.
	Steps int
	// Seed drives all randomness of the run.
	Seed int64
	// Params is the node model (Table 8 §X values by default).
	Params nodemodel.Params
	// Policy is the two-level control strategy under evaluation.
	Policy baselines.Policy
	// FitSamples is M for the Ẑ estimation (paper: 25,000).
	FitSamples int
	// FitSeed seeds the dedicated Ẑ-fitting rng stream; zero derives it
	// from Seed via FitStreamSeed. Fleet engines set one fit seed per
	// suite so every scenario of a grid shares the same offline fit.
	FitSeed int64
	// Fits supplies a pre-fitted observation-model set (the offline
	// training artifact, typically from a fleet-level fit cache). Nil fits
	// one inside Run from (FitSamples, FitSeed); a run with a supplied set
	// built from the same samples and seed is byte-identical to one that
	// fits inline.
	Fits *FitSet
	// Workload is the background client population.
	Workload BackgroundWorkload
}

func (s *Scenario) applyDefaults() error {
	if s.Policy == nil {
		return fmt.Errorf("%w: nil policy", ErrBadScenario)
	}
	if s.N1 < 1 {
		return fmt.Errorf("%w: N1 = %d", ErrBadScenario, s.N1)
	}
	if s.SMax == 0 {
		s.SMax = 13
	}
	if s.N1 > s.SMax {
		return fmt.Errorf("%w: N1 = %d > smax = %d", ErrBadScenario, s.N1, s.SMax)
	}
	if s.K == 0 {
		s.K = 1
	}
	if s.F == 0 {
		s.F = DefaultThreshold(s.N1)
	}
	if s.DeltaR < 0 {
		return fmt.Errorf("%w: deltaR = %d", ErrBadScenario, s.DeltaR)
	}
	if s.Steps == 0 {
		s.Steps = 1000
	}
	if s.Params.ZHealthy == nil {
		p := nodemodel.DefaultParams()
		p.PA = 0.1 // §X evaluation value
		s.Params = p
	}
	if err := s.Params.Validate(); err != nil {
		return err
	}
	if s.FitSamples == 0 {
		s.FitSamples = 25000
	}
	if s.Workload.Lambda == 0 {
		s.Workload = DefaultBackgroundWorkload()
	}
	return nil
}

// DefaultThreshold is the paper's evaluation rule for the tolerance
// threshold: f = min((N1-1)/2, 2), at least 1 (Table 8). Scenario
// defaulting and the fleet grid expansion both use it.
func DefaultThreshold(n1 int) int {
	f := (n1 - 1) / 2
	if f > 2 {
		f = 2
	}
	if f < 1 {
		f = 1
	}
	return f
}

// Metrics aggregates one run's evaluation quantities (§III-C, Table 7).
type Metrics struct {
	// Availability is T(A): the fraction of steps where at most f nodes
	// were compromised or crashed (the paper's §III-C metric).
	Availability float64
	// QuorumAvailability additionally requires N_t >= 2f+1+k alive nodes
	// (the full Prop. 1 condition for correct service): it exposes
	// replication shortfalls that T(A) alone does not.
	QuorumAvailability float64
	// TimeToRecovery is T(R) in steps, penalty 10^3 for unrecovered
	// intrusions.
	TimeToRecovery float64
	// RecoveryFrequency is F(R): recoveries per node-step.
	RecoveryFrequency float64
	// AvgNodes is the mean replication factor over the run.
	AvgNodes float64
	// AvgCost is the eq. (5) control cost per node-step: eta per
	// compromised waiting node plus 1 per recovery.
	AvgCost float64
	// Intrusions counts completed compromises.
	Intrusions int
	// Recoveries counts controller recoveries.
	Recoveries int
	// Evictions and Additions count replication-factor changes.
	Evictions, Additions int
	// ServiceLatencyMS is the mean client-request latency in milliseconds,
	// measured only by backends that serve a real workload (the live-cluster
	// backend). The analytic emulation leaves it zero; omitempty keeps
	// emulation records and checkpoints byte-identical to releases that
	// predate the field.
	ServiceLatencyMS float64 `json:"ServiceLatencyMS,omitempty"`
}

// simNode is one virtual node of the testbed: the environment-side state
// (container, compromise progress, attack campaign) plus the BTR calendar
// offset. The monitoring-side state the node controller iterates every step
// — belief, last action, pending alert boosts, Ẑ table offsets — lives in
// the runner's beliefLanes (struct-of-arrays), so the per-step belief
// recursion runs over dense slices instead of chasing node pointers. The
// intrusion tracker is embedded by value (underAttack marks it live), so
// starting a campaign never allocates.
type simNode struct {
	id            int
	container     Container
	state         nodemodel.State
	intrusion     attacker.Intrusion
	underAttack   bool
	behaviour     attacker.Behaviour
	phase         int // BTR calendar offset
	compromisedAt int
}

// beliefLanes is the per-node monitoring state in struct-of-arrays form,
// indexed by the node's position in runner.nodes. The persistent lanes
// (belief, off, boost, action, mark) are appended on spawn, compacted in
// lockstep with node eviction and truncated with the node set; obs, zh and
// zc are per-step outputs of the observation pass (length = node count at
// the start of the step, so they still cover nodes evicted later in the
// step). Lane backing arrays are reused across steps and across scenarios,
// preserving the warm-runner zero-allocation property.
type beliefLanes struct {
	belief []float64 // node-controller belief b_t
	off    []int32   // flat Ẑ slab offset = container index × alert support
	boost  []int32   // pending alert boost from the ongoing intrusion
	action []uint8   // last action (uint8(nodemodel.Wait) = 0, Recover = 1)
	mark   []uint32  // forced-recovery epoch mark (stage 2 membership test)
	obs    []int     // this step's observations (also the AddNode context)
	zh, zc []float64 // gathered likelihoods Ẑ(o_i|H), Ẑ(o_i|C)
}

// appendNode adds one node's monitoring state (fresh belief pa, Ẑ offset
// off) to the persistent lanes.
func (l *beliefLanes) appendNode(pa float64, off int32) {
	l.belief = append(l.belief, pa)
	l.off = append(l.off, off)
	l.boost = append(l.boost, 0)
	l.action = append(l.action, 0)
	l.mark = append(l.mark, 0)
}

// move copies the persistent lane entries of src to dst (eviction
// compaction, mirroring the node-slice compaction).
func (l *beliefLanes) move(dst, src int) {
	l.belief[dst] = l.belief[src]
	l.off[dst] = l.off[src]
	l.boost[dst] = l.boost[src]
	l.action[dst] = l.action[src]
	l.mark[dst] = l.mark[src]
}

// truncate shortens the persistent lanes to n entries, keeping capacity.
func (l *beliefLanes) truncate(n int) {
	l.belief = l.belief[:n]
	l.off = l.off[:n]
	l.boost = l.boost[:n]
	l.action = l.action[:n]
	l.mark = l.mark[:n]
}

// reserve sizes every lane for n nodes in one shot. The replication cap
// s_max bounds the node count for the whole run, so reserving once at reset
// replaces the per-lane append-doubling series with a single allocation per
// lane — and a runner reused across scenarios of equal cap never allocates
// lanes again. Only called on empty lanes (after truncate(0)).
func (l *beliefLanes) reserve(n int) {
	fl := make([]float64, 3*n)
	l.belief = fl[0:0:n]
	l.zh = fl[n : n : 2*n]
	l.zc = fl[2*n : 2*n : 3*n]
	i32 := make([]int32, 2*n)
	l.off = i32[0:0:n]
	l.boost = i32[n : n : 2*n]
	l.action = make([]uint8, 0, n)
	l.mark = make([]uint32, 0, n)
	l.obs = make([]int, 0, n)
}

// growFloats returns s resized to n entries, reusing its backing array when
// the capacity suffices (the steady-state case).
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growInts is growFloats for int slices.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// runner holds one scenario run's state: the rng streams, the node set,
// running metric sums, and scratch buffers reused across steps so the
// steady-state step loop allocates nothing (guarded by
// TestStepZeroAllocations). A runner is additionally reusable across
// scenarios through reset: the node structs, rng streams, scratch buffers
// and metric state all carry over, so a worker that executes many scenarios
// (the fleet engine's worker-resident mode) reaches a steady state where a
// whole scenario run allocates nothing (guarded by
// TestRunIntoSteadyStateZeroAllocations).
type runner struct {
	s    Scenario
	rng  *rand.Rand // node/environment stream (seeded by Scenario.Seed)
	wrng *rand.Rand // background-workload stream (arrivals + departures)
	fits *FitSet

	nodes  []*simNode
	pool   []*simNode // recycled node structs (evictions + resets)
	nextID int

	m              Metrics
	recoveryTimes  []float64
	availableSteps int
	quorumSteps    int
	nodeSteps      int
	totalNodes     float64
	costSum        float64
	obsSum         float64
	obsCount       int
	sessions       int

	// ln is the SoA monitoring state (see beliefLanes); epoch stamps the
	// per-step forced-recovery marks, so stage 2's membership test is one
	// lane compare instead of a scan over the recovering list.
	ln    beliefLanes
	epoch uint32

	// Fixed-parameter workload samplers: draw-identical to the
	// dist.SamplePoisson/SampleBinomial calls they replace, with the
	// per-step transcendentals hoisted into reset.
	poisson dist.PoissonSampler
	binom   dist.BinomialSampler

	// Per-step scratch, reused across steps (node indices into r.nodes).
	recovering []int32
	candidates []int32
}

// reset validates the scenario, resolves the offline fit, recycles the
// previous run's node structs, reseeds the rng streams in place, and places
// the initial nodes. After reset the runner is in exactly the state a
// freshly constructed runner for the scenario would be in.
func (r *runner) reset(s Scenario) error {
	if err := s.applyDefaults(); err != nil {
		return err
	}
	fits := s.Fits
	if fits == nil {
		fitSeed := s.FitSeed
		if fitSeed == 0 {
			fitSeed = FitStreamSeed(s.Seed)
		}
		var err error
		fits, err = NewFitSet(s.FitSamples, fitSeed)
		if err != nil {
			return err
		}
	}
	r.s = s
	r.fits = fits
	if r.rng == nil {
		r.rng = newSplitMixRand(s.Seed)
		r.wrng = newSplitMixRand(workloadStreamSeed(s.Seed))
	} else {
		r.rng.Seed(s.Seed)
		r.wrng.Seed(workloadStreamSeed(s.Seed))
	}
	r.pool = append(r.pool, r.nodes...)
	r.nodes = r.nodes[:0]
	r.m = Metrics{}
	r.recoveryTimes = r.recoveryTimes[:0]
	r.availableSteps, r.quorumSteps, r.nodeSteps = 0, 0, 0
	r.totalNodes, r.costSum, r.obsSum = 0, 0, 0
	r.obsCount, r.sessions = 0, 0
	r.ln.truncate(0)
	if cap(r.ln.belief) < s.SMax {
		r.ln.reserve(s.SMax)
	}
	r.epoch = 0
	r.poisson.Reset(s.Workload.Lambda)
	r.binom.Reset(1 / s.Workload.MeanServiceSteps)
	r.recovering = r.recovering[:0]
	r.candidates = r.candidates[:0]
	for i := 0; i < s.N1; i++ {
		phase := 0
		if s.DeltaR != recovery.InfiniteDeltaR {
			phase = (i * s.DeltaR) / s.N1 // stagger forced recoveries
		}
		r.spawn(i, phase)
	}
	r.nextID = s.N1
	return nil
}

// newRunner validates the scenario, resolves the offline fit, and places
// the initial nodes.
func newRunner(s Scenario) (*runner, error) {
	r := &runner{}
	if err := r.reset(s); err != nil {
		return nil, err
	}
	return r, nil
}

// spawn appends a node running a uniformly drawn catalog image — recycling
// a previously evicted node struct when one is available — together with
// its monitoring-lane entries (fresh belief pA, the container's Ẑ slab
// offset).
func (r *runner) spawn(id, phase int) {
	var n *simNode
	if k := len(r.pool); k > 0 {
		n, r.pool = r.pool[k-1], r.pool[:k-1]
	} else {
		n = &simNode{}
	}
	ci := r.rng.Intn(r.fits.Len())
	*n = simNode{
		id:            id,
		container:     r.fits.Container(ci),
		state:         nodemodel.Healthy,
		phase:         phase,
		compromisedAt: -1,
	}
	r.nodes = append(r.nodes, n)
	r.ln.appendNode(r.s.Params.PA, int32(ci*r.fits.support))
}

// Runner executes scenarios with state that is reused from one run to the
// next: the node structs, rng streams, metric accumulators and scratch
// buffers of a finished scenario become the next scenario's starting
// capital. A Runner is for a single goroutine; fleet workers hold one each
// and execute their whole batch stream through it, which removes the
// per-scenario construction cost (≈ the runner, its node set and both rng
// streams) from the grid hot path. Results are bit-identical to Run: reset
// reproduces exactly the state a fresh runner would start with.
type Runner struct {
	run   runner
	onRun func(steps int)
}

// NewRunner returns an empty reusable runner; the first RunInto sizes it.
func NewRunner() *Runner { return &Runner{} }

// OnRun installs a completion observer: after every successful RunInto the
// runner calls fn with the number of simulated steps (post-default, so the
// real count). The observer is for telemetry only — it runs after the
// scenario's randomness is fully consumed, receives no simulation state,
// and must not retain references; metrics are unchanged whether one is
// installed or not. The call itself is allocation-free, preserving the
// warm-runner zero-alloc guarantee.
func (r *Runner) OnRun(fn func(steps int)) { r.onRun = fn }

// RunInto executes the scenario on the reusable runner and returns the
// metrics by value (no per-run allocation).
func (r *Runner) RunInto(s Scenario) (Metrics, error) { return RunInto(r, s) }

// RunInto executes a scenario on a reusable runner: the runner's node pool,
// rng streams and scratch state are recycled, so a warm runner executes a
// whole scenario without allocating (guarded by
// TestRunIntoSteadyStateZeroAllocations). Output is bit-identical to Run.
func RunInto(r *Runner, s Scenario) (Metrics, error) {
	run := &r.run
	if err := run.reset(s); err != nil {
		return Metrics{}, err
	}
	for t := 1; t <= run.s.Steps; t++ {
		run.step(t)
	}
	if r.onRun != nil {
		r.onRun(run.s.Steps)
	}
	return *run.finish(), nil
}

// Run executes a scenario and returns its metrics. It is the allocate-fresh
// wrapper around RunInto; callers executing many scenarios should hold a
// Runner and use RunInto instead.
func Run(s Scenario) (*Metrics, error) {
	m, err := RunInto(NewRunner(), s)
	if err != nil {
		return nil, err
	}
	return &m, nil
}

// step advances the simulation by one 60-second time step.
func (r *runner) step(t int) {
	s := &r.s
	rng := r.rng
	L := &r.ln

	// Background client population (Poisson arrivals, exponential service
	// approximated by geometric departures — a Binomial(sessions, 1/mu)
	// thinning per step); the load adds baseline alert noise. Both draws
	// come from the dedicated workload stream, through the fixed-parameter
	// samplers (draw-identical to the dist.Sample* calls they hoist).
	r.sessions += r.poisson.Sample(r.wrng)
	r.sessions -= r.binom.Sample(r.wrng, r.sessions)
	load := float64(r.sessions) / (s.Workload.Lambda * s.Workload.MeanServiceSteps)

	// 1. Observations and belief updates, in two passes over the lanes.
	// Pass one draws each node's observation — strictly in node order, the
	// rng draw order is part of the determinism contract — and gathers the
	// observation's likelihood pair from the FitSet slabs into dense lanes.
	// Pass two is the batched Appendix-A recursion over those lanes
	// (updateBeliefLanes): contiguous loads and multiplies with no per-node
	// pointer or branch work, bit-identical to the scalar recursion.
	n := len(r.nodes)
	obsLane := growInts(L.obs, n)
	zhLane := growFloats(L.zh, n)
	zcLane := growFloats(L.zc, n)
	zhFlat, zcFlat := r.fits.zhFlat, r.fits.zcFlat
	pFalse := 0.1 * load // background-traffic false-alert probability
	for i, nd := range r.nodes {
		obs := nd.container.Profile.Sample(rng, nd.state == nodemodel.Compromised)
		obs += int(L.boost[i])
		L.boost[i] = 0
		if dist.SampleBernoulli(rng, pFalse) {
			obs++ // background-traffic false alert
		}
		if obs >= ids.AlertSupport {
			obs = ids.AlertSupport - 1
		}
		obsLane[i] = obs
		r.obsSum += float64(obs)
		flat := int(L.off[i]) + obs
		zhLane[i] = zhFlat[flat]
		zcLane[i] = zcFlat[flat]
	}
	r.obsCount += n
	L.obs, L.zh, L.zc = obsLane, zhLane, zcLane
	updateBeliefLanes(s.Params, L.belief, L.action, zhLane, zcLane)

	// 2. Action selection: forced calendar recoveries first, then the
	// policy's threshold recoveries, capped at k parallel recoveries.
	// Forced nodes are marked with this step's epoch, so the exclusion
	// test below is one lane compare per node instead of the old O(k·n)
	// scan over the recovering list.
	r.epoch++
	epoch := r.epoch
	recovering := r.recovering[:0]
	if s.Policy.UsesBTR() && s.DeltaR != recovery.InfiniteDeltaR {
		for i, nd := range r.nodes {
			if (t+nd.phase)%s.DeltaR == 0 && len(recovering) < s.K {
				recovering = append(recovering, int32(i))
				L.mark[i] = epoch
			}
		}
	}
	// Threshold recoveries in descending belief order.
	candidates := r.candidates[:0]
	for i, nd := range r.nodes {
		if L.mark[i] == epoch {
			continue
		}
		windowPos := t + nd.phase
		if s.DeltaR != recovery.InfiniteDeltaR {
			windowPos = (t + nd.phase) % s.DeltaR
			if windowPos == 0 {
				continue
			}
		}
		action := s.Policy.NodeAction(baselines.NodeContext{
			Belief:    L.belief[i],
			Obs:       obsLane[i],
			WindowPos: windowPos,
			DeltaR:    s.DeltaR,
		})
		if action == nodemodel.Recover {
			candidates = append(candidates, int32(i))
		}
	}
	sortIndicesByBelief(candidates, L.belief)
	for _, ci := range candidates {
		if len(recovering) >= s.K {
			break
		}
		recovering = append(recovering, ci)
	}
	r.recovering, r.candidates = recovering, candidates

	// 3. Apply recoveries: the container is replaced with a random
	// image from Table 4 (§VIII-A) and the belief resets.
	clear(L.action)
	for _, ci := range recovering {
		i := int(ci)
		nd := r.nodes[i]
		r.m.Recoveries++
		if nd.compromisedAt >= 0 {
			r.recoveryTimes = append(r.recoveryTimes, float64(t-nd.compromisedAt))
			nd.compromisedAt = -1
		}
		k := rng.Intn(r.fits.Len())
		nd.container = r.fits.Container(k)
		L.off[i] = int32(k * r.fits.support)
		nd.state = nodemodel.Healthy
		nd.underAttack = false
		L.belief[i] = s.Params.PA
		L.action[i] = uint8(nodemodel.Recover)
	}

	// 4. System controller: evict crashed nodes (they failed to report
	// a belief, §V-B), then decide whether to add one. The lanes compact
	// in lockstep with the node slice.
	evictedNow := 0
	alive := r.nodes[:0]
	j := 0
	for i, nd := range r.nodes {
		if nd.state == nodemodel.Crashed {
			r.m.Evictions++
			evictedNow++
			r.pool = append(r.pool, nd)
			continue
		}
		if j != i {
			L.move(j, i)
		}
		alive = append(alive, nd)
		j++
	}
	r.nodes = alive
	L.truncate(j)
	healthyEstimate := 0.0
	for _, b := range L.belief {
		healthyEstimate += 1 - b
	}
	est := int(math.Floor(healthyEstimate))
	if est > s.SMax {
		est = s.SMax
	}
	meanObs := 0.0
	if r.obsCount > 0 {
		meanObs = r.obsSum / float64(r.obsCount)
	}
	if len(r.nodes) < s.SMax && s.Policy.AddNode(baselines.SystemContext{
		HealthyEstimate: est,
		AliveNodes:      len(r.nodes),
		Observations:    obsLane,
		MeanObs:         meanObs,
		Rng:             rng,
	}) {
		phase := 0
		if s.DeltaR != recovery.InfiniteDeltaR {
			phase = rng.Intn(s.DeltaR)
		}
		r.spawn(r.nextID, phase)
		r.nextID++
		r.m.Additions++
	}

	// 5. Metrics: T(A) counts the steps where at most f nodes are
	// compromised or crashed (§III-C; crashed nodes were evicted in
	// stage 4, so they are exactly this step's eviction count).
	compromised := 0
	for i, nd := range r.nodes {
		switch {
		case L.action[i] == uint8(nodemodel.Recover):
			r.costSum++ // eq. (5): a recovery costs 1
		case nd.state == nodemodel.Compromised:
			r.costSum += s.Params.Eta // eq. (5): waiting while compromised
		}
		if nd.state == nodemodel.Compromised {
			compromised++
		}
	}
	if compromised+evictedNow <= s.F {
		r.availableSteps++
		if len(r.nodes) >= 2*s.F+1+s.K {
			r.quorumSteps++
		}
	}
	r.nodeSteps += len(r.nodes)
	r.totalNodes += float64(len(r.nodes))

	// 6. Environment transition: intrusions, crashes, updates.
	for i, nd := range r.nodes {
		switch nd.state {
		case nodemodel.Healthy:
			if dist.SampleBernoulli(rng, s.Params.PC1) {
				nd.state = nodemodel.Crashed
				continue
			}
			if !nd.underAttack && dist.SampleBernoulli(rng, s.Params.PA) {
				if err := nd.intrusion.Begin(nd.container.ID); err == nil {
					nd.underAttack = true
				}
			}
			if nd.underAttack {
				L.boost[i] += int32(nd.intrusion.Advance(rng))
				if nd.intrusion.Done() {
					nd.state = nodemodel.Compromised
					nd.behaviour = nd.intrusion.Behaviour
					nd.compromisedAt = t
					r.m.Intrusions++
				}
			}
		case nodemodel.Compromised:
			if dist.SampleBernoulli(rng, s.Params.PC2) {
				nd.state = nodemodel.Crashed
				if nd.compromisedAt >= 0 {
					r.recoveryTimes = append(r.recoveryTimes, recovery.NoRecoveryPenalty)
					nd.compromisedAt = -1
				}
				continue
			}
			if dist.SampleBernoulli(rng, s.Params.PU) {
				// Software update silently cleans the node (eq. 2g);
				// not a controller recovery, so T(R) is not recorded.
				nd.state = nodemodel.Healthy
				nd.underAttack = false
				nd.compromisedAt = -1
			}
		}
	}
}

// finish applies end-of-run penalties and assembles the metrics.
func (r *runner) finish() *Metrics {
	s := &r.s
	m := &r.m
	// Unrecovered intrusions at the end of the run take the penalty.
	for _, n := range r.nodes {
		if n.compromisedAt >= 0 {
			r.recoveryTimes = append(r.recoveryTimes, recovery.NoRecoveryPenalty)
		}
	}

	m.Availability = float64(r.availableSteps) / float64(s.Steps)
	m.QuorumAvailability = float64(r.quorumSteps) / float64(s.Steps)
	if r.nodeSteps > 0 {
		m.RecoveryFrequency = float64(m.Recoveries) / float64(r.nodeSteps)
		m.AvgCost = r.costSum / float64(r.nodeSteps)
	}
	if len(r.recoveryTimes) > 0 {
		sum := 0.0
		for _, v := range r.recoveryTimes {
			sum += v
		}
		m.TimeToRecovery = sum / float64(len(r.recoveryTimes))
	}
	m.AvgNodes = r.totalNodes / float64(s.Steps)
	return m
}

// updateBeliefFitted is the Appendix A belief recursion using the
// controller's estimated observation model Ẑ, supplied as dense likelihood
// tables (zh[o] = Ẑ(o|H), zc[o] = Ẑ(o|C)) so the hot path is two slice
// loads and a handful of multiplies.
func updateBeliefFitted(p nodemodel.Params, zh, zc []float64, belief float64, action nodemodel.Action, obs int) float64 {
	pred := p.PredictBelief(belief, action)
	num := zc[obs] * pred
	den := num + zh[obs]*(1-pred)
	if den <= 0 {
		return belief
	}
	b := num / den
	return math.Min(1, math.Max(0, b))
}

// updateBeliefLanes is the batched form of updateBeliefFitted: one pass of
// the Appendix A recursion over the dense belief/action/likelihood lanes,
// with the model constants hoisted out of the loop. Every per-element
// floating-point operation is the same expression, in the same order, as
// the scalar recursion through Params.PredictBelief, so the updated beliefs
// are bit-identical (guarded by TestBeliefLanesMatchScalar); hoisting
// (1-pC1), (1-pC2) and (1-pU) is bit-safe because each is still computed by
// the identical single subtraction. The clamp is branch form rather than
// math.Min/math.Max: num >= +0 and den > 0 exclude NaN and -0, so the
// branches return the same bits while keeping libm calls out of the loop.
func updateBeliefLanes(p nodemodel.Params, belief []float64, action []uint8, zh, zc []float64) {
	if len(action) < len(belief) || len(zh) < len(belief) || len(zc) < len(belief) {
		panic("emulation: belief lane shape")
	}
	pa := p.PA
	keepH := 1 - p.PC1 // healthy survival (eq. 2a-2e row mass)
	keepC := 1 - p.PC2 // compromised survival
	stayC := 1 - p.PU  // compromised and not cleaned by an update
	for i, b := range belief {
		pred := pa // recover action resets the compromise prior (eq. 2f-2i)
		if action[i] == uint8(nodemodel.Wait) {
			wh := (1 - b) * keepH
			wc := b * keepC
			surv := wh + wc
			if surv <= 0 {
				pred = b
			} else {
				pred = (wh*pa + wc*stayC) / surv
			}
		}
		num := zc[i] * pred
		den := num + zh[i]*(1-pred)
		if den <= 0 {
			continue // degenerate likelihoods: the belief carries over
		}
		nb := num / den
		if nb > 1 {
			nb = 1
		} else if nb < 0 {
			nb = 0
		}
		belief[i] = nb
	}
}

// sortIndicesByBelief sorts candidate node indices in descending belief
// order over the belief lane — the same stable insertion sort (ties keep
// node order) the node-pointer form used, without the pointer chase per
// comparison.
func sortIndicesByBelief(idx []int32, belief []float64) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && belief[idx[j]] > belief[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

// Summary holds a mean and its 95% confidence half-width.
type Summary struct {
	Mean float64
	CI   float64
}

// Welford accumulates a running mean and variance in one pass (Welford's
// online algorithm), so multi-seed and fleet-scale evaluations can fold
// per-run metrics into summaries without retaining the samples. Folding the
// same values in the same order always produces bit-identical results.
type Welford struct {
	// Count is the number of folded samples.
	Count int64
	// Mean is the running sample mean.
	Mean float64
	// M2 is the running sum of squared deviations from the mean.
	M2 float64
}

// Add folds one sample.
func (w *Welford) Add(x float64) {
	w.Count++
	delta := x - w.Mean
	w.Mean += delta / float64(w.Count)
	w.M2 += delta * (x - w.Mean)
}

// Merge folds another accumulator's state into w, as if its samples had
// been appended to w's stream (Chan et al.'s parallel combination of the
// running moments). Merging the pieces of a split stream reproduces the
// single-stream mean and variance up to floating-point rounding; exact
// bit-identity with a sequential Add fold is not guaranteed. Merge itself
// is deterministic, which is what the fleet relies on: it folds through
// fixed-span partials whose boundaries are a pure function of the
// schedule, so every path (workers, shard-merge, resume, coordinator)
// performs the identical Merge sequence and stays byte-identical.
func (w *Welford) Merge(other Welford) {
	if other.Count == 0 {
		return
	}
	if w.Count == 0 {
		*w = other
		return
	}
	n := float64(w.Count + other.Count)
	delta := other.Mean - w.Mean
	w.Mean += delta * float64(other.Count) / n
	w.M2 += other.M2 + delta*delta*float64(w.Count)*float64(other.Count)/n
	w.Count += other.Count
}

// Variance returns the sample variance (zero below two samples).
func (w *Welford) Variance() float64 {
	if w.Count < 2 {
		return 0
	}
	return w.M2 / float64(w.Count-1)
}

// Summary returns the mean with its 95% Student-t confidence half-width.
func (w *Welford) Summary() Summary {
	if w.Count < 2 {
		return Summary{Mean: w.Mean}
	}
	se := math.Sqrt(w.Variance() / float64(w.Count))
	return Summary{Mean: w.Mean, CI: tCritical95(int(w.Count)-1) * se}
}

// Aggregate is the multi-seed result for one strategy/configuration cell of
// Table 7.
type Aggregate struct {
	Availability       Summary
	QuorumAvailability Summary
	TimeToRecovery     Summary
	RecoveryFrequency  Summary
	AvgNodes           Summary
	Cost               Summary
	// Latency summarizes measured service latency (ms) for backends that
	// report it; nil — and therefore absent from the serialization — when no
	// folded run carried a latency, which keeps emulation-backend results
	// byte-identical to releases that predate the field.
	Latency *Summary `json:"Latency,omitempty"`
}

// Accumulator streams per-run Metrics into an Aggregate (one Welford
// accumulator per metric).
type Accumulator struct {
	Availability       Welford
	QuorumAvailability Welford
	TimeToRecovery     Welford
	RecoveryFrequency  Welford
	AvgNodes           Welford
	Cost               Welford
	// Latency folds only runs that measured a service latency (cluster
	// backend); its count is therefore allowed to trail the other lanes.
	Latency Welford
}

// Add folds one run's metrics.
func (a *Accumulator) Add(m *Metrics) {
	a.Availability.Add(m.Availability)
	a.QuorumAvailability.Add(m.QuorumAvailability)
	a.TimeToRecovery.Add(m.TimeToRecovery)
	a.RecoveryFrequency.Add(m.RecoveryFrequency)
	a.AvgNodes.Add(m.AvgNodes)
	a.Cost.Add(m.AvgCost)
	if m.ServiceLatencyMS > 0 {
		a.Latency.Add(m.ServiceLatencyMS)
	}
}

// Merge folds another accumulator's summaries into a, as if the other's
// runs had been appended to a's stream. The fleet engine folds through
// fixed-span per-cell partials merged in schedule order, so Merge sits on
// the byte-stability path: it must stay deterministic (same inputs, same
// bits) even though it is not bit-equivalent to a sequential Add fold.
func (a *Accumulator) Merge(other *Accumulator) {
	a.Availability.Merge(other.Availability)
	a.QuorumAvailability.Merge(other.QuorumAvailability)
	a.TimeToRecovery.Merge(other.TimeToRecovery)
	a.RecoveryFrequency.Merge(other.RecoveryFrequency)
	a.AvgNodes.Merge(other.AvgNodes)
	a.Cost.Merge(other.Cost)
	a.Latency.Merge(other.Latency)
}

// Runs returns the number of folded runs.
func (a *Accumulator) Runs() int64 { return a.Availability.Count }

// Aggregate summarizes the folded runs.
func (a *Accumulator) Aggregate() *Aggregate {
	out := a.AggregateValue()
	return &out
}

// AggregateValue summarizes the folded runs without allocating — the form
// fleet result assembly uses once per grid cell.
func (a *Accumulator) AggregateValue() Aggregate {
	out := Aggregate{
		Availability:       a.Availability.Summary(),
		QuorumAvailability: a.QuorumAvailability.Summary(),
		TimeToRecovery:     a.TimeToRecovery.Summary(),
		RecoveryFrequency:  a.RecoveryFrequency.Summary(),
		AvgNodes:           a.AvgNodes.Summary(),
		Cost:               a.Cost.Summary(),
	}
	if a.Latency.Count > 0 {
		s := a.Latency.Summary()
		out.Latency = &s
	}
	return out
}

// RunSeeds evaluates a scenario across seeds (the paper uses 20) and
// summarizes each metric with a Student-t 95% confidence interval.
func RunSeeds(base Scenario, seeds []int64) (*Aggregate, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("%w: no seeds", ErrBadScenario)
	}
	var acc Accumulator
	for _, seed := range seeds {
		s := base
		s.Seed = seed
		m, err := Run(s)
		if err != nil {
			return nil, err
		}
		acc.Add(m)
	}
	return acc.Aggregate(), nil
}

// tCritical95 approximates the two-sided 95% Student-t critical value by
// table lookup with the nearest smaller degrees of freedom.
func tCritical95(df int) float64 {
	if df > 49 {
		return 1.96
	}
	keys := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 14, 19, 29, 49}
	values := []float64{12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
		2.306, 2.262, 2.228, 2.145, 2.093, 2.045, 2.010}
	out := values[0]
	for i, k := range keys {
		if df >= k {
			out = values[i]
		}
	}
	return out
}
