package emulation

import (
	"testing"

	"tolerance/internal/baselines"
	"tolerance/internal/nodemodel"
)

// TestRunIntoMatchesRun is the worker-residency contract: a sequence of
// scenarios executed through one reused Runner produces exactly the metrics
// a fresh Run of each scenario produces — reset leaks no state between
// runs, in either direction (node pool, rng streams, metric sums, scratch).
func TestRunIntoMatchesRun(t *testing.T) {
	fits, err := NewFitSet(300, 7)
	if err != nil {
		t.Fatal(err)
	}
	scenarios := []Scenario{
		{N1: 3, DeltaR: 15, Steps: 120, Seed: 1, Policy: baselines.Periodic{}, Fits: fits, FitSeed: 7},
		{N1: 6, DeltaR: 25, Steps: 150, Seed: 2, Policy: baselines.NoRecovery{}, Fits: fits, FitSeed: 7},
		{N1: 9, DeltaR: 15, Steps: 90, Seed: 3, Policy: baselines.PeriodicAdaptive{TargetN: 9}, Fits: fits, FitSeed: 7},
		{N1: 3, DeltaR: 15, Steps: 120, Seed: 1, Policy: baselines.Periodic{}, Fits: fits, FitSeed: 7},
	}
	r := NewRunner()
	for i, s := range scenarios {
		reused, err := r.RunInto(s)
		if err != nil {
			t.Fatalf("scenario %d: RunInto: %v", i, err)
		}
		fresh, err := Run(s)
		if err != nil {
			t.Fatalf("scenario %d: Run: %v", i, err)
		}
		if reused != *fresh {
			t.Errorf("scenario %d: reused runner metrics differ:\n got %+v\nwant %+v", i, reused, *fresh)
		}
	}
}

// TestRunIntoSteadyStateZeroAllocations guards the worker-resident
// contract: once a Runner is warm (its node pool and scratch sized by a
// first run), executing a whole scenario allocates nothing — including
// intrusion starts, recoveries and node churn, which all recycle pooled
// state.
func TestRunIntoSteadyStateZeroAllocations(t *testing.T) {
	params := nodemodel.DefaultParams()
	fits, err := NewFitSet(300, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := Scenario{
		N1:      6,
		DeltaR:  15,
		Steps:   200,
		Seed:    11,
		Params:  params,
		Policy:  baselines.Periodic{},
		Fits:    fits,
		FitSeed: 5,
	}
	r := NewRunner()
	if _, err := r.RunInto(s); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := r.RunInto(s); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state RunInto allocates %v times per scenario, want 0", allocs)
	}
}

// TestAccumulatorAddZeroAllocations guards the streaming-aggregation hot
// path: folding one run's metrics into the per-cell accumulators must not
// allocate (the fleet aggregator folds once per scenario).
func TestAccumulatorAddZeroAllocations(t *testing.T) {
	m := Metrics{Availability: 0.9, TimeToRecovery: 3, RecoveryFrequency: 0.05, AvgNodes: 6, AvgCost: 0.2}
	var w Welford
	x := 0.1
	allocs := testing.AllocsPerRun(1000, func() {
		w.Add(x)
		x += 0.01
	})
	if allocs != 0 {
		t.Errorf("Welford.Add allocates %v times per call, want 0", allocs)
	}
	var acc Accumulator
	allocs = testing.AllocsPerRun(1000, func() {
		acc.Add(&m)
	})
	if allocs != 0 {
		t.Errorf("Accumulator.Add allocates %v times per call, want 0", allocs)
	}
}
