// Package emulation implements the TOLERANCE testbed of §VII-VIII as a
// discrete-event simulation: virtual nodes running the replica containers of
// Table 4 with the background services of Table 5, the intrusion campaigns
// of Table 6, IDS alert generation calibrated to Fig 11, node controllers
// with MLE-fitted observation models, the system controller, and the
// evaluation metrics T(A), T(R), F(R) of §III-C (Table 7 / Fig 12).
//
// Substitution note (DESIGN.md §1.4): the physical testbed (13 servers,
// Docker, Snort, live CVE exploits) is replaced by this simulation; the
// controllers consume exactly the same information as on the testbed —
// priority-weighted alert counts and estimated observation models.
package emulation

import (
	"fmt"
	"sync"

	"tolerance/internal/dist"
	"tolerance/internal/ids"
)

// Container describes one replica image from Table 4 with its background
// services (Table 5) and alert profile.
type Container struct {
	// ID is the Table 4 replica ID (1..10).
	ID int
	// OS is the operating system of the image.
	OS string
	// Vulnerabilities lists the exploitable weaknesses (Table 4).
	Vulnerabilities []string
	// Services lists the background services (Table 5).
	Services []string
	// Profile is the container's true alert model (Fig 11).
	Profile ids.Profile
}

var (
	catalogOnce sync.Once
	catalogMem  []Container
	catalogErr  error
	catalogFP   string
)

// Catalog returns the ten replica containers of Tables 4-6. Alert profiles
// are Beta-Binomial shapes whose separation varies per container, mirroring
// the spread of empirical distributions in Fig 11 (brute-force intrusions
// are the loudest; some CVE exploits are subtler).
//
// The catalog is built once per process: profile tabulation costs thousands
// of Lgamma evaluations, which used to run on every scenario. Callers get a
// fresh slice sharing the immutable profiles, so mutating a returned entry
// cannot corrupt later calls.
func Catalog() ([]Container, error) {
	catalogOnce.Do(func() {
		catalogMem, catalogErr = buildCatalog()
		if catalogErr != nil {
			return
		}
		values := []float64{float64(len(catalogMem))}
		for _, c := range catalogMem {
			values = append(values, c.Profile.NoIntrusion.Probs()...)
			values = append(values, c.Profile.Intrusion.Probs()...)
		}
		catalogFP = dist.Fingerprint(values...)
	})
	if catalogErr != nil {
		return nil, catalogErr
	}
	return append([]Container(nil), catalogMem...), nil
}

// CatalogFingerprint returns a canonical hash over every alert profile of
// the catalog — the identity of the observation models a FitSet estimates.
// Fit caches key on it together with the sample count and fit seed.
func CatalogFingerprint() (string, error) {
	if _, err := Catalog(); err != nil {
		return "", err
	}
	return catalogFP, nil
}

func buildCatalog() ([]Container, error) {
	type spec struct {
		id       int
		os       string
		vulns    []string
		services []string
		// alert shape parameters: healthy (aH, bH), compromised (aC, bC)
		aH, bH, aC, bC float64
	}
	specs := []spec{
		{1, "ubuntu:14", []string{"FTP weak password"},
			[]string{"FTP", "SSH", "MongoDB", "HTTP", "Teamspeak"}, 0.8, 5, 3.2, 1.1},
		{2, "ubuntu:20", []string{"SSH weak password"},
			[]string{"SSH", "DNS", "HTTP"}, 0.8, 5.5, 3.0, 1.2},
		{3, "ubuntu:20", []string{"TELNET weak password"},
			[]string{"SSH", "Telnet", "HTTP"}, 0.8, 5.5, 3.0, 1.1},
		{4, "debian:10.2", []string{"CVE-2017-7494"},
			[]string{"SSH", "Samba", "NTP"}, 0.7, 6, 2.2, 1.6},
		{5, "ubuntu:20", []string{"CVE-2014-6271"},
			[]string{"SSH"}, 0.7, 6, 2.4, 1.5},
		{6, "debian:10.2", []string{"CWE-89 on DVWA"},
			[]string{"DVWA", "IRC", "SSH"}, 0.9, 5, 2.0, 1.7},
		{7, "debian:10.2", []string{"CVE-2015-3306"},
			[]string{"SSH"}, 0.7, 6, 2.3, 1.5},
		{8, "debian:10.2", []string{"CVE-2016-10033"},
			[]string{"SSH"}, 0.7, 6, 2.3, 1.6},
		{9, "debian:10.2", []string{"CVE-2010-0426", "SSH weak password"},
			[]string{"Teamspeak", "HTTP", "SSH"}, 0.9, 5, 2.8, 1.2},
		{10, "debian:10.2", []string{"CVE-2015-5602", "SSH weak password"},
			[]string{"SSH"}, 0.9, 5, 2.8, 1.3},
	}
	out := make([]Container, 0, len(specs))
	for _, s := range specs {
		profile, err := ids.NewBetaBinomialProfile(
			fmt.Sprintf("replica-%d(%s)", s.id, s.vulns[0]), s.aH, s.bH, s.aC, s.bC)
		if err != nil {
			return nil, fmt.Errorf("emulation: container %d: %w", s.id, err)
		}
		out = append(out, Container{
			ID:              s.id,
			OS:              s.os,
			Vulnerabilities: s.vulns,
			Services:        s.services,
			Profile:         profile,
		})
	}
	return out, nil
}

// PhysicalNode describes one server of Table 3 (kept as reference data for
// the documentation and the tolerance-sim tool; the simulation does not
// model hardware).
type PhysicalNode struct {
	Name       string
	Processors string
	RAMGB      int
}

// PhysicalCluster returns the Table 3 inventory.
func PhysicalCluster() []PhysicalNode {
	nodes := make([]PhysicalNode, 0, 13)
	for i := 1; i <= 9; i++ {
		nodes = append(nodes, PhysicalNode{
			Name:       fmt.Sprintf("%d, R715 2U", i),
			Processors: "two 12-core AMD Opteron",
			RAMGB:      64,
		})
	}
	nodes = append(nodes,
		PhysicalNode{"10, R630 2U", "two 12-core Intel Xeon E5-2680", 256},
		PhysicalNode{"11, R740 2U", "one 20-core Intel Xeon Gold 5218R", 32},
		PhysicalNode{"12, Supermicro 7049", "2x Tesla P100, one 16-core Intel Xeon", 126},
		PhysicalNode{"13, Supermicro 7049", "4x RTX 8000, one 24-core Intel Xeon", 768},
	)
	return nodes
}

// BackgroundWorkload models the client population of §VIII-A: arrivals are
// Poisson(lambda = 20) and service times exponential with mean mu = 4 time
// steps; the active session count modulates baseline alert noise.
type BackgroundWorkload struct {
	// Lambda is the arrival rate per step.
	Lambda float64 `json:"lambda"`
	// MeanServiceSteps is the mean session duration.
	MeanServiceSteps float64 `json:"meanServiceSteps"`
}

// DefaultBackgroundWorkload returns the paper's parameters.
func DefaultBackgroundWorkload() BackgroundWorkload {
	return BackgroundWorkload{Lambda: 20, MeanServiceSteps: 4}
}
