package emulation

import (
	"fmt"
	"math/rand"

	"tolerance/internal/dist"
	"tolerance/internal/ids"
)

// Stream tags for splitStream: every derived rng stream of a scenario has
// its own tag, so the draws of one phase can never shift another phase's
// stream.
const (
	fitStreamTag      = 0x0f17
	workloadStreamTag = 0x3017
)

// splitStream derives a decorrelated rng seed from a base seed and a
// stream tag with the shared SplitMix64 finalizer (the same mix the fleet
// engine uses for per-scenario seeds).
func splitStream(seed int64, tag uint64) int64 {
	return int64(dist.SplitMix64(uint64(seed)*dist.GoldenGamma + tag))
}

// FitStreamSeed returns the seed of the dedicated Ẑ-fitting rng stream
// derived from a scenario (or suite) seed. The fit phase draws from this
// stream only, so simulation draws do not depend on how many samples the
// fit consumed. Fleet engines derive one fit seed per suite from the suite
// master seed, which lets every scenario of a grid share a single offline
// fit — the paper's one-time training phase (§VIII-A).
func FitStreamSeed(seed int64) int64 { return splitStream(seed, fitStreamTag) }

// splitMixSource is a SplitMix64 rand.Source64 for the per-scenario node
// and workload streams. Its reason to exist is O(1) seeding: the standard
// library's legacy source runs a 607-round mixing loop on every Seed,
// which dominated worker-resident scenario reset once everything else was
// allocation-free (two reseeds per scenario ≈ 20% of fleet runtime).
// Swapping the generator re-based every per-seed emulation trajectory —
// the ROADMAP's rng-rebase policy covers it; the statistical contracts
// (Table 7 orderings, determinism across workers/shards/resume) are
// unchanged.
type splitMixSource struct{ state uint64 }

func (s *splitMixSource) Seed(seed int64) { s.state = uint64(seed) }

func (s *splitMixSource) Uint64() uint64 {
	s.state += dist.GoldenGamma
	return dist.SplitMix64(s.state)
}

func (s *splitMixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// newSplitMixRand returns a *rand.Rand on a SplitMix64 source (reseedable
// in place through rand.Rand.Seed at one-word cost).
func newSplitMixRand(seed int64) *rand.Rand {
	return rand.New(&splitMixSource{state: uint64(seed)})
}

// workloadStreamSeed seeds the background-workload stream (arrivals and
// departures), keeping the session process off the node simulation stream.
func workloadStreamSeed(seed int64) int64 { return splitStream(seed, workloadStreamTag) }

// FitSet is the offline training artifact of §VIII-A: the MLE-fitted
// observation models Ẑ for every catalog container, together with dense
// per-observation likelihood tables so the Appendix A belief recursion is
// two slice loads instead of two distribution lookups. A FitSet is
// immutable after construction and safe to share across concurrent
// scenario runs; fleet engines fit one per suite and reuse it for every
// scenario (the fit is a preprocessing step, so sharing it across a grid
// changes no controller-visible semantics).
type FitSet struct {
	catalog []Container
	samples int
	seed    int64
	fits    []*ids.FittedZ
	// zh[i][o] = Ẑ_i(o | H), zc[i][o] = Ẑ_i(o | C) for container i.
	zh, zc [][]float64
	// zhFlat and zcFlat are the same tables as one dense slab each, row i at
	// offset i*support — the layout the runner's SoA belief lanes gather
	// from, so the per-node likelihood lookup is a base offset plus the
	// observation, with no per-node slice header chasing.
	zhFlat, zcFlat []float64
	// support is the per-container row length (the alert support).
	support int
}

// NewFitSet fits Ẑ for every catalog container with m samples per state,
// drawing from the dedicated fit stream seeded by seed. Containers are
// fitted in catalog order from one rng, so a FitSet is a pure function of
// (catalog, m, seed).
func NewFitSet(m int, seed int64) (*FitSet, error) {
	catalog, err := Catalog()
	if err != nil {
		return nil, err
	}
	fs := &FitSet{
		catalog: catalog,
		samples: m,
		seed:    seed,
		fits:    make([]*ids.FittedZ, len(catalog)),
		zh:      make([][]float64, len(catalog)),
		zc:      make([][]float64, len(catalog)),
	}
	rng := rand.New(rand.NewSource(seed))
	for i, c := range catalog {
		fit, err := ids.Fit(rng, c.Profile, m)
		if err != nil {
			return nil, fmt.Errorf("emulation: fit container %d: %w", c.ID, err)
		}
		fs.fits[i] = fit
		fs.zh[i] = fit.Healthy.Probs()
		fs.zc[i] = fit.Compromised.Probs()
	}
	fs.support = ids.AlertSupport
	fs.zhFlat = make([]float64, len(catalog)*fs.support)
	fs.zcFlat = make([]float64, len(catalog)*fs.support)
	for i := range catalog {
		copy(fs.zhFlat[i*fs.support:], fs.zh[i])
		copy(fs.zcFlat[i*fs.support:], fs.zc[i])
	}
	return fs, nil
}

// Len returns the number of fitted containers.
func (f *FitSet) Len() int { return len(f.catalog) }

// Samples returns the per-state MLE sample count M.
func (f *FitSet) Samples() int { return f.samples }

// Seed returns the fit-stream seed the set was drawn with.
func (f *FitSet) Seed() int64 { return f.seed }

// Container returns the i-th catalog container.
func (f *FitSet) Container(i int) Container { return f.catalog[i] }

// Fitted returns the i-th container's fitted observation model.
func (f *FitSet) Fitted(i int) *ids.FittedZ { return f.fits[i] }
