package emulation

import (
	"math"
	"testing"

	"tolerance/internal/baselines"
	"tolerance/internal/cmdp"
	"tolerance/internal/nodemodel"
	"tolerance/internal/recovery"
)

func TestCatalogTenContainers(t *testing.T) {
	cat, err := Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(cat) != 10 {
		t.Fatalf("catalog has %d containers, want 10 (Table 4)", len(cat))
	}
	for _, c := range cat {
		if err := c.Profile.Validate(); err != nil {
			t.Errorf("container %d: %v", c.ID, err)
		}
		if len(c.Vulnerabilities) == 0 || len(c.Services) == 0 {
			t.Errorf("container %d missing vulns/services", c.ID)
		}
		if c.Profile.Divergence() <= 0 {
			t.Errorf("container %d has non-separating alert profile", c.ID)
		}
	}
	// Replicas 9-10 have two vulnerabilities (Table 4).
	if len(cat[8].Vulnerabilities) != 2 || len(cat[9].Vulnerabilities) != 2 {
		t.Error("replicas 9-10 should list two vulnerabilities")
	}
}

// TestCatalogCachedAndEqual is the sync.Once contract: repeated Catalog
// calls return equal catalogs (same profiles, same metadata), and mutating
// a returned slice cannot corrupt later calls.
func TestCatalogCachedAndEqual(t *testing.T) {
	c1, err := Catalog()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(c1) != len(c2) {
		t.Fatalf("catalog lengths differ: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i].ID != c2[i].ID || c1[i].OS != c2[i].OS {
			t.Errorf("container %d metadata differs", i)
		}
		if c1[i].Profile.NoIntrusion != c2[i].Profile.NoIntrusion ||
			c1[i].Profile.Intrusion != c2[i].Profile.Intrusion {
			t.Errorf("container %d does not share the cached profile", i)
		}
	}
	c1[0] = Container{} // callers own their slice
	c3, err := Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if c3[0].ID != c2[0].ID {
		t.Error("mutating a returned catalog corrupted the cache")
	}
	fp1, err := CatalogFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp2, _ := CatalogFingerprint()
	if fp1 == "" || fp1 != fp2 {
		t.Errorf("catalog fingerprint unstable: %q vs %q", fp1, fp2)
	}
}

// TestFitSetSharedEquivalence is the offline-fit contract: a run with a
// pre-fitted observation-model set is identical to one that fits inline
// from the same (samples, seed) pair — the fit is a pure preprocessing
// step.
func TestFitSetSharedEquivalence(t *testing.T) {
	s := toleranceScenario(t, 3, 15, 11)
	s.Steps = 150
	inline, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	fits, err := NewFitSet(s.FitSamples, FitStreamSeed(s.Seed))
	if err != nil {
		t.Fatal(err)
	}
	s.Fits = fits
	shared, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if *inline != *shared {
		t.Errorf("pre-fitted run differs from inline fit:\n%+v\n%+v", inline, shared)
	}
	if fits.Len() != 10 || fits.Samples() != s.FitSamples {
		t.Errorf("fit set shape: len %d samples %d", fits.Len(), fits.Samples())
	}
	for i := 0; i < fits.Len(); i++ {
		if fits.Fitted(i) == nil || fits.Container(i).ID != i+1 {
			t.Errorf("fit %d malformed", i)
		}
	}
}

// TestFitStreamSeedSplitsStreams checks that the derived streams are
// decorrelated from the base seed and from each other.
func TestFitStreamSeedSplitsStreams(t *testing.T) {
	if FitStreamSeed(7) == 7 || FitStreamSeed(7) == workloadStreamSeed(7) {
		t.Error("fit stream not split from base/workload stream")
	}
	if FitStreamSeed(7) != FitStreamSeed(7) {
		t.Error("fit stream seed not deterministic")
	}
	if FitStreamSeed(7) == FitStreamSeed(8) {
		t.Error("fit stream seeds collide across base seeds")
	}
}

// TestBeliefUpdateZeroAllocations guards the hot-path contract: one belief
// recursion allocates nothing.
func TestBeliefUpdateZeroAllocations(t *testing.T) {
	p := nodemodel.DefaultParams()
	fits, err := NewFitSet(500, 1)
	if err != nil {
		t.Fatal(err)
	}
	zh, zc := fits.zh[0], fits.zc[0]
	belief := 0.3
	allocs := testing.AllocsPerRun(1000, func() {
		belief = updateBeliefFitted(p, zh, zc, belief, nodemodel.Wait, 5)
	})
	if allocs != 0 {
		t.Errorf("belief update allocates %v times per call, want 0", allocs)
	}
}

// TestStepZeroAllocations guards the simulator's steady-state contract:
// with no node churn (no intrusions, crashes or recoveries), a simulation
// step allocates nothing — the per-step buffers are scratch on the runner.
// Churn events (intrusion starts, recovery-time records, node spawns)
// allocate by design; they are event-rate, not step-rate.
func TestStepZeroAllocations(t *testing.T) {
	params := nodemodel.DefaultParams()
	params.PA = 0  // no intrusions
	params.PC1 = 0 // no crashes
	params.PC2 = 0
	s := Scenario{
		N1:         6,
		Steps:      500,
		Seed:       3,
		Params:     params,
		Policy:     baselines.NoRecovery{},
		FitSamples: 300,
	}
	r, err := newRunner(s)
	if err != nil {
		t.Fatal(err)
	}
	t1 := 1
	for ; t1 <= 50; t1++ {
		r.step(t1) // warm the scratch buffers
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.step(t1)
		t1++
	})
	if allocs != 0 {
		t.Errorf("steady-state step allocates %v times, want 0", allocs)
	}
}

func TestPhysicalClusterTable3(t *testing.T) {
	nodes := PhysicalCluster()
	if len(nodes) != 13 {
		t.Fatalf("physical cluster has %d nodes, want 13 (Table 3)", len(nodes))
	}
	if nodes[12].RAMGB != 768 {
		t.Errorf("node 13 RAM = %d, want 768", nodes[12].RAMGB)
	}
}

func toleranceScenario(t *testing.T, n1, deltaR int, seed int64) Scenario {
	t.Helper()
	params := nodemodel.DefaultParams()
	params.PA = 0.1
	dp, err := recovery.SolveDP(params, recovery.DPConfig{DeltaR: deltaR, GridSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	f := (n1 - 1) / 2
	if f > 2 {
		f = 2
	}
	if f < 1 {
		f = 1
	}
	model, err := cmdp.NewBinomialModel(13, f, 0.9, 0.97, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cmdp.Solve(model)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := baselines.NewTolerance(dp.Strategy(deltaR), rep)
	if err != nil {
		t.Fatal(err)
	}
	return Scenario{
		N1:         n1,
		DeltaR:     deltaR,
		Steps:      600,
		Seed:       seed,
		Params:     params,
		Policy:     pol,
		FitSamples: 4000,
	}
}

func TestRunToleranceHighAvailability(t *testing.T) {
	s := toleranceScenario(t, 6, recovery.InfiniteDeltaR, 1)
	m, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	// Table 7: TOLERANCE reaches ~0.99 availability with fast recovery.
	if m.Availability < 0.9 {
		t.Errorf("TOLERANCE availability = %v, want > 0.9", m.Availability)
	}
	if m.TimeToRecovery > 20 {
		t.Errorf("TOLERANCE T(R) = %v, want small", m.TimeToRecovery)
	}
	if m.Recoveries == 0 || m.Intrusions == 0 {
		t.Errorf("run saw %d intrusions, %d recoveries", m.Intrusions, m.Recoveries)
	}
}

func TestRunNoRecoveryLowAvailability(t *testing.T) {
	s := toleranceScenario(t, 6, recovery.InfiniteDeltaR, 2)
	s.Policy = baselines.NoRecovery{}
	m, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	// Table 7: NO-RECOVERY collapses to ~0.1-0.2 availability and the
	// recovery-time penalty.
	if m.Availability > 0.5 {
		t.Errorf("NO-RECOVERY availability = %v, want low", m.Availability)
	}
	if m.TimeToRecovery < recovery.NoRecoveryPenalty/2 {
		t.Errorf("NO-RECOVERY T(R) = %v, want ~%d", m.TimeToRecovery, recovery.NoRecoveryPenalty)
	}
	if m.Recoveries != 0 {
		t.Errorf("NO-RECOVERY performed %d recoveries", m.Recoveries)
	}
}

func TestRunPeriodicBetween(t *testing.T) {
	sTol := toleranceScenario(t, 6, 15, 3)
	mTol, err := Run(sTol)
	if err != nil {
		t.Fatal(err)
	}
	sPer := toleranceScenario(t, 6, 15, 3)
	sPer.Policy = baselines.Periodic{}
	mPer, err := Run(sPer)
	if err != nil {
		t.Fatal(err)
	}
	sNo := toleranceScenario(t, 6, 15, 3)
	sNo.Policy = baselines.NoRecovery{}
	mNo, err := Run(sNo)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 12 ordering: TOLERANCE >= PERIODIC >> NO-RECOVERY on T(A), and
	// TOLERANCE has the smallest T(R).
	if mPer.Availability <= mNo.Availability {
		t.Errorf("PERIODIC availability %v not above NO-RECOVERY %v",
			mPer.Availability, mNo.Availability)
	}
	if mTol.Availability < mPer.Availability-0.08 {
		t.Errorf("TOLERANCE availability %v clearly below PERIODIC %v",
			mTol.Availability, mPer.Availability)
	}
	if mTol.TimeToRecovery >= mPer.TimeToRecovery {
		t.Errorf("TOLERANCE T(R) = %v not below PERIODIC %v (feedback advantage)",
			mTol.TimeToRecovery, mPer.TimeToRecovery)
	}
	// PERIODIC's recovery frequency approximates 1/DeltaR per node-step.
	if math.Abs(mPer.RecoveryFrequency-1.0/15) > 0.03 {
		t.Errorf("PERIODIC F(R) = %v, want ~%v", mPer.RecoveryFrequency, 1.0/15)
	}
}

func TestRunPeriodicAdaptiveAddsNodes(t *testing.T) {
	s := toleranceScenario(t, 3, 15, 4)
	s.Policy = baselines.PeriodicAdaptive{TargetN: 6}
	m, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if m.Additions == 0 {
		t.Error("PERIODIC-ADAPTIVE never added a node")
	}
}

func TestRunScenarioValidation(t *testing.T) {
	if _, err := Run(Scenario{}); err == nil {
		t.Error("nil policy should fail")
	}
	if _, err := Run(Scenario{Policy: baselines.NoRecovery{}, N1: 0}); err == nil {
		t.Error("N1 = 0 should fail")
	}
	if _, err := Run(Scenario{Policy: baselines.NoRecovery{}, N1: 99, SMax: 13}); err == nil {
		t.Error("N1 > smax should fail")
	}
	if _, err := Run(Scenario{Policy: baselines.NoRecovery{}, N1: 3, DeltaR: -1}); err == nil {
		t.Error("negative deltaR should fail")
	}
}

func TestRunSeedsAggregation(t *testing.T) {
	s := toleranceScenario(t, 3, recovery.InfiniteDeltaR, 0)
	s.Steps = 200
	agg, err := RunSeeds(s, []int64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Availability.Mean <= 0 || agg.Availability.Mean > 1 {
		t.Errorf("availability mean = %v", agg.Availability.Mean)
	}
	if agg.Availability.CI < 0 {
		t.Errorf("negative CI")
	}
	if _, err := RunSeeds(s, nil); err == nil {
		t.Error("no seeds should fail")
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	s := toleranceScenario(t, 3, 15, 7)
	s.Steps = 150
	m1, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if *m1 != *m2 {
		t.Errorf("same seed produced different metrics:\n%+v\n%+v", m1, m2)
	}
}

func TestRunReportsAvgCost(t *testing.T) {
	// NO-RECOVERY never pays the recovery cost, so its per-node-step cost is
	// eta times the compromised fraction — strictly positive and above
	// TOLERANCE's optimized cost in this regime.
	sNo := toleranceScenario(t, 6, recovery.InfiniteDeltaR, 5)
	sNo.Policy = baselines.NoRecovery{}
	mNo, err := Run(sNo)
	if err != nil {
		t.Fatal(err)
	}
	if mNo.AvgCost <= 0 || mNo.AvgCost > sNo.Params.Eta {
		t.Errorf("NO-RECOVERY AvgCost = %v, want in (0, eta]", mNo.AvgCost)
	}
	sTol := toleranceScenario(t, 6, recovery.InfiniteDeltaR, 5)
	mTol, err := Run(sTol)
	if err != nil {
		t.Fatal(err)
	}
	if mTol.AvgCost <= 0 {
		t.Errorf("TOLERANCE AvgCost = %v, want positive", mTol.AvgCost)
	}
	if mTol.AvgCost >= mNo.AvgCost {
		t.Errorf("TOLERANCE cost %v not below NO-RECOVERY %v", mTol.AvgCost, mNo.AvgCost)
	}
}

func TestWelfordMatchesTwoPass(t *testing.T) {
	xs := []float64{0.3, 0.7, 0.45, 0.9, 0.12, 0.5}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	variance := 0.0
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs) - 1)
	if math.Abs(w.Mean-mean) > 1e-12 {
		t.Errorf("Welford mean %v, want %v", w.Mean, mean)
	}
	if math.Abs(w.Variance()-variance) > 1e-12 {
		t.Errorf("Welford variance %v, want %v", w.Variance(), variance)
	}
	sum := w.Summary()
	se := math.Sqrt(variance / float64(len(xs)))
	if want := tCritical95(len(xs)-1) * se; math.Abs(sum.CI-want) > 1e-12 {
		t.Errorf("Welford CI %v, want %v", sum.CI, want)
	}
	var single Welford
	single.Add(0.4)
	if s := single.Summary(); s.Mean != 0.4 || s.CI != 0 || single.Variance() != 0 {
		t.Errorf("single-sample summary = %+v", s)
	}
}

func TestTCritical95(t *testing.T) {
	if v := tCritical95(19); v != 2.093 {
		t.Errorf("t(19) = %v, want 2.093 (the paper's 20-seed protocol)", v)
	}
	if v := tCritical95(100); v != 1.96 {
		t.Errorf("t(100) = %v", v)
	}
	if v := tCritical95(1); v != 12.706 {
		t.Errorf("t(1) = %v", v)
	}
}

// TestWelfordMerge is the distributed-aggregation contract: folding the
// pieces of a split stream and merging them must reproduce the
// single-stream Welford moments within 1e-12, for every split point and
// for empty sides.
func TestWelfordMerge(t *testing.T) {
	xs := []float64{0.97, 0.41, 1e3, 0.0032, 7.7, 0.55, 12.1, 0.9981, 3.25, 0.07}
	var whole Welford
	for _, x := range xs {
		whole.Add(x)
	}
	for split := 0; split <= len(xs); split++ {
		var left, right Welford
		for _, x := range xs[:split] {
			left.Add(x)
		}
		for _, x := range xs[split:] {
			right.Add(x)
		}
		merged := left
		merged.Merge(right)
		if merged.Count != whole.Count {
			t.Fatalf("split %d: count %d, want %d", split, merged.Count, whole.Count)
		}
		if math.Abs(merged.Mean-whole.Mean) > 1e-12 {
			t.Errorf("split %d: mean %v, want %v", split, merged.Mean, whole.Mean)
		}
		if math.Abs(merged.Variance()-whole.Variance()) > 1e-12*whole.Variance() {
			t.Errorf("split %d: variance %v, want %v", split, merged.Variance(), whole.Variance())
		}
	}
	// Merging an empty accumulator is the identity in both directions.
	var empty Welford
	merged := whole
	merged.Merge(empty)
	if merged != whole {
		t.Errorf("merge with empty right changed state: %+v", merged)
	}
	merged = empty
	merged.Merge(whole)
	if merged != whole {
		t.Errorf("merge into empty left = %+v, want %+v", merged, whole)
	}
}

// TestAccumulatorMerge checks that merging per-shard accumulators matches
// the single-stream fold across every metric.
func TestAccumulatorMerge(t *testing.T) {
	metrics := make([]*Metrics, 7)
	for i := range metrics {
		v := float64(i + 1)
		metrics[i] = &Metrics{
			Availability:       0.9 + 0.01*v,
			QuorumAvailability: 0.8 + 0.02*v,
			TimeToRecovery:     3 * v,
			RecoveryFrequency:  0.001 * v,
			AvgNodes:           6 + v/10,
			AvgCost:            0.2 * v,
		}
	}
	var whole Accumulator
	for _, m := range metrics {
		whole.Add(m)
	}
	var a, b Accumulator
	for _, m := range metrics[:3] {
		a.Add(m)
	}
	for _, m := range metrics[3:] {
		b.Add(m)
	}
	a.Merge(&b)
	if a.Runs() != whole.Runs() {
		t.Fatalf("merged runs %d, want %d", a.Runs(), whole.Runs())
	}
	got, want := a.Aggregate(), whole.Aggregate()
	pairs := [][2]Summary{
		{got.Availability, want.Availability},
		{got.QuorumAvailability, want.QuorumAvailability},
		{got.TimeToRecovery, want.TimeToRecovery},
		{got.RecoveryFrequency, want.RecoveryFrequency},
		{got.AvgNodes, want.AvgNodes},
		{got.Cost, want.Cost},
	}
	for i, p := range pairs {
		if math.Abs(p[0].Mean-p[1].Mean) > 1e-12 || math.Abs(p[0].CI-p[1].CI) > 1e-12 {
			t.Errorf("metric %d: merged %+v, want %+v", i, p[0], p[1])
		}
	}
}
