package emulation

import (
	"math/rand"
	"sort"
	"strconv"
	"testing"

	"tolerance/internal/nodemodel"
)

// randBeliefParams draws a random but well-formed node model for the
// kernel property tests: probabilities in (0, 1) with enough spread to hit
// both branches of the prediction (Wait survival mass can approach zero
// when the crash probabilities approach one).
func randBeliefParams(rng *rand.Rand) nodemodel.Params {
	p := nodemodel.DefaultParams()
	p.PA = rng.Float64()
	p.PC1 = rng.Float64()
	p.PC2 = rng.Float64()
	p.PU = rng.Float64()
	return p
}

// TestBeliefLanesMatchScalar is the batched kernel's correctness contract:
// across randomized parameters, likelihood tables, beliefs, actions and
// observations, updateBeliefLanes must produce bit-identical beliefs to
// the scalar updateBeliefFitted recursion it replaced — exact float64
// equality, not a tolerance, because the fleet's byte-stability guarantees
// sit on top of it.
func TestBeliefLanesMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const support = 7
	for trial := 0; trial < 200; trial++ {
		p := randBeliefParams(rng)
		n := 1 + rng.Intn(24)
		zhRow := make([]float64, support)
		zcRow := make([]float64, support)
		for o := range zhRow {
			zhRow[o] = rng.Float64()
			zcRow[o] = rng.Float64()
		}
		if trial%5 == 0 {
			// Degenerate likelihood rows exercise the den <= 0 carry-over.
			o := rng.Intn(support)
			zhRow[o], zcRow[o] = 0, 0
		}

		belief := make([]float64, n)
		action := make([]uint8, n)
		zhLane := make([]float64, n)
		zcLane := make([]float64, n)
		want := make([]float64, n)
		for i := 0; i < n; i++ {
			belief[i] = rng.Float64()
			act := nodemodel.Wait
			if rng.Intn(3) == 0 {
				act = nodemodel.Recover
			}
			action[i] = uint8(act)
			obs := rng.Intn(support)
			zhLane[i] = zhRow[obs]
			zcLane[i] = zcRow[obs]
			want[i] = updateBeliefFitted(p, zhRow, zcRow, belief[i], act, obs)
		}

		updateBeliefLanes(p, belief, action, zhLane, zcLane)
		for i := 0; i < n; i++ {
			if belief[i] != want[i] {
				t.Fatalf("trial %d node %d: lane belief %v, scalar %v (params %+v)",
					trial, i, belief[i], want[i], p)
			}
		}
	}
}

// TestBeliefLanesZeroAlloc pins the batched kernel's allocation-free
// contract — it runs once per simulated step on the fleet hot path, where
// the per-scenario allocation budget is already accounted to the runner.
func TestBeliefLanesZeroAlloc(t *testing.T) {
	p := nodemodel.DefaultParams()
	const n = 50
	belief := make([]float64, n)
	action := make([]uint8, n)
	zh := make([]float64, n)
	zc := make([]float64, n)
	for i := range belief {
		belief[i] = float64(i) / n
		zh[i] = 0.3
		zc[i] = 0.6
	}
	if avg := testing.AllocsPerRun(100, func() {
		updateBeliefLanes(p, belief, action, zh, zc)
	}); avg != 0 {
		t.Fatalf("updateBeliefLanes allocates %v per run, want 0", avg)
	}
}

// TestSortIndicesByBelief checks the candidate sort against the stable
// descending order the node-pointer sort produced: ties must keep index
// (i.e. node) order, because recovery scheduling order feeds the rng
// stream.
func TestSortIndicesByBelief(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(20)
		belief := make([]float64, n)
		for i := range belief {
			// Coarse values force ties.
			belief[i] = float64(rng.Intn(4)) / 4
		}
		idx := make([]int32, n)
		want := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
			want[i] = int32(i)
		}
		sort.SliceStable(want, func(a, b int) bool {
			return belief[want[a]] > belief[want[b]]
		})
		sortIndicesByBelief(idx, belief)
		for i := range idx {
			if idx[i] != want[i] {
				t.Fatalf("trial %d: got %v, want %v (beliefs %v)", trial, idx, want, belief)
			}
		}
	}
}

// BenchmarkBeliefBatch compares the scalar recursion with the batched lane
// kernel at fleet-realistic node counts (paper grids run 5-15 nodes;
// 50 stresses the gather-heavy regime).
func BenchmarkBeliefBatch(b *testing.B) {
	p := nodemodel.DefaultParams()
	const support = 7
	zhRow := make([]float64, support)
	zcRow := make([]float64, support)
	for o := range zhRow {
		zhRow[o] = 1 / float64(support)
		zcRow[o] = float64(o+1) * 2 / float64(support*(support+1))
	}
	for _, n := range []int{5, 15, 50} {
		rng := rand.New(rand.NewSource(3))
		belief := make([]float64, n)
		action := make([]uint8, n)
		obs := make([]int, n)
		zh := make([]float64, n)
		zc := make([]float64, n)
		for i := 0; i < n; i++ {
			belief[i] = rng.Float64()
			obs[i] = rng.Intn(support)
			zh[i] = zhRow[obs[i]]
			zc[i] = zcRow[obs[i]]
		}
		b.Run("scalar/n="+strconv.Itoa(n), func(b *testing.B) {
			work := make([]float64, n)
			for it := 0; it < b.N; it++ {
				copy(work, belief)
				for i := 0; i < n; i++ {
					work[i] = updateBeliefFitted(p, zhRow, zcRow, work[i], nodemodel.Wait, obs[i])
				}
			}
		})
		b.Run("lanes/n="+strconv.Itoa(n), func(b *testing.B) {
			work := make([]float64, n)
			for it := 0; it < b.N; it++ {
				copy(work, belief)
				updateBeliefLanes(p, work, action, zh, zc)
			}
		})
	}
}
