// Package profiling wires the standard -cpuprofile/-memprofile flag pair
// into the command-line tools, so hot-path regressions are diagnosable on
// a production binary without recompiling.
package profiling

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (when cpuprofile is non-empty) and returns a
// stop function that ends it and writes the heap profile (when memprofile
// is non-empty). Run the stop function after the measured workload; with
// both paths empty, Start and its stop function are no-ops.
func Start(cpuprofile, memprofile string) (func() error, error) {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuprofile != "" {
			pprof.StopCPUProfile()
		}
		if memprofile != "" {
			f, err := os.Create(memprofile)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap
			return pprof.WriteHeapProfile(f)
		}
		return nil
	}, nil
}
