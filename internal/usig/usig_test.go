package usig

import (
	"sync"
	"testing"
	"testing/quick"
)

var testKey = []byte("0123456789abcdef0123456789abcdef")

func TestHMACCreateAndVerify(t *testing.T) {
	u, err := NewHMAC("r1", testKey)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewHMACVerifier(testKey)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("prepare:view=0,req=42")
	ui, err := u.CreateUI(msg)
	if err != nil {
		t.Fatal(err)
	}
	if ui.Counter != 1 || ui.ReplicaID != "r1" {
		t.Errorf("ui = %+v", ui)
	}
	if err := v.VerifyUI(msg, ui); err != nil {
		t.Errorf("valid UI rejected: %v", err)
	}
}

func TestHMACRejectsTampering(t *testing.T) {
	u, _ := NewHMAC("r1", testKey)
	v, _ := NewHMACVerifier(testKey)
	msg := []byte("message")
	ui, _ := u.CreateUI(msg)

	// Tampered message.
	if err := v.VerifyUI([]byte("other"), ui); err == nil {
		t.Error("tampered message accepted")
	}
	// Tampered counter (equivocation attempt).
	bad := ui
	bad.Counter++
	if err := v.VerifyUI(msg, bad); err == nil {
		t.Error("tampered counter accepted")
	}
	// Stolen identity.
	bad = ui
	bad.ReplicaID = "r2"
	if err := v.VerifyUI(msg, bad); err == nil {
		t.Error("identity forgery accepted")
	}
	// Wrong key.
	v2, _ := NewHMACVerifier([]byte("another-secret-key-32-bytes-long"))
	if err := v2.VerifyUI(msg, ui); err == nil {
		t.Error("wrong-key verification accepted")
	}
}

func TestCountersAreSequential(t *testing.T) {
	u, _ := NewHMAC("r1", testKey)
	for i := uint64(1); i <= 100; i++ {
		ui, err := u.CreateUI([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if ui.Counter != i {
			t.Fatalf("counter %d, want %d", ui.Counter, i)
		}
	}
	if u.Counter() != 100 {
		t.Errorf("Counter() = %d", u.Counter())
	}
}

func TestCountersNeverReusedConcurrently(t *testing.T) {
	// The anti-equivocation property: concurrent CreateUI calls must yield
	// distinct counters.
	u, _ := NewHMAC("r1", testKey)
	const goroutines = 8
	const perG = 200
	var mu sync.Mutex
	seen := make(map[uint64]bool)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ui, err := u.CreateUI([]byte("m"))
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if seen[ui.Counter] {
					t.Errorf("counter %d reused", ui.Counter)
				}
				seen[ui.Counter] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != goroutines*perG {
		t.Errorf("got %d distinct counters, want %d", len(seen), goroutines*perG)
	}
}

func TestRSAMode(t *testing.T) {
	if testing.Short() {
		t.Skip("rsa keygen is slow")
	}
	u, err := NewRSA("r1", 1024) // Table 8: 1024-bit keys
	if err != nil {
		t.Fatal(err)
	}
	v := NewRSAVerifier()
	if err := v.Register("r1", u.PublicKey()); err != nil {
		t.Fatal(err)
	}
	msg := []byte("commit")
	ui, err := u.CreateUI(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.VerifyUI(msg, ui); err != nil {
		t.Errorf("valid rsa UI rejected: %v", err)
	}
	if err := v.VerifyUI([]byte("tampered"), ui); err == nil {
		t.Error("tampered rsa message accepted")
	}
	// Unknown replica.
	other := ui
	other.ReplicaID = "r9"
	if err := v.VerifyUI(msg, other); err == nil {
		t.Error("unknown replica accepted")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewHMAC("", testKey); err == nil {
		t.Error("empty id should fail")
	}
	if _, err := NewHMAC("r1", []byte("short")); err == nil {
		t.Error("short key should fail")
	}
	if _, err := NewRSA("r1", 512); err == nil {
		t.Error("512-bit rsa should fail")
	}
	if _, err := NewRSA("", 1024); err == nil {
		t.Error("empty id should fail")
	}
	if _, err := NewHMACVerifier([]byte("x")); err == nil {
		t.Error("short verifier key should fail")
	}
	v, _ := NewHMACVerifier(testKey)
	if err := v.Register("r1", nil); err == nil {
		t.Error("register on hmac verifier should fail")
	}
	rv := NewRSAVerifier()
	if err := rv.Register("r1", nil); err == nil {
		t.Error("nil key should fail")
	}
	u, _ := NewHMAC("r1", testKey)
	if u.PublicKey() != nil {
		t.Error("hmac usig should have no public key")
	}
}

// Property: every created UI verifies, and verification binds all three of
// (message, counter, replica).
func TestUIBindingProperty(t *testing.T) {
	u, _ := NewHMAC("r1", testKey)
	v, _ := NewHMACVerifier(testKey)
	f := func(msg []byte, flip uint8) bool {
		ui, err := u.CreateUI(msg)
		if err != nil {
			return false
		}
		if v.VerifyUI(msg, ui) != nil {
			return false
		}
		// Any single-field mutation must break verification.
		switch flip % 3 {
		case 0:
			mutated := append([]byte{0xFF}, msg...)
			return v.VerifyUI(mutated, ui) != nil
		case 1:
			bad := ui
			bad.Counter += 1 + uint64(flip)
			return v.VerifyUI(msg, bad) != nil
		default:
			bad := ui
			bad.ReplicaID = "evil"
			return v.VerifyUI(msg, bad) != nil
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestResumeHMACContinuesCounter models a replica-process restart: the
// trusted counter survives the application-domain reset, so the resumed
// USIG's first UI follows directly after the old incarnation's last one and
// still verifies. A counter that restarted from zero would be dropped by
// every peer's FIFO gate.
func TestResumeHMACContinuesCounter(t *testing.T) {
	old, _ := NewHMAC("r1", testKey)
	for i := 0; i < 5; i++ {
		if _, err := old.CreateUI([]byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	last := old.Counter()
	if last != 5 {
		t.Fatalf("counter = %d, want 5", last)
	}

	resumed, err := ResumeHMAC("r1", testKey, last)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Counter() != last {
		t.Fatalf("resumed counter = %d, want %d", resumed.Counter(), last)
	}
	ui, err := resumed.CreateUI([]byte("after restart"))
	if err != nil {
		t.Fatal(err)
	}
	if ui.Counter != last+1 {
		t.Fatalf("first resumed UI counter = %d, want %d", ui.Counter, last+1)
	}
	v, _ := NewHMACVerifier(testKey)
	if err := v.VerifyUI([]byte("after restart"), ui); err != nil {
		t.Fatalf("resumed UI does not verify: %v", err)
	}

	if _, err := ResumeHMAC("", testKey, 1); err == nil {
		t.Error("empty id should fail")
	}
	if _, err := ResumeHMAC("r1", []byte("short"), 1); err == nil {
		t.Error("short key should fail")
	}
}
