// Package usig implements the Unique Sequential Identifier Generator — the
// trusted component that MinBFT relies on (Appendix G of the paper; [43]).
// A USIG assigns monotonically increasing counter values to messages and
// certifies the assignment so that other replicas can verify that a given
// counter value was assigned to a given message and that no counter value is
// ever reused ("the tamperproof service can assert whether a given sequence
// number was assigned to a message").
//
// Two certification modes are provided: HMAC-SHA256 over a shared symmetric
// key (fast; models the trusted hardware of the hybrid failure model) and
// RSA signatures with 1024-bit keys (the paper's Table 8 configuration).
//
// In the TOLERANCE architecture the USIG lives in a node's privileged
// domain, which by assumption can only fail by crashing; a compromised
// application domain therefore cannot equivocate even though the replica is
// byzantine.
package usig

import (
	"crypto"
	"crypto/hmac"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Errors returned by USIG operations.
var (
	ErrBadCertificate = errors.New("usig: invalid certificate")
	ErrUnknownReplica = errors.New("usig: unknown replica")
)

// UI is a unique identifier: a certified (counter, message-digest) pair.
type UI struct {
	// ReplicaID identifies the USIG instance that created the identifier.
	ReplicaID string `json:"replicaId"`
	// Counter is the monotonically increasing sequence value.
	Counter uint64 `json:"counter"`
	// Cert is the certificate over (replicaID, counter, digest).
	Cert []byte `json:"cert"`
}

// USIG is a trusted monotonic counter bound to a certification key.
type USIG struct {
	mu      sync.Mutex
	id      string
	counter uint64
	hmacKey []byte
	rsaKey  *rsa.PrivateKey
}

// NewHMAC creates a USIG certifying with HMAC-SHA256 over a shared key.
func NewHMAC(id string, key []byte) (*USIG, error) {
	if id == "" {
		return nil, errors.New("usig: empty replica id")
	}
	if len(key) < 16 {
		return nil, errors.New("usig: key shorter than 16 bytes")
	}
	k := make([]byte, len(key))
	copy(k, key)
	return &USIG{id: id, hmacKey: k}, nil
}

// ResumeHMAC creates an HMAC USIG whose counter continues from a previous
// incarnation. In the hybrid failure model the USIG lives in the node's
// trusted domain, which survives application-domain resets: when the
// recovery controller restarts a replica process (√ in Fig 2), the new
// process must keep certifying from the old counter, because peers enforce
// FIFO processing per sender — a replica that came back with a fresh
// counter would have every message dropped as a replay. counter is the last
// value the previous incarnation assigned (USIG.Counter()).
func ResumeHMAC(id string, key []byte, counter uint64) (*USIG, error) {
	u, err := NewHMAC(id, key)
	if err != nil {
		return nil, err
	}
	u.counter = counter
	return u, nil
}

// NewRSA creates a USIG certifying with RSA signatures (Table 8: 1024-bit
// keys). bits < 1024 is rejected.
func NewRSA(id string, bits int) (*USIG, error) {
	if id == "" {
		return nil, errors.New("usig: empty replica id")
	}
	if bits < 1024 {
		return nil, fmt.Errorf("usig: rsa key size %d below 1024", bits)
	}
	key, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("usig: generate rsa key: %w", err)
	}
	return &USIG{id: id, rsaKey: key}, nil
}

// ID returns the owning replica's identifier.
func (u *USIG) ID() string { return u.id }

// Counter returns the last assigned counter value.
func (u *USIG) Counter() uint64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.counter
}

// PublicKey returns the RSA public key, or nil in HMAC mode.
func (u *USIG) PublicKey() *rsa.PublicKey {
	if u.rsaKey == nil {
		return nil
	}
	return &u.rsaKey.PublicKey
}

// CreateUI assigns the next counter value to the message and certifies it.
// Counter values are never reused and never skip: this is the property that
// prevents equivocation in MinBFT.
func (u *USIG) CreateUI(message []byte) (UI, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.counter++
	digest := sha256.Sum256(message)
	payload := certPayload(u.id, u.counter, digest[:])
	var cert []byte
	if u.rsaKey != nil {
		hashed := sha256.Sum256(payload)
		sig, err := rsa.SignPKCS1v15(rand.Reader, u.rsaKey, crypto.SHA256, hashed[:])
		if err != nil {
			u.counter-- // certification failed; do not burn the counter
			return UI{}, fmt.Errorf("usig: sign: %w", err)
		}
		cert = sig
	} else {
		mac := hmac.New(sha256.New, u.hmacKey)
		mac.Write(payload)
		cert = mac.Sum(nil)
	}
	return UI{ReplicaID: u.id, Counter: u.counter, Cert: cert}, nil
}

// certPayload canonically encodes (id, counter, digest).
func certPayload(id string, counter uint64, digest []byte) []byte {
	buf := make([]byte, 0, 2+len(id)+8+len(digest))
	var idLen [2]byte
	binary.BigEndian.PutUint16(idLen[:], uint16(len(id)))
	buf = append(buf, idLen[:]...)
	buf = append(buf, id...)
	var ctr [8]byte
	binary.BigEndian.PutUint64(ctr[:], counter)
	buf = append(buf, ctr[:]...)
	buf = append(buf, digest...)
	return buf
}

// Verifier checks UIs created by a set of USIGs. In HMAC mode all replicas
// share the key (the trusted components hold it; byzantine application
// domains never see it); in RSA mode the verifier holds public keys.
type Verifier struct {
	mu      sync.RWMutex
	hmacKey []byte
	rsaKeys map[string]*rsa.PublicKey
}

// NewHMACVerifier builds a verifier for HMAC-mode USIGs.
func NewHMACVerifier(key []byte) (*Verifier, error) {
	if len(key) < 16 {
		return nil, errors.New("usig: key shorter than 16 bytes")
	}
	k := make([]byte, len(key))
	copy(k, key)
	return &Verifier{hmacKey: k}, nil
}

// NewRSAVerifier builds a verifier over registered RSA public keys.
func NewRSAVerifier() *Verifier {
	return &Verifier{rsaKeys: make(map[string]*rsa.PublicKey)}
}

// Register adds (or replaces) a replica's RSA public key.
func (v *Verifier) Register(id string, key *rsa.PublicKey) error {
	if v.rsaKeys == nil {
		return errors.New("usig: verifier is in HMAC mode")
	}
	if key == nil {
		return errors.New("usig: nil public key")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.rsaKeys[id] = key
	return nil
}

// VerifyUI checks that the UI certifies the given message for its claimed
// replica and counter.
func (v *Verifier) VerifyUI(message []byte, ui UI) error {
	digest := sha256.Sum256(message)
	payload := certPayload(ui.ReplicaID, ui.Counter, digest[:])
	if v.rsaKeys != nil {
		v.mu.RLock()
		key, ok := v.rsaKeys[ui.ReplicaID]
		v.mu.RUnlock()
		if !ok {
			return fmt.Errorf("%w: %s", ErrUnknownReplica, ui.ReplicaID)
		}
		hashed := sha256.Sum256(payload)
		if err := rsa.VerifyPKCS1v15(key, crypto.SHA256, hashed[:], ui.Cert); err != nil {
			return fmt.Errorf("%w: rsa: %v", ErrBadCertificate, err)
		}
		return nil
	}
	mac := hmac.New(sha256.New, v.hmacKey)
	mac.Write(payload)
	if !hmac.Equal(mac.Sum(nil), ui.Cert) {
		return ErrBadCertificate
	}
	return nil
}
