package attacker

import (
	"math/rand"
	"testing"
)

func TestAllTenCampaignsDefined(t *testing.T) {
	if NumCampaigns() != 10 {
		t.Fatalf("NumCampaigns = %d, want 10 (Table 6)", NumCampaigns())
	}
	for id := 1; id <= 10; id++ {
		c, err := CampaignFor(id)
		if err != nil {
			t.Fatalf("campaign %d: %v", id, err)
		}
		if len(c.Steps) < 2 {
			t.Errorf("campaign %d has %d steps, want >= 2 (scan + exploit)", id, len(c.Steps))
		}
		// Every campaign starts with reconnaissance (Table 6).
		first := c.Steps[0].Name
		if first != "TCP SYN scan" && first != "ICMP scan" {
			t.Errorf("campaign %d starts with %q, want a scan", id, first)
		}
	}
	if _, err := CampaignFor(11); err == nil {
		t.Error("campaign 11 should not exist")
	}
	if _, err := CampaignFor(0); err == nil {
		t.Error("campaign 0 should not exist")
	}
}

func TestCampaignsWithWeakPasswordsBruteForce(t *testing.T) {
	// Replicas 9 and 10 chain SSH brute force before the CVE (Table 6).
	for _, id := range []int{9, 10} {
		c, _ := CampaignFor(id)
		if len(c.Steps) != 3 {
			t.Errorf("campaign %d has %d steps, want 3", id, len(c.Steps))
		}
		if c.Steps[1].Name != "SSH brute force" {
			t.Errorf("campaign %d step 2 = %q", id, c.Steps[1].Name)
		}
	}
}

func TestIntrusionLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	intr, err := Start(4)
	if err != nil {
		t.Fatal(err)
	}
	if intr.Done() {
		t.Fatal("fresh intrusion already done")
	}
	if s := intr.CurrentStep(); s == nil || s.Name != "ICMP scan" {
		t.Fatalf("current step = %+v", s)
	}
	totalBoost := 0
	steps := 0
	for !intr.Done() {
		totalBoost += intr.Advance(rng)
		steps++
		if steps > 10 {
			t.Fatal("campaign did not terminate")
		}
	}
	if steps != 2 {
		t.Errorf("campaign 4 took %d steps, want 2", steps)
	}
	if totalBoost <= 0 {
		t.Error("campaign produced no alert boost")
	}
	if intr.Behaviour < Participate || intr.Behaviour > SendRandom {
		t.Errorf("behaviour = %v not sampled", intr.Behaviour)
	}
	if intr.CurrentStep() != nil {
		t.Error("done intrusion still has a current step")
	}
	if intr.Advance(rng) != 0 {
		t.Error("advancing a done intrusion should be a no-op")
	}
	done, total := intr.Progress()
	if done != total {
		t.Errorf("progress = %d/%d", done, total)
	}
}

func TestStartUnknownReplica(t *testing.T) {
	if _, err := Start(42); err == nil {
		t.Error("unknown replica should fail")
	}
}

func TestSampleBehaviourCoversAllThree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seen := map[Behaviour]int{}
	for i := 0; i < 3000; i++ {
		seen[SampleBehaviour(rng)]++
	}
	for _, b := range []Behaviour{Participate, StaySilent, SendRandom} {
		frac := float64(seen[b]) / 3000
		if frac < 0.25 || frac > 0.42 {
			t.Errorf("behaviour %v frequency %v, want ~1/3", b, frac)
		}
	}
	if Participate.String() != "participate" || Behaviour(9).String() == "" {
		t.Error("behaviour strings wrong")
	}
}
