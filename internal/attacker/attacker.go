// Package attacker implements the intrusion campaigns of Table 6: each
// replica type is compromised through a fixed sequence of steps
// (reconnaissance scan, then brute force or CVE exploit), after which the
// attacker controls the replica and chooses between participating in
// consensus, staying silent, and sending random messages (§VIII-A).
package attacker

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrUnknownReplica is returned for replica types outside Table 4/6.
var ErrUnknownReplica = errors.New("attacker: unknown replica type")

// Step is one intrusion action with an IDS footprint.
type Step struct {
	// Name identifies the action (Table 6).
	Name string
	// AlertBoost is the extra priority-weighted alert mass this step
	// produces while in progress (added to the container's baseline).
	AlertBoost int
}

// Campaign is the ordered intrusion sequence against one replica type.
type Campaign struct {
	// ReplicaType is the Table 4 container ID (1..10).
	ReplicaType int
	// Steps is the attack sequence (Table 6).
	Steps []Step
}

// campaigns transcribes Table 6.
var campaigns = map[int]Campaign{
	1:  {1, []Step{{"TCP SYN scan", 6}, {"FTP brute force", 12}}},
	2:  {2, []Step{{"TCP SYN scan", 6}, {"SSH brute force", 12}}},
	3:  {3, []Step{{"TCP SYN scan", 6}, {"TELNET brute force", 12}}},
	4:  {4, []Step{{"ICMP scan", 4}, {"exploit of CVE-2017-7494", 9}}},
	5:  {5, []Step{{"ICMP scan", 4}, {"exploit of CVE-2014-6271", 9}}},
	6:  {6, []Step{{"ICMP scan", 4}, {"exploit of CWE-89 on DVWA", 8}}},
	7:  {7, []Step{{"ICMP scan", 4}, {"exploit of CVE-2015-3306", 9}}},
	8:  {8, []Step{{"ICMP scan", 4}, {"exploit of CVE-2016-10033", 9}}},
	9:  {9, []Step{{"ICMP scan", 4}, {"SSH brute force", 12}, {"exploit of CVE-2010-0426", 7}}},
	10: {10, []Step{{"ICMP scan", 4}, {"SSH brute force", 12}, {"exploit of CVE-2015-5602", 7}}},
}

// CampaignFor returns the Table 6 campaign for a replica type.
func CampaignFor(replicaType int) (Campaign, error) {
	c, ok := campaigns[replicaType]
	if !ok {
		return Campaign{}, fmt.Errorf("%w: %d", ErrUnknownReplica, replicaType)
	}
	return c, nil
}

// NumCampaigns is the number of intrusion types (the paper evaluates
// against 10).
func NumCampaigns() int { return len(campaigns) }

// Behaviour is the post-compromise strategy of §VIII-A.
type Behaviour int

// Post-compromise behaviours: a) participate in the consensus protocol,
// b) not participate, c) participate with randomly selected messages.
const (
	Participate Behaviour = iota + 1
	StaySilent
	SendRandom
)

// String names the behaviour.
func (b Behaviour) String() string {
	switch b {
	case Participate:
		return "participate"
	case StaySilent:
		return "silent"
	case SendRandom:
		return "random-messages"
	default:
		return fmt.Sprintf("Behaviour(%d)", int(b))
	}
}

// SampleBehaviour picks uniformly among the three behaviours (§VIII-A:
// "the attacker randomly chooses").
func SampleBehaviour(rng *rand.Rand) Behaviour {
	return Behaviour(1 + rng.Intn(3))
}

// Intrusion tracks one in-progress campaign against a node.
type Intrusion struct {
	campaign Campaign
	step     int
	// Behaviour is set once the campaign completes.
	Behaviour Behaviour
}

// Start begins a campaign against the given replica type.
func Start(replicaType int) (*Intrusion, error) {
	i := &Intrusion{}
	if err := i.Begin(replicaType); err != nil {
		return nil, err
	}
	return i, nil
}

// Begin (re)starts a campaign against the given replica type in place,
// reusing the receiver's storage. Emulation runners embed an Intrusion per
// node and recycle nodes across scenarios, so intrusion tracking never
// allocates on the simulation hot path.
func (i *Intrusion) Begin(replicaType int) error {
	c, err := CampaignFor(replicaType)
	if err != nil {
		return err
	}
	*i = Intrusion{campaign: c}
	return nil
}

// Done reports whether the replica is fully compromised.
func (i *Intrusion) Done() bool { return i.step >= len(i.campaign.Steps) }

// CurrentStep returns the in-progress step, or nil when done.
func (i *Intrusion) CurrentStep() *Step {
	if i.Done() {
		return nil
	}
	return &i.campaign.Steps[i.step]
}

// Advance progresses the campaign by one time step; when the final step
// completes the post-compromise behaviour is sampled. It returns the alert
// boost generated during this step.
func (i *Intrusion) Advance(rng *rand.Rand) int {
	if i.Done() {
		return 0
	}
	step := i.campaign.Steps[i.step]
	i.step++
	if i.Done() {
		i.Behaviour = SampleBehaviour(rng)
	}
	return step.AlertBoost
}

// Progress returns completed and total step counts.
func (i *Intrusion) Progress() (completed, total int) {
	return i.step, len(i.campaign.Steps)
}
