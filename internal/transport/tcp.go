package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// maxFrame bounds a single TCP frame (16 MiB) to contain misbehaving peers.
const maxFrame = 16 << 20

// Default deadlines for TCP endpoints. A hung peer (a replica wedged
// mid-restart, a SYN-blackholing firewall, a receiver that stopped reading
// so the socket buffers filled) must never stall a sender forever: Send is
// called from fleet workers and consensus event loops that own other work.
const (
	// DefaultDialTimeout bounds the lazy connect inside Send.
	DefaultDialTimeout = 5 * time.Second
	// DefaultWriteTimeout bounds one frame write (header + payload).
	DefaultWriteTimeout = 10 * time.Second
)

// TCPEndpoint is an Endpoint backed by real TCP connections with
// length-prefixed frames. Addresses are host:port strings; each endpoint
// listens on its own address and lazily dials peers.
//
// Sends to the same peer from multiple goroutines are serialized per
// connection, so concurrent senders (the fleet worker's heartbeat loop and
// its record batcher, for example) can share one endpoint without
// interleaving frames.
type TCPEndpoint struct {
	addr     string
	listener net.Listener
	ch       chan Message

	// DialTimeout bounds the lazy connect inside Send; WriteTimeout bounds
	// each frame write. Both default in ListenTCPAdvertise and may be
	// lowered before the endpoint is shared (they are read without locking
	// afterwards). Exceeding either fails the Send with a diagnostic that
	// wraps ErrTimeout and drops the cached connection, so the next Send
	// redials instead of queueing behind a wedged peer.
	DialTimeout  time.Duration
	WriteTimeout time.Duration

	mu      sync.Mutex
	conns   map[string]*lockedConn
	inbound []net.Conn
	closed  bool
	wg      sync.WaitGroup

	quarantined atomic.Int64
}

// lockedConn pairs an outbound connection with a write mutex so two
// goroutines sending to the same peer cannot interleave their frames on the
// wire.
type lockedConn struct {
	mu   sync.Mutex
	conn net.Conn
}

var _ Endpoint = (*TCPEndpoint)(nil)

// ListenTCP starts an endpoint on the given address ("127.0.0.1:0" picks a
// free port; use Addr to learn it).
func ListenTCP(addr string) (*TCPEndpoint, error) {
	return ListenTCPAdvertise(addr, "")
}

// ListenTCPAdvertise starts an endpoint bound to bind but identifying
// itself — in Addr and in the From field of every frame it sends — as
// advertise. Peers reply by dialing an endpoint's advertised address, so a
// process that binds a wildcard or NAT-internal address (a fleet worker on
// "0.0.0.0:7001", say) must advertise the address peers can actually
// reach. An empty advertise uses the bound address, which is correct for
// loopback and for binds to a concrete routable IP.
func ListenTCPAdvertise(bind, advertise string) (*TCPEndpoint, error) {
	l, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", bind, err)
	}
	addr := advertise
	if addr == "" {
		addr = l.Addr().String()
	}
	e := &TCPEndpoint{
		addr:         addr,
		listener:     l,
		ch:           make(chan Message, 4096),
		conns:        make(map[string]*lockedConn),
		DialTimeout:  DefaultDialTimeout,
		WriteTimeout: DefaultWriteTimeout,
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr implements Endpoint.
func (e *TCPEndpoint) Addr() string { return e.addr }

// Receive implements Endpoint.
func (e *TCPEndpoint) Receive() <-chan Message { return e.ch }

// Send implements Endpoint.
func (e *TCPEndpoint) Send(to string, payload []byte) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	lc, ok := e.conns[to]
	e.mu.Unlock()
	if !ok {
		dialer := net.Dialer{Timeout: e.DialTimeout}
		conn, err := dialer.Dial("tcp", to)
		if err != nil {
			if isTimeout(err) {
				return fmt.Errorf("transport: dial %s after %v: %w", to, e.DialTimeout, ErrTimeout)
			}
			return fmt.Errorf("transport: dial %s: %w", to, err)
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			_ = conn.Close()
			return ErrClosed
		}
		if existing, dup := e.conns[to]; dup {
			e.mu.Unlock()
			_ = conn.Close()
			lc = existing
		} else {
			lc = &lockedConn{conn: conn}
			e.conns[to] = lc
			e.mu.Unlock()
		}
	}
	lc.mu.Lock()
	// The write deadline covers one whole frame: a receiver that accepted
	// the connection but stopped draining it (a stuck replica) fills the
	// socket buffers, the blocked write trips the deadline, and the failed
	// connection is dropped below so the next Send redials.
	if e.WriteTimeout > 0 {
		_ = lc.conn.SetWriteDeadline(time.Now().Add(e.WriteTimeout))
	}
	err := writeFrame(lc.conn, e.addr, payload)
	if e.WriteTimeout > 0 {
		_ = lc.conn.SetWriteDeadline(time.Time{})
	}
	lc.mu.Unlock()
	if err != nil {
		e.mu.Lock()
		if cur, ok := e.conns[to]; ok && cur == lc {
			delete(e.conns, to)
		}
		e.mu.Unlock()
		_ = lc.conn.Close()
		if isTimeout(err) {
			return fmt.Errorf("transport: send to %s stalled for %v (%d bytes pending): %w",
				to, e.WriteTimeout, len(payload), ErrTimeout)
		}
		return fmt.Errorf("transport: send to %s: %w", to, err)
	}
	return nil
}

// isTimeout reports whether err is a network deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Close implements Endpoint.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.conns
	e.conns = map[string]*lockedConn{}
	inbound := e.inbound
	e.inbound = nil
	e.mu.Unlock()

	_ = e.listener.Close()
	for _, c := range conns {
		_ = c.conn.Close()
	}
	// Closing inbound connections unblocks their reader goroutines, which
	// Close waits for below.
	for _, c := range inbound {
		_ = c.Close()
	}
	e.wg.Wait()
	close(e.ch)
	return nil
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			_ = conn.Close()
			return
		}
		e.inbound = append(e.inbound, conn)
		e.wg.Add(1)
		e.mu.Unlock()
		go e.readLoop(conn)
	}
}

// QuarantinedFrames reports how many oversized frames this endpoint has
// discarded without tearing down their connections (see readLoop).
func (e *TCPEndpoint) QuarantinedFrames() int64 { return e.quarantined.Load() }

func (e *TCPEndpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer conn.Close()
	for {
		from, payload, err := readFrame(conn)
		if errors.Is(err, errOversized) {
			// Quarantine, don't amputate: the oversized payload was already
			// drained off the wire (readFrame keeps the stream framed), so
			// the connection is still good. Killing it would let one
			// malformed frame — a bug or a hostile peer — sever a link that
			// heartbeats, acks and leases share, turning a bad message into
			// a lease expiry storm. The frame itself is dropped; the decode
			// layer above never sees it.
			e.quarantined.Add(1)
			continue
		}
		if err != nil {
			return
		}
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return
		}
		select {
		case e.ch <- Message{From: from, To: e.addr, Payload: payload}:
		default:
			// Drop on overflow, like the simulated network.
		}
	}
}

// writeFrame writes [fromLen u16][from][payloadLen u32][payload].
func writeFrame(w io.Writer, from string, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("transport: frame too large (%d bytes)", len(payload))
	}
	header := make([]byte, 2+len(from)+4)
	binary.BigEndian.PutUint16(header[:2], uint16(len(from)))
	copy(header[2:], from)
	binary.BigEndian.PutUint32(header[2+len(from):], uint32(len(payload)))
	if _, err := w.Write(header); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// errOversized marks a frame whose declared payload exceeds maxFrame. The
// payload bytes have been consumed from the stream by the time readFrame
// returns it, so the caller may keep reading subsequent frames.
var errOversized = errors.New("transport: oversized frame")

// readFrame reads one frame written by writeFrame.
func readFrame(r io.Reader) (from string, payload []byte, err error) {
	var lenBuf [2]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return "", nil, err
	}
	fromLen := binary.BigEndian.Uint16(lenBuf[:])
	fromBuf := make([]byte, fromLen)
	if _, err = io.ReadFull(r, fromBuf); err != nil {
		return "", nil, err
	}
	var sizeBuf [4]byte
	if _, err = io.ReadFull(r, sizeBuf[:]); err != nil {
		return "", nil, err
	}
	size := binary.BigEndian.Uint32(sizeBuf[:])
	if size > maxFrame {
		// Drain the declared payload so the stream stays framed, then hand
		// the caller a typed error: the frame is garbage, the connection is
		// not. (The sender side enforces maxFrame too, so an oversized
		// declaration is corruption or malice — either way, quarantine.)
		if _, derr := io.CopyN(io.Discard, r, int64(size)); derr != nil {
			return "", nil, derr
		}
		return "", nil, fmt.Errorf("%w (%d bytes)", errOversized, size)
	}
	payload = make([]byte, size)
	if _, err = io.ReadFull(r, payload); err != nil {
		return "", nil, err
	}
	return string(fromBuf), payload, nil
}
