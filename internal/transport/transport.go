// Package transport provides the message-passing layer of the TOLERANCE
// testbed: an in-process simulated network with netem-style impairments
// (latency, jitter, loss, partitions — §VIII-A of the paper emulates 0.05%
// packet loss with NETEM) and a TCP transport for cross-process deployments.
//
// All consensus protocols in this repository (MinBFT, Raft) speak through
// the Endpoint interface, so tests can inject faults deterministically.
// The fleet's distributed coordinator (internal/fleet/proto) rides the
// same TCP endpoint for its lease protocol; docs/ARCHITECTURE.md places
// both uses in the overall design.
package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Errors returned by transports.
var (
	ErrClosed         = errors.New("transport: endpoint closed")
	ErrUnknownAddress = errors.New("transport: unknown address")
	// ErrTimeout marks a dial or write that exceeded its deadline. Callers
	// match it with errors.Is; the wrapped message names the peer and the
	// deadline so a stalled-replica diagnosis does not need packet captures.
	ErrTimeout = errors.New("transport: i/o timeout")
)

// Message is a payload delivered between endpoints.
type Message struct {
	// From is the sender's address.
	From string
	// To is the recipient's address.
	To string
	// Payload is the opaque message body.
	Payload []byte
}

// Endpoint is one attachment point to a network.
type Endpoint interface {
	// Addr returns this endpoint's address.
	Addr() string
	// Send delivers a payload to another endpoint, subject to the
	// network's impairments. Send never blocks on the recipient.
	Send(to string, payload []byte) error
	// Receive returns the channel of inbound messages. The channel is
	// closed when the endpoint closes.
	Receive() <-chan Message
	// Close detaches the endpoint.
	Close() error
}

// Conditions models netem-style link impairments.
type Conditions struct {
	// Delay is the base one-way latency.
	Delay time.Duration
	// Jitter is the maximum additional random latency.
	Jitter time.Duration
	// Loss is the probability in [0, 1] that a message is dropped.
	Loss float64
}

// SimNetwork is an in-process network connecting named endpoints.
type SimNetwork struct {
	mu         sync.Mutex
	rng        *rand.Rand
	conditions Conditions
	endpoints  map[string]*simEndpoint
	partition  map[string]map[string]bool // blocked sender -> receiver
	closed     bool
	wg         sync.WaitGroup
}

// NewSimNetwork creates a network with the given impairments; seed drives
// loss and jitter sampling.
func NewSimNetwork(cond Conditions, seed int64) (*SimNetwork, error) {
	if cond.Loss < 0 || cond.Loss > 1 {
		return nil, fmt.Errorf("transport: loss = %v out of [0,1]", cond.Loss)
	}
	return &SimNetwork{
		rng:        rand.New(rand.NewSource(seed)),
		conditions: cond,
		endpoints:  make(map[string]*simEndpoint),
		partition:  make(map[string]map[string]bool),
	}, nil
}

// Endpoint attaches (or returns the existing) endpoint for the address.
func (n *SimNetwork) Endpoint(addr string) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if ep, ok := n.endpoints[addr]; ok && !ep.closed {
		return ep, nil
	}
	ep := &simEndpoint{
		net:  n,
		addr: addr,
		ch:   make(chan Message, 4096),
	}
	n.endpoints[addr] = ep
	return ep, nil
}

// Partition blocks all traffic between the two groups (both directions).
func (n *SimNetwork) Partition(groupA, groupB []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, a := range groupA {
		for _, b := range groupB {
			n.block(a, b)
			n.block(b, a)
		}
	}
}

// Heal removes all partitions.
func (n *SimNetwork) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[string]map[string]bool)
}

// Isolate cuts an endpoint off from everyone else.
func (n *SimNetwork) Isolate(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for other := range n.endpoints {
		if other == addr {
			continue
		}
		n.block(addr, other)
		n.block(other, addr)
	}
}

func (n *SimNetwork) block(from, to string) {
	if n.partition[from] == nil {
		n.partition[from] = make(map[string]bool)
	}
	n.partition[from][to] = true
}

// SetConditions replaces the network impairments.
func (n *SimNetwork) SetConditions(cond Conditions) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.conditions = cond
}

// Close shuts the network down and waits for in-flight deliveries.
func (n *SimNetwork) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	eps := make([]*simEndpoint, 0, len(n.endpoints))
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		_ = ep.Close()
	}
	n.wg.Wait()
}

// send routes a message through the network applying impairments.
func (n *SimNetwork) send(msg Message) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if n.partition[msg.From] != nil && n.partition[msg.From][msg.To] {
		n.mu.Unlock()
		return nil // silently dropped, like a real partition
	}
	dst, ok := n.endpoints[msg.To]
	if !ok || dst.closed {
		n.mu.Unlock()
		return nil // unknown or closed receivers drop traffic
	}
	cond := n.conditions
	drop := cond.Loss > 0 && n.rng.Float64() < cond.Loss
	var delay time.Duration
	if cond.Delay > 0 || cond.Jitter > 0 {
		delay = cond.Delay
		if cond.Jitter > 0 {
			delay += time.Duration(n.rng.Int63n(int64(cond.Jitter) + 1))
		}
	}
	if !drop {
		n.wg.Add(1)
	}
	n.mu.Unlock()

	if drop {
		return nil
	}
	deliver := func() {
		defer n.wg.Done()
		dst.deliver(msg)
	}
	if delay > 0 {
		time.AfterFunc(delay, deliver)
	} else {
		deliver()
	}
	return nil
}

type simEndpoint struct {
	net    *SimNetwork
	addr   string
	ch     chan Message
	mu     sync.Mutex
	closed bool
}

var _ Endpoint = (*simEndpoint)(nil)

func (e *simEndpoint) Addr() string { return e.addr }

func (e *simEndpoint) Send(to string, payload []byte) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.mu.Unlock()
	cp := make([]byte, len(payload))
	copy(cp, payload)
	return e.net.send(Message{From: e.addr, To: to, Payload: cp})
}

func (e *simEndpoint) Receive() <-chan Message { return e.ch }

func (e *simEndpoint) deliver(msg Message) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	select {
	case e.ch <- msg:
	default:
		// Receiver queue overflow behaves like packet loss.
	}
}

func (e *simEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	close(e.ch)
	return nil
}
