package transport

import (
	"fmt"
	"testing"
	"time"
)

func TestSimNetworkBasicDelivery(t *testing.T) {
	n, err := NewSimNetwork(Conditions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	a, err := n.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-b.Receive():
		if msg.From != "a" || msg.To != "b" || string(msg.Payload) != "hello" {
			t.Errorf("got %+v", msg)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
}

func TestSimNetworkPayloadIsolation(t *testing.T) {
	n, _ := NewSimNetwork(Conditions{}, 1)
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	buf := []byte("original")
	if err := a.Send("b", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // mutate after send; receiver must see the original
	msg := <-b.Receive()
	if string(msg.Payload) != "original" {
		t.Errorf("payload aliased sender buffer: %q", msg.Payload)
	}
}

func TestSimNetworkLoss(t *testing.T) {
	n, err := NewSimNetwork(Conditions{Loss: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	for i := 0; i < 50; i++ {
		if err := a.Send("b", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-b.Receive():
		t.Fatal("message delivered despite 100% loss")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestSimNetworkLossRate(t *testing.T) {
	n, _ := NewSimNetwork(Conditions{Loss: 0.5}, 3)
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	const total = 2000
	for i := 0; i < total; i++ {
		_ = a.Send("b", []byte("x"))
	}
	// Drain with a deadline.
	received := 0
	deadline := time.After(time.Second)
drain:
	for {
		select {
		case <-b.Receive():
			received++
		case <-deadline:
			break drain
		default:
			if received > 0 {
				break drain
			}
		}
	}
	frac := float64(received) / total
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("received fraction %v, want ~0.5", frac)
	}
}

func TestSimNetworkPartitionAndHeal(t *testing.T) {
	n, _ := NewSimNetwork(Conditions{}, 4)
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	n.Partition([]string{"a"}, []string{"b"})
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Receive():
		t.Fatal("delivered across partition")
	case <-time.After(30 * time.Millisecond):
	}
	n.Heal()
	if err := a.Send("b", []byte("y")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-b.Receive():
		if string(msg.Payload) != "y" {
			t.Errorf("got %q", msg.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("not delivered after heal")
	}
}

func TestSimNetworkIsolate(t *testing.T) {
	n, _ := NewSimNetwork(Conditions{}, 5)
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	c, _ := n.Endpoint("c")
	n.Isolate("b")
	_ = a.Send("b", []byte("x"))
	_ = a.Send("c", []byte("y"))
	select {
	case msg := <-c.Receive():
		if string(msg.Payload) != "y" {
			t.Errorf("got %q", msg.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("c should still receive")
	}
	select {
	case <-b.Receive():
		t.Fatal("isolated endpoint received")
	case <-time.After(30 * time.Millisecond):
	}
}

func TestSimNetworkDelay(t *testing.T) {
	n, _ := NewSimNetwork(Conditions{Delay: 50 * time.Millisecond}, 6)
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	start := time.Now()
	_ = a.Send("b", []byte("x"))
	<-b.Receive()
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("delivered after %v, want >= ~50ms", elapsed)
	}
}

func TestSimNetworkClosedEndpoint(t *testing.T) {
	n, _ := NewSimNetwork(Conditions{}, 7)
	defer n.Close()
	a, _ := n.Endpoint("a")
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("x")); err != ErrClosed {
		t.Errorf("Send on closed endpoint = %v, want ErrClosed", err)
	}
	// Receive channel must be closed.
	if _, ok := <-a.Receive(); ok {
		t.Error("receive channel should be closed")
	}
	// Sending to a closed endpoint silently drops.
	b, _ := n.Endpoint("b")
	_ = b
}

func TestSimNetworkValidation(t *testing.T) {
	if _, err := NewSimNetwork(Conditions{Loss: 1.5}, 1); err == nil {
		t.Error("loss > 1 should fail")
	}
}

func TestTCPEndpointRoundTrip(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Send(b.Addr(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-b.Receive():
		if string(msg.Payload) != "ping" || msg.From != a.Addr() {
			t.Errorf("got %+v", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("tcp message not delivered")
	}

	// Reply over the reverse direction (fresh dial).
	if err := b.Send(a.Addr(), []byte("pong")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-a.Receive():
		if string(msg.Payload) != "pong" {
			t.Errorf("got %q", msg.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("tcp reply not delivered")
	}
}

func TestTCPEndpointManyMessages(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	const count = 200
	for i := 0; i < count; i++ {
		if err := a.Send(b.Addr(), []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	received := 0
	deadline := time.After(3 * time.Second)
	for received < count {
		select {
		case <-b.Receive():
			received++
		case <-deadline:
			t.Fatalf("received %d of %d", received, count)
		}
	}
}

func TestTCPEndpointSendAfterClose(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("127.0.0.1:1", []byte("x")); err != ErrClosed {
		t.Errorf("Send after close = %v, want ErrClosed", err)
	}
	// Double close is fine.
	if err := a.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestTCPSendToDeadAddressFails(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Grab a port and close it so the dial fails.
	tmp, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := tmp.Addr()
	_ = tmp.Close()
	if err := a.Send(dead, []byte("x")); err == nil {
		t.Error("send to dead address should fail")
	}
}
