package transport

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

// TestSendWriteTimeoutOnStuckReceiver models the stuck-replica failure the
// deadlines exist for: the peer accepts the connection but never reads, so
// the sender's frames pile up in the socket buffers until a write blocks.
// The write deadline must fail the Send with ErrTimeout (naming the peer in
// the diagnostic) instead of stalling the caller forever.
func TestSendWriteTimeoutOnStuckReceiver(t *testing.T) {
	// A raw listener that accepts and then ignores the connection — not a
	// TCPEndpoint, whose readLoop would drain the frames.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan net.Conn, 4)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			accepted <- c // held open, never read
		}
	}()
	defer func() {
		close(accepted)
		for c := range accepted {
			c.Close()
		}
	}()

	ep, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	ep.WriteTimeout = 200 * time.Millisecond

	// 1 MiB frames overwhelm the kernel buffers within a few sends.
	payload := make([]byte, 1<<20)
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if err := ep.Send(l.Addr().String(), payload); err != nil {
			if !errors.Is(err, ErrTimeout) {
				t.Fatalf("stalled send error = %v, want ErrTimeout", err)
			}
			if !strings.Contains(err.Error(), l.Addr().String()) {
				t.Errorf("diagnostic %q does not name the peer", err)
			}
			return
		}
	}
	t.Fatal("sends to a never-reading peer kept succeeding for 30s")
}

// TestSendRecoversAfterWriteTimeout: a timed-out connection is dropped from
// the cache, so once the peer behaves again the next Send redials and
// succeeds — the sender needs no external reset.
func TestSendRecoversAfterWriteTimeout(t *testing.T) {
	stuck, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conns := make(chan net.Conn, 16)
	go func() {
		for {
			c, err := stuck.Accept()
			if err != nil {
				return
			}
			conns <- c
		}
	}()
	defer func() {
		stuck.Close()
		close(conns)
		for c := range conns {
			c.Close()
		}
	}()

	ep, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	ep.WriteTimeout = 200 * time.Millisecond

	payload := make([]byte, 1<<20)
	var sawTimeout bool
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if err := ep.Send(stuck.Addr().String(), payload); err != nil {
			sawTimeout = errors.Is(err, ErrTimeout)
			break
		}
	}
	if !sawTimeout {
		t.Fatal("never hit the write timeout")
	}

	// A healthy endpoint receives the redialed frame.
	healthy, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	if err := ep.Send(healthy.Addr(), []byte("after-timeout")); err != nil {
		t.Fatalf("send after timeout: %v", err)
	}
	select {
	case msg := <-healthy.Receive():
		if string(msg.Payload) != "after-timeout" {
			t.Fatalf("payload = %q", msg.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no frame after the timed-out connection was dropped")
	}
}

// TestSendDialTimeoutBounded: dialing a peer that cannot complete the
// handshake returns within the configured bound instead of hanging — the
// exact error depends on the host network stack (refused, unreachable, or
// our ErrTimeout), but a hung fleet worker is never an option.
func TestSendDialTimeoutBounded(t *testing.T) {
	ep, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	ep.DialTimeout = 250 * time.Millisecond

	// TEST-NET-1 (192.0.2.0/24) is reserved and never routable; hosts that
	// silently drop the SYN exercise the timeout path, hosts that reject
	// exercise the error path. Both must return promptly. (Environments
	// with a transparent proxy may complete the handshake — then there is
	// nothing to assert beyond the bound.)
	start := time.Now()
	err = ep.Send("192.0.2.1:9", []byte("x"))
	elapsed := time.Since(start)
	if elapsed > ep.DialTimeout+2*time.Second {
		t.Fatalf("dial took %v, bound was %v (err=%v)", elapsed, ep.DialTimeout, err)
	}
	if err == nil {
		t.Skip("environment accepted the TEST-NET-1 dial (transparent proxy)")
	}
}
