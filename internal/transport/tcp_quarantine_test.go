package transport

import (
	"encoding/binary"
	"net"
	"testing"
	"time"
)

// TestOversizedFrameIsQuarantinedNotFatal sends an oversized frame down a
// raw connection and checks that (a) it never surfaces on Receive, (b) the
// quarantine counter ticks, and (c) a well-formed frame on the SAME
// connection still gets through — the whole point of quarantining instead
// of closing: one malformed frame must not sever a link that heartbeats
// and acks share.
func TestOversizedFrameIsQuarantinedNotFatal(t *testing.T) {
	ep, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	conn, err := net.Dial("tcp", ep.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Hand-build a frame declaring a payload just over the cap. The body
	// must actually be on the wire for the reader to drain past it.
	const over = maxFrame + 1
	from := "attacker"
	header := make([]byte, 2+len(from)+4)
	binary.BigEndian.PutUint16(header[:2], uint16(len(from)))
	copy(header[2:], from)
	binary.BigEndian.PutUint32(header[2+len(from):], uint32(over))
	if _, err := conn.Write(header); err != nil {
		t.Fatal(err)
	}
	junk := make([]byte, 1<<20)
	for written := 0; written < over; {
		n := len(junk)
		if over-written < n {
			n = over - written
		}
		if _, err := conn.Write(junk[:n]); err != nil {
			t.Fatal(err)
		}
		written += n
	}

	// A legitimate frame behind the oversized one must still be delivered.
	if err := writeFrame(conn, "peer", []byte("still alive")); err != nil {
		t.Fatal(err)
	}

	select {
	case msg := <-ep.Receive():
		if string(msg.Payload) != "still alive" || msg.From != "peer" {
			t.Fatalf("unexpected message %q from %q", msg.Payload, msg.From)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("frame after the oversized one never arrived — connection was torn down")
	}
	if got := ep.QuarantinedFrames(); got != 1 {
		t.Fatalf("QuarantinedFrames = %d, want 1", got)
	}
}
