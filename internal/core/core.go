// Package core implements the TOLERANCE control architecture (§IV, Fig 1-2):
// local node controllers that estimate the compromise belief from IDS alerts
// and decide when to recover (Problem 1), and a global system controller
// that collects belief states, evicts crashed nodes, and manages the
// replication factor (Problem 2). The two levels communicate exactly as in
// Fig 1: node controllers transmit beliefs upward; the system controller
// issues evict/add commands downward.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"tolerance/internal/cmdp"
	"tolerance/internal/ids"
	"tolerance/internal/nodemodel"
	"tolerance/internal/recovery"
)

// Errors returned by the controllers.
var (
	ErrBadController = errors.New("core: bad controller config")
)

// NodeController is the local controller of one node (Fig 2): it maintains
// the belief state b_{i,t} (eq. 4) from IDS observations and applies a
// threshold recovery strategy with the BTR constraint (eq. 6b).
type NodeController struct {
	params   nodemodel.Params
	fit      *ids.FittedZ
	strategy recovery.Strategy
	deltaR   int
	phase    int

	belief     float64
	lastAction nodemodel.Action
	step       int
}

// NodeControllerConfig configures a node controller.
type NodeControllerConfig struct {
	// Params is the node model (attack/crash/update probabilities, eta).
	Params nodemodel.Params
	// Fit is the estimated observation model Ẑ; nil uses the true model
	// from Params.
	Fit *ids.FittedZ
	// Strategy decides recovery from (belief, window position).
	Strategy recovery.Strategy
	// DeltaR is the BTR bound (recovery.InfiniteDeltaR disables it).
	DeltaR int
	// Phase staggers this node's forced recoveries within the calendar.
	Phase int
}

// NewNodeController validates the configuration and initializes the belief
// to the prior p_A (eq. 6a).
func NewNodeController(cfg NodeControllerConfig) (*NodeController, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Strategy == nil {
		return nil, fmt.Errorf("%w: nil strategy", ErrBadController)
	}
	if cfg.DeltaR < 0 {
		return nil, fmt.Errorf("%w: deltaR = %d", ErrBadController, cfg.DeltaR)
	}
	fit := cfg.Fit
	if fit == nil {
		fit = &ids.FittedZ{
			Healthy:     cfg.Params.ZHealthy,
			Compromised: cfg.Params.ZCompromised,
		}
	}
	return &NodeController{
		params:   cfg.Params,
		fit:      fit,
		strategy: cfg.Strategy,
		deltaR:   cfg.DeltaR,
		phase:    cfg.Phase,
		belief:   cfg.Params.PA,
	}, nil
}

// Belief returns the current compromise belief b_{i,t}.
func (nc *NodeController) Belief() float64 { return nc.belief }

// Step consumes one observation (the priority-weighted alert count of the
// last interval) and returns the controller's action. Forced calendar
// recoveries (eq. 6b) override the strategy.
func (nc *NodeController) Step(obs int) nodemodel.Action {
	nc.step++
	nc.belief = nc.updateBelief(nc.belief, nc.lastAction, obs)

	windowPos := nc.step + nc.phase
	forced := false
	if nc.deltaR != recovery.InfiniteDeltaR {
		windowPos = (nc.step + nc.phase) % nc.deltaR
		forced = windowPos == 0
	}
	var action nodemodel.Action
	if forced {
		action = nodemodel.Recover
	} else {
		action = nc.strategy.Action(nc.belief, windowPos)
	}
	nc.lastAction = action
	if action == nodemodel.Recover {
		nc.belief = nc.params.PA // post-recovery prior (eq. 2f, 2h, 2i)
	}
	return action
}

// NotifyRecovered resets the controller after an externally triggered
// recovery (e.g. the emulation replaced the container).
func (nc *NodeController) NotifyRecovered() {
	nc.belief = nc.params.PA
	nc.lastAction = nodemodel.Recover
}

// updateBelief is the Appendix A recursion with the fitted model.
func (nc *NodeController) updateBelief(b float64, a nodemodel.Action, obs int) float64 {
	pred := nc.params.PredictBelief(b, a)
	zc := nc.fit.Compromised.Prob(obs)
	zh := nc.fit.Healthy.Prob(obs)
	num := zc * pred
	den := num + zh*(1-pred)
	if den <= 0 {
		return b
	}
	return math.Min(1, math.Max(0, num/den))
}

// SystemAction is the system controller's decision for one step (Fig 1).
type SystemAction struct {
	// Evict lists node IDs that failed to report and must be evicted.
	Evict []string
	// Add reports whether a new node should be started (a_t = 1, eq. 8).
	Add bool
	// HealthyEstimate is s_t = floor(sum_i (1 - b_i)).
	HealthyEstimate int
}

// SystemController is the global controller (Fig 1): it receives belief
// states, treats missing reports as crashes, and samples the replication
// strategy computed by Algorithm 2.
type SystemController struct {
	policy *cmdp.Solution
	smax   int
	rng    *rand.Rand
}

// NewSystemController builds the controller from the Problem 2 solution.
func NewSystemController(policy *cmdp.Solution, smax int, seed int64) (*SystemController, error) {
	if policy == nil {
		return nil, fmt.Errorf("%w: nil replication policy", ErrBadController)
	}
	if smax < 1 {
		return nil, fmt.Errorf("%w: smax = %d", ErrBadController, smax)
	}
	return &SystemController{
		policy: policy,
		smax:   smax,
		rng:    rand.New(rand.NewSource(seed)),
	}, nil
}

// Decide consumes the per-node belief reports (nil entry value = node
// failed to report and is considered crashed, §V-B) and returns the global
// action. Reports are processed in sorted ID order, so the eviction list —
// and the floating-point belief sum behind the healthy estimate — never
// depend on map iteration order: the decision is a pure function of the
// reports and the controller's rng state.
func (sc *SystemController) Decide(reports map[string]*float64) SystemAction {
	keys := make([]string, 0, len(reports))
	for id := range reports {
		keys = append(keys, id)
	}
	sort.Strings(keys)
	var action SystemAction
	healthy := 0.0
	alive := 0
	for _, id := range keys {
		b := reports[id]
		if b == nil {
			action.Evict = append(action.Evict, id)
			continue
		}
		alive++
		healthy += 1 - *b
	}
	est := int(math.Floor(healthy))
	if est > sc.smax {
		est = sc.smax
	}
	if est < 0 {
		est = 0
	}
	action.HealthyEstimate = est
	if alive < sc.smax {
		action.Add = sc.policy.Sample(sc.rng, est) == 1
	}
	return action
}
