package core

import (
	"math/rand"
	"testing"
	"time"

	"tolerance/internal/cmdp"
	"tolerance/internal/nodemodel"
	"tolerance/internal/recovery"
	"tolerance/internal/replica"
)

func testStrategy() *recovery.ThresholdStrategy {
	return &recovery.ThresholdStrategy{Thresholds: []float64{0.3}, DeltaR: recovery.InfiniteDeltaR}
}

func TestNodeControllerValidation(t *testing.T) {
	if _, err := NewNodeController(NodeControllerConfig{}); err == nil {
		t.Error("empty config should fail")
	}
	p := nodemodel.DefaultParams()
	if _, err := NewNodeController(NodeControllerConfig{Params: p}); err == nil {
		t.Error("nil strategy should fail")
	}
	if _, err := NewNodeController(NodeControllerConfig{Params: p, Strategy: testStrategy(), DeltaR: -1}); err == nil {
		t.Error("negative deltaR should fail")
	}
}

func TestNodeControllerDetectsIntrusion(t *testing.T) {
	p := nodemodel.DefaultParams()
	nc, err := NewNodeController(NodeControllerConfig{
		Params: p, Strategy: testStrategy(), DeltaR: recovery.InfiniteDeltaR,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// Feed healthy observations: the controller should keep waiting.
	recoveries := 0
	for i := 0; i < 30; i++ {
		if nc.Step(p.ZHealthy.Sample(rng)) == nodemodel.Recover {
			recoveries++
		}
	}
	if recoveries > 3 {
		t.Errorf("%d spurious recoveries on healthy traffic", recoveries)
	}
	// Now a sustained intrusion: recovery within a handful of steps.
	detected := -1
	for i := 0; i < 20; i++ {
		if nc.Step(p.ZCompromised.Sample(rng)) == nodemodel.Recover {
			detected = i
			break
		}
	}
	if detected < 0 {
		t.Fatal("intrusion never detected")
	}
	if detected > 15 {
		t.Errorf("detection took %d steps", detected)
	}
	// Post-recovery belief resets to the prior.
	if nc.Belief() != p.PA {
		t.Errorf("post-recovery belief = %v, want %v", nc.Belief(), p.PA)
	}
}

func TestNodeControllerForcedCalendarRecovery(t *testing.T) {
	p := nodemodel.DefaultParams()
	nc, err := NewNodeController(NodeControllerConfig{
		Params: p, Strategy: recovery.NeverRecover{}, DeltaR: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	recoveries := 0
	for i := 0; i < 25; i++ {
		if nc.Step(p.ZHealthy.Sample(rng)) == nodemodel.Recover {
			recoveries++
		}
	}
	if recoveries != 5 {
		t.Errorf("forced recoveries = %d in 25 steps with deltaR=5, want 5", recoveries)
	}
}

func TestSystemControllerDecide(t *testing.T) {
	model, err := cmdp.NewBinomialModel(13, 1, 0.95, 0.95, 0)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := cmdp.Solve(model)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewSystemController(sol, 13, 1)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := 0.05, 0.9
	var missing *float64
	action := sc.Decide(map[string]*float64{
		"n0": &b1, "n1": &b2, "n2": missing,
	})
	if len(action.Evict) != 1 || action.Evict[0] != "n2" {
		t.Errorf("evict = %v, want [n2]", action.Evict)
	}
	// floor((1-0.05) + (1-0.9)) = floor(1.05) = 1.
	if action.HealthyEstimate != 1 {
		t.Errorf("healthy estimate = %d, want 1", action.HealthyEstimate)
	}
	// In state 1 (<= f) the strategy must grow.
	if !action.Add {
		t.Error("controller should add at s=1 with f=1")
	}
}

func TestSystemControllerValidation(t *testing.T) {
	if _, err := NewSystemController(nil, 13, 1); err == nil {
		t.Error("nil policy should fail")
	}
	model, _ := cmdp.NewBinomialModel(5, 1, 0.9, 0.9, 0)
	sol, _ := cmdp.Solve(model)
	if _, err := NewSystemController(sol, 0, 1); err == nil {
		t.Error("smax = 0 should fail")
	}
}

// TestLiveClusterEndToEnd runs the full stack: MinBFT + attacker + node
// controllers + system controller, with a client checking service
// continuity — the §VII proof-of-concept in miniature.
func TestLiveClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	params := nodemodel.DefaultParams()
	params.PA = 0.2 // aggressive attacker to exercise recovery quickly

	model, err := cmdp.NewBinomialModel(7, 1, 0.9, 0.95, 0)
	if err != nil {
		t.Fatal(err)
	}
	repSol, err := cmdp.Solve(model)
	if err != nil {
		t.Fatal(err)
	}
	sysCtrl, err := NewSystemController(repSol, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := NewLiveCluster(LiveConfig{
		N1:          4,
		K:           1,
		SMax:        7,
		Params:      params,
		Recovery:    &recovery.ThresholdStrategy{Thresholds: []float64{0.5}, DeltaR: recovery.InfiniteDeltaR},
		Replication: sysCtrl,
		DeltaR:      recovery.InfiniteDeltaR,
		Seed:        3,
		Loss:        0.0005, // the paper's 0.05% loss
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()

	cl, err := lc.Client("alice")
	if err != nil {
		t.Fatal(err)
	}
	// Drive the cluster: alternate control steps and service requests.
	for step := 0; step < 25; step++ {
		if _, err := lc.Step(); err != nil {
			t.Fatalf("control step %d: %v", step, err)
		}
		if step%5 == 4 {
			cl.UpdateMembership(lc.Members(), (len(lc.Members())-1-1)/2)
			if _, err := cl.Submit(replica.Op{
				Type: replica.OpWrite, Key: "k", Value: "v",
			}); err != nil {
				t.Fatalf("service request at step %d: %v", step, err)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if lc.Stats.Intrusions == 0 {
		t.Error("no intrusions occurred with pA = 0.2 over 25 steps")
	}
	if lc.Stats.Recoveries == 0 {
		t.Error("controllers never recovered a node")
	}
	t.Logf("live cluster stats: %+v, members %v", lc.Stats, lc.Members())
}

func TestLiveClusterValidation(t *testing.T) {
	if _, err := NewLiveCluster(LiveConfig{N1: 1}); err == nil {
		t.Error("N1 = 1 should fail")
	}
	if _, err := NewLiveCluster(LiveConfig{N1: 3}); err == nil {
		t.Error("missing strategies should fail")
	}
}
