package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"tolerance/internal/cmdp"
	"tolerance/internal/nodemodel"
	"tolerance/internal/recovery"
	"tolerance/internal/replica"
)

// newTestCluster boots a small live cluster with a fresh system controller
// sharing the given seed, so two calls with the same arguments are
// schedule-identical.
func newTestCluster(t *testing.T, seed int64, n1 int, pa float64, deltaR int) *LiveCluster {
	t.Helper()
	params := nodemodel.DefaultParams()
	params.PA = pa
	model, err := cmdp.NewBinomialModel(7, 1, 0.9, 0.95, 0)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := cmdp.Solve(model)
	if err != nil {
		t.Fatal(err)
	}
	sysCtrl, err := NewSystemController(sol, 7, seed)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := NewLiveCluster(LiveConfig{
		N1:          n1,
		K:           1,
		SMax:        7,
		Params:      params,
		Recovery:    &recovery.ThresholdStrategy{Thresholds: []float64{0.5}, DeltaR: recovery.InfiniteDeltaR},
		Replication: sysCtrl,
		DeltaR:      deltaR,
		Seed:        seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return lc
}

// TestLiveClusterRestartMidConsensus restarts replicas while a client keeps
// committing operations: every request must still succeed, and the
// restarted replica — resuming its USIG counter so peers accept it — must
// catch back up with the group's execution.
func TestLiveClusterRestartMidConsensus(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	lc := newTestCluster(t, 17, 4, 0.001, recovery.InfiniteDeltaR)
	defer lc.Close()

	cl, err := lc.Client("alice")
	if err != nil {
		t.Fatal(err)
	}
	commit := func(i int) {
		t.Helper()
		if _, err := cl.Submit(replica.Op{
			Type: replica.OpWrite, Key: fmt.Sprintf("k%d", i), Value: "v",
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		commit(i)
	}
	// Restart two non-primary replicas back to back, committing between
	// them so the restarts land mid-stream, not between idle periods.
	if err := lc.RestartNode("node1"); err != nil {
		t.Fatalf("restart node1: %v", err)
	}
	for i := 5; i < 10; i++ {
		commit(i)
	}
	if err := lc.RestartNode("node2"); err != nil {
		t.Fatalf("restart node2: %v", err)
	}
	for i := 10; i < 15; i++ {
		commit(i)
	}
	if lc.Stats.Restarts != 2 {
		t.Errorf("Stats.Restarts = %d, want 2", lc.Stats.Restarts)
	}
	// The restarted replicas rejoined the ordering pipeline: state sync
	// plus live commits must bring their execution watermark up to the
	// group's within the timeout.
	target := lc.nodes["node0"].replica.LastExecuted()
	if target == 0 {
		t.Fatal("node0 executed nothing")
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, id := range []string{"node1", "node2"} {
		for lc.nodes[id].replica.LastExecuted() < target {
			if time.Now().After(deadline) {
				t.Fatalf("%s stuck at %d, group at %d",
					id, lc.nodes[id].replica.LastExecuted(), target)
			}
			// Re-request sync while waiting: a commit that lands during
			// the initial transfer window leaves a gap the next stable
			// checkpoint (or this retry) closes.
			lc.nodes[id].replica.RequestStateSync(target)
			time.Sleep(50 * time.Millisecond)
		}
	}
	// A restart is not an eviction: membership is untouched.
	if got := len(lc.Members()); got != 4 {
		t.Errorf("membership shrank to %d after restarts", got)
	}
}

// TestLiveClusterViewChangeAfterPrimaryCrash crashes the view-0 primary and
// checks the group elects a new one: the next client request commits in a
// higher view, and the next control step evicts the crashed node through
// consensus led by the new primary.
func TestLiveClusterViewChangeAfterPrimaryCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	lc := newTestCluster(t, 23, 4, 0.001, recovery.InfiniteDeltaR)
	defer lc.Close()

	cl, err := lc.Client("bob")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Submit(replica.Op{Type: replica.OpWrite, Key: "a", Value: "1"}); err != nil {
		t.Fatalf("pre-crash submit: %v", err)
	}
	if v := lc.MaxView(); v != 0 {
		t.Fatalf("view %d before the crash", v)
	}
	// members[0] is the view-0 primary.
	if err := lc.CrashNode(lc.Members()[0]); err != nil {
		t.Fatal(err)
	}
	// This request can only commit after a view change (the old primary is
	// gone), so its success proves the election.
	if _, err := cl.Submit(replica.Op{Type: replica.OpWrite, Key: "b", Value: "2"}); err != nil {
		t.Fatalf("post-crash submit: %v", err)
	}
	if v := lc.MaxView(); v < 1 {
		t.Errorf("view still %d after crash-while-primary", v)
	}
	// The crashed node misses its report, so the system controller evicts
	// it through the new primary.
	if _, err := lc.Step(); err != nil {
		t.Fatalf("eviction step: %v", err)
	}
	if lc.Stats.Evictions != 1 {
		t.Errorf("Stats.Evictions = %d, want 1", lc.Stats.Evictions)
	}
	// The evict op commits with f+1 replies, so one straggler may apply it
	// a beat later; poll until every live replica converges.
	deadline := time.Now().Add(5 * time.Second)
	for {
		members := lc.Members()
		if len(members) == 3 && !strings.Contains(strings.Join(members, ","), "node0") {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("members after eviction = %v", members)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if lc.Stats.ViewChanges < 1 {
		t.Errorf("Stats.ViewChanges = %d, want >= 1", lc.Stats.ViewChanges)
	}
}

// TestLiveClusterSeededScheduleReproducible runs two identically-seeded
// clusters side by side and compares their per-step event traces: the
// attacker campaigns, recoveries, compromises and membership changes must
// be identical — the live cluster's schedule is a pure function of the
// seed, even though consensus timing is wall-clock.
func TestLiveClusterSeededScheduleReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	trace := func() []string {
		lc := newTestCluster(t, 11, 3, 0.3, recovery.InfiniteDeltaR)
		defer lc.Close()
		var out []string
		for step := 0; step < 10; step++ {
			recovered, err := lc.Step()
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			out = append(out, fmt.Sprintf("step %d: recovered=%v compromised=%v members=%d",
				step, recovered, lc.CompromisedNodes(), len(lc.Members())))
		}
		out = append(out, fmt.Sprintf("intrusions=%d recoveries=%d evictions=%d additions=%d",
			lc.Stats.Intrusions, lc.Stats.Recoveries, lc.Stats.Evictions, lc.Stats.Additions))
		return out
	}
	a, b := trace(), trace()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("trace line %d differs:\n  run A: %s\n  run B: %s", i, a[i], b[i])
		}
	}
	// The schedule must also be non-trivial, or the comparison proves
	// nothing: pA = 0.3 over 10 steps on 3 nodes makes intrusions all but
	// certain.
	if strings.HasPrefix(a[len(a)-1], "intrusions=0") {
		t.Errorf("schedule saw no intrusions: %s", a[len(a)-1])
	}
	t.Logf("final stats: %s", a[len(a)-1])
}
