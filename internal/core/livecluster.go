package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"tolerance/internal/attacker"
	"tolerance/internal/ids"
	"tolerance/internal/minbft"
	"tolerance/internal/nodemodel"
	"tolerance/internal/recovery"
	"tolerance/internal/replica"
	"tolerance/internal/transport"
	"tolerance/internal/usig"
)

// LiveCluster runs the full TOLERANCE stack end-to-end: a MinBFT replica
// group over a simulated network, an attacker executing Table 6 campaigns,
// node controllers consuming simulated IDS alerts, and a system controller
// issuing evict/add reconfigurations through consensus. It is the
// proof-of-concept deployment of §VII in-process.
type LiveCluster struct {
	cfg LiveConfig
	rng *rand.Rand

	network  *transport.SimNetwork
	verifier *usig.Verifier
	registry *replica.Registry
	admin    *minbft.Client

	nodes map[string]*liveNode
	// order lists node IDs in creation order. Every per-node loop that
	// draws from the rng (or submits through consensus) walks it instead
	// of the map, so the seeded event schedule is identical across runs —
	// Go map iteration order would fork it.
	order      []string
	sysCtrl    *SystemController
	nextNodeID int
	step       int

	// Stats accumulates outcome counters.
	Stats LiveStats
}

// LiveStats counts cluster events.
type LiveStats struct {
	Intrusions int
	Recoveries int
	Evictions  int
	Additions  int
	// Restarts counts in-place replica process restarts (RestartNode).
	Restarts int
	// ViewChanges is the highest view number observed on a live replica —
	// view 0 is the boot view, so any value above 0 means the group
	// elected a new primary at least once.
	ViewChanges uint64
}

type liveNode struct {
	id         string
	replica    *minbft.Replica
	endpoint   transport.Endpoint
	usig       *usig.USIG
	controller *NodeController
	profile    ids.Profile
	compromise *attacker.Intrusion
	boost      int
	crashed    bool
}

// LiveConfig configures a live cluster.
type LiveConfig struct {
	// N1 is the initial replica count.
	N1 int
	// K is the parallel-recovery allowance (Prop. 1).
	K int
	// SMax caps the replication factor.
	SMax int
	// Params is the node model used by the controllers.
	Params nodemodel.Params
	// Recovery is the Problem 1 strategy for node controllers.
	Recovery recovery.Strategy
	// Replication is the Problem 2 solution for the system controller.
	Replication *SystemController
	// DeltaR is the BTR bound.
	DeltaR int
	// Seed drives all randomness.
	Seed int64
	// Loss is the simulated packet-loss probability (§VIII-A: 0.05%).
	Loss float64
}

var liveKey = []byte("tolerance-live-cluster-key-32-b!")

// NewLiveCluster boots the replica group and its controllers.
func NewLiveCluster(cfg LiveConfig) (*LiveCluster, error) {
	if cfg.N1 < 2 {
		return nil, fmt.Errorf("%w: N1 = %d", ErrBadController, cfg.N1)
	}
	if cfg.SMax == 0 {
		cfg.SMax = 13
	}
	if cfg.Recovery == nil || cfg.Replication == nil {
		return nil, fmt.Errorf("%w: missing strategies", ErrBadController)
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	network, err := transport.NewSimNetwork(transport.Conditions{Loss: cfg.Loss}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	verifier, err := usig.NewHMACVerifier(liveKey)
	if err != nil {
		return nil, err
	}
	lc := &LiveCluster{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		network:  network,
		verifier: verifier,
		registry: replica.NewRegistry(),
		nodes:    make(map[string]*liveNode),
		sysCtrl:  cfg.Replication,
	}
	members := make([]string, cfg.N1)
	for i := 0; i < cfg.N1; i++ {
		members[i] = fmt.Sprintf("node%d", i)
	}
	lc.nextNodeID = cfg.N1
	catalog, err := catalogProfiles()
	if err != nil {
		network.Close()
		return nil, err
	}
	for i, id := range members {
		if err := lc.startNode(id, members, catalog, i); err != nil {
			lc.Close()
			return nil, err
		}
	}
	signer, err := replica.NewSigner("system-controller")
	if err != nil {
		lc.Close()
		return nil, err
	}
	if err := lc.registry.Register(signer.ClientID(), signer.PublicKey()); err != nil {
		lc.Close()
		return nil, err
	}
	ep, err := network.Endpoint(signer.ClientID())
	if err != nil {
		lc.Close()
		return nil, err
	}
	f := (cfg.N1 - 1 - cfg.K) / 2
	if f < 0 {
		f = 0
	}
	admin, err := minbft.NewClient(signer, ep, members, f)
	if err != nil {
		lc.Close()
		return nil, err
	}
	admin.Timeout = 5 * time.Second
	lc.admin = admin
	return lc, nil
}

// catalogProfiles builds the Table 4 alert profiles without importing the
// emulation package (avoiding a dependency cycle).
func catalogProfiles() ([]ids.Profile, error) {
	shapes := [][4]float64{
		{0.8, 5, 3.2, 1.1}, {0.8, 5.5, 3.0, 1.2}, {0.8, 5.5, 3.0, 1.1},
		{0.7, 6, 2.2, 1.6}, {0.7, 6, 2.4, 1.5}, {0.9, 5, 2.0, 1.7},
		{0.7, 6, 2.3, 1.5}, {0.7, 6, 2.3, 1.6}, {0.9, 5, 2.8, 1.2},
		{0.9, 5, 2.8, 1.3},
	}
	out := make([]ids.Profile, 0, len(shapes))
	for i, s := range shapes {
		p, err := ids.NewBetaBinomialProfile(fmt.Sprintf("replica-%d", i+1), s[0], s[1], s[2], s[3])
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// startNode boots one replica with its controller.
func (lc *LiveCluster) startNode(id string, members []string, catalog []ids.Profile, phase int) error {
	ep, err := lc.network.Endpoint(id)
	if err != nil {
		return err
	}
	u, err := usig.NewHMAC(id, liveKey)
	if err != nil {
		return err
	}
	rep, err := minbft.NewReplica(minbft.Config{
		ID:       id,
		Members:  members,
		K:        lc.cfg.K,
		Endpoint: ep,
		USIG:     u,
		Verifier: lc.verifier,
		Registry: lc.registry,
		Store:    replica.NewKVStore(),
		// A short checkpoint interval keeps restarted and joined replicas
		// self-healing: a stable checkpoint ahead of a replica's execution
		// triggers a state re-sync, which closes the gap left when commits
		// land during its initial state transfer.
		CheckpointInterval: 10,
		RequestTimeout:     300 * time.Millisecond,
		TickInterval:       5 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	profile := catalog[lc.rng.Intn(len(catalog))]
	fit, err := ids.Fit(lc.rng, profile, 5000)
	if err != nil {
		rep.Stop()
		return err
	}
	ctrl, err := NewNodeController(NodeControllerConfig{
		Params:   lc.cfg.Params,
		Fit:      fit,
		Strategy: lc.cfg.Recovery,
		DeltaR:   lc.cfg.DeltaR,
		Phase:    phase,
	})
	if err != nil {
		rep.Stop()
		return err
	}
	lc.nodes[id] = &liveNode{
		id:         id,
		replica:    rep,
		endpoint:   ep,
		usig:       u,
		controller: ctrl,
		profile:    profile,
	}
	lc.order = append(lc.order, id)
	return nil
}

// orderedNodes walks the nodes in creation order (see the order field).
func (lc *LiveCluster) orderedNodes() []*liveNode {
	out := make([]*liveNode, 0, len(lc.order))
	for _, id := range lc.order {
		if n, ok := lc.nodes[id]; ok {
			out = append(out, n)
		}
	}
	return out
}

// Client creates a service client attached to the cluster.
func (lc *LiveCluster) Client(name string) (*minbft.Client, error) {
	signer, err := replica.NewSigner(name)
	if err != nil {
		return nil, err
	}
	if err := lc.registry.Register(name, signer.PublicKey()); err != nil {
		return nil, err
	}
	ep, err := lc.network.Endpoint(name)
	if err != nil {
		return nil, err
	}
	members, f := lc.membership()
	cl, err := minbft.NewClient(signer, ep, members, f)
	if err != nil {
		return nil, err
	}
	cl.Timeout = 5 * time.Second
	return cl, nil
}

// membership returns the current member list and tolerance threshold from
// any live replica.
func (lc *LiveCluster) membership() ([]string, int) {
	for _, n := range lc.orderedNodes() {
		if !n.crashed {
			return n.replica.Members(), n.replica.Tolerance()
		}
	}
	return nil, 0
}

// Step advances the cluster one control interval: the attacker acts, IDS
// alerts flow to the node controllers, recoveries and reconfigurations are
// applied. It returns the IDs recovered this step.
func (lc *LiveCluster) Step() ([]string, error) {
	lc.step++
	// Attacker: start/advance campaigns (§VIII-A).
	for _, n := range lc.orderedNodes() {
		if n.crashed {
			continue
		}
		compromised := n.compromise != nil && n.compromise.Done()
		if !compromised && n.compromise == nil && lc.rng.Float64() < lc.cfg.Params.PA {
			intr, err := attacker.Start(1 + lc.rng.Intn(attacker.NumCampaigns()))
			if err == nil {
				n.compromise = intr
			}
		}
		if n.compromise != nil && !n.compromise.Done() {
			n.boost += n.compromise.Advance(lc.rng)
			if n.compromise.Done() {
				lc.Stats.Intrusions++
				switch n.compromise.Behaviour {
				case attacker.StaySilent:
					n.replica.SetByzantine(minbft.Silent)
				case attacker.SendRandom:
					n.replica.SetByzantine(minbft.Garbage)
				default:
					// Participates while exfiltrating; protocol-visible
					// behaviour stays honest.
				}
			}
		}
	}

	// IDS + node controllers; cap parallel recoveries at k.
	recovered := make([]string, 0, lc.cfg.K)
	reports := make(map[string]*float64, len(lc.nodes))
	for _, n := range lc.orderedNodes() {
		if n.crashed {
			reports[n.id] = nil
			continue
		}
		compromised := n.compromise != nil && n.compromise.Done()
		obs := n.profile.Sample(lc.rng, compromised) + n.boost
		n.boost = 0
		if obs >= ids.AlertSupport {
			obs = ids.AlertSupport - 1
		}
		action := n.controller.Step(obs)
		if action == nodemodel.Recover && len(recovered) < lc.cfg.K {
			lc.recoverNode(n)
			recovered = append(recovered, n.id)
		}
		b := n.controller.Belief()
		reports[n.id] = &b
	}

	// System controller: evict crashed nodes, maybe add one (Fig 1).
	decision := lc.sysCtrl.Decide(reports)
	for _, id := range decision.Evict {
		if err := lc.evictNode(id); err != nil {
			return recovered, err
		}
	}
	if decision.Add && len(lc.aliveIDs()) < lc.cfg.SMax {
		if err := lc.addNode(); err != nil {
			return recovered, err
		}
	}
	if v := lc.MaxView(); v > lc.Stats.ViewChanges {
		lc.Stats.ViewChanges = v
	}
	return recovered, nil
}

// MaxView returns the highest view number among live replicas (0 at boot;
// any higher value means the group changed primaries).
func (lc *LiveCluster) MaxView() uint64 {
	var v uint64
	for _, n := range lc.orderedNodes() {
		if !n.crashed && n.replica.View() > v {
			v = n.replica.View()
		}
	}
	return v
}

// RestartNode restarts a node's replica process in place — the real
// machinery behind a §VII-C recovery: the old process stops (possibly
// mid-consensus), the USIG resumes from its persisted counter (peers' FIFO
// anti-equivocation gate would drop a reset counter as replay), and the
// restarted replica rejoins on the same identity with a fresh store,
// catching up through state sync.
func (lc *LiveCluster) RestartNode(id string) error {
	n, ok := lc.nodes[id]
	if !ok {
		return fmt.Errorf("core: unknown node %s", id)
	}
	if n.crashed {
		return fmt.Errorf("core: node %s has crashed; evict it instead of restarting", id)
	}
	members, _ := lc.membership()
	n.replica.Stop()
	u, err := usig.ResumeHMAC(id, liveKey, n.usig.Counter())
	if err != nil {
		return err
	}
	rep, err := minbft.NewReplica(minbft.Config{
		ID:                 id,
		Members:            members,
		K:                  lc.cfg.K,
		Endpoint:           n.endpoint,
		USIG:               u,
		Verifier:           lc.verifier,
		Registry:           lc.registry,
		Store:              replica.NewKVStore(),
		CheckpointInterval: 10,
		RequestTimeout:     300 * time.Millisecond,
		TickInterval:       5 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	n.replica = rep
	n.usig = u
	n.compromise = nil
	n.boost = 0
	lc.Stats.Restarts++
	rep.RequestStateSync(1)
	n.controller.NotifyRecovered()
	return nil
}

// recoverNode replaces the application domain: byzantine behaviour stops,
// the replica state-syncs from its peers, and the controller resets
// (§VII-C: the recovered replica starts with a fresh container and the
// state of f+1 other replicas).
func (lc *LiveCluster) recoverNode(n *liveNode) {
	lc.Stats.Recoveries++
	n.replica.SetByzantine(minbft.Honest)
	n.compromise = nil
	n.replica.RequestStateSync(n.replica.LastExecuted() + 1)
	n.controller.NotifyRecovered()
}

// CrashNode simulates a hardware crash of a node.
func (lc *LiveCluster) CrashNode(id string) error {
	n, ok := lc.nodes[id]
	if !ok {
		return fmt.Errorf("core: unknown node %s", id)
	}
	n.crashed = true
	n.replica.Stop()
	lc.network.Isolate(id)
	return nil
}

// evictNode removes a crashed node through consensus (Fig 17f).
func (lc *LiveCluster) evictNode(id string) error {
	op, err := minbft.EncodeConfigOp("evict", id)
	if err != nil {
		return err
	}
	if _, err := lc.admin.Submit(op); err != nil {
		return fmt.Errorf("core: evict %s: %w", id, err)
	}
	lc.Stats.Evictions++
	delete(lc.nodes, id)
	for i, oid := range lc.order {
		if oid == id {
			lc.order = append(lc.order[:i], lc.order[i+1:]...)
			break
		}
	}
	lc.refreshAdminMembership()
	return nil
}

// addNode starts a new replica and joins it through consensus (Fig 17e).
func (lc *LiveCluster) addNode() error {
	id := fmt.Sprintf("node%d", lc.nextNodeID)
	lc.nextNodeID++
	members, _ := lc.membership()
	members = append(members, id)
	catalog, err := catalogProfiles()
	if err != nil {
		return err
	}
	phase := 0
	if lc.cfg.DeltaR != recovery.InfiniteDeltaR {
		phase = lc.rng.Intn(lc.cfg.DeltaR)
	}
	if err := lc.startNode(id, members, catalog, phase); err != nil {
		return err
	}
	op, err := minbft.EncodeConfigOp("join", id)
	if err != nil {
		return err
	}
	if _, err := lc.admin.Submit(op); err != nil {
		return fmt.Errorf("core: join %s: %w", id, err)
	}
	lc.Stats.Additions++
	lc.nodes[id].replica.RequestStateSync(1)
	lc.refreshAdminMembership()
	return nil
}

// refreshAdminMembership re-points the admin client at current members.
func (lc *LiveCluster) refreshAdminMembership() {
	members, f := lc.membership()
	if len(members) > 0 {
		lc.admin.UpdateMembership(members, f)
	}
}

// aliveIDs lists non-crashed nodes in creation order.
func (lc *LiveCluster) aliveIDs() []string {
	out := make([]string, 0, len(lc.nodes))
	for _, n := range lc.orderedNodes() {
		if !n.crashed {
			out = append(out, n.id)
		}
	}
	return out
}

// CompromisedNodes lists nodes currently under attacker control, in
// creation order.
func (lc *LiveCluster) CompromisedNodes() []string {
	var out []string
	for _, n := range lc.orderedNodes() {
		if n.compromise != nil && n.compromise.Done() {
			out = append(out, n.id)
		}
	}
	return out
}

// Members returns the current consensus membership.
func (lc *LiveCluster) Members() []string {
	members, _ := lc.membership()
	return members
}

// Close stops every replica and the network.
func (lc *LiveCluster) Close() {
	for _, n := range lc.nodes {
		if !n.crashed {
			n.replica.Stop()
		}
	}
	if lc.network != nil {
		lc.network.Close()
	}
}

// ErrNoLiveNodes is returned when every node has crashed.
var ErrNoLiveNodes = errors.New("core: no live nodes")
