package opt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// sphere has its minimum 0 at the given center.
func sphere(center []float64) Objective {
	return func(theta []float64) float64 {
		s := 0.0
		for i, v := range theta {
			d := v - center[i]
			s += d * d
		}
		return s
	}
}

// noisySphere adds Gaussian noise to the sphere objective.
func noisySphere(center []float64, sigma float64, rng *rand.Rand) Objective {
	base := sphere(center)
	return func(theta []float64) float64 {
		return base(theta) + sigma*rng.NormFloat64()
	}
}

func allOptimizers() []Optimizer {
	return []Optimizer{
		RandomSearch{},
		SPSA{Restarts: 2},
		CEM{Population: 40},
		DE{},
		BO{InitialSamples: 10, Candidates: 128},
	}
}

func TestOptimizersFindSphereMinimum(t *testing.T) {
	center := []float64{0.3, 0.7}
	for _, o := range allOptimizers() {
		o := o
		t.Run(o.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			res, err := o.Minimize(rng, 2, sphere(center), 400, 1)
			if err != nil {
				t.Fatal(err)
			}
			if res.Value > 0.02 {
				t.Errorf("%s: best value %v, want < 0.02 (theta %v)", o.Name(), res.Value, res.Theta)
			}
			if res.Evaluations > 400 {
				t.Errorf("%s: used %d evaluations, budget 400", o.Name(), res.Evaluations)
			}
		})
	}
}

func TestOptimizersRespectBudget(t *testing.T) {
	for _, o := range allOptimizers() {
		rng := rand.New(rand.NewSource(2))
		calls := 0
		obj := func(theta []float64) float64 {
			calls++
			return theta[0]
		}
		res, err := o.Minimize(rng, 1, obj, 50, 1)
		if err != nil {
			t.Fatalf("%s: %v", o.Name(), err)
		}
		if calls > 50 {
			t.Errorf("%s: %d objective calls, budget 50", o.Name(), calls)
		}
		if res.Evaluations != calls {
			t.Errorf("%s: reported %d evals, actual %d", o.Name(), res.Evaluations, calls)
		}
	}
}

func TestOptimizersHandleNoise(t *testing.T) {
	// CEM and DE are the paper's most reliable solvers (Table 2); they
	// should still localize the minimum under observation noise.
	center := []float64{0.6}
	for _, o := range []Optimizer{CEM{Population: 30}, DE{}} {
		rng := rand.New(rand.NewSource(3))
		res, err := o.Minimize(rng, 1, noisySphere(center, 0.01, rng), 600, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Theta[0]-0.6) > 0.15 {
			t.Errorf("%s: theta = %v, want near 0.6", o.Name(), res.Theta)
		}
	}
}

func TestTraceMonotone(t *testing.T) {
	for _, o := range allOptimizers() {
		rng := rand.New(rand.NewSource(4))
		res, err := o.Minimize(rng, 2, sphere([]float64{0.5, 0.5}), 200, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Trace) == 0 {
			t.Fatalf("%s: empty trace", o.Name())
		}
		for i := 1; i < len(res.Trace); i++ {
			if res.Trace[i].Best > res.Trace[i-1].Best {
				t.Errorf("%s: trace not monotone at %d", o.Name(), i)
			}
			if res.Trace[i].Evaluations <= res.Trace[i-1].Evaluations {
				t.Errorf("%s: trace eval counts not increasing", o.Name())
			}
		}
	}
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, o := range allOptimizers() {
		if _, err := o.Minimize(rng, 0, sphere([]float64{0.5}), 100, 1); err == nil {
			t.Errorf("%s: dim 0 should fail", o.Name())
		}
		if _, err := o.Minimize(rng, 1, nil, 100, 1); err == nil {
			t.Errorf("%s: nil objective should fail", o.Name())
		}
		if _, err := o.Minimize(rng, 1, sphere([]float64{0.5}), 1, 1); err == nil {
			t.Errorf("%s: budget 1 should fail", o.Name())
		}
	}
}

// Property: all optimizers stay inside the unit box.
func TestThetaWithinBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ok := true
		obj := func(theta []float64) float64 {
			for _, v := range theta {
				if v < 0 || v > 1 {
					ok = false
				}
			}
			return theta[0]
		}
		for _, o := range allOptimizers() {
			if _, err := o.Minimize(rng, 3, obj, 60, 1); err != nil {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestGPInterpolatesObservations(t *testing.T) {
	g := newGP(0.3, 1, 1e-6)
	xs := [][]float64{{0.1}, {0.5}, {0.9}}
	ys := []float64{1, -1, 2}
	if err := g.fit(xs, ys); err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		mu, v := g.predict(x)
		if math.Abs(mu-ys[i]) > 0.01 {
			t.Errorf("predict(%v) = %v, want ~%v", x, mu, ys[i])
		}
		if v > 0.01 {
			t.Errorf("variance at observed point = %v, want ~0", v)
		}
	}
	// Far from data the variance approaches the prior.
	_, vFar := g.predict([]float64{100})
	if vFar < 0.9 {
		t.Errorf("variance far from data = %v, want near prior 1", vFar)
	}
}

func TestGPPredictionBetweenPoints(t *testing.T) {
	// GP mean between two equal observations should be close to them.
	g := newGP(0.5, 1, 1e-6)
	if err := g.fit([][]float64{{0.4}, {0.6}}, []float64{2, 2}); err != nil {
		t.Fatal(err)
	}
	mu, _ := g.predict([]float64{0.5})
	if math.Abs(mu-2) > 0.05 {
		t.Errorf("mid prediction = %v, want ~2", mu)
	}
}

func TestCholeskyKnownFactor(t *testing.T) {
	a := [][]float64{{4, 2}, {2, 3}}
	l, err := cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{2, 0}, {1, math.Sqrt(2)}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(l[i][j]-want[i][j]) > 1e-12 {
				t.Errorf("L[%d][%d] = %v, want %v", i, j, l[i][j], want[i][j])
			}
		}
	}
	if _, err := cholesky([][]float64{{-1}}); err == nil {
		t.Error("negative-definite matrix should fail")
	}
}

func TestCholSolveRoundTrip(t *testing.T) {
	a := [][]float64{{4, 2, 0.5}, {2, 5, 1}, {0.5, 1, 3}}
	l, err := cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -2, 0.5}
	b := make([]float64, 3)
	for i := range a {
		for j := range a[i] {
			b[i] += a[i][j] * want[j]
		}
	}
	got := cholSolve(l, b)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNormalize(t *testing.T) {
	ys := normalize([]float64{1, 2, 3})
	mean := (ys[0] + ys[1] + ys[2]) / 3
	if math.Abs(mean) > 1e-12 {
		t.Errorf("normalized mean = %v", mean)
	}
	// Constant input should not produce NaN.
	for _, v := range normalize([]float64{5, 5, 5}) {
		if math.IsNaN(v) {
			t.Error("normalize of constant produced NaN")
		}
	}
}

func TestSelectGPPoints(t *testing.T) {
	var xs [][]float64
	var ys []float64
	for i := 0; i < 20; i++ {
		xs = append(xs, []float64{float64(i)})
		ys = append(ys, float64(20-i))
	}
	kx, ky := selectGPPoints(xs, ys, 10)
	if len(kx) != 10 || len(ky) != 10 {
		t.Fatalf("kept %d/%d, want 10", len(kx), len(ky))
	}
	// The globally best (smallest y, latest index) must be kept.
	found := false
	for _, y := range ky {
		if y == 1 {
			found = true
		}
	}
	if !found {
		t.Error("best observation dropped")
	}
}

func TestOptimizerNames(t *testing.T) {
	want := map[string]bool{"random": true, "spsa": true, "cem": true, "de": true, "bo": true}
	for _, o := range allOptimizers() {
		if !want[o.Name()] {
			t.Errorf("unexpected optimizer name %q", o.Name())
		}
	}
}
