package opt

import (
	"math/rand"
)

// DE implements Differential Evolution (Storn & Price, the paper's [71];
// Table 8: population 10, mutation step 0.2, recombination rate 0.7) in the
// generational DE/rand/1/bin variant: every generation's trials are built
// from the population as it stood at the start of the generation, evaluated
// as one batch, and the acceptances applied afterwards in agent order —
// which is what lets trials evaluate concurrently with results that are
// bit-identical for any workers value. (Before the batch restructure this
// implementation was steady-state — each acceptance was visible to the
// trials built after it within the same generation — so per-seed outputs
// changed with the restructure; the convergence contracts are unaffected.)
type DE struct {
	// Population is the number of agents (Table 8: 10).
	Population int
	// MutationStep is the differential weight F (Table 8: 0.2).
	MutationStep float64
	// Recombination is the crossover rate CR (Table 8: 0.7).
	Recombination float64
}

// Name implements Optimizer.
func (DE) Name() string { return "de" }

// Minimize implements Optimizer.
func (d DE) Minimize(rng *rand.Rand, dim int, obj Objective, budget, workers int) (*Result, error) {
	if err := validateArgs(dim, budget, obj); err != nil {
		return nil, err
	}
	pop := d.Population
	if pop <= 0 {
		pop = 10
	}
	if pop < 4 {
		pop = 4
	}
	if pop > budget {
		pop = budget
	}
	f := d.MutationStep
	if f == 0 {
		f = 0.2
	}
	cr := d.Recombination
	if cr == 0 {
		cr = 0.7
	}

	tr := newTracker(obj)
	agents := make([][]float64, pop)
	values := make([]float64, pop)
	for s := 0; s < pop; s++ {
		theta := make([]float64, dim)
		for i := range theta {
			theta[i] = rng.Float64()
		}
		agents[s] = theta
	}
	tr.evaluateBatch(agents, values, workers)
	trials := make([][]float64, pop)
	for s := range trials {
		trials[s] = make([]float64, dim)
	}
	tvals := make([]float64, pop)
	for tr.evals < budget {
		gen := pop
		if rem := budget - tr.evals; rem < gen {
			gen = rem
		}
		// Build every trial of the generation from the generation-start
		// population, then evaluate the batch and apply acceptances in
		// agent order.
		for s := 0; s < gen; s++ {
			trial := trials[s]
			// Pick three distinct agents different from s.
			a, b, c := s, s, s
			for a == s {
				a = rng.Intn(pop)
			}
			for b == s || b == a {
				b = rng.Intn(pop)
			}
			for c == s || c == a || c == b {
				c = rng.Intn(pop)
			}
			forced := rng.Intn(dim)
			for i := 0; i < dim; i++ {
				if i == forced || rng.Float64() < cr {
					trial[i] = agents[a][i] + f*(agents[b][i]-agents[c][i])
				} else {
					trial[i] = agents[s][i]
				}
			}
			clamp01(trial)
		}
		tr.evaluateBatch(trials[:gen], tvals[:gen], workers)
		for s := 0; s < gen; s++ {
			if tvals[s] <= values[s] {
				copy(agents[s], trials[s])
				values[s] = tvals[s]
			}
		}
	}
	return tr.result(), nil
}
