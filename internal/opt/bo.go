package opt

import (
	"math"
	"math/rand"
)

// BO implements Bayesian Optimization with an exact Matérn-5/2 Gaussian
// process and a lower-confidence-bound acquisition (the paper's [72];
// Table 8: beta = 2.5, Matérn(2.5) kernel). Candidates are proposed by
// multi-start random search over the acquisition surface.
type BO struct {
	// Beta is the LCB exploration weight (Table 8: 2.5).
	Beta float64
	// InitialSamples seeds the GP with uniform random evaluations.
	InitialSamples int
	// Candidates is the number of random acquisition probes per iteration.
	Candidates int
	// LengthScale of the Matérn kernel; defaults to 0.2.
	LengthScale float64
	// NoiseVar models observation noise of the stochastic objective.
	NoiseVar float64
	// MaxGPPoints caps the conditioning set; the most recent and the best
	// points are kept when it is exceeded (keeps fitting O(n^3) bounded).
	MaxGPPoints int
}

// Name implements Optimizer.
func (BO) Name() string { return "bo" }

// Minimize implements Optimizer. The initial random design evaluates as
// one concurrent batch; the acquisition loop is inherently sequential
// (every proposal conditions the GP on all previous results), so workers
// does not speed it up. Results are bit-identical for any workers value.
func (b BO) Minimize(rng *rand.Rand, dim int, obj Objective, budget, workers int) (*Result, error) {
	if err := validateArgs(dim, budget, obj); err != nil {
		return nil, err
	}
	beta := b.Beta
	if beta == 0 {
		beta = 2.5
	}
	initial := b.InitialSamples
	if initial <= 0 {
		initial = 5 * dim
	}
	if initial >= budget {
		initial = budget / 2
	}
	if initial < 1 {
		initial = 1
	}
	candidates := b.Candidates
	if candidates <= 0 {
		candidates = 256
	}
	lengthScale := b.LengthScale
	if lengthScale <= 0 {
		lengthScale = 0.2
	}
	noise := b.NoiseVar
	if noise <= 0 {
		noise = 1e-4
	}
	maxPoints := b.MaxGPPoints
	if maxPoints <= 0 {
		maxPoints = 160
	}

	tr := newTracker(obj)
	xs := make([][]float64, initial)
	ys := make([]float64, initial)
	for e := range xs {
		theta := make([]float64, dim)
		for i := range theta {
			theta[i] = rng.Float64()
		}
		xs[e] = theta
	}
	tr.evaluateBatch(xs, ys, workers)

	model := newGP(lengthScale, 1, noise)
	for tr.evals < budget {
		fitXs, fitYs := xs, ys
		if len(xs) > maxPoints {
			fitXs, fitYs = selectGPPoints(xs, ys, maxPoints)
		}
		if err := model.fit(fitXs, normalize(fitYs)); err != nil {
			// A singular kernel (duplicated points) falls back on random
			// exploration for this step.
			theta := make([]float64, dim)
			for i := range theta {
				theta[i] = rng.Float64()
			}
			y := tr.evaluate(theta)
			xs = append(xs, theta)
			ys = append(ys, y)
			continue
		}
		// Minimize the LCB acquisition mu - beta*sigma by random multistart
		// plus local jitter around the incumbent.
		bestAcq := math.Inf(1)
		bestTheta := make([]float64, dim)
		probe := make([]float64, dim)
		for cIdx := 0; cIdx < candidates; cIdx++ {
			if cIdx%4 == 0 && tr.bestTheta != nil {
				for i := range probe {
					probe[i] = tr.bestTheta[i] + 0.05*rng.NormFloat64()
				}
			} else {
				for i := range probe {
					probe[i] = rng.Float64()
				}
			}
			clamp01(probe)
			mu, v := model.predict(probe)
			acq := mu - beta*math.Sqrt(v)
			if acq < bestAcq {
				bestAcq = acq
				copy(bestTheta, probe)
			}
		}
		y := tr.evaluate(bestTheta)
		xs = append(xs, append([]float64(nil), bestTheta...))
		ys = append(ys, y)
	}
	return tr.result(), nil
}

// normalize returns ys standardized to zero mean, unit variance.
func normalize(ys []float64) []float64 {
	n := float64(len(ys))
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= n
	variance := 0.0
	for _, y := range ys {
		d := y - mean
		variance += d * d
	}
	variance /= n
	std := math.Sqrt(variance)
	if std < 1e-12 {
		std = 1
	}
	out := make([]float64, len(ys))
	for i, y := range ys {
		out[i] = (y - mean) / std
	}
	return out
}

// selectGPPoints keeps the best half and the most recent half of the budget.
func selectGPPoints(xs [][]float64, ys []float64, limit int) ([][]float64, []float64) {
	type pair struct {
		x []float64
		y float64
	}
	// Most recent limit/2 points.
	recent := len(xs) - limit/2
	keep := make([]pair, 0, limit)
	for i := recent; i < len(xs); i++ {
		keep = append(keep, pair{xs[i], ys[i]})
	}
	// Best remaining points.
	type idxPair struct {
		idx int
		y   float64
	}
	var rest []idxPair
	for i := 0; i < recent; i++ {
		rest = append(rest, idxPair{i, ys[i]})
	}
	for len(keep) < limit && len(rest) > 0 {
		best := 0
		for i := range rest {
			if rest[i].y < rest[best].y {
				best = i
			}
		}
		keep = append(keep, pair{xs[rest[best].idx], ys[rest[best].idx]})
		rest = append(rest[:best], rest[best+1:]...)
	}
	outX := make([][]float64, len(keep))
	outY := make([]float64, len(keep))
	for i, p := range keep {
		outX[i] = p.x
		outY[i] = p.y
	}
	return outX, outY
}
