package opt

import (
	"math"
	"math/rand"
	"testing"
)

// hashNoise is a deterministic stand-in for Monte-Carlo objective noise: a
// pure function of theta (no shared state), so it is safe for concurrent
// evaluation — the same class of objective Algorithm 1 supplies.
func hashNoise(theta []float64) float64 {
	h := uint64(1469598103934665603)
	for _, v := range theta {
		h ^= math.Float64bits(v)
		h *= 1099511628211
	}
	return float64(h%1000) / 1e5
}

func deterministicObjective(theta []float64) float64 {
	s := 0.0
	for _, v := range theta {
		d := v - 0.4
		s += d * d
	}
	return s + hashNoise(theta)
}

// TestMinimizeWorkersBitIdentical is the parallel-training determinism
// contract at the optimizer layer: for every optimizer, any workers value
// produces exactly the sequential result — same best theta, value,
// evaluation count and best-so-far trace (Elapsed is wall-clock and
// exempt).
func TestMinimizeWorkersBitIdentical(t *testing.T) {
	for _, o := range allOptimizers() {
		o := o
		t.Run(o.Name(), func(t *testing.T) {
			base, err := o.Minimize(rand.New(rand.NewSource(9)), 3, deterministicObjective, 150, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				res, err := o.Minimize(rand.New(rand.NewSource(9)), 3, deterministicObjective, 150, workers)
				if err != nil {
					t.Fatal(err)
				}
				if res.Value != base.Value {
					t.Errorf("workers=%d: value %v != sequential %v", workers, res.Value, base.Value)
				}
				if res.Evaluations != base.Evaluations {
					t.Errorf("workers=%d: evaluations %d != sequential %d", workers, res.Evaluations, base.Evaluations)
				}
				if len(res.Theta) != len(base.Theta) {
					t.Fatalf("workers=%d: theta dim %d != %d", workers, len(res.Theta), len(base.Theta))
				}
				for i := range res.Theta {
					if res.Theta[i] != base.Theta[i] {
						t.Errorf("workers=%d: theta[%d] = %v != %v", workers, i, res.Theta[i], base.Theta[i])
					}
				}
				if len(res.Trace) != len(base.Trace) {
					t.Fatalf("workers=%d: trace length %d != %d", workers, len(res.Trace), len(base.Trace))
				}
				for i := range res.Trace {
					if res.Trace[i].Evaluations != base.Trace[i].Evaluations ||
						res.Trace[i].Best != base.Trace[i].Best {
						t.Errorf("workers=%d: trace[%d] = (%d, %v) != (%d, %v)", workers, i,
							res.Trace[i].Evaluations, res.Trace[i].Best,
							base.Trace[i].Evaluations, base.Trace[i].Best)
					}
				}
			}
		})
	}
}
