package opt

import (
	"math"
	"math/rand"
	"sort"
)

// CEM implements the Cross-Entropy Method (the paper's [70], Table 8:
// population 100, elite fraction 0.15): iteratively fit a diagonal Gaussian
// to the elite fraction of each sampled population.
type CEM struct {
	// Population is the number of samples per generation (Table 8: 100).
	Population int
	// EliteFraction is the fraction of samples kept (Table 8: 0.15).
	EliteFraction float64
	// InitialStd is the starting standard deviation per coordinate.
	InitialStd float64
	// MinStd floors the standard deviation to keep exploring.
	MinStd float64
}

// Name implements Optimizer.
func (CEM) Name() string { return "cem" }

// Minimize implements Optimizer. Each generation's population is drawn
// up front from rng (the same draw order a sequential run uses) and
// evaluated through the tracker's batch path, so any workers value yields
// bit-identical results.
func (c CEM) Minimize(rng *rand.Rand, dim int, obj Objective, budget, workers int) (*Result, error) {
	if err := validateArgs(dim, budget, obj); err != nil {
		return nil, err
	}
	pop := c.Population
	if pop <= 0 {
		pop = 100
	}
	if pop > budget {
		pop = budget
	}
	elite := c.EliteFraction
	if elite <= 0 || elite > 1 {
		elite = 0.15
	}
	nElite := int(math.Max(2, math.Round(elite*float64(pop))))
	std0 := c.InitialStd
	if std0 <= 0 {
		std0 = 0.3
	}
	minStd := c.MinStd
	if minStd <= 0 {
		minStd = 0.01
	}

	mean := make([]float64, dim)
	std := make([]float64, dim)
	for i := range mean {
		mean[i] = 0.5
		std[i] = std0
	}

	tr := newTracker(obj)
	type sample struct {
		theta []float64
		value float64
	}
	samples := make([]sample, pop)
	for s := range samples {
		samples[s].theta = make([]float64, dim)
	}
	thetas := make([][]float64, pop)
	values := make([]float64, pop)
	for tr.evals+pop <= budget {
		// Draw the whole generation first (the rng sequence is exactly the
		// interleaved draw-evaluate order of a sequential run, because the
		// objective never consumes this rng), then evaluate it as a batch.
		for s := 0; s < pop; s++ {
			theta := samples[s].theta
			for i := range theta {
				theta[i] = mean[i] + std[i]*rng.NormFloat64()
			}
			clamp01(theta)
			thetas[s] = theta
		}
		tr.evaluateBatch(thetas, values, workers)
		for s := 0; s < pop; s++ {
			samples[s].value = values[s]
		}
		sort.Slice(samples, func(a, b int) bool { return samples[a].value < samples[b].value })
		for i := 0; i < dim; i++ {
			m := 0.0
			for s := 0; s < nElite; s++ {
				m += samples[s].theta[i]
			}
			m /= float64(nElite)
			v := 0.0
			for s := 0; s < nElite; s++ {
				d := samples[s].theta[i] - m
				v += d * d
			}
			v /= float64(nElite)
			mean[i] = m
			std[i] = math.Max(minStd, math.Sqrt(v))
		}
	}
	// Spend any remaining budget refining around the mean.
	theta := make([]float64, dim)
	for tr.evals < budget {
		for i := range theta {
			theta[i] = mean[i] + minStd*rng.NormFloat64()
		}
		clamp01(theta)
		tr.evaluate(theta)
	}
	return tr.result(), nil
}
