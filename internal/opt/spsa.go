package opt

import (
	"math"
	"math/rand"
)

// SPSA implements Simultaneous Perturbation Stochastic Approximation
// (Spall), the paper's [69] baseline with the gain schedule of Table 8:
//
//	a_k = a / (A + k)^alpha,   c_k = c / k^gamma.
//
// Zero-valued fields fall back on the defaults below.
type SPSA struct {
	// A is the stability constant (Table 8: 100).
	A float64
	// AGain is the numerator of the step-size schedule (Table 8: 1).
	AGain float64
	// CGain is the numerator of the perturbation schedule.
	CGain float64
	// Alpha and Gamma are the decay exponents (Table 8: 0.602, 0.101).
	Alpha float64
	// Gamma is the perturbation decay exponent.
	Gamma float64
	// Restarts is the number of independent starts sharing the budget.
	Restarts int
}

// Name implements Optimizer.
func (SPSA) Name() string { return "spsa" }

// Minimize implements Optimizer. SPSA's natural batch is the (theta+,
// theta-) perturbation pair of each iteration: both evaluate concurrently
// when workers > 1, with results bit-identical to sequential evaluation.
func (s SPSA) Minimize(rng *rand.Rand, dim int, obj Objective, budget, workers int) (*Result, error) {
	if err := validateArgs(dim, budget, obj); err != nil {
		return nil, err
	}
	a := s.AGain
	if a == 0 {
		a = 0.2
	}
	c := s.CGain
	if c == 0 {
		c = 0.15
	}
	bigA := s.A
	if bigA == 0 {
		bigA = 100
	}
	alpha := s.Alpha
	if alpha == 0 {
		alpha = 0.602
	}
	gamma := s.Gamma
	if gamma == 0 {
		gamma = 0.101
	}
	restarts := s.Restarts
	if restarts <= 0 {
		restarts = 1
	}

	tr := newTracker(obj)
	perRestart := budget / restarts
	theta := make([]float64, dim)
	plus := make([]float64, dim)
	minus := make([]float64, dim)
	delta := make([]float64, dim)
	pair := [][]float64{plus, minus}
	pairVals := make([]float64, 2)
	for r := 0; r < restarts && tr.evals < budget; r++ {
		for i := range theta {
			theta[i] = rng.Float64()
		}
		tr.evaluate(theta)
		// Two evaluations per iteration plus one final evaluation.
		iters := (perRestart - 2) / 2
		for k := 1; k <= iters && tr.evals+2 <= budget; k++ {
			ak := a / math.Pow(bigA+float64(k), alpha)
			ck := c / math.Pow(float64(k), gamma)
			for i := range delta {
				if rng.Float64() < 0.5 {
					delta[i] = 1
				} else {
					delta[i] = -1
				}
				plus[i] = theta[i] + ck*delta[i]
				minus[i] = theta[i] - ck*delta[i]
			}
			clamp01(plus)
			clamp01(minus)
			tr.evaluateBatch(pair, pairVals, workers)
			yPlus, yMinus := pairVals[0], pairVals[1]
			for i := range theta {
				g := (yPlus - yMinus) / (2 * ck * delta[i])
				theta[i] -= ak * g
			}
			clamp01(theta)
		}
		if tr.evals < budget {
			tr.evaluate(theta)
		}
	}
	return tr.result(), nil
}
