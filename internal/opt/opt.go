// Package opt provides the parametric optimizers used by Algorithm 1 of the
// paper to search threshold-strategy parameter spaces: Simultaneous
// Perturbation Stochastic Approximation (SPSA), the Cross-Entropy Method
// (CEM), Differential Evolution (DE), and Bayesian Optimization (BO) with a
// Matérn-5/2 Gaussian process and a lower-confidence-bound acquisition — the
// configurations of Table 8.
//
// All optimizers minimize a (possibly stochastic) objective over the unit
// box [0, 1]^dim and record a best-so-far trace for convergence plots
// (Fig 7).
package opt

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// ErrBadConfig is returned when an optimizer is configured inconsistently.
var ErrBadConfig = errors.New("opt: bad configuration")

// Objective evaluates a parameter vector in [0,1]^dim; smaller is better.
// Evaluations may be stochastic (Monte-Carlo estimates of J_i in eq. (5)).
type Objective func(theta []float64) float64

// TracePoint records the best objective value seen after a number of
// evaluations; used to reproduce the convergence curves of Fig 7.
type TracePoint struct {
	Evaluations int
	Elapsed     time.Duration
	Best        float64
}

// Result is the outcome of a minimization run.
type Result struct {
	// Theta is the best parameter vector found.
	Theta []float64
	// Value is the objective value at Theta as observed during the search.
	Value float64
	// Evaluations is the number of objective calls consumed.
	Evaluations int
	// Elapsed is the total wall-clock duration of the search.
	Elapsed time.Duration
	// Trace holds best-so-far checkpoints.
	Trace []TracePoint
}

// Optimizer minimizes an objective over [0,1]^dim with a fixed budget of
// objective evaluations.
type Optimizer interface {
	// Name identifies the algorithm (e.g. "cem").
	Name() string
	// Minimize runs the search. budget is the maximum number of objective
	// evaluations.
	Minimize(rng *rand.Rand, dim int, obj Objective, budget int) (*Result, error)
}

// tracker accumulates evaluations and the best-so-far trace.
type tracker struct {
	obj       Objective
	evals     int
	start     time.Time
	bestTheta []float64
	bestValue float64
	trace     []TracePoint
}

func newTracker(obj Objective) *tracker {
	return &tracker{obj: obj, start: time.Now(), bestValue: math.Inf(1)}
}

func (t *tracker) evaluate(theta []float64) float64 {
	v := t.obj(theta)
	t.evals++
	if v < t.bestValue {
		t.bestValue = v
		t.bestTheta = append([]float64(nil), theta...)
		t.trace = append(t.trace, TracePoint{
			Evaluations: t.evals,
			Elapsed:     time.Since(t.start),
			Best:        v,
		})
	}
	return v
}

func (t *tracker) result() *Result {
	return &Result{
		Theta:       t.bestTheta,
		Value:       t.bestValue,
		Evaluations: t.evals,
		Elapsed:     time.Since(t.start),
		Trace:       t.trace,
	}
}

func clamp01(theta []float64) {
	for i, v := range theta {
		if v < 0 {
			theta[i] = 0
		} else if v > 1 {
			theta[i] = 1
		}
	}
}

func validateArgs(dim, budget int, obj Objective) error {
	if dim < 1 {
		return fmt.Errorf("%w: dim = %d", ErrBadConfig, dim)
	}
	if budget < 2 {
		return fmt.Errorf("%w: budget = %d", ErrBadConfig, budget)
	}
	if obj == nil {
		return fmt.Errorf("%w: nil objective", ErrBadConfig)
	}
	return nil
}

// ByName resolves an optimizer by its method name — the single mapping
// shared by the solve facade and the learned strategy registrations, so a
// new optimizer becomes available everywhere by extending this table.
func ByName(name string) (Optimizer, bool) {
	switch name {
	case "cem":
		return CEM{}, true
	case "de":
		return DE{}, true
	case "bo":
		return BO{}, true
	case "spsa":
		return SPSA{}, true
	case "random":
		return RandomSearch{}, true
	}
	return nil, false
}

// RandomSearch is a uniform-sampling baseline optimizer. It is not part of
// the paper's Table 2 but serves as a sanity floor in tests and ablations.
type RandomSearch struct{}

// Name implements Optimizer.
func (RandomSearch) Name() string { return "random" }

// Minimize implements Optimizer.
func (RandomSearch) Minimize(rng *rand.Rand, dim int, obj Objective, budget int) (*Result, error) {
	if err := validateArgs(dim, budget, obj); err != nil {
		return nil, err
	}
	tr := newTracker(obj)
	theta := make([]float64, dim)
	for e := 0; e < budget; e++ {
		for i := range theta {
			theta[i] = rng.Float64()
		}
		tr.evaluate(theta)
	}
	return tr.result(), nil
}
