// Package opt provides the parametric optimizers used by Algorithm 1 of the
// paper to search threshold-strategy parameter spaces: Simultaneous
// Perturbation Stochastic Approximation (SPSA), the Cross-Entropy Method
// (CEM), Differential Evolution (DE), and Bayesian Optimization (BO) with a
// Matérn-5/2 Gaussian process and a lower-confidence-bound acquisition — the
// configurations of Table 8.
//
// All optimizers minimize a (possibly stochastic) objective over the unit
// box [0, 1]^dim and record a best-so-far trace for convergence plots
// (Fig 7).
package opt

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBadConfig is returned when an optimizer is configured inconsistently.
var ErrBadConfig = errors.New("opt: bad configuration")

// Objective evaluates a parameter vector in [0,1]^dim; smaller is better.
// Evaluations may be stochastic (Monte-Carlo estimates of J_i in eq. (5)).
type Objective func(theta []float64) float64

// TracePoint records the best objective value seen after a number of
// evaluations; used to reproduce the convergence curves of Fig 7.
type TracePoint struct {
	Evaluations int
	Elapsed     time.Duration
	Best        float64
}

// Result is the outcome of a minimization run.
type Result struct {
	// Theta is the best parameter vector found.
	Theta []float64
	// Value is the objective value at Theta as observed during the search.
	Value float64
	// Evaluations is the number of objective calls consumed.
	Evaluations int
	// Elapsed is the total wall-clock duration of the search.
	Elapsed time.Duration
	// Trace holds best-so-far checkpoints.
	Trace []TracePoint
}

// Optimizer minimizes an objective over [0,1]^dim with a fixed budget of
// objective evaluations.
type Optimizer interface {
	// Name identifies the algorithm (e.g. "cem").
	Name() string
	// Minimize runs the search. budget is the maximum number of objective
	// evaluations; workers bounds how many candidates of one generation are
	// evaluated concurrently (values <= 1 run fully sequentially).
	//
	// Determinism contract: every optimizer draws its candidates from rng
	// in a fixed order that never depends on workers, and folds evaluation
	// results (the evaluation counter, the best-so-far trace, population
	// updates) in candidate order — so Theta, Value, Evaluations and the
	// Trace are bit-identical for every workers value. With workers > 1 the
	// objective must be safe for concurrent calls and independent of
	// evaluation order; objectives that derive a private rng stream per
	// evaluation (recovery.Algorithm1's Monte-Carlo objective) satisfy
	// both, objectives that share one mutable rng do not.
	Minimize(rng *rand.Rand, dim int, obj Objective, budget, workers int) (*Result, error)
}

// Instrument wraps an objective so every evaluation reports its value to
// onEval. The wrapper is a pure observer and preserves the determinism
// contract: it changes no draw, no fold order and no result — it only sees
// values after they are computed. Under workers > 1 evaluations run
// concurrently, so onEval must be safe for concurrent use (the telemetry
// training sinks are). A nil onEval returns obj unchanged.
func Instrument(obj Objective, onEval func(v float64)) Objective {
	if onEval == nil {
		return obj
	}
	return func(theta []float64) float64 {
		v := obj(theta)
		onEval(v)
		return v
	}
}

// tracker accumulates evaluations and the best-so-far trace.
type tracker struct {
	obj       Objective
	evals     int
	start     time.Time
	bestTheta []float64
	bestValue float64
	trace     []TracePoint
}

func newTracker(obj Objective) *tracker {
	return &tracker{obj: obj, start: time.Now(), bestValue: math.Inf(1)}
}

func (t *tracker) evaluate(theta []float64) float64 {
	v := t.obj(theta)
	t.fold(theta, v)
	return v
}

// fold accounts one evaluation result: it advances the evaluation counter
// and updates the best-so-far trace. Batch evaluation folds in candidate
// order, which is what keeps parallel results bit-identical to sequential
// ones (TracePoint.Elapsed is wall-clock and exempt from that contract).
func (t *tracker) fold(theta []float64, v float64) {
	t.evals++
	if v < t.bestValue {
		t.bestValue = v
		t.bestTheta = append([]float64(nil), theta...)
		t.trace = append(t.trace, TracePoint{
			Evaluations: t.evals,
			Elapsed:     time.Since(t.start),
			Best:        v,
		})
	}
}

// evaluateBatch evaluates one generation's candidates, writing values into
// out (sized to len(thetas)) and folding them into the tracker in candidate
// order. workers bounds the concurrent objective calls; any value yields
// bit-identical tracker state because candidates are pre-drawn and the fold
// is sequential in index order.
func (t *tracker) evaluateBatch(thetas [][]float64, out []float64, workers int) {
	if workers > len(thetas) {
		workers = len(thetas)
	}
	if workers <= 1 {
		for i, theta := range thetas {
			out[i] = t.evaluate(theta)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(thetas) {
					return
				}
				out[i] = t.obj(thetas[i])
			}
		}()
	}
	wg.Wait()
	for i, theta := range thetas {
		t.fold(theta, out[i])
	}
}

func (t *tracker) result() *Result {
	return &Result{
		Theta:       t.bestTheta,
		Value:       t.bestValue,
		Evaluations: t.evals,
		Elapsed:     time.Since(t.start),
		Trace:       t.trace,
	}
}

func clamp01(theta []float64) {
	for i, v := range theta {
		if v < 0 {
			theta[i] = 0
		} else if v > 1 {
			theta[i] = 1
		}
	}
}

func validateArgs(dim, budget int, obj Objective) error {
	if dim < 1 {
		return fmt.Errorf("%w: dim = %d", ErrBadConfig, dim)
	}
	if budget < 2 {
		return fmt.Errorf("%w: budget = %d", ErrBadConfig, budget)
	}
	if obj == nil {
		return fmt.Errorf("%w: nil objective", ErrBadConfig)
	}
	return nil
}

// ByName resolves an optimizer by its method name — the single mapping
// shared by the solve facade and the learned strategy registrations, so a
// new optimizer becomes available everywhere by extending this table.
func ByName(name string) (Optimizer, bool) {
	switch name {
	case "cem":
		return CEM{}, true
	case "de":
		return DE{}, true
	case "bo":
		return BO{}, true
	case "spsa":
		return SPSA{}, true
	case "random":
		return RandomSearch{}, true
	}
	return nil, false
}

// RandomSearch is a uniform-sampling baseline optimizer. It is not part of
// the paper's Table 2 but serves as a sanity floor in tests and ablations.
type RandomSearch struct{}

// Name implements Optimizer.
func (RandomSearch) Name() string { return "random" }

// randomSearchChunk is the generation size of RandomSearch: candidates are
// drawn and evaluated in fixed-size chunks, so the rng draw order — and
// therefore the result — is independent of the workers value.
const randomSearchChunk = 64

// Minimize implements Optimizer.
func (RandomSearch) Minimize(rng *rand.Rand, dim int, obj Objective, budget, workers int) (*Result, error) {
	if err := validateArgs(dim, budget, obj); err != nil {
		return nil, err
	}
	tr := newTracker(obj)
	thetas := make([][]float64, randomSearchChunk)
	for i := range thetas {
		thetas[i] = make([]float64, dim)
	}
	values := make([]float64, randomSearchChunk)
	for tr.evals < budget {
		n := budget - tr.evals
		if n > randomSearchChunk {
			n = randomSearchChunk
		}
		for s := 0; s < n; s++ {
			for i := range thetas[s] {
				thetas[s][i] = rng.Float64()
			}
		}
		tr.evaluateBatch(thetas[:n], values[:n], workers)
	}
	return tr.result(), nil
}
