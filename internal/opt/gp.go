package opt

import (
	"errors"
	"fmt"
	"math"
)

// errNotPSD is returned when the kernel matrix cannot be factorized.
var errNotPSD = errors.New("opt: kernel matrix not positive definite")

// gp is an exact Gaussian-process regressor with a Matérn-5/2 kernel, the
// surrogate model of the paper's Bayesian-optimization baseline (Table 8:
// Matérn 2.5 kernel, LCB acquisition).
type gp struct {
	lengthScale float64
	signalVar   float64
	noiseVar    float64

	xs    [][]float64
	ys    []float64
	yMean float64
	chol  [][]float64 // lower-triangular Cholesky factor of K + noise I
	alpha []float64   // (K + noise I)^{-1} (y - mean)
}

func newGP(lengthScale, signalVar, noiseVar float64) *gp {
	return &gp{lengthScale: lengthScale, signalVar: signalVar, noiseVar: noiseVar}
}

// matern52 evaluates the Matérn-5/2 kernel.
func (g *gp) matern52(a, b []float64) float64 {
	d2 := 0.0
	for i := range a {
		diff := a[i] - b[i]
		d2 += diff * diff
	}
	r := math.Sqrt(d2) / g.lengthScale
	s5 := math.Sqrt(5) * r
	return g.signalVar * (1 + s5 + 5*r*r/3) * math.Exp(-s5)
}

// fit conditions the GP on the given observations.
func (g *gp) fit(xs [][]float64, ys []float64) error {
	n := len(xs)
	if n == 0 || len(ys) != n {
		return fmt.Errorf("opt: gp fit with %d xs, %d ys", n, len(ys))
	}
	g.xs = xs
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= float64(n)
	g.yMean = mean
	g.ys = ys

	k := make([][]float64, n)
	for i := 0; i < n; i++ {
		k[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := g.matern52(xs[i], xs[j])
			k[i][j] = v
			k[j][i] = v
		}
		k[i][i] += g.noiseVar
	}
	chol, err := cholesky(k)
	if err != nil {
		// Add jitter and retry once.
		for i := 0; i < n; i++ {
			k[i][i] += 1e-6
		}
		chol, err = cholesky(k)
		if err != nil {
			return err
		}
	}
	g.chol = chol

	centered := make([]float64, n)
	for i, y := range ys {
		centered[i] = y - mean
	}
	g.alpha = cholSolve(chol, centered)
	return nil
}

// predict returns the posterior mean and variance at x.
func (g *gp) predict(x []float64) (mean, variance float64) {
	n := len(g.xs)
	kStar := make([]float64, n)
	for i := 0; i < n; i++ {
		kStar[i] = g.matern52(x, g.xs[i])
	}
	mean = g.yMean
	for i := 0; i < n; i++ {
		mean += kStar[i] * g.alpha[i]
	}
	// v = L^{-1} k*; variance = k(x,x) - v.v.
	v := forwardSolve(g.chol, kStar)
	variance = g.matern52(x, x)
	for _, vi := range v {
		variance -= vi * vi
	}
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// cholesky returns the lower-triangular factor L with A = L L^T.
func cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, errNotPSD
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l, nil
}

// forwardSolve solves L x = b for lower-triangular L.
func forwardSolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		v := b[i]
		for j := 0; j < i; j++ {
			v -= l[i][j] * x[j]
		}
		x[i] = v / l[i][i]
	}
	return x
}

// backSolve solves L^T x = b for lower-triangular L.
func backSolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		v := b[i]
		for j := i + 1; j < n; j++ {
			v -= l[j][i] * x[j]
		}
		x[i] = v / l[i][i]
	}
	return x
}

// cholSolve solves (L L^T) x = b.
func cholSolve(l [][]float64, b []float64) []float64 {
	return backSolve(l, forwardSolve(l, b))
}
