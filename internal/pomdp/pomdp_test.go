package pomdp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// tigerModel returns the classic two-state tiger POMDP expressed as costs
// (negated rewards), a standard correctness fixture for POMDP solvers.
func tigerModel() *Model {
	// States: 0 = tiger-left, 1 = tiger-right.
	// Actions: 0 = listen (cost 1), 1 = open-left, 2 = open-right.
	// Opening the tiger door costs 100, the other door -10.
	listenT := [][]float64{{1, 0}, {0, 1}}
	resetT := [][]float64{{0.5, 0.5}, {0.5, 0.5}}
	return &Model{
		NumStates:  2,
		NumActions: 3,
		NumObs:     2,
		T:          [][][]float64{listenT, resetT, resetT},
		// Observations: hear-left/hear-right, 85% accurate after listening.
		Z: [][]float64{{0.85, 0.15}, {0.15, 0.85}},
		C: [][]float64{
			{1, 100, -10},
			{1, -10, 100},
		},
	}
}

func TestModelValidate(t *testing.T) {
	m := tigerModel()
	if err := m.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := tigerModel()
	bad.T[0][0][0] = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("non-stochastic T should fail")
	}
	bad2 := tigerModel()
	bad2.Z[0] = []float64{0.5, 0.4}
	if err := bad2.Validate(); err == nil {
		t.Error("non-stochastic Z should fail")
	}
	bad3 := tigerModel()
	bad3.C = bad3.C[:1]
	if err := bad3.Validate(); err == nil {
		t.Error("wrong cost dimensions should fail")
	}
	empty := &Model{}
	if err := empty.Validate(); err == nil {
		t.Error("empty model should fail")
	}
}

func TestUpdateBeliefBayes(t *testing.T) {
	m := tigerModel()
	b := []float64{0.5, 0.5}
	// Listening and hearing "left" shifts belief toward tiger-left 85/15.
	post, norm, err := m.UpdateBelief(b, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(post[0]-0.85) > 1e-12 {
		t.Errorf("posterior = %v, want 0.85 on tiger-left", post)
	}
	if math.Abs(norm-0.5) > 1e-12 {
		t.Errorf("normalizer = %v, want 0.5", norm)
	}
	// Two consistent observations compound the evidence.
	post2, _, err := m.UpdateBelief(post, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.85 * 0.85 / (0.85*0.85 + 0.15*0.15)
	if math.Abs(post2[0]-want) > 1e-12 {
		t.Errorf("posterior after two obs = %v, want %v", post2[0], want)
	}
}

func TestUpdateBeliefValidation(t *testing.T) {
	m := tigerModel()
	if _, _, err := m.UpdateBelief([]float64{1}, 0, 0); err == nil {
		t.Error("wrong belief length should fail")
	}
	if _, _, err := m.UpdateBelief([]float64{0.5, 0.5}, 9, 0); err == nil {
		t.Error("bad action should fail")
	}
	if _, _, err := m.UpdateBelief([]float64{0.5, 0.5}, 0, 9); err == nil {
		t.Error("bad observation should fail")
	}
}

// Property: posterior beliefs are valid distributions and the observation
// normalizers sum to one over all observations.
func TestBeliefUpdateProperty(t *testing.T) {
	m := tigerModel()
	f := func(raw uint16, act uint8) bool {
		b0 := float64(raw) / 65535
		b := []float64{b0, 1 - b0}
		a := int(act) % m.NumActions
		total := 0.0
		for o := 0; o < m.NumObs; o++ {
			post, norm, err := m.UpdateBelief(b, a, o)
			if err != nil {
				return false
			}
			sum := 0.0
			for _, v := range post {
				if v < -1e-12 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
			total += norm
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestValueAtPicksMinimum(t *testing.T) {
	vs := []AlphaVector{
		{Values: []float64{0, 10}, Action: 1},
		{Values: []float64{10, 0}, Action: 2},
		{Values: []float64{4, 4}, Action: 0},
	}
	v, a := ValueAt(vs, []float64{1, 0})
	if v != 0 || a != 1 {
		t.Errorf("ValueAt(e0) = %v/%d, want 0/action 1", v, a)
	}
	v, a = ValueAt(vs, []float64{0.5, 0.5})
	if v != 4 || a != 0 {
		t.Errorf("ValueAt(mid) = %v/%d, want 4/action 0", v, a)
	}
}

func TestPruneLPRemovesDominated(t *testing.T) {
	vs := []AlphaVector{
		{Values: []float64{0, 10}, Action: 0},
		{Values: []float64{10, 0}, Action: 1},
		{Values: []float64{6, 6}, Action: 2},  // dominated by the hull? useful at center: min(0*b... ) at b=0.5: 5 < 6, so dominated.
		{Values: []float64{1, 11}, Action: 3}, // pointwise dominated by vector 0
	}
	kept, err := PruneLP(vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 2 {
		t.Fatalf("kept %d vectors, want 2: %+v", len(kept), kept)
	}
	for _, v := range kept {
		if v.Action != 0 && v.Action != 1 {
			t.Errorf("unexpected surviving vector %+v", v)
		}
	}
}

func TestPruneLPKeepsUsefulMiddleVector(t *testing.T) {
	vs := []AlphaVector{
		{Values: []float64{0, 10}, Action: 0},
		{Values: []float64{10, 0}, Action: 1},
		{Values: []float64{3, 3}, Action: 2}, // best near the middle
	}
	kept, err := PruneLP(vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 3 {
		t.Fatalf("kept %d vectors, want 3", len(kept))
	}
}

func TestPruneLPSingleton(t *testing.T) {
	vs := []AlphaVector{{Values: []float64{1, 2}, Action: 0}}
	kept, err := PruneLP(vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 1 {
		t.Fatalf("kept %d, want 1", len(kept))
	}
}

// Property: pruning never changes the value function on a belief grid.
func TestPruneLPPreservesValueProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		vs := make([]AlphaVector, n)
		for i := range vs {
			vs[i] = AlphaVector{
				Values: []float64{r.Float64() * 10, r.Float64() * 10},
				Action: i % 2,
			}
		}
		kept, err := PruneLP(vs)
		if err != nil {
			return false
		}
		if len(kept) == 0 || len(kept) > n {
			return false
		}
		for g := 0; g <= 20; g++ {
			b := []float64{float64(g) / 20, 1 - float64(g)/20}
			v0, _ := ValueAt(vs, b)
			v1, _ := ValueAt(kept, b)
			if math.Abs(v0-v1) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIncrementalPruningTigerOneStep(t *testing.T) {
	// With one step to go the optimal tiger policy is: open the low-risk
	// door when confident, otherwise the cheapest action. The value at the
	// uniform belief must equal min(listen=1, open=45) = 1.
	m := tigerModel()
	ip := &IncrementalPruning{}
	stages, err := ip.SolveFiniteHorizon(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, a := ValueAt(stages[1], []float64{0.5, 0.5})
	if math.Abs(v-1) > 1e-9 || a != 0 {
		t.Errorf("V1(uniform) = %v action %d, want 1/listen", v, a)
	}
	// Certain beliefs: opening the safe door yields -10.
	v, a = ValueAt(stages[1], []float64{1, 0})
	if math.Abs(v-(-10)) > 1e-9 || a != 2 {
		t.Errorf("V1(e0) = %v action %d, want -10/open-right", v, a)
	}
}

func TestIncrementalPruningTigerMultiStep(t *testing.T) {
	// Multi-step: listening first must be at least as good as acting
	// immediately, and the value function must be concave-ish piecewise
	// linear (here: min of linear pieces).
	m := tigerModel()
	ip := &IncrementalPruning{}
	stages, err := ip.SolveFiniteHorizon(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	v4, _ := ValueAt(stages[4], []float64{0.5, 0.5})
	v1, _ := ValueAt(stages[1], []float64{0.5, 0.5})
	// More steps cannot make the uniform belief cheaper than acting once…
	// costs accumulate, so V4 >= V1 is NOT required; instead verify the
	// greedy first action at the uniform belief is still to listen.
	_, a := ValueAt(stages[4], []float64{0.5, 0.5})
	if a != 0 {
		t.Errorf("greedy action at uniform = %d, want listen", a)
	}
	_ = v4
	_ = v1
	// Value monotone in belief extremes: certainty is never worse than
	// uncertainty for the same horizon.
	vc, _ := ValueAt(stages[4], []float64{1, 0})
	vu, _ := ValueAt(stages[4], []float64{0.5, 0.5})
	if vc > vu+1e-9 {
		t.Errorf("certain belief value %v worse than uniform %v", vc, vu)
	}
}

func TestIncrementalPruningVectorCap(t *testing.T) {
	m := tigerModel()
	ip := &IncrementalPruning{MaxVectors: 3}
	stages, err := ip.SolveFiniteHorizon(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	for tt, set := range stages {
		if tt > 0 && len(set) > 3 {
			t.Errorf("stage %d has %d vectors, cap 3", tt, len(set))
		}
	}
}

func TestSolveFiniteHorizonValidation(t *testing.T) {
	ip := &IncrementalPruning{}
	if _, err := ip.SolveFiniteHorizon(&Model{}, 3); err == nil {
		t.Error("invalid model should fail")
	}
	if _, err := ip.SolveFiniteHorizon(tigerModel(), 0); err == nil {
		t.Error("horizon 0 should fail")
	}
}

func TestSolveInfiniteDiscountedConverges(t *testing.T) {
	m := tigerModel()
	ip := &IncrementalPruning{Discount: 0.75, MaxVectors: 24}
	vectors, iters, err := ip.SolveInfinite(m, 1e-4, 200)
	if err != nil {
		t.Fatalf("after %d iters: %v", iters, err)
	}
	if len(vectors) == 0 {
		t.Fatal("no vectors")
	}
	// Discounted tiger value at certainty: open safe door forever:
	// -10 + 0.75 * V(uniform-reset)… just require finiteness and the
	// optimal uniform action to be listen.
	_, a := ValueAt(vectors, []float64{0.5, 0.5})
	if a != 0 {
		t.Errorf("uniform greedy action = %d, want listen", a)
	}
}

func TestSampleStepRespectsModel(t *testing.T) {
	m := tigerModel()
	rng := rand.New(rand.NewSource(5))
	// Listening never changes the state.
	for i := 0; i < 100; i++ {
		next, obs, cost := m.SampleStep(rng, 0, 0)
		if next != 0 {
			t.Fatal("listen changed the state")
		}
		if obs < 0 || obs >= m.NumObs {
			t.Fatal("observation out of range")
		}
		if cost != 1 {
			t.Fatalf("listen cost = %v, want 1", cost)
		}
	}
}

func TestObservationProbConsistency(t *testing.T) {
	m := tigerModel()
	b := []float64{0.3, 0.7}
	for a := 0; a < m.NumActions; a++ {
		total := 0.0
		for o := 0; o < m.NumObs; o++ {
			total += m.ObservationProb(b, a, o)
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("action %d: observation probs sum to %v", a, total)
		}
	}
}

func TestExpectedCost(t *testing.T) {
	m := tigerModel()
	got := m.ExpectedCost([]float64{0.5, 0.5}, 1)
	if math.Abs(got-45) > 1e-12 {
		t.Errorf("expected cost = %v, want 45", got)
	}
}

func TestBeliefGridCoverage(t *testing.T) {
	grid := beliefGrid(3, 4)
	// C(4+2, 2) = 15 points.
	if len(grid) != 15 {
		t.Fatalf("grid size = %d, want 15", len(grid))
	}
	for _, b := range grid {
		sum := 0.0
		for _, v := range b {
			if v < 0 {
				t.Fatal("negative belief coordinate")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("grid point sums to %v", sum)
		}
	}
}
