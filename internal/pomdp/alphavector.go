package pomdp

import (
	"fmt"
	"math"

	"tolerance/internal/lp"
)

// AlphaVector is one piece of a piecewise-linear value function (Fig 4).
// Under the cost-minimization convention the value of a belief is the
// minimum over vectors of the inner product:
//
//	V(b) = min_alpha alpha . b.
type AlphaVector struct {
	// Values has one entry per state.
	Values []float64
	// Action is the greedy action associated with this vector.
	Action int
}

// dot returns the inner product of the vector with a belief.
func (v AlphaVector) dot(b []float64) float64 {
	s := 0.0
	for i, x := range v.Values {
		s += x * b[i]
	}
	return s
}

// ValueAt evaluates the piecewise-linear value function at belief b and
// returns the minimizing value and the greedy action.
func ValueAt(vectors []AlphaVector, b []float64) (float64, int) {
	best := math.Inf(1)
	action := 0
	for _, v := range vectors {
		if d := v.dot(b); d < best {
			best = d
			action = v.Action
		}
	}
	return best, action
}

// pointwiseDominates reports whether u is at least as good as w everywhere
// (u <= w componentwise), i.e. w is never needed when u is present.
func pointwiseDominates(u, w AlphaVector) bool {
	for i := range u.Values {
		if u.Values[i] > w.Values[i]+1e-12 {
			return false
		}
	}
	return true
}

// prunePointwise removes vectors that are pointwise dominated by another
// vector in the set, and exact duplicates.
func prunePointwise(vs []AlphaVector) []AlphaVector {
	kept := make([]AlphaVector, 0, len(vs))
outer:
	for i, v := range vs {
		for j, u := range vs {
			if i == j {
				continue
			}
			if pointwiseDominates(u, v) {
				// Break ties by index so exactly one copy of duplicates
				// survives.
				if !pointwiseDominates(v, u) || j < i {
					continue outer
				}
			}
		}
		kept = append(kept, v)
	}
	return kept
}

// witnessLP checks whether candidate v is useful against the set kept: it
// solves
//
//	max d  s.t.  (u - v) . b >= d  for all u in kept,  b in the simplex,
//
// and returns the witness belief where v is strictly better if d > tol.
func witnessLP(v AlphaVector, kept []AlphaVector) ([]float64, bool, error) {
	n := len(v.Values)
	if len(kept) == 0 {
		b := make([]float64, n)
		b[0] = 1
		return b, true, nil
	}
	// Variables: b_0..b_{n-1}, dPlus, dMinus with d = dPlus - dMinus.
	p, err := lp.NewProblem(n + 2)
	if err != nil {
		return nil, false, err
	}
	obj := make([]float64, n+2)
	obj[n] = -1 // maximize d == minimize -d
	obj[n+1] = 1
	if err := p.SetObjective(obj); err != nil {
		return nil, false, err
	}
	// Simplex constraint.
	simplex := make([]float64, n+2)
	for i := 0; i < n; i++ {
		simplex[i] = 1
	}
	if err := p.AddEq(simplex, 1); err != nil {
		return nil, false, err
	}
	// (u - v) . b - d >= 0 for each kept vector.
	for _, u := range kept {
		row := make([]float64, n+2)
		for i := 0; i < n; i++ {
			row[i] = u.Values[i] - v.Values[i]
		}
		row[n] = -1
		row[n+1] = 1
		if err := p.AddGe(row, 0); err != nil {
			return nil, false, err
		}
	}
	// Keep both halves of d bounded so the LP is never unbounded.
	boundPlus := make([]float64, n+2)
	boundPlus[n] = 1
	if err := p.AddLe(boundPlus, 1e6); err != nil {
		return nil, false, err
	}
	boundMinus := make([]float64, n+2)
	boundMinus[n+1] = 1
	if err := p.AddLe(boundMinus, 1e6); err != nil {
		return nil, false, err
	}
	sol, err := p.Solve()
	if err != nil {
		return nil, false, fmt.Errorf("pomdp: witness LP: %w", err)
	}
	d := sol.X[n] - sol.X[n+1]
	witness := make([]float64, n)
	copy(witness, sol.X[:n])
	return witness, d > 1e-9, nil
}

// PruneLP reduces a set of alpha vectors to a minimal useful subset using
// pointwise filtering followed by Lark's algorithm: for each candidate, an
// LP searches for a belief where it beats every kept vector; if one exists,
// the candidate that is best at that witness belief is promoted.
func PruneLP(vs []AlphaVector) ([]AlphaVector, error) {
	vs = prunePointwise(vs)
	if len(vs) <= 1 {
		return vs, nil
	}
	n := len(vs[0].Values)
	var kept []AlphaVector

	// Seed with the best vector at each simplex corner; this both
	// guarantees a non-empty result and removes many candidates cheaply.
	remaining := append([]AlphaVector(nil), vs...)
	for s := 0; s < n; s++ {
		corner := make([]float64, n)
		corner[s] = 1
		best := bestAt(remaining, corner)
		if best >= 0 {
			kept = append(kept, remaining[best])
			remaining = append(remaining[:best], remaining[best+1:]...)
		}
	}
	kept = prunePointwise(kept)

	for len(remaining) > 0 {
		v := remaining[len(remaining)-1]
		witness, useful, err := witnessLP(v, kept)
		if err != nil {
			return nil, err
		}
		if !useful {
			remaining = remaining[:len(remaining)-1]
			continue
		}
		best := bestAt(remaining, witness)
		kept = append(kept, remaining[best])
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return kept, nil
}

// bestAt returns the index of the vector with the smallest value at belief
// b, or -1 for an empty set.
func bestAt(vs []AlphaVector, b []float64) int {
	best := -1
	bestVal := math.Inf(1)
	for i, v := range vs {
		if d := v.dot(b); d < bestVal-1e-12 {
			bestVal = d
			best = i
		}
	}
	return best
}
