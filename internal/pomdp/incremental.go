package pomdp

import (
	"errors"
	"fmt"
	"time"
)

// ErrNotConverged is returned by SolveInfinite when the value function has
// not stabilized within the configured budget — the outcome the paper
// reports for IP at Delta_R = infinity (Table 2, bottom row).
var ErrNotConverged = errors.New("pomdp: incremental pruning did not converge")

// IncrementalPruning is the exact dynamic-programming POMDP solver of
// Cassandra et al. used as the IP baseline in Table 2. Each backup computes
// the cross-sum of observation-conditioned vector sets with LP pruning after
// every pairwise cross-sum.
type IncrementalPruning struct {
	// MaxVectors caps the vector set per backup; when exceeded the solver
	// falls back on keeping the lexicographically best vectors after LP
	// pruning. Zero means unlimited.
	MaxVectors int
	// Discount applied between stages; 1 for the finite-horizon problems
	// (the node POMDP is transient through the crash state).
	Discount float64
	// TimeBudget bounds SolveInfinite; zero means no bound.
	TimeBudget time.Duration
}

// Backup performs one exact DP backup: given the next-stage vector set, it
// returns the current-stage set.
func (ip *IncrementalPruning) Backup(m *Model, next []AlphaVector) ([]AlphaVector, error) {
	gamma := ip.Discount
	if gamma == 0 {
		gamma = 1
	}
	var all []AlphaVector
	for a := 0; a < m.NumActions; a++ {
		// Gamma^{a,o}: project each next-stage vector through (T, Z) and
		// include the action cost split across observations.
		perObs := make([][]AlphaVector, m.NumObs)
		for o := 0; o < m.NumObs; o++ {
			set := make([]AlphaVector, 0, len(next))
			for _, alpha := range next {
				vals := make([]float64, m.NumStates)
				for s := 0; s < m.NumStates; s++ {
					sum := 0.0
					for s2 := 0; s2 < m.NumStates; s2++ {
						sum += m.T[a][s][s2] * m.Z[s2][o] * alpha.Values[s2]
					}
					vals[s] = m.C[s][a]/float64(m.NumObs) + gamma*sum
				}
				set = append(set, AlphaVector{Values: vals, Action: a})
			}
			pruned, err := PruneLP(set)
			if err != nil {
				return nil, fmt.Errorf("pomdp: backup action %d obs %d: %w", a, o, err)
			}
			perObs[o] = pruned
		}
		// Incremental cross-sum with pruning after each pair.
		acc := perObs[0]
		for o := 1; o < m.NumObs; o++ {
			acc = crossSum(acc, perObs[o], a)
			pruned, err := PruneLP(acc)
			if err != nil {
				return nil, fmt.Errorf("pomdp: cross-sum action %d obs %d: %w", a, o, err)
			}
			acc = pruned
			if ip.MaxVectors > 0 && len(acc) > ip.MaxVectors {
				acc = acc[:ip.MaxVectors]
			}
		}
		all = append(all, acc...)
	}
	pruned, err := PruneLP(all)
	if err != nil {
		return nil, fmt.Errorf("pomdp: final prune: %w", err)
	}
	if ip.MaxVectors > 0 && len(pruned) > ip.MaxVectors {
		pruned = pruned[:ip.MaxVectors]
	}
	return pruned, nil
}

func crossSum(a, b []AlphaVector, action int) []AlphaVector {
	out := make([]AlphaVector, 0, len(a)*len(b))
	for _, u := range a {
		for _, v := range b {
			vals := make([]float64, len(u.Values))
			for i := range vals {
				vals[i] = u.Values[i] + v.Values[i]
			}
			out = append(out, AlphaVector{Values: vals, Action: action})
		}
	}
	return out
}

// SolveFiniteHorizon runs horizon backups starting from the zero value
// function and returns the vector sets per stage; index t holds the value
// function with t steps to go (index 0 is the terminal zero function).
func (ip *IncrementalPruning) SolveFiniteHorizon(m *Model, horizon int) ([][]AlphaVector, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if horizon < 1 {
		return nil, fmt.Errorf("pomdp: horizon %d < 1", horizon)
	}
	stages := make([][]AlphaVector, horizon+1)
	stages[0] = []AlphaVector{{Values: make([]float64, m.NumStates), Action: 0}}
	for t := 1; t <= horizon; t++ {
		next, err := ip.Backup(m, stages[t-1])
		if err != nil {
			return nil, err
		}
		stages[t] = next
	}
	return stages, nil
}

// SolveInfinite iterates backups until the value function changes less than
// tol on a belief grid, or until maxIter/TimeBudget is exhausted, in which
// case it returns the current vectors wrapped with ErrNotConverged.
func (ip *IncrementalPruning) SolveInfinite(m *Model, tol float64, maxIter int) ([]AlphaVector, int, error) {
	if err := m.Validate(); err != nil {
		return nil, 0, err
	}
	grid := beliefGrid(m.NumStates, 12)
	current := []AlphaVector{{Values: make([]float64, m.NumStates), Action: 0}}
	start := time.Now()
	for it := 1; it <= maxIter; it++ {
		next, err := ip.Backup(m, current)
		if err != nil {
			return nil, it, err
		}
		diff := 0.0
		for _, b := range grid {
			v0, _ := ValueAt(current, b)
			v1, _ := ValueAt(next, b)
			if d := v1 - v0; d > diff {
				diff = d
			} else if -d > diff {
				diff = -d
			}
		}
		current = next
		if diff < tol {
			return current, it, nil
		}
		if ip.TimeBudget > 0 && time.Since(start) > ip.TimeBudget {
			return current, it, ErrNotConverged
		}
	}
	return current, maxIter, ErrNotConverged
}

// beliefGrid enumerates beliefs on a regular simplex grid with the given
// resolution (number of subdivisions).
func beliefGrid(states, resolution int) [][]float64 {
	var out [][]float64
	point := make([]int, states)
	var rec func(dim, remaining int)
	rec = func(dim, remaining int) {
		if dim == states-1 {
			point[dim] = remaining
			b := make([]float64, states)
			for i, v := range point {
				b[i] = float64(v) / float64(resolution)
			}
			out = append(out, b)
			return
		}
		for v := 0; v <= remaining; v++ {
			point[dim] = v
			rec(dim+1, remaining-v)
		}
	}
	rec(0, resolution)
	return out
}
