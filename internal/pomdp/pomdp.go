// Package pomdp implements finite partially observed Markov decision
// processes with the cost-minimization convention of the paper: belief
// updates (Appendix A), alpha-vector value functions (Fig 4), exact
// finite-horizon backups, and the incremental-pruning solver used as the IP
// baseline in Table 2.
package pomdp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrInvalidModel is returned when a model fails validation.
var ErrInvalidModel = errors.New("pomdp: invalid model")

// Model is a finite POMDP. Transitions are indexed [action][state][next
// state]; observations are emitted by the successor state, Z[next state]
// [observation], matching eq. (3) of the paper; costs are C[state][action].
type Model struct {
	NumStates  int
	NumActions int
	NumObs     int
	// T[a][s][s'] = P[s' | s, a], eq. (1)-(2).
	T [][][]float64
	// Z[s'][o] = P[o | s'], eq. (3).
	Z [][]float64
	// C[s][a] is the immediate cost, eq. (5).
	C [][]float64
}

// Validate checks dimensions and stochasticity of T and Z.
func (m *Model) Validate() error {
	if m.NumStates < 1 || m.NumActions < 1 || m.NumObs < 1 {
		return fmt.Errorf("%w: dimensions %d/%d/%d", ErrInvalidModel,
			m.NumStates, m.NumActions, m.NumObs)
	}
	if len(m.T) != m.NumActions {
		return fmt.Errorf("%w: T has %d actions", ErrInvalidModel, len(m.T))
	}
	for a := range m.T {
		if len(m.T[a]) != m.NumStates {
			return fmt.Errorf("%w: T[%d] has %d states", ErrInvalidModel, a, len(m.T[a]))
		}
		for s := range m.T[a] {
			if len(m.T[a][s]) != m.NumStates {
				return fmt.Errorf("%w: T[%d][%d] has %d entries", ErrInvalidModel, a, s, len(m.T[a][s]))
			}
			sum := 0.0
			for s2, p := range m.T[a][s] {
				if p < 0 || math.IsNaN(p) {
					return fmt.Errorf("%w: T[%d][%d][%d] = %v", ErrInvalidModel, a, s, s2, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				return fmt.Errorf("%w: T[%d][%d] sums to %v", ErrInvalidModel, a, s, sum)
			}
		}
	}
	if len(m.Z) != m.NumStates {
		return fmt.Errorf("%w: Z has %d states", ErrInvalidModel, len(m.Z))
	}
	for s := range m.Z {
		if len(m.Z[s]) != m.NumObs {
			return fmt.Errorf("%w: Z[%d] has %d entries", ErrInvalidModel, s, len(m.Z[s]))
		}
		sum := 0.0
		for o, p := range m.Z[s] {
			if p < 0 || math.IsNaN(p) {
				return fmt.Errorf("%w: Z[%d][%d] = %v", ErrInvalidModel, s, o, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("%w: Z[%d] sums to %v", ErrInvalidModel, s, sum)
		}
	}
	if len(m.C) != m.NumStates {
		return fmt.Errorf("%w: C has %d states", ErrInvalidModel, len(m.C))
	}
	for s := range m.C {
		if len(m.C[s]) != m.NumActions {
			return fmt.Errorf("%w: C[%d] has %d entries", ErrInvalidModel, s, len(m.C[s]))
		}
	}
	return nil
}

// UpdateBelief performs the Bayesian belief update of Appendix A:
//
//	b'(s') ∝ Z(o | s') * sum_s b(s) T[a][s][s'].
//
// It returns the posterior belief and the prior probability of the
// observation P[o | b, a] (the normalizer). If the observation has zero
// probability under the model an error is returned.
func (m *Model) UpdateBelief(b []float64, a, o int) ([]float64, float64, error) {
	if len(b) != m.NumStates {
		return nil, 0, fmt.Errorf("pomdp: belief length %d, want %d", len(b), m.NumStates)
	}
	if a < 0 || a >= m.NumActions || o < 0 || o >= m.NumObs {
		return nil, 0, fmt.Errorf("pomdp: action %d / observation %d out of range", a, o)
	}
	next := make([]float64, m.NumStates)
	norm := 0.0
	for s2 := 0; s2 < m.NumStates; s2++ {
		pred := 0.0
		for s := 0; s < m.NumStates; s++ {
			if b[s] == 0 {
				continue
			}
			pred += b[s] * m.T[a][s][s2]
		}
		v := m.Z[s2][o] * pred
		next[s2] = v
		norm += v
	}
	if norm <= 0 {
		return nil, 0, fmt.Errorf("pomdp: observation %d has zero probability under belief", o)
	}
	for s2 := range next {
		next[s2] /= norm
	}
	return next, norm, nil
}

// ObservationProb returns P[o | b, a] without computing the posterior.
func (m *Model) ObservationProb(b []float64, a, o int) float64 {
	p := 0.0
	for s2 := 0; s2 < m.NumStates; s2++ {
		pred := 0.0
		for s := 0; s < m.NumStates; s++ {
			pred += b[s] * m.T[a][s][s2]
		}
		p += m.Z[s2][o] * pred
	}
	return p
}

// ExpectedCost returns sum_s b(s) C[s][a].
func (m *Model) ExpectedCost(b []float64, a int) float64 {
	c := 0.0
	for s, bs := range b {
		c += bs * m.C[s][a]
	}
	return c
}

// SampleStep draws the successor state, the emitted observation, and the
// incurred cost for taking action a in state s.
func (m *Model) SampleStep(rng *rand.Rand, s, a int) (next, obs int, cost float64) {
	cost = m.C[s][a]
	next = sampleRow(rng, m.T[a][s])
	obs = sampleRow(rng, m.Z[next])
	return next, obs, cost
}

func sampleRow(rng *rand.Rand, row []float64) int {
	u := rng.Float64()
	acc := 0.0
	for i, p := range row {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(row) - 1
}
