package chaos

import (
	"time"

	"tolerance/internal/dist"
	"tolerance/internal/transport"
)

// WrapEndpoint decorates a transport endpoint with the plan's outbound
// fault injection. Receive, Addr and Close pass straight through; every
// Send consults the link's decision stream and either delivers, drops,
// duplicates, defers or fails the frame. A nil plan returns inner
// unchanged, so call sites wrap unconditionally.
//
// Faults are injected on the *sender* side only. Wrapping both ends of a
// link therefore composes (each direction draws from its own stream)
// instead of double-sampling the same frame, and a wrapped endpoint can
// talk to an unwrapped one — the shape of a partial chaos rollout.
func (p *Plan) WrapEndpoint(inner transport.Endpoint) transport.Endpoint {
	if p == nil {
		return inner
	}
	return &endpoint{p: p, inner: inner}
}

type endpoint struct {
	p     *Plan
	inner transport.Endpoint
}

var _ transport.Endpoint = (*endpoint)(nil)

func (e *endpoint) Addr() string                      { return e.inner.Addr() }
func (e *endpoint) Receive() <-chan transport.Message { return e.inner.Receive() }
func (e *endpoint) Close() error                      { return e.inner.Close() }

// Send runs the frame through the fault schedule. The decision order is
// fixed — stall, partition, reset, drop, duplicate, delay, reorder — and
// each stage draws its own SplitMix64 word from the link stream, so a
// stage's outcome never perturbs the draws of later frames.
func (e *endpoint) Send(to string, payload []byte) error {
	p, prof := e.p, &e.p.Profile
	from := e.inner.Addr()
	l := p.link(from, to)
	n := l.n.Add(1) - 1 // this frame's ordinal on the directed link
	p.c.frames.Add(1)

	if p.stalled(from) {
		p.c.stalled.Add(1)
		return nil // a wedged sender neither delivers nor errors
	}
	if p.partitioned(from, to) {
		p.c.partitioned.Add(1)
		return nil // partitions swallow silently, like the real network
	}
	if prof.ResetEvery > 0 && n%uint64(prof.ResetEvery) == uint64(prof.ResetEvery)-1 {
		p.c.resets.Add(1)
		return ErrReset
	}

	w := dist.SplitMix64(l.base + n*dist.GoldenGamma)
	if prof.Drop > 0 && unit(w) < prof.Drop {
		p.c.dropped.Add(1)
		return nil
	}
	w = dist.SplitMix64(w)
	dup := prof.Dup > 0 && unit(w) < prof.Dup
	w = dist.SplitMix64(w)
	if prof.Delay > 0 && unit(w) < prof.Delay {
		w = dist.SplitMix64(w)
		hold := time.Duration(1+w%uint64(max(prof.DelayMS, 1))) * time.Millisecond
		p.c.delayed.Add(1)
		e.defer_(to, payload, hold, dup)
		return nil
	}
	w = dist.SplitMix64(w)
	if prof.Reorder > 0 && unit(w) < prof.Reorder {
		p.c.reordered.Add(1)
		e.defer_(to, payload, time.Millisecond, dup)
		return nil
	}

	p.c.passed.Add(1)
	err := e.inner.Send(to, payload)
	if dup && err == nil {
		p.c.duplicated.Add(1)
		_ = e.inner.Send(to, payload)
	}
	return err
}

// defer_ delivers the frame after the hold, copying the payload because
// the caller may reuse its buffer the moment Send returns. A send racing
// endpoint close just errors inside the timer goroutine, which is the same
// fate an in-flight TCP segment meets.
func (e *endpoint) defer_(to string, payload []byte, hold time.Duration, dup bool) {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	time.AfterFunc(hold, func() {
		if err := e.inner.Send(to, cp); err != nil {
			return
		}
		if dup {
			e.p.c.duplicated.Add(1)
			_ = e.inner.Send(to, cp)
		}
	})
}
