package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tolerance/internal/telemetry"
	"tolerance/internal/transport"
)

// recordingEndpoint captures outbound frames for assertions.
type recordingEndpoint struct {
	addr string
	mu   sync.Mutex
	sent []string
}

func (r *recordingEndpoint) Addr() string                      { return r.addr }
func (r *recordingEndpoint) Receive() <-chan transport.Message { return nil }
func (r *recordingEndpoint) Close() error                      { return nil }
func (r *recordingEndpoint) Send(to string, payload []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sent = append(r.sent, to+":"+string(payload))
	return nil
}

func (r *recordingEndpoint) frames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.sent...)
}

func TestNilPlanIsANoOp(t *testing.T) {
	var p *Plan
	inner := &recordingEndpoint{addr: "a"}
	if got := p.WrapEndpoint(inner); got != transport.Endpoint(inner) {
		t.Fatalf("nil plan should return the inner endpoint unchanged")
	}
	var buf bytes.Buffer
	if got := p.WrapCheckpointSink(&buf); got != (interface{})(&buf) {
		t.Fatalf("nil plan should return the sink unchanged")
	}
}

func TestDecisionStreamIsPureInTheSeed(t *testing.T) {
	// Two plans with the same seed must inject the identical fault pattern
	// over the same traffic; a different seed must diverge.
	pattern := func(seed int64) []string {
		inner := &recordingEndpoint{addr: "w1"}
		ep := NewPlan(catalog["lossy"], seed).WrapEndpoint(inner)
		for i := 0; i < 400; i++ {
			_ = ep.Send("coord", []byte(fmt.Sprintf("frame-%03d", i)))
		}
		time.Sleep(50 * time.Millisecond) // let deferred frames land
		return inner.frames()
	}
	a, b := pattern(7), pattern(7)
	if len(a) != len(b) {
		t.Fatalf("same seed, different delivery counts: %d vs %d", len(a), len(b))
	}
	if len(a) == 400 {
		t.Fatalf("lossy profile delivered all 400 frames — no faults injected")
	}
	other := pattern(8)
	if len(other) == len(a) {
		// Delivery counts can collide; compare the delivered multisets.
		same := true
		for i := range a {
			if a[i] != other[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("seeds 7 and 8 injected the identical fault pattern")
		}
	}
}

func TestDigestCertifiesTheSchedule(t *testing.T) {
	p1, err := NewPlanByName("lossy-partition", 7)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := NewPlanByName("lossy-partition", 7)
	if p1.Digest() != p2.Digest() {
		t.Fatalf("same profile+seed, different digests")
	}
	if d, _ := NewPlanByName("lossy-partition", 8); d.Digest() == p1.Digest() {
		t.Fatalf("different seeds share a digest")
	}
	if d, _ := NewPlanByName("lossy", 7); d.Digest() == p1.Digest() {
		t.Fatalf("different profiles share a digest")
	}
	if p1.Digest32() != uint32(p1.Digest()>>32)^uint32(p1.Digest()) {
		t.Fatalf("Digest32 is not the documented fold")
	}
	if _, err := NewPlanByName("no-such-profile", 1); err == nil {
		t.Fatalf("unknown profile should error")
	}
}

func TestResetEveryInjectsOnSchedule(t *testing.T) {
	inner := &recordingEndpoint{addr: "w1"}
	plan := NewPlan(Profile{Name: "t", ResetEvery: 5}, 1)
	ep := plan.WrapEndpoint(inner)
	var resets int
	for i := 0; i < 20; i++ {
		if err := ep.Send("coord", []byte("x")); errors.Is(err, ErrReset) {
			resets++
		}
	}
	if resets != 4 {
		t.Fatalf("ResetEvery=5 over 20 frames: %d resets, want 4", resets)
	}
	if got := len(inner.frames()); got != 16 {
		t.Fatalf("delivered %d frames, want 16", got)
	}
}

func TestPartitionWindowIsAsymmetricAndHeals(t *testing.T) {
	prof := Profile{
		Name:       "t",
		Partitions: []Partition{{StartMS: 100, DurationMS: 100, Fraction: 1}},
	}
	plan := NewPlan(prof, 1)
	clock := time.Unix(0, 0)
	plan.SetClock(func() time.Time { return clock })

	inner := &recordingEndpoint{addr: "w1"}
	ep := plan.WrapEndpoint(inner)

	_ = ep.Send("coord", []byte("before"))
	clock = clock.Add(150 * time.Millisecond) // inside the window
	_ = ep.Send("coord", []byte("during"))
	clock = clock.Add(100 * time.Millisecond) // healed
	_ = ep.Send("coord", []byte("after"))

	got := inner.frames()
	if len(got) != 2 || got[0] != "coord:before" || got[1] != "coord:after" {
		t.Fatalf("partition window misbehaved: delivered %v", got)
	}
	if n := plan.c.partitioned.Load(); n != 1 {
		t.Fatalf("partitioned counter = %d, want 1", n)
	}

	// Fraction selects dark endpoints purely from the seed: with Fraction
	// 0.5 over many addresses, both dark and lit senders must exist, and
	// the split must be identical across plan instances.
	half := Profile{Name: "t", Partitions: []Partition{{StartMS: 0, DurationMS: 1000, Fraction: 0.5}}}
	darkSet := func(seed int64) (dark, lit int) {
		p := NewPlan(half, seed)
		p.SetClock(func() time.Time { return clock })
		for i := 0; i < 64; i++ {
			if p.dark("partition", 0, fmt.Sprintf("w%d", i), 0.5) {
				dark++
			} else {
				lit++
			}
		}
		return
	}
	d1, l1 := darkSet(7)
	d2, _ := darkSet(7)
	if d1 == 0 || l1 == 0 {
		t.Fatalf("fraction 0.5 selected %d dark / %d lit of 64", d1, l1)
	}
	if d1 != d2 {
		t.Fatalf("dark membership not pure in the seed: %d vs %d", d1, d2)
	}
}

func TestStallSwallowsOutbound(t *testing.T) {
	prof := Profile{Name: "t", Stalls: []Stall{{StartMS: 0, DurationMS: 100, Fraction: 1}}}
	plan := NewPlan(prof, 1)
	clock := time.Unix(0, 0)
	plan.SetClock(func() time.Time { return clock })
	inner := &recordingEndpoint{addr: "r1"}
	ep := plan.WrapEndpoint(inner)
	if err := ep.Send("r2", []byte("x")); err != nil {
		t.Fatalf("stall should swallow, not error: %v", err)
	}
	clock = clock.Add(200 * time.Millisecond)
	_ = ep.Send("r2", []byte("y"))
	if got := inner.frames(); len(got) != 1 || got[0] != "r2:y" {
		t.Fatalf("stall window misbehaved: %v", got)
	}
}

func TestCheckpointSinkTearsAndCorrupts(t *testing.T) {
	plan := NewPlan(Profile{Name: "t", CorruptEvery: 4, TearAt: 2}, 1)
	var buf bytes.Buffer
	w := plan.WrapCheckpointSink(&buf)
	lines := [][]byte{
		[]byte(`{"rec":1}` + "\n"),
		[]byte(`{"rec":2}` + "\n"), // torn: half written, full length reported
		[]byte(`{"rec":3}` + "\n"),
		[]byte(`{"rec":4}` + "\n"), // corrupted: one byte flipped
	}
	for i, l := range lines {
		n, err := w.Write(l)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if n != len(l) {
			t.Fatalf("write %d reported %d bytes, want %d (faults must be silent)", i, n, len(l))
		}
	}
	want := len(lines[0]) + len(lines[1])/2 + len(lines[2]) + len(lines[3])
	if buf.Len() != want {
		t.Fatalf("sink holds %d bytes, want %d", buf.Len(), want)
	}
	if plan.c.ckptTorn.Load() != 1 || plan.c.ckptCorrupt.Load() != 1 {
		t.Fatalf("tear/corrupt counters = %d/%d, want 1/1",
			plan.c.ckptTorn.Load(), plan.c.ckptCorrupt.Load())
	}
	if bytes.Contains(buf.Bytes(), []byte(`{"rec":4}`)) {
		t.Fatalf("record 4 was not corrupted")
	}
}

func TestInstrumentReconciles(t *testing.T) {
	inner := &recordingEndpoint{addr: "w1"}
	plan := NewPlan(catalog["lossy"], 3)
	col := telemetry.New()
	plan.Instrument(col)
	ep := plan.WrapEndpoint(inner)
	for i := 0; i < 500; i++ {
		_ = ep.Send("coord", []byte("x"))
	}
	time.Sleep(50 * time.Millisecond)
	snap := col.Snapshot()
	val := func(name string) int64 {
		v, ok := snap.Counters[name]
		if !ok {
			t.Fatalf("counter %s missing from snapshot", name)
		}
		return v
	}
	frames := val(MetricFrames)
	sum := val(MetricFramesPassed) + val(MetricFramesDropped) + val(MetricFramesDelayed) +
		val(MetricFramesReorder) + val(MetricFramesPart) + val(MetricFramesStalled) + val(MetricResets)
	if frames != 500 || sum != frames {
		t.Fatalf("reconciliation identity broken: frames=%d, bucket sum=%d", frames, sum)
	}
	if digest := snap.Gauges[MetricPlanDigest]; digest != float64(plan.Digest32()) {
		t.Fatalf("plan digest gauge = %v, want %d", digest, plan.Digest32())
	}
}
