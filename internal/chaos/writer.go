package chaos

import "io"

// WrapCheckpointSink decorates the checkpoint writer's record sink with
// the plan's disk faults. The checkpoint pipeline issues exactly one Write
// per record line (the persistent json.Encoder hands over the full line,
// newline included), so the shim's ordinal counter advances one record at
// a time:
//
//   - the TearAt-th record is torn: only its first half reaches the file
//     while the writer is told the whole line landed, so the half-line is
//     glued onto the next record — the on-disk shape of a power cut;
//   - every CorruptEvery-th record has one mid-line byte flipped, the
//     shape of silent media corruption — valid-looking JSON with a wrong
//     value, which only the per-record CRC can catch.
//
// A nil plan (or a profile with no disk faults) returns w unchanged.
func (p *Plan) WrapCheckpointSink(w io.Writer) io.Writer {
	if p == nil || (p.Profile.CorruptEvery <= 0 && p.Profile.TearAt <= 0) {
		return w
	}
	return &faultyWriter{p: p, w: w}
}

type faultyWriter struct {
	p *Plan
	w io.Writer
}

func (f *faultyWriter) Write(b []byte) (int, error) {
	p, prof := f.p, &f.p.Profile
	n := p.ckptN.Add(1) // 1-based record ordinal
	if prof.TearAt > 0 && n == uint64(prof.TearAt) && len(b) > 1 {
		p.c.ckptTorn.Add(1)
		if _, err := f.w.Write(b[:len(b)/2]); err != nil {
			return 0, err
		}
		return len(b), nil // lie about the torn half, like a cut power rail
	}
	if prof.CorruptEvery > 0 && n%uint64(prof.CorruptEvery) == 0 && len(b) > 2 {
		p.c.ckptCorrupt.Add(1)
		cp := make([]byte, len(b))
		copy(cp, b)
		cp[len(cp)/2] ^= 0x02
		return f.w.Write(cp)
	}
	return f.w.Write(b)
}
