// Package chaos is the testbed's deterministic fault-injection plane: a
// seeded FaultPlan that schedules frame drops, duplicates, delays,
// reorders, connection resets, asymmetric partitions with heal times,
// replica stalls, and torn or corrupted checkpoint writes — then certifies
// the whole schedule with an FNV-1a digest, exactly like the attacker
// schedules in internal/emulation.
//
// The plan is wired in as decorators, never as changes to the code under
// test: Plan.WrapEndpoint wraps any transport.Endpoint (the fleet
// coordinator/worker wire and the cluster backend's replica links both
// qualify), and Plan.WrapCheckpointSink wraps the checkpoint writer's
// io.Writer. The determinism contract this plane exists to attack —
// records are a pure function of (suite, index), first write wins — is
// also what makes the acceptance bar meaningful: a chaos run's stdout must
// be byte-identical to a fault-free run's, because every injected fault is
// something the retry/lease/CRC machinery must absorb without changing a
// single record.
//
// Schedule purity. Every per-frame decision (drop, duplicate, delay,
// reorder, reset) is a pure function of (chaos seed, directed link, frame
// ordinal on that link): decision words come from the SplitMix64 stream
//
//	word_k(link, n) = SplitMix64^k(linkBase(link) + n·γ)
//
// with linkBase itself a SplitMix64 hash of the seed and the link name. So
// while wall-clock interleaving decides which frame gets which ordinal,
// the multiset of decisions along any link is fixed by the seed alone, and
// two runs with the same seed and traffic pattern inject the same faults.
// Partition and stall windows are the one wall-clock element: their
// *membership* (which endpoints go dark) is pure in the seed, and only the
// window's position in real time is not — matching how §VIII-A's NETEM
// impairments are configured by schedule but applied by the kernel clock.
package chaos

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tolerance/internal/dist"
	"tolerance/internal/telemetry"
)

// Partition is one scheduled network partition window. StartMS is measured
// from plan arming (the first wrapped Send); after DurationMS the
// partition heals on its own. Fraction of the endpoints (selected by a
// seeded hash, so membership is a pure function of the plan seed) go dark:
// symmetric partitions drop every frame touching a dark endpoint, while
// asymmetric ones drop only frames *sent by* a dark endpoint — its inbound
// traffic still flows, the classic half-open failure.
type Partition struct {
	StartMS    int     `json:"start_ms"`
	DurationMS int     `json:"duration_ms"`
	Fraction   float64 `json:"fraction"`
	Symmetric  bool    `json:"symmetric"`
}

// Stall is one scheduled replica stall window: the selected endpoints stop
// sending (their outbound frames are swallowed) for the duration, emulating
// a wedged process that still holds its sockets.
type Stall struct {
	StartMS    int     `json:"start_ms"`
	DurationMS int     `json:"duration_ms"`
	Fraction   float64 `json:"fraction"`
}

// Profile declares what a chaos plan injects. All probabilities are per
// frame in [0, 1]; Every-style fields are frame or record ordinals (0
// disables). A Profile combined with a seed fully determines the FaultPlan.
type Profile struct {
	Name string `json:"name"`

	// Drop is the per-frame probability of silent loss.
	Drop float64 `json:"drop,omitempty"`
	// Dup is the per-frame probability the frame is delivered twice.
	Dup float64 `json:"dup,omitempty"`
	// Delay is the per-frame probability the frame is held for up to
	// DelayMS milliseconds before delivery.
	Delay float64 `json:"delay,omitempty"`
	// DelayMS bounds the injected hold time per delayed frame.
	DelayMS int `json:"delay_ms,omitempty"`
	// Reorder is the per-frame probability the frame is deferred just long
	// enough (about a millisecond) to overtake its successors on the link.
	Reorder float64 `json:"reorder,omitempty"`
	// ResetEvery injects a connection-reset error on every n-th frame of
	// each directed link: Send returns ErrReset and the frame is not
	// delivered, exercising the caller's redial/retry path.
	ResetEvery int `json:"reset_every,omitempty"`

	// Partitions are the scheduled partition windows.
	Partitions []Partition `json:"partitions,omitempty"`
	// Stalls are the scheduled replica-stall windows.
	Stalls []Stall `json:"stalls,omitempty"`

	// CorruptEvery flips one byte in every n-th checkpoint record write.
	CorruptEvery int `json:"corrupt_every,omitempty"`
	// TearAt tears the n-th checkpoint record write in half: only the first
	// half reaches the file while the writer is told the whole line landed —
	// the signature of a kill or power cut mid-write.
	TearAt int `json:"tear_at,omitempty"`
}

// catalog is the named profile registry backing -chaos-profile.
var catalog = map[string]Profile{
	"lossy": {
		Name: "lossy",
		Drop: 0.05, Dup: 0.02, Delay: 0.05, DelayMS: 5, Reorder: 0.05,
	},
	"lossy-partition": {
		Name: "lossy-partition",
		Drop: 0.05, Dup: 0.05, Delay: 0.05, DelayMS: 5, Reorder: 0.05,
		Partitions: []Partition{{StartMS: 1500, DurationMS: 2000, Fraction: 0.5}},
		TearAt:     7,
	},
	"resets": {
		Name: "resets",
		Drop: 0.02, ResetEvery: 40,
	},
	"stalls": {
		Name:   "stalls",
		Drop:   0.02,
		Stalls: []Stall{{StartMS: 1000, DurationMS: 1500, Fraction: 0.34}},
	},
	"flaky-disk": {
		Name:         "flaky-disk",
		CorruptEvery: 5, TearAt: 3,
	},
}

// Profiles lists the catalog names in sorted order — the valid values for
// -chaos-profile.
func Profiles() []string {
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LookupProfile resolves a catalog profile by name.
func LookupProfile(name string) (Profile, bool) {
	p, ok := catalog[name]
	return p, ok
}

// ErrReset is the injected connection-reset error returned by a wrapped
// endpoint's Send on a scheduled reset frame.
var ErrReset = fmt.Errorf("chaos: injected connection reset")

// planCounters are the plan's own atomic tallies; Instrument mirrors them
// onto a telemetry collector via CounterFunc, so the plan stays usable
// (and countable) with no collector attached.
type planCounters struct {
	frames      atomic.Int64 // Send calls seen by wrapped endpoints
	passed      atomic.Int64 // delivered immediately, unharmed
	dropped     atomic.Int64 // random loss
	duplicated  atomic.Int64 // extra copies delivered (not counted in frames)
	delayed     atomic.Int64 // held for a scheduled delay
	reordered   atomic.Int64 // deferred past successors
	resets      atomic.Int64 // Send calls failed with ErrReset
	partitioned atomic.Int64 // swallowed by a partition window
	stalled     atomic.Int64 // swallowed by a stall window
	ckptCorrupt atomic.Int64 // checkpoint record writes corrupted
	ckptTorn    atomic.Int64 // checkpoint record writes torn
}

// linkState is the per-directed-link decision stream: a pure-function base
// plus the frame ordinal.
type linkState struct {
	base uint64
	n    atomic.Uint64
}

// Plan is an armed fault plan: a Profile bound to a seed, with the live
// per-link decision streams and fault tallies. Construct with NewPlan; a
// nil *Plan is a valid no-op everywhere (wrappers return their argument
// unchanged), so callers thread it unconditionally.
type Plan struct {
	Profile Profile
	Seed    int64

	now   func() time.Time
	epoch time.Time

	mu    sync.Mutex
	links map[string]*linkState

	ckptN atomic.Uint64
	c     planCounters
}

// NewPlan arms a fault plan for the profile under the seed. The partition
// and stall clocks start now.
func NewPlan(profile Profile, seed int64) *Plan {
	p := &Plan{
		Profile: profile,
		Seed:    seed,
		now:     time.Now,
		links:   make(map[string]*linkState),
	}
	p.epoch = p.now()
	return p
}

// NewPlanByName arms a catalog profile; it errors on an unknown name,
// listing the catalog.
func NewPlanByName(name string, seed int64) (*Plan, error) {
	prof, ok := LookupProfile(name)
	if !ok {
		return nil, fmt.Errorf("chaos: unknown profile %q (have %v)", name, Profiles())
	}
	return NewPlan(prof, seed), nil
}

// SetClock replaces the wall clock driving partition and stall windows and
// resets their epoch — test hook for exercising window logic without
// sleeping.
func (p *Plan) SetClock(now func() time.Time) {
	p.now = now
	p.epoch = now()
}

// Digest is the FNV-1a/64 certificate of the full fault schedule: every
// per-frame decision stream and every window is a pure function of what it
// hashes (the canonical profile JSON and the seed), so two processes
// agreeing on the digest are provably injecting from the same plan.
func (p *Plan) Digest() uint64 {
	doc, err := json.Marshal(struct {
		Profile Profile `json:"profile"`
		Seed    int64   `json:"seed"`
	}{p.Profile, p.Seed})
	if err != nil {
		return 0
	}
	h := fnv.New64a()
	h.Write(doc)
	return h.Sum64()
}

// Digest32 folds the schedule digest to 32 bits for exact representation
// in float64 telemetry gauges and JSON manifests (a raw uint64 would lose
// precision past 2^53).
func (p *Plan) Digest32() uint32 {
	d := p.Digest()
	return uint32(d>>32) ^ uint32(d)
}

// Describe is the one-line plan summary for logs and -chaos-describe.
func (p *Plan) Describe() string {
	return fmt.Sprintf("chaos: profile %s seed %d digest %08x", p.Profile.Name, p.Seed, p.Digest32())
}

// The chaos.* metric names. The frame counters obey the reconciliation
// identity
//
//	chaos.frames = chaos.frames_passed + chaos.frames_dropped
//	             + chaos.frames_delayed + chaos.frames_reordered
//	             + chaos.frames_partitioned + chaos.frames_stalled
//	             + chaos.resets
//
// (duplicates are extra deliveries on top, counted separately), which the
// chaos-matrix CI job asserts against the manifest.
const (
	MetricFrames        = "chaos.frames"
	MetricFramesPassed  = "chaos.frames_passed"
	MetricFramesDropped = "chaos.frames_dropped"
	MetricFramesDup     = "chaos.frames_duplicated"
	MetricFramesDelayed = "chaos.frames_delayed"
	MetricFramesReorder = "chaos.frames_reordered"
	MetricResets        = "chaos.resets"
	MetricFramesPart    = "chaos.frames_partitioned"
	MetricFramesStalled = "chaos.frames_stalled"
	MetricCkptCorrupted = "chaos.ckpt_corrupted"
	MetricCkptTorn      = "chaos.ckpt_torn"
	MetricPlanDigest    = "chaos.plan_digest"
)

// Instrument mirrors the plan's tallies onto the collector as chaos.*
// counters plus the chaos.plan_digest gauge. Pure observer, like every
// other Instrument in this repo: the injected faults are identical with or
// without it.
func (p *Plan) Instrument(col *telemetry.Collector) {
	if p == nil || col == nil {
		return
	}
	col.CounterFunc(MetricFrames, p.c.frames.Load)
	col.CounterFunc(MetricFramesPassed, p.c.passed.Load)
	col.CounterFunc(MetricFramesDropped, p.c.dropped.Load)
	col.CounterFunc(MetricFramesDup, p.c.duplicated.Load)
	col.CounterFunc(MetricFramesDelayed, p.c.delayed.Load)
	col.CounterFunc(MetricFramesReorder, p.c.reordered.Load)
	col.CounterFunc(MetricResets, p.c.resets.Load)
	col.CounterFunc(MetricFramesPart, p.c.partitioned.Load)
	col.CounterFunc(MetricFramesStalled, p.c.stalled.Load)
	col.CounterFunc(MetricCkptCorrupted, p.c.ckptCorrupt.Load)
	col.CounterFunc(MetricCkptTorn, p.c.ckptTorn.Load)
	col.Gauge(MetricPlanDigest).Set(float64(p.Digest32()))
}

// fnv1a hashes a string with FNV-1a/64 — the same mix the fleet and
// cluster backend use for their schedule digests.
func fnv1a(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// link returns (creating on first use) the decision stream for the
// directed link from→to.
func (p *Plan) link(from, to string) *linkState {
	key := from + "\x00" + to
	p.mu.Lock()
	defer p.mu.Unlock()
	if l, ok := p.links[key]; ok {
		return l
	}
	l := &linkState{base: dist.SplitMix64(uint64(p.Seed)*dist.GoldenGamma ^ fnv1a(key))}
	p.links[key] = l
	return l
}

// unit converts a SplitMix64 word to a uniform in [0, 1).
func unit(w uint64) float64 { return float64(w>>11) / (1 << 53) }

// dark reports whether the seeded hash places addr inside the window's
// selected fraction. kind and idx domain-separate the draw so each window
// selects independently.
func (p *Plan) dark(kind string, idx int, addr string, fraction float64) bool {
	if fraction <= 0 {
		return false
	}
	if fraction >= 1 {
		return true
	}
	w := dist.SplitMix64(uint64(p.Seed)*dist.GoldenGamma ^ fnv1a(fmt.Sprintf("%s\x00%d\x00%s", kind, idx, addr)))
	return unit(w) < fraction
}

// windowActive reports whether the window [startMS, startMS+durationMS) is
// open at the plan's current clock.
func (p *Plan) windowActive(startMS, durationMS int) bool {
	el := p.now().Sub(p.epoch)
	start := time.Duration(startMS) * time.Millisecond
	return el >= start && el < start+time.Duration(durationMS)*time.Millisecond
}

// partitioned reports whether a frame from→to is swallowed by an active
// partition window.
func (p *Plan) partitioned(from, to string) bool {
	for i, part := range p.Profile.Partitions {
		if !p.windowActive(part.StartMS, part.DurationMS) {
			continue
		}
		if p.dark("partition", i, from, part.Fraction) {
			return true // sender is dark: outbound blocked (the asymmetric half)
		}
		if part.Symmetric && p.dark("partition", i, to, part.Fraction) {
			return true
		}
	}
	return false
}

// stalled reports whether the sender is inside an active stall window.
func (p *Plan) stalled(from string) bool {
	for i, st := range p.Profile.Stalls {
		if p.windowActive(st.StartMS, st.DurationMS) && p.dark("stall", i, from, st.Fraction) {
			return true
		}
	}
	return false
}
