package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMLPValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewMLP(rng, ReLU, 2); err == nil {
		t.Error("single layer should fail")
	}
	if _, err := NewMLP(rng, ReLU, 2, 0, 1); err == nil {
		t.Error("zero-size layer should fail")
	}
	if _, err := NewMLP(rng, Activation(0), 2, 3, 1); err == nil {
		t.Error("unknown activation should fail")
	}
	m, err := NewMLP(rng, Tanh, 2, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.InputSize() != 2 || m.OutputSize() != 3 || m.NumLayers() != 2 {
		t.Errorf("shape accessors wrong: %d/%d/%d", m.InputSize(), m.OutputSize(), m.NumLayers())
	}
}

func TestForwardDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := NewMLP(rng, ReLU, 3, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, -0.5, 0.9}
	y1 := m.Forward(x)
	y2 := m.Forward(x)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatal("forward is not deterministic")
		}
	}
	if len(y1) != 2 {
		t.Fatalf("output size %d, want 2", len(y1))
	}
}

// numericalGrad estimates dLoss/dParam by central differences for a scalar
// quadratic loss against a fixed target.
func numericalGrad(m *MLP, x []float64, target float64, param *float64) float64 {
	const h = 1e-6
	orig := *param
	*param = orig + h
	up := m.Forward(x)[0]
	*param = orig - h
	down := m.Forward(x)[0]
	*param = orig
	lossUp := 0.5 * (up - target) * (up - target)
	lossDown := 0.5 * (down - target) * (down - target)
	return (lossUp - lossDown) / (2 * h)
}

func TestBackwardMatchesNumericalGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := NewMLP(rng, Tanh, 2, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.7}
	target := 0.25

	c := m.ForwardCache(x)
	out := c.Output()[0]
	g := m.NewGrads()
	// dLoss/dOut for L = 0.5*(out-target)^2.
	m.Backward(c, []float64{out - target}, g)

	// Check several weights in both layers.
	for l := 0; l < 2; l++ {
		for _, idx := range []int{0, 1, len(m.w[l]) - 1} {
			want := numericalGrad(m, x, target, &m.w[l][idx])
			got := g.w[l][idx]
			if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
				t.Errorf("layer %d w[%d]: grad %v, want %v", l, idx, got, want)
			}
		}
		want := numericalGrad(m, x, target, &m.b[l][0])
		got := g.b[l][0]
		if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("layer %d bias: grad %v, want %v", l, got, want)
		}
	}
}

func TestBackwardReLUMatchesNumericalGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, err := NewMLP(rng, ReLU, 2, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.8, 0.2}
	target := -0.5
	c := m.ForwardCache(x)
	g := m.NewGrads()
	m.Backward(c, []float64{c.Output()[0] - target}, g)
	for _, idx := range []int{0, 3, len(m.w[0]) - 1} {
		want := numericalGrad(m, x, target, &m.w[0][idx])
		if math.Abs(g.w[0][idx]-want) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("relu w[0][%d]: grad %v, want %v", idx, g.w[0][idx], want)
		}
	}
}

func TestAdamLearnsRegression(t *testing.T) {
	// Fit y = 2x - 1 with a small net.
	rng := rand.New(rand.NewSource(4))
	m, err := NewMLP(rng, Tanh, 1, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	adam := &Adam{LR: 0.01}
	g := m.NewGrads()
	for epoch := 0; epoch < 600; epoch++ {
		g.Zero()
		loss := 0.0
		const n = 16
		for i := 0; i < n; i++ {
			x := rng.Float64()*2 - 1
			target := 2*x - 1
			c := m.ForwardCache([]float64{x})
			out := c.Output()[0]
			loss += 0.5 * (out - target) * (out - target)
			m.Backward(c, []float64{out - target}, g)
		}
		if err := adam.Step(m, g, n); err != nil {
			t.Fatal(err)
		}
	}
	// Evaluate fit.
	maxErr := 0.0
	for _, x := range []float64{-0.9, -0.5, 0, 0.5, 0.9} {
		got := m.Forward([]float64{x})[0]
		want := 2*x - 1
		if e := math.Abs(got - want); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.1 {
		t.Errorf("regression max error %v, want < 0.1", maxErr)
	}
}

func TestAdamRejectsForeignNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m1, _ := NewMLP(rng, ReLU, 1, 4, 1)
	m2, _ := NewMLP(rng, ReLU, 1, 4, 1)
	adam := &Adam{LR: 0.01}
	if err := adam.Step(m1, m1.NewGrads(), 1); err != nil {
		t.Fatal(err)
	}
	if err := adam.Step(m2, m2.NewGrads(), 1); err == nil {
		t.Error("Adam bound to m1 should reject m2")
	}
	if err := adam.Step(m1, m1.NewGrads(), 0); err == nil {
		t.Error("zero scale should fail")
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax([]float64{0, 0})
	if math.Abs(p[0]-0.5) > 1e-12 || math.Abs(p[1]-0.5) > 1e-12 {
		t.Errorf("softmax(0,0) = %v", p)
	}
	// Large logits must not overflow.
	p = Softmax([]float64{1000, 999})
	if math.IsNaN(p[0]) || p[0] <= p[1] {
		t.Errorf("softmax overflow: %v", p)
	}
}

// Property: softmax outputs a valid probability vector for arbitrary logits.
func TestSoftmaxProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		// Clamp to avoid Inf inputs from quick.
		cl := func(v float64) float64 { return math.Max(-1e6, math.Min(1e6, v)) }
		p := Softmax([]float64{cl(a), cl(b), cl(c)})
		sum := 0.0
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
