// Package nn implements the small dense neural networks and the Adam
// optimizer used by the PPO baseline of Table 2 (4 layers of 64 ReLU units,
// Table 8). It is a minimal, allocation-conscious implementation sufficient
// for the low-dimensional policy/value networks of Problem 1.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrBadShape is returned when network dimensions are inconsistent.
var ErrBadShape = errors.New("nn: bad shape")

// Activation selects the hidden-layer nonlinearity.
type Activation int

// Supported activations.
const (
	ReLU Activation = iota + 1
	Tanh
)

// MLP is a fully connected network with identical hidden activations and a
// linear output layer.
type MLP struct {
	sizes  []int
	w      [][]float64 // w[l][out*in[l]+in] — row-major per layer
	b      [][]float64
	hidden Activation
}

// NewMLP builds a network with the given layer sizes (input, hidden...,
// output), initialized with He-scaled Gaussian weights.
func NewMLP(rng *rand.Rand, hidden Activation, sizes ...int) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("%w: need at least input and output sizes", ErrBadShape)
	}
	for _, s := range sizes {
		if s < 1 {
			return nil, fmt.Errorf("%w: layer size %d", ErrBadShape, s)
		}
	}
	if hidden != ReLU && hidden != Tanh {
		return nil, fmt.Errorf("%w: unknown activation %d", ErrBadShape, hidden)
	}
	m := &MLP{
		sizes:  append([]int(nil), sizes...),
		hidden: hidden,
	}
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		w := make([]float64, in*out)
		scale := math.Sqrt(2 / float64(in))
		for i := range w {
			w[i] = rng.NormFloat64() * scale
		}
		m.w = append(m.w, w)
		m.b = append(m.b, make([]float64, out))
	}
	return m, nil
}

// NumLayers returns the number of weight layers.
func (m *MLP) NumLayers() int { return len(m.w) }

// InputSize returns the expected input dimension.
func (m *MLP) InputSize() int { return m.sizes[0] }

// OutputSize returns the output dimension.
func (m *MLP) OutputSize() int { return m.sizes[len(m.sizes)-1] }

func (m *MLP) activate(v float64) float64 {
	switch m.hidden {
	case ReLU:
		if v < 0 {
			return 0
		}
		return v
	default:
		return math.Tanh(v)
	}
}

func (m *MLP) activateGrad(pre float64) float64 {
	switch m.hidden {
	case ReLU:
		if pre < 0 {
			return 0
		}
		return 1
	default:
		t := math.Tanh(pre)
		return 1 - t*t
	}
}

// Forward computes the network output for a single input.
func (m *MLP) Forward(x []float64) []float64 {
	c := m.ForwardCache(x)
	out := c.act[len(c.act)-1]
	cp := make([]float64, len(out))
	copy(cp, out)
	return cp
}

// Cache holds the intermediate activations of one forward pass, needed for
// backpropagation.
type Cache struct {
	pre [][]float64 // pre-activations per weight layer
	act [][]float64 // act[0] = input, act[l+1] = output of layer l
}

// Output returns the network output of the cached forward pass. The slice
// aliases the cache and must not be modified.
func (c *Cache) Output() []float64 {
	return c.act[len(c.act)-1]
}

// ForwardCache runs a forward pass retaining intermediate activations.
func (m *MLP) ForwardCache(x []float64) *Cache {
	c := &Cache{}
	cur := append([]float64(nil), x...)
	c.act = append(c.act, cur)
	last := len(m.w) - 1
	for l := range m.w {
		in, out := m.sizes[l], m.sizes[l+1]
		pre := make([]float64, out)
		w := m.w[l]
		for o := 0; o < out; o++ {
			sum := m.b[l][o]
			row := w[o*in : (o+1)*in]
			for i, xi := range cur {
				sum += row[i] * xi
			}
			pre[o] = sum
		}
		c.pre = append(c.pre, pre)
		next := make([]float64, out)
		if l == last {
			copy(next, pre) // linear output layer
		} else {
			for o, p := range pre {
				next[o] = m.activate(p)
			}
		}
		c.act = append(c.act, next)
		cur = next
	}
	return c
}

// Grads accumulates parameter gradients with the same shapes as the network.
type Grads struct {
	w [][]float64
	b [][]float64
}

// NewGrads allocates a zeroed gradient buffer for the network.
func (m *MLP) NewGrads() *Grads {
	g := &Grads{}
	for l := range m.w {
		g.w = append(g.w, make([]float64, len(m.w[l])))
		g.b = append(g.b, make([]float64, len(m.b[l])))
	}
	return g
}

// Zero resets the accumulated gradients.
func (g *Grads) Zero() {
	for l := range g.w {
		for i := range g.w[l] {
			g.w[l][i] = 0
		}
		for i := range g.b[l] {
			g.b[l][i] = 0
		}
	}
}

// Backward accumulates gradients for one sample given dLoss/dOutput.
func (m *MLP) Backward(c *Cache, dOut []float64, g *Grads) {
	last := len(m.w) - 1
	delta := append([]float64(nil), dOut...)
	for l := last; l >= 0; l-- {
		in := m.sizes[l]
		out := m.sizes[l+1]
		if l != last {
			for o := 0; o < out; o++ {
				delta[o] *= m.activateGrad(c.pre[l][o])
			}
		}
		input := c.act[l]
		w := m.w[l]
		gw := g.w[l]
		gb := g.b[l]
		for o := 0; o < out; o++ {
			d := delta[o]
			if d == 0 {
				continue
			}
			gb[o] += d
			row := gw[o*in : (o+1)*in]
			for i, xi := range input {
				row[i] += d * xi
			}
		}
		if l > 0 {
			prev := make([]float64, in)
			for o := 0; o < out; o++ {
				d := delta[o]
				if d == 0 {
					continue
				}
				row := w[o*in : (o+1)*in]
				for i := 0; i < in; i++ {
					prev[i] += d * row[i]
				}
			}
			delta = prev
		}
	}
}

// Adam is the Adam optimizer over an MLP's parameters.
type Adam struct {
	// LR is the learning rate.
	LR float64
	// Beta1, Beta2, Eps are the standard Adam constants; zero values take
	// the usual defaults (0.9, 0.999, 1e-8).
	Beta1, Beta2, Eps float64

	t          int
	mw, vw     [][]float64
	mb, vb     [][]float64
	registered *MLP
}

// Step applies one Adam update using gradients scaled by 1/scale (e.g. the
// batch size). Gradients are not modified.
func (a *Adam) Step(m *MLP, g *Grads, scale float64) error {
	if scale <= 0 {
		return fmt.Errorf("%w: scale %v", ErrBadShape, scale)
	}
	if a.registered == nil {
		a.registered = m
		for l := range m.w {
			a.mw = append(a.mw, make([]float64, len(m.w[l])))
			a.vw = append(a.vw, make([]float64, len(m.w[l])))
			a.mb = append(a.mb, make([]float64, len(m.b[l])))
			a.vb = append(a.vb, make([]float64, len(m.b[l])))
		}
	} else if a.registered != m {
		return fmt.Errorf("%w: Adam bound to a different network", ErrBadShape)
	}
	b1 := a.Beta1
	if b1 == 0 {
		b1 = 0.9
	}
	b2 := a.Beta2
	if b2 == 0 {
		b2 = 0.999
	}
	eps := a.Eps
	if eps == 0 {
		eps = 1e-8
	}
	lr := a.LR
	if lr == 0 {
		lr = 3e-4
	}
	a.t++
	bc1 := 1 - math.Pow(b1, float64(a.t))
	bc2 := 1 - math.Pow(b2, float64(a.t))
	update := func(p, grad, mom, vel []float64) {
		for i := range p {
			g := grad[i] / scale
			mom[i] = b1*mom[i] + (1-b1)*g
			vel[i] = b2*vel[i] + (1-b2)*g*g
			mHat := mom[i] / bc1
			vHat := vel[i] / bc2
			p[i] -= lr * mHat / (math.Sqrt(vHat) + eps)
		}
	}
	for l := range m.w {
		update(m.w[l], g.w[l], a.mw[l], a.vw[l])
		update(m.b[l], g.b[l], a.mb[l], a.vb[l])
	}
	return nil
}

// Softmax converts logits into probabilities in place-safe fashion.
func Softmax(logits []float64) []float64 {
	maxL := math.Inf(-1)
	for _, l := range logits {
		if l > maxL {
			maxL = l
		}
	}
	out := make([]float64, len(logits))
	sum := 0.0
	for i, l := range logits {
		e := math.Exp(l - maxL)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
