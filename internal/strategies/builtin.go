package strategies

import (
	"context"
	"fmt"

	"tolerance/internal/baselines"
	"tolerance/internal/cmdp"
	"tolerance/internal/nodemodel"
	"tolerance/internal/opt"
	"tolerance/internal/ppo"
	"tolerance/internal/recovery"
)

// Default training budgets for the learned strategy kinds. Suites override
// them per grid (fleet suite files carry an optional "learned" block);
// the defaults keep a learned cell affordable inside a wide sweep.
const (
	// DefaultBudget is the Algorithm 1 objective-evaluation budget.
	DefaultBudget = 120
	// DefaultEpisodes is M, the Monte-Carlo episodes per evaluation.
	DefaultEpisodes = 20
	// DefaultHorizon is the simulated episode length.
	DefaultHorizon = 150
	// DefaultIterations is the PPO rollout/update cycle count.
	DefaultIterations = 10
)

// dpGridSize is the evaluation harness's Problem 1 solver grid (the
// GridSize 300 of the Compare harness — accurate thresholds at grid-sweep
// speed). It is part of the TOLERANCE fingerprint contract: changing it
// invalidates strategy caches and shifts thresholds.
const dpGridSize = 300

func mustRegister(s Strategy) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

func init() {
	mustRegister(toleranceStrategy{})
	mustRegister(noRecoveryStrategy{})
	mustRegister(periodicStrategy{})
	mustRegister(periodicAdaptiveStrategy{})
	for _, l := range []learnedStrategy{
		{kind: "cem", describe: "Algorithm 1 thresholds learned by the cross-entropy method"},
		{kind: "de", describe: "Algorithm 1 thresholds learned by differential evolution"},
		{kind: "bo", describe: "Algorithm 1 thresholds learned by Bayesian optimization"},
		{kind: "spsa", describe: "Algorithm 1 thresholds learned by SPSA"},
		{kind: "random", describe: "Algorithm 1 thresholds from random search (sanity floor)"},
	} {
		if _, ok := opt.ByName(l.kind); !ok {
			panic("strategies: no optimizer named " + l.kind)
		}
		mustRegister(l)
	}
	mustRegister(ppoStrategy{})
}

// namedPolicy renames a policy so fleet rows distinguish strategy variants
// that share an implementation (e.g. learned thresholds wrapped in the
// TOLERANCE two-level pair).
type namedPolicy struct {
	baselines.Policy
	name string
}

func (p namedPolicy) Name() string { return p.name }

// toleranceStrategy is the paper's feedback strategy pair: exact DP
// recovery thresholds (Theorem 1) plus the CMDP replication strategy
// (Algorithm 2), both routed through the shared solver cache.
type toleranceStrategy struct{}

func (toleranceStrategy) Name() string { return "TOLERANCE" }

func (toleranceStrategy) Describe() string {
	return "Theorem 1 DP recovery thresholds + Algorithm 2 CMDP replication"
}

func (toleranceStrategy) Fingerprint(spec Spec) string {
	return fmt.Sprintf("%s|dr=%d|smax=%d|f=%d|eps=%x",
		spec.Params.Fingerprint(), spec.DeltaR, spec.SMax, spec.F, spec.EpsilonA)
}

func (toleranceStrategy) Policy(_ context.Context, spec Spec, solvers Solvers) (baselines.Policy, error) {
	if solvers == nil {
		return nil, fmt.Errorf("%w: TOLERANCE needs a solver cache", ErrBadStrategy)
	}
	dp, err := solvers.Recovery(spec.Params, recovery.DPConfig{DeltaR: spec.DeltaR, GridSize: dpGridSize})
	if err != nil {
		return nil, err
	}
	rec := dp.Strategy(spec.DeltaR)
	rep, err := solvers.Replication(spec.Params, rec, spec.SMax, spec.F, spec.EpsilonA, spec.DeltaR)
	if err != nil {
		return nil, err
	}
	return baselines.NewTolerance(rec, rep)
}

// noRecoveryStrategy is the NO-RECOVERY baseline (RAMPART, SECURE-RING).
type noRecoveryStrategy struct{}

func (noRecoveryStrategy) Name() string { return "NO-RECOVERY" }

func (noRecoveryStrategy) Describe() string {
	return "never recovers or adds nodes (RAMPART, SECURE-RING)"
}

func (noRecoveryStrategy) Fingerprint(Spec) string { return "static" }

func (noRecoveryStrategy) Policy(context.Context, Spec, Solvers) (baselines.Policy, error) {
	return baselines.NoRecovery{}, nil
}

// periodicStrategy is the PERIODIC baseline (PBFT, VM-FIT, WORM-IT, PRRW).
type periodicStrategy struct{}

func (periodicStrategy) Name() string { return "PERIODIC" }

func (periodicStrategy) Describe() string {
	return "recovers every Delta_R steps, never adds nodes (PBFT, VM-FIT)"
}

func (periodicStrategy) Fingerprint(Spec) string { return "static" }

func (periodicStrategy) Policy(context.Context, Spec, Solvers) (baselines.Policy, error) {
	return baselines.Periodic{}, nil
}

// periodicAdaptiveStrategy is the PERIODIC-ADAPTIVE baseline (SITAR, ITSI,
// ITUA approximation).
type periodicAdaptiveStrategy struct{}

func (periodicAdaptiveStrategy) Name() string { return "PERIODIC-ADAPTIVE" }

func (periodicAdaptiveStrategy) Describe() string {
	return "periodic recovery + add a node when an observation doubles its mean (SITAR, ITUA)"
}

func (periodicAdaptiveStrategy) Fingerprint(spec Spec) string {
	// TargetN caps additions, so the built policy depends on N1.
	return fmt.Sprintf("n1=%d", spec.N1)
}

func (periodicAdaptiveStrategy) Policy(_ context.Context, spec Spec, _ Solvers) (baselines.Policy, error) {
	return baselines.PeriodicAdaptive{TargetN: spec.N1}, nil
}

// learnedStrategy wraps one Algorithm 1 parametric optimizer (resolved
// from opt.ByName by kind): thresholds are learned by Monte-Carlo search
// instead of solved exactly, then paired with the same Algorithm 2
// replication strategy TOLERANCE uses, so fleet grids compare learned and
// exact recovery under identical replication.
type learnedStrategy struct {
	kind     string
	describe string
}

func (s learnedStrategy) Name() string { return "learned:" + s.kind }

func (s learnedStrategy) Describe() string { return s.describe }

func (s learnedStrategy) config(spec Spec) recovery.Algorithm1Config {
	po, _ := opt.ByName(s.kind) // existence checked at registration
	cfg := recovery.Algorithm1Config{
		DeltaR:    spec.DeltaR,
		Optimizer: po,
		Budget:    spec.Budget,
		Episodes:  spec.Episodes,
		Horizon:   spec.Horizon,
		Seed:      spec.Seed,
		Workers:   spec.Workers,
		Telemetry: spec.Telemetry,
	}
	if cfg.Budget <= 0 {
		cfg.Budget = DefaultBudget
	}
	if cfg.Episodes <= 0 {
		cfg.Episodes = DefaultEpisodes
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = DefaultHorizon
	}
	return cfg
}

func (s learnedStrategy) Fingerprint(spec Spec) string {
	cfg := s.config(spec)
	return fmt.Sprintf("%s|dr=%d|smax=%d|f=%d|eps=%x|b=%d|m=%d|h=%d|seed=%d",
		spec.Params.Fingerprint(), spec.DeltaR, spec.SMax, spec.F, spec.EpsilonA,
		cfg.Budget, cfg.Episodes, cfg.Horizon, spec.Seed)
}

func (s learnedStrategy) Policy(ctx context.Context, spec Spec, solvers Solvers) (baselines.Policy, error) {
	if solvers == nil {
		return nil, fmt.Errorf("%w: %s needs a solver cache", ErrBadStrategy, s.Name())
	}
	res, err := recovery.Algorithm1(ctx, spec.Params, s.config(spec))
	if err != nil {
		return nil, err
	}
	rep, err := solvers.Replication(spec.Params, res.Strategy, spec.SMax, spec.F, spec.EpsilonA, spec.DeltaR)
	if err != nil {
		return nil, err
	}
	inner, err := baselines.NewTolerance(res.Strategy, rep)
	if err != nil {
		return nil, err
	}
	return namedPolicy{Policy: inner, name: s.Name()}, nil
}

// ppoStrategy trains the PPO baseline of Table 2 for the cell's node model
// and pairs it with the Algorithm 2 replication strategy.
type ppoStrategy struct{}

func (ppoStrategy) Name() string { return "learned:ppo" }

func (ppoStrategy) Describe() string {
	return "stochastic recovery policy trained with PPO (Table 2 baseline)"
}

func (ppoStrategy) config(spec Spec) ppo.Config {
	cfg := ppo.Config{
		DeltaR:     spec.DeltaR,
		Iterations: spec.Iterations,
		Horizon:    spec.Horizon,
		Seed:       spec.Seed,
		Workers:    spec.Workers,
		Telemetry:  spec.Telemetry,
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = DefaultIterations
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = DefaultHorizon
	}
	return cfg
}

func (s ppoStrategy) Fingerprint(spec Spec) string {
	cfg := s.config(spec)
	return fmt.Sprintf("%s|dr=%d|smax=%d|f=%d|eps=%x|it=%d|h=%d|seed=%d",
		spec.Params.Fingerprint(), spec.DeltaR, spec.SMax, spec.F, spec.EpsilonA,
		cfg.Iterations, cfg.Horizon, spec.Seed)
}

func (s ppoStrategy) Policy(ctx context.Context, spec Spec, solvers Solvers) (baselines.Policy, error) {
	if solvers == nil {
		return nil, fmt.Errorf("%w: learned:ppo needs a solver cache", ErrBadStrategy)
	}
	res, err := ppo.Train(ctx, spec.Params, s.config(spec))
	if err != nil {
		return nil, err
	}
	rep, err := solvers.ReplicationFor(spec.Params, res.Policy, "ppo|"+s.Fingerprint(spec),
		spec.SMax, spec.F, spec.EpsilonA, spec.DeltaR)
	if err != nil {
		return nil, err
	}
	return &ppoPolicy{policy: res.Policy, replication: rep}, nil
}

// ppoPolicy adapts a trained PPO recovery policy plus a replication
// solution into the two-level Policy interface.
type ppoPolicy struct {
	policy      *ppo.Policy
	replication *cmdp.Solution
}

func (p *ppoPolicy) Name() string  { return "learned:ppo" }
func (p *ppoPolicy) UsesBTR() bool { return true }

func (p *ppoPolicy) NodeAction(ctx baselines.NodeContext) nodemodel.Action {
	return p.policy.Action(ctx.Belief, ctx.WindowPos)
}

func (p *ppoPolicy) AddNode(ctx baselines.SystemContext) bool {
	if p.replication == nil {
		return false
	}
	return p.replication.Sample(ctx.Rng, ctx.HealthyEstimate) == 1
}
