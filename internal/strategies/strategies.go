// Package strategies defines the first-class Strategy abstraction of the
// evaluation harness: every controller the paper evaluates — the Theorem 1
// threshold recovery solved exactly by dynamic programming, the Algorithm 1
// learned policies (CEM, DE, BO, SPSA), PPO, Algorithm 2 replication, and
// the §VIII-B baselines — is one registered implementation of a single
// interface, and the fleet engine is generic over the registry instead of a
// closed policy enum.
//
// A Strategy is a named policy *family*: given a concrete scenario
// configuration (a Spec) it constructs the decision rule (a
// baselines.Policy) that the emulation executes. Construction may be a pure
// table lookup (the baselines), an exact solve routed through the shared
// Solvers cache (TOLERANCE), or a full training run (the learned:* kinds).
// Fingerprint canonicalizes the construction inputs so strategy caches
// build each distinct policy exactly once per grid.
package strategies

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"tolerance/internal/baselines"
	"tolerance/internal/cmdp"
	"tolerance/internal/nodemodel"
	"tolerance/internal/recovery"
	"tolerance/internal/telemetry"
)

// ErrUnknownStrategy is returned when a name is not in the registry.
var ErrUnknownStrategy = errors.New("strategies: unknown strategy")

// ErrBadStrategy is returned for invalid registrations.
var ErrBadStrategy = errors.New("strategies: bad strategy")

// Spec is one concrete scenario configuration a strategy builds its policy
// for: the node model, the system shape, and — for learned strategies — the
// deterministic training seed and budget.
type Spec struct {
	// Params is the node model of eq. (2)-(5).
	Params nodemodel.Params
	// N1 is the initial system size, SMax the replication cap, F the
	// tolerance threshold, K the parallel-recovery allowance.
	N1, SMax, F, K int
	// DeltaR is the BTR bound (recovery.InfiniteDeltaR = none).
	DeltaR int
	// EpsilonA is the availability bound of the replication CMDP.
	EpsilonA float64
	// Seed drives training randomness of learned strategies. Engines
	// derive it deterministically (suite seed x strategy fingerprint), so
	// a learned policy is identical across workers, shards and resumes.
	Seed int64
	// Budget, Episodes and Horizon tune Algorithm 1 training; Iterations
	// tunes PPO. Zero selects the package defaults.
	Budget, Episodes, Horizon, Iterations int
	// Workers bounds the concurrent candidate/rollout evaluations of a
	// learned strategy's training run (0 defaults to GOMAXPROCS). It is a
	// throughput knob, not an identity input: training is bit-identical for
	// any value, so Workers is deliberately excluded from fingerprints.
	Workers int
	// Telemetry, when set, receives coarse training progress (objective
	// evaluations, best-so-far, PPO iterations) from learned strategies'
	// construction. Like Workers it is a pure observer, not an identity
	// input, and is deliberately excluded from fingerprints.
	Telemetry *telemetry.Training
}

// Solvers is the memoized control-problem interface strategies build on.
// The fleet strategy cache implements it; each distinct solve runs once per
// cache no matter how many scenarios request it.
type Solvers interface {
	// Recovery solves Problem 1 exactly (recovery.SolveDP).
	Recovery(p nodemodel.Params, cfg recovery.DPConfig) (*recovery.DPSolution, error)
	// Replication solves Problem 2 for a threshold recovery strategy.
	Replication(p nodemodel.Params, rec *recovery.ThresholdStrategy, smax, f int, epsilonA float64, deltaR int) (*cmdp.Solution, error)
	// ReplicationFor solves Problem 2 for an arbitrary recovery decision
	// rule; recFP canonicalizes the rule for the cache key.
	ReplicationFor(p nodemodel.Params, rec recovery.Strategy, recFP string, smax, f int, epsilonA float64, deltaR int) (*cmdp.Solution, error)
}

// Strategy is a named, registered control-strategy family. Implementations
// must be safe for concurrent use, and the policies they build must be safe
// for concurrent use across scenarios.
type Strategy interface {
	// Name is the registry key — the policy kind in suite files and grids.
	Name() string
	// Describe is a one-line summary for listings.
	Describe() string
	// Fingerprint canonicalizes the construction inputs for the spec, so
	// caches can share one built policy across every scenario that would
	// construct an identical one.
	Fingerprint(spec Spec) string
	// Policy constructs the decision rule for the spec. ctx cancels
	// long-running construction (training); solvers memoizes the control-
	// problem solves and must be non-nil for strategies that solve.
	Policy(ctx context.Context, spec Spec, solvers Solvers) (baselines.Policy, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Strategy{}
)

// Register adds a strategy to the registry. Registering a nil strategy, an
// empty name, or a name already taken is an error.
func Register(s Strategy) error {
	if s == nil {
		return fmt.Errorf("%w: nil strategy", ErrBadStrategy)
	}
	name := s.Name()
	if name == "" {
		return fmt.Errorf("%w: empty name", ErrBadStrategy)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[name]; ok {
		return fmt.Errorf("%w: %q already registered", ErrBadStrategy, name)
	}
	registry[name] = s
	return nil
}

// Lookup resolves a registered strategy by name.
func Lookup(name string) (Strategy, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names lists the registered strategy names in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
