package strategies

import (
	"context"
	"errors"
	"sort"
	"testing"

	"tolerance/internal/baselines"
	"tolerance/internal/nodemodel"
)

func defaultSpec() Spec {
	return Spec{
		Params:   nodemodel.DefaultParams(),
		N1:       3,
		SMax:     13,
		F:        1,
		K:        1,
		DeltaR:   15,
		EpsilonA: 0.9,
		Seed:     1,
	}
}

func TestBuiltinsRegistered(t *testing.T) {
	want := []string{
		"TOLERANCE", "NO-RECOVERY", "PERIODIC", "PERIODIC-ADAPTIVE",
		"learned:cem", "learned:de", "learned:bo", "learned:spsa",
		"learned:random", "learned:ppo",
	}
	for _, name := range want {
		s, ok := Lookup(name)
		if !ok {
			t.Errorf("built-in %q not registered", name)
			continue
		}
		if s.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, s.Name())
		}
		if s.Describe() == "" {
			t.Errorf("%q has no description", name)
		}
	}
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	if len(names) < len(want) {
		t.Errorf("Names() = %v, want at least %d entries", names, len(want))
	}
}

func TestRegisterValidation(t *testing.T) {
	if err := Register(nil); !errors.Is(err, ErrBadStrategy) {
		t.Errorf("Register(nil) = %v, want ErrBadStrategy", err)
	}
	if err := Register(fakeStrategy{name: ""}); !errors.Is(err, ErrBadStrategy) {
		t.Errorf("Register(empty name) = %v, want ErrBadStrategy", err)
	}
	if err := Register(fakeStrategy{name: "TOLERANCE"}); !errors.Is(err, ErrBadStrategy) {
		t.Errorf("Register(duplicate) = %v, want ErrBadStrategy", err)
	}
	if err := Register(fakeStrategy{name: "test-custom"}); err != nil {
		t.Fatalf("Register(test-custom) = %v", err)
	}
	if _, ok := Lookup("test-custom"); !ok {
		t.Error("registered strategy not found")
	}
}

// fakeStrategy is a minimal registrable strategy for registry tests.
type fakeStrategy struct {
	name string
}

func (f fakeStrategy) Name() string            { return f.name }
func (f fakeStrategy) Describe() string        { return "test strategy" }
func (f fakeStrategy) Fingerprint(Spec) string { return "static" }
func (f fakeStrategy) Policy(context.Context, Spec, Solvers) (baselines.Policy, error) {
	return baselines.NoRecovery{}, nil
}

func TestBaselineStrategiesBuildWithoutSolvers(t *testing.T) {
	for _, name := range []string{"NO-RECOVERY", "PERIODIC", "PERIODIC-ADAPTIVE"} {
		s, ok := Lookup(name)
		if !ok {
			t.Fatalf("%q not registered", name)
		}
		pol, err := s.Policy(context.Background(), defaultSpec(), nil)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if pol.Name() != name {
			t.Errorf("%q built policy named %q", name, pol.Name())
		}
	}
}

func TestSolverStrategiesRequireSolvers(t *testing.T) {
	for _, name := range []string{"TOLERANCE", "learned:cem", "learned:ppo"} {
		s, ok := Lookup(name)
		if !ok {
			t.Fatalf("%q not registered", name)
		}
		if _, err := s.Policy(context.Background(), defaultSpec(), nil); !errors.Is(err, ErrBadStrategy) {
			t.Errorf("%q with nil solvers: err = %v, want ErrBadStrategy", name, err)
		}
	}
}

func TestPeriodicAdaptiveFingerprintVariesWithN1(t *testing.T) {
	s, _ := Lookup("PERIODIC-ADAPTIVE")
	a := defaultSpec()
	b := defaultSpec()
	b.N1 = 9
	if s.Fingerprint(a) == s.Fingerprint(b) {
		t.Error("PERIODIC-ADAPTIVE fingerprint ignores N1 (TargetN differs)")
	}
	static, _ := Lookup("PERIODIC")
	if static.Fingerprint(a) != static.Fingerprint(b) {
		t.Error("PERIODIC fingerprint should not depend on the spec")
	}
}

func TestLearnedFingerprintVariesWithSeedAndBudget(t *testing.T) {
	s, _ := Lookup("learned:cem")
	a := defaultSpec()
	b := defaultSpec()
	b.Seed = 2
	if s.Fingerprint(a) == s.Fingerprint(b) {
		t.Error("learned fingerprint ignores the training seed")
	}
	c := defaultSpec()
	c.Budget = 77
	if s.Fingerprint(a) == s.Fingerprint(c) {
		t.Error("learned fingerprint ignores the budget")
	}
	// Zero budget fields canonicalize to the defaults, so an explicit
	// default budget and an unset one share a fingerprint.
	d := defaultSpec()
	d.Budget, d.Episodes, d.Horizon = DefaultBudget, DefaultEpisodes, DefaultHorizon
	if s.Fingerprint(a) != s.Fingerprint(d) {
		t.Error("explicit default budget fingerprints differently from unset")
	}
}

func TestLearnedStrategyCancellation(t *testing.T) {
	s, _ := Lookup("learned:cem")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Policy(ctx, defaultSpec(), stubSolvers{}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled training: err = %v, want context.Canceled", err)
	}
}

// stubSolvers satisfies Solvers for tests that never reach a solve.
type stubSolvers struct{ Solvers }
