package raft

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"tolerance/internal/transport"
)

type raftCluster struct {
	t     *testing.T
	net   *transport.SimNetwork
	nodes map[string]*Node
	mu    sync.Mutex
	logs  map[string][]string // applied commands per node
	peers []string
}

func newRaftCluster(t *testing.T, n int) *raftCluster {
	t.Helper()
	net, err := transport.NewSimNetwork(transport.Conditions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := &raftCluster{
		t:     t,
		net:   net,
		nodes: make(map[string]*Node),
		logs:  make(map[string][]string),
	}
	for i := 0; i < n; i++ {
		c.peers = append(c.peers, fmt.Sprintf("n%d", i))
	}
	for _, id := range c.peers {
		c.start(id)
	}
	t.Cleanup(func() {
		for _, node := range c.nodes {
			node.Stop()
		}
		net.Close()
	})
	return c
}

func (c *raftCluster) start(id string) {
	c.t.Helper()
	ep, err := c.net.Endpoint(id)
	if err != nil {
		c.t.Fatal(err)
	}
	nodeID := id
	node, err := NewNode(Config{
		ID:              id,
		Peers:           c.peers,
		Endpoint:        ep,
		ElectionTimeout: 100 * time.Millisecond,
		Seed:            int64(len(id)) * 31,
		Apply: func(index uint64, command []byte) {
			c.mu.Lock()
			defer c.mu.Unlock()
			c.logs[nodeID] = append(c.logs[nodeID], string(command))
		},
	})
	if err != nil {
		c.t.Fatal(err)
	}
	c.nodes[id] = node
}

// waitForLeader blocks until exactly one live node leads.
func (c *raftCluster) waitForLeader(timeout time.Duration) *Node {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var leaders []*Node
		maxTerm := uint64(0)
		for _, n := range c.nodes {
			if n.Term() > maxTerm {
				maxTerm = n.Term()
			}
		}
		for _, n := range c.nodes {
			if n.IsLeader() && n.Term() == maxTerm {
				leaders = append(leaders, n)
			}
		}
		if len(leaders) == 1 {
			return leaders[0]
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.t.Fatal("no unique leader elected")
	return nil
}

func (c *raftCluster) appliedOn(id string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.logs[id]...)
}

func TestLeaderElection(t *testing.T) {
	c := newRaftCluster(t, 3)
	leader := c.waitForLeader(3 * time.Second)
	if leader == nil {
		t.Fatal("no leader")
	}
	// All nodes converge on the leader's identity.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		agree := true
		for _, n := range c.nodes {
			if n.Leader() != leader.ID() {
				agree = false
			}
		}
		if agree {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("nodes did not converge on the leader identity")
}

func TestLogReplication(t *testing.T) {
	c := newRaftCluster(t, 3)
	leader := c.waitForLeader(3 * time.Second)
	for i := 0; i < 5; i++ {
		if _, err := leader.Propose([]byte(fmt.Sprintf("cmd%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, id := range c.peers {
			if len(c.appliedOn(id)) < 5 {
				done = false
			}
		}
		if done {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	want := []string{"cmd0", "cmd1", "cmd2", "cmd3", "cmd4"}
	for _, id := range c.peers {
		got := c.appliedOn(id)
		if len(got) != 5 {
			t.Fatalf("%s applied %d commands, want 5", id, len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s applied %v, want %v", id, got, want)
			}
		}
	}
}

func TestProposeOnFollowerFails(t *testing.T) {
	c := newRaftCluster(t, 3)
	leader := c.waitForLeader(3 * time.Second)
	for _, n := range c.nodes {
		if n.ID() == leader.ID() {
			continue
		}
		if _, err := n.Propose([]byte("x")); err != ErrNotLeader {
			t.Errorf("follower Propose = %v, want ErrNotLeader", err)
		}
	}
}

func TestLeaderFailover(t *testing.T) {
	c := newRaftCluster(t, 3)
	leader := c.waitForLeader(3 * time.Second)
	if _, err := leader.Propose([]byte("before")); err != nil {
		t.Fatal(err)
	}
	// Wait for replication, then kill the leader.
	time.Sleep(300 * time.Millisecond)
	oldID := leader.ID()
	leader.Stop()
	delete(c.nodes, oldID)
	c.net.Isolate(oldID)

	newLeader := c.waitForLeader(5 * time.Second)
	if newLeader.ID() == oldID {
		t.Fatal("dead node still leads")
	}
	if _, err := newLeader.Propose([]byte("after")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for id := range c.nodes {
			applied := c.appliedOn(id)
			if len(applied) < 2 || applied[0] != "before" || applied[1] != "after" {
				ok = false
			}
		}
		if ok {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	for id := range c.nodes {
		t.Logf("%s applied %v", id, c.appliedOn(id))
	}
	t.Fatal("committed entries lost across failover")
}

func TestPartitionedLeaderStepsDown(t *testing.T) {
	c := newRaftCluster(t, 3)
	leader := c.waitForLeader(3 * time.Second)
	oldID := leader.ID()
	c.net.Isolate(oldID)

	// The majority side elects a new leader.
	deadline := time.Now().Add(5 * time.Second)
	var newLeader *Node
	for time.Now().Before(deadline) {
		for id, n := range c.nodes {
			if id != oldID && n.IsLeader() {
				newLeader = n
			}
		}
		if newLeader != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if newLeader == nil {
		t.Fatal("majority did not elect a new leader")
	}
	// Entries proposed on the isolated leader never commit.
	before := leader.CommitIndex()
	_, _ = leader.Propose([]byte("doomed"))
	time.Sleep(300 * time.Millisecond)
	if leader.CommitIndex() > before {
		t.Error("isolated leader committed without a majority")
	}
	// After healing, the old leader steps down to the higher term.
	c.net.Heal()
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if !leader.IsLeader() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("stale leader did not step down after heal")
}

func TestSingleNodeClusterSelfElects(t *testing.T) {
	c := newRaftCluster(t, 1)
	leader := c.waitForLeader(3 * time.Second)
	if _, err := leader.Propose([]byte("solo")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(c.appliedOn(leader.ID())) == 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("single-node cluster did not apply")
}

func TestConfigValidation(t *testing.T) {
	net, _ := transport.NewSimNetwork(transport.Conditions{}, 1)
	defer net.Close()
	ep, _ := net.Endpoint("a")
	if _, err := NewNode(Config{}); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := NewNode(Config{ID: "a", Peers: []string{"b"}, Endpoint: ep}); err == nil {
		t.Error("id not in peers should fail")
	}
	if _, err := NewNode(Config{ID: "a", Peers: []string{"a"}}); err == nil {
		t.Error("nil endpoint should fail")
	}
	n, err := NewNode(Config{ID: "a", Peers: []string{"a"}, Endpoint: ep})
	if err != nil {
		t.Fatal(err)
	}
	n.Stop()
	n.Stop() // idempotent
}
