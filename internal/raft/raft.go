// Package raft implements the Raft consensus protocol [54] (leader
// election, log replication, commitment) over the repository's transport
// layer. TOLERANCE runs its global system controller on a crash-tolerant
// Raft group (§IV, §VII-C): the controller only executes control actions
// and communicates with node controllers, so crash-stop tolerance suffices.
package raft

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"tolerance/internal/transport"
)

// Errors returned by the node.
var (
	ErrBadConfig = errors.New("raft: bad config")
	ErrNotLeader = errors.New("raft: not the leader")
	ErrStopped   = errors.New("raft: node stopped")
)

// role is a node's current protocol role.
type role int

const (
	follower role = iota + 1
	candidate
	leader
)

func (r role) String() string {
	switch r {
	case follower:
		return "follower"
	case candidate:
		return "candidate"
	case leader:
		return "leader"
	default:
		return "unknown"
	}
}

// Entry is one replicated log entry.
type Entry struct {
	Term    uint64 `json:"term"`
	Command []byte `json:"command"`
}

// message types
type raftMsgType string

const (
	typeRequestVote   raftMsgType = "request-vote"
	typeVoteReply     raftMsgType = "vote-reply"
	typeAppendEntries raftMsgType = "append-entries"
	typeAppendReply   raftMsgType = "append-reply"
)

type raftEnvelope struct {
	Type raftMsgType     `json:"type"`
	Data json.RawMessage `json:"data"`
}

type requestVoteMsg struct {
	Term         uint64 `json:"term"`
	CandidateID  string `json:"candidateId"`
	LastLogIndex uint64 `json:"lastLogIndex"`
	LastLogTerm  uint64 `json:"lastLogTerm"`
}

type voteReplyMsg struct {
	Term    uint64 `json:"term"`
	From    string `json:"from"`
	Granted bool   `json:"granted"`
}

type appendEntriesMsg struct {
	Term         uint64  `json:"term"`
	LeaderID     string  `json:"leaderId"`
	PrevLogIndex uint64  `json:"prevLogIndex"`
	PrevLogTerm  uint64  `json:"prevLogTerm"`
	Entries      []Entry `json:"entries"`
	LeaderCommit uint64  `json:"leaderCommit"`
}

type appendReplyMsg struct {
	Term       uint64 `json:"term"`
	From       string `json:"from"`
	Success    bool   `json:"success"`
	MatchIndex uint64 `json:"matchIndex"`
}

// Config configures one Raft node.
type Config struct {
	// ID is this node's identity (must be in Peers).
	ID string
	// Peers is the full membership including this node.
	Peers []string
	// Endpoint is the transport attachment.
	Endpoint transport.Endpoint
	// Apply is invoked sequentially with each committed command.
	Apply func(index uint64, command []byte)
	// ElectionTimeout is the base election timeout (default 200ms;
	// randomized up to 2x).
	ElectionTimeout time.Duration
	// HeartbeatInterval is the leader's AppendEntries cadence (default
	// ElectionTimeout/4).
	HeartbeatInterval time.Duration
	// Seed randomizes election timeouts.
	Seed int64
	// Logger receives traces; nil disables.
	Logger *log.Logger
}

func (c *Config) validate() error {
	if c.ID == "" {
		return fmt.Errorf("%w: empty id", ErrBadConfig)
	}
	if len(c.Peers) < 1 {
		return fmt.Errorf("%w: no peers", ErrBadConfig)
	}
	found := false
	for _, p := range c.Peers {
		if p == c.ID {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("%w: id not in peers", ErrBadConfig)
	}
	if c.Endpoint == nil {
		return fmt.Errorf("%w: nil endpoint", ErrBadConfig)
	}
	return nil
}

// Node is one Raft participant.
type Node struct {
	cfg Config
	rng *rand.Rand

	mu          sync.Mutex
	role        role
	term        uint64
	votedFor    string
	log         []Entry // log[0] is a sentinel (index 0, term 0)
	commitIndex uint64
	lastApplied uint64
	leaderID    string

	// leader state
	nextIndex  map[string]uint64
	matchIndex map[string]uint64
	// candidate state
	votes map[string]bool

	electionDeadline time.Time

	stop chan struct{}
	done chan struct{}
}

// NewNode starts a Raft node.
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.ElectionTimeout <= 0 {
		cfg.ElectionTimeout = 200 * time.Millisecond
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = cfg.ElectionTimeout / 4
	}
	// Mix the node ID into the seed so peers never share election jitter.
	idMix := int64(0)
	for _, b := range []byte(cfg.ID) {
		idMix = idMix*131 + int64(b)
	}
	n := &Node{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed ^ idMix)),
		role: follower,
		log:  []Entry{{Term: 0}},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	n.resetElectionTimerLocked()
	go n.run()
	return n, nil
}

// Stop terminates the node.
func (n *Node) Stop() {
	select {
	case <-n.stop:
		return
	default:
	}
	close(n.stop)
	<-n.done
}

// ID returns the node's identity.
func (n *Node) ID() string { return n.cfg.ID }

// IsLeader reports whether this node currently leads.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == leader
}

// Leader returns the last known leader ID ("" if unknown).
func (n *Node) Leader() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaderID
}

// Term returns the current term.
func (n *Node) Term() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// CommitIndex returns the highest committed log index.
func (n *Node) CommitIndex() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.commitIndex
}

// Propose appends a command to the replicated log. Only the leader accepts
// proposals; followers return ErrNotLeader with the current leader hint.
func (n *Node) Propose(command []byte) (uint64, error) {
	n.mu.Lock()
	if n.role != leader {
		n.mu.Unlock()
		return 0, ErrNotLeader
	}
	entry := Entry{Term: n.term, Command: append([]byte(nil), command...)}
	n.log = append(n.log, entry)
	index := uint64(len(n.log) - 1)
	n.matchIndex[n.cfg.ID] = index
	n.mu.Unlock()
	n.broadcastAppendEntries()
	// A single-node group (or one whose followers already match) commits
	// immediately.
	n.advanceCommit()
	return index, nil
}

// run is the event loop.
func (n *Node) run() {
	defer close(n.done)
	ticker := time.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()
	lastHeartbeat := time.Now()
	for {
		select {
		case <-n.stop:
			return
		case msg, ok := <-n.cfg.Endpoint.Receive():
			if !ok {
				return
			}
			n.handle(msg)
		case now := <-ticker.C:
			n.mu.Lock()
			isLeader := n.role == leader
			expired := now.After(n.electionDeadline)
			n.mu.Unlock()
			if isLeader {
				if now.Sub(lastHeartbeat) >= n.cfg.HeartbeatInterval {
					lastHeartbeat = now
					n.broadcastAppendEntries()
				}
			} else if expired {
				n.startElection()
			}
		}
	}
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logger != nil {
		n.cfg.Logger.Printf("[raft %s t%d %s] "+format,
			append([]any{n.cfg.ID, n.Term(), n.roleString()}, args...)...)
	}
}

func (n *Node) roleString() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role.String()
}

func (n *Node) resetElectionTimerLocked() {
	jitter := time.Duration(n.rng.Int63n(int64(n.cfg.ElectionTimeout)))
	n.electionDeadline = time.Now().Add(n.cfg.ElectionTimeout + jitter)
}

// send marshals and ships a message.
func (n *Node) send(to string, t raftMsgType, msg any) {
	data, err := json.Marshal(msg)
	if err != nil {
		return
	}
	payload, err := json.Marshal(raftEnvelope{Type: t, Data: data})
	if err != nil {
		return
	}
	_ = n.cfg.Endpoint.Send(to, payload)
}

// handle decodes and dispatches one inbound message.
func (n *Node) handle(msg transport.Message) {
	var env raftEnvelope
	if err := json.Unmarshal(msg.Payload, &env); err != nil {
		return
	}
	switch env.Type {
	case typeRequestVote:
		var m requestVoteMsg
		if json.Unmarshal(env.Data, &m) == nil {
			n.onRequestVote(&m)
		}
	case typeVoteReply:
		var m voteReplyMsg
		if json.Unmarshal(env.Data, &m) == nil {
			n.onVoteReply(&m)
		}
	case typeAppendEntries:
		var m appendEntriesMsg
		if json.Unmarshal(env.Data, &m) == nil {
			n.onAppendEntries(&m)
		}
	case typeAppendReply:
		var m appendReplyMsg
		if json.Unmarshal(env.Data, &m) == nil {
			n.onAppendReply(&m)
		}
	}
}

// stepDownLocked adopts a higher term.
func (n *Node) stepDownLocked(term uint64) {
	n.term = term
	n.role = follower
	n.votedFor = ""
	n.votes = nil
	n.resetElectionTimerLocked()
}

// startElection transitions to candidate and solicits votes.
func (n *Node) startElection() {
	n.mu.Lock()
	n.role = candidate
	n.term++
	n.votedFor = n.cfg.ID
	n.votes = map[string]bool{n.cfg.ID: true}
	n.resetElectionTimerLocked()
	term := n.term
	lastIndex := uint64(len(n.log) - 1)
	lastTerm := n.log[lastIndex].Term
	peers := n.peersExceptSelf()
	single := len(n.cfg.Peers) == 1
	n.mu.Unlock()

	n.logf("starting election for term %d", term)
	if single {
		n.maybeBecomeLeader(term)
		return
	}
	req := requestVoteMsg{Term: term, CandidateID: n.cfg.ID, LastLogIndex: lastIndex, LastLogTerm: lastTerm}
	for _, p := range peers {
		n.send(p, typeRequestVote, req)
	}
}

func (n *Node) peersExceptSelf() []string {
	out := make([]string, 0, len(n.cfg.Peers)-1)
	for _, p := range n.cfg.Peers {
		if p != n.cfg.ID {
			out = append(out, p)
		}
	}
	return out
}

// onRequestVote implements the voting rule with the log up-to-date check.
func (n *Node) onRequestVote(m *requestVoteMsg) {
	n.mu.Lock()
	if m.Term > n.term {
		n.stepDownLocked(m.Term)
	}
	granted := false
	if m.Term == n.term && (n.votedFor == "" || n.votedFor == m.CandidateID) {
		lastIndex := uint64(len(n.log) - 1)
		lastTerm := n.log[lastIndex].Term
		upToDate := m.LastLogTerm > lastTerm ||
			(m.LastLogTerm == lastTerm && m.LastLogIndex >= lastIndex)
		if upToDate {
			granted = true
			n.votedFor = m.CandidateID
			n.resetElectionTimerLocked()
		}
	}
	term := n.term
	n.mu.Unlock()
	n.send(m.CandidateID, typeVoteReply, voteReplyMsg{Term: term, From: n.cfg.ID, Granted: granted})
}

// onVoteReply tallies votes.
func (n *Node) onVoteReply(m *voteReplyMsg) {
	n.mu.Lock()
	if m.Term > n.term {
		n.stepDownLocked(m.Term)
		n.mu.Unlock()
		return
	}
	if n.role != candidate || m.Term != n.term || !m.Granted {
		n.mu.Unlock()
		return
	}
	n.votes[m.From] = true
	count := len(n.votes)
	term := n.term
	n.mu.Unlock()
	if count > len(n.cfg.Peers)/2 {
		n.maybeBecomeLeader(term)
	}
}

// maybeBecomeLeader installs leadership for the term.
func (n *Node) maybeBecomeLeader(term uint64) {
	n.mu.Lock()
	if n.role != candidate || n.term != term {
		n.mu.Unlock()
		return
	}
	n.role = leader
	n.leaderID = n.cfg.ID
	n.nextIndex = make(map[string]uint64)
	n.matchIndex = make(map[string]uint64)
	last := uint64(len(n.log) - 1)
	for _, p := range n.cfg.Peers {
		n.nextIndex[p] = last + 1
		n.matchIndex[p] = 0
	}
	n.matchIndex[n.cfg.ID] = last
	n.mu.Unlock()
	n.logf("became leader of term %d", term)
	n.broadcastAppendEntries()
	n.advanceCommit()
}

// broadcastAppendEntries ships log suffixes (or heartbeats) to followers.
func (n *Node) broadcastAppendEntries() {
	n.mu.Lock()
	if n.role != leader {
		n.mu.Unlock()
		return
	}
	term := n.term
	commit := n.commitIndex
	type batch struct {
		peer string
		msg  appendEntriesMsg
	}
	var batches []batch
	for _, p := range n.peersExceptSelf() {
		next := n.nextIndex[p]
		if next < 1 {
			next = 1
		}
		prevIndex := next - 1
		prevTerm := n.log[prevIndex].Term
		entries := make([]Entry, len(n.log[next:]))
		copy(entries, n.log[next:])
		batches = append(batches, batch{peer: p, msg: appendEntriesMsg{
			Term:         term,
			LeaderID:     n.cfg.ID,
			PrevLogIndex: prevIndex,
			PrevLogTerm:  prevTerm,
			Entries:      entries,
			LeaderCommit: commit,
		}})
	}
	n.mu.Unlock()
	for _, b := range batches {
		n.send(b.peer, typeAppendEntries, b.msg)
	}
}

// onAppendEntries implements the follower's log repair rule.
func (n *Node) onAppendEntries(m *appendEntriesMsg) {
	n.mu.Lock()
	if m.Term > n.term {
		n.stepDownLocked(m.Term)
	}
	success := false
	matchIndex := uint64(0)
	if m.Term == n.term {
		if n.role != follower {
			n.role = follower
			n.votes = nil
		}
		n.leaderID = m.LeaderID
		n.resetElectionTimerLocked()
		if m.PrevLogIndex < uint64(len(n.log)) && n.log[m.PrevLogIndex].Term == m.PrevLogTerm {
			success = true
			// Truncate conflicts and append.
			insert := m.PrevLogIndex + 1
			for i, e := range m.Entries {
				idx := insert + uint64(i)
				if idx < uint64(len(n.log)) {
					if n.log[idx].Term != e.Term {
						n.log = n.log[:idx]
						n.log = append(n.log, e)
					}
				} else {
					n.log = append(n.log, e)
				}
			}
			matchIndex = m.PrevLogIndex + uint64(len(m.Entries))
			if m.LeaderCommit > n.commitIndex {
				last := uint64(len(n.log) - 1)
				n.commitIndex = min(m.LeaderCommit, last)
			}
		}
	}
	term := n.term
	n.mu.Unlock()
	n.applyCommitted()
	n.send(m.LeaderID, typeAppendReply, appendReplyMsg{
		Term: term, From: n.cfg.ID, Success: success, MatchIndex: matchIndex,
	})
}

// onAppendReply advances match indices and the commit point.
func (n *Node) onAppendReply(m *appendReplyMsg) {
	n.mu.Lock()
	if m.Term > n.term {
		n.stepDownLocked(m.Term)
		n.mu.Unlock()
		return
	}
	if n.role != leader || m.Term != n.term {
		n.mu.Unlock()
		return
	}
	if m.Success {
		if m.MatchIndex > n.matchIndex[m.From] {
			n.matchIndex[m.From] = m.MatchIndex
		}
		n.nextIndex[m.From] = m.MatchIndex + 1
	} else {
		if n.nextIndex[m.From] > 1 {
			n.nextIndex[m.From]--
		}
	}
	n.mu.Unlock()
	n.advanceCommit()
}

// advanceCommit commits entries replicated on a majority (current term
// only, per the Raft safety rule).
func (n *Node) advanceCommit() {
	n.mu.Lock()
	if n.role != leader {
		n.mu.Unlock()
		return
	}
	last := uint64(len(n.log) - 1)
	for idx := last; idx > n.commitIndex; idx-- {
		if n.log[idx].Term != n.term {
			continue
		}
		count := 0
		for _, p := range n.cfg.Peers {
			if n.matchIndex[p] >= idx {
				count++
			}
		}
		if count > len(n.cfg.Peers)/2 {
			n.commitIndex = idx
			break
		}
	}
	n.mu.Unlock()
	n.applyCommitted()
}

// applyCommitted invokes Apply for newly committed entries in order.
func (n *Node) applyCommitted() {
	for {
		n.mu.Lock()
		if n.lastApplied >= n.commitIndex {
			n.mu.Unlock()
			return
		}
		n.lastApplied++
		idx := n.lastApplied
		entry := n.log[idx]
		apply := n.cfg.Apply
		n.mu.Unlock()
		if apply != nil {
			apply(idx, entry.Command)
		}
	}
}
