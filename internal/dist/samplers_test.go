package dist

import (
	"math/rand"
	"sort"
	"testing"
)

// TestBinomialSamplerDrawIdentical is the hoisted sampler's contract: for
// any (p, n) and any rng position, BinomialSampler.Sample must consume
// exactly the draws SampleBinomial consumes and return the identical
// value — the emulation hot path swapped one for the other under a
// byte-stability guarantee, so this is draw-for-draw equality, not
// distributional equality.
func TestBinomialSamplerDrawIdentical(t *testing.T) {
	meta := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		p := meta.Float64()
		switch trial % 10 {
		case 0:
			p = 0
		case 1:
			p = 1
		case 2:
			p = 1e-6 // deep chunking regime: n*log(q) << -700 for large n
		}
		seed := meta.Int63()
		var s BinomialSampler
		s.Reset(p)
		rngA := rand.New(rand.NewSource(seed))
		rngB := rand.New(rand.NewSource(seed))
		for _, n := range []int{0, 1, 2, 7, 100, 1023, 1024, 5000} {
			want := SampleBinomial(rngA, n, p)
			got := s.Sample(rngB, n)
			if got != want {
				t.Fatalf("p=%v n=%d: sampler %d, SampleBinomial %d", p, n, got, want)
			}
			// The streams must also stay aligned (same number of draws).
			if a, b := rngA.Float64(), rngB.Float64(); a != b {
				t.Fatalf("p=%v n=%d: rng streams diverged (%v vs %v)", p, n, a, b)
			}
		}
	}
}

// TestPoissonSamplerDrawIdentical pins PoissonSampler.Sample to
// SamplePoisson the same way: identical draws consumed, identical value,
// across the chunked (lambda > 30) and direct regimes.
func TestPoissonSamplerDrawIdentical(t *testing.T) {
	meta := rand.New(rand.NewSource(12))
	for _, lambda := range []float64{0, 0.3, 1, 12.5, 29.9, 30, 31, 75, 150.5} {
		var s PoissonSampler
		s.Reset(lambda)
		for trial := 0; trial < 50; trial++ {
			seed := meta.Int63()
			rngA := rand.New(rand.NewSource(seed))
			rngB := rand.New(rand.NewSource(seed))
			want := SamplePoisson(rngA, lambda)
			got := s.Sample(rngB)
			if got != want {
				t.Fatalf("lambda=%v: sampler %d, SamplePoisson %d", lambda, got, want)
			}
			if a, b := rngA.Float64(), rngB.Float64(); a != b {
				t.Fatalf("lambda=%v: rng streams diverged (%v vs %v)", lambda, a, b)
			}
		}
	}
}

// TestCategoricalSampleMatchesSearchFloat64s pins the inlined binary
// search to the sort.SearchFloat64s form it replaced: the smallest index
// with cdf[i] >= u, for the same uniform, on every draw.
func TestCategoricalSampleMatchesSearchFloat64s(t *testing.T) {
	meta := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		support := 1 + meta.Intn(12)
		weights := make([]float64, support)
		for i := range weights {
			weights[i] = meta.Float64()
		}
		weights[meta.Intn(support)] += 1 // keep the mass positive
		c := MustCategorical(weights)
		cdf := c.cdf
		seed := meta.Int63()
		rngA := rand.New(rand.NewSource(seed))
		rngB := rand.New(rand.NewSource(seed))
		for d := 0; d < 200; d++ {
			want := sort.SearchFloat64s(cdf, rngA.Float64())
			// SearchFloat64s finds the smallest i with cdf[i] >= u; for a u
			// exactly equal to a cdf entry both forms return that entry, and
			// the trailing cdf[len-1] = 1 bounds the index the same way.
			got := c.Sample(rngB)
			if got != want {
				t.Fatalf("trial %d draw %d: Sample %d, SearchFloat64s %d (cdf %v)",
					trial, d, got, want, cdf)
			}
		}
	}
}
