// Package dist provides the discrete probability distributions used across
// the reproduction: categorical distributions over alert counts (the
// observation spaces of eq. 3), the Beta-Binomial family of Table 8, the
// binomial pmf of the replication CMDP (eq. 8), empirical maximum-likelihood
// fits (§VIII-A, Ẑ with M samples), Kullback-Leibler divergences (Fig 14,
// Fig 18), and the elementary samplers of the emulation.
package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// ErrBadDistribution is returned for invalid distribution parameters.
var ErrBadDistribution = errors.New("dist: bad distribution")

// Categorical is a probability distribution over {0, ..., n-1}.
type Categorical struct {
	probs []float64
	cdf   []float64
}

// NewCategorical validates and normalizes a probability vector.
func NewCategorical(probs []float64) (*Categorical, error) {
	if len(probs) == 0 {
		return nil, fmt.Errorf("%w: empty support", ErrBadDistribution)
	}
	sum := 0.0
	for i, p := range probs {
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return nil, fmt.Errorf("%w: prob[%d] = %v", ErrBadDistribution, i, p)
		}
		sum += p
	}
	if sum <= 0 {
		return nil, fmt.Errorf("%w: zero total mass", ErrBadDistribution)
	}
	c := &Categorical{
		probs: make([]float64, len(probs)),
		cdf:   make([]float64, len(probs)),
	}
	acc := 0.0
	for i, p := range probs {
		c.probs[i] = p / sum
		acc += c.probs[i]
		c.cdf[i] = acc
	}
	c.cdf[len(c.cdf)-1] = 1
	return c, nil
}

// MustCategorical is NewCategorical panicking on error; for literals in
// tests and defaults.
func MustCategorical(probs []float64) *Categorical {
	c, err := NewCategorical(probs)
	if err != nil {
		panic(err)
	}
	return c
}

// Len returns the support size.
func (c *Categorical) Len() int { return len(c.probs) }

// Prob returns P[X = o], zero outside the support.
func (c *Categorical) Prob(o int) float64 {
	if o < 0 || o >= len(c.probs) {
		return 0
	}
	return c.probs[o]
}

// Probs returns a copy of the probability vector.
func (c *Categorical) Probs() []float64 {
	return append([]float64(nil), c.probs...)
}

// Mean returns E[X].
func (c *Categorical) Mean() float64 {
	m := 0.0
	for o, p := range c.probs {
		m += float64(o) * p
	}
	return m
}

// Sample draws one value by inverse-CDF lookup (one rng.Float64 per draw).
// The binary search is inlined rather than delegated to sort.SearchFloat64s:
// it performs the identical comparisons on the identical cdf (smallest i with
// cdf[i] >= u, midpoints by unsigned halving), so the drawn values are
// bit-identical, without the per-draw closure call the sort.Search form pays
// on the emulation's per-node observation path.
func (c *Categorical) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	cdf := c.cdf
	i, j := 0, len(cdf)
	for i < j {
		h := int(uint(i+j) >> 1)
		if cdf[h] < u {
			i = h + 1
		} else {
			j = h
		}
	}
	return i
}

// BetaBinomial is the BetaBin(n, alpha, beta) distribution over {0, ..., n}
// — the observation family of the paper's numerical evaluation (Table 8).
type BetaBinomial struct {
	n           int
	alpha, beta float64
}

// NewBetaBinomial validates the parameters.
func NewBetaBinomial(n int, alpha, beta float64) (*BetaBinomial, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: beta-binomial n = %d", ErrBadDistribution, n)
	}
	if alpha <= 0 || beta <= 0 || math.IsNaN(alpha) || math.IsNaN(beta) {
		return nil, fmt.Errorf("%w: beta-binomial shape (%v, %v)", ErrBadDistribution, alpha, beta)
	}
	return &BetaBinomial{n: n, alpha: alpha, beta: beta}, nil
}

// MustBetaBinomial is NewBetaBinomial panicking on error.
func MustBetaBinomial(n int, alpha, beta float64) *BetaBinomial {
	b, err := NewBetaBinomial(n, alpha, beta)
	if err != nil {
		panic(err)
	}
	return b
}

// Prob returns the pmf P[X = k] = C(n,k) B(k+alpha, n-k+beta) / B(alpha, beta).
func (b *BetaBinomial) Prob(k int) float64 {
	if k < 0 || k > b.n {
		return 0
	}
	ln := lnChoose(b.n, k) +
		lnBeta(float64(k)+b.alpha, float64(b.n-k)+b.beta) -
		lnBeta(b.alpha, b.beta)
	return math.Exp(ln)
}

// Categorical tabulates the pmf over {0, ..., n}.
func (b *BetaBinomial) Categorical() *Categorical {
	probs := make([]float64, b.n+1)
	for k := range probs {
		probs[k] = b.Prob(k)
	}
	return MustCategorical(probs)
}

// Binomial returns the pmf P[Binomial(n, p) = k].
func Binomial(n int, p float64, k int) float64 {
	if k < 0 || k > n || n < 0 {
		return 0
	}
	switch {
	case p <= 0:
		if k == 0 {
			return 1
		}
		return 0
	case p >= 1:
		if k == n {
			return 1
		}
		return 0
	}
	ln := lnChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(ln)
}

// GeometricCDF returns P[T <= t] = 1 - (1-p)^t for a geometric waiting time
// with per-step success probability p.
func GeometricCDF(p float64, t int) float64 {
	if t <= 0 {
		return 0
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	return 1 - math.Pow(1-p, float64(t))
}

// SampleBernoulli draws a Bernoulli(p) outcome.
func SampleBernoulli(rng *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return rng.Float64() < p
}

// SampleBinomial draws a Binomial(n, p) count by CDF inversion with a
// single uniform per chunk: the pmf is walked from k = 0 with the
// recurrence P[k+1] = P[k] (n-k)/(k+1) p/(1-p) until the running CDF
// passes u. The cost is O(E[X]) arithmetic and O(1 + n p / 700) rng draws
// — the emulation uses it to retire per-session Bernoulli loops. Trial
// counts large enough that (1-p)^n would underflow are split by binomial
// additivity (as SamplePoisson splits large rates), so the sampler is
// exact at any n.
func SampleBinomial(rng *rand.Rand, n int, p float64) int {
	if n <= 0 || p <= 0 || math.IsNaN(p) {
		return 0
	}
	if p >= 1 {
		return n
	}
	q := 1 - p
	// Largest chunk whose P[X = 0] = q^chunk stays clear of the float64
	// underflow threshold (e^-700 ~ 1e-304).
	chunk := n
	if lq := math.Log(q); float64(n)*lq < -700 {
		chunk = int(-700 / lq)
		if chunk < 1 {
			chunk = 1
		}
	}
	k := 0
	for n > 0 {
		m := n
		if m > chunk {
			m = chunk
		}
		k += sampleBinomialInv(rng, m, p, q)
		n -= m
	}
	return k
}

// sampleBinomialInv is the single-uniform CDF walk for q^n > 0.
func sampleBinomialInv(rng *rand.Rand, n int, p, q float64) int {
	return binomialInvWalk(rng, n, math.Pow(q, float64(n)), p/q)
}

// binomialInvWalk is the shared CDF walk of SampleBinomial and
// BinomialSampler: one uniform, pmf recurrence from P[X = 0] = q0 with the
// fixed odds ratio pq = p/q. Both callers evaluate the recurrence term as
// (float64(n-k) / float64(k+1)) * pq — the exact expression (and rounding)
// of the original inline form.
func binomialInvWalk(rng *rand.Rand, n int, q0, pq float64) int {
	u := rng.Float64()
	pk := q0
	cdf := pk
	k := 0
	for u >= cdf && k < n {
		pk *= float64(n-k) / float64(k+1) * pq
		k++
		cdf += pk
	}
	return k
}

// binomialPowWindow bounds the q^n memo of BinomialSampler: trial counts
// below the window hit a precomputed table, larger ones fall back to a
// direct math.Pow (same value, just not cached), so the sampler never
// allocates after construction.
const binomialPowWindow = 1024

// BinomialSampler draws Binomial(n, p) counts for a fixed success
// probability p and varying n — the emulation's per-step session-departure
// draw, where p = 1/mu is a scenario constant but n is the fluctuating
// session count. It replays SampleBinomial's algorithm draw-for-draw (same
// uniforms, same CDF walk, bit-identical counts) while hoisting the
// per-call transcendentals: log q for the underflow-chunk test is computed
// once, and q^n is memoized per trial count in a fixed-size window, so the
// steady-state sample costs only the O(E[X]) recurrence walk. The zero
// value is unusable; construct with Reset. Not safe for concurrent use.
type BinomialSampler struct {
	p, q     float64
	pq       float64 // p / q, the recurrence odds ratio
	lq       float64 // log q, for the underflow-chunk test
	chunkCap int     // int(-700 / log q): the largest safe chunk
	always0  bool    // p <= 0 (or NaN)
	always1  bool    // p >= 1: every trial succeeds
	// pow[n] = q^n, 0 = not yet computed. A fixed array rather than a
	// slice, so embedding the sampler (the emulation runner does) costs no
	// allocation of its own.
	pow [binomialPowWindow]float64
}

// Reset re-parameterizes the sampler for success probability p. The q^n
// memo is kept when p is unchanged (the common scenario-to-scenario case)
// and invalidated otherwise.
func (s *BinomialSampler) Reset(p float64) {
	if p != s.p || s.always0 || s.always1 {
		clear(s.pow[:])
	}
	s.p = p
	s.always0 = p <= 0 || math.IsNaN(p)
	s.always1 = p >= 1
	if s.always0 || s.always1 {
		return
	}
	s.q = 1 - p
	s.pq = s.p / s.q
	s.lq = math.Log(s.q)
	s.chunkCap = int(-700 / s.lq)
}

// qPow returns q^n, from the memo window when n fits.
func (s *BinomialSampler) qPow(n int) float64 {
	if n < len(s.pow) {
		if v := s.pow[n]; v != 0 {
			return v
		}
		v := math.Pow(s.q, float64(n))
		s.pow[n] = v
		return v
	}
	return math.Pow(s.q, float64(n))
}

// Sample draws a Binomial(n, p) count, consuming exactly the uniforms
// SampleBinomial(rng, n, p) would consume and returning the same count.
func (s *BinomialSampler) Sample(rng *rand.Rand, n int) int {
	if n <= 0 || s.always0 {
		return 0
	}
	if s.always1 {
		return n
	}
	chunk := n
	if float64(n)*s.lq < -700 {
		chunk = s.chunkCap
		if chunk < 1 {
			chunk = 1
		}
	}
	k := 0
	for n > 0 {
		m := n
		if m > chunk {
			m = chunk
		}
		k += binomialInvWalk(rng, m, s.qPow(m), s.pq)
		n -= m
	}
	return k
}

// SamplePoisson draws a Poisson(lambda) count with Knuth's product-of-
// uniforms method, splitting large rates by Poisson additivity to keep the
// running product away from underflow.
func SamplePoisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 || math.IsNaN(lambda) {
		return 0
	}
	const chunk = 30
	n := 0
	for lambda > chunk {
		n += samplePoissonKnuth(rng, chunk)
		lambda -= chunk
	}
	return n + samplePoissonKnuth(rng, lambda)
}

func samplePoissonKnuth(rng *rand.Rand, lambda float64) int {
	return poissonKnuthL(rng, math.Exp(-lambda))
}

// poissonKnuthL is Knuth's product-of-uniforms loop against a precomputed
// threshold l = exp(-lambda).
func poissonKnuthL(rng *rand.Rand, l float64) int {
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// PoissonSampler draws Poisson(lambda) counts for a fixed rate — the
// emulation's per-step session-arrival draw, where lambda is a scenario
// constant. It replays SamplePoisson draw-for-draw (same chunk split, same
// uniforms, bit-identical counts) with the exp(-lambda) thresholds hoisted
// out of the per-step path. The zero value always samples 0; construct with
// Reset. Safe for concurrent use after Reset.
type PoissonSampler struct {
	chunks  int     // full size-30 chunks of the additivity split
	lFull   float64 // exp(-30)
	lRem    float64 // exp(-remainder), remainder by repeated subtraction
	always0 bool
}

// Reset re-parameterizes the sampler for rate lambda, reproducing
// SamplePoisson's chunk decomposition exactly (including the remainder
// computed by repeated subtraction, so the thresholds match bit-for-bit).
func (s *PoissonSampler) Reset(lambda float64) {
	*s = PoissonSampler{}
	if lambda <= 0 || math.IsNaN(lambda) {
		s.always0 = true
		return
	}
	const chunk = 30
	for lambda > chunk {
		s.chunks++
		lambda -= chunk
	}
	s.lFull = math.Exp(-float64(chunk))
	s.lRem = math.Exp(-lambda)
}

// Sample draws a Poisson(lambda) count, consuming exactly the uniforms
// SamplePoisson(rng, lambda) would consume and returning the same count.
func (s *PoissonSampler) Sample(rng *rand.Rand) int {
	if s.always0 {
		return 0
	}
	n := 0
	for i := 0; i < s.chunks; i++ {
		n += poissonKnuthL(rng, s.lFull)
	}
	return n + poissonKnuthL(rng, s.lRem)
}

// KLSmoothed returns the Kullback-Leibler divergence D_KL(p || q) in nats
// with the q-side probabilities floored at eps, so empirical distributions
// with empty cells yield a finite divergence (Fig 14, Fig 18).
func KLSmoothed(p, q *Categorical, eps float64) float64 {
	if p == nil || q == nil {
		return math.NaN()
	}
	if eps <= 0 {
		eps = 1e-12
	}
	d := 0.0
	n := p.Len()
	for o := 0; o < n; o++ {
		po := p.Prob(o)
		if po <= 0 {
			continue
		}
		qo := q.Prob(o)
		if qo < eps {
			qo = eps
		}
		d += po * math.Log(po/qo)
	}
	return d
}

// Empirical is a maximum-likelihood fit of a categorical distribution from
// samples (the Ẑ estimation of §VIII-A).
type Empirical struct {
	counts []int
	n      int
}

// FitEmpirical draws m samples from src and tabulates the MLE over
// {0, ..., support-1}. The source support must fit inside the target one.
func FitEmpirical(rng *rand.Rand, src *Categorical, support, m int) (*Empirical, error) {
	if src == nil {
		return nil, fmt.Errorf("%w: nil source", ErrBadDistribution)
	}
	if support < src.Len() {
		return nil, fmt.Errorf("%w: support %d < source support %d",
			ErrBadDistribution, support, src.Len())
	}
	if m < 1 {
		return nil, fmt.Errorf("%w: sample count %d", ErrBadDistribution, m)
	}
	e := &Empirical{counts: make([]int, support), n: m}
	for i := 0; i < m; i++ {
		e.counts[src.Sample(rng)]++
	}
	return e, nil
}

// Counts returns a copy of the per-value sample counts.
func (e *Empirical) Counts() []int {
	return append([]int(nil), e.counts...)
}

// Samples returns the number of samples the fit is based on.
func (e *Empirical) Samples() int { return e.n }

// Distribution returns the MLE categorical distribution (relative
// frequencies; cells with no samples have probability zero).
func (e *Empirical) Distribution() *Categorical {
	probs := make([]float64, len(e.counts))
	for i, c := range e.counts {
		probs[i] = float64(c) / float64(e.n)
	}
	return MustCategorical(probs)
}

// GoldenGamma is the SplitMix64 increment (2^64 / phi, odd): the stream
// separation constant every rng-stream derivation in the repo mixes with.
const GoldenGamma uint64 = 0x9e3779b97f4a7c15

// SplitMix64 is the SplitMix64 finalizer — the single canonical avalanche
// mix behind every derived rng stream (scenario seeds, the fit and
// workload streams, per-episode training streams, the worker-resident
// emulation source). Deriving all streams through one finalizer keeps the
// ROADMAP's stream-splitting policy one implementation, not several
// copies of three magic constants.
func SplitMix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Fingerprint hashes a float64 sequence bit-for-bit into a canonical
// 16-hex-digit FNV-1a digest. Model types use it to build strategy-cache
// keys: two parameter sets with equal fingerprints pose identical control
// problems.
func Fingerprint(values ...float64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range values {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// lnChoose returns ln C(n, k).
func lnChoose(n, k int) float64 {
	lg := func(x float64) float64 {
		v, _ := math.Lgamma(x)
		return v
	}
	return lg(float64(n)+1) - lg(float64(k)+1) - lg(float64(n-k)+1)
}

// lnBeta returns ln B(x, y).
func lnBeta(x, y float64) float64 {
	lx, _ := math.Lgamma(x)
	ly, _ := math.Lgamma(y)
	lxy, _ := math.Lgamma(x + y)
	return lx + ly - lxy
}
