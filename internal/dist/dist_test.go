package dist

import (
	"math"
	"math/rand"
	"testing"
)

// TestBetaBinomialPinnedPMF pins the Table 8 observation models used by
// nodemodel.DefaultParams and internal/ids: Z(.|H) = BetaBin(10, 0.7, 3) and
// Z(.|C) = BetaBin(10, 1, 0.7).
func TestBetaBinomialPinnedPMF(t *testing.T) {
	h := MustBetaBinomial(10, 0.7, 3)
	c := MustBetaBinomial(10, 1, 0.7)
	pinned := []struct {
		k            int
		wantH, wantC float64
	}{
		{0, 0.349062066622, 0.065420560748},
		{1, 0.203619538863, 0.067443877059},
		{5, 0.051713874399, 0.079719520666},
		{9, 0.006250098843, 0.119848790967},
		{10, 0.002020865293, 0.171212558524},
	}
	for _, p := range pinned {
		if got := h.Prob(p.k); math.Abs(got-p.wantH) > 1e-9 {
			t.Errorf("BetaBin(10,0.7,3).Prob(%d) = %.12f, want %.12f", p.k, got, p.wantH)
		}
		if got := c.Prob(p.k); math.Abs(got-p.wantC) > 1e-9 {
			t.Errorf("BetaBin(10,1,0.7).Prob(%d) = %.12f, want %.12f", p.k, got, p.wantC)
		}
	}
	// The pmf must sum to one and match the analytic mean n*alpha/(alpha+beta).
	sum := 0.0
	for k := 0; k <= 10; k++ {
		sum += h.Prob(k)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("pmf sums to %v", sum)
	}
	if got, want := h.Categorical().Mean(), 10*0.7/3.7; math.Abs(got-want) > 1e-12 {
		t.Errorf("mean = %v, want %v", got, want)
	}
}

// TestKLPinnedValues pins the divergences the ids package relies on: the
// Table 8 healthy/compromised pair and the container-1 profile of Table 4
// (support 32, shapes (0.8, 5) vs (3.2, 1.1)).
func TestKLPinnedValues(t *testing.T) {
	h := MustBetaBinomial(10, 0.7, 3).Categorical()
	c := MustBetaBinomial(10, 1, 0.7).Categorical()
	if got, want := KLSmoothed(h, c, 1e-9), 0.803109413534; math.Abs(got-want) > 1e-9 {
		t.Errorf("D_KL(Table 8 H || C) = %.12f, want %.12f", got, want)
	}
	ph := MustBetaBinomial(31, 0.8, 5).Categorical()
	pc := MustBetaBinomial(31, 3.2, 1.1).Categorical()
	if got, want := KLSmoothed(ph, pc, 1e-9), 4.064362376635; math.Abs(got-want) > 1e-9 {
		t.Errorf("D_KL(container-1 H || C) = %.12f, want %.12f", got, want)
	}
	// Self-divergence is zero; divergence is asymmetric and positive.
	if got := KLSmoothed(h, h, 1e-9); math.Abs(got) > 1e-12 {
		t.Errorf("D_KL(p || p) = %v", got)
	}
	if KLSmoothed(c, h, 1e-9) <= 0 {
		t.Error("reverse divergence not positive")
	}
}

func TestBetaBinomialValidation(t *testing.T) {
	for _, bad := range []struct {
		n           int
		alpha, beta float64
	}{{0, 1, 1}, {10, 0, 1}, {10, 1, 0}, {10, -1, 1}, {10, math.NaN(), 1}} {
		if _, err := NewBetaBinomial(bad.n, bad.alpha, bad.beta); err == nil {
			t.Errorf("NewBetaBinomial(%d, %v, %v) should fail", bad.n, bad.alpha, bad.beta)
		}
	}
}

func TestBinomialPMF(t *testing.T) {
	// Closed form: C(10,4) 0.3^4 0.7^6.
	want := 210 * math.Pow(0.3, 4) * math.Pow(0.7, 6)
	if got := Binomial(10, 0.3, 4); math.Abs(got-want) > 1e-12 {
		t.Errorf("Binomial(10, 0.3, 4) = %v, want %v", got, want)
	}
	sum := 0.0
	for k := 0; k <= 20; k++ {
		sum += Binomial(20, 0.37, k)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("binomial pmf sums to %v", sum)
	}
	// Edge cases.
	if Binomial(5, 0, 0) != 1 || Binomial(5, 0, 1) != 0 {
		t.Error("p = 0 edge case")
	}
	if Binomial(5, 1, 5) != 1 || Binomial(5, 1, 4) != 0 {
		t.Error("p = 1 edge case")
	}
	if Binomial(5, 0.5, 6) != 0 || Binomial(5, 0.5, -1) != 0 {
		t.Error("out-of-range k")
	}
}

func TestGeometricCDF(t *testing.T) {
	if got, want := GeometricCDF(0.1, 50), 1-math.Pow(0.9, 50); math.Abs(got-want) > 1e-12 {
		t.Errorf("GeometricCDF(0.1, 50) = %v, want %v", got, want)
	}
	if GeometricCDF(0.1, 0) != 0 || GeometricCDF(1, 3) != 1 || GeometricCDF(0, 3) != 0 {
		t.Error("edge cases")
	}
}

func TestCategoricalNormalizationAndSampling(t *testing.T) {
	c := MustCategorical([]float64{2, 1, 1})
	if got := c.Prob(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Prob(0) = %v after normalization", got)
	}
	if c.Prob(-1) != 0 || c.Prob(3) != 0 {
		t.Error("out-of-support probability not zero")
	}
	if got, want := c.Mean(), 0.25+2*0.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	counts := make([]int, c.Len())
	for i := 0; i < n; i++ {
		counts[c.Sample(rng)]++
	}
	for o := 0; o < c.Len(); o++ {
		got := float64(counts[o]) / n
		if math.Abs(got-c.Prob(o)) > 0.01 {
			t.Errorf("empirical P(%d) = %v, want %v", o, got, c.Prob(o))
		}
	}
	for _, bad := range [][]float64{nil, {}, {0, 0}, {-1, 2}, {math.NaN()}} {
		if _, err := NewCategorical(bad); err == nil {
			t.Errorf("NewCategorical(%v) should fail", bad)
		}
	}
}

func TestFitEmpiricalConverges(t *testing.T) {
	src := MustBetaBinomial(31, 0.8, 5).Categorical()
	rng := rand.New(rand.NewSource(3))
	fit, err := FitEmpirical(rng, src, 32, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Samples() != 50000 {
		t.Errorf("Samples = %d", fit.Samples())
	}
	if got := KLSmoothed(src, fit.Distribution(), 1e-9); got > 0.02 {
		t.Errorf("MLE divergence %v at 50k samples", got)
	}
	total := 0
	for _, c := range fit.Counts() {
		total += c
	}
	if total != 50000 {
		t.Errorf("counts sum to %d", total)
	}
	if _, err := FitEmpirical(rng, src, 32, 0); err == nil {
		t.Error("m = 0 should fail")
	}
	if _, err := FitEmpirical(rng, src, 8, 10); err == nil {
		t.Error("support smaller than source should fail")
	}
	if _, err := FitEmpirical(rng, nil, 8, 10); err == nil {
		t.Error("nil source should fail")
	}
}

func TestSamplePoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, lambda := range []float64{0.5, 4, 20, 100} {
		const n = 50000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(SamplePoisson(rng, lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Errorf("lambda = %v: empirical mean %v", lambda, mean)
		}
	}
	if SamplePoisson(rng, 0) != 0 || SamplePoisson(rng, -1) != 0 {
		t.Error("nonpositive rate should give 0")
	}
}

// TestSampleBinomial checks the one-uniform inversion sampler: edge
// cases, determinism, and agreement of the first two moments with
// Binomial(n, p) across the emulation's operating range.
func TestSampleBinomial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if SampleBinomial(rng, 0, 0.5) != 0 || SampleBinomial(rng, -3, 0.5) != 0 {
		t.Error("n <= 0 should give 0")
	}
	if SampleBinomial(rng, 10, 0) != 0 || SampleBinomial(rng, 10, -1) != 0 {
		t.Error("p <= 0 should give 0")
	}
	if SampleBinomial(rng, 10, 1) != 10 || SampleBinomial(rng, 10, 1.5) != 10 {
		t.Error("p >= 1 should give n")
	}
	r1 := rand.New(rand.NewSource(42))
	r2 := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		if SampleBinomial(r1, 80, 0.25) != SampleBinomial(r2, 80, 0.25) {
			t.Fatal("sampler not deterministic for equal rng states")
		}
	}
	// 20000 trials at p = 0.04 drives (1-p)^n into float64 underflow: the
	// sampler must split by additivity rather than degenerate to n.
	bigSum := 0.0
	const bigDraws = 2000
	for i := 0; i < bigDraws; i++ {
		bigSum += float64(SampleBinomial(rng, 20000, 0.04))
	}
	if mean, want := bigSum/bigDraws, 20000*0.04; math.Abs(mean-want) > 0.05*want {
		t.Errorf("n=20000 p=0.04: empirical mean %v, want ~%v (underflow regression)", mean, want)
	}
	for _, tc := range []struct {
		n int
		p float64
	}{{80, 0.25}, {10, 0.5}, {200, 0.04}, {5, 0.9}} {
		const draws = 50000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < draws; i++ {
			v := float64(SampleBinomial(rng, tc.n, tc.p))
			if v < 0 || v > float64(tc.n) {
				t.Fatalf("n=%d p=%v: draw %v out of range", tc.n, tc.p, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / draws
		variance := sumSq/draws - mean*mean
		wantMean := float64(tc.n) * tc.p
		wantVar := wantMean * (1 - tc.p)
		if math.Abs(mean-wantMean) > 0.05*wantMean+0.05 {
			t.Errorf("n=%d p=%v: empirical mean %v, want %v", tc.n, tc.p, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.1*wantVar+0.1 {
			t.Errorf("n=%d p=%v: empirical variance %v, want %v", tc.n, tc.p, variance, wantVar)
		}
	}
}

func TestSampleBernoulli(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if SampleBernoulli(rng, 0) || !SampleBernoulli(rng, 1) {
		t.Error("edge probabilities")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if SampleBernoulli(rng, 0.3) {
			hits++
		}
	}
	if got := float64(hits) / n; math.Abs(got-0.3) > 0.01 {
		t.Errorf("empirical p = %v", got)
	}
}
