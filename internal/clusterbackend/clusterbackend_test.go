package clusterbackend

import (
	"context"
	"testing"
	"time"

	"tolerance/internal/baselines"
	"tolerance/internal/emulation"
	"tolerance/internal/nodemodel"
	"tolerance/internal/telemetry"
)

// smokeScenario is small enough to run in seconds but hot enough (high
// attack rate, tight BTR calendar) that intrusions and forced restarts are
// all but guaranteed within the step budget.
func smokeScenario(seed int64) emulation.Scenario {
	params := nodemodel.DefaultParams()
	params.PA = 0.3
	params.PC1 = 0.02
	params.PC2 = 0.05
	return emulation.Scenario{
		N1:         4,
		SMax:       6,
		K:          1,
		F:          1,
		DeltaR:     4,
		Steps:      12,
		Seed:       seed,
		Params:     params,
		Policy:     baselines.Periodic{},
		FitSamples: 200,
	}
}

func TestClusterRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster integration test")
	}
	col := telemetry.New()
	res, err := Run(context.Background(), smokeScenario(7), Options{
		Telemetry:    col,
		StepInterval: 5 * time.Millisecond,
		ProbeTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	// The Periodic policy forces a recovery whenever a node hits its BTR
	// calendar slot — with DeltaR=4 and 12 steps every node cycles, so at
	// least one real process restart must have happened.
	if res.Restarts < 1 {
		t.Errorf("restarts = %d, want >= 1", res.Restarts)
	}
	if res.Metrics.Recoveries < res.Restarts {
		t.Errorf("recoveries %d < restarts %d", res.Metrics.Recoveries, res.Restarts)
	}
	if res.Metrics.Availability < 0 || res.Metrics.Availability > 1 {
		t.Errorf("availability = %v out of [0,1]", res.Metrics.Availability)
	}
	if res.Metrics.Availability > 0 && res.Metrics.ServiceLatencyMS <= 0 {
		t.Errorf("probes committed but ServiceLatencyMS = %v", res.Metrics.ServiceLatencyMS)
	}
	snap := col.Snapshot()
	restarts := snap.Counters[MetricReplicaRestarts]
	if restarts != int64(res.Restarts) {
		t.Errorf("telemetry %s = %d, result says %d", MetricReplicaRestarts, restarts, res.Restarts)
	}
}

// TestClusterScheduleReproducible is the determinism contract: the seeded
// schedule (intrusions, crashes, recoveries, evictions, additions and their
// timing) is identical across runs of the same scenario even though the
// wall-clock measurements differ.
func TestClusterScheduleReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster integration test")
	}
	run := func() Result {
		res, err := Run(context.Background(), smokeScenario(42), Options{
			StepInterval: 5 * time.Millisecond,
			ProbeTimeout: 300 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("cluster run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.ScheduleDigest != b.ScheduleDigest {
		t.Errorf("schedule digests differ: %x vs %x", a.ScheduleDigest, b.ScheduleDigest)
	}
	if a.Metrics.Intrusions != b.Metrics.Intrusions {
		t.Errorf("intrusions differ: %d vs %d", a.Metrics.Intrusions, b.Metrics.Intrusions)
	}
	if a.Metrics.Recoveries != b.Metrics.Recoveries {
		t.Errorf("recoveries differ: %d vs %d", a.Metrics.Recoveries, b.Metrics.Recoveries)
	}
	if a.Metrics.Evictions != b.Metrics.Evictions {
		t.Errorf("evictions differ: %d vs %d", a.Metrics.Evictions, b.Metrics.Evictions)
	}
	if a.Metrics.Additions != b.Metrics.Additions {
		t.Errorf("additions differ: %d vs %d", a.Metrics.Additions, b.Metrics.Additions)
	}
}

func TestClusterRunCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster integration test")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := smokeScenario(3)
	if _, err := Run(ctx, sc, Options{StepInterval: 5 * time.Millisecond}); err == nil {
		t.Fatal("cancelled run returned nil error")
	}
}
