// Package clusterbackend executes a fleet scenario against a live MinBFT
// replica group instead of the analytic emulation: N1 real replicas over
// loopback TCP, a seeded attacker walking the Table 6 campaigns on the
// emulation timeline, node controllers running the Appendix A belief
// recursion on seeded IDS observations, and recovery decisions that
// actually restart replica processes — the application domain is torn down
// and rebuilt while the USIG counter survives in the trusted domain
// (usig.ResumeHMAC), exactly the hybrid failure model of §IV.
//
// Determinism contract: the *schedule* (intrusion campaigns, crash draws,
// observations, beliefs, and therefore every recovery, eviction and
// addition decision) is a pure function of the scenario seed, which
// ScheduleDigest certifies. The *measurements* (probe latency, commit
// success under churn) are wall-clock real and vary run to run, so cluster
// results are statistically reproducible but NOT byte-stable — the fleet
// exempts them from the byte-stability CI contracts (docs/ARCHITECTURE.md).
package clusterbackend

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"time"

	"tolerance/internal/attacker"
	"tolerance/internal/baselines"
	"tolerance/internal/chaos"
	"tolerance/internal/dist"
	"tolerance/internal/emulation"
	"tolerance/internal/ids"
	"tolerance/internal/minbft"
	"tolerance/internal/nodemodel"
	"tolerance/internal/recovery"
	"tolerance/internal/replica"
	"tolerance/internal/telemetry"
	"tolerance/internal/transport"
	"tolerance/internal/usig"
)

// Telemetry metric names exported by cluster runs; they join the same
// collector (and therefore the run manifest and the /metrics endpoint) as
// the fleet.* series.
const (
	MetricReplicaRestarts = "cluster.replica_restarts"
	MetricReplicaCrashes  = "cluster.replica_crashes"
	MetricIntrusions      = "cluster.intrusions"
	MetricEvictions       = "cluster.evictions"
	MetricAdditions       = "cluster.additions"
	MetricConfigFailures  = "cluster.config_failures"
	MetricRestartFailures = "cluster.restart_failures"
	MetricProbeOK         = "cluster.probe_ok"
	MetricProbeFailures   = "cluster.probe_failures"
	MetricProbeLatencyUS  = "cluster.probe_latency_us"
	MetricMaxView         = "cluster.max_view"
)

// clusterKey is the shared HMAC key of the trusted components. All replicas
// of one run share it (the byzantine application domain never sees it).
var clusterKey = []byte("tolerance-cluster-backend-key-32")

// Options tunes a cluster run without touching the scenario schedule.
type Options struct {
	// Telemetry receives the cluster.* series; nil records nothing.
	Telemetry *telemetry.Collector
	// Shard is the telemetry shard index (the fleet worker index).
	Shard int
	// StepInterval is the wall-clock length of one control interval
	// (default 20ms — the emulation's 60-second step compressed so a
	// smoke suite finishes in seconds).
	StepInterval time.Duration
	// ProbeTimeout bounds one probe request (default 750ms).
	ProbeTimeout time.Duration
	// AdminTimeout bounds one reconfiguration request (default 3s).
	AdminTimeout time.Duration
	// Chaos, when set, wraps every replica's transport endpoint with the
	// fault plan's injector (drops, duplicates, delays, partitions …), so
	// the live MinBFT group runs over an impaired network — the §VIII-A
	// NETEM emulation, but seeded and certified. Client endpoints (probe
	// and admin) are left clean: they are the measurement harness, not the
	// system under test.
	Chaos *chaos.Plan
}

func (o *Options) applyDefaults() {
	if o.StepInterval == 0 {
		o.StepInterval = 20 * time.Millisecond
	}
	if o.ProbeTimeout == 0 {
		o.ProbeTimeout = 750 * time.Millisecond
	}
	if o.AdminTimeout == 0 {
		o.AdminTimeout = 3 * time.Second
	}
}

// Result is a cluster run's metrics plus the schedule certificate.
type Result struct {
	Metrics emulation.Metrics
	// ScheduleDigest hashes the seeded event schedule (step, event, node):
	// two runs of the same scenario produce the same digest even though
	// their wall-clock measurements differ.
	ScheduleDigest uint64
	// Restarts counts real replica process restarts (recoveries that
	// rebuilt the application domain).
	Restarts int
	// MaxView is the highest MinBFT view reached by any replica — > 0
	// means at least one view change (a crashed or silent primary was
	// deposed).
	MaxView uint64
}

// node is one live replica plus its controller-side state. The slice order
// in cluster.nodes is the rng draw order — part of the schedule contract:
// everything below the process handles (belief, compromise, crash flags) is
// a pure function of the scenario seed, while procDead tracks real-world
// process health only and never feeds back into the schedule.
type node struct {
	addr  string // member ID == TCP listen address
	ep    *transport.TCPEndpoint
	rep   *minbft.Replica
	u     *usig.USIG
	store *replica.KVStore
	// procDead marks a real process that failed to (re)start or join; the
	// schedule treats the node as alive, the measurements see it dead.
	procDead bool

	profile ids.Profile
	zh, zc  []float64 // fitted likelihood rows Ẑ(o|H), Ẑ(o|C)

	belief        float64
	phase         int
	boost         int
	obs           int
	underAttack   bool
	intrusion     attacker.Intrusion
	compromised   bool
	crashed       bool
	compromisedAt int
	lastRecover   bool
}

type cluster struct {
	sc   emulation.Scenario
	opts Options

	rng  *rand.Rand // schedule stream (seeded by Scenario.Seed)
	wrng *rand.Rand // background-workload stream
	fits *emulation.FitSet

	verifier *usig.Verifier
	registry *replica.Registry
	admin    *minbft.Client
	adminEP  *transport.TCPEndpoint
	probe    *minbft.Client
	probeEP  *transport.TCPEndpoint

	nodes  []*node
	nextID int

	poisson  dist.PoissonSampler
	binom    dist.BinomialSampler
	sessions int

	digest *fnv64

	// metric state, mirroring the emulation runner
	m              emulation.Metrics
	recoveryTimes  []float64
	availableSteps int
	quorumSteps    int
	nodeSteps      int
	totalNodes     float64
	costSum        float64
	obsSum         float64
	obsCount       int
	latencySumMS   float64
	latencyCount   int
	restarts       int

	tm clusterMetrics
}

// clusterMetrics caches telemetry handles; every field tolerates the
// zero-collector case by staying nil.
type clusterMetrics struct {
	shard     int
	restarts  *telemetry.Counter
	crashes   *telemetry.Counter
	intrus    *telemetry.Counter
	evicts    *telemetry.Counter
	adds      *telemetry.Counter
	cfgFail   *telemetry.Counter
	restFail  *telemetry.Counter
	probeOK   *telemetry.Counter
	probeFail *telemetry.Counter
	latency   *telemetry.Histogram
	maxView   *telemetry.Gauge
}

func newClusterMetrics(col *telemetry.Collector, shard int) clusterMetrics {
	if col == nil {
		return clusterMetrics{}
	}
	return clusterMetrics{
		shard:     shard,
		restarts:  col.Counter(MetricReplicaRestarts),
		crashes:   col.Counter(MetricReplicaCrashes),
		intrus:    col.Counter(MetricIntrusions),
		evicts:    col.Counter(MetricEvictions),
		adds:      col.Counter(MetricAdditions),
		cfgFail:   col.Counter(MetricConfigFailures),
		restFail:  col.Counter(MetricRestartFailures),
		probeOK:   col.Counter(MetricProbeOK),
		probeFail: col.Counter(MetricProbeFailures),
		latency:   col.Histogram(MetricProbeLatencyUS, telemetry.DurationBuckets()),
		maxView:   col.Gauge(MetricMaxView),
	}
}

func (t *clusterMetrics) inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc(t.shard)
	}
}

// fnv64 accumulates the schedule digest.
type fnv64 struct{ h uint64 }

func newFNV64() *fnv64 {
	f := fnv.New64a()
	return &fnv64{h: f.Sum64()}
}

func (f *fnv64) event(step int, kind byte, nodeIdx int) {
	const prime = 1099511628211
	f.h = (f.h ^ uint64(step)) * prime
	f.h = (f.h ^ uint64(kind)) * prime
	f.h = (f.h ^ uint64(nodeIdx)) * prime
}

// Schedule event kinds folded into ScheduleDigest.
const (
	evIntrusionStart = byte(1)
	evCompromised    = byte(2)
	evCrash          = byte(3)
	evRecover        = byte(4)
	evEvict          = byte(5)
	evAdd            = byte(6)
	evClean          = byte(7)
)

// Run executes the scenario against a live replica group. The context
// cancels between steps: the run returns ctx.Err() with partial metrics
// discarded, never a half-measured Metrics.
func Run(ctx context.Context, sc emulation.Scenario, opts Options) (Result, error) {
	opts.applyDefaults()
	c, err := boot(sc, opts)
	if err != nil {
		return Result{}, err
	}
	defer c.close()

	ticker := time.NewTicker(opts.StepInterval)
	defer ticker.Stop()
	for t := 1; t <= c.sc.Steps; t++ {
		select {
		case <-ctx.Done():
			return Result{}, ctx.Err()
		case <-ticker.C:
		}
		c.step(t)
	}
	return c.finish(), nil
}

// boot validates the scenario and starts the replica group, the admin
// client and the probe client.
func boot(sc emulation.Scenario, opts Options) (*cluster, error) {
	// Reuse the emulation's validation and defaulting by round-tripping
	// through a zero-step dry run's rules: apply the same defaults here.
	if sc.Policy == nil {
		return nil, fmt.Errorf("clusterbackend: nil policy")
	}
	if sc.N1 < 2 {
		return nil, fmt.Errorf("clusterbackend: N1 = %d (need >= 2 live replicas)", sc.N1)
	}
	if sc.SMax == 0 {
		sc.SMax = 13
	}
	if sc.K == 0 {
		sc.K = 1
	}
	if sc.F == 0 {
		sc.F = emulation.DefaultThreshold(sc.N1)
	}
	if sc.Steps == 0 {
		sc.Steps = 100
	}
	if sc.Params.ZHealthy == nil {
		p := nodemodel.DefaultParams()
		p.PA = 0.1
		sc.Params = p
	}
	if err := sc.Params.Validate(); err != nil {
		return nil, err
	}
	if sc.FitSamples == 0 {
		sc.FitSamples = 25000
	}
	if sc.Workload.Lambda == 0 {
		sc.Workload = emulation.DefaultBackgroundWorkload()
	}
	fits := sc.Fits
	if fits == nil {
		fitSeed := sc.FitSeed
		if fitSeed == 0 {
			fitSeed = emulation.FitStreamSeed(sc.Seed)
		}
		var err error
		fits, err = emulation.NewFitSet(sc.FitSamples, fitSeed)
		if err != nil {
			return nil, err
		}
	}
	verifier, err := usig.NewHMACVerifier(clusterKey)
	if err != nil {
		return nil, err
	}
	c := &cluster{
		sc:       sc,
		opts:     opts,
		rng:      rand.New(rand.NewSource(sc.Seed)),
		wrng:     rand.New(rand.NewSource(workloadSeed(sc.Seed))),
		fits:     fits,
		verifier: verifier,
		registry: replica.NewRegistry(),
		digest:   newFNV64(),
		tm:       newClusterMetrics(opts.Telemetry, opts.Shard),
	}
	c.poisson.Reset(sc.Workload.Lambda)
	c.binom.Reset(1 / sc.Workload.MeanServiceSteps)

	// Endpoints first: member IDs are the TCP listen addresses, so the
	// full member list must exist before any replica starts.
	eps := make([]*transport.TCPEndpoint, 0, sc.N1)
	members := make([]string, 0, sc.N1)
	for i := 0; i < sc.N1; i++ {
		ep, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			for _, e := range eps {
				_ = e.Close()
			}
			return nil, fmt.Errorf("clusterbackend: listen replica %d: %w", i, err)
		}
		eps = append(eps, ep)
		members = append(members, ep.Addr())
	}
	for i, ep := range eps {
		phase := 0
		if sc.DeltaR != recovery.InfiniteDeltaR && sc.DeltaR > 0 {
			phase = (i * sc.DeltaR) / sc.N1 // stagger, like the emulation
		}
		n, err := c.startNode(ep, members, phase, 0)
		if err != nil {
			c.close()
			return nil, err
		}
		c.nodes = append(c.nodes, n)
	}
	c.nextID = sc.N1

	c.admin, c.adminEP, err = c.newClient(opts.AdminTimeout)
	if err != nil {
		c.close()
		return nil, err
	}
	c.probe, c.probeEP, err = c.newClient(opts.ProbeTimeout)
	if err != nil {
		c.close()
		return nil, err
	}
	return c, nil
}

// workloadSeed derives the background-workload stream seed with the same
// SplitMix64 derivation (and tag) the emulation uses.
func workloadSeed(seed int64) int64 {
	return int64(dist.SplitMix64(uint64(seed)*dist.GoldenGamma + 0x3017))
}

// newClient starts a loopback client whose signer ID is its own listen
// address — replicas reply by dialing the request's ClientID, so the ID
// must be dialable.
func (c *cluster) newClient(timeout time.Duration) (*minbft.Client, *transport.TCPEndpoint, error) {
	ep, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		return nil, nil, fmt.Errorf("clusterbackend: listen client: %w", err)
	}
	signer, err := replica.NewSigner(ep.Addr())
	if err != nil {
		_ = ep.Close()
		return nil, nil, err
	}
	if err := c.registry.Register(ep.Addr(), signer.PublicKey()); err != nil {
		_ = ep.Close()
		return nil, nil, err
	}
	cl, err := minbft.NewClient(signer, ep, c.members(), c.tolerance())
	if err != nil {
		_ = ep.Close()
		return nil, nil, err
	}
	cl.Timeout = timeout
	return cl, ep, nil
}

// startNode boots one replica on ep. The container draw comes from the
// schedule stream; usigCounter > 0 resumes the trusted counter of a
// previous incarnation (a restart).
func (c *cluster) startNode(ep *transport.TCPEndpoint, members []string, phase int, usigCounter uint64) (*node, error) {
	addr := ep.Addr()
	var u *usig.USIG
	var err error
	if usigCounter > 0 {
		u, err = usig.ResumeHMAC(addr, clusterKey, usigCounter)
	} else {
		u, err = usig.NewHMAC(addr, clusterKey)
	}
	if err != nil {
		return nil, err
	}
	store := replica.NewKVStore()
	rep, err := minbft.NewReplica(minbft.Config{
		ID:             addr,
		Members:        members,
		K:              c.sc.K,
		Endpoint:       c.opts.Chaos.WrapEndpoint(ep),
		USIG:           u,
		Verifier:       c.verifier,
		Registry:       c.registry,
		Store:          store,
		RequestTimeout: 250 * time.Millisecond,
		TickInterval:   5 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	ci := c.rng.Intn(c.fits.Len())
	fit := c.fits.Fitted(ci)
	return &node{
		addr:          addr,
		ep:            ep,
		rep:           rep,
		u:             u,
		store:         store,
		profile:       c.fits.Container(ci).Profile,
		zh:            fit.Healthy.Probs(),
		zc:            fit.Compromised.Probs(),
		belief:        c.sc.Params.PA,
		phase:         phase,
		compromisedAt: -1,
	}, nil
}

// members returns the current member list in node order.
func (c *cluster) members() []string {
	out := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.addr
	}
	return out
}

// tolerance is MinBFT's f for the current group size: N = 2f + k + 1.
func (c *cluster) tolerance() int {
	f := (len(c.nodes) - 1 - c.sc.K) / 2
	if f < 0 {
		f = 0
	}
	return f
}

// realMembers returns the membership the live group has agreed on (from
// any running replica), falling back to the bookkeeping list when no
// process answers. The agreed list is the truth after evict/join ops.
func (c *cluster) realMembers() ([]string, int) {
	for _, n := range c.nodes {
		if !n.crashed && !n.procDead && n.rep != nil {
			return n.rep.Members(), n.rep.Tolerance()
		}
	}
	return c.members(), c.tolerance()
}

func (c *cluster) refreshClients() {
	members, f := c.realMembers()
	if len(members) == 0 {
		return
	}
	c.admin.UpdateMembership(members, f)
	c.probe.UpdateMembership(members, f)
}

// step advances the cluster one control interval, mirroring the emulation's
// six stages with real consensus-level effects.
func (c *cluster) step(t int) {
	sc := &c.sc
	rng := c.rng

	// Background client population drives the false-alert rate, same
	// two-stream derivation as the emulation.
	c.sessions += c.poisson.Sample(c.wrng)
	c.sessions -= c.binom.Sample(c.wrng, c.sessions)
	load := float64(c.sessions) / (sc.Workload.Lambda * sc.Workload.MeanServiceSteps)
	pFalse := 0.1 * load

	// 1. Seeded IDS observations + Appendix A belief recursion, strictly
	// in node order (the rng draw order is the schedule contract).
	for _, n := range c.nodes {
		obs := n.profile.Sample(rng, n.compromised)
		obs += n.boost
		n.boost = 0
		if dist.SampleBernoulli(rng, pFalse) {
			obs++
		}
		if obs >= ids.AlertSupport {
			obs = ids.AlertSupport - 1
		}
		n.obs = obs
		c.obsSum += float64(obs)
		c.obsCount++
		action := nodemodel.Wait
		if n.lastRecover {
			action = nodemodel.Recover
		}
		pred := sc.Params.PredictBelief(n.belief, action)
		den := n.zc[obs]*pred + n.zh[obs]*(1-pred)
		if den > 0 {
			b := n.zc[obs] * pred / den
			if b < 0 {
				b = 0
			} else if b > 1 {
				b = 1
			}
			n.belief = b
		}
		n.lastRecover = false
	}

	// 2. Action selection: forced BTR calendar first, then the policy's
	// threshold recoveries in descending belief order, K-capped.
	recovering := make([]int, 0, sc.K)
	forced := make(map[int]bool, sc.K)
	if sc.Policy.UsesBTR() && sc.DeltaR != recovery.InfiniteDeltaR && sc.DeltaR > 0 {
		for i, n := range c.nodes {
			if (t+n.phase)%sc.DeltaR == 0 && len(recovering) < sc.K {
				recovering = append(recovering, i)
				forced[i] = true
			}
		}
	}
	var candidates []int
	for i, n := range c.nodes {
		if forced[i] {
			continue
		}
		windowPos := t + n.phase
		if sc.DeltaR != recovery.InfiniteDeltaR && sc.DeltaR > 0 {
			windowPos = (t + n.phase) % sc.DeltaR
			if windowPos == 0 {
				continue
			}
		}
		action := sc.Policy.NodeAction(baselines.NodeContext{
			Belief:    n.belief,
			Obs:       n.obs,
			WindowPos: windowPos,
			DeltaR:    sc.DeltaR,
		})
		if action == nodemodel.Recover {
			candidates = append(candidates, i)
		}
	}
	sort.SliceStable(candidates, func(a, b int) bool {
		return c.nodes[candidates[a]].belief > c.nodes[candidates[b]].belief
	})
	for _, i := range candidates {
		if len(recovering) >= sc.K {
			break
		}
		recovering = append(recovering, i)
	}

	// 3. Apply recoveries: REAL replica restarts. The rng draws inside
	// restartNode stay on the schedule stream regardless of whether the
	// process restart succeeds, so the schedule never forks on wall-clock
	// outcomes.
	for _, i := range recovering {
		c.digest.event(t, evRecover, i)
		c.restartNode(t, c.nodes[i])
	}

	// 4. System controller: evict crashed members through consensus, then
	// maybe grow the group. A failed evict leaves the node in place (it
	// keeps counting against availability) and retries next step.
	evicted := c.evictCrashed(t)
	healthyEstimate := 0.0
	obsLane := make([]int, len(c.nodes))
	for i, n := range c.nodes {
		healthyEstimate += 1 - n.belief
		obsLane[i] = n.obs
	}
	est := int(math.Floor(healthyEstimate))
	if est > sc.SMax {
		est = sc.SMax
	}
	meanObs := 0.0
	if c.obsCount > 0 {
		meanObs = c.obsSum / float64(c.obsCount)
	}
	if len(c.nodes) < sc.SMax && sc.Policy.AddNode(baselines.SystemContext{
		HealthyEstimate: est,
		AliveNodes:      len(c.nodes),
		Observations:    obsLane,
		MeanObs:         meanObs,
		Rng:             rng,
	}) {
		c.digest.event(t, evAdd, c.nextID)
		c.addNode()
	}

	// 5. Metrics. Availability is REAL: one probe write per step must
	// commit within the probe timeout. The structural quorum condition
	// (Prop. 1) is tracked alongside; crashed-but-unevicted members count
	// as failed.
	compromised, failed := 0, 0
	for _, n := range c.nodes {
		switch {
		case n.lastRecover:
			c.costSum++
		case n.compromised:
			c.costSum += sc.Params.Eta
		}
		if n.compromised {
			compromised++
		}
		if n.crashed {
			failed++
		}
	}
	if ok := c.probeOnce(); ok {
		c.availableSteps++
	}
	if compromised+failed+evicted <= sc.F && len(c.nodes)-failed >= 2*sc.F+1+sc.K {
		c.quorumSteps++
	}
	c.nodeSteps += len(c.nodes)
	c.totalNodes += float64(len(c.nodes))

	// 6. Environment transitions on the schedule stream: crashes stop the
	// real process, completed intrusions flip the replica's protocol-level
	// behaviour (silent or garbage), software updates silently clean.
	for i, n := range c.nodes {
		if n.crashed {
			continue
		}
		if !n.compromised {
			if dist.SampleBernoulli(rng, sc.Params.PC1) {
				c.digest.event(t, evCrash, i)
				c.crashNode(n)
				continue
			}
			if !n.underAttack && dist.SampleBernoulli(rng, sc.Params.PA) {
				if err := n.intrusion.Begin(1 + rng.Intn(attacker.NumCampaigns())); err == nil {
					n.underAttack = true
					c.digest.event(t, evIntrusionStart, i)
				}
			}
			if n.underAttack {
				n.boost += n.intrusion.Advance(rng)
				if n.intrusion.Done() {
					n.compromised = true
					n.compromisedAt = t
					c.m.Intrusions++
					c.tm.inc(c.tm.intrus)
					c.digest.event(t, evCompromised, i)
					if n.rep != nil {
						switch n.intrusion.Behaviour {
						case attacker.StaySilent:
							n.rep.SetByzantine(minbft.Silent)
						case attacker.SendRandom:
							n.rep.SetByzantine(minbft.Garbage)
						}
					}
				}
			}
			continue
		}
		// Compromised.
		if dist.SampleBernoulli(rng, sc.Params.PC2) {
			c.digest.event(t, evCrash, i)
			if n.compromisedAt >= 0 {
				c.recoveryTimes = append(c.recoveryTimes, recovery.NoRecoveryPenalty)
				n.compromisedAt = -1
			}
			c.crashNode(n)
			continue
		}
		if dist.SampleBernoulli(rng, sc.Params.PU) {
			c.digest.event(t, evClean, i)
			n.compromised = false
			n.underAttack = false
			n.compromisedAt = -1
			if n.rep != nil {
				n.rep.SetByzantine(minbft.Honest)
			}
		}
	}
}

// probeOnce submits one write through consensus and records the real
// latency; failure (timeout, lost quorum) is a real unavailability sample.
func (c *cluster) probeOnce() bool {
	start := time.Now()
	_, err := c.probe.Submit(replica.Op{
		Type: replica.OpWrite, Key: "cluster-probe", Value: fmt.Sprintf("t%d", c.nodeSteps),
	})
	elapsed := time.Since(start)
	if c.tm.latency != nil {
		c.tm.latency.Observe(c.tm.shard, elapsed.Nanoseconds())
	}
	if err != nil {
		c.tm.inc(c.tm.probeFail)
		return false
	}
	c.tm.inc(c.tm.probeOK)
	c.latencySumMS += float64(elapsed.Microseconds()) / 1000.0
	c.latencyCount++
	return true
}

// restartNode rebuilds a replica's application domain in place: the old
// process stops, the endpoint re-listens on the same address, a fresh
// container image is drawn, and the new process resumes the trusted USIG
// counter and state-syncs from its peers (§VII-C). Crashed nodes restart
// too — recovery doubles as repair, clearing the crash. Every schedule
// effect (rng draws, belief reset, compromise clearing) applies whether or
// not the real restart succeeds, so the seeded schedule never forks on a
// wall-clock outcome; a failed restart only marks the process dead.
func (c *cluster) restartNode(t int, n *node) {
	// Schedule-stream draw first, unconditionally.
	ci := c.rng.Intn(c.fits.Len())

	c.m.Recoveries++
	if n.compromisedAt >= 0 {
		c.recoveryTimes = append(c.recoveryTimes, float64(t-n.compromisedAt))
		n.compromisedAt = -1
	}
	fit := c.fits.Fitted(ci)
	n.profile = c.fits.Container(ci).Profile
	n.zh, n.zc = fit.Healthy.Probs(), fit.Compromised.Probs()
	n.belief = c.sc.Params.PA
	n.crashed = false
	n.compromised = false
	n.underAttack = false
	n.boost = 0
	n.lastRecover = true

	var counter uint64
	if n.u != nil {
		counter = n.u.Counter()
	}
	if n.rep != nil {
		n.rep.Stop()
	}
	if n.ep != nil {
		_ = n.ep.Close()
	}
	ep, err := relisten(n.addr)
	if err != nil {
		c.tm.inc(c.tm.restFail)
		n.procDead = true
		return
	}
	members, _ := c.realMembers()
	fresh, err := c.startNodeOn(ep, members, n.phase, counter)
	if err != nil {
		c.tm.inc(c.tm.restFail)
		_ = ep.Close()
		n.procDead = true
		return
	}
	n.ep = ep
	n.rep, n.u, n.store = fresh.rep, fresh.u, fresh.store
	n.procDead = false
	n.rep.RequestStateSync(1)
	c.restarts++
	c.tm.inc(c.tm.restarts)
}

// startNodeOn is startNode without the schedule-stream container draw (the
// caller already drew it).
func (c *cluster) startNodeOn(ep *transport.TCPEndpoint, members []string, phase int, usigCounter uint64) (*node, error) {
	addr := ep.Addr()
	var u *usig.USIG
	var err error
	if usigCounter > 0 {
		u, err = usig.ResumeHMAC(addr, clusterKey, usigCounter)
	} else {
		u, err = usig.NewHMAC(addr, clusterKey)
	}
	if err != nil {
		return nil, err
	}
	store := replica.NewKVStore()
	rep, err := minbft.NewReplica(minbft.Config{
		ID:             addr,
		Members:        members,
		K:              c.sc.K,
		Endpoint:       c.opts.Chaos.WrapEndpoint(ep),
		USIG:           u,
		Verifier:       c.verifier,
		Registry:       c.registry,
		Store:          store,
		RequestTimeout: 250 * time.Millisecond,
		TickInterval:   5 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	return &node{addr: addr, ep: ep, rep: rep, u: u, store: store}, nil
}

// relisten rebinds a closed listen address. The old listener just closed,
// so the port is free modulo scheduler timing; a short bounded retry covers
// the gap.
func relisten(addr string) (*transport.TCPEndpoint, error) {
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		ep, err := transport.ListenTCP(addr)
		if err == nil {
			return ep, nil
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	return nil, fmt.Errorf("clusterbackend: relisten %s: %w", addr, lastErr)
}

// crashNode stops the real process. Peers' sends start failing (bounded by
// the transport deadlines) and, if the crashed node led the view, the
// request timeout deposes it through a view change.
func (c *cluster) crashNode(n *node) {
	n.crashed = true
	n.compromised = false
	n.underAttack = false
	if n.rep != nil {
		n.rep.Stop()
	}
	if n.ep != nil {
		_ = n.ep.Close()
	}
	c.tm.inc(c.tm.crashes)
}

// evictCrashed removes crashed members and returns the number evicted this
// step. Removal from the node set is schedule-driven (crash draws are
// seeded, so the set of evicted nodes is too); the consensus-level config
// op (Fig 17f) is the real-world effect and is best-effort — a failed
// Submit leaves a dead member in the live group's membership (it consumes
// fault budget, a real degradation the probes will see) and is counted,
// never retried against the schedule.
func (c *cluster) evictCrashed(t int) int {
	evicted := 0
	kept := c.nodes[:0]
	for i, n := range c.nodes {
		if !n.crashed {
			kept = append(kept, n)
			continue
		}
		c.digest.event(t, evEvict, i)
		c.m.Evictions++
		c.tm.inc(c.tm.evicts)
		evicted++
		op, err := minbft.EncodeConfigOp("evict", n.addr)
		if err == nil {
			_, err = c.admin.Submit(op)
		}
		if err != nil {
			c.tm.inc(c.tm.cfgFail)
		}
	}
	c.nodes = kept
	if evicted > 0 {
		c.refreshClients()
	}
	return evicted
}

// addNode grows the group (Fig 17e): a new replica starts with the
// enlarged membership and joins through consensus. The node joins the
// schedule unconditionally — real-world start/join failures leave a
// schedule node with a dead process (procDead), never a forked schedule.
func (c *cluster) addNode() {
	// Schedule-stream draws first, unconditionally.
	phase := 0
	if c.sc.DeltaR != recovery.InfiniteDeltaR && c.sc.DeltaR > 0 {
		phase = c.rng.Intn(c.sc.DeltaR)
	}
	ci := c.rng.Intn(c.fits.Len())
	c.nextID++

	fit := c.fits.Fitted(ci)
	n := &node{
		profile:       c.fits.Container(ci).Profile,
		zh:            fit.Healthy.Probs(),
		zc:            fit.Compromised.Probs(),
		belief:        c.sc.Params.PA,
		phase:         phase,
		compromisedAt: -1,
	}
	c.m.Additions++
	c.tm.inc(c.tm.adds)

	ep, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		c.tm.inc(c.tm.cfgFail)
		n.addr = fmt.Sprintf("dead-node-%d", c.nextID)
		n.procDead = true
		c.nodes = append(c.nodes, n)
		return
	}
	n.addr = ep.Addr()
	members, _ := c.realMembers()
	members = append(members, ep.Addr())
	started, err := c.startNodeOn(ep, members, phase, 0)
	if err != nil {
		c.tm.inc(c.tm.cfgFail)
		_ = ep.Close()
		n.procDead = true
		c.nodes = append(c.nodes, n)
		return
	}
	n.ep, n.rep, n.u, n.store = started.ep, started.rep, started.u, started.store
	c.nodes = append(c.nodes, n)

	op, err := minbft.EncodeConfigOp("join", ep.Addr())
	if err == nil {
		_, err = c.admin.Submit(op)
	}
	if err != nil {
		// The process runs but never joined the group; it stays a
		// schedule node whose messages the members ignore.
		c.tm.inc(c.tm.cfgFail)
		return
	}
	n.rep.RequestStateSync(1)
	c.refreshClients()
}

// finish assembles the metrics exactly as the emulation does, plus the
// real-measurement extras.
func (c *cluster) finish() Result {
	sc := &c.sc
	m := &c.m
	for _, n := range c.nodes {
		if n.compromisedAt >= 0 {
			c.recoveryTimes = append(c.recoveryTimes, recovery.NoRecoveryPenalty)
		}
	}
	m.Availability = float64(c.availableSteps) / float64(sc.Steps)
	m.QuorumAvailability = float64(c.quorumSteps) / float64(sc.Steps)
	if c.nodeSteps > 0 {
		m.RecoveryFrequency = float64(m.Recoveries) / float64(c.nodeSteps)
		m.AvgCost = c.costSum / float64(c.nodeSteps)
	}
	if len(c.recoveryTimes) > 0 {
		sum := 0.0
		for _, v := range c.recoveryTimes {
			sum += v
		}
		m.TimeToRecovery = sum / float64(len(c.recoveryTimes))
	}
	m.AvgNodes = c.totalNodes / float64(sc.Steps)
	if c.latencyCount > 0 {
		m.ServiceLatencyMS = c.latencySumMS / float64(c.latencyCount)
	}
	maxView := uint64(0)
	for _, n := range c.nodes {
		if n.crashed || n.rep == nil {
			continue
		}
		if v := n.rep.View(); v > maxView {
			maxView = v
		}
	}
	if c.tm.maxView != nil && float64(maxView) > c.tm.maxView.Value() {
		c.tm.maxView.Set(float64(maxView))
	}
	return Result{
		Metrics:        *m,
		ScheduleDigest: c.digest.h,
		Restarts:       c.restarts,
		MaxView:        maxView,
	}
}

// close stops every replica and client endpoint.
func (c *cluster) close() {
	for _, n := range c.nodes {
		if n.rep != nil {
			n.rep.Stop()
		}
		if n.ep != nil {
			_ = n.ep.Close()
		}
	}
	if c.adminEP != nil {
		_ = c.adminEP.Close()
	}
	if c.probeEP != nil {
		_ = c.probeEP.Close()
	}
}
