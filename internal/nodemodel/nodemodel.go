// Package nodemodel implements the per-node model of Section V-A of the
// paper: the three-state Markov transition function (eq. 2), the IDS-alert
// observation model (eq. 3), the recovery cost function (eq. 5), the scalar
// belief recursion of Appendix A, and the assumption checks of Theorem 1.
package nodemodel

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"tolerance/internal/dist"
	"tolerance/internal/pomdp"
)

// State of a node (Fig 3). Healthy and Compromised match the paper's
// numeric convention H, C = 0, 1; Crashed is the absorbing ∅ state.
type State int

// Node states.
const (
	Healthy     State = 0
	Compromised State = 1
	Crashed     State = 2
)

// String returns the paper's symbol for the state.
func (s State) String() string {
	switch s {
	case Healthy:
		return "H"
	case Compromised:
		return "C"
	case Crashed:
		return "∅"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Action of a node controller. Wait and Recover match the paper's numeric
// convention W, R = 0, 1.
type Action int

// Node controller actions.
const (
	Wait    Action = 0
	Recover Action = 1
)

// String returns the paper's symbol for the action.
func (a Action) String() string {
	switch a {
	case Wait:
		return "W"
	case Recover:
		return "R"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// ErrInvalidParams is returned when model parameters are out of range.
var ErrInvalidParams = errors.New("nodemodel: invalid parameters")

// Params collects the node model parameters of eq. (2)-(5) and Table 8.
type Params struct {
	// PA is the per-step probability that the attacker compromises the node.
	PA float64
	// PC1 is the per-step crash probability in the healthy state.
	PC1 float64
	// PC2 is the per-step crash probability in the compromised state.
	PC2 float64
	// PU is the per-step probability that a software update restores a
	// compromised node (eq. 2g).
	PU float64
	// Eta is the cost weight η >= 1 trading time-to-recovery against
	// recovery frequency (eq. 5).
	Eta float64
	// ZHealthy and ZCompromised are the observation distributions
	// Z(. | H) and Z(. | C) over alert counts (eq. 3). They must have the
	// same support size.
	ZHealthy     *dist.Categorical
	ZCompromised *dist.Categorical
}

// DefaultParams returns the paper's Table 8 configuration for the numerical
// evaluation of Problem 1 (Figs 5-8): pA = 0.1, pC1 = 1e-5, pC2 = 1e-3,
// pU = 0.02, η = 2, Z(.|H) = BetaBin(10, 0.7, 3), Z(.|C) = BetaBin(10, 1, 0.7).
func DefaultParams() Params {
	return Params{
		PA:           0.1,
		PC1:          1e-5,
		PC2:          1e-3,
		PU:           0.02,
		Eta:          2,
		ZHealthy:     dist.MustBetaBinomial(10, 0.7, 3).Categorical(),
		ZCompromised: dist.MustBetaBinomial(10, 1, 0.7).Categorical(),
	}
}

// Validate checks that probabilities are in range and the observation models
// are present with matching supports.
func (p Params) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"PA", p.PA}, {"PC1", p.PC1}, {"PC2", p.PC2}, {"PU", p.PU},
	} {
		if pr.v < 0 || pr.v > 1 || math.IsNaN(pr.v) {
			return fmt.Errorf("%w: %s = %v", ErrInvalidParams, pr.name, pr.v)
		}
	}
	if p.Eta < 1 {
		return fmt.Errorf("%w: Eta = %v < 1", ErrInvalidParams, p.Eta)
	}
	if p.ZHealthy == nil || p.ZCompromised == nil {
		return fmt.Errorf("%w: missing observation model", ErrInvalidParams)
	}
	if p.ZHealthy.Len() != p.ZCompromised.Len() {
		return fmt.Errorf("%w: observation supports differ (%d vs %d)",
			ErrInvalidParams, p.ZHealthy.Len(), p.ZCompromised.Len())
	}
	return nil
}

// CheckTheorem1Assumptions verifies assumptions A-E of Theorem 1 and returns
// a descriptive error naming the first violated assumption.
func (p Params) CheckTheorem1Assumptions() error {
	if err := p.Validate(); err != nil {
		return err
	}
	// A: all probabilities in the open interval (0, 1).
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"pA", p.PA}, {"pU", p.PU}, {"pC1", p.PC1}, {"pC2", p.PC2},
	} {
		if pr.v <= 0 || pr.v >= 1 {
			return fmt.Errorf("%w: assumption A violated: %s = %v not in (0,1)",
				ErrInvalidParams, pr.name, pr.v)
		}
	}
	// B: pA + pU <= 1.
	if p.PA+p.PU > 1 {
		return fmt.Errorf("%w: assumption B violated: pA + pU = %v > 1",
			ErrInvalidParams, p.PA+p.PU)
	}
	// C: pC1(pU-1) / (pA(pC1-1) + pC1(pU-1)) <= pC2.
	denom := p.PA*(p.PC1-1) + p.PC1*(p.PU-1)
	if denom != 0 {
		lhs := p.PC1 * (p.PU - 1) / denom
		if lhs > p.PC2 {
			return fmt.Errorf("%w: assumption C violated: bound %v > pC2 = %v",
				ErrInvalidParams, lhs, p.PC2)
		}
	}
	// D: Z(o|s) > 0 for all o, s.
	for o := 0; o < p.ZHealthy.Len(); o++ {
		if p.ZHealthy.Prob(o) <= 0 || p.ZCompromised.Prob(o) <= 0 {
			return fmt.Errorf("%w: assumption D violated: zero observation probability at o = %d",
				ErrInvalidParams, o)
		}
	}
	// E: Z is TP-2, equivalent for two rows to the monotone likelihood
	// ratio: ZC(o)/ZH(o) non-decreasing in o.
	prev := math.Inf(-1)
	for o := 0; o < p.ZHealthy.Len(); o++ {
		ratio := p.ZCompromised.Prob(o) / p.ZHealthy.Prob(o)
		if ratio < prev-1e-9 {
			return fmt.Errorf("%w: assumption E violated: likelihood ratio decreases at o = %d",
				ErrInvalidParams, o)
		}
		prev = ratio
	}
	return nil
}

// NumObs returns the size of the observation space.
func (p Params) NumObs() int { return p.ZHealthy.Len() }

// Fingerprint returns a canonical hash over every quantity that determines
// the model's control problems: the scalar parameters bit-for-bit and both
// observation distributions. Two Params values with the same fingerprint
// yield identical solutions of Problems 1 and 2, which is what strategy
// caches key on.
func (p Params) Fingerprint() string {
	values := []float64{p.PA, p.PC1, p.PC2, p.PU, p.Eta}
	for _, z := range []*dist.Categorical{p.ZHealthy, p.ZCompromised} {
		if z == nil {
			values = append(values, math.NaN())
			continue
		}
		values = append(values, float64(z.Len()))
		values = append(values, z.Probs()...)
	}
	return dist.Fingerprint(values...)
}

// Transition returns the distribution over successor states, eq. (2).
func (p Params) Transition(s State, a Action) [3]float64 {
	var out [3]float64
	switch s {
	case Crashed:
		out[Crashed] = 1 // (2a): absorbing
	case Healthy:
		out[Crashed] = p.PC1                    // (2b)
		out[Healthy] = (1 - p.PA) * (1 - p.PC1) // (2d)-(2e)
		out[Compromised] = (1 - p.PC1) * p.PA   // (2h)
	case Compromised:
		out[Crashed] = p.PC2 // (2c)
		if a == Recover {
			out[Healthy] = (1 - p.PA) * (1 - p.PC2) // (2f)
			out[Compromised] = (1 - p.PC2) * p.PA   // (2i)
		} else {
			out[Healthy] = (1 - p.PC2) * p.PU           // (2g)
			out[Compromised] = (1 - p.PC2) * (1 - p.PU) // (2j)
		}
	}
	return out
}

// Cost returns the immediate cost c_N(s, a) = η s - a η s + a of eq. (5);
// the crashed state incurs no cost (the node is evicted from the model).
func (p Params) Cost(s State, a Action) float64 {
	if s == Crashed {
		return 0
	}
	sv := 0.0
	if s == Compromised {
		sv = 1
	}
	av := 0.0
	if a == Recover {
		av = 1
	}
	return p.Eta*sv - av*p.Eta*sv + av
}

// Observation returns the alert distribution Z(. | s) (eq. 3). Crashed nodes
// emit no alerts; the model maps them to the healthy distribution, which is
// immaterial because the crashed state is absorbing with zero cost and is
// detected out-of-band (a crashed node stops reporting, §V-B).
func (p Params) Observation(s State) *dist.Categorical {
	if s == Compromised {
		return p.ZCompromised
	}
	return p.ZHealthy
}

// SampleTransition draws the successor state.
func (p Params) SampleTransition(rng *rand.Rand, s State, a Action) State {
	row := p.Transition(s, a)
	u := rng.Float64()
	acc := 0.0
	for st, pr := range row {
		acc += pr
		if u < acc {
			return State(st)
		}
	}
	return Crashed
}

// SampleObservation draws an alert count from Z(. | s).
func (p Params) SampleObservation(rng *rand.Rand, s State) int {
	return p.Observation(s).Sample(rng)
}

// UpdateBelief performs the scalar belief recursion of Appendix A restricted
// to the alive subspace: b is P[S = C | alive], a is the last action, o the
// new observation. The result is clamped to [0, 1].
func (p Params) UpdateBelief(b float64, a Action, o int) float64 {
	pred := p.PredictBelief(b, a)
	zc := p.ZCompromised.Prob(o)
	zh := p.ZHealthy.Prob(o)
	num := zc * pred
	den := num + zh*(1-pred)
	if den <= 0 {
		return b
	}
	nb := num / den
	return math.Min(1, math.Max(0, nb))
}

// PredictBelief returns the pre-observation compromise probability after
// taking action a from belief b, conditional on the node staying alive. The
// survival weighting (1-pC1 for healthy, 1-pC2 for compromised) matches the
// exact three-state Bayes update projected onto {H, C}.
func (p Params) PredictBelief(b float64, a Action) float64 {
	if a == Recover {
		// From either alive state, recovery resets the compromise
		// probability to pA (eq. 2f, 2h, 2i).
		return p.PA
	}
	wh := (1 - b) * (1 - p.PC1)
	wc := b * (1 - p.PC2)
	surv := wh + wc
	if surv <= 0 {
		return b
	}
	return (wh*p.PA + wc*(1-p.PU)) / surv
}

// SurvivalProb returns the probability that the node does not crash this
// step given belief b.
func (p Params) SurvivalProb(b float64) float64 {
	return (1-b)*(1-p.PC1) + b*(1-p.PC2)
}

// ExpectedCost returns the belief-expected immediate cost of eq. (5):
// η b (1-a) + a.
func (p Params) ExpectedCost(b float64, a Action) float64 {
	if a == Recover {
		return 1
	}
	return p.Eta * b
}

// POMDP assembles the three-state POMDP of Problem 1 for the exact solvers
// (IP baseline, Fig 4 alpha vectors). Observations from the crashed state use
// the healthy distribution (see Observation).
func (p Params) POMDP() (*pomdp.Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	numObs := p.NumObs()
	m := &pomdp.Model{
		NumStates:  3,
		NumActions: 2,
		NumObs:     numObs,
	}
	m.T = make([][][]float64, 2)
	for a := 0; a < 2; a++ {
		m.T[a] = make([][]float64, 3)
		for s := 0; s < 3; s++ {
			row := p.Transition(State(s), Action(a))
			m.T[a][s] = []float64{row[0], row[1], row[2]}
		}
	}
	m.Z = make([][]float64, 3)
	for s := 0; s < 3; s++ {
		m.Z[s] = p.Observation(State(s)).Probs()
	}
	m.C = make([][]float64, 3)
	for s := 0; s < 3; s++ {
		m.C[s] = []float64{p.Cost(State(s), Wait), p.Cost(State(s), Recover)}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("nodemodel: assembled POMDP invalid: %w", err)
	}
	return m, nil
}

// FailureProbByTime returns P[S_t = C or S_t = ∅ | no recoveries] for
// t = 1..horizon starting from the healthy state — the curves of Fig 5.
func (p Params) FailureProbByTime(horizon int) []float64 {
	// Three-state forward recursion under action Wait.
	mu := [3]float64{1, 0, 0}
	out := make([]float64, horizon+1)
	out[0] = 0
	for t := 1; t <= horizon; t++ {
		var next [3]float64
		for s := 0; s < 3; s++ {
			if mu[s] == 0 {
				continue
			}
			row := p.Transition(State(s), Wait)
			for s2 := 0; s2 < 3; s2++ {
				next[s2] += mu[s] * row[s2]
			}
		}
		mu = next
		out[t] = mu[Compromised] + mu[Crashed]
	}
	return out
}
