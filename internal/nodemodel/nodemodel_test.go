package nodemodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tolerance/internal/dist"
)

func TestDefaultParamsSatisfyTheorem1(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := p.CheckTheorem1Assumptions(); err != nil {
		t.Fatalf("Table 8 parameters must satisfy Thm 1 assumptions: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"negative pA", func(p *Params) { p.PA = -0.1 }},
		{"pA > 1", func(p *Params) { p.PA = 1.5 }},
		{"NaN pC1", func(p *Params) { p.PC1 = math.NaN() }},
		{"eta < 1", func(p *Params) { p.Eta = 0.5 }},
		{"missing ZH", func(p *Params) { p.ZHealthy = nil }},
		{"support mismatch", func(p *Params) {
			p.ZCompromised = dist.MustBetaBinomial(5, 1, 0.7).Categorical()
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("Validate should fail")
			}
		})
	}
}

func TestTheorem1AssumptionViolations(t *testing.T) {
	// Assumption A: boundary probabilities.
	p := DefaultParams()
	p.PU = 0
	if err := p.CheckTheorem1Assumptions(); err == nil {
		t.Error("pU = 0 should violate assumption A")
	}
	// Assumption B.
	p = DefaultParams()
	p.PA = 0.6
	p.PU = 0.5
	if err := p.CheckTheorem1Assumptions(); err == nil {
		t.Error("pA + pU > 1 should violate assumption B")
	}
	// Assumption E: likelihood ratio must be monotone (TP-2).
	p = DefaultParams()
	p.ZHealthy = dist.MustCategorical([]float64{0.6, 0.3, 0.1})
	p.ZCompromised = dist.MustCategorical([]float64{0.1, 0.3, 0.6})
	if err := p.CheckTheorem1Assumptions(); err != nil {
		t.Errorf("monotone ratio should pass E: %v", err)
	}
	p.ZCompromised = dist.MustCategorical([]float64{0.4, 0.1, 0.5})
	if err := p.CheckTheorem1Assumptions(); err == nil {
		t.Error("non-monotone likelihood ratio should violate assumption E")
	}
}

// Property: eq. (2) rows sum to one for all parameters and state-action
// pairs (the paper's transition function is stochastic by construction).
func TestTransitionRowsStochasticProperty(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		p := DefaultParams()
		p.PA = float64(a) / 256
		p.PC1 = float64(b) / 256
		p.PC2 = float64(c) / 256
		p.PU = float64(d) / 256
		for s := Healthy; s <= Crashed; s++ {
			for _, act := range []Action{Wait, Recover} {
				row := p.Transition(s, act)
				sum := row[0] + row[1] + row[2]
				if math.Abs(sum-1) > 1e-9 {
					return false
				}
				for _, v := range row {
					if v < 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTransitionMatchesEquation2(t *testing.T) {
	p := DefaultParams()
	// (2b): f(∅|H,.) = pC1.
	if got := p.Transition(Healthy, Wait)[Crashed]; got != p.PC1 {
		t.Errorf("f(∅|H,W) = %v, want %v", got, p.PC1)
	}
	// (2g): f(H|C,W) = (1-pC2) pU.
	if got, want := p.Transition(Compromised, Wait)[Healthy], (1-p.PC2)*p.PU; math.Abs(got-want) > 1e-15 {
		t.Errorf("f(H|C,W) = %v, want %v", got, want)
	}
	// (2f): f(H|C,R) = (1-pA)(1-pC2).
	if got, want := p.Transition(Compromised, Recover)[Healthy], (1-p.PA)*(1-p.PC2); math.Abs(got-want) > 1e-15 {
		t.Errorf("f(H|C,R) = %v, want %v", got, want)
	}
	// (2a): crashed absorbing.
	if got := p.Transition(Crashed, Recover); got != [3]float64{0, 0, 1} {
		t.Errorf("f(.|∅) = %v, want absorbing", got)
	}
}

func TestCostFunctionEquation5(t *testing.T) {
	p := DefaultParams() // eta = 2
	tests := []struct {
		s    State
		a    Action
		want float64
	}{
		{Healthy, Wait, 0},
		{Healthy, Recover, 1},
		{Compromised, Wait, 2}, // eta
		{Compromised, Recover, 1},
		{Crashed, Wait, 0},
		{Crashed, Recover, 0},
	}
	for _, tt := range tests {
		if got := p.Cost(tt.s, tt.a); got != tt.want {
			t.Errorf("Cost(%v, %v) = %v, want %v", tt.s, tt.a, got, tt.want)
		}
	}
}

func TestExpectedCost(t *testing.T) {
	p := DefaultParams()
	if got := p.ExpectedCost(0.5, Wait); math.Abs(got-1) > 1e-12 {
		t.Errorf("ExpectedCost(0.5, W) = %v, want eta*b = 1", got)
	}
	if got := p.ExpectedCost(0.5, Recover); got != 1 {
		t.Errorf("ExpectedCost(0.5, R) = %v, want 1", got)
	}
}

func TestBeliefUpdateMovesTowardEvidence(t *testing.T) {
	p := DefaultParams()
	b := 0.2
	// A maximal alert count is strong evidence of compromise.
	high := p.UpdateBelief(b, Wait, p.NumObs()-1)
	if high <= b {
		t.Errorf("belief after high alerts = %v, want > %v", high, b)
	}
	// Zero alerts should lower the belief relative to the predictive prior.
	low := p.UpdateBelief(0.9, Wait, 0)
	if low >= 0.9 {
		t.Errorf("belief after zero alerts = %v, want < 0.9", low)
	}
}

func TestBeliefUpdateAfterRecovery(t *testing.T) {
	p := DefaultParams()
	// After a recovery the predictive prior resets to pA regardless of b.
	b1 := p.UpdateBelief(0.99, Recover, 3)
	b2 := p.UpdateBelief(0.01, Recover, 3)
	if math.Abs(b1-b2) > 1e-12 {
		t.Errorf("post-recovery beliefs differ: %v vs %v", b1, b2)
	}
}

// Property: the scalar belief update agrees with the full 3-state Bayesian
// update of Appendix A projected on the alive subspace.
func TestScalarBeliefMatchesPOMDPUpdateProperty(t *testing.T) {
	p := DefaultParams()
	m, err := p.POMDP()
	if err != nil {
		t.Fatal(err)
	}
	f := func(braw uint16, araw bool, oraw uint8) bool {
		b := float64(braw) / 65536
		a := Wait
		if araw {
			a = Recover
		}
		o := int(oraw) % p.NumObs()

		scalar := p.UpdateBelief(b, a, o)

		full := []float64{1 - b, b, 0}
		post, _, err := m.UpdateBelief(full, int(a), o)
		if err != nil {
			return false
		}
		alive := post[0] + post[1]
		if alive <= 0 {
			return true
		}
		want := post[1] / alive
		return math.Abs(scalar-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestBeliefUpdateConvergesUnderSustainedIntrusion(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(4))
	b := p.PA
	for i := 0; i < 60; i++ {
		o := p.SampleObservation(rng, Compromised)
		b = p.UpdateBelief(b, Wait, o)
	}
	if b < 0.9 {
		t.Errorf("belief after 60 compromised observations = %v, want > 0.9", b)
	}
}

func TestSurvivalProb(t *testing.T) {
	p := DefaultParams()
	if got, want := p.SurvivalProb(0), 1-p.PC1; math.Abs(got-want) > 1e-15 {
		t.Errorf("SurvivalProb(0) = %v, want %v", got, want)
	}
	if got, want := p.SurvivalProb(1), 1-p.PC2; math.Abs(got-want) > 1e-15 {
		t.Errorf("SurvivalProb(1) = %v, want %v", got, want)
	}
}

func TestFailureProbByTimeMatchesFig5(t *testing.T) {
	// Fig 5 configuration: no recoveries, pU = 0.
	for _, pa := range []float64{0.1, 0.05, 0.025, 0.01} {
		p := DefaultParams()
		p.PA = pa
		p.PU = 0
		curve := p.FailureProbByTime(100)
		if curve[0] != 0 {
			t.Errorf("pA=%v: curve[0] = %v, want 0", pa, curve[0])
		}
		// Monotone non-decreasing.
		for i := 1; i < len(curve); i++ {
			if curve[i] < curve[i-1]-1e-12 {
				t.Fatalf("pA=%v: curve decreases at %d", pa, i)
			}
		}
		// Since crash probs are tiny, the curve approximates the geometric
		// CDF 1-(1-pA)^t.
		want := dist.GeometricCDF(pa, 50)
		if math.Abs(curve[50]-want) > 0.01 {
			t.Errorf("pA=%v: curve[50] = %v, want ~%v", pa, curve[50], want)
		}
	}
	// Ordering by pA at a fixed time (the visual content of Fig 5).
	p1, p2 := DefaultParams(), DefaultParams()
	p1.PA, p1.PU = 0.1, 0
	p2.PA, p2.PU = 0.01, 0
	if p1.FailureProbByTime(30)[30] <= p2.FailureProbByTime(30)[30] {
		t.Error("higher pA should fail sooner")
	}
}

func TestSampleTransitionDistribution(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(10))
	const n = 100000
	counts := map[State]int{}
	for i := 0; i < n; i++ {
		counts[p.SampleTransition(rng, Healthy, Wait)]++
	}
	row := p.Transition(Healthy, Wait)
	for s := Healthy; s <= Crashed; s++ {
		got := float64(counts[s]) / n
		if math.Abs(got-row[s]) > 0.01 {
			t.Errorf("empirical P(H->%v) = %v, want %v", s, got, row[s])
		}
	}
}

func TestPOMDPAssembly(t *testing.T) {
	p := DefaultParams()
	m, err := p.POMDP()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates != 3 || m.NumActions != 2 || m.NumObs != 11 {
		t.Errorf("dims = %d/%d/%d", m.NumStates, m.NumActions, m.NumObs)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.Eta = 0
	if _, err := bad.POMDP(); err == nil {
		t.Error("POMDP with invalid params should fail")
	}
}

func TestStateActionStrings(t *testing.T) {
	if Healthy.String() != "H" || Compromised.String() != "C" || Crashed.String() != "∅" {
		t.Error("state strings wrong")
	}
	if Wait.String() != "W" || Recover.String() != "R" {
		t.Error("action strings wrong")
	}
	if State(9).String() == "" || Action(9).String() == "" {
		t.Error("unknown values should still stringify")
	}
}
