package lp

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func mustProblem(t *testing.T, n int) *Problem {
	t.Helper()
	p, err := NewProblem(n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSolveBasicMaximization(t *testing.T) {
	// max x + y  s.t. x + y <= 4, x <= 2  ==> min -(x+y), optimum 4 at (2,2).
	p := mustProblem(t, 2)
	if err := p.SetObjective([]float64{-1, -1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddLe([]float64{1, 1}, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.AddLe([]float64{1, 0}, 2); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-(-4)) > 1e-9 {
		t.Errorf("objective = %v, want -4", sol.Objective)
	}
	if math.Abs(sol.X[0]+sol.X[1]-4) > 1e-9 {
		t.Errorf("x = %v, want sum 4", sol.X)
	}
}

func TestSolveEqualitySimplex(t *testing.T) {
	// min c.x over the probability simplex picks the smallest coefficient.
	p := mustProblem(t, 4)
	if err := p.SetObjective([]float64{3, 1, 2, 5}); err != nil {
		t.Fatal(err)
	}
	one := []float64{1, 1, 1, 1}
	if err := p.AddEq(one, 1); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-1) > 1e-9 {
		t.Errorf("objective = %v, want 1", sol.Objective)
	}
	if math.Abs(sol.X[1]-1) > 1e-9 {
		t.Errorf("x = %v, want e_1", sol.X)
	}
}

func TestSolveGeConstraint(t *testing.T) {
	// min x  s.t. x >= 3.5.
	p := mustProblem(t, 1)
	if err := p.SetObjective([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddGe([]float64{1}, 3.5); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X[0]-3.5) > 1e-9 {
		t.Errorf("x = %v, want 3.5", sol.X[0])
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// -x <= -2 is x >= 2.
	p := mustProblem(t, 1)
	if err := p.SetObjective([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddLe([]float64{-1}, -2); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X[0]-2) > 1e-9 {
		t.Errorf("x = %v, want 2", sol.X[0])
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := mustProblem(t, 1)
	if err := p.AddGe([]float64{1}, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.AddLe([]float64{1}, 1); err != nil {
		t.Fatal(err)
	}
	_, err := p.Solve()
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := mustProblem(t, 2)
	if err := p.SetObjective([]float64{-1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddGe([]float64{1, 0}, 1); err != nil {
		t.Fatal(err)
	}
	_, err := p.Solve()
	if !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Classic degenerate problem; must terminate (anti-cycling).
	p := mustProblem(t, 3)
	if err := p.SetObjective([]float64{-0.75, 150, -0.02}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddLe([]float64{0.25, -60, -0.04}, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.AddLe([]float64{0.5, -90, -0.02}, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.AddLe([]float64{0, 0, 1}, 1); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Known optimum of this Beale-style instance: objective -0.05 is not the
	// classic one (we perturbed it); just require finite termination with a
	// feasible solution.
	if sol.Status != StatusOptimal {
		t.Errorf("status = %v", sol.Status)
	}
}

func TestSolveRedundantEqualities(t *testing.T) {
	// x + y = 1 stated twice: a redundant row exercises the driven-out
	// artificial path.
	p := mustProblem(t, 2)
	if err := p.SetObjective([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddEq([]float64{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddEq([]float64{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-1) > 1e-9 || math.Abs(sol.X[0]-1) > 1e-9 {
		t.Errorf("sol = %+v, want x=(1,0)", sol)
	}
}

func TestProblemValidation(t *testing.T) {
	if _, err := NewProblem(0); err == nil {
		t.Error("NewProblem(0) should fail")
	}
	p := mustProblem(t, 2)
	if err := p.SetObjective([]float64{1}); err == nil {
		t.Error("wrong objective length should fail")
	}
	if err := p.AddEq([]float64{1}, 0); err == nil {
		t.Error("wrong constraint length should fail")
	}
	if err := p.AddLe([]float64{math.NaN(), 0}, 0); err == nil {
		t.Error("NaN coefficient should fail")
	}
	if err := p.AddGe([]float64{1, 0}, math.Inf(1)); err == nil {
		t.Error("infinite rhs should fail")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusOptimal:        "optimal",
		StatusInfeasible:     "infeasible",
		StatusUnbounded:      "unbounded",
		StatusIterationLimit: "iteration limit",
		Status(99):           "unknown(99)",
	} {
		if got := s.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

// Property: for the fractional allocation LP
//
//	min c.x  s.t.  sum x = S,  x_i <= u_i,  x >= 0
//
// the optimum equals the greedy fill of cheapest coefficients first.
func TestSolveMatchesGreedyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		c := make([]float64, n)
		u := make([]float64, n)
		totalCap := 0.0
		for i := 0; i < n; i++ {
			c[i] = math.Round(r.Float64()*100) / 10
			u[i] = math.Round(r.Float64()*50)/10 + 0.1
			totalCap += u[i]
		}
		s := totalCap * (0.2 + 0.6*r.Float64())

		// Greedy optimum.
		type item struct{ cost, cap float64 }
		items := make([]item, n)
		for i := 0; i < n; i++ {
			items[i] = item{c[i], u[i]}
		}
		sort.Slice(items, func(a, b int) bool { return items[a].cost < items[b].cost })
		remaining := s
		want := 0.0
		for _, it := range items {
			take := math.Min(remaining, it.cap)
			want += take * it.cost
			remaining -= take
			if remaining <= 0 {
				break
			}
		}

		p, err := NewProblem(n)
		if err != nil {
			return false
		}
		if err := p.SetObjective(c); err != nil {
			return false
		}
		one := make([]float64, n)
		for i := range one {
			one[i] = 1
		}
		if err := p.AddEq(one, s); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			row := make([]float64, n)
			row[i] = 1
			if err := p.AddLe(row, u[i]); err != nil {
				return false
			}
		}
		sol, err := p.Solve()
		if err != nil {
			return false
		}
		return math.Abs(sol.Objective-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: solutions are primal feasible.
func TestSolutionFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		m := 1 + r.Intn(4)
		p, err := NewProblem(n)
		if err != nil {
			return false
		}
		c := make([]float64, n)
		for i := range c {
			c[i] = r.Float64()*4 - 1
		}
		if err := p.SetObjective(c); err != nil {
			return false
		}
		type row struct {
			coeffs []float64
			rhs    float64
		}
		var rowsLe []row
		for k := 0; k < m; k++ {
			coeffs := make([]float64, n)
			for i := range coeffs {
				coeffs[i] = r.Float64() // non-negative rows + bounded box
			}
			rhs := r.Float64()*10 + 1
			rowsLe = append(rowsLe, row{coeffs, rhs})
			if err := p.AddLe(coeffs, rhs); err != nil {
				return false
			}
		}
		// Bounding box keeps the LP bounded.
		for i := 0; i < n; i++ {
			coeffs := make([]float64, n)
			coeffs[i] = 1
			rowsLe = append(rowsLe, row{coeffs, 20})
			if err := p.AddLe(coeffs, 20); err != nil {
				return false
			}
		}
		sol, err := p.Solve()
		if err != nil {
			return false
		}
		for _, rw := range rowsLe {
			lhs := 0.0
			for i := range rw.coeffs {
				lhs += rw.coeffs[i] * sol.X[i]
			}
			if lhs > rw.rhs+1e-7 {
				return false
			}
		}
		for _, x := range sol.X {
			if x < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSetMaxIterations(t *testing.T) {
	p := mustProblem(t, 2)
	if err := p.SetObjective([]float64{-1, -1}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddLe([]float64{1, 1}, 4); err != nil {
		t.Fatal(err)
	}
	p.SetMaxIterations(1)
	// With one iteration allowed the solver may or may not finish; it must
	// either return optimal or ErrIterationLimit, never hang.
	if _, err := p.Solve(); err != nil && !errors.Is(err, ErrIterationLimit) {
		t.Errorf("unexpected error: %v", err)
	}
}
