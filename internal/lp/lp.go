// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    c^T x
//	subject to  A_eq x  = b_eq
//	            A_le x <= b_le
//	            A_ge x >= b_ge
//	            x >= 0
//
// It is the LP backend of Algorithm 2 (the occupancy-measure linear program
// (14) that computes the optimal replication strategy) and of the alpha-vector
// domination checks in the incremental-pruning POMDP solver. The paper uses
// the CBC solver (Table 8); this package provides an equivalent exact solver
// built only on the standard library.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Status describes the outcome of a Solve call.
type Status int

// Solver outcomes.
const (
	StatusOptimal Status = iota + 1
	StatusInfeasible
	StatusUnbounded
	StatusIterationLimit
)

// String returns a human-readable status.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterationLimit:
		return "iteration limit"
	default:
		return fmt.Sprintf("unknown(%d)", int(s))
	}
}

// Errors returned by Solve.
var (
	ErrInfeasible     = errors.New("lp: infeasible")
	ErrUnbounded      = errors.New("lp: unbounded")
	ErrIterationLimit = errors.New("lp: iteration limit reached")
	ErrBadProblem     = errors.New("lp: malformed problem")
)

type constraint struct {
	coeffs []float64
	rhs    float64
	kind   int // 0 ==, 1 <=, 2 >=
}

// Problem is a linear program under construction. Create one with NewProblem,
// add constraints, then call Solve.
type Problem struct {
	numVars     int
	objective   []float64
	constraints []constraint
	maxIter     int
}

// NewProblem creates a problem with the given number of non-negative
// decision variables and a zero objective.
func NewProblem(numVars int) (*Problem, error) {
	if numVars < 1 {
		return nil, fmt.Errorf("%w: numVars = %d", ErrBadProblem, numVars)
	}
	return &Problem{
		numVars:   numVars,
		objective: make([]float64, numVars),
	}, nil
}

// SetObjective sets the minimization objective coefficients.
func (p *Problem) SetObjective(c []float64) error {
	if len(c) != p.numVars {
		return fmt.Errorf("%w: objective length %d, want %d", ErrBadProblem, len(c), p.numVars)
	}
	copy(p.objective, c)
	return nil
}

// SetMaxIterations overrides the simplex iteration limit (default: a bound
// proportional to problem size).
func (p *Problem) SetMaxIterations(n int) { p.maxIter = n }

func (p *Problem) addConstraint(coeffs []float64, rhs float64, kind int) error {
	if len(coeffs) != p.numVars {
		return fmt.Errorf("%w: constraint length %d, want %d", ErrBadProblem, len(coeffs), p.numVars)
	}
	for i, v := range coeffs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: coeff[%d] = %v", ErrBadProblem, i, v)
		}
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return fmt.Errorf("%w: rhs = %v", ErrBadProblem, rhs)
	}
	cp := make([]float64, len(coeffs))
	copy(cp, coeffs)
	p.constraints = append(p.constraints, constraint{coeffs: cp, rhs: rhs, kind: kind})
	return nil
}

// AddEq adds the constraint coeffs . x = rhs.
func (p *Problem) AddEq(coeffs []float64, rhs float64) error {
	return p.addConstraint(coeffs, rhs, 0)
}

// AddLe adds the constraint coeffs . x <= rhs.
func (p *Problem) AddLe(coeffs []float64, rhs float64) error {
	return p.addConstraint(coeffs, rhs, 1)
}

// AddGe adds the constraint coeffs . x >= rhs.
func (p *Problem) AddGe(coeffs []float64, rhs float64) error {
	return p.addConstraint(coeffs, rhs, 2)
}

// Solution holds the result of a Solve call.
type Solution struct {
	// X is the optimal assignment of the decision variables.
	X []float64
	// Objective is c^T X.
	Objective float64
	// Status is StatusOptimal on success.
	Status Status
	// Iterations is the total number of simplex pivots performed.
	Iterations int
}

const pivotEps = 1e-9

// Solve runs the two-phase simplex method and returns the optimal solution,
// or an error wrapping ErrInfeasible / ErrUnbounded / ErrIterationLimit.
func (p *Problem) Solve() (*Solution, error) {
	m := len(p.constraints)
	n := p.numVars

	// Count auxiliary columns: one slack/surplus per inequality, one
	// artificial per equality or >= row (and per <= row with negative rhs
	// after normalization).
	numSlack := 0
	for _, c := range p.constraints {
		if c.kind != 0 {
			numSlack++
		}
	}

	// Column layout: [structural | slack/surplus | artificial].
	// First normalize rows so rhs >= 0.
	rows := make([][]float64, m)
	rhs := make([]float64, m)
	kinds := make([]int, m)
	for i, c := range p.constraints {
		row := make([]float64, n)
		copy(row, c.coeffs)
		r := c.rhs
		k := c.kind
		if r < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			r = -r
			switch k {
			case 1:
				k = 2
			case 2:
				k = 1
			}
		}
		rows[i] = row
		rhs[i] = r
		kinds[i] = k
	}

	// Assign slack columns and determine which rows need artificials.
	slackCol := make([]int, m) // -1 if none
	needArtificial := make([]bool, m)
	next := n
	for i := range rows {
		slackCol[i] = -1
		switch kinds[i] {
		case 0:
			needArtificial[i] = true
		case 1:
			slackCol[i] = next
			next++
		case 2:
			slackCol[i] = next
			next++
			needArtificial[i] = true
		}
	}
	artCol := make([]int, m)
	numArt := 0
	for i := range rows {
		artCol[i] = -1
		if needArtificial[i] {
			artCol[i] = next
			next++
			numArt++
		}
	}
	totalCols := next
	_ = numSlack

	// Build tableau: m rows of totalCols+1 (last column = rhs).
	t := &tableau{
		m:     m,
		n:     totalCols,
		a:     make([][]float64, m),
		b:     make([]float64, m),
		basis: make([]int, m),
	}
	for i := range rows {
		t.a[i] = make([]float64, totalCols)
		copy(t.a[i], rows[i])
		if slackCol[i] >= 0 {
			if kinds[i] == 1 {
				t.a[i][slackCol[i]] = 1
			} else {
				t.a[i][slackCol[i]] = -1 // surplus
			}
		}
		if artCol[i] >= 0 {
			t.a[i][artCol[i]] = 1
			t.basis[i] = artCol[i]
		} else {
			t.basis[i] = slackCol[i]
		}
		t.b[i] = rhs[i]
	}

	maxIter := p.maxIter
	if maxIter <= 0 {
		maxIter = 200 * (m + totalCols + 10)
	}

	iters := 0
	// Phase 1: minimize the sum of artificial variables.
	if numArt > 0 {
		phase1 := make([]float64, totalCols)
		for i := range rows {
			if artCol[i] >= 0 {
				phase1[artCol[i]] = 1
			}
		}
		it, err := t.run(phase1, maxIter)
		iters += it
		if err != nil {
			return nil, err
		}
		if t.objectiveValue(phase1) > 1e-7 {
			return nil, ErrInfeasible
		}
		// Drive any artificial variables out of the basis; rows where that is
		// impossible are redundant and removed so that later pivots cannot
		// push the artificial above zero.
		var redundant []int
		for i := 0; i < t.m; i++ {
			if t.basis[i] < totalCols-numArt {
				continue
			}
			pivoted := false
			for j := 0; j < totalCols-numArt; j++ {
				if math.Abs(t.a[i][j]) > pivotEps {
					t.pivot(i, j)
					iters++
					pivoted = true
					break
				}
			}
			if !pivoted {
				redundant = append(redundant, i)
			}
		}
		if len(redundant) > 0 {
			t.dropRows(redundant)
		}
		// Forbid artificial columns in phase 2.
		t.forbidden = totalCols - numArt
	} else {
		t.forbidden = totalCols
	}

	// Phase 2: minimize the real objective.
	obj := make([]float64, totalCols)
	copy(obj, p.objective)
	it, err := t.run(obj, maxIter-iters)
	iters += it
	if err != nil {
		return nil, err
	}

	x := make([]float64, n)
	for i, bv := range t.basis {
		if bv < n {
			x[bv] = t.b[i]
		}
	}
	objVal := 0.0
	for j := 0; j < n; j++ {
		objVal += p.objective[j] * x[j]
	}
	return &Solution{X: x, Objective: objVal, Status: StatusOptimal, Iterations: iters}, nil
}

// tableau is the dense simplex working state.
type tableau struct {
	m, n      int
	a         [][]float64
	b         []float64
	basis     []int
	z         []float64 // reduced-cost row for the active objective
	forbidden int       // columns >= forbidden may not enter the basis (phase 2)
}

func (t *tableau) objectiveValue(c []float64) float64 {
	v := 0.0
	for i, bv := range t.basis {
		v += c[bv] * t.b[i]
	}
	return v
}

// computeReducedCosts initializes the reduced-cost row for objective c:
// z_j = c_j - c_B^T B^{-1} A_j. With the tableau in canonical form,
// B^{-1} A_j is the stored column.
func (t *tableau) computeReducedCosts(c []float64) {
	z := make([]float64, t.n)
	copy(z, c)
	for i, bv := range t.basis {
		cb := c[bv]
		if cb == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < t.n; j++ {
			z[j] -= cb * row[j]
		}
	}
	t.z = z
}

// run performs simplex pivots minimizing objective c until optimality.
// It uses Dantzig pricing and switches to Bland's rule after a stall
// threshold to guarantee termination.
func (t *tableau) run(c []float64, maxIter int) (int, error) {
	if maxIter <= 0 {
		return 0, ErrIterationLimit
	}
	t.computeReducedCosts(c)
	defer func() { t.z = nil }()
	limit := t.forbidden
	if limit == 0 {
		limit = t.n
	}
	blandAfter := maxIter / 2
	for iter := 0; iter < maxIter; iter++ {
		// Pricing.
		enter := -1
		if iter < blandAfter {
			best := -1e-9
			for j := 0; j < limit; j++ {
				if rc := t.z[j]; rc < best {
					best = rc
					enter = j
				}
			}
		} else {
			for j := 0; j < limit; j++ {
				if t.z[j] < -1e-9 {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return iter, nil // optimal
		}
		// Ratio test (Bland tie-break on basis index for anti-cycling).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij > pivotEps {
				ratio := t.b[i] / aij
				if ratio < bestRatio-1e-12 ||
					(ratio < bestRatio+1e-12 && (leave < 0 || t.basis[i] < t.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return iter, ErrUnbounded
		}
		t.pivot(leave, enter)
	}
	return maxIter, ErrIterationLimit
}

// pivot makes column j basic in row i.
func (t *tableau) pivot(i, j int) {
	pv := t.a[i][j]
	rowI := t.a[i]
	inv := 1 / pv
	for k := 0; k < t.n; k++ {
		rowI[k] *= inv
	}
	t.b[i] *= inv
	rowI[j] = 1
	for r := 0; r < t.m; r++ {
		if r == i {
			continue
		}
		f := t.a[r][j]
		if f == 0 {
			continue
		}
		row := t.a[r]
		for k := 0; k < t.n; k++ {
			row[k] -= f * rowI[k]
		}
		row[j] = 0
		t.b[r] -= f * t.b[i]
		if t.b[r] < 0 && t.b[r] > -1e-11 {
			t.b[r] = 0
		}
	}
	if t.z != nil {
		if f := t.z[j]; f != 0 {
			for k := 0; k < t.n; k++ {
				t.z[k] -= f * rowI[k]
			}
			t.z[j] = 0
		}
	}
	t.basis[i] = j
}

// dropRows removes the given (sorted ascending) row indices from the tableau.
func (t *tableau) dropRows(rows []int) {
	drop := make(map[int]bool, len(rows))
	for _, r := range rows {
		drop[r] = true
	}
	var a [][]float64
	var b []float64
	var basis []int
	for i := 0; i < t.m; i++ {
		if drop[i] {
			continue
		}
		a = append(a, t.a[i])
		b = append(b, t.b[i])
		basis = append(basis, t.basis[i])
	}
	t.a, t.b, t.basis = a, b, basis
	t.m = len(a)
}
