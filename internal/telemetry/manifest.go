package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// Manifest is the structured trailer of one fleet run: what was executed
// (suite fingerprint, shard spec, seed, scenario count), on what (worker
// count, Go and binary version, VCS state), and how it went (wall-clock,
// phase timings, the final metric snapshot). Manifests travel on side
// channels only — a file next to the checkpoint, or stderr — never stdout,
// because stdout is the byte-stable suite output and a manifest is
// partition- and machine-dependent by design (wall-clock, throughput, cache
// hits all vary across shardings that produce identical suite output).
type Manifest struct {
	// Suite is the suite name ("paper-grid", a suite-file path, ...).
	Suite string `json:"suite,omitempty"`
	// Fingerprint is the suite's deterministic content fingerprint.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Seed is the suite master seed.
	Seed int64 `json:"seed,omitempty"`
	// Shard is the "i/n" shard spec ("" for a full run).
	Shard string `json:"shard,omitempty"`
	// Scenarios is the number of scenarios this run folded.
	Scenarios int `json:"scenarios"`
	// Workers is the fleet worker-pool size used.
	Workers int `json:"workers,omitempty"`

	// GoVersion, Version and VCS describe the binary.
	GoVersion string `json:"goVersion"`
	Version   string `json:"version,omitempty"`
	VCS       *VCS   `json:"vcs,omitempty"`

	// Start, End and WallSeconds bound the run.
	Start       time.Time `json:"start"`
	End         time.Time `json:"end"`
	WallSeconds float64   `json:"wallSeconds"`

	// Telemetry is the final metric snapshot; Counters reconcile with the
	// run (fleet.scenarios_folded == Scenarios).
	Telemetry Snapshot `json:"telemetry"`
}

// VCS is the binary's version-control state, when the build embedded one.
type VCS struct {
	Revision string `json:"revision,omitempty"`
	Time     string `json:"time,omitempty"`
	Modified bool   `json:"modified,omitempty"`
}

// NewManifest seeds a manifest with build/version info and the start time.
// Fill the run fields and call Finish before writing.
func NewManifest() *Manifest {
	m := &Manifest{GoVersion: runtime.Version(), Start: time.Now()}
	if info, ok := debug.ReadBuildInfo(); ok {
		if v := info.Main.Version; v != "" && v != "(devel)" {
			m.Version = v
		}
		var vcs VCS
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				vcs.Revision = s.Value
			case "vcs.time":
				vcs.Time = s.Value
			case "vcs.modified":
				vcs.Modified = s.Value == "true"
			}
		}
		if vcs != (VCS{}) {
			m.VCS = &vcs
		}
	}
	return m
}

// Finish stamps the end time and captures the collector's final snapshot.
func (m *Manifest) Finish(c *Collector) {
	m.End = time.Now()
	m.WallSeconds = m.End.Sub(m.Start).Seconds()
	if c != nil {
		m.Telemetry = c.Snapshot()
	}
}

// Encode writes the manifest as indented JSON.
func (m *Manifest) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile writes the manifest to path atomically (temp file + rename),
// or to stderr when path is "-".
func (m *Manifest) WriteFile(path string) error {
	if path == "-" {
		return m.Encode(os.Stderr)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := m.Encode(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("write manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
