package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// expvarCollector is the collector /debug/vars reads; the expvar registry
// is process-global and an expvar name can only be published once, so the
// published Func indirects through this pointer and the most recently
// served collector wins.
var expvarCollector atomic.Pointer[Collector]

var expvarOnce sync.Once

func publishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any {
			if c := expvarCollector.Load(); c != nil {
				return c.Snapshot()
			}
			return Snapshot{}
		}))
	})
}

// Handler returns the introspection mux for a collector:
//
//	/metrics          indented JSON Snapshot
//	/debug/vars       the expvar registry (includes "telemetry")
//	/debug/pprof/*    the standard pprof handlers
//
// Handlers only read; serving one has no effect on run output.
func Handler(c *Collector) http.Handler {
	expvarCollector.Store(c)
	publishExpvar()

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(c.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a live introspection endpoint started by Serve.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the introspection endpoint on addr (":0" picks a free
// port — read the bound address back with Addr). The server runs until
// Close; serve errors after Close are discarded.
func Serve(addr string, c *Collector) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(c)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr is the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }
