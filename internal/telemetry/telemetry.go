// Package telemetry is the zero-overhead observability core of the
// evaluation system: per-worker sharded counters and fixed-bucket
// histograms that the fleet engine, the strategy cache and the training
// loops record into, snapshotted on demand for the live progress meter,
// the run manifest and the HTTP introspection endpoint.
//
// The package-wide invariant is that telemetry NEVER participates in
// results: no metric read or write touches an rng stream, reorders a fold,
// or writes to stdout, so every suite, solve and training output is
// byte-identical with telemetry attached or detached (enforced by
// TestTelemetryOutputInvariant and the CI metrics-smoke diff). Recording is
// allocation-free — a counter add is one uncontended atomic add into the
// recording worker's own cache-line-padded cell, a histogram observation is
// three — so the fleet hot path stays at zero allocations per scenario with
// instrumentation active (TestTelemetryHotPathZeroAllocs).
//
// Sharding, not locking, is what makes recording cheap: every metric holds
// NumShards independent cells and each fleet worker records into the cell
// indexed by its worker id, so cells are single-writer in steady state and
// never bounce between cores. Snapshot folds the cells with atomic loads,
// which is why a snapshot can be taken at any moment — mid-run, from the
// HTTP handler, from the progress meter — without pausing workers.
package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// NumShards is the number of independent cells per metric. Worker indices
// are masked into the shard space, so any worker count is valid; beyond
// NumShards workers, cells are shared (still correct, merely contended).
// It must be a power of two.
const NumShards = 32

const shardMask = NumShards - 1

// cell is one shard of a counter, padded to its own cache line so two
// workers' counts never share one.
type cell struct {
	v pad64
}

// pad64 is an atomically updated int64 padded to a 64-byte cache line.
type pad64 struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing, per-worker sharded count.
type Counter struct {
	name  string
	cells [NumShards]cell
}

// Add folds n into the shard's cell. Shard is typically the recording
// worker's index; any int is valid (it is masked into the shard space).
func (c *Counter) Add(shard int, n int64) {
	c.cells[shard&shardMask].v.n.Add(n)
}

// Inc adds one to the shard's cell.
func (c *Counter) Inc(shard int) { c.Add(shard, 1) }

// Total sums the cells. It is safe to call while workers record.
func (c *Counter) Total() int64 {
	var t int64
	for i := range c.cells {
		t += c.cells[i].v.n.Load()
	}
	return t
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is a last-value (or running-minimum) float64 metric: optimizer
// best-objective-so-far, last PPO evaluation cost, worker-pool size.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Min folds v as a running minimum (for best-so-far objectives). The
// zero-value gauge starts at +Inf semantics: a gauge that was never Set or
// Min'ed reports NaN-free snapshots because Snapshot drops non-finite
// values.
func (g *Gauge) Min(v float64) {
	if v == 0 {
		// +0.0 has the zero bit pattern, which encodes "unset"; store -0.0
		// (equal under <=) so the observation is distinguishable from it.
		v = math.Copysign(0, -1)
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if old != 0 && cur <= v {
			return
		}
		if old == 0 {
			// First observation: the zero value encodes "unset" (0 bits is
			// +0.0, which no Min caller can distinguish — Set(0) callers use
			// Set). Claim it with v directly.
			if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
				return
			}
			continue
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value loads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Histogram is a fixed-bucket, per-worker sharded distribution of int64
// observations (durations in nanoseconds, step counts). Bucket bounds are
// fixed at registration, so observing is a short linear scan plus three
// uncontended atomic adds — no allocation, ever.
type Histogram struct {
	name   string
	bounds []int64 // ascending inclusive upper bounds
	stride int     // slots per shard: count, sum, len(bounds) buckets, overflow
	cells  []pad8  // NumShards * stride
}

// pad8 is a bare atomic int64 slot (histogram rows are spaced by stride, so
// per-slot padding would waste cache; the row layout keeps one worker's
// slots contiguous and workers' rows apart).
type pad8 struct {
	n atomic.Int64
}

// Observe folds one value into the shard's cells.
func (h *Histogram) Observe(shard int, v int64) {
	row := (shard & shardMask) * h.stride
	h.cells[row].n.Add(1)
	h.cells[row+1].n.Add(v)
	for i, ub := range h.bounds {
		if v <= ub {
			h.cells[row+2+i].n.Add(1)
			return
		}
	}
	h.cells[row+2+len(h.bounds)].n.Add(1)
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// snapshot folds the shards.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Buckets: make([]BucketCount, len(h.bounds))}
	for i, ub := range h.bounds {
		s.Buckets[i].Le = ub
	}
	for shard := 0; shard < NumShards; shard++ {
		row := shard * h.stride
		s.Count += h.cells[row].n.Load()
		s.Sum += h.cells[row+1].n.Load()
		for i := range h.bounds {
			s.Buckets[i].Count += h.cells[row+2+i].n.Load()
		}
		s.Overflow += h.cells[row+2+len(h.bounds)].n.Load()
	}
	return s
}

// DurationBuckets is the standard exponential bucket layout for duration
// histograms (nanosecond observations from 10µs to ~41s, factor 4).
func DurationBuckets() []int64 {
	bounds := make([]int64, 0, 12)
	for ub := int64(10_000); ub < 45_000_000_000; ub *= 4 {
		bounds = append(bounds, ub)
	}
	return bounds
}

// BucketCount is one histogram bucket: the count of observations at most Le
// (not cumulative across buckets; Overflow holds the rest).
type BucketCount struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a folded histogram.
type HistogramSnapshot struct {
	Count    int64         `json:"count"`
	Sum      int64         `json:"sum"`
	Buckets  []BucketCount `json:"buckets,omitempty"`
	Overflow int64         `json:"overflow,omitempty"`
}

// Mean returns Sum/Count (zero when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Phase is one completed wall-clock phase of a run (suite expansion, the
// offline fit, scenario execution, ...), in completion order.
type Phase struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Snapshot is a point-in-time fold of every registered metric — the JSON
// document served at /metrics, embedded in run manifests, and read by the
// progress meter. Map keys marshal sorted, so two snapshots of identical
// state serialize identically.
type Snapshot struct {
	// UptimeSeconds is the collector's age at snapshot time.
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// Counters holds every counter total, including registered counter
	// funcs (external sources such as the strategy-cache statistics).
	Counters map[string]int64 `json:"counters"`
	// Gauges holds every finite gauge value (never-set gauges are omitted).
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Histograms holds the folded distributions.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Phases lists completed wall-clock phases in completion order.
	Phases []Phase `json:"phases,omitempty"`
}

// Counter returns a counter total (zero when absent) — sugar for manifest
// and meter consumers.
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Collector owns a process's (or run's) registered metrics. Registration
// takes a mutex and may allocate; recording through the returned handles is
// lock- and allocation-free. Registering an already-registered name returns
// the existing metric, so collectors are shared across sequential runs.
type Collector struct {
	mu     sync.Mutex
	start  time.Time
	order  []string // registration order, for tests and debugging
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	funcs  map[string]func() int64
	phases []Phase
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{
		start:  time.Now(),
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
		funcs:  make(map[string]func() int64),
	}
}

// Counter registers (or retrieves) a sharded counter.
func (c *Collector) Counter(name string) *Counter {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.ctrs[name]; ok {
		return m
	}
	m := &Counter{name: name}
	c.ctrs[name] = m
	c.order = append(c.order, name)
	return m
}

// Gauge registers (or retrieves) a gauge.
func (c *Collector) Gauge(name string) *Gauge {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.gauges[name]; ok {
		return m
	}
	m := &Gauge{name: name}
	c.gauges[name] = m
	c.order = append(c.order, name)
	return m
}

// Histogram registers (or retrieves) a fixed-bucket histogram. The first
// registration's bounds win; bounds must be ascending.
func (c *Collector) Histogram(name string, bounds []int64) *Histogram {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.hists[name]; ok {
		return m
	}
	b := append([]int64(nil), bounds...)
	m := &Histogram{
		name:   name,
		bounds: b,
		stride: len(b) + 3,
		cells:  make([]pad8, NumShards*(len(b)+3)),
	}
	c.hists[name] = m
	c.order = append(c.order, name)
	return m
}

// CounterFunc registers an external counter source, polled at snapshot
// time — how the strategy cache's existing atomic statistics join the
// snapshot without being counted twice. Re-registering a name replaces the
// source (a fresh cache attached to a shared collector supersedes the old).
func (c *Collector) CounterFunc(name string, fn func() int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.funcs[name]; !ok {
		c.order = append(c.order, name)
	}
	c.funcs[name] = fn
}

// Phase starts a named wall-clock phase and returns the function that ends
// it; the completed phase joins the snapshot's Phases list. Phases are for
// coarse run structure (expand, fit, execute), not hot paths.
func (c *Collector) Phase(name string) func() {
	start := time.Now()
	return func() {
		sec := time.Since(start).Seconds()
		c.mu.Lock()
		c.phases = append(c.phases, Phase{Name: name, Seconds: sec})
		c.mu.Unlock()
	}
}

// Snapshot folds every registered metric. It is safe to call concurrently
// with recording; counts are per-cell atomic, so a snapshot is a consistent
// recent view, not a stop-the-world cut.
func (c *Collector) Snapshot() Snapshot {
	c.mu.Lock()
	ctrs := make([]*Counter, 0, len(c.ctrs))
	for _, m := range c.ctrs {
		ctrs = append(ctrs, m)
	}
	gauges := make([]*Gauge, 0, len(c.gauges))
	for _, m := range c.gauges {
		gauges = append(gauges, m)
	}
	hists := make([]*Histogram, 0, len(c.hists))
	for _, m := range c.hists {
		hists = append(hists, m)
	}
	funcs := make(map[string]func() int64, len(c.funcs))
	for name, fn := range c.funcs {
		funcs[name] = fn
	}
	phases := append([]Phase(nil), c.phases...)
	start := c.start
	c.mu.Unlock()

	s := Snapshot{
		UptimeSeconds: time.Since(start).Seconds(),
		Counters:      make(map[string]int64, len(ctrs)+len(funcs)),
		Gauges:        make(map[string]float64, len(gauges)),
		Histograms:    make(map[string]HistogramSnapshot, len(hists)),
		Phases:        phases,
	}
	for _, m := range ctrs {
		s.Counters[m.name] = m.Total()
	}
	for name, fn := range funcs {
		s.Counters[name] = fn()
	}
	for _, m := range gauges {
		if v := m.Value(); !math.IsInf(v, 0) && !math.IsNaN(v) {
			s.Gauges[m.name] = v
		}
	}
	for _, m := range hists {
		s.Histograms[m.name] = m.snapshot()
	}
	return s
}

// Training is the sink the learning loops publish coarse progress through:
// Algorithm 1 objective evaluations and best-objective-so-far, PPO
// iteration count and per-iteration evaluation cost. All methods are safe
// for concurrent use (candidate evaluations run on a worker pool) and
// allocation-free.
type Training struct {
	// Evals counts objective evaluations (Algorithm 1 candidates).
	Evals *Counter
	// Iterations counts PPO rollout/update cycles.
	Iterations *Counter
	// Best tracks the best objective value seen (running minimum).
	Best *Gauge
	// LastCost is the most recent PPO policy-evaluation cost.
	LastCost *Gauge
}

// NewTraining registers the training metrics on the collector.
func NewTraining(c *Collector) *Training {
	return &Training{
		Evals:      c.Counter("training.evals"),
		Iterations: c.Counter("training.iterations"),
		Best:       c.Gauge("training.best_objective"),
		LastCost:   c.Gauge("training.last_eval_cost"),
	}
}

// ObserveEval records one objective evaluation — the hook Algorithm 1
// threads through opt.Instrument. Nil-safe so callers can pass the method
// value unconditionally.
func (t *Training) ObserveEval(v float64) {
	if t == nil {
		return
	}
	t.Evals.Inc(0)
	t.Best.Min(v)
}

// ObserveIteration records one PPO rollout/update cycle and its evaluation
// cost. Nil-safe.
func (t *Training) ObserveIteration(cost float64) {
	if t == nil {
		return
	}
	t.Iterations.Inc(0)
	t.LastCost.Set(cost)
	t.Best.Min(cost)
}
