package telemetry

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// meterInterval throttles meter redraws to ~10 Hz: an 11.5k scenarios/s
// run otherwise turns the per-fold progress callback into 11.5k stderr
// writes per second.
const meterInterval = 100 * time.Millisecond

// Meter is a single-line, wall-clock-throttled progress display for fleet
// runs: done/total, percentage, overall scenarios/s, ETA, plus an optional
// caller-supplied suffix (cache-hit rate). It writes only to the writer it
// was given (stderr in the CLIs) — never stdout — so it cannot perturb
// suite output.
//
// Progress is the fleet engine's callback; it is invoked from the
// aggregator goroutine only, so Meter needs no locking.
type Meter struct {
	w     io.Writer
	start time.Time
	last  time.Time
	width int
	// Extra, when set, is appended to each drawn line (e.g. "cache 87% hit").
	Extra func() string
}

// NewMeter starts a meter writing to w.
func NewMeter(w io.Writer) *Meter {
	now := time.Now()
	return &Meter{w: w, start: now}
}

// Progress draws the meter line if at least meterInterval elapsed since the
// previous draw (the final scenario always draws, so the line ends exact).
func (m *Meter) Progress(done, total int) {
	now := time.Now()
	if done != total && now.Sub(m.last) < meterInterval {
		return
	}
	m.last = now

	elapsed := now.Sub(m.start).Seconds()
	var rate float64
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	line := fmt.Sprintf("\r%d/%d scenarios (%.0f%%)", done, total, pct(done, total))
	if rate > 0 {
		line += fmt.Sprintf("  %.0f/s", rate)
		if done < total {
			eta := time.Duration(float64(total-done) / rate * float64(time.Second))
			line += "  ETA " + fmtETA(eta)
		}
	}
	if m.Extra != nil {
		if s := m.Extra(); s != "" {
			line += "  " + s
		}
	}
	// Pad over the previous, possibly longer, line before the cursor rests.
	if n := len(line); n < m.width {
		line += strings.Repeat(" ", m.width-n)
	} else {
		m.width = n
	}
	fmt.Fprint(m.w, line)
}

// Finish terminates the meter line with a newline.
func (m *Meter) Finish() {
	fmt.Fprintln(m.w)
}

func pct(done, total int) float64 {
	if total == 0 {
		return 100
	}
	return 100 * float64(done) / float64(total)
}

// fmtETA renders a duration as a compact ETA (s under a minute, m+s under
// an hour, h+m beyond).
func fmtETA(d time.Duration) string {
	d = d.Round(time.Second)
	switch {
	case d < time.Minute:
		return fmt.Sprintf("%ds", int(d.Seconds()))
	case d < time.Hour:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	default:
		return fmt.Sprintf("%dh%02dm", int(d.Hours()), int(d.Minutes())%60)
	}
}
