package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterShardsFold(t *testing.T) {
	c := New()
	ctr := c.Counter("test.count")
	for shard := 0; shard < NumShards*2; shard++ {
		ctr.Add(shard, int64(shard))
	}
	want := int64(NumShards * 2 * (NumShards*2 - 1) / 2)
	if got := ctr.Total(); got != want {
		t.Errorf("Total = %d, want %d", got, want)
	}
	if c.Counter("test.count") != ctr {
		t.Error("re-registering a counter name must return the same counter")
	}
}

func TestGaugeMin(t *testing.T) {
	c := New()
	g := c.Gauge("test.best")
	g.Min(3.5)
	g.Min(7.0) // larger: ignored
	if got := g.Value(); got != 3.5 {
		t.Errorf("Value = %v, want 3.5", got)
	}
	g.Min(-2.25)
	if got := g.Value(); got != -2.25 {
		t.Errorf("Value = %v, want -2.25", got)
	}

	// Zero is a valid minimum even though zero bits encode "unset".
	z := c.Gauge("test.zero")
	z.Min(0)
	z.Min(5)
	if got := z.Value(); got != 0 {
		t.Errorf("after Min(0), Min(5): Value = %v, want 0", got)
	}
}

func TestGaugeUnsetOmittedFromSnapshot(t *testing.T) {
	c := New()
	c.Gauge("test.unset")
	c.Gauge("test.set").Set(1.5)
	c.Gauge("test.inf").Set(math.Inf(1))
	s := c.Snapshot()
	if _, ok := s.Gauges["test.set"]; !ok {
		t.Error("set gauge missing from snapshot")
	}
	if _, ok := s.Gauges["test.inf"]; ok {
		t.Error("non-finite gauge must be dropped (JSON cannot encode it)")
	}
	// The unset gauge reads +0.0 which is finite, so it appears as 0 — that
	// is fine for JSON; only non-finite values are dropped.
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot must marshal: %v", err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	c := New()
	h := c.Histogram("test.hist", []int64{10, 100, 1000})
	h.Observe(0, 5)    // bucket le=10
	h.Observe(1, 10)   // bucket le=10 (inclusive)
	h.Observe(2, 500)  // bucket le=1000
	h.Observe(3, 5000) // overflow
	s := c.Snapshot().Histograms["test.hist"]
	if s.Count != 4 || s.Sum != 5515 {
		t.Errorf("Count/Sum = %d/%d, want 4/5515", s.Count, s.Sum)
	}
	wantBuckets := []int64{2, 0, 1}
	for i, want := range wantBuckets {
		if s.Buckets[i].Count != want {
			t.Errorf("bucket %d count = %d, want %d", i, s.Buckets[i].Count, want)
		}
	}
	if s.Overflow != 1 {
		t.Errorf("Overflow = %d, want 1", s.Overflow)
	}
	if got := s.Mean(); got != 5515.0/4 {
		t.Errorf("Mean = %v, want %v", got, 5515.0/4)
	}
}

func TestCounterFuncAndReplace(t *testing.T) {
	c := New()
	c.CounterFunc("ext.count", func() int64 { return 7 })
	if got := c.Snapshot().Counter("ext.count"); got != 7 {
		t.Errorf("counter func = %d, want 7", got)
	}
	// Re-registering replaces the source (a fresh cache superseding the old).
	c.CounterFunc("ext.count", func() int64 { return 11 })
	if got := c.Snapshot().Counter("ext.count"); got != 11 {
		t.Errorf("replaced counter func = %d, want 11", got)
	}
}

func TestPhases(t *testing.T) {
	c := New()
	end := c.Phase("test.phase")
	time.Sleep(time.Millisecond)
	end()
	s := c.Snapshot()
	if len(s.Phases) != 1 || s.Phases[0].Name != "test.phase" {
		t.Fatalf("Phases = %+v, want one test.phase entry", s.Phases)
	}
	if s.Phases[0].Seconds <= 0 {
		t.Errorf("phase duration = %v, want > 0", s.Phases[0].Seconds)
	}
}

// TestSnapshotStableJSON: two snapshots of identical state must serialize
// identically (map keys sort), because the CI diff and the manifest
// reconciliation depend on stable output.
func TestSnapshotStableJSON(t *testing.T) {
	c := New()
	c.Counter("b.two").Add(0, 2)
	c.Counter("a.one").Add(0, 1)
	c.Gauge("g.one").Set(1)
	c.Histogram("h.one", []int64{10}).Observe(0, 3)
	s := c.Snapshot()
	b1, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("snapshot JSON unstable:\n%s\n%s", b1, b2)
	}
}

// TestConcurrentRecordingAndSnapshot is the race-detector hammer: every
// shard records from its own goroutine while another goroutine snapshots
// continuously. Run with -race (CI does); the final totals must also be
// exact because recording is atomic per cell.
func TestConcurrentRecordingAndSnapshot(t *testing.T) {
	c := New()
	ctr := c.Counter("race.count")
	g := c.Gauge("race.best")
	h := c.Histogram("race.hist", DurationBuckets())
	tr := NewTraining(c)

	const perWorker = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := c.Snapshot()
				if s.Counter("race.count") < 0 {
					t.Error("negative counter snapshot")
					return
				}
			}
		}
	}()
	for w := 0; w < NumShards; w++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctr.Inc(wid)
				g.Min(float64(wid + 1))
				h.Observe(wid, int64(i))
				tr.ObserveEval(float64(i + 1))
			}
		}(w)
	}
	// Wait for the recorders (all but the snapshotter), then stop it.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// The snapshotter loops until stop closes; signal it once recording
	// goroutines can no longer be distinguished — simplest is a short grace
	// period after the expected totals are reached.
	for c.Counter("race.count").Total() < NumShards*perWorker {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done

	if got := ctr.Total(); got != NumShards*perWorker {
		t.Errorf("counter total = %d, want %d", got, NumShards*perWorker)
	}
	if got := g.Value(); got != 1 {
		t.Errorf("min gauge = %v, want 1", got)
	}
	s := c.Snapshot()
	if got := s.Histograms["race.hist"].Count; got != NumShards*perWorker {
		t.Errorf("histogram count = %d, want %d", got, NumShards*perWorker)
	}
	if got := s.Counter("training.evals"); got != NumShards*perWorker {
		t.Errorf("training evals = %d, want %d", got, NumShards*perWorker)
	}
}

// TestRecordingZeroAllocs pins the allocation-free recording contract for
// every hot-path operation.
func TestRecordingZeroAllocs(t *testing.T) {
	c := New()
	ctr := c.Counter("alloc.count")
	g := c.Gauge("alloc.gauge")
	h := c.Histogram("alloc.hist", DurationBuckets())
	tr := NewTraining(c)
	checks := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { ctr.Inc(3) }},
		{"Counter.Add", func() { ctr.Add(3, 5) }},
		{"Gauge.Set", func() { g.Set(1.5) }},
		{"Gauge.Min", func() { g.Min(1.25) }},
		{"Histogram.Observe", func() { h.Observe(3, 123456) }},
		{"Training.ObserveEval", func() { tr.ObserveEval(2.5) }},
		{"Training.ObserveIteration", func() { tr.ObserveIteration(2.5) }},
	}
	for _, check := range checks {
		if allocs := testing.AllocsPerRun(100, check.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", check.name, allocs)
		}
	}
}

func TestTrainingNilSafe(t *testing.T) {
	var tr *Training
	tr.ObserveEval(1)      // must not panic
	tr.ObserveIteration(1) // must not panic
}

func TestDurationBucketsAscending(t *testing.T) {
	b := DurationBuckets()
	if len(b) == 0 {
		t.Fatal("no duration buckets")
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %v", i, b)
		}
	}
}

func TestMeterThrottlesAndFinishes(t *testing.T) {
	var buf bytes.Buffer
	m := NewMeter(&buf)
	// Rapid-fire updates within one interval: only the first (and the final
	// scenario) may draw.
	for i := 1; i <= 999; i++ {
		m.Progress(i, 1000)
	}
	early := strings.Count(buf.String(), "\r")
	if early > 2 {
		t.Errorf("meter drew %d times within one interval, want <= 2", early)
	}
	m.Progress(1000, 1000)
	if !strings.Contains(buf.String(), "1000/1000") {
		t.Errorf("final scenario must draw; output %q", buf.String())
	}
	m.Finish()
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Error("Finish must end the meter line")
	}
}

func TestFmtETA(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{30 * time.Second, "30s"},
		{90 * time.Second, "1m30s"},
		{3700 * time.Second, "1h01m"},
	}
	for _, tc := range cases {
		if got := fmtETA(tc.d); got != tc.want {
			t.Errorf("fmtETA(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}
