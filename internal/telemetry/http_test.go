package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestHandlerMetrics(t *testing.T) {
	c := New()
	c.Counter("fleet.scenarios_folded").Add(0, 42)
	c.Gauge("fleet.workers").Set(8)
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/metrics content type %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if got := snap.Counter("fleet.scenarios_folded"); got != 42 {
		t.Errorf("folded = %d, want 42", got)
	}
	if got := snap.Gauges["fleet.workers"]; got != 8 {
		t.Errorf("workers gauge = %v, want 8", got)
	}
}

func TestHandlerExpvarAndPprof(t *testing.T) {
	c := New()
	c.Counter("test.count").Inc(0)
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	err = json.NewDecoder(resp.Body).Decode(&vars)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := vars["telemetry"]; !ok {
		t.Error("/debug/vars missing the telemetry var")
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status %d", path, resp.StatusCode)
		}
	}
}

// TestHandlerRebindsExpvar: the expvar registry is process-global, so
// serving a second collector must rebind the published var to it.
func TestHandlerRebindsExpvar(t *testing.T) {
	c1 := New()
	c1.Counter("rebind.count").Add(0, 1)
	Handler(c1)
	c2 := New()
	c2.Counter("rebind.count").Add(0, 2)
	srv := httptest.NewServer(Handler(c2))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Telemetry Snapshot `json:"telemetry"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if got := vars.Telemetry.Counter("rebind.count"); got != 2 {
		t.Errorf("expvar telemetry reads collector with count %d, want 2 (latest served)", got)
	}
}

func TestServeAndClose(t *testing.T) {
	c := New()
	srv, err := Serve("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Error("endpoint still reachable after Close")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	c := New()
	c.Counter("fleet.scenarios_folded").Add(0, 16)
	end := c.Phase("fleet.run")
	end()

	m := NewManifest()
	m.Suite = "test"
	m.Fingerprint = "abc123"
	m.Seed = 7
	m.Shard = "0/2"
	m.Scenarios = 16
	m.Workers = 4
	m.Finish(c)

	if m.GoVersion == "" {
		t.Error("manifest missing Go version")
	}
	if m.WallSeconds < 0 || m.End.Before(m.Start) {
		t.Errorf("bad wall clock: start %v end %v", m.Start, m.End)
	}

	path := filepath.Join(t.TempDir(), "run.manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("manifest does not round-trip: %v", err)
	}
	if back.Suite != "test" || back.Seed != 7 || back.Shard != "0/2" {
		t.Errorf("round-trip mismatch: %+v", back)
	}
	// The reconciliation contract: the folded counter equals Scenarios.
	if got := back.Telemetry.Counter("fleet.scenarios_folded"); int(got) != back.Scenarios {
		t.Errorf("fleet.scenarios_folded = %d, Scenarios = %d; must reconcile", got, back.Scenarios)
	}
	if strings.Contains(string(data), ".tmp") {
		t.Error("temp artifact leaked into manifest")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind")
	}
}
