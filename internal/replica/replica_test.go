package replica

import (
	"testing"
	"testing/quick"
)

func TestSignAndVerify(t *testing.T) {
	s, err := NewSigner("alice")
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Register("alice", s.PublicKey()); err != nil {
		t.Fatal(err)
	}
	req := s.Sign(Op{Type: OpWrite, Key: "k", Value: "v"})
	if err := reg.Verify(req); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	if req.Seq != 1 {
		t.Errorf("seq = %d, want 1", req.Seq)
	}
	if req.ID() != "alice/1" {
		t.Errorf("id = %q", req.ID())
	}
	// Sequence numbers increase.
	if s.Sign(Op{Type: OpRead, Key: "k"}).Seq != 2 {
		t.Error("seq did not increase")
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	s, _ := NewSigner("alice")
	reg := NewRegistry()
	_ = reg.Register("alice", s.PublicKey())
	req := s.Sign(Op{Type: OpWrite, Key: "k", Value: "v"})

	tampered := *req
	tampered.Op.Value = "evil"
	if err := reg.Verify(&tampered); err == nil {
		t.Error("tampered value accepted")
	}
	tampered = *req
	tampered.Seq = 99
	if err := reg.Verify(&tampered); err == nil {
		t.Error("tampered seq accepted")
	}
	tampered = *req
	tampered.ClientID = "mallory"
	if err := reg.Verify(&tampered); err == nil {
		t.Error("unknown client accepted")
	}
}

func TestRegistryValidation(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("", nil); err == nil {
		t.Error("empty registration should fail")
	}
	if _, err := NewSigner(""); err == nil {
		t.Error("empty client id should fail")
	}
}

func TestKVStoreApplyAndDedup(t *testing.T) {
	kv := NewKVStore()
	s, _ := NewSigner("alice")
	w1 := s.Sign(Op{Type: OpWrite, Key: "x", Value: "1"})
	if res, err := kv.Apply(w1); err != nil || res != "1" {
		t.Fatalf("apply = %q, %v", res, err)
	}
	// Re-applying the same request is idempotent on the state.
	w2 := s.Sign(Op{Type: OpWrite, Key: "x", Value: "2"})
	if _, err := kv.Apply(w2); err != nil {
		t.Fatal(err)
	}
	if _, err := kv.Apply(w1); err != nil { // stale duplicate
		t.Fatal(err)
	}
	if v, _ := kv.Get("x"); v != "2" {
		t.Errorf("stale write overwrote newer state: %q", v)
	}
	r := s.Sign(Op{Type: OpRead, Key: "x"})
	if res, _ := kv.Apply(r); res != "2" {
		t.Errorf("read = %q, want 2", res)
	}
	if kv.Applied() != 4 {
		t.Errorf("applied = %d, want 4", kv.Applied())
	}
	bad := s.Sign(Op{Type: OpType(99), Key: "x"})
	if _, err := kv.Apply(bad); err == nil {
		t.Error("unknown op should fail")
	}
}

func TestKVStoreDigestDeterminism(t *testing.T) {
	build := func(order []string) *KVStore {
		kv := NewKVStore()
		s, _ := NewSigner("c")
		for _, k := range order {
			kv.Apply(s.Sign(Op{Type: OpWrite, Key: k, Value: "v-" + k}))
		}
		return kv
	}
	a := build([]string{"a", "b", "c"})
	b := build([]string{"a", "b", "c"})
	if a.Digest() != b.Digest() {
		t.Error("same history produced different digests")
	}
	c := build([]string{"a", "b", "d"})
	if a.Digest() == c.Digest() {
		t.Error("different state produced same digest")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	kv := NewKVStore()
	s, _ := NewSigner("c")
	for i := 0; i < 10; i++ {
		kv.Apply(s.Sign(Op{Type: OpWrite, Key: string(rune('a' + i)), Value: "v"}))
	}
	snap, err := kv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewKVStore()
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if restored.Digest() != kv.Digest() {
		t.Error("restored digest differs")
	}
	if restored.Applied() != kv.Applied() {
		t.Error("restored applied count differs")
	}
	if err := restored.Restore([]byte("not json")); err == nil {
		t.Error("bad snapshot should fail")
	}
}

func TestQuorumCollector(t *testing.T) {
	q, err := NewQuorumCollector("alice/1", 1) // need f+1 = 2 matching
	if err != nil {
		t.Fatal(err)
	}
	if _, done := q.Add(Reply{ReplicaID: "r0", RequestID: "alice/1", Result: "ok"}); done {
		t.Error("quorum with one reply")
	}
	// Duplicate replica does not count twice.
	if _, done := q.Add(Reply{ReplicaID: "r0", RequestID: "alice/1", Result: "ok"}); done {
		t.Error("duplicate replica counted")
	}
	// Disagreeing reply does not complete the quorum.
	if _, done := q.Add(Reply{ReplicaID: "r1", RequestID: "alice/1", Result: "bad"}); done {
		t.Error("conflicting replies reached quorum")
	}
	// Wrong request ID ignored.
	if _, done := q.Add(Reply{ReplicaID: "r2", RequestID: "bob/9", Result: "ok"}); done {
		t.Error("foreign reply counted")
	}
	result, done := q.Add(Reply{ReplicaID: "r2", RequestID: "alice/1", Result: "ok"})
	if !done || result != "ok" {
		t.Errorf("quorum = %v/%q, want ok", done, result)
	}
}

func TestQuorumCollectorValidation(t *testing.T) {
	if _, err := NewQuorumCollector("", 1); err == nil {
		t.Error("empty request id should fail")
	}
	if _, err := NewQuorumCollector("x", -1); err == nil {
		t.Error("negative f should fail")
	}
}

// Property: request digests are injective over the signed fields.
func TestRequestDigestProperty(t *testing.T) {
	f := func(c1, c2 string, s1, s2 uint64, k1, k2, v1, v2 string) bool {
		r1 := Request{ClientID: c1, Seq: s1, Op: Op{Type: OpWrite, Key: k1, Value: v1}}
		r2 := Request{ClientID: c2, Seq: s2, Op: Op{Type: OpWrite, Key: k2, Value: v2}}
		same := c1 == c2 && s1 == s2 && k1 == k2 && v1 == v2
		return same == (r1.Digest() == r2.Digest())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
