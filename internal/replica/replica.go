// Package replica implements the replicated service of §VII-B: a
// deterministic key-value state machine offering read and write operations,
// digitally signed client requests (ed25519), and the client-side quorum
// rule — a response is accepted once f+1 replicas return identical,
// correctly signed replies (a quorum is necessary because the client cannot
// know which replicas are compromised, Prop. 1).
package replica

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors returned by the service layer.
var (
	ErrBadSignature = errors.New("replica: bad request signature")
	ErrUnknownOp    = errors.New("replica: unknown operation type")
)

// OpType selects the service operation (§VII-B: read and write).
type OpType int

// Operations offered by the service.
const (
	OpRead OpType = iota + 1
	OpWrite
)

// Op is one deterministic service operation.
type Op struct {
	// Type is OpRead or OpWrite.
	Type OpType `json:"type"`
	// Key addresses the state entry.
	Key string `json:"key"`
	// Value is written for OpWrite; ignored for OpRead.
	Value string `json:"value,omitempty"`
}

// Request is a signed client request with a unique identifier (§VII-B:
// "each request has a unique identifier that is digitally signed").
type Request struct {
	// ClientID identifies the issuing client.
	ClientID string `json:"clientId"`
	// Seq is the client-local sequence number; (ClientID, Seq) is unique.
	Seq uint64 `json:"seq"`
	// Op is the operation to execute.
	Op Op `json:"op"`
	// Sig is the client's ed25519 signature over the canonical digest.
	Sig []byte `json:"sig"`
}

// Digest returns the canonical digest covering all signed fields.
func (r *Request) Digest() [32]byte {
	h := sha256.New()
	var seq [8]byte
	binary.BigEndian.PutUint64(seq[:], r.Seq)
	h.Write([]byte(r.ClientID))
	h.Write(seq[:])
	var ty [2]byte
	binary.BigEndian.PutUint16(ty[:], uint16(r.Op.Type))
	h.Write(ty[:])
	h.Write([]byte(r.Op.Key))
	h.Write([]byte{0})
	h.Write([]byte(r.Op.Value))
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// ID returns the request's unique identifier string.
func (r *Request) ID() string {
	return fmt.Sprintf("%s/%d", r.ClientID, r.Seq)
}

// Signer issues signed requests for one client.
type Signer struct {
	mu       sync.Mutex
	clientID string
	priv     ed25519.PrivateKey
	pub      ed25519.PublicKey
	seq      uint64
}

// NewSigner creates a client signer with a fresh ed25519 key pair.
func NewSigner(clientID string) (*Signer, error) {
	if clientID == "" {
		return nil, errors.New("replica: empty client id")
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("replica: generate key: %w", err)
	}
	return &Signer{clientID: clientID, priv: priv, pub: pub}, nil
}

// ClientID returns the signer's client identifier.
func (s *Signer) ClientID() string { return s.clientID }

// PublicKey returns the verification key to register with replicas.
func (s *Signer) PublicKey() ed25519.PublicKey { return s.pub }

// Sign creates the next signed request for the operation.
func (s *Signer) Sign(op Op) *Request {
	s.mu.Lock()
	s.seq++
	req := &Request{ClientID: s.clientID, Seq: s.seq, Op: op}
	s.mu.Unlock()
	d := req.Digest()
	req.Sig = ed25519.Sign(s.priv, d[:])
	return req
}

// Registry maps client IDs to verification keys.
type Registry struct {
	mu   sync.RWMutex
	keys map[string]ed25519.PublicKey
}

// NewRegistry creates an empty client registry.
func NewRegistry() *Registry {
	return &Registry{keys: make(map[string]ed25519.PublicKey)}
}

// Register installs a client's public key.
func (r *Registry) Register(clientID string, key ed25519.PublicKey) error {
	if clientID == "" || len(key) != ed25519.PublicKeySize {
		return errors.New("replica: invalid registration")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.keys[clientID] = key
	return nil
}

// Verify checks a request's signature (the Validity property relies on
// this: each executed request was sent by a client).
func (r *Registry) Verify(req *Request) error {
	r.mu.RLock()
	key, ok := r.keys[req.ClientID]
	r.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: unknown client %s", ErrBadSignature, req.ClientID)
	}
	d := req.Digest()
	if !ed25519.Verify(key, d[:], req.Sig) {
		return ErrBadSignature
	}
	return nil
}

// KVStore is the deterministic state machine. All replicas executing the
// same request sequence reach the same state and produce the same results
// (the Safety property of Prop. 1).
type KVStore struct {
	mu       sync.RWMutex
	data     map[string]string
	applied  uint64
	lastSeen map[string]uint64 // clientID -> highest applied seq (dedup)
}

// NewKVStore creates an empty store.
func NewKVStore() *KVStore {
	return &KVStore{
		data:     make(map[string]string),
		lastSeen: make(map[string]uint64),
	}
}

// Apply executes the operation and returns its result. Duplicate requests
// (same client, non-increasing seq for writes) are executed idempotently:
// the state does not change but a result is still produced.
func (kv *KVStore) Apply(req *Request) (string, error) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	switch req.Op.Type {
	case OpRead:
		kv.applied++
		return kv.data[req.Op.Key], nil
	case OpWrite:
		if req.Seq > kv.lastSeen[req.ClientID] {
			kv.data[req.Op.Key] = req.Op.Value
			kv.lastSeen[req.ClientID] = req.Seq
		}
		kv.applied++
		return req.Op.Value, nil
	default:
		return "", fmt.Errorf("%w: %d", ErrUnknownOp, req.Op.Type)
	}
}

// Applied returns the number of executed operations.
func (kv *KVStore) Applied() uint64 {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return kv.applied
}

// Digest returns a deterministic hash of the full state, used for
// checkpoints and state transfer (§VII-C: a recovered replica initializes
// its state from f+1 identical copies).
func (kv *KVStore) Digest() [32]byte {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	keys := make([]string, 0, len(kv.data))
	for k := range kv.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
		h.Write([]byte(kv.data[k]))
		h.Write([]byte{1})
	}
	clients := make([]string, 0, len(kv.lastSeen))
	for c := range kv.lastSeen {
		clients = append(clients, c)
	}
	sort.Strings(clients)
	for _, c := range clients {
		h.Write([]byte(c))
		var seq [8]byte
		binary.BigEndian.PutUint64(seq[:], kv.lastSeen[c])
		h.Write(seq[:])
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Snapshot serializes the full state for state transfer.
func (kv *KVStore) Snapshot() ([]byte, error) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return json.Marshal(struct {
		Data     map[string]string `json:"data"`
		LastSeen map[string]uint64 `json:"lastSeen"`
		Applied  uint64            `json:"applied"`
	}{kv.data, kv.lastSeen, kv.applied})
}

// Restore replaces the state from a snapshot.
func (kv *KVStore) Restore(snapshot []byte) error {
	var s struct {
		Data     map[string]string `json:"data"`
		LastSeen map[string]uint64 `json:"lastSeen"`
		Applied  uint64            `json:"applied"`
	}
	if err := json.Unmarshal(snapshot, &s); err != nil {
		return fmt.Errorf("replica: restore: %w", err)
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	kv.data = s.Data
	if kv.data == nil {
		kv.data = make(map[string]string)
	}
	kv.lastSeen = s.LastSeen
	if kv.lastSeen == nil {
		kv.lastSeen = make(map[string]uint64)
	}
	kv.applied = s.Applied
	return nil
}

// Get reads a key outside consensus (used by tests and local inspection).
func (kv *KVStore) Get(key string) (string, bool) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	v, ok := kv.data[key]
	return v, ok
}

// Reply is one replica's response to a request.
type Reply struct {
	// ReplicaID identifies the responder.
	ReplicaID string `json:"replicaId"`
	// RequestID echoes Request.ID().
	RequestID string `json:"requestId"`
	// Result is the execution result.
	Result string `json:"result"`
}

// QuorumCollector gathers replies until f+1 distinct replicas agree on the
// same result for the same request (§VII-B).
type QuorumCollector struct {
	mu        sync.Mutex
	f         int
	requestID string
	byResult  map[string]map[string]bool // result -> replica set
}

// NewQuorumCollector creates a collector for the given request and
// tolerance threshold f.
func NewQuorumCollector(requestID string, f int) (*QuorumCollector, error) {
	if f < 0 {
		return nil, fmt.Errorf("replica: negative f = %d", f)
	}
	if requestID == "" {
		return nil, errors.New("replica: empty request id")
	}
	return &QuorumCollector{
		f:         f,
		requestID: requestID,
		byResult:  make(map[string]map[string]bool),
	}, nil
}

// Add records a reply; it returns the agreed result and true once f+1
// identical replies from distinct replicas have been observed.
func (q *QuorumCollector) Add(r Reply) (string, bool) {
	if r.RequestID != q.requestID {
		return "", false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	set := q.byResult[r.Result]
	if set == nil {
		set = make(map[string]bool)
		q.byResult[r.Result] = set
	}
	set[r.ReplicaID] = true
	if len(set) >= q.f+1 {
		return r.Result, true
	}
	return "", false
}
