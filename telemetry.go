package tolerance

import (
	"net/http"

	"tolerance/internal/telemetry"
)

// Telemetry collects live metrics from v2 facade calls: attach one with
// WithTelemetry and RunSuite/StreamSuite report fleet throughput (fleet.*),
// strategy-cache behaviour (cache.*) and training progress (training.*),
// while Solve's learned methods report optimizer/PPO progress. One
// Telemetry may serve many sequential or concurrent calls; counters
// accumulate across them.
//
// Telemetry is observation only. Metrics are recorded outside the rng and
// fold paths, writes land in per-worker sharded cells, and nothing is ever
// printed to stdout — results are byte-identical and suite hot paths stay
// allocation-free with telemetry attached or not.
type Telemetry struct {
	c *telemetry.Collector
}

// NewTelemetry returns an empty collector.
func NewTelemetry() *Telemetry {
	return &Telemetry{c: telemetry.New()}
}

// WithTelemetry attaches a metrics collector to a v2 call (RunSuite,
// StreamSuite, Solve). Nil is a no-op.
func WithTelemetry(t *Telemetry) Option {
	return func(o *options) { o.telemetry = t }
}

// TelemetrySnapshot is a point-in-time fold of every metric: monotonic
// counters, last-value gauges, fixed-bucket histograms and completed
// wall-clock phases. It marshals to stable JSON (map keys sort).
type TelemetrySnapshot struct {
	// UptimeSeconds is the collector's age at snapshot time.
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// Counters holds monotonic counts (fleet.scenarios_folded,
	// cache.policy_builds, training.evals, ...).
	Counters map[string]int64 `json:"counters"`
	// Gauges holds last-value metrics (training.best_objective, ...).
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Histograms holds folded distributions (fleet.scenario_duration_ns, ...).
	Histograms map[string]TelemetryHistogram `json:"histograms,omitempty"`
	// Phases lists completed wall-clock phases in completion order.
	Phases []TelemetryPhase `json:"phases,omitempty"`
}

// TelemetryHistogram is one folded fixed-bucket distribution.
type TelemetryHistogram struct {
	Count    int64             `json:"count"`
	Sum      int64             `json:"sum"`
	Buckets  []TelemetryBucket `json:"buckets,omitempty"`
	Overflow int64             `json:"overflow,omitempty"`
}

// TelemetryBucket counts the observations at most Le (per bucket, not
// cumulative).
type TelemetryBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// TelemetryPhase is one completed wall-clock phase of a run.
type TelemetryPhase struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Snapshot folds the collector's current state. It is safe to call at any
// moment, including while calls are in flight.
func (t *Telemetry) Snapshot() TelemetrySnapshot {
	s := t.c.Snapshot()
	out := TelemetrySnapshot{
		UptimeSeconds: s.UptimeSeconds,
		Counters:      s.Counters,
		Gauges:        s.Gauges,
	}
	if len(s.Histograms) > 0 {
		out.Histograms = make(map[string]TelemetryHistogram, len(s.Histograms))
		for name, h := range s.Histograms {
			hist := TelemetryHistogram{Count: h.Count, Sum: h.Sum, Overflow: h.Overflow}
			if len(h.Buckets) > 0 {
				hist.Buckets = make([]TelemetryBucket, len(h.Buckets))
				for i, b := range h.Buckets {
					hist.Buckets[i] = TelemetryBucket{Le: b.Le, Count: b.Count}
				}
			}
			out.Histograms[name] = hist
		}
	}
	if len(s.Phases) > 0 {
		out.Phases = make([]TelemetryPhase, len(s.Phases))
		for i, p := range s.Phases {
			out.Phases[i] = TelemetryPhase{Name: p.Name, Seconds: p.Seconds}
		}
	}
	return out
}

// Handler returns the HTTP introspection mux: /metrics (JSON snapshot),
// /debug/vars (expvar) and /debug/pprof/*.
func (t *Telemetry) Handler() http.Handler {
	return telemetry.Handler(t.c)
}

// Serve starts the introspection endpoint on addr (":0" picks a free port)
// and returns the bound address plus a close function.
func (t *Telemetry) Serve(addr string) (string, func() error, error) {
	srv, err := telemetry.Serve(addr, t.c)
	if err != nil {
		return "", nil, err
	}
	return srv.Addr(), srv.Close, nil
}

// collector exposes the internal collector to sibling facade files.
func (t *Telemetry) collector() *telemetry.Collector {
	if t == nil {
		return nil
	}
	return t.c
}
