module tolerance

go 1.24
