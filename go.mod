module tolerance

go 1.23
